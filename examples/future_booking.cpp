// Future reservations demo: when the system is busy, the negotiation
// doesn't have to end at FAILEDTRYLATER — the advance planner books the
// best configuration at the earliest time its resources are all free and
// counter-offers a start time ("your news programme can start at 18:42").
// Run: ./examples/future_booking
#include <iostream>

#include "advance/planner.hpp"
#include "core/classify.hpp"
#include "core/enumerate.hpp"
#include "document/catalog.hpp"
#include "document/corpus.hpp"
#include "sim/experiment.hpp"

using namespace qosnp;

int main() {
  // A deliberately tight system: one client whose access link carries one
  // good video stream at a time.
  CorpusConfig corpus;
  corpus.num_documents = 4;
  corpus.seed = 11;
  Catalog catalog;
  for (auto& doc : generate_corpus(corpus)) catalog.add(std::move(doc));

  Topology topology = Topology::dumbbell(1, 2, 12'000'000, 200'000'000);
  std::vector<MediaServerConfig> servers;
  for (int i = 0; i < 2; ++i) {
    MediaServerConfig s;
    s.id = corpus.servers[static_cast<std::size_t>(i)];
    s.node = "server-node-" + std::to_string(i);
    s.disk_bandwidth_bps = 100'000'000;
    s.max_sessions = 16;
    servers.push_back(std::move(s));
  }
  ClientMachine client;
  client.name = "home-pc";
  client.node = "client-0";
  client.decoders = {CodingFormat::kMPEG1,     CodingFormat::kMPEG2, CodingFormat::kMJPEG,
                     CodingFormat::kPCM,       CodingFormat::kADPCM, CodingFormat::kMPEGAudio,
                     CodingFormat::kPlainText, CodingFormat::kJPEG,  CodingFormat::kGIF};

  FutureReservationPlanner planner(topology, servers);
  const UserProfile profile = standard_profile_mix()[1];  // "typical"

  std::cout << "Booking four articles back-to-back on a link that carries one stream:\n\n";
  double now = 0.0;
  for (const DocumentId& id : catalog.list()) {
    auto document = catalog.find(id);
    auto feasible = compatible_variants(document, client, profile.mm);
    if (!feasible.ok()) {
      std::cout << "  " << id << ": " << feasible.error() << '\n';
      continue;
    }
    OfferList offers = enumerate_offers(feasible.value(), profile.mm, CostModel{});
    classify_offers(offers.offers, profile.mm, profile.importance);

    auto plan = planner.plan(client, offers, profile.mm, now);
    if (!plan.ok()) {
      std::cout << "  " << id << ": no slot within the booking horizon (" << plan.error()
                << ")\n";
      continue;
    }
    const FuturePlan& p = plan.value();
    std::cout << "  " << id << ": " << (p.start_s <= now ? "starts now" : "deferred")
              << " at t=" << p.start_s << "s (until t=" << p.end_s << "s)\n"
              << "      " << p.offer.describe()
              << (p.satisfies_user ? "" : "  [degraded offer]") << '\n';
  }
  std::cout << "\nActive bookings: " << planner.active_plans()
            << ". Each would be released if its user declined the counter-offer.\n";
  return 0;
}
