// qosnpd: the negotiation service as a standalone network daemon. Stands up
// the full stack — synthetic news corpus, media-server farm behind a
// dumbbell network, QoSManager -> SessionManager -> NegotiationService —
// and serves the qosnp wire protocol (docs/WIRE.md) on a TCP port until
// SIGINT/SIGTERM, then prints the Prometheus-style metrics text.
//
// Run:  ./examples/qosnpd [--port N] [--workers N] [--documents N]
//                         [--rtt-ms X] [--max-connections N] [--seed N]
// Talk to it with WireClient (src/netio/client.hpp), e.g. from
// bench_e19_wire or the loopback tests.
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "core/qos_manager.hpp"
#include "document/catalog.hpp"
#include "document/corpus.hpp"
#include "netio/server.hpp"
#include "server/media_server.hpp"
#include "service/negotiation_service.hpp"
#include "session/session.hpp"

using namespace qosnp;

namespace {

volatile std::sig_atomic_t g_stop = 0;
void handle_signal(int) { g_stop = 1; }

[[noreturn]] void usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--port N] [--workers N] [--documents N] [--rtt-ms X]"
               " [--max-connections N] [--idle-timeout-ms X] [--seed N]\n";
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  std::uint16_t port = 4747;
  std::size_t workers = 8;
  int documents = 24;
  double rtt_ms = 0.0;
  std::size_t max_connections = 256;
  double idle_timeout_ms = 0.0;
  std::uint64_t seed = 42;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--port") port = static_cast<std::uint16_t>(std::strtoul(next(), nullptr, 10));
    else if (arg == "--workers") workers = std::strtoul(next(), nullptr, 10);
    else if (arg == "--documents") documents = static_cast<int>(std::strtol(next(), nullptr, 10));
    else if (arg == "--rtt-ms") rtt_ms = std::strtod(next(), nullptr);
    else if (arg == "--max-connections") max_connections = std::strtoul(next(), nullptr, 10);
    else if (arg == "--idle-timeout-ms") idle_timeout_ms = std::strtod(next(), nullptr);
    else if (arg == "--seed") seed = std::strtoull(next(), nullptr, 10);
    else usage(argv[0]);
  }

  // Content + infrastructure: the news-on-demand deployment in one process.
  CorpusConfig corpus;
  corpus.num_documents = documents;
  corpus.seed = seed;
  corpus.servers = {"server-a", "server-b"};
  Catalog catalog;
  for (auto& doc : generate_corpus(corpus)) catalog.add(std::move(doc));

  TransportService transport(
      Topology::dumbbell(/*clients=*/64, /*servers=*/2, 100'000'000, 1'000'000'000));
  ServerFarm farm;
  for (int i = 0; i < 2; ++i) {
    MediaServerConfig server;
    server.id = i == 0 ? "server-a" : "server-b";
    server.node = "server-node-" + std::to_string(i);
    server.disk_bandwidth_bps = 1'000'000'000;
    server.max_sessions = 4096;
    farm.add(std::move(server));
  }

  QoSManager manager(catalog, farm, transport);
  SessionManager sessions(manager);

  ServiceConfig service_config;
  service_config.workers = workers;
  service_config.queue_capacity = 4 * workers;
  service_config.simulated_rtt_ms = rtt_ms;
  NegotiationService service(manager, sessions, service_config);
  service.start();

  WireServerConfig net_config;
  net_config.port = port;
  net_config.max_connections = max_connections;
  net_config.idle_timeout_ms = idle_timeout_ms;
  WireServer server(service, net_config);
  server.start();

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);

  std::cout << "qosnpd listening on " << net_config.bind_address << ':' << server.port()
            << "  (" << catalog.size() << " documents, " << workers
            << " workers; Ctrl-C to stop)\n";
  std::cout.flush();

  while (!g_stop) {
    timespec nap{0, 100'000'000};  // 100ms; signals interrupt the sleep
    nanosleep(&nap, nullptr);
  }

  std::cout << "\nshutting down...\n";
  server.stop();
  service.stop();

  std::cout << "\n--- qosnp_net_* / service metrics at shutdown ---\n"
            << service.metrics().expose()
            << "net accounting " << (server.net().balanced() ? "balanced" : "IMBALANCED")
            << '\n';
  return server.net().balanced() ? 0 : 1;
}
