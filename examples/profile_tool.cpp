// profile_tool — the command-line stand-in for the prototype's QoS GUI
// (paper Sec. 8, Figures 3-6). The Motif windows' operations map to
// subcommands operating on a profiles file:
//   main window            -> list, set-default
//   profile windows        -> show, create, edit ("Save"), delete
//   "show example" button  -> try  (negotiates the profile against a
//                             synthetic article and prints the offer the
//                             information window would display)
//
// Usage:
//   profile_tool [-f profiles.txt] list
//   profile_tool [-f profiles.txt] show <name>
//   profile_tool [-f profiles.txt] create <name>
//   profile_tool [-f profiles.txt] edit <name> <key> <value>   (serialize.hpp keys)
//   profile_tool [-f profiles.txt] delete <name>
//   profile_tool [-f profiles.txt] try <name>
#include <iostream>
#include <string>
#include <vector>

#include "core/qos_manager.hpp"
#include "document/corpus.hpp"
#include "profile/profile_manager.hpp"
#include "profile/serialize.hpp"
#include "server/media_server.hpp"

using namespace qosnp;

namespace {

int usage() {
  std::cerr << "usage: profile_tool [-f file] {list|show|create|edit|delete|try} [args]\n";
  return 2;
}

int cmd_try(const UserProfile& profile) {
  // Negotiate against a small synthetic system, as the GUI's "show example"
  // played a stored example matching the current profile.
  CorpusConfig corpus;
  corpus.num_documents = 6;
  corpus.seed = 7;
  Catalog catalog;
  for (auto& doc : generate_corpus(corpus)) catalog.add(std::move(doc));
  TransportService transport(Topology::dumbbell(1, 2, 30'000'000, 100'000'000));
  ServerFarm farm;
  farm.add(MediaServerConfig{"server-a", "server-node-0", 80'000'000, 16});
  farm.add(MediaServerConfig{"server-b", "server-node-1", 80'000'000, 16});
  ClientMachine client;
  client.name = "example-client";
  client.node = "client-0";
  client.decoders = {CodingFormat::kMPEG1,     CodingFormat::kMPEG2, CodingFormat::kMJPEG,
                     CodingFormat::kPCM,       CodingFormat::kADPCM, CodingFormat::kMPEGAudio,
                     CodingFormat::kPlainText, CodingFormat::kJPEG,  CodingFormat::kGIF};
  QoSManager manager(catalog, farm, transport);

  for (const DocumentId& id : catalog.list()) {
    NegotiationResult outcome = manager.negotiate(make_negotiation_request(client, id, profile));
    std::cout << id << ": " << to_string(outcome.verdict);
    if (outcome.user_offer) std::cout << "\n    " << outcome.user_offer->describe();
    std::cout << '\n';
    outcome.commitment.release();
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  std::string file = "profiles.txt";
  if (args.size() >= 2 && args[0] == "-f") {
    file = args[1];
    args.erase(args.begin(), args.begin() + 2);
  }
  if (args.empty()) return usage();

  ProfileManager manager;
  (void)manager.load_from_file(file);  // absent file = start fresh

  const std::string& cmd = args[0];
  if (cmd == "list") {
    for (const auto& name : manager.list()) {
      std::cout << name << (name == manager.default_profile().name ? "  (default)" : "")
                << '\n';
    }
    return 0;
  }
  if (args.size() < 2) return usage();
  const std::string& name = args[1];

  if (cmd == "show") {
    auto p = manager.find(name);
    if (!p) {
      std::cerr << "no profile '" << name << "'\n";
      return 1;
    }
    std::cout << to_text(*p);
    return 0;
  }
  if (cmd == "create") {
    UserProfile p = default_user_profile();
    p.name = name;
    if (auto saved = manager.save(p); !saved.ok()) {
      std::cerr << saved.error() << '\n';
      return 1;
    }
    if (auto persisted = manager.save_to_file(file); !persisted.ok()) {
      std::cerr << persisted.error() << '\n';
      return 1;
    }
    std::cout << "created '" << name << "' in " << file << '\n';
    return 0;
  }
  if (cmd == "edit") {
    if (args.size() < 4) return usage();
    auto p = manager.find(name);
    if (!p) {
      std::cerr << "no profile '" << name << "'\n";
      return 1;
    }
    // Re-use the serialiser: append the patched key to the profile's text
    // and parse the result (later keys win).
    auto merged = parse_profiles(to_text(*p) + args[2] + " = " + args[3] + "\n");
    if (!merged.ok()) {
      std::cerr << merged.error() << '\n';
      return 1;
    }
    if (auto saved = manager.save(merged.value()[0]); !saved.ok()) {
      std::cerr << saved.error() << '\n';
      return 1;
    }
    if (auto persisted = manager.save_to_file(file); !persisted.ok()) {
      std::cerr << persisted.error() << '\n';
      return 1;
    }
    std::cout << "updated '" << name << "': " << args[2] << " = " << args[3] << '\n';
    return 0;
  }
  if (cmd == "delete") {
    if (!manager.remove(name)) {
      std::cerr << "cannot delete '" << name << "'\n";
      return 1;
    }
    (void)manager.save_to_file(file);
    std::cout << "deleted '" << name << "'\n";
    return 0;
  }
  if (cmd == "try") {
    auto p = manager.find(name);
    if (!p) {
      std::cerr << "no profile '" << name << "'\n";
      return 1;
    }
    return cmd_try(*p);
  }
  return usage();
}
