// Quickstart: the smallest complete use of the QoS negotiation library.
//   1. put a news article (with variants) in the catalog,
//   2. stand up the simulated servers and network,
//   3. describe the user's wishes in a profile,
//   4. negotiate, inspect the offer, confirm, play.
// Build & run:  ./examples/quickstart
#include <iostream>

#include "core/qos_manager.hpp"
#include "core/report.hpp"
#include "document/catalog.hpp"
#include "document/corpus.hpp"
#include "server/media_server.hpp"
#include "session/session.hpp"

using namespace qosnp;

int main() {
  // --- 1. Content: one article, three video variants + CD audio. ----------
  Catalog catalog;
  MultimediaDocument article;
  article.id = "news/2026-07-05/markets";
  article.title = "Markets rally on good news";
  article.copyright_cost = Money::cents(50);
  const double duration = 240.0;

  Monomedia video;
  video.id = article.id + "/video";
  video.kind = MediaKind::kVideo;
  video.duration_s = duration;
  video.variants = {
      make_video_variant(video.id + "/tv", VideoQoS{ColorDepth::kColor, 25, 640},
                         CodingFormat::kMPEG1, duration, "server-a"),
      make_video_variant(video.id + "/small", VideoQoS{ColorDepth::kGray, 15, 320},
                         CodingFormat::kMPEG1, duration, "server-b"),
      make_video_variant(video.id + "/hd", VideoQoS{ColorDepth::kSuperColor, 30, 1280},
                         CodingFormat::kMPEG2, duration, "server-a"),
  };
  article.monomedia.push_back(std::move(video));

  Monomedia audio;
  audio.id = article.id + "/audio";
  audio.kind = MediaKind::kAudio;
  audio.duration_s = duration;
  audio.variants = {
      make_audio_variant(audio.id + "/cd", AudioQuality::kCD, CodingFormat::kMPEGAudio,
                         duration, "server-a"),
      make_audio_variant(audio.id + "/tel", AudioQuality::kTelephone, CodingFormat::kADPCM,
                         duration, "server-b"),
  };
  article.monomedia.push_back(std::move(audio));

  const auto problems = catalog.add(std::move(article));
  if (!problems.empty()) {
    std::cerr << "catalog rejected the article: " << problems.front() << '\n';
    return 1;
  }

  // --- 2. Infrastructure: two media servers behind a dumbbell network. ----
  TransportService transport(Topology::dumbbell(/*clients=*/1, /*servers=*/2,
                                                /*access_bps=*/25'000'000,
                                                /*backbone_bps=*/100'000'000));
  ServerFarm farm;
  farm.add(MediaServerConfig{"server-a", "server-node-0", 80'000'000, 32});
  farm.add(MediaServerConfig{"server-b", "server-node-1", 80'000'000, 32});

  ClientMachine client;
  client.name = "living-room";
  client.node = "client-0";
  client.screen = ScreenSpec{1920, 1080, ColorDepth::kSuperColor};
  client.decoders = {CodingFormat::kMPEG1, CodingFormat::kMPEG2, CodingFormat::kMPEGAudio,
                     CodingFormat::kADPCM};

  // --- 3. The user's wishes (what the QoS GUI would collect). -------------
  UserProfile profile = default_user_profile();
  profile.name = "evening-viewer";
  profile.mm.text.reset();
  profile.mm.image.reset();
  profile.mm.video->desired = VideoQoS{ColorDepth::kColor, 25, 640};
  profile.mm.video->worst = VideoQoS{ColorDepth::kGray, 10, 320};
  profile.mm.audio->desired = AudioQoS{AudioQuality::kCD};
  profile.mm.audio->worst = AudioQoS{AudioQuality::kTelephone};
  profile.mm.cost.max_cost = Money::dollars(6);

  // --- 4. Negotiate. -------------------------------------------------------
  QoSManager manager(catalog, farm, transport);
  NegotiationResult outcome = manager.negotiate(make_negotiation_request(client, "news/2026-07-05/markets", profile));

  // The information window of the prototype's QoS GUI.
  std::cout << render_information_window(outcome) << '\n';
  if (!outcome.user_offer) return 1;

  // --- 5. Confirm within the choice period, then play. --------------------
  SessionManager sessions(manager);
  auto session = sessions.open(client, profile, std::move(outcome), /*now_s=*/0.0);
  if (!session.ok()) {
    std::cerr << "could not open session: " << session.error() << '\n';
    return 1;
  }
  if (auto confirmed = sessions.confirm(session.value(), /*now_s=*/3.0); !confirmed.ok()) {
    std::cerr << "confirmation failed: " << confirmed.error() << '\n';
    return 1;
  }
  sessions.advance(session.value(), duration);
  const auto view = sessions.snapshot(session.value());
  std::cout << "session " << to_string(view->state) << " after " << view->position_s
            << "s; charged " << view->stats.charged.to_string() << '\n';
  return 0;
}
