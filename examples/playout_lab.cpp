// Playout lab: negotiate a news article, then actually *play* the committed
// configuration block-by-block through the delivery simulator — at the
// reserved rate and, for contrast, at an under-provisioned rate — and print
// per-stream playout reports plus the audio/video sync skew.
// Run: ./examples/playout_lab
#include <iostream>

#include "core/qos_manager.hpp"
#include "delivery/playout.hpp"
#include "document/catalog.hpp"
#include "document/corpus.hpp"
#include "server/media_server.hpp"
#include "sim/experiment.hpp"

using namespace qosnp;

namespace {

void print_report(const std::string& label, const PlayoutReport& report) {
  std::cout << "  " << label << ": " << report.blocks << " blocks, " << report.stalls
            << " stalls (" << report.total_stall_s << "s total), worst lateness "
            << report.max_lateness_s * 1000.0 << " ms\n";
}

}  // namespace

int main() {
  CorpusConfig corpus;
  corpus.num_documents = 3;
  corpus.seed = 5;
  Catalog catalog;
  for (auto& doc : generate_corpus(corpus)) catalog.add(std::move(doc));

  TransportService transport(Topology::dumbbell(1, 2, 60'000'000, 200'000'000));
  ServerFarm farm;
  farm.add(MediaServerConfig{"server-a", "server-node-0", 100'000'000, 32});
  farm.add(MediaServerConfig{"server-b", "server-node-1", 100'000'000, 32});
  ClientMachine client;
  client.name = "viewer";
  client.node = "client-0";
  client.decoders = {CodingFormat::kMPEG1,     CodingFormat::kMPEG2, CodingFormat::kMJPEG,
                     CodingFormat::kPCM,       CodingFormat::kADPCM, CodingFormat::kMPEGAudio,
                     CodingFormat::kPlainText, CodingFormat::kJPEG,  CodingFormat::kGIF};

  QoSManager manager(catalog, farm, transport);
  const UserProfile profile = standard_profile_mix()[1];
  const DocumentId doc_id = catalog.list().front();
  NegotiationResult outcome = manager.negotiate(make_negotiation_request(client, doc_id, profile));
  std::cout << "negotiated '" << doc_id << "': " << to_string(outcome.verdict) << '\n';
  if (!outcome.has_commitment()) return 1;
  const SystemOffer& offer = outcome.offers.offers[outcome.committed_index];

  const PlayoutReport* video_report = nullptr;
  const PlayoutReport* audio_report = nullptr;
  std::vector<PlayoutReport> reports;
  reports.reserve(offer.components.size() * 2);
  for (const OfferComponent& c : offer.components) {
    if (c.requirements.guarantee != GuaranteeClass::kGuaranteed) continue;
    const double duration = c.monomedia->duration_s;
    std::cout << "\n" << c.variant->describe() << '\n';

    DeliveryConfig reserved;
    reserved.bottleneck_bps = c.requirements.max_bit_rate_bps;  // the Sec. 6 reservation
    reserved.jitter_ms = c.requirements.jitter_ms;
    reserved.loss_rate = c.requirements.loss_rate;
    reserved.prebuffer_s = 1.0;
    reports.push_back(simulate_playout(*c.variant, duration, reserved));
    print_report("at reserved rate (maxBitRate)", reports.back());
    if (c.variant->kind() == MediaKind::kVideo && video_report == nullptr) {
      video_report = &reports.back();
    }
    if (c.variant->kind() == MediaKind::kAudio && audio_report == nullptr) {
      audio_report = &reports.back();
    }

    DeliveryConfig starved = reserved;
    starved.bottleneck_bps = c.requirements.avg_bit_rate_bps * 9 / 10;
    reports.push_back(simulate_playout(*c.variant, duration, starved));
    print_report("at 0.9 x avgBitRate (ablation)", reports.back());
  }

  if (video_report != nullptr && audio_report != nullptr) {
    const double skew = max_sync_skew(*video_report, *audio_report);
    std::cout << "\naudio/video skew at reserved rates: " << skew * 1000.0 << " ms ("
              << (skew < kLipSyncSkewS ? "within" : "BEYOND") << " the 80 ms lip-sync bound)\n";
  }
  return 0;
}
