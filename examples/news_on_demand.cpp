// News-on-demand walkthrough: the full life of the CITR prototype scenario —
// a synthetic article corpus, several clients (one of them a limited
// terminal), negotiation with every outcome explained, user confirmation,
// playout, injected congestion, and the automatic adaptation transition.
// Run: ./examples/news_on_demand [seed]
#include <cstdlib>
#include <iostream>

#include "core/qos_manager.hpp"
#include "core/report.hpp"
#include "document/catalog.hpp"
#include "document/corpus.hpp"
#include "server/media_server.hpp"
#include "session/session.hpp"
#include "sim/experiment.hpp"

using namespace qosnp;

namespace {

void banner(const std::string& text) {
  std::cout << "\n== " << text << " ==\n";
}

void show_outcome(const NegotiationResult& outcome) {
  std::cout << "   status: " << to_string(outcome.verdict) << '\n';
  if (outcome.user_offer) std::cout << "   offer:  " << outcome.user_offer->describe() << '\n';
  for (const auto& p : outcome.problems) std::cout << "   note:   " << p << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;

  banner("Content: synthetic news corpus (the MM database)");
  CorpusConfig corpus;
  corpus.num_documents = 12;
  corpus.seed = seed;
  corpus.servers = {"server-a", "server-b"};
  Catalog catalog;
  for (auto& doc : generate_corpus(corpus)) catalog.add(std::move(doc));
  std::cout << "   " << catalog.size() << " articles";
  const auto ids = catalog.list();
  auto doc = catalog.find(ids.front());
  std::cout << "; first: '" << doc->title << "' with " << doc->monomedia.size()
            << " monomedia, " << doc->duration_s() << "s\n";

  banner("Infrastructure: 2 media servers, dumbbell network");
  TransportService transport(Topology::dumbbell(2, 2, 25'000'000, 60'000'000));
  ServerFarm farm;
  farm.add(MediaServerConfig{"server-a", "server-node-0", 60'000'000, 24});
  farm.add(MediaServerConfig{"server-b", "server-node-1", 60'000'000, 24});

  ClientMachine workstation;
  workstation.name = "newsroom-workstation";
  workstation.node = "client-0";
  workstation.screen = ScreenSpec{1920, 1080, ColorDepth::kSuperColor};
  workstation.decoders = {CodingFormat::kMPEG1,     CodingFormat::kMPEG2,
                          CodingFormat::kMJPEG,     CodingFormat::kPCM,
                          CodingFormat::kADPCM,     CodingFormat::kMPEGAudio,
                          CodingFormat::kPlainText, CodingFormat::kJPEG,
                          CodingFormat::kGIF};

  ClientMachine terminal;
  terminal.name = "lobby-terminal";
  terminal.node = "client-1";
  terminal.screen = ScreenSpec{640, 480, ColorDepth::kGray};
  terminal.decoders = {CodingFormat::kMPEG1, CodingFormat::kADPCM, CodingFormat::kPlainText};
  terminal.max_audio = AudioQuality::kRadio;

  QoSManager manager(catalog, farm, transport);
  SessionManager sessions(manager);

  banner("Scenario 1: a typical viewer on the workstation");
  UserProfile typical = standard_profile_mix()[1];
  NegotiationResult outcome = manager.negotiate(make_negotiation_request(workstation, ids.front(), typical));
  show_outcome(outcome);
  if (!outcome.has_commitment()) return 1;
  std::cout << "   " << '\n'
            << render_classification_table(outcome, typical.mm, 5);

  auto session = sessions.open(workstation, typical, std::move(outcome), 0.0);
  std::cout << "   confirming within the " << typical.mm.time.choice_period_s
            << "s choice period...\n";
  if (auto ok = sessions.confirm(session.value(), 4.0); !ok.ok()) {
    std::cout << "   confirmation failed: " << ok.error() << '\n';
    return 1;
  }

  banner("Scenario 2: congestion strikes mid-playout -> automatic adaptation");
  sessions.advance(session.value(), 30.0);
  // Degrade the backbone (link 0 of the dumbbell) by 97%.
  const auto victims = transport.degrade_link(0, 0.97);
  std::cout << "   backbone degraded; " << victims.size() << " flow(s) violated\n";
  bool our_session_hit = false;
  for (FlowId flow : victims) {
    for (SessionId sid : sessions.sessions_using_flow(flow)) {
      our_session_hit = true;
      const auto before = sessions.snapshot(sid);
      AdaptationResult adapted = sessions.adapt(sid, 34.0);
      const auto after = sessions.snapshot(sid);
      if (adapted.adapted) {
        std::cout << "   session " << sid << " transitioned: offer #" << before->current_offer
                  << " -> #" << adapted.new_offer << " at position " << before->position_s
                  << "s (interruption " << adapted.interruption_s << "s)\n";
        std::cout << "   now playing: " << after->user_offer->describe() << '\n';
      } else {
        std::cout << "   session " << sid << " could not adapt and was aborted\n";
      }
    }
  }
  if (!our_session_hit) {
    std::cout << "   (our session's flows were not among the victims this time)\n";
  }
  transport.restore_link(0);

  if (auto view = sessions.snapshot(session.value());
      view && view->state == SessionState::kPlaying) {
    sessions.advance(session.value(), view->duration_s);
    std::cout << "   playout finished: " << to_string(sessions.snapshot(session.value())->state)
              << ", charged " << sessions.snapshot(session.value())->stats.charged.to_string()
              << '\n';
  }

  banner("Scenario 3: the limited lobby terminal");
  UserProfile demanding = standard_profile_mix()[0];
  NegotiationResult local = manager.negotiate(make_negotiation_request(terminal, ids.front(), demanding));
  show_outcome(local);
  std::cout << "   (the profile manager would now show the local offer and let the user\n"
               "    lower the worst-acceptable values and renegotiate)\n";

  banner("Scenario 4: renegotiation with a modest profile");
  UserProfile modest = standard_profile_mix()[2];
  NegotiationResult retry = manager.negotiate(make_negotiation_request(terminal, ids.front(), modest));
  show_outcome(retry);
  if (retry.verdict == NegotiationStatus::kFailedWithoutOffer && modest.mm.audio) {
    std::cout << "   renegotiating without the audio track...\n";
    modest.mm.audio.reset();
    retry = manager.negotiate(make_negotiation_request(terminal, ids.front(), modest));
    show_outcome(retry);
  }
  if (retry.has_commitment()) {
    auto s2 = sessions.open(terminal, modest, std::move(retry), 100.0);
    // The lobby visitor walks away: the choice period expires and the
    // reserved resources are de-allocated (paper Step 6).
    auto late = sessions.confirm(s2.value(), 100.0 + modest.mm.time.choice_period_s + 1.0);
    std::cout << "   late confirmation: " << (late.ok() ? "accepted" : late.error()) << '\n';
  }

  banner("Done");
  return 0;
}
