// Multi-domain tour: hierarchical QoS negotiation across administrative
// domains ([Haf 95b]). A client in one domain plays documents from servers
// in another; the transit can go through two cheap regional domains or one
// premium backbone. Watch the root negotiation compose per-domain segment
// offers, prefer the cheap composition, and overflow to the premium route
// as the regional capacity fills.
// Run: ./examples/multi_domain_tour
#include <iostream>

#include "core/qos_manager.hpp"
#include "document/catalog.hpp"
#include "document/corpus.hpp"
#include "domain/multi_domain.hpp"
#include "server/media_server.hpp"
#include "sim/experiment.hpp"

using namespace qosnp;

int main() {
  CorpusConfig corpus;
  corpus.num_documents = 6;
  corpus.seed = 9;
  Catalog catalog;
  for (auto& doc : generate_corpus(corpus)) catalog.add(std::move(doc));

  auto flat = [](std::int64_t micros_per_s) {
    return CostTable{{{1'000'000'000, Money::micros(micros_per_s)}}};
  };
  MultiDomainTransport net(
      {
          {"metro-net", 400'000'000, flat(200), 1.0},
          {"regional-a", 40'000'000, flat(500), 5.0},
          {"regional-b", 40'000'000, flat(500), 5.0},
          {"premium-backbone", 400'000'000, flat(8'000), 3.0},
          {"hoster-net", 400'000'000, flat(200), 1.0},
      },
      MultiDomainTransport::RoutePolicy::kCheapest);
  (void)net.add_peering("metro-net", "regional-a");
  (void)net.add_peering("regional-a", "regional-b");
  (void)net.add_peering("regional-b", "hoster-net");
  (void)net.add_peering("metro-net", "premium-backbone");
  (void)net.add_peering("premium-backbone", "hoster-net");
  (void)net.attach("client-0", "metro-net");
  (void)net.attach("server-node-0", "hoster-net");
  (void)net.attach("server-node-1", "hoster-net");

  ServerFarm farm;
  farm.add(MediaServerConfig{"server-a", "server-node-0", 300'000'000, 64});
  farm.add(MediaServerConfig{"server-b", "server-node-1", 300'000'000, 64});
  ClientMachine client;
  client.name = "client-0";
  client.node = "client-0";
  client.decoders = {CodingFormat::kMPEG1,     CodingFormat::kMPEG2, CodingFormat::kMJPEG,
                     CodingFormat::kPCM,       CodingFormat::kADPCM, CodingFormat::kMPEGAudio,
                     CodingFormat::kPlainText, CodingFormat::kJPEG,  CodingFormat::kGIF};

  QoSManager manager(catalog, farm, net);
  const UserProfile profile = standard_profile_mix()[0];  // demanding

  std::cout << "Negotiating every article; transit = regional (cheap) or premium:\n\n";
  std::vector<NegotiationResult> held;
  for (const DocumentId& id : catalog.list()) {
    NegotiationResult outcome = manager.negotiate(make_negotiation_request(client, id, profile));
    std::cout << id << ": " << to_string(outcome.verdict);
    if (outcome.has_commitment()) {
      std::cout << " via {";
      bool first = true;
      for (FlowId flow : outcome.commitment.flow_ids()) {
        for (const DomainId& d : net.route_of(flow)) {
          if (d == "regional-a" || d == "premium-backbone") {
            std::cout << (first ? "" : ", ") << d;
            first = false;
          }
        }
        break;  // one flow's transit is representative
      }
      std::cout << "}";
      held.push_back(std::move(outcome));
    }
    std::cout << '\n';
  }

  std::cout << "\nDomain usage after admissions:\n";
  for (const DomainId& d : {std::string("regional-a"), std::string("premium-backbone")}) {
    const DomainUsage u = net.usage(d);
    std::cout << "  " << d << ": " << u.reserved_bps / 1'000'000 << " / "
              << u.capacity_bps / 1'000'000 << " Mbit/s reserved across " << u.flow_count
              << " flows\n";
  }
  std::cout << "\nThe cheap regional composition carries traffic until it fills; the\n"
               "premium backbone absorbs the overflow — per-domain tariffs decide.\n";
  return 0;
}
