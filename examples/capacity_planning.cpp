// Capacity planning with the simulator: how much backbone bandwidth does a
// news-on-demand deployment need to keep the blocking probability under a
// target at a given load? Sweeps backbone capacity and prints the service /
// blocking curve — the kind of question the negotiation-aware simulator
// answers for an operator.
// Run: ./examples/capacity_planning [arrival_rate_per_s]
#include <cstdlib>
#include <iomanip>
#include <iostream>

#include "sim/experiment.hpp"

using namespace qosnp;

int main(int argc, char** argv) {
  const double rate = argc > 1 ? std::strtod(argv[1], nullptr) : 0.3;

  std::cout << "Capacity planning: arrival rate " << rate << "/s, 12 clients, 40 articles\n\n";
  std::cout << std::left << std::setw(16) << "backbone" << std::setw(10) << "service"
            << std::setw(10) << "blocked" << std::setw(12) << "mean util" << std::setw(12)
            << "revenue" << '\n';
  std::cout << std::string(60, '-') << '\n';

  for (const std::int64_t backbone :
       {20'000'000LL, 40'000'000LL, 80'000'000LL, 160'000'000LL, 320'000'000LL}) {
    ExperimentConfig config;
    config.corpus.num_documents = 40;
    config.corpus.seed = 21;
    config.num_clients = 12;
    config.sim_duration_s = 1'200.0;
    config.arrival_rate_per_s = rate;
    config.backbone_bps = backbone;
    config.server_disk_bps = backbone;     // scale servers with the backbone
    config.access_bps = backbone / 2;      // ... and the access links
    config.seed = 7;
    const ExperimentResult result = run_experiment(config);
    const SimMetrics& m = result.metrics;
    std::cout << std::setw(16) << (std::to_string(backbone / 1'000'000) + " Mbit/s")
              << std::setw(10)
              << (std::to_string(static_cast<int>(m.service_rate() * 100)) + "%")
              << std::setw(10)
              << (std::to_string(static_cast<int>(m.blocking_probability() * 100)) + "%")
              << std::setw(12)
              << (std::to_string(static_cast<int>(m.mean_utilization() * 100)) + "%")
              << std::setw(12) << m.revenue.to_string() << '\n';
  }
  std::cout << "\nRead off the first row that meets your blocking target.\n";
  return 0;
}
