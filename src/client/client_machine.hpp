// Client machine model (paper Steps 1-2): the characteristics checked by
// *static local negotiation* (screen size, screen colour, audio device) and
// *static compatibility checking* (which decoders the machine supports).
// The paper's examples: "the user asks for a color video, while the client
// machine screen is black&white" (FAILEDWITHLOCALOFFER); "the client machine
// supports only MPEG decoder and the video variant is coded as MJPEG"
// (that variant is not feasible).
#pragma once

#include <algorithm>
#include <string>
#include <vector>

#include "media/qos.hpp"
#include "media/types.hpp"
#include "net/topology.hpp"
#include "profile/profiles.hpp"

namespace qosnp {

struct ScreenSpec {
  int width_px = 1920;
  int height_px = 1080;
  ColorDepth color = ColorDepth::kSuperColor;
};

struct ClientMachine {
  std::string name = "client";
  NodeId node;  ///< attachment point in the network topology
  ScreenSpec screen;
  std::vector<CodingFormat> decoders{CodingFormat::kMPEG1, CodingFormat::kJPEG,
                                     CodingFormat::kPCM, CodingFormat::kPlainText};
  AudioQuality max_audio = AudioQuality::kCD;
  bool has_audio_out = true;

  bool can_decode(CodingFormat format) const {
    return std::find(decoders.begin(), decoders.end(), format) != decoders.end();
  }

  /// Best video QoS this machine can render (the "local offer" of
  /// FAILEDWITHLOCALOFFER).
  VideoQoS best_video() const {
    return VideoQoS{screen.color, kHdtvFrameRate, std::min(screen.width_px, kHdtvResolution)};
  }
  ImageQoS best_image() const {
    return ImageQoS{screen.color, std::min(screen.width_px, kHdtvResolution)};
  }
  AudioQoS best_audio() const { return AudioQoS{max_audio}; }

  bool supports(const VideoQoS& qos) const {
    return screen.color >= qos.color && screen.width_px >= qos.resolution;
  }
  bool supports(const AudioQoS& qos) const {
    return has_audio_out && max_audio >= qos.quality;
  }
  bool supports(const ImageQoS& qos) const {
    return screen.color >= qos.color && screen.width_px >= qos.resolution;
  }
};

/// Result of static local negotiation (Step 1) against a user profile: the
/// list of requested characteristics the machine cannot render, and the
/// best the machine could do instead (the local offer).
struct LocalCheck {
  bool ok = true;
  std::vector<std::string> problems;
  /// The user's profile clipped to what the machine can render.
  MMProfile local_offer;
};

/// Step 1: check the *desired* request against the machine; a request whose
/// worst-acceptable values already exceed the hardware fails locally.
LocalCheck local_negotiation(const ClientMachine& machine, const MMProfile& requested);

}  // namespace qosnp
