#include "client/client_machine.hpp"

#include <sstream>

namespace qosnp {

namespace {

template <typename Q>
Q clip_to(const Q& wanted, const Q& best);

template <>
VideoQoS clip_to<VideoQoS>(const VideoQoS& wanted, const VideoQoS& best) {
  VideoQoS out = wanted;
  out.color = std::min(out.color, best.color);
  out.frame_rate_fps = std::min(out.frame_rate_fps, best.frame_rate_fps);
  out.resolution = std::min(out.resolution, best.resolution);
  return out;
}

template <>
AudioQoS clip_to<AudioQoS>(const AudioQoS& wanted, const AudioQoS& best) {
  AudioQoS out = wanted;
  out.quality = std::min(out.quality, best.quality);
  return out;
}

template <>
ImageQoS clip_to<ImageQoS>(const ImageQoS& wanted, const ImageQoS& best) {
  ImageQoS out = wanted;
  out.color = std::min(out.color, best.color);
  out.resolution = std::min(out.resolution, best.resolution);
  return out;
}

}  // namespace

LocalCheck local_negotiation(const ClientMachine& machine, const MMProfile& requested) {
  LocalCheck check;
  check.local_offer = requested;

  if (requested.video) {
    const VideoQoS best = machine.best_video();
    // The request fails locally only when even the worst-acceptable values
    // exceed the hardware; a desired value above the hardware is clipped
    // into the local offer.
    if (!machine.supports(requested.video->worst)) {
      check.ok = false;
      std::ostringstream os;
      os << "client screen cannot render the worst-acceptable video "
         << requested.video->worst.to_string() << "; best is " << best.to_string();
      check.problems.push_back(os.str());
    }
    check.local_offer.video->desired = clip_to(requested.video->desired, best);
    check.local_offer.video->worst = clip_to(requested.video->worst, best);
  }
  if (requested.audio) {
    const AudioQoS best = machine.best_audio();
    if (!machine.supports(requested.audio->worst)) {
      check.ok = false;
      std::ostringstream os;
      os << "client audio device cannot render the worst-acceptable audio "
         << requested.audio->worst.to_string();
      if (machine.has_audio_out) os << "; best is " << best.to_string();
      check.problems.push_back(os.str());
    }
    check.local_offer.audio->desired = clip_to(requested.audio->desired, best);
    check.local_offer.audio->worst = clip_to(requested.audio->worst, best);
  }
  if (requested.image) {
    const ImageQoS best = machine.best_image();
    if (!machine.supports(requested.image->worst)) {
      check.ok = false;
      std::ostringstream os;
      os << "client screen cannot render the worst-acceptable image "
         << requested.image->worst.to_string() << "; best is " << best.to_string();
      check.problems.push_back(os.str());
    }
    check.local_offer.image->desired = clip_to(requested.image->desired, best);
    check.local_offer.image->worst = clip_to(requested.image->worst, best);
  }
  // Text rendering needs no hardware capability beyond a screen.
  return check;
}

}  // namespace qosnp
