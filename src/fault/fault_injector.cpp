#include "fault/fault_injector.hpp"

#include "util/log.hpp"

namespace qosnp {

namespace {

/// Shared injection step: consult the spec, bump counters, and decide
/// whether this admission event is refused before reaching the real
/// component. Returns a non-empty reason when refused.
std::string draw_fault(const FaultSpec& spec, Rng& rng, int event_index, FaultStats& stats,
                       const std::string& what) {
  if (spec.outage_after_events >= 0 && event_index >= spec.outage_after_events &&
      event_index < spec.outage_after_events + spec.outage_length_events) {
    ++stats.outage_refusals;
    return what + " is down (injected outage)";
  }
  if (spec.latency_spike_p > 0.0 && rng.chance(spec.latency_spike_p)) {
    ++stats.latency_spikes;
    stats.injected_latency_ms += spec.latency_spike_ms;
  }
  if (spec.transient_failure_p > 0.0 && rng.chance(spec.transient_failure_p)) {
    ++stats.injected_refusals;
    return what + " transiently refused (injected fault)";
  }
  return {};
}

}  // namespace

/// Per-server shim: injects the server's FaultSpec in front of the real
/// admission, forwards everything else untouched.
class FaultyServerFarm::FaultyServer final : public StreamServer {
 public:
  FaultyServer(StreamServer* inner, const FaultSpec& spec, std::uint64_t seed)
      : inner_(inner), spec_(spec), rng_(seed) {}

  const ServerId& id() const override { return inner_->id(); }
  const NodeId& node() const override { return inner_->node(); }

  Result<StreamId, Refusal> admit(const StreamRequirements& req) override {
    {
      std::lock_guard lk(mu_);
      const std::string fault =
          draw_fault(spec_, rng_, events_++, stats_, "server '" + inner_->id() + "'");
      if (!fault.empty()) {
        QOSNP_LOG_DEBUG("fault", fault);
        return transient_refusal("fault:" + inner_->id(), fault);
      }
    }
    auto result = inner_->admit(req);
    if (result.ok()) {
      std::lock_guard lk(mu_);
      ++stats_.admitted;
    }
    return result;
  }

  bool release(StreamId id) override {
    {
      std::lock_guard lk(mu_);
      if (spec_.flaky_release_p > 0.0 && rng_.chance(spec_.flaky_release_p)) {
        // A flaky release costs an internal retry but always lands: the
        // decorator still forwards, so nothing ever leaks.
        ++stats_.flaky_releases;
      }
    }
    const bool released = inner_->release(id);
    if (released) {
      std::lock_guard lk(mu_);
      ++stats_.released;
    }
    return released;
  }

  FaultStats stats() const {
    std::lock_guard lk(mu_);
    return stats_;
  }

 private:
  StreamServer* inner_;
  FaultSpec spec_;
  mutable std::mutex mu_;
  Rng rng_;
  int events_ = 0;
  FaultStats stats_;
};

FaultyServerFarm::FaultyServerFarm(ServerProvider& inner, FaultPlan plan)
    : inner_(&inner), plan_(std::move(plan)) {}

FaultyServerFarm::~FaultyServerFarm() = default;

StreamServer* FaultyServerFarm::find_server(const ServerId& id) {
  StreamServer* inner = inner_->find_server(id);
  if (inner == nullptr) return nullptr;
  std::lock_guard lk(mu_);
  auto it = wrapped_.find(id);
  if (it == wrapped_.end()) {
    it = wrapped_
             .emplace(id, std::make_unique<FaultyServer>(inner, plan_.server_spec(id),
                                                         fault_entity_seed(plan_.seed, id)))
             .first;
  }
  return it->second.get();
}

FaultStats FaultyServerFarm::stats() const {
  std::lock_guard lk(mu_);
  FaultStats total;
  for (const auto& [_, server] : wrapped_) total.merge(server->stats());
  return total;
}

FaultStats FaultyServerFarm::server_stats(const ServerId& id) const {
  std::lock_guard lk(mu_);
  auto it = wrapped_.find(id);
  return it != wrapped_.end() ? it->second->stats() : FaultStats{};
}

Result<FlowId, Refusal> FaultyTransportProvider::reserve(const NodeId& src, const NodeId& dst,
                                                         const StreamRequirements& req) {
  {
    std::lock_guard lk(mu_);
    auto [it, inserted] = routes_.try_emplace({src, dst});
    RouteState& route = it->second;
    if (inserted) route.rng = Rng(fault_entity_seed(plan_.seed, src + "->" + dst));
    const std::string fault = draw_fault(plan_.route_spec(src, dst), route.rng, route.events++,
                                         route.stats, "route " + src + "->" + dst);
    if (!fault.empty()) {
      QOSNP_LOG_DEBUG("fault", fault);
      return transient_refusal("fault:" + src + "->" + dst, fault);
    }
  }
  auto result = inner_->reserve(src, dst, req);
  if (result.ok()) {
    std::lock_guard lk(mu_);
    ++routes_[{src, dst}].stats.admitted;
  }
  return result;
}

bool FaultyTransportProvider::release(FlowId id) {
  {
    std::lock_guard lk(mu_);
    if (plan_.transport_defaults.flaky_release_p > 0.0 &&
        release_rng_.chance(plan_.transport_defaults.flaky_release_p)) {
      ++release_stats_.flaky_releases;
    }
  }
  const bool released = inner_->release(id);
  if (released) {
    std::lock_guard lk(mu_);
    ++release_stats_.released;
  }
  return released;
}

FaultStats FaultyTransportProvider::stats() const {
  std::lock_guard lk(mu_);
  FaultStats total = release_stats_;
  for (const auto& [_, route] : routes_) total.merge(route.stats);
  return total;
}

}  // namespace qosnp
