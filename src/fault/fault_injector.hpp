// Fault-injecting decorators around the two admission surfaces of Step 5:
//
//   FaultyServerFarm      : ServerProvider   — wraps a real farm; each
//                           server the committer resolves is handed back
//                           behind a StreamServer shim that injects the
//                           plan's faults for that server.
//   FaultyTransportProvider : TransportProvider — same idea per route.
//
// Neither decorator touches the wrapped component's internals: injected
// refusals are returned before the real component is asked, so the real
// capacity accounting never sees them; forwarded calls behave exactly as
// without the decorator. Releases are ALWAYS forwarded (a flaky release is
// recorded as needing an internal retry, not dropped), so the RAII
// commitment invariant — everything admitted is eventually released — holds
// under any fault plan. That is what the leak checks in tests/fault_test.cpp
// assert via stats().admitted == stats().released.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

#include "fault/fault_plan.hpp"
#include "net/transport.hpp"
#include "server/media_server.hpp"
#include "util/rng.hpp"

namespace qosnp {

/// ServerProvider decorator injecting the plan's per-server faults.
class FaultyServerFarm final : public ServerProvider {
 public:
  // Both out of line: FaultyServer is incomplete here, and the members'
  // destructors may not be instantiated against the incomplete type.
  FaultyServerFarm(ServerProvider& inner, FaultPlan plan);
  ~FaultyServerFarm() override;

  StreamServer* find_server(const ServerId& id) override;

  /// Aggregated over every wrapped server.
  FaultStats stats() const;
  /// Per-server view (zero stats for servers never resolved).
  FaultStats server_stats(const ServerId& id) const;

 private:
  class FaultyServer;

  ServerProvider* inner_;
  FaultPlan plan_;
  mutable std::mutex mu_;
  std::map<ServerId, std::unique_ptr<FaultyServer>> wrapped_;
};

/// TransportProvider decorator injecting the plan's per-route faults.
class FaultyTransportProvider final : public TransportProvider {
 public:
  FaultyTransportProvider(TransportProvider& inner, FaultPlan plan)
      : inner_(&inner), plan_(std::move(plan)),
        release_rng_(fault_entity_seed(plan_.seed, "transport-release")) {}

  Result<FlowId, Refusal> reserve(const NodeId& src, const NodeId& dst,
                                  const StreamRequirements& req) override;
  bool release(FlowId id) override;

  /// Aggregated over every route plus the release stream.
  FaultStats stats() const;

 private:
  struct RouteState {
    Rng rng{0};
    int events = 0;
    FaultStats stats;
  };

  TransportProvider* inner_;
  FaultPlan plan_;
  mutable std::mutex mu_;
  std::map<std::pair<NodeId, NodeId>, RouteState> routes_;
  Rng release_rng_;
  FaultStats release_stats_;
};

}  // namespace qosnp
