// Fault-injection plan: a seedable description of how servers and transport
// routes misbehave. The negotiation procedure itself is never touched —
// decorators (fault_injector.hpp) wrap the real ServerFarm/TransportProvider
// and consult the plan on every admission event. Everything is driven by
// per-entity SplitMix64 streams derived from the plan seed, so a scenario is
// bit-reproducible: same plan + same request order -> same injected faults.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>

#include "document/model.hpp"
#include "net/topology.hpp"

namespace qosnp {

/// How one server or one route misbehaves.
struct FaultSpec {
  /// Probability that an admission/reservation is transiently refused.
  double transient_failure_p = 0.0;
  /// Probability that an admission is delayed by latency_spike_ms (recorded
  /// in FaultStats; commitment time is virtual, nothing actually sleeps).
  double latency_spike_p = 0.0;
  double latency_spike_ms = 50.0;
  /// Probability that a release needs an (internal, always successful)
  /// retry. Recorded only — the release is always forwarded, so RAII
  /// accounting never leaks.
  double flaky_release_p = 0.0;
  /// Deterministic outage window counted in admission events: events
  /// [outage_after_events, outage_after_events + outage_length_events) are
  /// refused outright. -1 disables the outage.
  int outage_after_events = -1;
  int outage_length_events = 0;

  bool enabled() const {
    return transient_failure_p > 0.0 || latency_spike_p > 0.0 || flaky_release_p > 0.0 ||
           outage_after_events >= 0;
  }
};

/// The full scenario: defaults for every server / every route, plus
/// per-entity overrides.
struct FaultPlan {
  std::uint64_t seed = 0xfa017ULL;
  FaultSpec server_defaults;
  FaultSpec transport_defaults;
  std::map<ServerId, FaultSpec> per_server;
  /// Keyed (src node, dst node) as reserve() sees them. With one access
  /// link per end node (the dumbbell used throughout), a route is a link.
  std::map<std::pair<NodeId, NodeId>, FaultSpec> per_route;

  const FaultSpec& server_spec(const ServerId& id) const {
    auto it = per_server.find(id);
    return it != per_server.end() ? it->second : server_defaults;
  }
  const FaultSpec& route_spec(const NodeId& src, const NodeId& dst) const {
    auto it = per_route.find({src, dst});
    return it != per_route.end() ? it->second : transport_defaults;
  }
};

/// What a decorator did and saw. admitted/released pair up with the RAII
/// leak check: every admission the decorator let through must eventually be
/// released through it too.
struct FaultStats {
  long injected_refusals = 0;   ///< probabilistic transient refusals
  long outage_refusals = 0;     ///< refusals inside an outage window
  long latency_spikes = 0;
  double injected_latency_ms = 0.0;
  long flaky_releases = 0;      ///< releases that needed the internal retry
  long admitted = 0;            ///< admissions forwarded and accepted
  long released = 0;            ///< releases forwarded and accepted

  void merge(const FaultStats& other) {
    injected_refusals += other.injected_refusals;
    outage_refusals += other.outage_refusals;
    latency_spikes += other.latency_spikes;
    injected_latency_ms += other.injected_latency_ms;
    flaky_releases += other.flaky_releases;
    admitted += other.admitted;
    released += other.released;
  }
};

/// Deterministic per-entity seed: FNV-1a over the entity name mixed into the
/// plan seed. (std::hash is not guaranteed stable across implementations;
/// reproducibility across builds needs an explicit hash.)
inline std::uint64_t fault_entity_seed(std::uint64_t plan_seed, const std::string& entity) {
  std::uint64_t h = 0xcbf29ce484222325ULL ^ plan_seed;
  for (unsigned char c : entity) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace qosnp
