// Population backend driving the concurrent NegotiationService: each
// simulated user's request goes through the bounded queue and worker pool
// (Steps 1-5 plus session admission), and the population's event loop blocks
// on the response future. One request is in flight at a time, so a
// same-seed run is byte-identical no matter how many workers the service
// runs — this backend verifies the full concurrent stack under the
// population workload (tsan included); queueing dynamics under true
// concurrency are bench_e16's job.
//
// The service must run with ServiceConfig::auto_confirm = false: Step 6
// (confirm within choicePeriod, abandon, or time out) belongs to the
// population, not the worker.
#pragma once

#include <stdexcept>
#include <utility>

#include "service/negotiation_service.hpp"
#include "service/service_client.hpp"
#include "sim/population.hpp"

namespace qosnp {

/// Thin adapter over ServiceClient: the population's negotiate() is exactly
/// the client's blocking submit(); only the session time base and the
/// auto_confirm guard are backend concerns.
class ServicePopulationBackend final : public PopulationBackend {
 public:
  explicit ServicePopulationBackend(NegotiationService& service)
      : service_(&service), client_(service) {
    if (service.config().auto_confirm) {
      throw std::invalid_argument(
          "ServicePopulationBackend: the service must run with auto_confirm=false "
          "(the population drives Step 6 itself)");
    }
  }

  NegotiationResult negotiate(NegotiationRequest request, double /*sim_now_s*/) override {
    return client_.submit(std::move(request));
  }

  SessionManager& sessions() override { return client_.service().sessions(); }

  /// Sessions opened by the service live on its wall clock, not the
  /// simulation clock.
  double session_now_s(double /*sim_now_s*/) const override { return service_->now_s(); }

  /// The engine the service's workers negotiate through, when configured.
  PolicyEngine* policy() override { return client_.service().config().policy; }

 private:
  NegotiationService* service_;
  ServiceClient client_;
};

}  // namespace qosnp
