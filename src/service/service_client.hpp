// ServiceClient: NegotiationClient over an in-process NegotiationService.
// submit() blocks on the worker pool's future; submit_async() is the
// service's own completion-callback primitive, unchanged. The service owns
// admission, shedding and metrics — this adapter only narrows it to the
// common client interface.
#pragma once

#include <utility>

#include "core/negotiation_client.hpp"
#include "service/negotiation_service.hpp"

namespace qosnp {

class ServiceClient final : public NegotiationClient {
 public:
  explicit ServiceClient(NegotiationService& service) : service_(&service) {}

  NegotiationResult submit(NegotiationRequest request) override {
    return service_->submit(std::move(request)).get();
  }

  void submit_async(NegotiationRequest request, CompletionFn done) override {
    service_->submit_async(std::move(request), std::move(done));
  }

  std::string drain_metrics() const override { return service_->metrics().expose(); }

  NegotiationService& service() { return *service_; }

 private:
  NegotiationService* service_;
};

}  // namespace qosnp
