// Bounded MPMC blocking queue: the admission edge of the negotiation
// service. Producers (request submitters) use the non-blocking try_push —
// a full queue is the service's backpressure signal and the caller sheds
// the request with FAILEDTRYLATER; consumers (the worker pool) block in
// pop() until work arrives or the queue is closed and drained.
#pragma once

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <optional>
#include <queue>
#include <utility>

namespace qosnp {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(std::max<std::size_t>(1, capacity)) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Non-blocking admit. Returns false (without consuming `item`) when the
  /// queue is full or closed — the shed decision is the caller's.
  bool try_push(T&& item) {
    {
      std::lock_guard lk(mu_);
      if (closed_ || queue_.size() >= capacity_) return false;
      queue_.push(std::move(item));
      high_water_ = std::max(high_water_, queue_.size());
    }
    cv_.notify_one();
    return true;
  }

  /// Blocking take. Empty optional once the queue is closed *and* drained —
  /// close() lets consumers finish the backlog before they exit.
  std::optional<T> pop() {
    std::unique_lock lk(mu_);
    cv_.wait(lk, [this] { return closed_ || !queue_.empty(); });
    if (queue_.empty()) return std::nullopt;
    T item = std::move(queue_.front());
    queue_.pop();
    return item;
  }

  /// Stop accepting pushes and wake every blocked consumer.
  void close() {
    {
      std::lock_guard lk(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  std::size_t size() const {
    std::lock_guard lk(mu_);
    return queue_.size();
  }

  /// Deepest backlog ever observed (the "queue depth" service metric).
  std::size_t high_water() const {
    std::lock_guard lk(mu_);
    return high_water_;
  }

  std::size_t capacity() const { return capacity_; }

  bool closed() const {
    std::lock_guard lk(mu_);
    return closed_;
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::queue<T> queue_;
  std::size_t high_water_ = 0;
  bool closed_ = false;
};

}  // namespace qosnp
