#include "service/negotiation_service.hpp"

#include <chrono>
#include <sstream>
#include <utility>

#include "util/log.hpp"

namespace qosnp {

std::string_view to_string(ShedReason reason) {
  switch (reason) {
    case ShedReason::kNone: return "none";
    case ShedReason::kQueueFull: return "queue-full";
    case ShedReason::kDeadlineExpired: return "deadline-expired";
  }
  return "?";
}

SimMetrics ServiceReport::to_sim_metrics() const {
  SimMetrics m;
  m.arrivals = submitted;
  for (std::size_t i = 0; i < by_status.size(); ++i) m.by_status[i] = by_status[i];
  m.confirmed = sessions_confirmed;
  m.negotiation_ms_total = latency.sum_ms();
  m.service_requests = submitted;
  m.shed_queue_full = shed_queue_full;
  m.shed_deadline = shed_deadline;
  m.queue_high_water = queue_high_water;
  m.latency_p50_ms = latency.quantile_ms(0.50);
  m.latency_p95_ms = latency.quantile_ms(0.95);
  m.latency_p99_ms = latency.quantile_ms(0.99);
  m.service_throughput_rps = throughput_rps();
  return m;
}

std::string ServiceReport::summary() const {
  std::ostringstream os;
  os << "submitted=" << submitted << " processed=" << processed
     << " shed-queue=" << shed_queue_full << " shed-deadline=" << shed_deadline
     << " opened=" << sessions_opened << " confirmed=" << sessions_confirmed
     << " queue-high-water=" << queue_high_water << " throughput="
     << throughput_rps() << "/s p50=" << latency.quantile_ms(0.50)
     << "ms p95=" << latency.quantile_ms(0.95) << "ms p99=" << latency.quantile_ms(0.99)
     << "ms";
  return os.str();
}

NegotiationService::NegotiationService(QoSManager& manager, SessionManager& sessions,
                                       ServiceConfig config)
    : manager_(&manager),
      sessions_(&sessions),
      config_(config),
      queue_(config.queue_capacity) {
  if (config_.workers == 0) config_.workers = 1;
  worker_stats_.reserve(config_.workers);
  for (std::size_t i = 0; i < config_.workers; ++i) {
    worker_stats_.push_back(std::make_unique<WorkerStats>());
  }
}

NegotiationService::~NegotiationService() { stop(); }

void NegotiationService::start() {
  if (running_.exchange(true, std::memory_order_acq_rel)) return;
  started_ms_ = clock_.elapsed_ms();
  stopped_ms_ = 0.0;
  workers_.reserve(config_.workers);
  for (std::size_t i = 0; i < config_.workers; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
  QOSNP_LOG_INFO("service", "started ", config_.workers, " workers, queue capacity ",
                 queue_.capacity());
}

void NegotiationService::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  queue_.close();
  for (auto& w : workers_) w.join();
  workers_.clear();
  stopped_ms_ = clock_.elapsed_ms();
  QOSNP_LOG_INFO("service", "stopped; ", submitted_.load(), " requests submitted");
}

std::future<ServiceResponse> NegotiationService::submit(ServiceRequest request) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  Item item;
  item.accepted_ms = clock_.elapsed_ms();
  item.request = std::move(request);
  std::future<ServiceResponse> future = item.promise.get_future();
  if (!running_.load(std::memory_order_acquire) || !queue_.try_push(std::move(item))) {
    // Load shedding at the queue edge: the bounded queue is full (or the
    // service is not accepting). FAILEDTRYLATER is the honest verdict —
    // the overload is transient by definition.
    shed_queue_full_.fetch_add(1, std::memory_order_relaxed);
    ServiceResponse shed;
    shed.request_id = item.request.id;
    shed.status = NegotiationStatus::kFailedTryLater;
    shed.shed = ShedReason::kQueueFull;
    shed.total_ms = clock_.elapsed_ms() - item.accepted_ms;
    QOSNP_LOG_DEBUG("service", "shed request ", item.request.id, " at the queue edge");
    item.promise.set_value(std::move(shed));
  }
  return future;
}

void NegotiationService::worker_loop(std::size_t index) {
  set_log_tag("w" + std::to_string(index));
  WorkerStats& stats = *worker_stats_[index];
  while (auto item = queue_.pop()) {
    ServiceResponse response = process(*item, index, stats);
    item->promise.set_value(std::move(response));
  }
  set_log_tag("");
}

ServiceResponse NegotiationService::process(Item& item, std::size_t worker_index,
                                            WorkerStats& stats) {
  ScopedLogTag tag("w" + std::to_string(worker_index) + "/r" + std::to_string(item.request.id));
  ServiceResponse response;
  response.request_id = item.request.id;
  response.worker = static_cast<int>(worker_index);
  response.queue_ms = clock_.elapsed_ms() - item.accepted_ms;

  if (config_.deadline_ms > 0.0 && response.queue_ms > config_.deadline_ms) {
    // The request aged out while queued: rejecting it now is cheaper than
    // negotiating for a client that has given up (and sheds queueing delay
    // for everyone behind it).
    response.status = NegotiationStatus::kFailedTryLater;
    response.shed = ShedReason::kDeadlineExpired;
    ++stats.shed_deadline;
    QOSNP_LOG_DEBUG("service", "deadline expired after ", response.queue_ms, "ms in queue");
  } else {
    if (config_.simulated_rtt_ms > 0.0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(config_.simulated_rtt_ms));
    }
    NegotiationOutcome outcome =
        manager_->negotiate(item.request.client, item.request.document, item.request.profile);
    response.status = outcome.status;
    const bool take = outcome.has_commitment() &&
                      (outcome.status == NegotiationStatus::kSucceeded ||
                       item.request.accept_degraded);
    if (take) {
      auto opened = sessions_->open(item.request.client, item.request.profile,
                                    std::move(outcome), now_s());
      if (opened.ok()) {
        ++stats.opened;
        response.session = opened.value();
        if (config_.auto_confirm) {
          if (sessions_->confirm(response.session, now_s()).ok()) ++stats.confirmed;
        }
      } else {
        QOSNP_LOG_WARN("service", "session open failed: ", opened.error());
      }
    }
    // A declined degraded offer drops `outcome` here and RAII releases its
    // commitment — nothing stays reserved for a user who walked away.
  }

  ++stats.processed;
  ++stats.by_status[static_cast<std::size_t>(response.status)];
  response.total_ms = clock_.elapsed_ms() - item.accepted_ms;
  stats.latency.record(response.total_ms);
  return response;
}

ServiceReport NegotiationService::report() const {
  ServiceReport r;
  r.submitted = submitted_.load(std::memory_order_relaxed);
  r.shed_queue_full = shed_queue_full_.load(std::memory_order_relaxed);
  r.accepted = r.submitted - r.shed_queue_full;
  for (const auto& ws : worker_stats_) {
    r.processed += ws->processed;
    r.shed_deadline += ws->shed_deadline;
    for (std::size_t i = 0; i < ws->by_status.size(); ++i) r.by_status[i] += ws->by_status[i];
    r.sessions_opened += ws->opened;
    r.sessions_confirmed += ws->confirmed;
    r.latency.merge(ws->latency);
  }
  // Queue-edge sheds are FAILEDTRYLATER responses too.
  r.by_status[static_cast<std::size_t>(NegotiationStatus::kFailedTryLater)] += r.shed_queue_full;
  r.queue_high_water = queue_.high_water();
  const double end_ms = stopped_ms_ > 0.0 ? stopped_ms_ : clock_.elapsed_ms();
  r.wall_s = (end_ms - started_ms_) / 1e3;
  return r;
}

}  // namespace qosnp
