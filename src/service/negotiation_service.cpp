#include "service/negotiation_service.hpp"

#include <chrono>
#include <sstream>
#include <utility>

#include "policy/preemption.hpp"
#include "util/log.hpp"
#include "util/validate.hpp"

namespace qosnp {

SimMetrics ServiceReport::to_sim_metrics() const {
  SimMetrics m;
  m.arrivals = submitted;
  for (std::size_t i = 0; i < by_status.size(); ++i) m.by_status[i] = by_status[i];
  m.confirmed = sessions_confirmed;
  m.negotiation_ms_total = latency.sum_ms();
  m.service_requests = submitted;
  m.shed_queue_full = shed_queue_full;
  m.shed_deadline = shed_deadline;
  m.queue_high_water = queue_high_water;
  m.latency_p50_ms = latency.quantile_ms(0.50);
  m.latency_p95_ms = latency.quantile_ms(0.95);
  m.latency_p99_ms = latency.quantile_ms(0.99);
  m.service_throughput_rps = throughput_rps();
  return m;
}

std::string ServiceReport::summary() const {
  std::ostringstream os;
  os << "submitted=" << submitted << " processed=" << processed
     << " shed-queue=" << shed_queue_full << " shed-deadline=" << shed_deadline
     << " opened=" << sessions_opened << " confirmed=" << sessions_confirmed
     << " queue-high-water=" << queue_high_water << " throughput="
     << throughput_rps() << "/s p50=" << latency.quantile_ms(0.50)
     << "ms p95=" << latency.quantile_ms(0.95) << "ms p99=" << latency.quantile_ms(0.99)
     << "ms";
  return os.str();
}

ServiceConfig ServiceConfig::validated(ServiceConfig config) {
  require_config(config.workers > 0, "ServiceConfig", "workers must be at least 1");
  require_config(config.queue_capacity > 0, "ServiceConfig", "queue_capacity must be at least 1");
  require_config(config.deadline_ms >= 0.0, "ServiceConfig", "deadline_ms must not be negative");
  require_config(config.simulated_rtt_ms >= 0.0, "ServiceConfig",
                 "simulated_rtt_ms must not be negative");
  require_config(config.upgrade_scan_interval_ms >= 0.0, "ServiceConfig",
                 "upgrade_scan_interval_ms must not be negative");
  require_config(config.upgrade_scan_interval_ms == 0.0 || config.policy != nullptr,
                 "ServiceConfig", "upgrade_scan_interval_ms requires a policy engine");
  return config;
}

NegotiationService::NegotiationService(QoSManager& manager, SessionManager& sessions,
                                       ServiceConfig config)
    : manager_(&manager),
      sessions_(&sessions),
      config_(ServiceConfig::validated(std::move(config))),
      metrics_(config_.metrics != nullptr ? config_.metrics : &own_metrics_),
      queue_(config_.queue_capacity) {
  requests_total_ =
      &metrics_->counter("qosnp_requests_total", {}, "Requests submitted to the service");
  processed_total_ = &metrics_->counter("qosnp_processed_total", {},
                                        "Requests resolved by a worker (deadline sheds included)");
  for (std::size_t i = 0; i < responses_by_verdict_.size(); ++i) {
    const auto status = static_cast<NegotiationStatus>(i);
    responses_by_verdict_[i] =
        &metrics_->counter("qosnp_responses_total",
                           {{"verdict", std::string(to_string(status))}},
                           "Resolved responses by final verdict (sheds count as FAILEDTRYLATER)");
  }
  shed_queue_full_total_ =
      &metrics_->counter("qosnp_shed_total", {{"reason", std::string(to_string(ShedReason::kQueueFull))}},
                         "Requests shed without running the procedure, by reason");
  shed_deadline_total_ =
      &metrics_->counter("qosnp_shed_total",
                         {{"reason", std::string(to_string(ShedReason::kDeadlineExpired))}},
                         "Requests shed without running the procedure, by reason");
  sessions_opened_total_ =
      &metrics_->counter("qosnp_sessions_opened_total", {}, "Sessions admitted (Step 6 open)");
  sessions_confirmed_total_ = &metrics_->counter("qosnp_sessions_confirmed_total", {},
                                                 "Sessions confirmed within the choice period");
  commit_attempts_total_ = &metrics_->counter(
      "qosnp_commit_attempts_total", {}, "Offer-level commit attempts over all Step-5 walks");
  commit_retries_total_ = &metrics_->counter("qosnp_commit_retries_total", {},
                                             "Commit attempts beyond the first, per offer");
  traces_recorded_total_ =
      &metrics_->counter("qosnp_traces_recorded_total", {}, "Traces handed to the sink");
  queue_high_water_ =
      &metrics_->gauge("qosnp_queue_high_water", {}, "Deepest queue backlog observed");
  latency_ms_ = &metrics_->histogram("qosnp_request_latency_ms", {},
                                     "Accept-to-response latency in milliseconds");
  queue_wait_ms_ = &metrics_->histogram("qosnp_queue_wait_ms", {},
                                        "Accept-to-pickup queue wait in milliseconds");
  // A cache-enabled manager gets its counters mirrored into the same
  // registry the service reports from (last binding service wins).
  if (auto* cache = manager_->plan_cache()) cache->bind_metrics(*metrics_);
}

NegotiationService::~NegotiationService() { stop(); }

void NegotiationService::start() {
  if (running_.exchange(true, std::memory_order_acq_rel)) return;
  started_ms_ = clock_.elapsed_ms();
  stopped_ms_ = 0.0;
  workers_.reserve(config_.workers);
  for (std::size_t i = 0; i < config_.workers; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
  if (config_.policy != nullptr && config_.upgrade_scan_interval_ms > 0.0) {
    {
      std::lock_guard lk(scanner_mu_);
      scanner_stop_ = false;
    }
    upgrade_scanner_ = std::thread([this] { upgrade_scan_loop(); });
  }
  QOSNP_LOG_INFO("service", "started ", config_.workers, " workers, queue capacity ",
                 queue_.capacity());
}

void NegotiationService::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  queue_.close();
  for (auto& w : workers_) w.join();
  workers_.clear();
  if (upgrade_scanner_.joinable()) {
    {
      std::lock_guard lk(scanner_mu_);
      scanner_stop_ = true;
    }
    scanner_cv_.notify_all();
    upgrade_scanner_.join();
  }
  stopped_ms_ = clock_.elapsed_ms();
  QOSNP_LOG_INFO("service", "stopped; ", requests_total_->value(), " requests submitted");
}

void NegotiationService::finish_trace(Item& item, NegotiationResult& result) {
  if (!item.trace) return;
  item.trace->end_span(item.queue_span);
  item.trace->set_verdict(std::string(to_string(result.verdict)));
  item.trace->set_shed(std::string(to_string(result.shed)));
  std::shared_ptr<const NegotiationTrace> done = std::move(item.trace);
  config_.trace_sink->record(done);
  traces_recorded_total_->inc();
  result.trace = std::move(done);
}

void NegotiationService::count_response(const NegotiationResult& result) {
  responses_by_verdict_[static_cast<std::size_t>(result.verdict)]->inc();
}

void NegotiationService::submit_async(NegotiationRequest request, CompletionFn done) {
  requests_total_->inc();
  Item item;
  item.accepted_ms = clock_.elapsed_ms();
  item.request = std::move(request);
  item.done = std::move(done);
  if (config_.trace_sink != nullptr) {
    item.trace = std::make_shared<NegotiationTrace>(item.request.id);
    item.queue_span = item.trace->begin_span(Stage::kQueueWait);
  }
  if (!running_.load(std::memory_order_acquire) || !queue_.try_push(std::move(item))) {
    // Load shedding at the queue edge: the bounded queue is full (or the
    // service is not accepting). FAILEDTRYLATER is the honest verdict —
    // the overload is transient by definition.
    shed_queue_full_total_->inc();
    NegotiationResult shed;
    shed.request_id = item.request.id;
    shed.verdict = NegotiationStatus::kFailedTryLater;
    shed.shed = ShedReason::kQueueFull;
    shed.total_ms = clock_.elapsed_ms() - item.accepted_ms;
    count_response(shed);
    QOSNP_LOG_DEBUG("service", "shed request ", item.request.id, " at the queue edge");
    finish_trace(item, shed);
    item.done(std::move(shed));
  }
}

std::future<NegotiationResult> NegotiationService::submit(NegotiationRequest request) {
  auto promise = std::make_shared<std::promise<NegotiationResult>>();
  std::future<NegotiationResult> future = promise->get_future();
  submit_async(std::move(request),
               [promise](NegotiationResult result) { promise->set_value(std::move(result)); });
  return future;
}

void NegotiationService::upgrade_scan_loop() {
  set_log_tag("upgrade-scan");
  const auto interval =
      std::chrono::duration<double, std::milli>(config_.upgrade_scan_interval_ms);
  std::unique_lock lk(scanner_mu_);
  while (!scanner_stop_) {
    if (scanner_cv_.wait_for(lk, interval, [this] { return scanner_stop_; })) break;
    lk.unlock();
    const std::size_t promoted = config_.policy->run_upgrades();
    if (promoted > 0) QOSNP_LOG_DEBUG("service", "upgrade scan promoted ", promoted);
    lk.lock();
  }
  set_log_tag("");
}

void NegotiationService::worker_loop(std::size_t index) {
  set_log_tag("w" + std::to_string(index));
  while (auto item = queue_.pop()) {
    NegotiationResult response = process(*item, index);
    item->done(std::move(response));
  }
  set_log_tag("");
}

NegotiationResult NegotiationService::process(Item& item, std::size_t worker_index) {
  ScopedLogTag tag("w" + std::to_string(worker_index) + "/r" + std::to_string(item.request.id));
  const double queue_ms = clock_.elapsed_ms() - item.accepted_ms;
  if (item.trace) item.trace->end_span(item.queue_span);
  queue_wait_ms_->record(queue_ms);

  NegotiationResult response;
  const double deadline_ms =
      item.request.deadline_ms > 0.0 ? item.request.deadline_ms : config_.deadline_ms;
  if (deadline_ms > 0.0 && queue_ms > deadline_ms) {
    // The request aged out while queued: rejecting it now is cheaper than
    // negotiating for a client that has given up (and sheds queueing delay
    // for everyone behind it).
    response.verdict = NegotiationStatus::kFailedTryLater;
    response.shed = ShedReason::kDeadlineExpired;
    shed_deadline_total_->inc();
    QOSNP_LOG_DEBUG("service", "deadline expired after ", queue_ms, "ms in queue");
  } else {
    if (config_.simulated_rtt_ms > 0.0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(config_.simulated_rtt_ms));
    }
    const TraceContext ctx(item.trace.get());
    // The service owns per-request tracing: its trace (or none) replaces
    // whatever context the submitter put on the request.
    item.request.trace = ctx;
    response = config_.policy != nullptr ? config_.policy->negotiate(item.request)
                                         : manager_->negotiate(item.request);
    commit_attempts_total_->add(static_cast<std::uint64_t>(response.commit_stats.attempts));
    commit_retries_total_->add(static_cast<std::uint64_t>(response.commit_stats.retries));
    const bool take = response.has_commitment() &&
                      (response.verdict == NegotiationStatus::kSucceeded ||
                       item.request.accept_degraded);
    if (take) {
      ScopedSpan admission(ctx, Stage::kAdmission);
      auto opened = sessions_->open(item.request.client, item.request.profile,
                                    std::move(response), now_s(), item.request.session_class);
      if (opened.ok()) {
        sessions_opened_total_->inc();
        response.session_id = opened.value();
        admission.annotate("session", response.session_id);
        if (config_.auto_confirm) {
          if (sessions_->confirm(response.session_id, now_s()).ok()) {
            sessions_confirmed_total_->inc();
            admission.annotate("confirmed", "true");
          }
        }
      } else {
        admission.annotate("error", opened.error());
        QOSNP_LOG_WARN("service", "session open failed: ", opened.error());
      }
    } else if (response.has_commitment()) {
      // A declined degraded offer: release the reservations right here —
      // nothing stays reserved for a user who walked away.
      response.commitment.release();
    }
    // The resolved future carries no offer list or commitment: they belong
    // to the opened session (response.session_id) or were just released.
    response.offers = OfferList{};
    response.commitment = Commitment{};
    response.committed_index = SIZE_MAX;
  }

  response.request_id = item.request.id;
  response.worker = static_cast<int>(worker_index);
  response.queue_ms = queue_ms;
  processed_total_->inc();
  response.total_ms = clock_.elapsed_ms() - item.accepted_ms;
  latency_ms_->record(response.total_ms);
  count_response(response);
  finish_trace(item, response);
  return response;
}

ServiceReport NegotiationService::report() const {
  ServiceReport r;
  r.submitted = requests_total_->value();
  r.shed_queue_full = shed_queue_full_total_->value();
  r.accepted = r.submitted - r.shed_queue_full;
  r.processed = processed_total_->value();
  r.shed_deadline = shed_deadline_total_->value();
  for (std::size_t i = 0; i < r.by_status.size(); ++i) {
    r.by_status[i] = responses_by_verdict_[i]->value();
  }
  r.sessions_opened = sessions_opened_total_->value();
  r.sessions_confirmed = sessions_confirmed_total_->value();
  r.latency = latency_ms_->merged();
  r.queue_high_water = queue_.high_water();
  queue_high_water_->update_max(static_cast<std::int64_t>(r.queue_high_water));
  const double end_ms = stopped_ms_ > 0.0 ? stopped_ms_ : clock_.elapsed_ms();
  r.wall_s = (end_ms - started_ms_) / 1e3;
  return r;
}

}  // namespace qosnp
