#include "service/load_gen.hpp"

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

#include "util/log.hpp"
#include "util/stopwatch.hpp"

namespace qosnp {

namespace {

NegotiationRequest make_request(const LoadConfig& config, std::uint64_t index) {
  Rng rng = request_rng(config.seed, index);
  NegotiationRequest req;
  req.id = index + 1;
  req.client = config.clients[index % config.clients.size()];
  req.document = config.documents[rng.below(config.documents.size())];
  req.profile = config.profiles[rng.below(config.profiles.size())];
  req.accept_degraded = rng.chance(config.accept_degraded_p);
  return req;
}

void sleep_ms(double ms) {
  if (ms > 0.0) std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
}

}  // namespace

LoadReport run_load(NegotiationService& service, const LoadConfig& config) {
  LoadReport report;
  if (config.clients.empty() || config.documents.empty() || config.profiles.empty() ||
      config.requests == 0) {
    QOSNP_LOG_WARN("loadgen", "empty workload: nothing to drive");
    return report;
  }

  Stopwatch wall;
  std::atomic<std::size_t> completed_sessions{0};

  if (config.mode == ArrivalMode::kClosed) {
    // Closed loop: `concurrency` clients, each waiting for its own response
    // before the next submission. Request indices are claimed atomically so
    // the trace (per-request draws) is identical for any concurrency.
    std::atomic<std::uint64_t> next{0};
    auto client_loop = [&] {
      for (;;) {
        const std::uint64_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= config.requests) return;
        NegotiationResult resp = service.submit(make_request(config, i)).get();
        if (resp.session_id != 0) {
          sleep_ms(config.hold_ms);
          service.sessions().complete(resp.session_id);
          completed_sessions.fetch_add(1, std::memory_order_relaxed);
        }
        sleep_ms(config.think_ms);
      }
    };
    std::vector<std::thread> clients;
    clients.reserve(config.concurrency);
    for (std::size_t c = 0; c < std::max<std::size_t>(1, config.concurrency); ++c) {
      clients.emplace_back(client_loop);
    }
    for (auto& t : clients) t.join();
  } else {
    // Open loop: submit on the Poisson arrival trace without waiting for
    // responses; collect afterwards. Sessions are completed at drain, so a
    // fast arrival burst genuinely accumulates held capacity and backlog.
    Rng arrivals(config.seed ^ 0xa5e1a5e1a5e1a5e1ULL);
    std::vector<std::future<NegotiationResult>> futures;
    futures.reserve(config.requests);
    for (std::uint64_t i = 0; i < config.requests; ++i) {
      futures.push_back(service.submit(make_request(config, i)));
      if (config.arrival_rate_per_s > 0.0 && i + 1 < config.requests) {
        sleep_ms(arrivals.exponential(config.arrival_rate_per_s) * 1e3);
      }
    }
    for (auto& f : futures) {
      NegotiationResult resp = f.get();
      if (resp.session_id != 0) {
        service.sessions().complete(resp.session_id);
        completed_sessions.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }

  report.wall_s = wall.elapsed_seconds();
  report.completed_sessions = completed_sessions.load();
  report.live_sessions = service.sessions().active_count();
  report.throughput_rps =
      report.wall_s > 0.0 ? static_cast<double>(config.requests) / report.wall_s : 0.0;
  report.service = service.report();
  return report;
}

}  // namespace qosnp
