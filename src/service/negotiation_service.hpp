// Concurrent negotiation service: the front-end that turns the paper's
// one-request-at-a-time QoS manager into a traffic-serving system. Session
// requests enter through a bounded MPMC queue and a fixed worker pool runs
// the full procedure per request — Steps 1-5 (QoSManager, which commits
// through ResourceCommitter against the *shared* ServerFarm and
// TransportService) and Step 6 admission into the shared SessionManager.
//
// Overload policy: when the queue is full (backpressure) or a request's
// queueing deadline expires before a worker picks it up, the request is
// rejected with FAILEDTRYLATER — the paper's "try later" verdict, produced
// here by load shedding as well as by transient resource refusals. Every
// submitted request always gets a response.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "core/qos_manager.hpp"
#include "service/bounded_queue.hpp"
#include "service/histogram.hpp"
#include "session/session.hpp"
#include "sim/metrics.hpp"
#include "util/stopwatch.hpp"

namespace qosnp {

/// Why the service resolved a request without running the procedure.
enum class ShedReason { kNone, kQueueFull, kDeadlineExpired };

std::string_view to_string(ShedReason reason);

struct ServiceConfig {
  std::size_t workers = 4;
  std::size_t queue_capacity = 64;
  /// Per-request budget, in milliseconds, from acceptance into the queue to
  /// the start of processing; a request still queued past it is shed with
  /// FAILEDTRYLATER. 0 disables the deadline.
  double deadline_ms = 0.0;
  /// Simulated remote round-trip stall per processed request, modelling the
  /// catalog/server/transport message exchanges the distributed prototype
  /// paid off-CPU. Makes the service latency-bound like its real
  /// counterpart, so worker-pool speedups are measurable on any core count.
  /// 0 = no stall.
  double simulated_rtt_ms = 0.0;
  /// Auto-confirm committed sessions (the Step 6 accept) as the worker's
  /// last act; off = the caller drives confirm()/reject() itself.
  bool auto_confirm = true;
};

struct ServiceRequest {
  std::uint64_t id = 0;
  ClientMachine client;
  DocumentId document;
  UserProfile profile;
  /// The user's Step 6 stance on a degraded offer (FAILEDWITHOFFER),
  /// pre-drawn by the load generator's per-request RNG: false = the
  /// commitment is released and only the verdict is returned.
  bool accept_degraded = true;
};

struct ServiceResponse {
  std::uint64_t request_id = 0;
  NegotiationStatus status = NegotiationStatus::kFailedTryLater;
  ShedReason shed = ShedReason::kNone;
  SessionId session = 0;  ///< 0 when no session was opened
  double queue_ms = 0.0;  ///< accept -> worker pickup
  double total_ms = 0.0;  ///< accept -> response
  int worker = -1;        ///< -1: resolved at the queue edge (shed)
};

/// Aggregated service-level metrics. `by_status` covers every resolved
/// request, sheds included (they count as FAILEDTRYLATER).
struct ServiceReport {
  std::size_t submitted = 0;
  std::size_t accepted = 0;   ///< made it into the queue
  std::size_t processed = 0;  ///< resolved by a worker (deadline sheds included)
  std::size_t shed_queue_full = 0;
  std::size_t shed_deadline = 0;
  std::array<std::size_t, 5> by_status{};  ///< indexed by NegotiationStatus
  std::size_t sessions_opened = 0;
  std::size_t sessions_confirmed = 0;
  std::size_t queue_high_water = 0;
  double wall_s = 0.0;  ///< start() -> stop() (or report time while running)
  LatencyHistogram latency;

  std::size_t count(NegotiationStatus status) const {
    return by_status[static_cast<std::size_t>(status)];
  }
  double shed_rate() const {
    return submitted == 0 ? 0.0
                          : static_cast<double>(shed_queue_full + shed_deadline) /
                                static_cast<double>(submitted);
  }
  double throughput_rps() const {
    return wall_s <= 0.0 ? 0.0 : static_cast<double>(processed) / wall_s;
  }

  /// Export onto the simulation metrics surface the benches report.
  SimMetrics to_sim_metrics() const;
  std::string summary() const;
};

class NegotiationService {
 public:
  NegotiationService(QoSManager& manager, SessionManager& sessions, ServiceConfig config = {});
  ~NegotiationService();

  NegotiationService(const NegotiationService&) = delete;
  NegotiationService& operator=(const NegotiationService&) = delete;

  void start();
  /// Close the queue, let the workers drain the backlog, join them. Every
  /// request accepted before stop() still gets a real response.
  void stop();
  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Hand a request to the service. The future always resolves: a full (or
  /// closed) queue resolves it immediately with FAILEDTRYLATER/kQueueFull.
  std::future<ServiceResponse> submit(ServiceRequest request);

  std::size_t queue_depth() const { return queue_.size(); }
  /// Service clock: seconds since construction (the time base sessions are
  /// opened/confirmed against).
  double now_s() const { return clock_.elapsed_seconds(); }

  /// Merged metrics snapshot. Call after stop() for exact figures — worker
  /// counters are collected without synchronisation while running.
  ServiceReport report() const;

  SessionManager& sessions() { return *sessions_; }

 private:
  struct Item {
    ServiceRequest request;
    std::promise<ServiceResponse> promise;
    double accepted_ms = 0.0;
  };

  /// Per-worker counters; workers write only their own slot, report() merges.
  struct WorkerStats {
    std::size_t processed = 0;
    std::size_t shed_deadline = 0;
    std::array<std::size_t, 5> by_status{};
    std::size_t opened = 0;
    std::size_t confirmed = 0;
    LatencyHistogram latency;
  };

  void worker_loop(std::size_t index);
  ServiceResponse process(Item& item, std::size_t worker_index, WorkerStats& stats);

  QoSManager* manager_;
  SessionManager* sessions_;
  ServiceConfig config_;
  Stopwatch clock_;
  BoundedQueue<Item> queue_;
  std::vector<std::thread> workers_;
  std::vector<std::unique_ptr<WorkerStats>> worker_stats_;
  std::atomic<std::size_t> submitted_{0};
  std::atomic<std::size_t> shed_queue_full_{0};
  std::atomic<bool> running_{false};
  double started_ms_ = 0.0;  ///< written by start()/stop() only
  double stopped_ms_ = 0.0;
};

}  // namespace qosnp
