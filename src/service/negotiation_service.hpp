// Concurrent negotiation service: the front-end that turns the paper's
// one-request-at-a-time QoS manager into a traffic-serving system. Session
// requests enter through a bounded MPMC queue and a fixed worker pool runs
// the full procedure per request — Steps 1-5 (QoSManager, which commits
// through ResourceCommitter against the *shared* ServerFarm and
// TransportService) and Step 6 admission into the shared SessionManager.
// Every request resolves to one NegotiationResult carrying the verdict,
// shed reason, session id, latency figures and (when a TraceSink is
// configured) the per-request trace.
//
// Overload policy: when the queue is full (backpressure) or a request's
// queueing deadline expires before a worker picks it up, the request is
// rejected with FAILEDTRYLATER — the paper's "try later" verdict, produced
// here by load shedding as well as by transient resource refusals. Every
// submitted request always gets a response.
//
// Observability: the service records everything into a MetricsRegistry
// (its own by default, or an external one via ServiceConfig::metrics) —
// per-verdict response counters, shed counters by reason, session and
// commit-effort counters, latency histograms. report() is a snapshot of
// that registry; metrics().expose() renders the Prometheus-style text form.
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/negotiation_result.hpp"
#include "core/qos_manager.hpp"
#include "obs/histogram.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_sink.hpp"
#include "service/bounded_queue.hpp"
#include "session/session.hpp"
#include "sim/metrics.hpp"
#include "util/stopwatch.hpp"

namespace qosnp {

class PolicyEngine;

struct ServiceConfig {
  std::size_t workers = 4;
  std::size_t queue_capacity = 64;
  /// Per-request budget, in milliseconds, from acceptance into the queue to
  /// the start of processing; a request still queued past it is shed with
  /// FAILEDTRYLATER. 0 disables the deadline. A positive
  /// NegotiationRequest::deadline_ms overrides this per request.
  double deadline_ms = 0.0;
  /// Simulated remote round-trip stall per processed request, modelling the
  /// catalog/server/transport message exchanges the distributed prototype
  /// paid off-CPU. Makes the service latency-bound like its real
  /// counterpart, so worker-pool speedups are measurable on any core count.
  /// 0 = no stall.
  double simulated_rtt_ms = 0.0;
  /// Auto-confirm committed sessions (the Step 6 accept) as the worker's
  /// last act; off = the caller drives confirm()/reject() itself.
  bool auto_confirm = true;
  /// Record metrics into this registry instead of the service's own
  /// (aggregating several services, or exposing one registry for the whole
  /// process). Not owned; must outlive the service.
  MetricsRegistry* metrics = nullptr;
  /// When set, every resolved request builds a NegotiationTrace (one span
  /// per executed stage) that is recorded here and attached to the
  /// response. Not owned; must outlive the service. nullptr = no tracing.
  TraceSink* trace_sink = nullptr;
  /// Class-differentiated admission: workers negotiate through this engine
  /// (preemption on congestion) instead of the bare manager. Must wrap the
  /// same QoSManager/SessionManager pair the service runs on. Not owned;
  /// must outlive the service. nullptr = class-blind (byte-identical to the
  /// pre-policy service).
  PolicyEngine* policy = nullptr;
  /// Period of the background upgrade scanner (PolicyEngine::run_upgrades);
  /// 0 disables it. Requires `policy`.
  double upgrade_scan_interval_ms = 0.0;

  /// Throws std::invalid_argument when the config is unusable (zero
  /// workers, zero queue capacity, negative deadline or RTT). Shares the
  /// require_config() validation path with CachePolicy.
  static ServiceConfig validated(ServiceConfig config);
};

/// Aggregated service-level snapshot, assembled from the metrics registry.
/// `by_status` covers every resolved request, sheds included (they count as
/// FAILEDTRYLATER).
struct ServiceReport {
  std::size_t submitted = 0;
  std::size_t accepted = 0;   ///< made it into the queue
  std::size_t processed = 0;  ///< resolved by a worker (deadline sheds included)
  std::size_t shed_queue_full = 0;
  std::size_t shed_deadline = 0;
  std::array<std::size_t, 5> by_status{};  ///< indexed by NegotiationStatus
  std::size_t sessions_opened = 0;
  std::size_t sessions_confirmed = 0;
  std::size_t queue_high_water = 0;
  double wall_s = 0.0;  ///< start() -> stop() (or report time while running)
  LatencyHistogram latency;

  std::size_t count(NegotiationStatus status) const {
    return by_status[static_cast<std::size_t>(status)];
  }
  double shed_rate() const {
    return submitted == 0 ? 0.0
                          : static_cast<double>(shed_queue_full + shed_deadline) /
                                static_cast<double>(submitted);
  }
  double throughput_rps() const {
    return wall_s <= 0.0 ? 0.0 : static_cast<double>(processed) / wall_s;
  }

  /// Export onto the simulation metrics surface the benches report.
  SimMetrics to_sim_metrics() const;
  std::string summary() const;
};

class NegotiationService {
 public:
  /// Throws std::invalid_argument when the config is unusable (zero
  /// workers, zero queue capacity, negative deadline or RTT) — a service
  /// that silently "fixed" those would lie about the load it was asked to
  /// carry.
  NegotiationService(QoSManager& manager, SessionManager& sessions, ServiceConfig config = {});
  ~NegotiationService();

  NegotiationService(const NegotiationService&) = delete;
  NegotiationService& operator=(const NegotiationService&) = delete;

  void start();
  /// Close the queue, let the workers drain the backlog, join them. Every
  /// request accepted before stop() still gets a real response.
  void stop();
  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Completion callback of submit_async. Runs on the resolving thread: a
  /// worker thread normally, the submitter's own thread when the request is
  /// shed at the queue edge. It must not block (it would stall a worker)
  /// and must not call back into the service synchronously.
  using CompletionFn = std::function<void(NegotiationResult)>;

  /// Hand a request to the service; `done` is invoked exactly once with the
  /// response. This is the primitive the network front-end builds on — an
  /// event loop parks no thread per in-flight request. A full (or closed)
  /// queue invokes `done` immediately (on this thread) with
  /// FAILEDTRYLATER/kQueueFull. The resolved result does not carry the
  /// offer list or the commitment — those belong to the opened session
  /// (result.session_id) or were released before resolution. request.trace
  /// is replaced by the service's own per-request trace when a TraceSink is
  /// configured.
  void submit_async(NegotiationRequest request, CompletionFn done);

  /// Future-returning wrapper over submit_async; same guarantees.
  std::future<NegotiationResult> submit(NegotiationRequest request);

  std::size_t queue_depth() const { return queue_.size(); }
  /// Service clock: seconds since construction (the time base sessions are
  /// opened/confirmed against).
  double now_s() const { return clock_.elapsed_seconds(); }

  /// Metrics snapshot assembled from the registry. Exact once the service
  /// is stopped; a live snapshot may straddle in-flight requests.
  ServiceReport report() const;

  /// The registry this service records into (own or external).
  MetricsRegistry& metrics() { return *metrics_; }
  const MetricsRegistry& metrics() const { return *metrics_; }

  SessionManager& sessions() { return *sessions_; }

  /// The validated configuration the service runs with.
  const ServiceConfig& config() const { return config_; }

 private:
  struct Item {
    NegotiationRequest request;
    CompletionFn done;
    double accepted_ms = 0.0;
    /// Present only when the service traces (ServiceConfig::trace_sink).
    std::shared_ptr<NegotiationTrace> trace;
    SpanId queue_span = kNoSpan;
  };

  void worker_loop(std::size_t index);
  void upgrade_scan_loop();
  NegotiationResult process(Item& item, std::size_t worker_index);
  /// Stamp the verdict on the trace, hand it to the sink, attach it to the
  /// result. No-op when the item carries no trace.
  void finish_trace(Item& item, NegotiationResult& result);
  void count_response(const NegotiationResult& result);

  QoSManager* manager_;
  SessionManager* sessions_;
  ServiceConfig config_;
  MetricsRegistry own_metrics_;
  MetricsRegistry* metrics_;
  Stopwatch clock_;
  BoundedQueue<Item> queue_;
  std::vector<std::thread> workers_;
  std::thread upgrade_scanner_;
  std::mutex scanner_mu_;
  std::condition_variable scanner_cv_;
  bool scanner_stop_ = false;  ///< guarded by scanner_mu_
  std::atomic<bool> running_{false};
  double started_ms_ = 0.0;  ///< written by start()/stop() only
  double stopped_ms_ = 0.0;

  // Registry handles, registered once at construction (stable addresses).
  Counter* requests_total_;
  Counter* processed_total_;
  std::array<Counter*, 5> responses_by_verdict_;
  Counter* shed_queue_full_total_;
  Counter* shed_deadline_total_;
  Counter* sessions_opened_total_;
  Counter* sessions_confirmed_total_;
  Counter* commit_attempts_total_;
  Counter* commit_retries_total_;
  Counter* traces_recorded_total_;
  Gauge* queue_high_water_;
  HistogramMetric* latency_ms_;
  HistogramMetric* queue_wait_ms_;
};

}  // namespace qosnp
