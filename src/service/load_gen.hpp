// Closed-/open-loop load generator for the negotiation service.
//
//   closed: `concurrency` synthetic clients each run submit -> wait for the
//           response -> (hold a committed session, then complete it) ->
//           think -> next request. Offered load tracks service capacity —
//           the mode for throughput/latency scaling measurements.
//   open:   requests arrive on a Poisson process regardless of completions
//           (arrival_rate_per_s), the regime that drives the queue into
//           backpressure and exercises load shedding.
//
// Reproducibility: every request's random draws (document, profile, Step 6
// accept-degraded stance) come from an RNG seeded purely by (seed, request
// index) — the same trace is generated no matter which generator thread or
// worker carries the request.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "service/negotiation_service.hpp"
#include "util/rng.hpp"

namespace qosnp {

enum class ArrivalMode { kClosed, kOpen };

struct LoadConfig {
  ArrivalMode mode = ArrivalMode::kClosed;
  /// Closed loop: concurrent synthetic clients.
  std::size_t concurrency = 8;
  /// Total requests over the run.
  std::size_t requests = 1000;
  /// Open loop: Poisson arrival rate.
  double arrival_rate_per_s = 100.0;
  /// Closed loop: think time between a response and the next submission.
  double think_ms = 0.0;
  /// Closed loop: how long a committed session is held before the client
  /// completes it (0 = complete immediately, capacity returns at once).
  /// Open-loop sessions are completed at drain.
  double hold_ms = 0.0;
  /// Probability the user takes a degraded (FAILEDWITHOFFER) offer.
  double accept_degraded_p = 1.0;
  std::uint64_t seed = 1;
  std::vector<ClientMachine> clients;  ///< request i uses clients[i % size]
  std::vector<DocumentId> documents;   ///< drawn per request
  std::vector<UserProfile> profiles;   ///< drawn per request
};

struct LoadReport {
  ServiceReport service;
  std::size_t completed_sessions = 0;  ///< sessions the generator completed
  std::size_t live_sessions = 0;       ///< still active at drain (should be 0)
  double wall_s = 0.0;                 ///< generator wall time, submit to drain
  double throughput_rps = 0.0;         ///< responses per generator wall second
};

/// The per-request RNG: same (seed, index) => same draws. SplitMix64 is
/// seed-sequence friendly, so consecutive indices yield independent streams.
inline Rng request_rng(std::uint64_t seed, std::uint64_t index) {
  return Rng(seed + index * 0x9e3779b97f4a7c15ULL);
}

/// Drive `service` (which must be started) with the configured workload and
/// block until every request is resolved and every generator-opened session
/// is completed. clients/documents/profiles must be non-empty.
LoadReport run_load(NegotiationService& service, const LoadConfig& config);

}  // namespace qosnp
