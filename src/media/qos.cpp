#include "media/qos.hpp"

#include <algorithm>
#include <sstream>

namespace qosnp {

namespace {
int clamp_int(int v, int lo, int hi) { return std::clamp(v, lo, hi); }
}  // namespace

VideoQoS VideoQoS::clamped() const {
  VideoQoS out = *this;
  out.frame_rate_fps = clamp_int(frame_rate_fps, kFrozenFrameRate, kHdtvFrameRate);
  out.resolution = clamp_int(resolution, kMinResolution, kHdtvResolution);
  return out;
}

std::string VideoQoS::to_string() const {
  std::ostringstream os;
  os << "(" << qosnp::to_string(color) << ", " << frame_rate_fps << " frames/s, " << resolution
     << " px/line)";
  return os.str();
}

std::string AudioQoS::to_string() const {
  std::ostringstream os;
  os << "(" << qosnp::to_string(quality) << " quality)";
  return os.str();
}

std::string TextQoS::to_string() const {
  std::ostringstream os;
  os << "(" << qosnp::to_string(language) << ")";
  return os.str();
}

ImageQoS ImageQoS::clamped() const {
  ImageQoS out = *this;
  out.resolution = clamp_int(resolution, kMinResolution, kHdtvResolution);
  return out;
}

std::string ImageQoS::to_string() const {
  std::ostringstream os;
  os << "(" << qosnp::to_string(color) << ", " << resolution << " px/line)";
  return os.str();
}

MediaKind media_kind_of(const MonomediaQoS& qos) {
  return std::visit(
      [](const auto& q) -> MediaKind {
        using T = std::decay_t<decltype(q)>;
        if constexpr (std::is_same_v<T, VideoQoS>) return MediaKind::kVideo;
        if constexpr (std::is_same_v<T, AudioQoS>) return MediaKind::kAudio;
        if constexpr (std::is_same_v<T, TextQoS>) return MediaKind::kText;
        if constexpr (std::is_same_v<T, ImageQoS>) return MediaKind::kImage;
      },
      qos);
}

std::string to_string(const MonomediaQoS& qos) {
  return std::visit([](const auto& q) { return q.to_string(); }, qos);
}

}  // namespace qosnp
