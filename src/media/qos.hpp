// Per-medium QoS value types. These express both what a stored variant
// offers and what a user profile requests (desired / worst-acceptable), in
// the user-perceived units of paper Fig. 2 — never in system units such as
// throughput or jitter (those are produced later by the QoS mapping,
// Sec. 6).
#pragma once

#include <compare>
#include <string>
#include <variant>
#include <vector>

#include "media/types.hpp"

namespace qosnp {

/// Video QoS: colour ladder, frame rate [1, 60] fps, resolution
/// [10, 1920] pixels/line.
struct VideoQoS {
  ColorDepth color = ColorDepth::kColor;
  int frame_rate_fps = kTvFrameRate;
  int resolution = kTvResolution;

  friend bool operator==(const VideoQoS&, const VideoQoS&) = default;

  /// True when every characteristic meets or exceeds `floor`.
  bool meets(const VideoQoS& floor) const {
    return color >= floor.color && frame_rate_fps >= floor.frame_rate_fps &&
           resolution >= floor.resolution;
  }

  /// Clamp the characteristics into the Fig. 2 GUI ranges.
  VideoQoS clamped() const;

  std::string to_string() const;
};

/// Audio QoS: perceptual quality ladder (telephone .. CD).
struct AudioQoS {
  AudioQuality quality = AudioQuality::kCD;

  friend bool operator==(const AudioQoS&, const AudioQoS&) = default;

  bool meets(const AudioQoS& floor) const { return quality >= floor.quality; }

  std::string to_string() const;
};

/// Text QoS: the language the article text is rendered in. Languages are
/// unordered; `acceptable` lists the worst-acceptable alternatives.
struct TextQoS {
  Language language = Language::kEnglish;

  friend bool operator==(const TextQoS&, const TextQoS&) = default;

  std::string to_string() const;
};

/// Still-image QoS: colour ladder and resolution.
struct ImageQoS {
  ColorDepth color = ColorDepth::kColor;
  int resolution = kTvResolution;

  friend bool operator==(const ImageQoS&, const ImageQoS&) = default;

  bool meets(const ImageQoS& floor) const {
    return color >= floor.color && resolution >= floor.resolution;
  }

  ImageQoS clamped() const;

  std::string to_string() const;
};

/// The QoS of one monomedia object, whatever its medium.
using MonomediaQoS = std::variant<VideoQoS, AudioQoS, TextQoS, ImageQoS>;

/// Medium carried by a MonomediaQoS alternative.
MediaKind media_kind_of(const MonomediaQoS& qos);

std::string to_string(const MonomediaQoS& qos);

}  // namespace qosnp
