// Media vocabulary for the news-on-demand prototype: media kinds, coding
// formats, perceptual quality enumerations (paper Fig. 2), languages and
// service-guarantee classes. These are the units both the user profile and
// the variant metadata are expressed in.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace qosnp {

/// The four monomedia kinds handled by the prototype (paper Sec. 2).
enum class MediaKind : std::uint8_t { kVideo, kAudio, kText, kImage };

/// Coding formats a variant can be stored in and a client decoder can
/// accept (Step 2, static compatibility checking). Video formats mirror the
/// 1996 prototype (MPEG player, MJPEG files); the rest are representative.
enum class CodingFormat : std::uint8_t {
  // Video.
  kMPEG1,
  kMPEG2,
  kMJPEG,
  kH261,
  // Audio.
  kPCM,
  kADPCM,
  kMPEGAudio,
  // Text.
  kPlainText,
  kHTML,
  // Image.
  kJPEG,
  kGIF,
  kTIFF,
};

/// Colour quality ladder for video and still images (Fig. 2: super-colour,
/// colour, grey, black&white). Ordered: a higher enum value is better.
enum class ColorDepth : std::uint8_t { kBlackWhite = 0, kGray = 1, kColor = 2, kSuperColor = 3 };

/// Audio quality ladder (Fig. 2 anchors: telephone, CD; radio added as the
/// natural midpoint). Ordered: higher is better.
enum class AudioQuality : std::uint8_t { kTelephone = 0, kRadio = 1, kCD = 2 };

/// Text languages. The paper's importance example: "french is more
/// important than english".
enum class Language : std::uint8_t { kEnglish, kFrench, kGerman, kSpanish };

/// Transport/server service classes considered in the cost model (Sec. 7).
enum class GuaranteeClass : std::uint8_t { kBestEffort, kGuaranteed };

/// Which media kind a coding format carries.
MediaKind media_kind_of(CodingFormat format);

/// Nominal audio sampling rate for a quality level (Hz).
int sample_rate_hz(AudioQuality quality);
/// Nominal audio sample size for a quality level (bits per sample, mono).
int bits_per_sample(AudioQuality quality);

std::string_view to_string(MediaKind kind);
std::string_view to_string(CodingFormat format);
std::string_view to_string(ColorDepth depth);
std::string_view to_string(AudioQuality quality);
std::string_view to_string(Language language);
std::string_view to_string(GuaranteeClass klass);

std::optional<MediaKind> parse_media_kind(std::string_view text);
std::optional<CodingFormat> parse_coding_format(std::string_view text);
std::optional<ColorDepth> parse_color_depth(std::string_view text);
std::optional<AudioQuality> parse_audio_quality(std::string_view text);
std::optional<Language> parse_language(std::string_view text);
std::optional<GuaranteeClass> parse_guarantee_class(std::string_view text);

/// Fig. 2 bounds the user can select: frame rate between frozen (1 fps) and
/// HDTV (60 fps); resolution between minimal (10 pixels/line) and HDTV
/// (1920 pixels/line).
inline constexpr int kFrozenFrameRate = 1;
inline constexpr int kTvFrameRate = 25;
inline constexpr int kHdtvFrameRate = 60;
inline constexpr int kMinResolution = 10;
inline constexpr int kTvResolution = 640;
inline constexpr int kHdtvResolution = 1920;

}  // namespace qosnp
