#include "media/types.hpp"

#include "util/strings.hpp"

namespace qosnp {

MediaKind media_kind_of(CodingFormat format) {
  switch (format) {
    case CodingFormat::kMPEG1:
    case CodingFormat::kMPEG2:
    case CodingFormat::kMJPEG:
    case CodingFormat::kH261:
      return MediaKind::kVideo;
    case CodingFormat::kPCM:
    case CodingFormat::kADPCM:
    case CodingFormat::kMPEGAudio:
      return MediaKind::kAudio;
    case CodingFormat::kPlainText:
    case CodingFormat::kHTML:
      return MediaKind::kText;
    case CodingFormat::kJPEG:
    case CodingFormat::kGIF:
    case CodingFormat::kTIFF:
      return MediaKind::kImage;
  }
  return MediaKind::kText;
}

int sample_rate_hz(AudioQuality quality) {
  switch (quality) {
    case AudioQuality::kTelephone: return 8'000;
    case AudioQuality::kRadio: return 22'050;
    case AudioQuality::kCD: return 44'100;
  }
  return 8'000;
}

int bits_per_sample(AudioQuality quality) {
  switch (quality) {
    case AudioQuality::kTelephone: return 8;
    case AudioQuality::kRadio: return 16;
    case AudioQuality::kCD: return 16;
  }
  return 8;
}

std::string_view to_string(MediaKind kind) {
  switch (kind) {
    case MediaKind::kVideo: return "video";
    case MediaKind::kAudio: return "audio";
    case MediaKind::kText: return "text";
    case MediaKind::kImage: return "image";
  }
  return "?";
}

std::string_view to_string(CodingFormat format) {
  switch (format) {
    case CodingFormat::kMPEG1: return "MPEG-1";
    case CodingFormat::kMPEG2: return "MPEG-2";
    case CodingFormat::kMJPEG: return "MJPEG";
    case CodingFormat::kH261: return "H.261";
    case CodingFormat::kPCM: return "PCM";
    case CodingFormat::kADPCM: return "ADPCM";
    case CodingFormat::kMPEGAudio: return "MPEG-audio";
    case CodingFormat::kPlainText: return "plain-text";
    case CodingFormat::kHTML: return "HTML";
    case CodingFormat::kJPEG: return "JPEG";
    case CodingFormat::kGIF: return "GIF";
    case CodingFormat::kTIFF: return "TIFF";
  }
  return "?";
}

std::string_view to_string(ColorDepth depth) {
  switch (depth) {
    case ColorDepth::kBlackWhite: return "black&white";
    case ColorDepth::kGray: return "grey";
    case ColorDepth::kColor: return "color";
    case ColorDepth::kSuperColor: return "super-color";
  }
  return "?";
}

std::string_view to_string(AudioQuality quality) {
  switch (quality) {
    case AudioQuality::kTelephone: return "telephone";
    case AudioQuality::kRadio: return "radio";
    case AudioQuality::kCD: return "CD";
  }
  return "?";
}

std::string_view to_string(Language language) {
  switch (language) {
    case Language::kEnglish: return "english";
    case Language::kFrench: return "french";
    case Language::kGerman: return "german";
    case Language::kSpanish: return "spanish";
  }
  return "?";
}

std::string_view to_string(GuaranteeClass klass) {
  switch (klass) {
    case GuaranteeClass::kBestEffort: return "best-effort";
    case GuaranteeClass::kGuaranteed: return "guaranteed";
  }
  return "?";
}

namespace {
template <typename Enum, std::size_t N>
std::optional<Enum> parse_enum(std::string_view text, const Enum (&values)[N]) {
  for (Enum v : values) {
    if (iequals(text, to_string(v))) return v;
  }
  return std::nullopt;
}
}  // namespace

std::optional<MediaKind> parse_media_kind(std::string_view text) {
  static constexpr MediaKind kAll[] = {MediaKind::kVideo, MediaKind::kAudio, MediaKind::kText,
                                       MediaKind::kImage};
  return parse_enum(text, kAll);
}

std::optional<CodingFormat> parse_coding_format(std::string_view text) {
  static constexpr CodingFormat kAll[] = {
      CodingFormat::kMPEG1,     CodingFormat::kMPEG2, CodingFormat::kMJPEG,
      CodingFormat::kH261,      CodingFormat::kPCM,   CodingFormat::kADPCM,
      CodingFormat::kMPEGAudio, CodingFormat::kPlainText, CodingFormat::kHTML,
      CodingFormat::kJPEG,      CodingFormat::kGIF,   CodingFormat::kTIFF};
  return parse_enum(text, kAll);
}

std::optional<ColorDepth> parse_color_depth(std::string_view text) {
  static constexpr ColorDepth kAll[] = {ColorDepth::kBlackWhite, ColorDepth::kGray,
                                        ColorDepth::kColor, ColorDepth::kSuperColor};
  if (iequals(text, "bw") || iequals(text, "black-white") || iequals(text, "blackwhite")) {
    return ColorDepth::kBlackWhite;
  }
  if (iequals(text, "gray")) return ColorDepth::kGray;
  if (iequals(text, "supercolor") || iequals(text, "super_color")) return ColorDepth::kSuperColor;
  return parse_enum(text, kAll);
}

std::optional<AudioQuality> parse_audio_quality(std::string_view text) {
  static constexpr AudioQuality kAll[] = {AudioQuality::kTelephone, AudioQuality::kRadio,
                                          AudioQuality::kCD};
  return parse_enum(text, kAll);
}

std::optional<Language> parse_language(std::string_view text) {
  static constexpr Language kAll[] = {Language::kEnglish, Language::kFrench, Language::kGerman,
                                      Language::kSpanish};
  return parse_enum(text, kAll);
}

std::optional<GuaranteeClass> parse_guarantee_class(std::string_view text) {
  static constexpr GuaranteeClass kAll[] = {GuaranteeClass::kBestEffort,
                                            GuaranteeClass::kGuaranteed};
  if (iequals(text, "besteffort") || iequals(text, "best_effort")) {
    return GuaranteeClass::kBestEffort;
  }
  return parse_enum(text, kAll);
}

}  // namespace qosnp
