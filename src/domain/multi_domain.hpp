// Multi-domain transport: hierarchical QoS negotiation across
// administrative domains ([Haf 95b], "A Hierarchical Negotiation for
// Distributed Multimedia Applications in a Multi-Domain Environment",
// cited by the paper as part of its negotiation framework). The end-to-end
// path from a media server to a client crosses several domains; each domain
// manages its own segment — aggregate capacity plus its own tariff — and
// answers a segment request with a segment offer (feasibility + price). The
// root negotiation composes the per-domain offers: it routes each flow
// through the domain graph minimising the summed segment tariffs (or the
// domain count, as an ablation), reserving capacity in every transited
// domain.
//
// Implements TransportProvider, so the entire negotiation procedure —
// QoSManager, baselines, sessions, adaptation — runs unchanged on top of a
// multi-domain world.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "cost/cost_model.hpp"
#include "net/transport.hpp"

namespace qosnp {

using DomainId = std::string;

struct DomainConfig {
  DomainId id;
  std::int64_t capacity_bps = 100'000'000;  ///< aggregate segment capacity
  CostTable tariff = CostTable::standard_network();
  double transit_delay_ms = 5.0;
};

struct DomainUsage {
  std::int64_t capacity_bps = 0;
  std::int64_t effective_capacity_bps = 0;
  std::int64_t reserved_bps = 0;
  std::size_t flow_count = 0;
};

class MultiDomainTransport final : public TransportProvider {
 public:
  enum class RoutePolicy {
    kCheapest,       ///< minimise summed per-second segment tariffs
    kFewestDomains,  ///< minimise transited domain count (tariff-blind)
  };

  explicit MultiDomainTransport(std::vector<DomainConfig> domains,
                                RoutePolicy policy = RoutePolicy::kCheapest);

  /// Declare that two domains peer (traffic may cross between them).
  Result<bool> add_peering(const DomainId& a, const DomainId& b);
  /// Attach an end node (client or server machine) to its home domain.
  Result<bool> attach(const NodeId& node, const DomainId& domain);

  // TransportProvider:
  Result<FlowId, Refusal> reserve(const NodeId& src, const NodeId& dst,
                                  const StreamRequirements& req) override;
  bool release(FlowId id) override;

  /// Total per-second transit price of the best currently-feasible route
  /// (what the hierarchical negotiation quotes before committing).
  Result<Money> quote_per_second(const NodeId& src, const NodeId& dst,
                                 const StreamRequirements& req) const;

  /// Domains a flow transits, in order (empty when unknown).
  std::vector<DomainId> route_of(FlowId id) const;
  DomainUsage usage(const DomainId& domain) const;
  std::size_t active_flows() const;

  /// Congestion injection at domain granularity; returns the flows that no
  /// longer fit (newest first), as TransportService::degrade_link does.
  std::vector<FlowId> degrade_domain(const DomainId& domain, double lost_fraction);
  void restore_domain(const DomainId& domain);

 private:
  struct Domain {
    DomainConfig config;
    std::int64_t effective_capacity;
    std::int64_t reserved = 0;
    std::size_t flow_count = 0;
  };
  struct Flow {
    std::vector<std::size_t> route;  // domain indices
    std::int64_t rate = 0;
  };

  static std::int64_t rate_of(const StreamRequirements& req) {
    return req.guarantee == GuaranteeClass::kGuaranteed ? req.max_bit_rate_bps
                                                        : req.avg_bit_rate_bps;
  }

  /// Cheapest/shortest feasible domain route for `rate` (locked).
  Result<std::vector<std::size_t>> route_locked(const NodeId& src, const NodeId& dst,
                                                std::int64_t rate) const;
  std::optional<std::size_t> domain_index(const DomainId& id) const;

  mutable std::mutex mu_;
  RoutePolicy policy_;
  std::vector<Domain> domains_;
  std::unordered_map<DomainId, std::size_t> index_;
  std::vector<std::vector<std::size_t>> peers_;  // adjacency by domain index
  std::unordered_map<NodeId, std::size_t> attachments_;
  std::unordered_map<FlowId, Flow> flows_;
  FlowId next_id_ = 1;
};

}  // namespace qosnp
