#include "domain/multi_domain.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "util/log.hpp"

namespace qosnp {

MultiDomainTransport::MultiDomainTransport(std::vector<DomainConfig> domains,
                                           RoutePolicy policy)
    : policy_(policy) {
  domains_.reserve(domains.size());
  for (DomainConfig& config : domains) {
    index_[config.id] = domains_.size();
    Domain d;
    d.effective_capacity = config.capacity_bps;
    d.config = std::move(config);
    domains_.push_back(std::move(d));
  }
  peers_.assign(domains_.size(), {});
}

std::optional<std::size_t> MultiDomainTransport::domain_index(const DomainId& id) const {
  auto it = index_.find(id);
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

Result<bool> MultiDomainTransport::add_peering(const DomainId& a, const DomainId& b) {
  std::lock_guard lk(mu_);
  const auto ia = domain_index(a);
  const auto ib = domain_index(b);
  if (!ia) return Err("unknown domain '" + a + "'");
  if (!ib) return Err("unknown domain '" + b + "'");
  if (*ia == *ib) return Err("domain cannot peer with itself");
  peers_[*ia].push_back(*ib);
  peers_[*ib].push_back(*ia);
  return true;
}

Result<bool> MultiDomainTransport::attach(const NodeId& node, const DomainId& domain) {
  std::lock_guard lk(mu_);
  const auto idx = domain_index(domain);
  if (!idx) return Err("unknown domain '" + domain + "'");
  attachments_[node] = *idx;
  return true;
}

Result<std::vector<std::size_t>> MultiDomainTransport::route_locked(const NodeId& src,
                                                                    const NodeId& dst,
                                                                    std::int64_t rate) const {
  auto src_it = attachments_.find(src);
  auto dst_it = attachments_.find(dst);
  if (src_it == attachments_.end()) return Err("node '" + src + "' attached to no domain");
  if (dst_it == attachments_.end()) return Err("node '" + dst + "' attached to no domain");

  // Dijkstra over domains. The weight of *entering* a domain is its
  // per-second tariff for this rate (kCheapest) or 1 (kFewestDomains);
  // domains without room for the rate are impassable. The source domain's
  // own weight is charged too (it carries the segment as well).
  auto weight = [&](std::size_t d) -> double {
    // A negative rate probes pure reachability (capacity ignored).
    if (rate >= 0 && domains_[d].reserved + rate > domains_[d].effective_capacity) {
      return -1.0;  // impassable
    }
    if (policy_ == RoutePolicy::kFewestDomains || rate < 0) return 1.0;
    return static_cast<double>(domains_[d].config.tariff.cost_per_second(rate).as_micros());
  };

  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(domains_.size(), kInf);
  std::vector<std::size_t> prev(domains_.size(), SIZE_MAX);
  using Entry = std::pair<double, std::size_t>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;

  const double start_weight = weight(src_it->second);
  if (start_weight < 0.0) return Err("source domain has no capacity");
  dist[src_it->second] = start_weight;
  heap.push({start_weight, src_it->second});
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (d > dist[u]) continue;
    if (u == dst_it->second) break;
    for (std::size_t v : peers_[u]) {
      const double w = weight(v);
      if (w < 0.0) continue;
      if (d + w < dist[v]) {
        dist[v] = d + w;
        prev[v] = u;
        heap.push({d + w, v});
      }
    }
  }
  if (dist[dst_it->second] == kInf) {
    return Err("no feasible domain route from '" + src + "' to '" + dst + "'");
  }
  std::vector<std::size_t> route;
  for (std::size_t at = dst_it->second;; at = prev[at]) {
    route.push_back(at);
    if (at == src_it->second) break;
  }
  std::reverse(route.begin(), route.end());
  return route;
}

Result<FlowId, Refusal> MultiDomainTransport::reserve(const NodeId& src, const NodeId& dst,
                                                      const StreamRequirements& req) {
  const std::int64_t rate = rate_of(req);
  if (rate <= 0) return permanent_refusal("multi-domain", "non-positive bit rate");
  std::lock_guard lk(mu_);
  auto route = route_locked(src, dst, rate);
  if (!route.ok()) {
    // Unreachable even at rate 0 means the domain graph itself has no path
    // (permanent); otherwise the route exists but lacks capacity right now.
    const bool structurally_routable = route_locked(src, dst, -1).ok();
    if (structurally_routable) return transient_refusal("multi-domain", route.error());
    return permanent_refusal("multi-domain", route.error());
  }
  for (std::size_t d : route.value()) {
    domains_[d].reserved += rate;
    ++domains_[d].flow_count;
  }
  Flow flow;
  flow.route = std::move(route.value());
  flow.rate = rate;
  const FlowId id = next_id_++;
  flows_[id] = std::move(flow);
  QOSNP_LOG_DEBUG("domain", "flow ", id, " reserved across ", flows_[id].route.size(),
                  " domains at ", rate, " bps");
  return id;
}

bool MultiDomainTransport::release(FlowId id) {
  std::lock_guard lk(mu_);
  auto it = flows_.find(id);
  if (it == flows_.end()) return false;
  for (std::size_t d : it->second.route) {
    domains_[d].reserved -= it->second.rate;
    --domains_[d].flow_count;
  }
  flows_.erase(it);
  return true;
}

Result<Money> MultiDomainTransport::quote_per_second(const NodeId& src, const NodeId& dst,
                                                     const StreamRequirements& req) const {
  const std::int64_t rate = rate_of(req);
  if (rate <= 0) return Err("non-positive bit rate");
  std::lock_guard lk(mu_);
  auto route = route_locked(src, dst, rate);
  if (!route.ok()) return Err(route.error());
  Money total;
  for (std::size_t d : route.value()) {
    total += domains_[d].config.tariff.cost_per_second(rate);
  }
  return total;
}

std::vector<DomainId> MultiDomainTransport::route_of(FlowId id) const {
  std::lock_guard lk(mu_);
  auto it = flows_.find(id);
  if (it == flows_.end()) return {};
  std::vector<DomainId> out;
  out.reserve(it->second.route.size());
  for (std::size_t d : it->second.route) out.push_back(domains_[d].config.id);
  return out;
}

DomainUsage MultiDomainTransport::usage(const DomainId& domain) const {
  std::lock_guard lk(mu_);
  DomainUsage u;
  const auto idx = domain_index(domain);
  if (!idx) return u;
  u.capacity_bps = domains_[*idx].config.capacity_bps;
  u.effective_capacity_bps = domains_[*idx].effective_capacity;
  u.reserved_bps = domains_[*idx].reserved;
  u.flow_count = domains_[*idx].flow_count;
  return u;
}

std::size_t MultiDomainTransport::active_flows() const {
  std::lock_guard lk(mu_);
  return flows_.size();
}

std::vector<FlowId> MultiDomainTransport::degrade_domain(const DomainId& domain,
                                                         double lost_fraction) {
  std::lock_guard lk(mu_);
  const auto idx = domain_index(domain);
  if (!idx) return {};
  lost_fraction = std::clamp(lost_fraction, 0.0, 0.999);
  domains_[*idx].effective_capacity = static_cast<std::int64_t>(
      std::llround(static_cast<double>(domains_[*idx].config.capacity_bps) *
                   (1.0 - lost_fraction)));
  // Victims newest-first until the domain fits again.
  std::vector<FlowId> on_domain;
  for (const auto& [id, flow] : flows_) {
    if (std::find(flow.route.begin(), flow.route.end(), *idx) != flow.route.end()) {
      on_domain.push_back(id);
    }
  }
  std::sort(on_domain.begin(), on_domain.end(), std::greater<>());
  std::int64_t excess = domains_[*idx].reserved - domains_[*idx].effective_capacity;
  std::vector<FlowId> victims;
  for (FlowId id : on_domain) {
    if (excess <= 0) break;
    victims.push_back(id);
    excess -= flows_[id].rate;
  }
  return victims;
}

void MultiDomainTransport::restore_domain(const DomainId& domain) {
  std::lock_guard lk(mu_);
  const auto idx = domain_index(domain);
  if (!idx) return;
  domains_[*idx].effective_capacity = domains_[*idx].config.capacity_bps;
}

}  // namespace qosnp
