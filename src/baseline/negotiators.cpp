#include "baseline/negotiators.hpp"

#include <algorithm>

#include "qosmap/mapping.hpp"

namespace qosnp {

NegotiationResult EnumeratingNegotiator::negotiate(const NegotiationRequest& request) {
  const ClientMachine& client = request.client;
  const UserProfile& profile = request.profile;
  NegotiationResult outcome;
  auto document = catalog_->find(request.document);
  if (!document) {
    outcome.verdict = NegotiationStatus::kFailedWithoutOffer;
    outcome.problems.push_back("document '" + request.document + "' not found in the catalog");
    return outcome;
  }
  const LocalCheck local = local_negotiation(client, profile.mm);
  if (!local.ok) {
    outcome.verdict = NegotiationStatus::kFailedWithLocalOffer;
    outcome.problems = local.problems;
    outcome.user_offer = local_offer_from(local.local_offer);
    return outcome;
  }
  auto feasible = compatible_variants(document, client, profile.mm);
  if (!feasible.ok()) {
    outcome.verdict = NegotiationStatus::kFailedWithoutOffer;
    outcome.problems.push_back(feasible.error());
    return outcome;
  }
  outcome.offers = enumerate_offers(feasible.value(), profile.mm, cost_model_, enumeration_);
  order_offers(outcome.offers.offers, profile);

  ResourceCommitter committer(*farm_, *transport_, retry_);
  bool saw_transient = false;
  for (std::size_t i = 0; i < outcome.offers.offers.size(); ++i) {
    auto committed = committer.commit(client, outcome.offers.offers[i]);
    if (!committed.ok()) {
      if (committed.error().transient) saw_transient = true;
      outcome.problems.push_back(committed.error().message);
      continue;
    }
    outcome.committed_index = i;
    outcome.commitment = std::move(committed.value());
    outcome.commit_stats = committer.stats();
    const SystemOffer& offer = outcome.offers.offers[i];
    outcome.user_offer = derive_user_offer(offer);
    outcome.verdict = satisfies_user(offer, profile.mm) ? NegotiationStatus::kSucceeded
                                                       : NegotiationStatus::kFailedWithOffer;
    return outcome;
  }
  outcome.commit_stats = committer.stats();
  outcome.verdict = saw_transient ? NegotiationStatus::kFailedTryLater
                                 : NegotiationStatus::kFailedWithoutOffer;
  return outcome;
}

void CostOnlyNegotiator::order_offers(std::vector<SystemOffer>& offers,
                                      const UserProfile& profile) {
  // Fill sns/oif for reporting parity, then sort purely by cost.
  for (SystemOffer& o : offers) {
    o.sns = compute_sns(o, profile.mm, profile.importance);
    o.oif = compute_oif(o, profile.importance);
  }
  std::sort(offers.begin(), offers.end(), [](const SystemOffer& a, const SystemOffer& b) {
    return a.total_cost() < b.total_cost();
  });
}

void QoSOnlyNegotiator::order_offers(std::vector<SystemOffer>& offers,
                                     const UserProfile& profile) {
  for (SystemOffer& o : offers) {
    o.sns = compute_sns(o, profile.mm, profile.importance);
    o.oif = compute_oif(o, profile.importance);
  }
  // Pure QoS ranking: the importance of the QoS alone (no cost term).
  auto qos_score = [&profile](const SystemOffer& o) {
    double sum = 0.0;
    for (const OfferComponent& c : o.components) {
      sum += profile.importance.qos_importance(c.variant->qos);
    }
    return sum;
  };
  std::sort(offers.begin(), offers.end(),
            [&](const SystemOffer& a, const SystemOffer& b) { return qos_score(a) > qos_score(b); });
}

NegotiationResult BasicNegotiator::negotiate(const NegotiationRequest& request) {
  const ClientMachine& client = request.client;
  const UserProfile& profile = request.profile;
  NegotiationResult outcome;
  auto document = catalog_->find(request.document);
  if (!document) {
    outcome.verdict = NegotiationStatus::kFailedWithoutOffer;
    outcome.problems.push_back("document '" + request.document + "' not found in the catalog");
    return outcome;
  }
  const LocalCheck local = local_negotiation(client, profile.mm);
  if (!local.ok) {
    outcome.verdict = NegotiationStatus::kFailedWithLocalOffer;
    outcome.problems = local.problems;
    outcome.user_offer = local_offer_from(local.local_offer);
    return outcome;
  }
  auto feasible = compatible_variants(document, client, profile.mm);
  if (!feasible.ok()) {
    outcome.verdict = NegotiationStatus::kFailedWithoutOffer;
    outcome.problems.push_back(feasible.error());
    return outcome;
  }

  // Static component choice: for each monomedia the first variant that
  // satisfies the *desired* QoS — the component "a priori known to support
  // a specific QoS". No desired-satisfying variant -> reject outright.
  const FeasibleSet& fs = feasible.value();
  SystemOffer offer;
  std::vector<StreamRequirements> streams;
  for (std::size_t i = 0; i < fs.monomedia.size(); ++i) {
    const Variant* chosen = nullptr;
    for (const Variant* v : fs.variants[i]) {
      const bool fits = std::visit(
          [&](const auto& q) {
            using T = std::decay_t<decltype(q)>;
            if constexpr (std::is_same_v<T, VideoQoS>) {
              return !profile.mm.video || profile.mm.video->satisfied_by(q);
            } else if constexpr (std::is_same_v<T, AudioQoS>) {
              return !profile.mm.audio || profile.mm.audio->satisfied_by(q);
            } else if constexpr (std::is_same_v<T, TextQoS>) {
              return !profile.mm.text || profile.mm.text->satisfied_by(q);
            } else {
              return !profile.mm.image || profile.mm.image->satisfied_by(q);
            }
          },
          v->qos);
      if (fits) {
        chosen = v;
        break;
      }
    }
    if (chosen == nullptr) {
      outcome.verdict = NegotiationStatus::kFailedWithoutOffer;
      outcome.problems.push_back("no variant of '" + fs.monomedia[i]->id +
                                 "' supports the requested QoS");
      return outcome;
    }
    OfferComponent c;
    c.monomedia = fs.monomedia[i];
    c.variant = chosen;
    c.requirements = map_variant(*chosen, fs.monomedia[i]->duration_s, profile.mm.time);
    streams.push_back(c.requirements);
    offer.components.push_back(c);
  }
  offer.cost = cost_model_.document_cost(fs.document->copyright_cost, streams);
  offer.sns = compute_sns(offer, profile.mm, profile.importance);
  offer.oif = compute_oif(offer, profile.importance);

  outcome.offers.document = fs.document;
  outcome.offers.total_combinations = 1;
  outcome.offers.offers.push_back(std::move(offer));

  ResourceCommitter committer(*farm_, *transport_, retry_);
  auto committed = committer.commit(client, outcome.offers.offers[0]);
  outcome.commit_stats = committer.stats();
  if (!committed.ok()) {
    outcome.verdict = committed.error().transient ? NegotiationStatus::kFailedTryLater
                                                 : NegotiationStatus::kFailedWithoutOffer;
    outcome.problems.push_back(committed.error().message);
    return outcome;
  }
  outcome.committed_index = 0;
  outcome.commitment = std::move(committed.value());
  const SystemOffer& final_offer = outcome.offers.offers[0];
  outcome.user_offer = derive_user_offer(final_offer);
  outcome.verdict = satisfies_user(final_offer, profile.mm) ? NegotiationStatus::kSucceeded
                                                           : NegotiationStatus::kFailedWithOffer;
  return outcome;
}

}  // namespace qosnp
