// Baseline negotiators the smart procedure is evaluated against (E7/E10).
// The paper positions its contribution against "basic negotiation provided
// by the existing QoS architectures", whose mechanisms "are restricted to
// the evaluation of the capacity of certain system components a priori
// known to support a specific QoS", and argues (Sec. 5) that classifying
// offers by cost alone or QoS alone is "neither optimal nor suitable".
// Each of those three alternatives is implemented behind one interface:
//
//   * BasicNegotiator   — static negotiation: for each monomedia pick, a
//     priori, the variant that satisfies the desired QoS (no alternatives
//     considered); evaluate only whether those components have capacity;
//     reject otherwise. No classification, no fallback ladder.
//   * CostOnlyNegotiator — classify all feasible offers by cost (cheapest
//     first), ignore SNS/OIF.
//   * QoSOnlyNegotiator  — classify by QoS importance (best first), ignore
//     cost.
//   * SmartNegotiator    — the paper's procedure (wraps QoSManager).
#pragma once

#include <memory>
#include <string_view>

#include "core/qos_manager.hpp"

namespace qosnp {

class Negotiator {
 public:
  virtual ~Negotiator() = default;
  virtual std::string_view name() const = 0;
  virtual NegotiationResult negotiate(const NegotiationRequest& request) = 0;
};

/// The paper's procedure.
class SmartNegotiator final : public Negotiator {
 public:
  SmartNegotiator(Catalog& catalog, ServerProvider& farm, TransportProvider& transport,
                  CostModel cost_model = {}, NegotiationConfig config = {})
      : manager_(catalog, farm, transport, std::move(cost_model), std::move(config)) {}

  std::string_view name() const override { return "smart"; }
  NegotiationResult negotiate(const NegotiationRequest& request) override {
    return manager_.negotiate(request);
  }
  QoSManager& manager() { return manager_; }

 private:
  QoSManager manager_;
};

/// Shared plumbing of the non-smart baselines. Inherently eager: each
/// baseline imposes its own order_offers() sort (cost-only / QoS-only),
/// which is not the classification order the lazy best-first stream yields,
/// so the whole feasible space is materialised first regardless of
/// EnumerationConfig::strategy (only max_offers / prune_dominated apply).
/// The produced OfferList carries no stream and is not sns_ordered, so the
/// commitment walk treats it exactly as before.
class EnumeratingNegotiator : public Negotiator {
 public:
  EnumeratingNegotiator(Catalog& catalog, ServerProvider& farm, TransportProvider& transport,
                        CostModel cost_model, EnumerationConfig enumeration = {},
                        RetryPolicy retry = {})
      : catalog_(&catalog), farm_(&farm), transport_(&transport),
        cost_model_(std::move(cost_model)), enumeration_(enumeration), retry_(retry) {}

  NegotiationResult negotiate(const NegotiationRequest& request) override;

 protected:
  /// Order the enumerated offers; the first committable one wins.
  virtual void order_offers(std::vector<SystemOffer>& offers, const UserProfile& profile) = 0;

  Catalog* catalog_;
  ServerProvider* farm_;
  TransportProvider* transport_;
  CostModel cost_model_;
  EnumerationConfig enumeration_;
  RetryPolicy retry_;
};

class CostOnlyNegotiator final : public EnumeratingNegotiator {
 public:
  using EnumeratingNegotiator::EnumeratingNegotiator;
  std::string_view name() const override { return "cost-only"; }

 protected:
  void order_offers(std::vector<SystemOffer>& offers, const UserProfile& profile) override;
};

class QoSOnlyNegotiator final : public EnumeratingNegotiator {
 public:
  using EnumeratingNegotiator::EnumeratingNegotiator;
  std::string_view name() const override { return "qos-only"; }

 protected:
  void order_offers(std::vector<SystemOffer>& offers, const UserProfile& profile) override;
};

/// Static first-fit negotiation without alternatives.
class BasicNegotiator final : public Negotiator {
 public:
  BasicNegotiator(Catalog& catalog, ServerProvider& farm, TransportProvider& transport,
                  CostModel cost_model = {}, RetryPolicy retry = {})
      : catalog_(&catalog), farm_(&farm), transport_(&transport),
        cost_model_(std::move(cost_model)), retry_(retry) {}

  std::string_view name() const override { return "basic"; }
  NegotiationResult negotiate(const NegotiationRequest& request) override;

 private:
  Catalog* catalog_;
  ServerProvider* farm_;
  TransportProvider* transport_;
  CostModel cost_model_;
  RetryPolicy retry_;
};

}  // namespace qosnp
