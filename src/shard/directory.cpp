#include "shard/directory.hpp"

#include <algorithm>

namespace qosnp {

std::uint64_t shard_key_hash(std::string_view key) {
  // FNV-1a 64-bit, then a splitmix64 finalizer. The finalizer is load-
  // bearing: two strings differing at one position (the ring's own
  //   "shard-<s>#<v>" labels, or key families like "doc-<i>") come out of
  // bare FNV-1a as affine shifts of each other — every vnode of one shard
  // sits a constant offset from the matching vnode of another, which
  // collapses whole shards' ring arcs and routes nearly all keys to one or
  // two shards. The avalanche pass decorrelates them.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : key) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebULL;
  h ^= h >> 31;
  return h;
}

ShardDirectory::ShardDirectory(std::size_t shard_count, std::size_t virtual_nodes)
    : shard_count_(shard_count) {
  if (shard_count == 0) throw std::invalid_argument("ShardDirectory: shard_count must be >= 1");
  if (virtual_nodes == 0) {
    throw std::invalid_argument("ShardDirectory: virtual_nodes must be >= 1");
  }
  ring_.reserve(shard_count * virtual_nodes);
  for (std::size_t shard = 0; shard < shard_count; ++shard) {
    for (std::size_t v = 0; v < virtual_nodes; ++v) {
      const std::string label =
          "shard-" + std::to_string(shard) + "#" + std::to_string(v);
      ring_.push_back({shard_key_hash(label), static_cast<std::uint32_t>(shard)});
    }
  }
  std::sort(ring_.begin(), ring_.end(), [](const VirtualNode& a, const VirtualNode& b) {
    return a.point != b.point ? a.point < b.point : a.shard < b.shard;
  });
}

std::size_t ShardDirectory::shard_of_key(std::string_view key) const {
  const std::uint64_t h = shard_key_hash(key);
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), h,
      [](const VirtualNode& node, std::uint64_t point) { return node.point < point; });
  if (it == ring_.end()) it = ring_.begin();  // wrap around the ring
  return it->shard;
}

void ShardDirectory::register_server(const ServerId& id, std::size_t shard) {
  if (shard >= shard_count_) {
    throw std::out_of_range("ShardDirectory: server '" + id + "' registered on shard " +
                            std::to_string(shard) + " of " + std::to_string(shard_count_));
  }
  auto [it, inserted] = servers_.emplace(id, shard);
  if (!inserted && it->second != shard) {
    throw std::invalid_argument("ShardDirectory: server '" + id + "' already owned by shard " +
                                std::to_string(it->second));
  }
}

void ShardDirectory::register_node(const NodeId& id, std::size_t shard) {
  if (shard >= shard_count_) {
    throw std::out_of_range("ShardDirectory: node '" + id + "' registered on shard " +
                            std::to_string(shard) + " of " + std::to_string(shard_count_));
  }
  auto [it, inserted] = nodes_.emplace(id, shard);
  if (!inserted && it->second != shard) {
    throw std::invalid_argument("ShardDirectory: node '" + id + "' already owned by shard " +
                                std::to_string(it->second));
  }
}

std::optional<std::size_t> ShardDirectory::shard_of_server(const ServerId& id) const {
  auto it = servers_.find(id);
  return it == servers_.end() ? std::nullopt : std::optional<std::size_t>(it->second);
}

std::optional<std::size_t> ShardDirectory::shard_of_node(const NodeId& id) const {
  auto it = nodes_.find(id);
  return it == nodes_.end() ? std::nullopt : std::optional<std::size_t>(it->second);
}

}  // namespace qosnp
