// ShardedClient: NegotiationClient over the shard router — the fourth and
// widest deployment shape behind the one client interface. submit() routes
// by consistent hash and blocks on the home shard's worker pool;
// drain_metrics() exposes the federation's single registry (per-shard
// qosnp_shard_* counters included).
#pragma once

#include <utility>

#include "core/negotiation_client.hpp"
#include "shard/sharded_service.hpp"

namespace qosnp {

class ShardedClient final : public NegotiationClient {
 public:
  explicit ShardedClient(ShardedService& cluster) : cluster_(&cluster) {}

  NegotiationResult submit(NegotiationRequest request) override {
    return cluster_->router().submit(std::move(request)).get();
  }

  void submit_async(NegotiationRequest request, CompletionFn done) override {
    cluster_->router().submit_async(std::move(request), std::move(done));
  }

  std::string drain_metrics() const override { return cluster_->metrics().expose(); }

  ShardedService& cluster() { return *cluster_; }

 private:
  ShardedService* cluster_;
};

}  // namespace qosnp
