// The in-process sharded federation (ROADMAP item 2): N complete
// negotiation verticals — catalog partition, server farm, transport
// capacity, QoS manager with its own plan cache, concurrent service worker
// pool — behind one consistent-hash router.
//
//   ShardRouter    — routes each NegotiationRequest to its home shard
//                    (ShardDirectory::shard_of_document over the request's
//                    catalog key) and keeps the qosnp_shard_* balance
//                    counters. Thread-safe: routing is pure and the shard
//                    services are concurrent.
//   ShardedService — owns the verticals and the shared pieces: one
//                    ShardDirectory, the federated providers every shard
//                    commits through (cross-shard documents reserve on each
//                    owning shard via the FederatedCommitter), ONE shared
//                    SessionManager (sessions are global objects — Step 6,
//                    adaptation and preemption work across shards), and one
//                    MetricsRegistry so the qosnp_* conservation laws close
//                    globally over the whole federation.
//
// Catalog partitioning: add_document() stores each document on its home
// shard only; a shard's plan cache is invalidated by that shard's catalog
// epochs alone (per-shard caches, per-shard epochs).
//
// With one shard the federation degenerates exactly to the unsharded
// service — same reservation order, same refusal texts, same results
// byte-for-byte (tests/shard_test.cpp holds it to that over 500+ seeds).
#pragma once

#include <cstddef>
#include <future>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/qos_manager.hpp"
#include "document/catalog.hpp"
#include "net/transport.hpp"
#include "netio/node_config.hpp"
#include "server/media_server.hpp"
#include "service/negotiation_service.hpp"
#include "session/session.hpp"
#include "shard/directory.hpp"
#include "shard/federation.hpp"
#include "shard/metrics.hpp"

namespace qosnp {

/// What one shard owns: its media servers and the transport topology they
/// (and every client node) attach to. Server ids and server *nodes* must be
/// unique across shards (the directory maps both to their owning shard);
/// client nodes should appear in every shard's topology so any shard can
/// terminate a flow at any client.
struct ShardSpec {
  std::vector<MediaServerConfig> servers;
  Topology topology;
};

/// Consistent-hash request router over the shard services. submit/
/// submit_async mirror NegotiationService's own surface, so anything that
/// can drive a service can drive the federation.
class ShardRouter {
 public:
  ShardRouter(std::vector<NegotiationService*> shards, const ShardDirectory& directory,
              ShardMetrics& metrics)
      : shards_(std::move(shards)), directory_(&directory), metrics_(&metrics) {}

  std::size_t shard_count() const { return shards_.size(); }

  /// The home shard of a request: the consistent hash of its catalog key
  /// (the resolved document's id when the request skips the catalog).
  std::size_t home_shard(const NegotiationRequest& request) const {
    return directory_->shard_of_key(request.resolved != nullptr ? request.resolved->id
                                                                : request.document);
  }

  void submit_async(NegotiationRequest request, NegotiationService::CompletionFn done);
  std::future<NegotiationResult> submit(NegotiationRequest request);

  NegotiationService& shard(std::size_t k) { return *shards_[k]; }

 private:
  std::vector<NegotiationService*> shards_;
  const ShardDirectory* directory_;
  ShardMetrics* metrics_;
};

class ShardedService {
 public:
  /// Assemble a federation of `specs.size()` shards. `node` configures
  /// every shard's worker pool and plan cache (one cache per shard);
  /// `negotiation` seeds each shard manager's NegotiationConfig (its
  /// plan_cache and committer_factory fields are overwritten per shard);
  /// `cost` is shared. Throws std::invalid_argument on an empty spec list
  /// or duplicate server/node ownership.
  explicit ShardedService(std::vector<ShardSpec> specs, const NodeConfig& node = {},
                          NegotiationConfig negotiation = {}, CostModel cost = {});
  ~ShardedService();

  ShardedService(const ShardedService&) = delete;
  ShardedService& operator=(const ShardedService&) = delete;

  void start();
  void stop();

  /// Store a document on its home shard's catalog partition. Returns the
  /// catalog's validation problem list (empty = stored).
  std::vector<std::string> add_document(MultimediaDocument doc);
  std::size_t home_of(const DocumentId& id) const { return directory_.shard_of_document(id); }

  std::size_t shard_count() const { return services_.size(); }
  ShardRouter& router() { return *router_; }
  const ShardDirectory& directory() const { return directory_; }
  NegotiationService& service(std::size_t k) { return *services_[k]; }
  QoSManager& manager(std::size_t k) { return *managers_[k]; }
  Catalog& catalog(std::size_t k) { return *catalogs_[k]; }
  ServerFarm& farm(std::size_t k) { return *farms_[k]; }
  TransportService& transport(std::size_t k) { return *transports_[k]; }
  SessionManager& sessions() { return *sessions_; }
  MetricsRegistry& metrics() { return registry_; }
  ShardMetrics& shard_metrics() { return *shard_metrics_; }

  /// The global drain invariant: no live session anywhere, every shard's
  /// farm and transport back to zero reservations with consistent
  /// accounting, and the shard counters balanced.
  bool drained() const;

 private:
  ShardDirectory directory_;
  MetricsRegistry registry_;
  std::unique_ptr<ShardMetrics> shard_metrics_;
  std::vector<std::unique_ptr<Catalog>> catalogs_;
  std::vector<std::unique_ptr<ServerFarm>> farms_;
  std::vector<std::unique_ptr<TransportService>> transports_;
  std::unique_ptr<FederatedFarm> fed_farm_;
  std::unique_ptr<FederatedTransport> fed_transport_;
  std::vector<std::unique_ptr<QoSManager>> managers_;
  /// The shared SessionManager adapts/renegotiates through this home-less
  /// manager (commit walks only — it owns no catalog partition).
  Catalog federation_catalog_;
  std::unique_ptr<QoSManager> federation_manager_;
  std::unique_ptr<SessionManager> sessions_;
  std::vector<std::unique_ptr<NegotiationService>> services_;
  std::unique_ptr<ShardRouter> router_;
};

}  // namespace qosnp
