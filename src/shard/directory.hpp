// ShardDirectory: who owns what in a sharded federation of QoS managers.
//
// Two very different ownership questions are answered here:
//
//   * shard_of_document(id) — pure consistent hashing over a ring of
//     virtual nodes. It is a function of (key, shard_count, virtual_nodes)
//     ONLY — no registration, no state — so a wire-side router in another
//     process computes the identical home shard from the identical
//     parameters. The ring hashes with FNV-1a + a splitmix64 finalizer
//     (not std::hash) for the same reason: the mapping must be stable
//     across processes, compilers and runs.
//
//   * shard_of_server(id) / shard_of_node(id) — explicit registration maps
//     filled while the federation is assembled (each shard registers the
//     media servers it owns and the topology nodes those servers attach
//     to). The FederatedCommitter consults these to decide which shard's
//     farm/transport a reservation must land on.
//
// Registration happens strictly before concurrent use (assembly, then
// serving); lookups afterwards are read-only and lock-free.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "document/model.hpp"
#include "net/topology.hpp"
#include "server/media_server.hpp"

namespace qosnp {

/// The ring hash: FNV-1a 64-bit finalized with splitmix64's avalanche pass
/// (bare FNV-1a leaves one-character-apart label families affinely
/// correlated, which skews the ring badly). Exposed so tests can predict
/// placements.
std::uint64_t shard_key_hash(std::string_view key);

class ShardDirectory {
 public:
  static constexpr std::size_t kDefaultVirtualNodes = 64;

  explicit ShardDirectory(std::size_t shard_count,
                          std::size_t virtual_nodes = kDefaultVirtualNodes);

  std::size_t shard_count() const { return shard_count_; }

  /// Home shard of an arbitrary catalog key: nearest virtual node clockwise
  /// on the ring. Pure — identical answers in every process sharing
  /// (shard_count, virtual_nodes).
  std::size_t shard_of_key(std::string_view key) const;
  std::size_t shard_of_document(const DocumentId& id) const { return shard_of_key(id); }

  /// Register ownership. Re-registering the same id on the same shard is
  /// idempotent; on a different shard it throws (split ownership of one
  /// server would break the federation's conservation laws).
  void register_server(const ServerId& id, std::size_t shard);
  void register_node(const NodeId& id, std::size_t shard);

  std::optional<std::size_t> shard_of_server(const ServerId& id) const;
  std::optional<std::size_t> shard_of_node(const NodeId& id) const;

 private:
  struct VirtualNode {
    std::uint64_t point;
    std::uint32_t shard;
  };

  std::size_t shard_count_;
  std::vector<VirtualNode> ring_;  ///< sorted by point
  std::unordered_map<ServerId, std::size_t> servers_;
  std::unordered_map<NodeId, std::size_t> nodes_;
};

}  // namespace qosnp
