#include "shard/wire_router.hpp"

#include <stdexcept>
#include <utility>

#include "util/log.hpp"

namespace qosnp {

WireShardRouterConfig WireShardRouterConfig::validated(WireShardRouterConfig config) {
  if (config.backends.empty()) {
    throw std::invalid_argument("WireShardRouterConfig: at least one backend is required");
  }
  if (config.overload_retries < 0) {
    throw std::invalid_argument("WireShardRouterConfig: overload_retries must not be negative");
  }
  return config;
}

WireShardRouter::WireShardRouter(WireShardRouterConfig config)
    : config_(WireShardRouterConfig::validated(std::move(config))),
      directory_(config_.backends.size()) {
  clients_.reserve(config_.backends.size());
  for (const WireClientConfig& backend : config_.backends) {
    clients_.push_back(std::make_unique<WireClient>(backend));
  }
  stats_.routed.assign(clients_.size(), 0);
}

Result<NegotiationResult, wire::WireError> WireShardRouter::submit(
    const NegotiationRequest& request, double deadline_ms) {
  const std::size_t home = home_shard(request);
  ++stats_.routed[home];
  const int hops = std::min<int>(config_.overload_retries,
                                 static_cast<int>(clients_.size()) - 1);
  wire::WireError last{};
  for (int hop = 0; hop <= hops; ++hop) {
    const std::size_t shard = (home + static_cast<std::size_t>(hop)) % clients_.size();
    auto response = clients_[shard]->submit(request, deadline_ms);
    if (response.ok()) return std::move(response.value());
    last = response.error();
    if (last.code == wire::WireErrorCode::kDeadlineExceeded) {
      // The home shard may still resolve this request; retrying elsewhere
      // would double-spend it. Fail fast, typed.
      ++stats_.deadline_failures;
      return Err(std::move(last));
    }
    if (!last.try_later()) return Err(std::move(last));
    if (hop < hops) {
      ++stats_.overload_hops;
      QOSNP_LOG_DEBUG("shard", "shard ", shard, " overloaded, hopping to ",
                      (shard + 1) % clients_.size());
    }
  }
  return Err(std::move(last));
}

}  // namespace qosnp
