// WireShardRouter: the federation reached over the wire — a client-side
// router in front of N qosnpd backends, one per shard, indexed in shard
// order (the deployment contract: backends[k] fronts the shard that
// ShardDirectory(shard_count=N) calls k). Routing uses the same pure
// consistent hash as the in-process ShardRouter, so this process computes
// the identical home shard with no registration traffic.
//
// Retry policy (the reason WireClient deadlines are typed): a response of
// kOverloaded — the backend shed the connection or request — is retried on
// the next shard(s) in ring order, up to overload_retries hops; every other
// error, kDeadlineExceeded above all, fails fast. An expired deadline means
// the home shard may still be computing the answer — retrying it elsewhere
// would double-spend the reservation, and the other shard does not own the
// document anyway (it answers with a clean typed refusal, which is why the
// overload hop is safe: it degrades to an honest failure, never a wrong
// success).
//
// Not thread-safe (WireClient is connection-per-thread); give each
// submitting thread its own router, as with RemoteClient.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/negotiation_request.hpp"
#include "core/negotiation_result.hpp"
#include "netio/client.hpp"
#include "shard/directory.hpp"
#include "util/result.hpp"

namespace qosnp {

struct WireShardRouterConfig {
  /// One backend per shard, index = shard id.
  std::vector<WireClientConfig> backends;
  /// How many other shards an overloaded submit hops to before giving up.
  int overload_retries = 1;

  static WireShardRouterConfig validated(WireShardRouterConfig config);
};

/// Per-routing-decision counters (this router is single-threaded, so plain
/// integers tell the whole story).
struct WireRouteStats {
  std::vector<std::uint64_t> routed;  ///< submits first sent to shard k
  std::uint64_t overload_hops = 0;    ///< retries taken after kOverloaded
  std::uint64_t deadline_failures = 0;  ///< kDeadlineExceeded fast-failures
};

class WireShardRouter {
 public:
  explicit WireShardRouter(WireShardRouterConfig config);

  std::size_t shard_count() const { return clients_.size(); }
  std::size_t home_shard(const NegotiationRequest& request) const {
    return directory_.shard_of_key(request.resolved != nullptr ? request.resolved->id
                                                               : request.document);
  }

  /// Route + submit, hopping to the next shard only on kOverloaded.
  Result<NegotiationResult, wire::WireError> submit(const NegotiationRequest& request,
                                                    double deadline_ms = 0.0);

  const WireRouteStats& stats() const { return stats_; }
  WireClient& client(std::size_t k) { return *clients_[k]; }

 private:
  WireShardRouterConfig config_;
  ShardDirectory directory_;
  std::vector<std::unique_ptr<WireClient>> clients_;
  WireRouteStats stats_;
};

}  // namespace qosnp
