// ShardedPopulationBackend: the population simulator over the federation.
// A thin adapter over ShardedClient, exactly parallel to the service
// backend: negotiate() blocks on the routed submit, sessions live on the
// shared SessionManager, and the session time base is the shard services'
// wall clock (every shard service is constructed together, so shard 0's
// clock stands for the federation).
//
// The services must run with auto_confirm=false: Step 6 (confirm within
// choicePeriod, abandon, or time out) belongs to the population.
#pragma once

#include <stdexcept>
#include <utility>

#include "shard/sharded_client.hpp"
#include "sim/population.hpp"

namespace qosnp {

class ShardedPopulationBackend final : public PopulationBackend {
 public:
  explicit ShardedPopulationBackend(ShardedService& cluster)
      : cluster_(&cluster), client_(cluster) {
    if (cluster.service(0).config().auto_confirm) {
      throw std::invalid_argument(
          "ShardedPopulationBackend: the shard services must run with auto_confirm=false "
          "(the population drives Step 6 itself)");
    }
  }

  NegotiationResult negotiate(NegotiationRequest request, double /*sim_now_s*/) override {
    return client_.submit(std::move(request));
  }

  SessionManager& sessions() override { return cluster_->sessions(); }

  double session_now_s(double /*sim_now_s*/) const override {
    return cluster_->service(0).now_s();
  }

 private:
  ShardedService* cluster_;
  ShardedClient client_;
};

}  // namespace qosnp
