#include "shard/sharded_service.hpp"

#include <stdexcept>

namespace qosnp {

void ShardRouter::submit_async(NegotiationRequest request,
                               NegotiationService::CompletionFn done) {
  metrics_->requests->inc();
  const std::size_t home = home_shard(request);
  metrics_->routed[home]->inc();
  Counter* responses = metrics_->responses[home];
  shards_[home]->submit_async(
      std::move(request), [responses, done = std::move(done)](NegotiationResult result) {
        responses->inc();
        done(std::move(result));
      });
}

std::future<NegotiationResult> ShardRouter::submit(NegotiationRequest request) {
  auto promise = std::make_shared<std::promise<NegotiationResult>>();
  std::future<NegotiationResult> future = promise->get_future();
  submit_async(std::move(request),
               [promise](NegotiationResult result) { promise->set_value(std::move(result)); });
  return future;
}

ShardedService::ShardedService(std::vector<ShardSpec> specs, const NodeConfig& node,
                               NegotiationConfig negotiation, CostModel cost)
    : directory_(specs.empty() ? 1 : specs.size()) {
  if (specs.empty()) {
    throw std::invalid_argument("ShardedService: at least one ShardSpec is required");
  }
  const std::size_t n = specs.size();
  shard_metrics_ = std::make_unique<ShardMetrics>(registry_, n);

  // Verticals first: each shard's catalog partition, farm and transport,
  // with every server (and the node it attaches to) registered to its
  // owning shard — the routing state the federated providers consult.
  std::vector<ServerProvider*> farm_ptrs;
  std::vector<TransportProvider*> transport_ptrs;
  for (std::size_t k = 0; k < n; ++k) {
    catalogs_.push_back(std::make_unique<Catalog>());
    farms_.push_back(std::make_unique<ServerFarm>());
    transports_.push_back(std::make_unique<TransportService>(std::move(specs[k].topology)));
    for (MediaServerConfig& server : specs[k].servers) {
      directory_.register_server(server.id, k);
      directory_.register_node(server.node, k);
      if (!farms_[k]->add(std::move(server))) {
        throw std::invalid_argument("ShardedService: duplicate server id within shard " +
                                    std::to_string(k));
      }
    }
    farm_ptrs.push_back(farms_[k].get());
    transport_ptrs.push_back(transports_[k].get());
  }
  fed_farm_ = std::make_unique<FederatedFarm>(directory_, std::move(farm_ptrs));
  fed_transport_ = std::make_unique<FederatedTransport>(directory_, std::move(transport_ptrs));

  // Per-shard managers commit through the federated providers (a shard's
  // documents may reference another shard's servers); each gets its own
  // plan cache, invalidated by its own catalog partition's epochs.
  for (std::size_t k = 0; k < n; ++k) {
    NegotiationConfig config = negotiation;
    config.plan_cache = node.make_plan_cache();
    config.committer_factory = [this, k](const RetryPolicy& retry, SessionClass session_class) {
      return std::make_unique<FederatedCommitter>(*fed_farm_, *fed_transport_, directory_, retry,
                                                  session_class, k, shard_metrics_.get());
    };
    managers_.push_back(
        std::make_unique<QoSManager>(*catalogs_[k], *fed_farm_, *fed_transport_, cost, config));
  }

  // One SessionManager across all shards: sessions are global objects, so
  // Step 6 and the adaptation procedure work no matter which shard admitted
  // them. Its walks run through a home-less federated committer over the
  // session's resolved document (never a catalog, so the empty federation
  // catalog is fine).
  NegotiationConfig federation_config = negotiation;
  federation_config.committer_factory = [this](const RetryPolicy& retry,
                                               SessionClass session_class) {
    return std::make_unique<FederatedCommitter>(*fed_farm_, *fed_transport_, directory_, retry,
                                                session_class, kNoHomeShard,
                                                shard_metrics_.get());
  };
  federation_manager_ = std::make_unique<QoSManager>(federation_catalog_, *fed_farm_,
                                                     *fed_transport_, cost, federation_config);
  sessions_ = std::make_unique<SessionManager>(*federation_manager_);

  // Every shard's worker pool records into the one shared registry, so the
  // per-verdict conservation laws close over the whole federation.
  NodeConfig shard_node = node;
  shard_node.metrics(&registry_);
  std::vector<NegotiationService*> service_ptrs;
  for (std::size_t k = 0; k < n; ++k) {
    services_.push_back(
        std::make_unique<NegotiationService>(*managers_[k], *sessions_, shard_node.service()));
    service_ptrs.push_back(services_[k].get());
  }
  router_ = std::make_unique<ShardRouter>(std::move(service_ptrs), directory_, *shard_metrics_);
}

ShardedService::~ShardedService() { stop(); }

void ShardedService::start() {
  for (auto& service : services_) service->start();
}

void ShardedService::stop() {
  for (auto& service : services_) service->stop();
}

std::vector<std::string> ShardedService::add_document(MultimediaDocument doc) {
  return catalogs_[directory_.shard_of_document(doc.id)]->add(std::move(doc));
}

bool ShardedService::drained() const {
  if (sessions_->active_count() != 0) return false;
  for (std::size_t k = 0; k < services_.size(); ++k) {
    for (const ServerId& id : farms_[k]->list()) {
      const ServerUsage usage = farms_[k]->find(id)->usage();
      if (usage.reserved_bps != 0 || usage.sessions != 0) return false;
    }
    if (transports_[k]->active_flows() != 0 || transports_[k]->total_reserved_bps() != 0 ||
        !transports_[k]->accounting_consistent()) {
      return false;
    }
  }
  return shard_metrics_->balanced();
}

}  // namespace qosnp
