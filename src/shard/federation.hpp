// The federation layer of the sharded negotiation system: how one shard's
// Step-5 commit walk reaches resources owned by *other* shards, without a
// single reservation ever leaking.
//
//   FederatedFarm       — ServerProvider routing find_server() to the
//                         owning shard's farm (ShardDirectory lookup).
//   FederatedTransport  — TransportProvider routing reserve() to the shard
//                         owning the flow's source (server) node. Returned
//                         FlowIds carry the owning shard in their top bits,
//                         so release() routes back arithmetically: no map,
//                         no lock, and a Commitment's RAII handles keep
//                         working unchanged across shard boundaries.
//   FederatedCommitter  — ResourceCommitter whose commit_once() walk groups
//                         an offer's components by owning shard and
//                         reserves shard-by-shard in ascending shard order
//                         (original component order within a shard). This
//                         generalises the src/domain multi-domain walk:
//                         refusal/rollback semantics, retry accounting and
//                         refusal texts are EXACTLY the base committer's —
//                         with one shard the walk degenerates to the
//                         identical reserve sequence, which is what makes
//                         ShardedClient(N=1) byte-identical to the
//                         unsharded service.
//
// See docs/SHARDING.md for the commit protocol and rollback ordering.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/commit.hpp"
#include "net/transport.hpp"
#include "server/media_server.hpp"
#include "shard/directory.hpp"
#include "shard/metrics.hpp"

namespace qosnp {

/// Routes find_server() to the farm of the shard owning the server id.
class FederatedFarm final : public ServerProvider {
 public:
  FederatedFarm(const ShardDirectory& directory, std::vector<ServerProvider*> farms)
      : directory_(&directory), farms_(std::move(farms)) {}

  StreamServer* find_server(const ServerId& id) override {
    const auto shard = directory_->shard_of_server(id);
    if (!shard.has_value() || *shard >= farms_.size()) return nullptr;
    return farms_[*shard]->find_server(id);
  }

 private:
  const ShardDirectory* directory_;
  std::vector<ServerProvider*> farms_;
};

/// Routes reserve()/release() to the shard owning the source node, tagging
/// flow ids with the owning shard so release() needs no lookup state.
class FederatedTransport final : public TransportProvider {
 public:
  /// Shard index lives in the top 16 bits (offset by one so a tagged id is
  /// never confused with a raw per-shard id); 2^48 flows per shard before
  /// the tag would be clobbered — unreachable in any real deployment, and
  /// asserted against in reserve().
  static constexpr int kShardShift = 48;
  static constexpr FlowId kLocalMask = (FlowId{1} << kShardShift) - 1;

  static FlowId tag(std::size_t shard, FlowId local) {
    return (static_cast<FlowId>(shard + 1) << kShardShift) | local;
  }
  static std::size_t shard_of_flow(FlowId id) {
    return static_cast<std::size_t>(id >> kShardShift) - 1;
  }
  static FlowId local_flow(FlowId id) { return id & kLocalMask; }

  FederatedTransport(const ShardDirectory& directory, std::vector<TransportProvider*> transports)
      : directory_(&directory), transports_(std::move(transports)) {}

  Result<FlowId, Refusal> reserve(const NodeId& src, const NodeId& dst,
                                  const StreamRequirements& req) override;
  bool release(FlowId id) override;

 private:
  const ShardDirectory* directory_;
  std::vector<TransportProvider*> transports_;
};

/// Home shard value of a committer serving the shared SessionManager's
/// adaptation walks, which have no routed home.
inline constexpr std::size_t kNoHomeShard = SIZE_MAX;

class FederatedCommitter final : public ResourceCommitter {
 public:
  /// `home` is the shard whose manager runs the walk (kNoHomeShard for
  /// session adaptation); it only feeds the attribution metrics, never the
  /// reservation routing. `metrics` may be nullptr (tests building the
  /// federation pieces directly).
  FederatedCommitter(FederatedFarm& farm, FederatedTransport& transport,
                     const ShardDirectory& directory, RetryPolicy retry = {},
                     SessionClass session_class = SessionClass::kStandard,
                     std::size_t home = kNoHomeShard, ShardMetrics* metrics = nullptr)
      : ResourceCommitter(farm, transport, retry, session_class), directory_(&directory),
        home_(home), metrics_(metrics) {}

 protected:
  Result<Commitment, Refusal> commit_once(const ClientMachine& client, const SystemOffer& offer,
                                          CommitStats& stats) override;

 private:
  const ShardDirectory* directory_;
  std::size_t home_;
  ShardMetrics* metrics_;
};

}  // namespace qosnp
