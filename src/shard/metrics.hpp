// qosnp_shard_* metric bundle: the federation's observability surface,
// registered into the one registry the whole sharded process exposes. The
// counters close a global balance law the shard tests and bench_e20 assert
// at drain (no request in flight):
//
//   requests                 == sum_k routed[k]      (every submit was routed)
//   requests                 == sum_k responses[k]   (every submit resolved)
//
// plus the federation-side attribution counters: forwarded[k] counts
// committed reservations that landed on shard k on behalf of a *different*
// home shard, cross_commits[k] counts commitments homed on shard k that
// spanned more than one shard, cross_commits_adapt the same for
// session-manager adaptation walks (which have no home shard), and
// federated_rollbacks counts cross-federation walks that had to roll back
// partial reservations (the no-leak path).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace qosnp {

struct ShardMetrics {
  ShardMetrics(MetricsRegistry& registry, std::size_t shard_count) {
    requests = &registry.counter("qosnp_shard_requests_total", {},
                                 "Requests submitted to the shard router");
    routed.reserve(shard_count);
    responses.reserve(shard_count);
    forwarded.reserve(shard_count);
    cross_commits.reserve(shard_count);
    for (std::size_t k = 0; k < shard_count; ++k) {
      const std::string shard = std::to_string(k);
      routed.push_back(&registry.counter("qosnp_shard_routed_total", {{"shard", shard}},
                                         "Requests routed to their home shard"));
      responses.push_back(&registry.counter("qosnp_shard_responses_total", {{"shard", shard}},
                                            "Responses resolved, by home shard"));
      forwarded.push_back(&registry.counter(
          "qosnp_shard_forwarded_total", {{"shard", shard}},
          "Committed reservations placed on this shard for another home shard"));
      cross_commits.push_back(&registry.counter(
          "qosnp_shard_cross_commits_total", {{"home", shard}},
          "Commitments homed on this shard that spanned more than one shard"));
    }
    cross_commits_adapt = &registry.counter(
        "qosnp_shard_cross_commits_total", {{"home", "adapt"}},
        "Cross-shard commitments made by home-less session adaptation walks");
    federated_rollbacks =
        &registry.counter("qosnp_shard_federated_rollbacks_total", {},
                          "Federated commit walks rolled back after partial reservation");
  }

  std::uint64_t routed_total() const {
    std::uint64_t total = 0;
    for (const Counter* c : routed) total += c->value();
    return total;
  }
  std::uint64_t responses_total() const {
    std::uint64_t total = 0;
    for (const Counter* c : responses) total += c->value();
    return total;
  }

  /// The global balance law; exact at drain.
  bool balanced() const {
    return requests->value() == routed_total() && requests->value() == responses_total();
  }

  Counter* requests;
  std::vector<Counter*> routed;
  std::vector<Counter*> responses;
  std::vector<Counter*> forwarded;
  std::vector<Counter*> cross_commits;
  Counter* cross_commits_adapt;
  Counter* federated_rollbacks;
};

}  // namespace qosnp
