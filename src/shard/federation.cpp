#include "shard/federation.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

namespace qosnp {

Result<FlowId, Refusal> FederatedTransport::reserve(const NodeId& src, const NodeId& dst,
                                                    const StreamRequirements& req) {
  const auto shard = directory_->shard_of_node(src);
  if (!shard.has_value() || *shard >= transports_.size()) {
    // Matches the spirit of the transport's own "no route" refusal: a node
    // no shard owns can never carry a flow, and retrying will not help.
    return permanent_refusal("federation", "node '" + src + "' is owned by no shard");
  }
  auto flow = transports_[*shard]->reserve(src, dst, req);
  if (!flow.ok()) return Err(flow.error());
  assert(flow.value() <= kLocalMask && "per-shard flow id overflows the shard tag");
  return tag(*shard, flow.value());
}

bool FederatedTransport::release(FlowId id) {
  const std::size_t shard = shard_of_flow(id);
  if (shard >= transports_.size()) return false;
  return transports_[shard]->release(local_flow(id));
}

Result<Commitment, Refusal> FederatedCommitter::commit_once(const ClientMachine& client,
                                                            const SystemOffer& offer,
                                                            CommitStats& stats) {
  // Group the offer's components by owning shard and walk shards in
  // ascending index order, original component order within a shard — the
  // deterministic federation order every peer agrees on. A component whose
  // server no shard owns is kept in the home group so the walk reaches it
  // exactly where the unsharded committer would (same refusal, same
  // rollback count) — with one shard the whole walk degenerates to the
  // base committer's component order.
  const std::size_t fallback = home_ != kNoHomeShard ? home_ : 0;
  std::vector<std::pair<std::size_t, std::size_t>> order;  // (shard, component index)
  order.reserve(offer.components.size());
  for (std::size_t i = 0; i < offer.components.size(); ++i) {
    const auto shard = directory_->shard_of_server(offer.components[i].variant->server);
    order.emplace_back(shard.value_or(fallback), i);
  }
  std::stable_sort(order.begin(), order.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });

  Commitment commitment;
  std::size_t shards_touched = 0;
  std::size_t last_shard = kNoHomeShard;
  for (const auto& [shard, index] : order) {
    if (shard != last_shard) {
      ++shards_touched;
      last_shard = shard;
    }
    const OfferComponent& c = offer.components[index];
    StreamServer* server = farm().find_server(c.variant->server);
    if (server == nullptr) {
      if (metrics_ != nullptr && !commitment.empty()) metrics_->federated_rollbacks->inc();
      return permanent_refusal(c.variant->server,
                               "variant '" + c.variant->id + "' lives on unknown server");
    }
    StreamRequirements requirements = c.requirements;
    requirements.session_class = session_class();
    auto stream = server->admit(requirements);
    if (!stream.ok()) {
      stats.released_on_failure +=
          static_cast<int>(commitment.stream_count() + commitment.flow_count());
      if (metrics_ != nullptr && !commitment.empty()) metrics_->federated_rollbacks->inc();
      return Err(stream.error());
    }
    attach_stream(commitment, server, stream.value());

    auto flow = transport().reserve(server->node(), client.node, requirements);
    if (!flow.ok()) {
      stats.released_on_failure +=
          static_cast<int>(commitment.stream_count() + commitment.flow_count());
      if (metrics_ != nullptr) metrics_->federated_rollbacks->inc();
      return Err(flow.error());
    }
    attach_flow(commitment, &transport(), flow.value());
  }

  if (metrics_ != nullptr && shards_touched > 1) {
    if (home_ != kNoHomeShard) {
      metrics_->cross_commits[home_]->inc();
    } else {
      metrics_->cross_commits_adapt->inc();
    }
    if (home_ != kNoHomeShard) {
      for (const auto& [shard, index] : order) {
        if (shard != home_) metrics_->forwarded[shard]->inc();
      }
    }
  }
  return commitment;
}

}  // namespace qosnp
