// Deterministic pseudo-random number generation for workload synthesis and
// the discrete-event simulator. SplitMix64 core: tiny state, excellent
// statistical quality for simulation purposes, trivially seedable per
// experiment so every bench run is reproducible.
#pragma once

#include <cstdint>
#include <cmath>
#include <cstddef>
#include <span>

namespace qosnp {

class Rng {
 public:
  explicit constexpr Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) : state_(seed) {}

  /// Next raw 64-bit value (SplitMix64 step).
  constexpr std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, 1).
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t below(std::uint64_t n) {
    // Lemire's multiply-shift reduction: negligible bias at the cost of a
    // single wide multiply.
#ifdef __SIZEOF_INT128__
    __extension__ using u128 = unsigned __int128;
    const u128 m = static_cast<u128>(next_u64()) * n;
    return static_cast<std::uint64_t>(m >> 64);
#else
    return next_u64() % n;
#endif
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t between(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Bernoulli trial with success probability p.
  bool chance(double p) { return uniform() < p; }

  /// Exponentially distributed variate with the given rate (mean 1/rate);
  /// the inter-arrival law of the Poisson session workload.
  double exponential(double rate) {
    double u = uniform();
    // Guard against log(0).
    if (u <= 0.0) u = 0x1.0p-53;
    return -std::log(u) / rate;
  }

  /// Pick an index in [0, weights.size()) proportionally to weights.
  /// Zero total weight falls back to index 0.
  std::size_t weighted_pick(std::span<const double> weights) {
    double total = 0.0;
    for (double w : weights) total += w;
    if (total <= 0.0) return 0;
    double x = uniform() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
      x -= weights[i];
      if (x < 0.0) return i;
    }
    return weights.size() - 1;
  }

  /// Derive an independent child generator (for parallel workers).
  constexpr Rng fork() { return Rng{next_u64()}; }

 private:
  std::uint64_t state_;
};

}  // namespace qosnp
