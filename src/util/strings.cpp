#include "util/strings.hpp"

#include <cctype>
#include <sstream>
#include <iomanip>

namespace qosnp {

std::vector<std::string> split(std::string_view text, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == delim) {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view trim(std::string_view text) {
  std::size_t b = 0;
  std::size_t e = text.size();
  while (b < e && std::isspace(static_cast<unsigned char>(text[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1]))) --e;
  return text.substr(b, e - b);
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

bool parse_key_value(std::string_view line, std::string& key, std::string& value) {
  const std::size_t eq = line.find('=');
  if (eq == std::string_view::npos) return false;
  key = std::string(trim(line.substr(0, eq)));
  value = std::string(trim(line.substr(eq + 1)));
  return !key.empty();
}

std::string format_double(double v, int decimals) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(decimals) << v;
  return os.str();
}

}  // namespace qosnp
