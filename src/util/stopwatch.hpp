// Wall-clock stopwatch used by the benches and the examples' negotiation
// latency reporting.
#pragma once

#include <chrono>

namespace qosnp {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  double elapsed_seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double elapsed_ms() const { return elapsed_seconds() * 1e3; }
  double elapsed_us() const { return elapsed_seconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace qosnp
