// Money: exact fixed-point currency type used throughout the QoS negotiation
// procedure for cost profiles, cost tables and document cost computation
// (paper Sec. 7). Stored as signed 64-bit micro-dollars so that per-second
// tariffs (fractions of a cent) accumulate without rounding drift.
#pragma once

#include <cstdint>
#include <compare>
#include <iosfwd>
#include <string>

namespace qosnp {

class Money {
 public:
  constexpr Money() = default;

  /// Construct from whole dollars.
  static constexpr Money dollars(std::int64_t d) { return Money{d * kMicrosPerDollar}; }
  /// Construct from cents.
  static constexpr Money cents(std::int64_t c) { return Money{c * kMicrosPerCent}; }
  /// Construct from micro-dollars (1e-6 $), the native resolution.
  static constexpr Money micros(std::int64_t u) { return Money{u}; }
  /// Construct from a double amount of dollars (rounds to nearest micro).
  static Money from_double(double d);
  /// Parse "12.34" / "$12.34" / "-0.005"; returns zero on malformed input.
  static Money parse(const std::string& text);

  constexpr std::int64_t as_micros() const { return micros_; }
  constexpr std::int64_t whole_cents() const { return micros_ / kMicrosPerCent; }
  constexpr double as_dollars() const { return static_cast<double>(micros_) / kMicrosPerDollar; }
  constexpr bool is_zero() const { return micros_ == 0; }
  constexpr bool is_negative() const { return micros_ < 0; }

  /// Render as "$12.34" (two decimals) or "$12.3456" when sub-cent precision
  /// is present.
  std::string to_string() const;

  constexpr Money operator+(Money o) const { return Money{micros_ + o.micros_}; }
  constexpr Money operator-(Money o) const { return Money{micros_ - o.micros_}; }
  constexpr Money operator-() const { return Money{-micros_}; }
  constexpr Money& operator+=(Money o) { micros_ += o.micros_; return *this; }
  constexpr Money& operator-=(Money o) { micros_ -= o.micros_; return *this; }

  /// Scale by an integral factor (e.g. tariff x duration-in-seconds).
  constexpr Money operator*(std::int64_t k) const { return Money{micros_ * k}; }
  /// Scale by a real factor, rounding to nearest micro.
  Money scaled(double k) const;

  friend constexpr auto operator<=>(Money a, Money b) = default;

  static constexpr std::int64_t kMicrosPerDollar = 1'000'000;
  static constexpr std::int64_t kMicrosPerCent = 10'000;

 private:
  explicit constexpr Money(std::int64_t micros) : micros_(micros) {}
  std::int64_t micros_ = 0;
};

constexpr Money operator*(std::int64_t k, Money m) { return m * k; }

std::ostream& operator<<(std::ostream& os, Money m);

namespace money_literals {
constexpr Money operator""_usd(unsigned long long d) {
  return Money::dollars(static_cast<std::int64_t>(d));
}
constexpr Money operator""_cents(unsigned long long c) {
  return Money::cents(static_cast<std::int64_t>(c));
}
}  // namespace money_literals

}  // namespace qosnp
