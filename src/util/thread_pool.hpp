// Fixed-size worker pool with a blocking task queue plus a parallel_for
// helper. The offer classifier (paper Sec. 5) evaluates system offers in
// parallel: the offer space is the cartesian product of per-monomedia
// variants and grows multiplicatively with document richness.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace qosnp {

class ThreadPool {
 public:
  /// Spawn `threads` workers; 0 means hardware concurrency (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue a task; the returned future observes completion/exceptions.
  std::future<void> submit(std::function<void()> task);

  /// Block until every task submitted so far has completed.
  void wait_idle();

  /// Process-wide shared pool (lazily constructed).
  static ThreadPool& shared();

 private:
  void worker_loop();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::queue<std::packaged_task<void()>> queue_;
  std::vector<std::thread> workers_;
  std::size_t active_ = 0;
  bool stop_ = false;
};

/// Run fn(i) for i in [begin, end) across the pool, in contiguous chunks.
/// Blocks until all iterations complete. Falls back to serial execution for
/// tiny ranges where the dispatch overhead would dominate.
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn,
                  std::size_t min_parallel_size = 256);

}  // namespace qosnp
