// Shared configuration validation: every config struct that can be
// constructed with values that would corrupt arithmetic later (zero worker
// pools, zero cache shards, negative deadlines) funnels its checks through
// require_config so the failure mode is one uniform std::invalid_argument at
// construction time instead of a division by zero at first use.
#pragma once

#include <stdexcept>
#include <string>

namespace qosnp {

/// Throw std::invalid_argument("<type>: <what>") unless `ok` holds.
inline void require_config(bool ok, const std::string& type, const std::string& what) {
  if (!ok) throw std::invalid_argument(type + ": " + what);
}

}  // namespace qosnp
