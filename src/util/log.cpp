#include "util/log.hpp"

#include <iostream>
#include <utility>

namespace qosnp {

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

namespace {

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

std::string& tls_tag() {
  thread_local std::string tag;
  return tag;
}

}  // namespace

void set_log_tag(std::string tag) { tls_tag() = std::move(tag); }

const std::string& log_tag() { return tls_tag(); }

ScopedLogTag::ScopedLogTag(std::string tag) : previous_(std::move(tls_tag())) {
  tls_tag() = std::move(tag);
}

ScopedLogTag::~ScopedLogTag() { tls_tag() = std::move(previous_); }

void Logger::write(LogLevel level, const std::string& component, const std::string& message) {
  // Compose the whole line first so the locked section is one insertion:
  // concurrent workers can never interleave mid-line.
  std::string line;
  const std::string& tag = log_tag();
  line.reserve(component.size() + message.size() + tag.size() + 16);
  line += '[';
  line += level_name(level);
  line += "] ";
  if (!tag.empty()) {
    line += '(';
    line += tag;
    line += ") ";
  }
  line += component;
  line += ": ";
  line += message;
  line += '\n';
  std::lock_guard lk(mu_);
  std::clog << line;
}

}  // namespace qosnp
