// Minimal leveled logger. Negotiation and adaptation emit trace events the
// examples surface to the user (the role the 1996 prototype's information
// window played); benches run with logging off. Thread-safe: the level is
// atomic, every line is composed off-lock and emitted in a single write, and
// a thread-local tag (set by service workers to "w<worker>/r<request>")
// keeps interleaved worker output attributable.
#pragma once

#include <atomic>
#include <mutex>
#include <sstream>
#include <string>

namespace qosnp {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) { level_.store(level, std::memory_order_relaxed); }
  LogLevel level() const { return level_.load(std::memory_order_relaxed); }
  bool enabled(LogLevel level) const { return level >= this->level(); }

  void write(LogLevel level, const std::string& component, const std::string& message);

 private:
  Logger() = default;
  std::atomic<LogLevel> level_{LogLevel::kWarn};
  std::mutex mu_;
};

/// Thread-local tag stamped onto every line this thread logs (empty = no
/// tag). Service workers use "w<worker>/r<request>".
void set_log_tag(std::string tag);
const std::string& log_tag();

/// RAII tag: sets the calling thread's tag, restores the previous one.
class ScopedLogTag {
 public:
  explicit ScopedLogTag(std::string tag);
  ~ScopedLogTag();

  ScopedLogTag(const ScopedLogTag&) = delete;
  ScopedLogTag& operator=(const ScopedLogTag&) = delete;

 private:
  std::string previous_;
};

namespace detail {
inline void log_format(std::ostringstream&) {}
template <typename T, typename... Rest>
void log_format(std::ostringstream& os, const T& v, const Rest&... rest) {
  os << v;
  log_format(os, rest...);
}
}  // namespace detail

template <typename... Args>
void log_at(LogLevel level, const std::string& component, const Args&... args) {
  Logger& lg = Logger::instance();
  if (!lg.enabled(level)) return;
  std::ostringstream os;
  detail::log_format(os, args...);
  lg.write(level, component, os.str());
}

#define QOSNP_LOG_TRACE(component, ...) ::qosnp::log_at(::qosnp::LogLevel::kTrace, component, __VA_ARGS__)
#define QOSNP_LOG_DEBUG(component, ...) ::qosnp::log_at(::qosnp::LogLevel::kDebug, component, __VA_ARGS__)
#define QOSNP_LOG_INFO(component, ...) ::qosnp::log_at(::qosnp::LogLevel::kInfo, component, __VA_ARGS__)
#define QOSNP_LOG_WARN(component, ...) ::qosnp::log_at(::qosnp::LogLevel::kWarn, component, __VA_ARGS__)
#define QOSNP_LOG_ERROR(component, ...) ::qosnp::log_at(::qosnp::LogLevel::kError, component, __VA_ARGS__)

}  // namespace qosnp
