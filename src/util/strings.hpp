// Small string utilities shared by the profile (de)serialiser and the CLI
// profile tool.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace qosnp {

/// Split on a delimiter; empty fields are preserved.
std::vector<std::string> split(std::string_view text, char delim);

/// Strip leading/trailing ASCII whitespace.
std::string_view trim(std::string_view text);

/// Case-insensitive ASCII equality.
bool iequals(std::string_view a, std::string_view b);

/// "key = value" line parser; returns false if no '=' present.
bool parse_key_value(std::string_view line, std::string& key, std::string& value);

/// Render a double with fixed decimals (no locale surprises).
std::string format_double(double v, int decimals);

}  // namespace qosnp
