// Result<T, E>: lightweight expected-style return channel. Negotiation and
// admission-control paths are hot and failure is an ordinary outcome (a
// rejected reservation is not exceptional), so errors travel by value.
#pragma once

#include <cassert>
#include <ostream>
#include <string>
#include <utility>
#include <variant>

namespace qosnp {

template <typename E>
class Err {
 public:
  explicit Err(E error) : error_(std::move(error)) {}
  E& get() { return error_; }
  const E& get() const { return error_; }

 private:
  E error_;
};

template <typename E>
Err(E) -> Err<E>;
Err(const char*) -> Err<std::string>;

template <typename T, typename E = std::string>
class Result {
 public:
  Result(T value) : storage_(std::in_place_index<0>, std::move(value)) {}
  Result(Err<E> error) : storage_(std::in_place_index<1>, std::move(error.get())) {}

  bool ok() const { return storage_.index() == 0; }
  explicit operator bool() const { return ok(); }

  T& value() {
    assert(ok());
    return std::get<0>(storage_);
  }
  const T& value() const {
    assert(ok());
    return std::get<0>(storage_);
  }
  const E& error() const {
    assert(!ok());
    return std::get<1>(storage_);
  }

  T value_or(T fallback) const { return ok() ? std::get<0>(storage_) : std::move(fallback); }

 private:
  std::variant<T, E> storage_;
};

/// A refusal from an admission-control surface (media-server admission,
/// transport reservation, resource commitment). Carries, besides the
/// human-readable message, whether the refusal is *transient* — the resource
/// exists but cannot serve the request right now (capacity exhausted, server
/// momentarily down, injected fault), so a retry after backoff may succeed —
/// or *permanent* — the request can never be honoured as stated (unknown
/// server, no route, non-positive rate), so retrying is pointless. The
/// commitment walk (paper Step 5) uses the flag to retry only what is worth
/// retrying and to return FAILEDTRYLATER only when retries were truly
/// exhausted.
///
/// `component` names who refused — a server id ("server-a"), the transport
/// ("transport"), a multi-domain segment, or a fault decorator
/// ("fault:server-a") — so negotiation traces can attribute every failed
/// commit attempt end-to-end without parsing messages or side channels.
struct Refusal {
  std::string message;
  bool transient = true;
  std::string component;

  /// "component: message" — the rendering logs and problem lists use.
  std::string describe() const {
    return component.empty() ? message : component + ": " + message;
  }
};

inline std::ostream& operator<<(std::ostream& os, const Refusal& refusal) {
  return os << refusal.describe();
}

inline Err<Refusal> transient_refusal(std::string component, std::string message) {
  return Err(Refusal{std::move(message), /*transient=*/true, std::move(component)});
}

inline Err<Refusal> permanent_refusal(std::string component, std::string message) {
  return Err(Refusal{std::move(message), /*transient=*/false, std::move(component)});
}

}  // namespace qosnp
