#include "util/money.hpp"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <ostream>
#include <sstream>

namespace qosnp {

Money Money::from_double(double d) {
  return Money::micros(static_cast<std::int64_t>(std::llround(d * kMicrosPerDollar)));
}

Money Money::scaled(double k) const {
  return Money::micros(static_cast<std::int64_t>(std::llround(static_cast<double>(micros_) * k)));
}

Money Money::parse(const std::string& text) {
  std::size_t i = 0;
  while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) ++i;
  bool negative = false;
  if (i < text.size() && (text[i] == '-' || text[i] == '+')) {
    negative = text[i] == '-';
    ++i;
  }
  if (i < text.size() && text[i] == '$') ++i;
  std::int64_t whole = 0;
  bool any_digit = false;
  while (i < text.size() && std::isdigit(static_cast<unsigned char>(text[i]))) {
    whole = whole * 10 + (text[i] - '0');
    any_digit = true;
    ++i;
  }
  std::int64_t frac_micros = 0;
  if (i < text.size() && text[i] == '.') {
    ++i;
    std::int64_t scale = kMicrosPerDollar / 10;
    while (i < text.size() && std::isdigit(static_cast<unsigned char>(text[i]))) {
      frac_micros += (text[i] - '0') * scale;
      scale /= 10;
      any_digit = true;
      ++i;
    }
  }
  if (!any_digit) return Money{};
  std::int64_t total = whole * kMicrosPerDollar + frac_micros;
  return Money::micros(negative ? -total : total);
}

std::string Money::to_string() const {
  std::int64_t abs = micros_ < 0 ? -micros_ : micros_;
  std::int64_t whole = abs / kMicrosPerDollar;
  std::int64_t frac = abs % kMicrosPerDollar;
  std::ostringstream os;
  if (micros_ < 0) os << '-';
  os << '$' << whole << '.';
  // Two decimals normally; four or six when finer resolution is in play
  // (tariffs are sub-cent, so totals often are too).
  auto digits = [&os](std::int64_t value, int width) {
    std::int64_t divisor = 1;
    for (int i = 1; i < width; ++i) divisor *= 10;
    for (; divisor > 0; divisor /= 10) os << (value / divisor % 10);
  };
  if (frac % kMicrosPerCent == 0) {
    digits(frac / kMicrosPerCent, 2);
  } else if (frac % 100 == 0) {
    digits(frac / 100, 4);
  } else {
    digits(frac, 6);
  }
  return os.str();
}

std::ostream& operator<<(std::ostream& os, Money m) { return os << m.to_string(); }

}  // namespace qosnp
