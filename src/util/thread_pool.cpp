#include "util/thread_pool.hpp"

#include <algorithm>
#include <memory>

namespace qosnp {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  auto fut = packaged.get_future();
  {
    std::lock_guard lk(mu_);
    queue_.push(std::move(packaged));
  }
  cv_.notify_one();
  return fut;
}

void ThreadPool::wait_idle() {
  std::unique_lock lk(mu_);
  idle_cv_.wait(lk, [this] { return queue_.empty() && active_ == 0; });
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool;
  return pool;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock lk(mu_);
      cv_.wait(lk, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
      ++active_;
    }
    task();
    {
      std::lock_guard lk(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn,
                  std::size_t min_parallel_size) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  if (n < min_parallel_size || pool.size() == 1) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  const std::size_t chunks = std::min(n, pool.size() * 4);
  const std::size_t chunk = (n + chunks - 1) / chunks;
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = begin + c * chunk;
    if (lo >= end) break;
    const std::size_t hi = std::min(end, lo + chunk);
    futures.push_back(pool.submit([lo, hi, &fn] {
      for (std::size_t i = lo; i < hi; ++i) fn(i);
    }));
  }
  for (auto& f : futures) f.get();
}

}  // namespace qosnp
