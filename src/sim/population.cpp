#include "sim/population.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <limits>
#include <sstream>
#include <utility>

#include "util/log.hpp"
#include "util/validate.hpp"

namespace qosnp {

double DiurnalCurve::factor(double t_s) const {
  if (amplitude <= 0.0) return 1.0;
  constexpr double kTau = 6.283185307179586476925287;
  return 1.0 + amplitude * std::cos(kTau * (t_s - peak_at_s) / period_s);
}

std::vector<ClientClass> standard_population() {
  std::vector<ClientClass> classes;

  ClientClass mobile;
  mobile.name = "cheap-mobile";
  mobile.machine.name = "mobile";
  mobile.machine.screen = ScreenSpec{640, 360, ColorDepth::kGray};
  mobile.machine.decoders = {CodingFormat::kMPEG1, CodingFormat::kPCM, CodingFormat::kPlainText,
                             CodingFormat::kJPEG};
  mobile.machine.max_audio = AudioQuality::kRadio;
  mobile.profile = thrifty_user_profile();
  mobile.session_class = SessionClass::kBestEffort;
  mobile.arrival_rate_per_s = 0.5;
  mobile.mean_think_s = 3.0;
  mobile.abandon_rate_per_s = 1.0 / 20.0;  // impatient: mean 20s to walk away
  mobile.accept_degraded_p = 0.9;
  mobile.watch_fraction = 0.35;
  classes.push_back(std::move(mobile));

  ClientClass desktop;
  desktop.name = "standard-desktop";
  desktop.machine.name = "desktop";
  desktop.machine.screen = ScreenSpec{1280, 720, ColorDepth::kColor};
  desktop.machine.decoders = {CodingFormat::kMPEG1,     CodingFormat::kMPEG2,
                              CodingFormat::kMJPEG,     CodingFormat::kPCM,
                              CodingFormat::kADPCM,     CodingFormat::kMPEGAudio,
                              CodingFormat::kPlainText, CodingFormat::kJPEG,
                              CodingFormat::kGIF};
  desktop.machine.max_audio = AudioQuality::kCD;
  desktop.profile = typical_user_profile();
  desktop.session_class = SessionClass::kStandard;
  desktop.arrival_rate_per_s = 0.35;
  desktop.mean_think_s = 5.0;
  desktop.abandon_rate_per_s = 1.0 / 60.0;
  desktop.accept_degraded_p = 0.7;
  desktop.watch_fraction = 0.7;
  classes.push_back(std::move(desktop));

  ClientClass premium;
  premium.name = "premium";
  premium.machine.name = "premium";
  premium.machine.screen = ScreenSpec{1920, 1080, ColorDepth::kSuperColor};
  premium.machine.decoders = {CodingFormat::kMPEG1,     CodingFormat::kMPEG2,
                              CodingFormat::kMJPEG,     CodingFormat::kH261,
                              CodingFormat::kPCM,       CodingFormat::kADPCM,
                              CodingFormat::kMPEGAudio, CodingFormat::kPlainText,
                              CodingFormat::kHTML,      CodingFormat::kJPEG,
                              CodingFormat::kGIF,       CodingFormat::kTIFF};
  premium.machine.max_audio = AudioQuality::kCD;
  premium.profile = demanding_user_profile();
  premium.session_class = SessionClass::kPremium;
  premium.arrival_rate_per_s = 0.15;
  premium.mean_think_s = 8.0;
  premium.abandon_rate_per_s = 0.0;  // patient, but...
  premium.accept_degraded_p = 0.3;   // ...walks away from degraded offers
  premium.watch_fraction = 0.9;
  classes.push_back(std::move(premium));

  return classes;
}

void ClassCounts::add(const ClassCounts& other) {
  arrivals += other.arrivals;
  admitted += other.admitted;
  shed += other.shed;
  refused += other.refused;
  abandoned += other.abandoned;
  confirm_timeouts += other.confirm_timeouts;
  completed += other.completed;
  preempt_released += other.preempt_released;
  policy_preempted += other.policy_preempted;
  policy_degraded += other.policy_degraded;
  upgrades += other.upgrades;
  violations += other.violations;
  adaptations += other.adaptations;
  failed_adaptations += other.failed_adaptations;
  interruption_s += other.interruption_s;
}

ClassCounts PopulationMetrics::totals() const {
  ClassCounts total;
  for (const ClassCounts& c : by_class) total.add(c);
  return total;
}

bool PopulationMetrics::conserved() const {
  for (const ClassCounts& c : by_class) {
    if (!c.conserved()) return false;
  }
  return true;
}

std::string PopulationMetrics::signature() const {
  std::ostringstream os;
  os << std::setprecision(17);
  for (std::size_t i = 0; i < by_class.size(); ++i) {
    const ClassCounts& c = by_class[i];
    os << (i < class_names.size() ? class_names[i] : "?") << ": arrivals=" << c.arrivals
       << " admitted=" << c.admitted << " shed=" << c.shed << " refused=" << c.refused
       << " abandoned=" << c.abandoned << " confirm_timeouts=" << c.confirm_timeouts
       << " completed=" << c.completed << " preempt_released=" << c.preempt_released
       << " policy_preempted=" << c.policy_preempted
       << " policy_degraded=" << c.policy_degraded << " upgrades=" << c.upgrades
       << " violations=" << c.violations << " adaptations=" << c.adaptations
       << " failed_adaptations=" << c.failed_adaptations
       << " interruption_s=" << c.interruption_s << '\n';
  }
  return os.str();
}

double PopulationMetrics::shed_rate() const {
  const ClassCounts t = totals();
  return t.arrivals == 0 ? 0.0
                         : static_cast<double>(t.shed) / static_cast<double>(t.arrivals);
}

double PopulationMetrics::admission_rate() const {
  const ClassCounts t = totals();
  return t.arrivals == 0 ? 0.0
                         : static_cast<double>(t.admitted) / static_cast<double>(t.arrivals);
}

double PopulationMetrics::adaptation_success_rate() const {
  const ClassCounts t = totals();
  const std::uint64_t attempts = t.adaptations + t.failed_adaptations;
  return attempts == 0 ? 1.0
                       : static_cast<double>(t.adaptations) / static_cast<double>(attempts);
}

UserDraws draw_user(const ClientClass& cls, Rng& rng, std::span<const DocumentId> documents) {
  UserDraws draws;
  draws.document = documents[rng.below(documents.size())];
  draws.accept_degraded = rng.chance(cls.accept_degraded_p);
  draws.think_s = rng.exponential(1.0 / std::max(cls.mean_think_s, 1e-9));
  draws.abandon_s = cls.abandon_rate_per_s > 0.0
                        ? rng.exponential(cls.abandon_rate_per_s)
                        : std::numeric_limits<double>::infinity();
  return draws;
}

PopulationConfig PopulationConfig::validated(PopulationConfig config) {
  require_config(!config.classes.empty(), "PopulationConfig", "no client classes");
  require_config(config.duration_s > 0.0, "PopulationConfig", "non-positive duration");
  require_config(config.prune_interval_s >= 0.0, "PopulationConfig",
                 "negative prune interval");
  require_config(config.upgrade_scan_interval_s >= 0.0, "PopulationConfig",
                 "negative upgrade scan interval");
  for (const ClientClass& cls : config.classes) {
    const std::string who = "class '" + cls.name + "'";
    require_config(cls.arrival_rate_per_s >= 0.0, "PopulationConfig",
                   who + ": negative arrival rate");
    require_config(cls.mean_think_s > 0.0, "PopulationConfig",
                   who + ": non-positive mean think time");
    require_config(cls.abandon_rate_per_s >= 0.0, "PopulationConfig",
                   who + ": negative abandonment rate");
    require_config(cls.accept_degraded_p >= 0.0 && cls.accept_degraded_p <= 1.0,
                   "PopulationConfig", who + ": accept-degraded outside [0, 1]");
    require_config(cls.watch_fraction > 0.0 && cls.watch_fraction <= 1.0, "PopulationConfig",
                   who + ": watch fraction outside (0, 1]");
    require_config(cls.violation_rate_per_s >= 0.0, "PopulationConfig",
                   who + ": negative violation rate");
    require_config(cls.diurnal.amplitude >= 0.0 && cls.diurnal.amplitude <= 1.0,
                   "PopulationConfig", who + ": diurnal amplitude outside [0, 1]");
    require_config(cls.diurnal.period_s > 0.0, "PopulationConfig",
                   who + ": non-positive diurnal period");
  }
  return config;
}

Population::Population(PopulationConfig config, PopulationBackend& backend,
                       std::vector<DocumentId> documents)
    : config_(PopulationConfig::validated(std::move(config))),
      backend_(&backend),
      documents_(std::move(documents)) {
  require_config(!documents_.empty(), "Population", "no documents to request");
}

PopulationMetrics Population::run() {
  queue_ = EventQueue{};
  metrics_ = PopulationMetrics{};
  next_arrival_index_ = 0;
  metrics_.by_class.resize(config_.classes.size());
  arrival_rngs_.clear();
  class_of_session_.clear();
  housekeeping_pending_ = 0;
  // Policy-enabled backend: attribute victim/upgrade events to the owning
  // class. A released victim leaves the system outside the population's own
  // lifecycle events, so without this hook the conservation law
  // admitted == completed + preempt_released + policy_preempted would break.
  PolicyEngine* policy = backend_->policy();
  if (policy != nullptr) {
    policy->set_victim_observer([this](const VictimEvent& event) {
      auto it = class_of_session_.find(event.session);
      if (it == class_of_session_.end()) return;
      ClassCounts& counts = metrics_.by_class[it->second];
      if (event.action == VictimAction::kReleased) {
        counts.policy_preempted += 1;
        class_of_session_.erase(it);
      } else {
        counts.policy_degraded += 1;
      }
    });
    policy->set_upgrade_observer([this](const UpgradeEvent& event) {
      auto it = class_of_session_.find(event.session);
      if (it == class_of_session_.end()) return;
      metrics_.by_class[it->second].upgrades += 1;
    });
  }
  for (std::size_t i = 0; i < config_.classes.size(); ++i) {
    metrics_.class_names.push_back(config_.classes[i].name);
    // Per-class arrival stream, independent of the per-user streams.
    arrival_rngs_.emplace_back(config_.seed ^ (0xc2b2ae3d27d4eb4fULL * (i + 1)));
    schedule_next_arrival(i);
  }
  schedule_prune();
  if (policy != nullptr) schedule_upgrade_scan();
  queue_.run_all();
  if (policy != nullptr) {
    policy->set_victim_observer({});
    policy->set_upgrade_observer({});
  }
  return metrics_;
}

void Population::schedule_next_arrival(std::size_t class_index) {
  const ClientClass& cls = config_.classes[class_index];
  if (cls.arrival_rate_per_s <= 0.0) return;
  Rng& rng = arrival_rngs_[class_index];
  // Non-homogeneous Poisson by thinning: candidate gaps at the diurnal peak
  // rate, accepted with probability factor(t)/peak_factor.
  const double peak_rate = cls.arrival_rate_per_s * cls.diurnal.peak_factor();
  double t = queue_.now();
  while (true) {
    t += rng.exponential(peak_rate);
    if (t > config_.duration_s) return;
    if (rng.uniform() * cls.diurnal.peak_factor() <= cls.diurnal.factor(t)) break;
  }
  queue_.schedule_at(t, [this, class_index] {
    schedule_next_arrival(class_index);
    arrive(class_index);
  });
}

void Population::arrive(std::size_t class_index) {
  const ClientClass& cls = config_.classes[class_index];
  ClassCounts& counts = metrics_.by_class[class_index];
  counts.arrivals += 1;
  if (config_.arrival_observer) config_.arrival_observer(class_index, queue_.now());

  const std::uint64_t index = next_arrival_index_++;
  Rng rng = user_rng(config_.seed, index);
  const UserDraws draws = draw_user(cls, rng, documents_);

  NegotiationRequest request = make_negotiation_request(cls.machine, draws.document, cls.profile);
  request.id = index + 1;
  request.session_class = cls.session_class;
  request.accept_degraded = draws.accept_degraded;
  request.cache = config_.cache;
  const NegotiationResult result = backend_->negotiate(std::move(request), queue_.now());

  switch (result.verdict) {
    case NegotiationStatus::kFailedTryLater:
      counts.shed += 1;  // overload shedding or transient resource refusal
      return;
    case NegotiationStatus::kFailedWithoutOffer:
    case NegotiationStatus::kFailedWithLocalOffer:
      counts.refused += 1;
      return;
    case NegotiationStatus::kSucceeded:
    case NegotiationStatus::kFailedWithOffer:
      break;
  }
  if (result.session_id == 0) {
    // A degraded offer the user declined (or, defensively, an admission
    // failure): the backend already released the commitment.
    counts.refused += 1;
    return;
  }

  // Step 6: think time races the abandonment timer and the choicePeriod.
  const SessionId session = result.session_id;
  const double choice_s = cls.profile.mm.time.choice_period_s;
  if (draws.abandon_s < std::min(draws.think_s, choice_s)) {
    queue_.schedule_in(draws.abandon_s, [this, class_index, session] {
      backend_->sessions().reject(session);
      metrics_.by_class[class_index].abandoned += 1;
    });
    return;
  }
  if (draws.think_s > choice_s) {
    // The user answers too late: the choicePeriod expires and the resources
    // de-allocate at the deadline (paper Step 6).
    queue_.schedule_in(choice_s, [this, class_index, session] {
      backend_->sessions().reject(session);
      ClassCounts& late = metrics_.by_class[class_index];
      late.abandoned += 1;
      late.confirm_timeouts += 1;
    });
    return;
  }
  queue_.schedule_in(draws.think_s, [this, class_index, session, rng] {
    auto confirmed =
        backend_->sessions().confirm(session, backend_->session_now_s(queue_.now()));
    ClassCounts& c = metrics_.by_class[class_index];
    if (!confirmed.ok()) {
      c.abandoned += 1;
      c.confirm_timeouts += 1;
      return;
    }
    c.admitted += 1;
    class_of_session_[session] = class_index;
    begin_playout(class_index, session, rng);
  });
}

void Population::begin_playout(std::size_t class_index, SessionId session, Rng rng) {
  const ClientClass& cls = config_.classes[class_index];
  const auto view = backend_->sessions().snapshot(session);
  const double duration_s = view ? view->duration_s : 0.0;
  const double watched_s = std::max(1.0, duration_s * cls.watch_fraction);
  const double end_at = queue_.now() + watched_s;
  schedule_next_violation(class_index, session, rng, end_at);
  queue_.schedule_at(end_at, [this, class_index, session, watched_s] {
    finish_playout(class_index, session, watched_s);
  });
}

void Population::schedule_next_violation(std::size_t class_index, SessionId session, Rng rng,
                                         double end_at_s) {
  const ClientClass& cls = config_.classes[class_index];
  if (cls.violation_rate_per_s <= 0.0) return;
  const double at = queue_.now() + rng.exponential(cls.violation_rate_per_s);
  if (at >= end_at_s) return;
  queue_.schedule_at(at, [this, class_index, session, rng, end_at_s] {
    const auto view = backend_->sessions().snapshot(session);
    if (!view || view->state != SessionState::kPlaying) return;  // already released
    ClassCounts& counts = metrics_.by_class[class_index];
    counts.violations += 1;
    const AdaptationResult adapted =
        backend_->sessions().adapt(session, backend_->session_now_s(queue_.now()));
    if (adapted.adapted) {
      counts.adaptations += 1;
      counts.interruption_s += adapted.interruption_s;
      schedule_next_violation(class_index, session, rng, end_at_s);
    } else {
      // adapt() aborted the session: no alternate configuration could be
      // committed, the resources are already released.
      counts.failed_adaptations += 1;
      counts.preempt_released += 1;
      class_of_session_.erase(session);
    }
  });
}

void Population::finish_playout(std::size_t class_index, SessionId session, double watched_s) {
  SessionManager& sessions = backend_->sessions();
  const auto view = sessions.snapshot(session);
  if (!view || view->state != SessionState::kPlaying) {
    // Released earlier (failed adaptation, or preempted by the policy —
    // both already counted at the releasing event).
    class_of_session_.erase(session);
    return;
  }
  sessions.advance(session, watched_s);
  const auto done = sessions.snapshot(session);
  if (done && done->state == SessionState::kPlaying) sessions.complete(session);
  metrics_.by_class[class_index].completed += 1;
  class_of_session_.erase(session);
}

// Re-schedule condition for the periodic housekeeping events (prune and
// upgrade scan): keep going while arrivals continue or *lifecycle* events
// remain. Pending housekeeping events do not count as lifecycle work — two
// periodic events must not keep each other (or themselves) alive past the
// drain, or run() would never return.
bool Population::keep_housekeeping() const {
  return queue_.now() < config_.duration_s || queue_.pending() > housekeeping_pending_;
}

void Population::schedule_prune() {
  if (config_.prune_interval_s <= 0.0) return;
  housekeeping_pending_ += 1;
  queue_.schedule_in(config_.prune_interval_s, [this] {
    housekeeping_pending_ -= 1;
    backend_->sessions().prune_finished();
    if (keep_housekeeping()) schedule_prune();
  });
}

void Population::schedule_upgrade_scan() {
  if (config_.upgrade_scan_interval_s <= 0.0) return;
  housekeeping_pending_ += 1;
  queue_.schedule_in(config_.upgrade_scan_interval_s, [this] {
    housekeeping_pending_ -= 1;
    // On the event loop, not a wall-clock thread: same-seed runs promote
    // the same sessions at the same simulated instants.
    if (PolicyEngine* policy = backend_->policy()) policy->run_upgrades();
    if (keep_housekeeping()) schedule_upgrade_scan();
  });
}

}  // namespace qosnp
