// Experiment metrics: what the evaluation benches report. The paper's
// system-level claims are qualitative ("increases the availability of the
// system and the user satisfaction", Sec. 8); these counters quantify them.
#pragma once

#include <array>
#include <cstddef>
#include <string>

#include "core/offer.hpp"
#include "util/money.hpp"

namespace qosnp {

struct SimMetrics {
  // Negotiation outcomes.
  std::size_t arrivals = 0;
  std::array<std::size_t, 5> by_status{};  ///< indexed by NegotiationStatus

  // Session lifecycle.
  std::size_t confirmed = 0;
  std::size_t confirm_timeouts = 0;
  std::size_t rejected_by_user = 0;
  std::size_t completed = 0;
  std::size_t aborted = 0;

  // Adaptation.
  std::size_t violations = 0;
  std::size_t adaptations = 0;
  std::size_t failed_adaptations = 0;
  double total_interruption_s = 0.0;

  // Renegotiation (user-driven mid-session profile changes).
  std::size_t renegotiations = 0;
  std::size_t failed_renegotiations = 0;

  // Commitment effort (retry layer; nonzero retries need a RetryPolicy with
  // max_attempts > 1, nonzero transient_failures need faults or contention).
  std::size_t commit_attempts = 0;
  std::size_t commit_retries = 0;
  std::size_t transient_failures = 0;
  std::size_t released_on_failure = 0;

  // Playout quality sampling (block-level delivery of completed sessions).
  std::size_t playout_sampled_streams = 0;
  std::size_t playout_stalled_streams = 0;
  double playout_stall_s_total = 0.0;

  // Economics & performance.
  Money revenue;  ///< charges of completed sessions
  double negotiation_ms_total = 0.0;
  double utilization_sum = 0.0;  ///< mean link utilisation samples
  std::size_t utilization_samples = 0;

  // Service layer (concurrent negotiation front-end, src/service): queueing
  // and shedding figures of the worker-pool service. A shed request is a
  // FAILEDTRYLATER produced by overload rather than by a transient refusal,
  // so sheds are also counted into by_status.
  std::size_t service_requests = 0;   ///< requests submitted to the service
  std::size_t shed_queue_full = 0;    ///< rejected at the queue edge (backpressure)
  std::size_t shed_deadline = 0;      ///< expired while waiting in the queue
  std::size_t queue_high_water = 0;   ///< deepest request backlog observed
  double latency_p50_ms = 0.0;        ///< accept -> response percentiles
  double latency_p95_ms = 0.0;
  double latency_p99_ms = 0.0;
  double service_throughput_rps = 0.0;  ///< processed requests per wall second

  std::size_t count(NegotiationStatus status) const {
    return by_status[static_cast<std::size_t>(status)];
  }
  void record(NegotiationStatus status) {
    ++by_status[static_cast<std::size_t>(status)];
  }

  /// Blocking probability: requests turned away for lack of resources.
  double blocking_probability() const {
    return arrivals == 0
               ? 0.0
               : static_cast<double>(count(NegotiationStatus::kFailedTryLater)) /
                     static_cast<double>(arrivals);
  }
  /// Fraction of arrivals that were served with their full requirements.
  double satisfaction() const {
    return arrivals == 0 ? 0.0
                         : static_cast<double>(count(NegotiationStatus::kSucceeded)) /
                               static_cast<double>(arrivals);
  }
  /// Fraction of arrivals served at all (full or degraded offer).
  double service_rate() const {
    return arrivals == 0
               ? 0.0
               : static_cast<double>(count(NegotiationStatus::kSucceeded) +
                                     count(NegotiationStatus::kFailedWithOffer)) /
                     static_cast<double>(arrivals);
  }
  double adaptation_success_rate() const {
    const std::size_t attempts = adaptations + failed_adaptations;
    return attempts == 0 ? 1.0
                         : static_cast<double>(adaptations) / static_cast<double>(attempts);
  }
  double mean_negotiation_ms() const {
    return arrivals == 0 ? 0.0 : negotiation_ms_total / static_cast<double>(arrivals);
  }
  double mean_utilization() const {
    return utilization_samples == 0 ? 0.0
                                    : utilization_sum / static_cast<double>(utilization_samples);
  }
  /// Fraction of service submissions turned away by overload (queue full or
  /// deadline expired before a worker picked the request up).
  double shed_rate() const {
    return service_requests == 0
               ? 0.0
               : static_cast<double>(shed_queue_full + shed_deadline) /
                     static_cast<double>(service_requests);
  }
  /// Fraction of sampled streams whose block-level playout stalled.
  double playout_stall_rate() const {
    return playout_sampled_streams == 0
               ? 0.0
               : static_cast<double>(playout_stalled_streams) /
                     static_cast<double>(playout_sampled_streams);
  }

  std::string summary() const;
};

}  // namespace qosnp
