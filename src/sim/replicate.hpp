// Multi-seed replication of experiments: run the same configuration under
// several RNG seeds and report mean and sample standard deviation of the
// headline metrics, so the bench tables carry error bars instead of
// single-draw point estimates.
#pragma once

#include <cmath>
#include <vector>

#include "sim/experiment.hpp"

namespace qosnp {

struct ReplicatedStat {
  double mean = 0.0;
  double stddev = 0.0;

  static ReplicatedStat of(const std::vector<double>& samples) {
    ReplicatedStat stat;
    if (samples.empty()) return stat;
    double sum = 0.0;
    for (double s : samples) sum += s;
    stat.mean = sum / static_cast<double>(samples.size());
    if (samples.size() > 1) {
      double sq = 0.0;
      for (double s : samples) sq += (s - stat.mean) * (s - stat.mean);
      stat.stddev = std::sqrt(sq / static_cast<double>(samples.size() - 1));
    }
    return stat;
  }
};

struct ReplicatedResult {
  int replications = 0;
  ReplicatedStat service_rate;
  ReplicatedStat satisfaction;
  ReplicatedStat blocking;
  ReplicatedStat adaptation_success;
  ReplicatedStat completed;
  ReplicatedStat revenue_dollars;
  ReplicatedStat mean_utilization;
};

/// Run `base` under seeds base.seed, base.seed+1, ... and aggregate.
inline ReplicatedResult replicate(ExperimentConfig base, int replications) {
  ReplicatedResult result;
  result.replications = replications;
  std::vector<double> service;
  std::vector<double> satisfaction;
  std::vector<double> blocking;
  std::vector<double> adaptation;
  std::vector<double> completed;
  std::vector<double> revenue;
  std::vector<double> utilization;
  for (int r = 0; r < replications; ++r) {
    ExperimentConfig config = base;
    config.seed = base.seed + static_cast<std::uint64_t>(r);
    const SimMetrics m = run_experiment(config).metrics;
    service.push_back(m.service_rate());
    satisfaction.push_back(m.satisfaction());
    blocking.push_back(m.blocking_probability());
    adaptation.push_back(m.adaptation_success_rate());
    completed.push_back(static_cast<double>(m.completed));
    revenue.push_back(m.revenue.as_dollars());
    utilization.push_back(m.mean_utilization());
  }
  result.service_rate = ReplicatedStat::of(service);
  result.satisfaction = ReplicatedStat::of(satisfaction);
  result.blocking = ReplicatedStat::of(blocking);
  result.adaptation_success = ReplicatedStat::of(adaptation);
  result.completed = ReplicatedStat::of(completed);
  result.revenue_dollars = ReplicatedStat::of(revenue);
  result.mean_utilization = ReplicatedStat::of(utilization);
  return result;
}

}  // namespace qosnp
