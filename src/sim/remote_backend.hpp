// Population backend that negotiates across the wire: every simulated
// user's request is encoded, sent through a WireClient to a qosnpd server,
// negotiated by the remote NegotiationService, and the result decoded back
// — the population harness exercising the full network path (framing,
// socket I/O, event loop, completion marshalling) instead of an in-process
// call.
//
// Step 6 (confirm / abandon / timeout) stays on the server-side
// SessionManager: the v1 wire protocol carries negotiation, not session
// lifecycle, so this backend holds a reference to the server's service for
// session operations and its clock. In a loopback deployment (the tests and
// bench) that reference is simply the co-hosted service; a future protocol
// version can move the lifecycle onto the wire too.
//
// Like ServicePopulationBackend, one request is in flight at a time, so a
// same-seed population run is byte-identical to the in-process backends —
// tests/netio_test.cpp asserts exactly that.
#pragma once

#include <stdexcept>
#include <string>
#include <utility>

#include "netio/client.hpp"
#include "service/negotiation_service.hpp"
#include "sim/population.hpp"

namespace qosnp {

class WirePopulationBackend final : public PopulationBackend {
 public:
  /// `client` must be configured against `service`'s wire server. The
  /// service must run with auto_confirm=false (the population drives
  /// Step 6, exactly as with ServicePopulationBackend).
  WirePopulationBackend(WireClient& client, NegotiationService& service)
      : client_(&client), service_(&service) {
    if (service.config().auto_confirm) {
      throw std::invalid_argument(
          "WirePopulationBackend: the service must run with auto_confirm=false "
          "(the population drives Step 6 itself)");
    }
  }

  NegotiationResult negotiate(NegotiationRequest request, double /*sim_now_s*/) override {
    const std::uint64_t request_id = request.id;
    auto response = client_->submit(request);
    if (response.ok()) return std::move(response.value());
    // A wire-level failure is, to the user, exactly the paper's "try
    // later": the service was unreachable or shedding. Surface it as a
    // typed FAILEDTRYLATER result so the population's outcome accounting
    // stays truthful instead of crashing the simulation.
    NegotiationResult failed;
    failed.request_id = request_id;
    failed.verdict = NegotiationStatus::kFailedTryLater;
    failed.problems.push_back("wire: " + response.error().to_text());
    return failed;
  }

  SessionManager& sessions() override { return service_->sessions(); }

  /// Sessions live on the server's wall clock, as with the service backend.
  double session_now_s(double /*sim_now_s*/) const override { return service_->now_s(); }

  PolicyEngine* policy() override { return service_->config().policy; }

 private:
  WireClient* client_;
  NegotiationService* service_;
};

}  // namespace qosnp
