// Population backend that negotiates across the wire: every simulated
// user's request is encoded, sent through a WireClient to a qosnpd server,
// negotiated by the remote NegotiationService, and the result decoded back
// — the population harness exercising the full network path (framing,
// socket I/O, event loop, completion marshalling) instead of an in-process
// call.
//
// Step 6 (confirm / abandon / timeout) stays on the server-side
// SessionManager: the v1 wire protocol carries negotiation, not session
// lifecycle, so this backend holds a reference to the server's service for
// session operations and its clock. In a loopback deployment (the tests and
// bench) that reference is simply the co-hosted service; a future protocol
// version can move the lifecycle onto the wire too.
//
// Like ServicePopulationBackend, one request is in flight at a time, so a
// same-seed population run is byte-identical to the in-process backends —
// tests/netio_test.cpp asserts exactly that.
#pragma once

#include <stdexcept>
#include <utility>

#include "netio/client.hpp"
#include "netio/remote_client.hpp"
#include "service/negotiation_service.hpp"
#include "sim/population.hpp"

namespace qosnp {

/// Thin adapter over RemoteClient, which owns the wire-error-to-
/// FAILEDTRYLATER mapping; only the session reference and clock (still the
/// co-hosted server's — protocol v1 carries negotiation, not lifecycle)
/// are backend concerns.
class WirePopulationBackend final : public PopulationBackend {
 public:
  /// `client` must be configured against `service`'s wire server. The
  /// service must run with auto_confirm=false (the population drives
  /// Step 6, exactly as with ServicePopulationBackend).
  WirePopulationBackend(WireClient& client, NegotiationService& service)
      : client_(client), service_(&service) {
    if (service.config().auto_confirm) {
      throw std::invalid_argument(
          "WirePopulationBackend: the service must run with auto_confirm=false "
          "(the population drives Step 6 itself)");
    }
  }

  NegotiationResult negotiate(NegotiationRequest request, double /*sim_now_s*/) override {
    return client_.submit(std::move(request));
  }

  SessionManager& sessions() override { return service_->sessions(); }

  /// Sessions live on the server's wall clock, as with the service backend.
  double session_now_s(double /*sim_now_s*/) const override { return service_->now_s(); }

  PolicyEngine* policy() override { return service_->config().policy; }

 private:
  RemoteClient client_;
  NegotiationService* service_;
};

}  // namespace qosnp
