#include "sim/experiment.hpp"

#include <algorithm>
#include <memory>
#include <optional>
#include <sstream>

#include "baseline/negotiators.hpp"
#include "delivery/playout.hpp"
#include "fault/fault_injector.hpp"
#include "sim/event_queue.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

namespace qosnp {

std::string_view to_string(Strategy strategy) {
  switch (strategy) {
    case Strategy::kSmart: return "smart";
    case Strategy::kBasic: return "basic";
    case Strategy::kCostOnly: return "cost-only";
    case Strategy::kQoSOnly: return "qos-only";
  }
  return "?";
}

std::string SimMetrics::summary() const {
  std::ostringstream os;
  os << "arrivals=" << arrivals << " succeeded=" << count(NegotiationStatus::kSucceeded)
     << " with-offer=" << count(NegotiationStatus::kFailedWithOffer)
     << " try-later=" << count(NegotiationStatus::kFailedTryLater)
     << " without-offer=" << count(NegotiationStatus::kFailedWithoutOffer)
     << " local-offer=" << count(NegotiationStatus::kFailedWithLocalOffer)
     << " completed=" << completed << " aborted=" << aborted << " adaptations=" << adaptations
     << "/" << (adaptations + failed_adaptations) << " commit-attempts=" << commit_attempts
     << " retries=" << commit_retries << " transient-failures=" << transient_failures
     << " revenue=" << revenue.to_string();
  return os.str();
}

std::vector<UserProfile> standard_profile_mix() {
  return {demanding_user_profile(), typical_user_profile(), thrifty_user_profile()};
}

namespace {

ClientMachine make_client(int index, bool limited) {
  ClientMachine c;
  c.name = "client-" + std::to_string(index);
  c.node = c.name;
  if (limited) {
    c.screen = ScreenSpec{640, 480, ColorDepth::kGray};
    c.decoders = {CodingFormat::kMPEG1, CodingFormat::kPCM, CodingFormat::kPlainText,
                  CodingFormat::kJPEG};
    c.max_audio = AudioQuality::kRadio;
  } else {
    c.screen = ScreenSpec{1920, 1080, ColorDepth::kSuperColor};
    c.decoders = {CodingFormat::kMPEG1, CodingFormat::kMPEG2,     CodingFormat::kMJPEG,
                  CodingFormat::kH261,  CodingFormat::kPCM,       CodingFormat::kADPCM,
                  CodingFormat::kMPEGAudio, CodingFormat::kPlainText, CodingFormat::kHTML,
                  CodingFormat::kJPEG,  CodingFormat::kGIF,       CodingFormat::kTIFF};
    c.max_audio = AudioQuality::kCD;
  }
  return c;
}

}  // namespace

ExperimentResult run_experiment(const ExperimentConfig& config) {
  Rng rng(config.seed);
  SimMetrics metrics;

  // --- Assemble the system. ---------------------------------------------
  Catalog catalog;
  const auto docs = generate_corpus(config.corpus);
  for (const auto& doc : docs) {
    const auto problems = catalog.add(doc);
    if (!problems.empty()) {
      QOSNP_LOG_ERROR("experiment", "generated document rejected: ", problems.front());
    }
  }
  std::vector<DocumentId> doc_ids = catalog.list();

  const int num_servers = static_cast<int>(config.corpus.servers.size());
  Topology topology =
      config.dual_backbone
          ? Topology::dual_backbone(config.num_clients, num_servers, config.access_bps,
                                    config.backbone_bps)
          : Topology::dumbbell(config.num_clients, num_servers, config.access_bps,
                               config.backbone_bps);
  TransportService transport(std::move(topology));

  ServerFarm farm;
  for (int i = 0; i < num_servers; ++i) {
    MediaServerConfig server;
    server.id = config.corpus.servers[static_cast<std::size_t>(i)];
    server.node = "server-node-" + std::to_string(i);
    server.disk_bandwidth_bps = config.server_disk_bps;
    server.max_sessions = config.server_max_sessions;
    farm.add(std::move(server));
  }

  std::vector<ClientMachine> clients;
  clients.reserve(static_cast<std::size_t>(config.num_clients));
  for (int i = 0; i < config.num_clients; ++i) {
    const bool limited =
        rng.uniform() < config.limited_client_fraction;
    clients.push_back(make_client(i, limited));
  }

  // Optionally interpose the fault-injecting decorators; the negotiation
  // stack only ever sees the abstract provider surfaces.
  std::optional<FaultyServerFarm> faulty_farm;
  std::optional<FaultyTransportProvider> faulty_transport;
  ServerProvider* server_provider = &farm;
  TransportProvider* transport_provider = &transport;
  if (config.fault_injection) {
    faulty_farm.emplace(farm, config.faults);
    faulty_transport.emplace(transport, config.faults);
    server_provider = &*faulty_farm;
    transport_provider = &*faulty_transport;
  }

  NegotiationConfig nego_config;
  nego_config.enumeration = config.enumeration;
  nego_config.policy = config.policy;
  nego_config.retry = config.retry;
  auto qos_manager = std::make_unique<QoSManager>(catalog, *server_provider,
                                                  *transport_provider, CostModel{}, nego_config);

  std::unique_ptr<Negotiator> negotiator;
  switch (config.strategy) {
    case Strategy::kSmart:
      negotiator = std::make_unique<SmartNegotiator>(catalog, *server_provider,
                                                     *transport_provider, CostModel{},
                                                     nego_config);
      break;
    case Strategy::kBasic:
      negotiator = std::make_unique<BasicNegotiator>(catalog, *server_provider,
                                                     *transport_provider, CostModel{},
                                                     config.retry);
      break;
    case Strategy::kCostOnly:
      negotiator = std::make_unique<CostOnlyNegotiator>(catalog, *server_provider,
                                                        *transport_provider, CostModel{},
                                                        config.enumeration, config.retry);
      break;
    case Strategy::kQoSOnly:
      negotiator = std::make_unique<QoSOnlyNegotiator>(catalog, *server_provider,
                                                       *transport_provider, CostModel{},
                                                       config.enumeration, config.retry);
      break;
  }

  SessionManager sessions(*qos_manager, config.adaptation);
  EventQueue queue;

  const std::vector<UserProfile> profiles =
      config.profiles.empty() ? standard_profile_mix() : config.profiles;

  // --- Event handlers. ----------------------------------------------------
  auto handle_violation = [&](SessionId session_id) {
    metrics.violations += 1;
    if (!config.adaptation_enabled) {
      sessions.abort(session_id, "QoS violation (adaptation disabled)");
      metrics.aborted += 1;
      return;
    }
    AdaptationResult result = sessions.adapt(session_id, queue.now());
    if (result.adapted) {
      metrics.adaptations += 1;
      metrics.total_interruption_s += result.interruption_s;
    } else {
      metrics.failed_adaptations += 1;
      metrics.aborted += 1;
    }
  };

  std::function<void()> schedule_next_arrival = [&] {
    const double gap = rng.exponential(config.arrival_rate_per_s);
    const double at = queue.now() + gap;
    if (at > config.sim_duration_s) return;
    queue.schedule_at(at, [&] {
      schedule_next_arrival();
      metrics.arrivals += 1;
      const ClientMachine& client = clients[rng.below(clients.size())];
      const DocumentId& doc_id = doc_ids[rng.below(doc_ids.size())];
      const UserProfile& profile = profiles[rng.below(profiles.size())];

      Stopwatch watch;
      NegotiationResult outcome =
          negotiator->negotiate(make_negotiation_request(client, doc_id, profile));
      metrics.negotiation_ms_total += watch.elapsed_ms();
      metrics.record(outcome.verdict);
      metrics.commit_attempts += static_cast<std::size_t>(outcome.commit_stats.attempts);
      metrics.commit_retries += static_cast<std::size_t>(outcome.commit_stats.retries);
      metrics.transient_failures +=
          static_cast<std::size_t>(outcome.commit_stats.transient_failures);
      metrics.released_on_failure +=
          static_cast<std::size_t>(outcome.commit_stats.released_on_failure);

      if (!outcome.has_commitment()) return;

      if (config.sample_playout) {
        // Block-level quality check of the committed configuration: each
        // guaranteed stream is played through its reserved rate (capped at
        // two minutes of content to bound the sampling cost).
        const SystemOffer& committed = outcome.offers.offers[outcome.committed_index];
        for (const OfferComponent& c : committed.components) {
          if (c.requirements.guarantee != GuaranteeClass::kGuaranteed) continue;
          DeliveryConfig delivery;
          delivery.bottleneck_bps = c.requirements.max_bit_rate_bps;
          delivery.jitter_ms = c.requirements.jitter_ms;
          delivery.loss_rate = c.requirements.loss_rate;
          delivery.seed = rng.next_u64();
          const double sample_s = std::min(120.0, c.monomedia->duration_s);
          const PlayoutReport report = simulate_playout(*c.variant, sample_s, delivery);
          metrics.playout_sampled_streams += 1;
          if (!report.clean()) metrics.playout_stalled_streams += 1;
          metrics.playout_stall_s_total += report.total_stall_s;
        }
      }

      const bool accept =
          outcome.verdict == NegotiationStatus::kSucceeded
              ? rng.chance(config.confirm_probability)
              : rng.chance(config.confirm_probability * config.accept_degraded_probability);
      auto opened = sessions.open(client, profile, std::move(outcome), queue.now());
      if (!opened.ok()) return;
      const SessionId session_id = opened.value();

      queue.schedule_in(config.confirm_delay_s, [&, session_id, accept] {
        if (!accept) {
          if (sessions.reject(session_id)) metrics.rejected_by_user += 1;
          return;
        }
        auto confirmed = sessions.confirm(session_id, queue.now());
        if (!confirmed.ok()) {
          metrics.confirm_timeouts += 1;
          return;
        }
        metrics.confirmed += 1;
        const auto view = sessions.snapshot(session_id);
        const double duration = view ? view->duration_s : 0.0;
        const double watched =
            std::max(1.0, duration * std::clamp(config.watch_fraction, 0.01, 1.0));
        queue.schedule_in(watched, [&, session_id, watched] {
          auto v = sessions.snapshot(session_id);
          if (!v || v->state != SessionState::kPlaying) return;  // adapted away or aborted
          sessions.advance(session_id, watched);
          auto done = sessions.snapshot(session_id);
          if (done && done->state == SessionState::kPlaying) sessions.complete(session_id);
          metrics.completed += 1;
          metrics.revenue += done ? done->stats.charged : Money{};
        });
      });
    });
  };
  schedule_next_arrival();

  // Congestion episodes on random links. (The recursive std::functions must
  // outlive the event queue's run, hence function scope.)
  std::function<void()> schedule_congestion;
  std::function<void()> schedule_failure;
  if (config.congestion_rate_per_s > 0.0) {
    schedule_congestion = [&] {
      const double at = queue.now() + rng.exponential(config.congestion_rate_per_s);
      if (at > config.sim_duration_s) return;
      queue.schedule_at(at, [&] {
        schedule_congestion();
        const std::size_t link = rng.below(transport.topology().link_count());
        const auto victims = transport.degrade_link(link, config.congestion_severity);
        for (FlowId flow : victims) {
          for (SessionId sid : sessions.sessions_using_flow(flow)) handle_violation(sid);
        }
        queue.schedule_in(config.congestion_duration_s, [&, link] {
          transport.restore_link(link);
        });
      });
    };
    schedule_congestion();
  }

  // Server failures.
  if (config.server_failure_rate_per_s > 0.0) {
    schedule_failure = [&] {
      const double at = queue.now() + rng.exponential(config.server_failure_rate_per_s);
      if (at > config.sim_duration_s) return;
      queue.schedule_at(at, [&] {
        schedule_failure();
        const ServerId victim =
            config.corpus.servers[rng.below(config.corpus.servers.size())];
        MediaServer* server = farm.find(victim);
        if (server == nullptr || server->failed()) return;
        const auto affected = sessions.sessions_on_server(victim);
        server->fail();
        for (SessionId sid : affected) handle_violation(sid);
        queue.schedule_in(config.server_repair_s, [&, victim] {
          if (MediaServer* s = farm.find(victim)) s->recover();
        });
      });
    };
    schedule_failure();
  }

  // User-driven renegotiations.
  std::function<void()> schedule_renegotiation;
  if (config.renegotiation_rate_per_s > 0.0) {
    schedule_renegotiation = [&] {
      const double at = queue.now() + rng.exponential(config.renegotiation_rate_per_s);
      if (at > config.sim_duration_s) return;
      queue.schedule_at(at, [&] {
        schedule_renegotiation();
        const auto playing = sessions.playing_sessions();
        if (playing.empty()) return;
        const SessionId id = playing[rng.below(playing.size())];
        const UserProfile& profile = profiles[rng.below(profiles.size())];
        const RenegotiationResult result = sessions.renegotiate(id, profile, queue.now());
        if (result.switched) {
          metrics.renegotiations += 1;
        } else {
          metrics.failed_renegotiations += 1;
        }
      });
    };
    schedule_renegotiation();
  }

  // Utilisation sampling.
  std::function<void()> sample_utilization = [&] {
    if (queue.now() >= config.sim_duration_s) return;
    queue.schedule_in(25.0, [&] {
      metrics.utilization_sum += transport.mean_utilization();
      metrics.utilization_samples += 1;
      sample_utilization();
    });
  };
  sample_utilization();

  queue.run_all();

  ExperimentResult result;
  result.metrics = metrics;
  result.duration_s = queue.now();
  result.strategy = std::string(to_string(config.strategy));
  return result;
}

}  // namespace qosnp
