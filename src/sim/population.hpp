// Population-scale session-lifecycle simulation (ROADMAP item 2): instead
// of uniform open/closed-loop request firing, a *population* of client
// classes — each with its own Poisson arrival process, diurnal load-curve
// modulation, exponential think and abandonment times, hardware template and
// user profile — drives the complete paper lifecycle per simulated user:
//
//   negotiate (Steps 1-5)  ->  confirm within choicePeriod (Step 6)
//     or abandon / time out  ->  playout  ->  optional mid-stream QoS
//     violation -> adaptation down the remaining offer list  ->  release
//
// over src/sim's discrete-event queue. Every arrival ends in exactly one
// terminal state (admitted, shed, refused, abandoned) and every admitted
// session ends released (completed or preempt-released) — the conservation
// laws the population_test suite and bench_e18_population check on every
// replicate.
//
// Reproducibility: all per-user draws come from an RNG seeded purely by
// (seed, arrival index) and all per-class arrival draws from an RNG seeded
// by (seed, class index), so two same-seed runs produce byte-identical
// outcome counts (PopulationMetrics::signature()) regardless of wall-clock
// timing — including when driven through the concurrent NegotiationService,
// because the event loop holds at most one request in flight.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include <unordered_map>

#include "client/client_machine.hpp"
#include "core/negotiation_request.hpp"
#include "core/negotiation_result.hpp"
#include "policy/local_client.hpp"
#include "policy/preemption.hpp"
#include "profile/profiles.hpp"
#include "session/session.hpp"
#include "sim/event_queue.hpp"
#include "util/rng.hpp"

namespace qosnp {

/// Raised-cosine day profile modulating a class's arrival rate:
/// factor(t) = 1 + amplitude * cos(2*pi*(t - peak_at_s)/period_s), so the
/// instantaneous rate swings between (1-amplitude) and (1+amplitude) times
/// the base rate with its maximum at peak_at_s. amplitude 0 = flat load.
struct DiurnalCurve {
  double period_s = 86'400.0;
  double amplitude = 0.0;  ///< in [0, 1]
  double peak_at_s = 0.0;  ///< time of the daily peak

  double factor(double t_s) const;
  double peak_factor() const { return 1.0 + amplitude; }
};

/// One class of the simulated population: who these users are (machine,
/// profile) and how they behave (arrival, patience, tolerance).
struct ClientClass {
  std::string name = "standard";
  /// Class hardware template; `machine.node` must name a client node of the
  /// topology the system under test runs on.
  ClientMachine machine;
  UserProfile profile;
  /// Admission class stamped on every request this class submits — who wins
  /// under congestion when the backend runs a preemption policy.
  SessionClass session_class = SessionClass::kStandard;

  /// Base Poisson arrival rate, modulated by `diurnal`.
  double arrival_rate_per_s = 0.1;
  DiurnalCurve diurnal;

  /// Mean of the exponential think time between the offer arriving and the
  /// user's Step-6 confirmation.
  double mean_think_s = 5.0;
  /// Rate of the exponential abandonment timer racing the confirmation
  /// (the user walks away mid-choicePeriod). 0 = never abandons early.
  double abandon_rate_per_s = 0.0;
  /// Probability the user keeps a degraded (FAILEDWITHOFFER) offer.
  double accept_degraded_p = 1.0;
  /// Fraction of the document duration actually watched.
  double watch_fraction = 1.0;
  /// Poisson rate of mid-stream QoS violations while the session plays;
  /// each violation triggers the adaptation procedure.
  double violation_rate_per_s = 0.0;
};

/// The reference population of ROADMAP item 2: cheap-mobile (limited
/// hardware, thrifty profile, impatient), standard-desktop (typical), and
/// premium (demanding profile, full decoder set, walks away from degraded
/// offers). `machine.node` is left empty — attach each class to a topology
/// client node before running.
std::vector<ClientClass> standard_population();

/// Per-class outcome accounting. Terminal states partition the arrivals:
///   arrivals == admitted + shed + refused + abandoned
/// and the admitted sessions partition into the released states:
///   admitted == completed + preempt_released + policy_preempted
/// (preempt_released is "our own adaptation walk found no alternate offer";
/// policy_preempted is "a higher-class request took our resources").
struct ClassCounts {
  std::uint64_t arrivals = 0;

  std::uint64_t admitted = 0;   ///< confirmed within choicePeriod, played
  std::uint64_t shed = 0;       ///< FAILEDTRYLATER (overload or transient refusal)
  std::uint64_t refused = 0;    ///< no usable offer, or degraded offer declined
  std::uint64_t abandoned = 0;  ///< walked away (or timed out) during choicePeriod

  std::uint64_t confirm_timeouts = 0;  ///< subset of abandoned: choicePeriod expired

  std::uint64_t completed = 0;         ///< played to the end of the watch window
  std::uint64_t preempt_released = 0;  ///< released mid-stream (adaptation failed)
  std::uint64_t policy_preempted = 0;  ///< released mid-stream by the preemption policy

  std::uint64_t policy_degraded = 0;  ///< forced down the offer list (still played)
  std::uint64_t upgrades = 0;         ///< promoted to a better offer by the scanner

  std::uint64_t violations = 0;
  std::uint64_t adaptations = 0;
  std::uint64_t failed_adaptations = 0;
  double interruption_s = 0.0;  ///< summed adaptation transition time

  std::uint64_t released() const { return completed + preempt_released + policy_preempted; }
  bool conserved() const {
    return arrivals == admitted + shed + refused + abandoned && admitted == released() &&
           confirm_timeouts <= abandoned && violations == adaptations + failed_adaptations;
  }
  void add(const ClassCounts& other);
};

struct PopulationMetrics {
  std::vector<std::string> class_names;  ///< parallel to by_class
  std::vector<ClassCounts> by_class;

  ClassCounts totals() const;
  /// Every class conserved (see ClassCounts::conserved).
  bool conserved() const;
  /// Exhaustive textual image of the per-class outcome counts; two same-seed
  /// runs must produce byte-identical signatures.
  std::string signature() const;

  double shed_rate() const;
  double admission_rate() const;
  double adaptation_success_rate() const;
};

/// How the population drives negotiation and admission. Implementations run
/// Steps 1-5 and, on a kept offer, open the session pending confirmation
/// (Step 6 stays with the population: confirm, abandon, or time out).
class PopulationBackend {
 public:
  virtual ~PopulationBackend() = default;

  /// Negotiate one request. When an offer was committed and kept (SUCCEEDED,
  /// or FAILEDWITHOFFER with request.accept_degraded), the result carries the
  /// id of a session opened pending confirmation; a declined degraded offer
  /// is released before returning. The returned result is stripped of the
  /// offer list and commitment — they belong to the opened session.
  virtual NegotiationResult negotiate(NegotiationRequest request, double sim_now_s) = 0;

  virtual SessionManager& sessions() = 0;

  /// Timestamp for SessionManager calls: the backend's session time base may
  /// differ from the simulation clock (the service opens sessions against
  /// its own wall clock).
  virtual double session_now_s(double sim_now_s) const { return sim_now_s; }

  /// The preemption/upgrade engine negotiations run through, when the
  /// backend is policy-enabled. The population registers its victim/upgrade
  /// observers here (per-class conservation accounting) and drives periodic
  /// upgrade scans on the simulation clock. nullptr = class-blind backend.
  virtual PolicyEngine* policy() { return nullptr; }
};

/// Direct in-process backend: a thin adapter over LocalClient (which owns
/// the negotiate + Step-6 admission glue), with the simulation clock as the
/// session time base. Single-threaded and the fastest way to push millions
/// of simulated users through the stack.
class ManagerPopulationBackend final : public PopulationBackend {
 public:
  ManagerPopulationBackend(QoSManager& manager, SessionManager& sessions)
      : client_(manager, sessions) {}

  /// Observe every raw NegotiationResult as produced by the manager, before
  /// admission strips the offers/commitment — the hook the differential
  /// suite uses to compare against direct QoSManager::negotiate calls.
  void set_result_observer(std::function<void(const NegotiationResult&)> observer) {
    client_.set_result_observer(std::move(observer));
  }

  /// Route negotiations through a preemption/upgrade engine (which must wrap
  /// the same manager/sessions pair). nullptr restores the direct path.
  void set_policy(PolicyEngine* policy) { client_.set_policy(policy); }

  NegotiationResult negotiate(NegotiationRequest request, double sim_now_s) override {
    return client_.submit_at(std::move(request), sim_now_s);
  }
  SessionManager& sessions() override { return client_.sessions(); }
  PolicyEngine* policy() override { return client_.policy(); }

 private:
  LocalClient client_;
};

/// The per-user random draws, consumed from the user's RNG in this fixed,
/// documented order: document, accept-degraded stance, think time,
/// abandonment time. The RNG is left positioned for the user's mid-stream
/// violation stream, so a caller holding (seed, arrival index) can replay
/// any user's entire behaviour exactly.
struct UserDraws {
  DocumentId document;
  bool accept_degraded = true;
  double think_s = 0.0;
  double abandon_s = 0.0;  ///< +infinity when the class never abandons early
};

UserDraws draw_user(const ClientClass& cls, Rng& rng, std::span<const DocumentId> documents);

/// The per-user RNG stream: same (seed, arrival index) => same draws, no
/// matter which class the arrival belongs to or what happened before it.
inline Rng user_rng(std::uint64_t seed, std::uint64_t arrival_index) {
  return Rng(seed + arrival_index * 0x9e3779b97f4a7c15ULL);
}

struct PopulationConfig {
  std::vector<ClientClass> classes;
  /// Arrivals stop at this simulation time; every lifecycle already started
  /// still runs to its terminal state before run() returns.
  double duration_s = 1'000.0;
  std::uint64_t seed = 1;
  /// Plan-cache policy stamped on every request.
  CacheUse cache = CacheUse::kDefault;
  /// Drop finished sessions from the SessionManager table every this many
  /// simulated seconds, keeping memory proportional to the *live* population
  /// instead of the total one. 0 disables pruning.
  double prune_interval_s = 50.0;
  /// Run PolicyEngine::run_upgrades every this many simulated seconds (on
  /// the deterministic event loop, not a wall-clock thread). 0 disables
  /// scanning; requires a policy-enabled backend to have any effect.
  double upgrade_scan_interval_s = 0.0;
  /// Optional arrival hook (class index, simulation time) — load-curve
  /// histograms and the like.
  std::function<void(std::size_t, double)> arrival_observer;

  /// Throws std::invalid_argument when unusable (no classes, negative rates
  /// or durations, diurnal amplitude outside [0, 1], probabilities outside
  /// [0, 1]).
  static PopulationConfig validated(PopulationConfig config);
};

/// One population replicate: seeds the arrival processes, runs every
/// lifecycle to its terminal state through the backend, and reports per-class
/// outcome counts. Constructing validates the config (throws
/// std::invalid_argument; documents must be non-empty).
class Population {
 public:
  Population(PopulationConfig config, PopulationBackend& backend,
             std::vector<DocumentId> documents);

  /// Run the replicate to completion. Each call is an independent replicate
  /// of the same configuration (fresh clock, fresh arrival processes) —
  /// though against whatever state the backend's system is in by then.
  PopulationMetrics run();

 private:
  void schedule_next_arrival(std::size_t class_index);
  void arrive(std::size_t class_index);
  void begin_playout(std::size_t class_index, SessionId session, Rng rng);
  void schedule_next_violation(std::size_t class_index, SessionId session, Rng rng,
                               double end_at_s);
  void finish_playout(std::size_t class_index, SessionId session, double watched_s);
  void schedule_prune();
  void schedule_upgrade_scan();
  bool keep_housekeeping() const;

  PopulationConfig config_;
  PopulationBackend* backend_;
  std::vector<DocumentId> documents_;

  // Per-run state, reset at the top of run().
  EventQueue queue_;
  PopulationMetrics metrics_;
  std::vector<Rng> arrival_rngs_;  ///< one per class
  std::uint64_t next_arrival_index_ = 0;
  /// Periodic housekeeping events (prune, upgrade scan) currently scheduled;
  /// they must not count as pending work for each other's re-schedule check.
  std::size_t housekeeping_pending_ = 0;
  /// Class index of every session currently playing, maintained so policy
  /// victim/upgrade events (which arrive by session id, possibly after the
  /// session was pruned) can be attributed to the right ClassCounts row.
  std::unordered_map<SessionId, std::size_t> class_of_session_;
};

}  // namespace qosnp
