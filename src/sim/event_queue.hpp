// Discrete-event simulation core: a clock plus a time-ordered event queue.
// Events scheduled at equal times fire in scheduling order (a stable
// sequence number breaks ties), which keeps every experiment run exactly
// reproducible for a given seed.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace qosnp {

class EventQueue {
 public:
  using Handler = std::function<void()>;

  double now() const { return now_; }
  bool empty() const { return heap_.empty(); }
  std::size_t pending() const { return heap_.size(); }

  /// Schedule `handler` at absolute time `at` (clamped to now()).
  void schedule_at(double at, Handler handler) {
    if (at < now_) at = now_;
    heap_.push(Event{at, next_seq_++, std::move(handler)});
  }
  /// Schedule `handler` `delay` seconds from now.
  void schedule_in(double delay, Handler handler) {
    schedule_at(now_ + (delay > 0 ? delay : 0), std::move(handler));
  }

  /// Run the earliest event; returns false when the queue is empty.
  bool step() {
    if (heap_.empty()) return false;
    Event ev = heap_.top();
    heap_.pop();
    now_ = ev.at;
    ev.handler();
    return true;
  }

  /// Run events until the queue drains or the clock passes `deadline`.
  void run_until(double deadline) {
    while (!heap_.empty() && heap_.top().at <= deadline) step();
    if (now_ < deadline) now_ = deadline;
  }

  void run_all() {
    while (step()) {
    }
  }

 private:
  struct Event {
    double at;
    std::uint64_t seq;
    Handler handler;

    bool operator>(const Event& o) const {
      if (at != o.at) return at > o.at;
      return seq > o.seq;
    }
  };
  std::priority_queue<Event, std::vector<Event>, std::greater<>> heap_;
  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace qosnp
