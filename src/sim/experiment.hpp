// Experiment driver: assembles the full simulated news-on-demand system —
// synthetic corpus + catalog, dumbbell network, media-server farm, client
// pool, a negotiator (smart or a baseline), session management — and runs a
// Poisson session workload with optional congestion / server-failure
// injection through the discrete-event engine. Every bench of E6-E10 is a
// parameter sweep over this driver.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/classify.hpp"
#include "core/enumerate.hpp"
#include "document/corpus.hpp"
#include "fault/fault_plan.hpp"
#include "session/session.hpp"
#include "sim/metrics.hpp"

namespace qosnp {

enum class Strategy { kSmart, kBasic, kCostOnly, kQoSOnly };

std::string_view to_string(Strategy strategy);

struct ExperimentConfig {
  CorpusConfig corpus;

  // Infrastructure.
  int num_clients = 16;
  std::int64_t access_bps = 20'000'000;
  std::int64_t backbone_bps = 150'000'000;
  /// Use the dual-backbone topology (a standby path the transport can
  /// route flows onto when the primary backbone is full or congested).
  bool dual_backbone = false;
  std::int64_t server_disk_bps = 120'000'000;
  int server_max_sessions = 64;

  /// Fraction of clients with a limited decoder set / modest screen (these
  /// clients exercise steps 1-2 failures).
  double limited_client_fraction = 0.0;

  // Workload.
  double arrival_rate_per_s = 0.1;  ///< Poisson session arrivals
  double sim_duration_s = 2'000.0;
  double confirm_delay_s = 2.0;       ///< user thinking time before OK
  double confirm_probability = 1.0;   ///< chance the user accepts the offer
  double accept_degraded_probability = 1.0;  ///< accept a FAILEDWITHOFFER offer
  /// Fraction of the document duration actually watched.
  double watch_fraction = 1.0;

  // Strategy under test.
  Strategy strategy = Strategy::kSmart;
  /// Offer-space settings (enumeration strategy, cap, pruning) threaded to
  /// the negotiator under test — lets experiments compare lazy best-first
  /// against the eager oracle on identical workloads.
  EnumerationConfig enumeration;
  ClassificationPolicy policy;
  AdaptationPolicy adaptation;
  bool adaptation_enabled = true;
  /// Commitment retry policy (default: single attempt, no retries).
  RetryPolicy retry;

  /// Fault injection: wrap the farm and the transport in the decorators of
  /// src/fault, driven by `faults` (seeded there, independently of `seed`).
  bool fault_injection = false;
  FaultPlan faults;

  /// User-driven renegotiations: Poisson events each picking one playing
  /// session and renegotiating it to a random profile from the mix.
  double renegotiation_rate_per_s = 0.0;

  /// Sample block-level playout quality (delivery module) of every
  /// committed guaranteed stream at admission: did the stream stall at its
  /// reserved rate? Adds SimMetrics::playout_* figures.
  bool sample_playout = false;

  // Degradation injection.
  double congestion_rate_per_s = 0.0;  ///< Poisson congestion episodes
  double congestion_duration_s = 60.0;
  double congestion_severity = 0.5;  ///< fraction of link capacity lost
  double server_failure_rate_per_s = 0.0;
  double server_repair_s = 120.0;

  /// Profiles arriving users pick from (uniformly); empty = a built-in mix
  /// of demanding / typical / thrifty profiles.
  std::vector<UserProfile> profiles;

  std::uint64_t seed = 1;
};

/// The default profile mix: demanding (high QoS, high budget), typical
/// (TV quality, medium budget), thrifty (accepts degraded QoS, low budget).
std::vector<UserProfile> standard_profile_mix();

struct ExperimentResult {
  SimMetrics metrics;
  double duration_s = 0.0;
  std::string strategy;
};

ExperimentResult run_experiment(const ExperimentConfig& config);

}  // namespace qosnp
