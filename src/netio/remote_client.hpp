// RemoteClient: NegotiationClient across the wire. Wraps a WireClient and
// absorbs the wire-error glue every remote caller used to repeat: a
// wire-level failure is, to the user, exactly the paper's "try later" — the
// service was unreachable, shedding, or the caller's own deadline expired —
// so it surfaces as a typed FAILEDTRYLATER result whose problem string
// carries the typed WireError (overloaded vs deadline-exceeded vs protocol
// error stay distinguishable).
//
// A WireClient is not thread-safe, and neither is this adapter: one
// RemoteClient per submitting thread, the way a real client process would.
// submit_async resolves inline on the calling thread (the wire round-trip
// is blocking in protocol v1).
#pragma once

#include <string>
#include <utility>

#include "core/negotiation_client.hpp"
#include "netio/client.hpp"
#include "obs/metrics.hpp"

namespace qosnp {

class RemoteClient final : public NegotiationClient {
 public:
  explicit RemoteClient(WireClient& client) : client_(&client) {}

  NegotiationResult submit(NegotiationRequest request) override {
    const std::uint64_t request_id = request.id;
    auto response = client_->submit(request);
    if (response.ok()) {
      metrics_
          .counter("qosnp_client_responses_total", {{"outcome", "result"}},
                   "RemoteClient wire round-trips, by outcome")
          .inc();
      return std::move(response.value());
    }
    metrics_
        .counter("qosnp_client_responses_total",
                 {{"outcome", std::string(to_string(response.error().code))}},
                 "RemoteClient wire round-trips, by outcome")
        .inc();
    NegotiationResult failed;
    failed.request_id = request_id;
    failed.verdict = NegotiationStatus::kFailedTryLater;
    failed.problems.push_back("wire: " + response.error().to_text());
    return failed;
  }

  std::string drain_metrics() const override { return metrics_.expose(); }

  WireClient& wire() { return *client_; }

 private:
  WireClient* client_;
  MetricsRegistry metrics_;
};

}  // namespace qosnp
