// WireClient: the blocking client library of the qosnp wire protocol. One
// client owns one TCP connection to a qosnpd server and exposes the
// request/response cycle in three grains:
//
//   submit(request)          — send + wait for the matching RESULT;
//   send(request) -> seq     — fire a pipelined request;
//   await(seq)               — collect one pipelined response (responses
//                              arriving out of order are parked until their
//                              seq is asked for).
//
// Every failure is a typed WireError (connect exhaustion, socket errors,
// deadline expiry, server ERROR frames — an kOverloaded error is the wire
// image of FAILEDTRYLATER and worth retrying). A WireClient is not
// thread-safe; give each submitting thread its own connection, the way a
// real client process would.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>

#include "core/negotiation_request.hpp"
#include "core/negotiation_result.hpp"
#include "util/result.hpp"
#include "wire/codec.hpp"
#include "wire/frame.hpp"

namespace qosnp {

struct WireClientConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  /// connect() tries this many times, sleeping `connect_backoff_ms` between
  /// attempts — enough to ride out a server that is still binding its port.
  int connect_attempts = 3;
  double connect_backoff_ms = 50.0;
  /// Default wait bound for submit()/await()/ping(); 0 blocks forever.
  double deadline_ms = 0.0;
  std::size_t max_frame_bytes = wire::kDefaultMaxFrameBytes;

  static WireClientConfig validated(WireClientConfig config);
};

class WireClient {
 public:
  explicit WireClient(WireClientConfig config);
  ~WireClient();

  WireClient(const WireClient&) = delete;
  WireClient& operator=(const WireClient&) = delete;

  /// Establish the connection (with retries). Idempotent while connected.
  Result<bool, wire::WireError> connect();
  void close();
  bool connected() const { return fd_ >= 0; }

  /// Encode and send one request, returning its sequence number for a
  /// later await(). Connects on demand.
  Result<std::uint64_t, wire::WireError> send(const NegotiationRequest& request);

  /// Wait (up to deadline_ms, 0 = config default, <0 = forever) for the
  /// response matching `seq`. A server ERROR frame for this seq is
  /// returned as its typed error; responses for other sequence numbers are
  /// parked for their own await().
  Result<NegotiationResult, wire::WireError> await(std::uint64_t seq, double deadline_ms = 0.0);

  /// send + await: the blocking request cycle.
  Result<NegotiationResult, wire::WireError> submit(const NegotiationRequest& request,
                                                    double deadline_ms = 0.0);

  /// Liveness probe; returns the measured round-trip in milliseconds.
  Result<double, wire::WireError> ping(double deadline_ms = 0.0);

  const WireClientConfig& config() const { return config_; }

 private:
  Result<bool, wire::WireError> write_all(const wire::Bytes& bytes);
  /// Pump the socket until `seq` resolves (into pending_ or an error).
  Result<bool, wire::WireError> read_until(std::uint64_t seq, double deadline_ms);
  double resolve_deadline(double deadline_ms) const {
    return deadline_ms != 0.0 ? deadline_ms : config_.deadline_ms;
  }

  WireClientConfig config_;
  int fd_ = -1;
  std::uint64_t next_seq_ = 1;
  wire::FrameAssembler assembler_;
  std::map<std::uint64_t, NegotiationResult> pending_results_;
  std::map<std::uint64_t, wire::WireError> pending_errors_;
  std::set<std::uint64_t> pending_pongs_;
};

}  // namespace qosnp
