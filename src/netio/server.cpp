#include "netio/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "util/log.hpp"
#include "util/validate.hpp"

namespace qosnp {

namespace {
constexpr std::size_t kReadChunk = 64 * 1024;

std::size_t frame_type_index(wire::FrameType type) {
  return static_cast<std::size_t>(type);
}
}  // namespace

WireServer::Completions::~Completions() {
  if (event_fd >= 0) ::close(event_fd);
}

WireServerConfig WireServerConfig::validated(WireServerConfig config) {
  require_config(config.max_connections > 0, "WireServerConfig",
                 "max_connections must be at least 1");
  require_config(config.listen_backlog > 0, "WireServerConfig",
                 "listen_backlog must be at least 1");
  require_config(config.max_frame_bytes >= wire::kHeaderBytes + wire::kTrailerBytes + 2,
                 "WireServerConfig", "max_frame_bytes cannot carry any frame");
  require_config(config.idle_timeout_ms >= 0.0, "WireServerConfig",
                 "idle_timeout_ms must not be negative");
  return config;
}

WireServer::WireServer(NegotiationService& service, WireServerConfig config)
    : service_(&service),
      config_(WireServerConfig::validated(std::move(config))),
      net_(config_.metrics != nullptr ? *config_.metrics : service.metrics()) {}

WireServer::~WireServer() { stop(); }

void WireServer::start() {
  if (running_.exchange(true, std::memory_order_acq_rel)) return;
  stop_requested_.store(false, std::memory_order_release);

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    running_.store(false, std::memory_order_release);
    throw std::runtime_error("WireServer: socket() failed: " + std::string(std::strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.bind_address.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    running_.store(false, std::memory_order_release);
    throw std::runtime_error("WireServer: bad bind address '" + config_.bind_address + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(listen_fd_, config_.listen_backlog) != 0) {
    const std::string why = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    running_.store(false, std::memory_order_release);
    throw std::runtime_error("WireServer: bind/listen failed: " + why);
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len);
  port_ = ntohs(bound.sin_port);

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  completions_ = std::make_shared<Completions>();
  completions_->event_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  completions_->open = true;
  if (epoll_fd_ < 0 || completions_->event_fd < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    running_.store(false, std::memory_order_release);
    throw std::runtime_error("WireServer: epoll/eventfd setup failed");
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.events = EPOLLIN;
  ev.data.fd = completions_->event_fd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, completions_->event_fd, &ev);

  loop_thread_ = std::thread([this] { loop(); });
  QOSNP_LOG_INFO("netio", "qosnpd listening on ", config_.bind_address, ":", port_);
}

void WireServer::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stop_requested_.store(true, std::memory_order_release);
  {
    std::lock_guard lk(completions_->mu);
    const std::uint64_t one = 1;
    [[maybe_unused]] ssize_t n = ::write(completions_->event_fd, &one, sizeof(one));
  }
  loop_thread_.join();

  // Every dispatched request resolves eventually (the service guarantees a
  // response per submit); with all connections gone those completions are
  // orphans. Account for them before declaring the server stopped so the
  // conservation laws stay exact across a shutdown.
  while (net_.requests_inflight->value() > 0) {
    {
      std::lock_guard lk(completions_->mu);
      for (auto& entry : completions_->done) {
        (void)entry;
        net_.orphaned_results->inc();
        net_.requests_inflight->sub();
      }
      completions_->done.clear();
    }
    if (net_.requests_inflight->value() > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  {
    std::lock_guard lk(completions_->mu);
    completions_->open = false;
  }
  if (epoll_fd_ >= 0) {
    ::close(epoll_fd_);
    epoll_fd_ = -1;
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  QOSNP_LOG_INFO("netio", "qosnpd stopped; ", net_.requests_rx->value(), " requests served");
}

std::size_t WireServer::connection_count() const {
  std::lock_guard lk(count_mu_);
  return conn_count_;
}

void WireServer::loop() {
  set_log_tag("qosnpd");
  std::array<epoll_event, 64> events;
  const int wait_ms = config_.idle_timeout_ms > 0.0
                          ? static_cast<int>(std::max(1.0, config_.idle_timeout_ms / 4.0))
                          : -1;
  while (!stop_requested_.load(std::memory_order_acquire)) {
    const int n = ::epoll_wait(epoll_fd_, events.data(), static_cast<int>(events.size()),
                               wait_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      QOSNP_LOG_ERROR("netio", "epoll_wait failed: ", std::strerror(errno));
      break;
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == listen_fd_) {
        accept_ready();
        continue;
      }
      if (fd == completions_->event_fd) {
        std::uint64_t drained = 0;
        while (::read(completions_->event_fd, &drained, sizeof(drained)) > 0) {
        }
        drain_completions();
        continue;
      }
      auto it = conns_.find(fd);
      if (it == conns_.end()) continue;
      Conn& conn = *it->second;
      if (events[i].events & (EPOLLHUP | EPOLLERR)) {
        close_conn(conn, NetCloseReason::kClientClose);
        continue;
      }
      bool alive = true;
      if (events[i].events & EPOLLOUT) {
        flush(conn);
        alive = conns_.find(fd) != conns_.end();
      }
      if (alive && (events[i].events & EPOLLIN)) conn_readable(conn);
    }
    if (config_.idle_timeout_ms > 0.0) reap_idle();
  }
  // Shutdown path: everything still open closes as server-stop.
  std::vector<int> fds;
  fds.reserve(conns_.size());
  for (const auto& [fd, conn] : conns_) fds.push_back(fd);
  for (int fd : fds) {
    auto it = conns_.find(fd);
    if (it != conns_.end()) close_conn(*it->second, NetCloseReason::kServerStop);
  }
  set_log_tag("");
}

void WireServer::accept_ready() {
  while (true) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      QOSNP_LOG_WARN("netio", "accept failed: ", std::strerror(errno));
      return;
    }
    net_.connections_opened->inc();
    bool over_limit;
    {
      std::lock_guard lk(count_mu_);
      over_limit = conn_count_ >= config_.max_connections;
    }
    if (over_limit) {
      // Connection-level load shedding: one typed "try later" and goodbye.
      net_.shed_overload->inc();
      net_.frames_tx[frame_type_index(wire::FrameType::kError)]->inc();
      const wire::Bytes frame = wire::encode_error_frame(
          {wire::WireErrorCode::kOverloaded, "connection limit reached; retry later"}, 0);
      const ssize_t sent = ::send(fd, frame.data(), frame.size(), MSG_NOSIGNAL);
      if (sent > 0) net_.bytes_tx->add(static_cast<std::uint64_t>(sent));
      ::close(fd);
      net_.connections_closed[static_cast<std::size_t>(NetCloseReason::kOverload)]->inc();
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_unique<Conn>();
    conn->fd = fd;
    conn->id = next_conn_id_++;
    conn->assembler = wire::FrameAssembler(config_.max_frame_bytes);
    conn->last_active_ms = now_ms();
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
    conns_by_id_[conn->id] = conn.get();
    conns_.emplace(fd, std::move(conn));
    {
      std::lock_guard lk(count_mu_);
      ++conn_count_;
      net_.connections_active->set(static_cast<std::int64_t>(conn_count_));
    }
  }
}

void WireServer::conn_readable(Conn& conn) {
  const int fd = conn.fd;
  std::array<std::uint8_t, kReadChunk> buf;
  while (true) {
    const ssize_t n = ::recv(fd, buf.data(), buf.size(), 0);
    if (n > 0) {
      net_.bytes_rx->add(static_cast<std::uint64_t>(n));
      conn.last_active_ms = now_ms();
      conn.assembler.feed(buf.data(), static_cast<std::size_t>(n));
      while (true) {
        wire::FrameAssembler::Next next = conn.assembler.next();
        if (next.frame) {
          handle_frame(conn, std::move(*next.frame));
          if (conns_.find(fd) == conns_.end()) return;  // closed during handling
          if (conn.draining) break;                     // stop parsing a dying stream
          continue;
        }
        if (next.error) {
          // Framing-level violation: the byte stream can no longer be
          // trusted. One typed ERROR frame, then drain and close.
          net_.decode_errors->inc();
          if (next.error->code == wire::WireErrorCode::kFrameTooLarge) {
            net_.shed_frame_too_large->inc();
          }
          QOSNP_LOG_DEBUG("netio", "framing error on conn ", conn.id, ": ",
                          next.error->to_text());
          conn.draining = true;
          conn.drain_reason = NetCloseReason::kProtocolError;
          enqueue(conn, wire::FrameType::kError,
                  wire::encode_error_frame(*next.error, next.error_seq));
          return;  // conn may be gone (enqueue flushes; drained -> closed)
        }
        break;  // needs more bytes
      }
      if (conn.draining) return;
      continue;
    }
    if (n == 0) {
      close_conn(conn, NetCloseReason::kClientClose);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno == EINTR) continue;
    close_conn(conn, NetCloseReason::kClientClose);
    return;
  }
}

void WireServer::handle_frame(Conn& conn, wire::Frame frame) {
  net_.frames_rx[frame_type_index(frame.type)]->inc();
  switch (frame.type) {
    case wire::FrameType::kPing:
      enqueue(conn, wire::FrameType::kPong, wire::encode_pong_frame(frame.seq));
      return;
    case wire::FrameType::kRequest:
      dispatch_request(conn, frame.seq, frame.payload);
      return;
    case wire::FrameType::kResult:
    case wire::FrameType::kError:
    case wire::FrameType::kPong: {
      // A server never solicits these; receiving one is a protocol bug on
      // the peer's side and the stream state is suspect.
      net_.decode_errors->inc();
      conn.draining = true;
      conn.drain_reason = NetCloseReason::kProtocolError;
      enqueue(conn, wire::FrameType::kError,
              wire::encode_error_frame({wire::WireErrorCode::kBadFrameType,
                                        "server received a " +
                                            std::string(wire::to_string(frame.type)) + " frame"},
                                       frame.seq));
      return;
    }
  }
}

void WireServer::dispatch_request(Conn& conn, std::uint64_t seq, const wire::Bytes& payload) {
  auto decoded = wire::decode_request_payload(payload);
  if (!decoded.ok()) {
    // The framing held (magic/CRC fine), only this payload is bad: answer
    // the typed error and keep the connection.
    net_.decode_errors->inc();
    enqueue(conn, wire::FrameType::kError, wire::encode_error_frame(decoded.error(), seq));
    return;
  }
  net_.requests_rx->inc();
  net_.requests_inflight->add();
  ++conn.inflight;
  const std::uint64_t conn_id = conn.id;
  std::shared_ptr<Completions> completions = completions_;
  service_->submit_async(
      std::move(decoded.value()),
      [completions, conn_id, seq](NegotiationResult result) {
        // Worker thread: encode here (off the event loop), then hand the
        // finished frame over and ring the eventfd.
        wire::Bytes frame = wire::encode_result_frame(result, seq);
        std::lock_guard lk(completions->mu);
        if (!completions->open) return;
        completions->done.emplace_back(conn_id, std::move(frame));
        const std::uint64_t one = 1;
        [[maybe_unused]] ssize_t n = ::write(completions->event_fd, &one, sizeof(one));
      });
}

void WireServer::drain_completions() {
  std::vector<std::pair<std::uint64_t, wire::Bytes>> done;
  {
    std::lock_guard lk(completions_->mu);
    done.swap(completions_->done);
  }
  for (auto& [conn_id, frame] : done) {
    net_.requests_inflight->sub();
    auto it = conns_by_id_.find(conn_id);
    if (it == conns_by_id_.end()) {
      // The connection died while the request was negotiating; the session
      // (if any) lives on server-side, only the response is undeliverable.
      net_.orphaned_results->inc();
      continue;
    }
    Conn& conn = *it->second;
    --conn.inflight;
    conn.last_active_ms = now_ms();
    enqueue(conn, wire::FrameType::kResult, std::move(frame));
  }
}

void WireServer::reap_idle() {
  const double now = now_ms();
  std::vector<int> idle;
  for (const auto& [fd, conn] : conns_) {
    if (conn->inflight == 0 && conn->out.size() == conn->out_offset &&
        now - conn->last_active_ms > config_.idle_timeout_ms) {
      idle.push_back(fd);
    }
  }
  for (int fd : idle) {
    auto it = conns_.find(fd);
    if (it != conns_.end()) close_conn(*it->second, NetCloseReason::kIdleTimeout);
  }
}

void WireServer::enqueue(Conn& conn, wire::FrameType type, wire::Bytes frame) {
  net_.frames_tx[frame_type_index(type)]->inc();
  conn.out.insert(conn.out.end(), frame.begin(), frame.end());
  flush(conn);
}

void WireServer::flush(Conn& conn) {
  const int fd = conn.fd;
  while (conn.out_offset < conn.out.size()) {
    const ssize_t n = ::send(fd, conn.out.data() + conn.out_offset,
                             conn.out.size() - conn.out_offset, MSG_NOSIGNAL);
    if (n > 0) {
      net_.bytes_tx->add(static_cast<std::uint64_t>(n));
      conn.out_offset += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      update_epoll(conn);
      return;
    }
    if (n < 0 && errno == EINTR) continue;
    close_conn(conn, NetCloseReason::kClientClose);
    return;
  }
  conn.out.clear();
  conn.out_offset = 0;
  if (conn.draining) {
    close_conn(conn, conn.drain_reason);
    return;
  }
  update_epoll(conn);
}

void WireServer::update_epoll(Conn& conn) {
  epoll_event ev{};
  const bool pending = conn.out_offset < conn.out.size();
  ev.events = (conn.draining ? 0u : EPOLLIN) | (pending ? EPOLLOUT : 0u);
  ev.data.fd = conn.fd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev);
}

void WireServer::close_conn(Conn& conn, NetCloseReason reason) {
  const int fd = conn.fd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  ::close(fd);
  net_.connections_closed[static_cast<std::size_t>(reason)]->inc();
  conns_by_id_.erase(conn.id);
  conns_.erase(fd);  // frees `conn`
  {
    std::lock_guard lk(count_mu_);
    --conn_count_;
    net_.connections_active->set(static_cast<std::int64_t>(conn_count_));
  }
}

}  // namespace qosnp
