#include "netio/node_config.hpp"

#include <stdexcept>
#include <utility>

namespace qosnp {

namespace {

/// Per-field validation: the whole point of the builder is that the error
/// names the field that was set wrong, at the call that set it.
void require_field(bool ok, const char* field, const char* rule) {
  if (!ok) {
    throw std::invalid_argument(std::string("NodeConfig.") + field + ": " + rule);
  }
}

}  // namespace

NodeConfig& NodeConfig::workers(std::size_t n) {
  require_field(n >= 1, "workers", "must be >= 1");
  service_.workers = n;
  return *this;
}

NodeConfig& NodeConfig::queue_capacity(std::size_t n) {
  require_field(n >= 1, "queue_capacity", "must be >= 1");
  service_.queue_capacity = n;
  return *this;
}

NodeConfig& NodeConfig::deadline_ms(double ms) {
  require_field(ms >= 0.0, "deadline_ms", "must not be negative");
  service_.deadline_ms = ms;
  return *this;
}

NodeConfig& NodeConfig::simulated_rtt_ms(double ms) {
  require_field(ms >= 0.0, "simulated_rtt_ms", "must not be negative");
  service_.simulated_rtt_ms = ms;
  return *this;
}

NodeConfig& NodeConfig::auto_confirm(bool on) {
  service_.auto_confirm = on;
  return *this;
}

NodeConfig& NodeConfig::metrics(MetricsRegistry* registry) {
  service_.metrics = registry;
  wire_.metrics = registry;
  return *this;
}

NodeConfig& NodeConfig::trace_sink(TraceSink* sink) {
  service_.trace_sink = sink;
  return *this;
}

NodeConfig& NodeConfig::plan_cache_enabled(bool on) {
  cache_enabled_ = on;
  return *this;
}

NodeConfig& NodeConfig::cache_shards(std::size_t n) {
  require_field(n >= 1, "cache_shards", "must be >= 1");
  cache_.shards = n;
  return *this;
}

NodeConfig& NodeConfig::cache_capacity(std::size_t n) {
  require_field(n >= 1, "cache_capacity", "must be >= 1");
  cache_.capacity = n;
  return *this;
}

NodeConfig& NodeConfig::bind_address(std::string address) {
  require_field(!address.empty(), "bind_address", "must not be empty");
  wire_.bind_address = std::move(address);
  return *this;
}

NodeConfig& NodeConfig::listen_port(std::uint16_t port) {
  wire_.port = port;  // 0 is valid: bind an ephemeral port
  return *this;
}

NodeConfig& NodeConfig::listen_backlog(int backlog) {
  require_field(backlog >= 1, "listen_backlog", "must be >= 1");
  wire_.listen_backlog = backlog;
  return *this;
}

NodeConfig& NodeConfig::max_connections(std::size_t n) {
  require_field(n >= 1, "max_connections", "must be >= 1");
  wire_.max_connections = n;
  return *this;
}

NodeConfig& NodeConfig::max_frame_bytes(std::size_t n) {
  require_field(n > wire::kHeaderBytes + wire::kTrailerBytes, "max_frame_bytes",
                "must fit at least one non-empty frame");
  wire_.max_frame_bytes = n;
  return *this;
}

NodeConfig& NodeConfig::idle_timeout_ms(double ms) {
  require_field(ms >= 0.0, "idle_timeout_ms", "must not be negative");
  wire_.idle_timeout_ms = ms;
  return *this;
}

ServiceConfig NodeConfig::service() const { return ServiceConfig::validated(service_); }

CachePolicy NodeConfig::cache_policy() const { return CachePolicy::validated(cache_); }

std::shared_ptr<NegotiationPlanCache> NodeConfig::make_plan_cache() const {
  return cache_enabled_ ? std::make_shared<NegotiationPlanCache>(cache_policy()) : nullptr;
}

WireServerConfig NodeConfig::wire_server() const { return WireServerConfig::validated(wire_); }

}  // namespace qosnp
