// qosnpd: the TCP front-end that turns the in-process NegotiationService
// into a deployable network server. A single event-loop thread owns a
// non-blocking listener and every connection (epoll, edge-triggered reads
// drained to EAGAIN); decoded REQUEST frames dispatch into the service via
// submit_async, and worker completion callbacks marshal the result back to
// the loop through a mutex-guarded completion queue + eventfd — no thread
// ever blocks on a future, and responses are sequence-number matched so
// clients may pipeline freely.
//
// Robustness contract (tests/netio_test.cpp):
//  - partial reads reassemble (a 1-byte-at-a-time writer is fine);
//  - every protocol violation is answered with one typed ERROR frame, then
//    framing-level violations (bad magic/CRC/version/oversize) close the
//    connection — the stream is no longer trustworthy — while a malformed
//    REQUEST payload keeps it open (framing survived);
//  - the max-connection and max-frame limits shed with kOverloaded /
//    kFrameTooLarge ERROR frames, the wire image of FAILEDTRYLATER;
//  - idle connections (no traffic, nothing in flight) are reaped after
//    idle_timeout_ms;
//  - every accounting event lands in the qosnp_net_* metrics (NetMetrics),
//    whose conservation laws hold at drain.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "obs/net_metrics.hpp"
#include "service/negotiation_service.hpp"
#include "wire/codec.hpp"
#include "wire/frame.hpp"

namespace qosnp {

struct WireServerConfig {
  std::string bind_address = "127.0.0.1";
  /// Port to listen on; 0 binds an ephemeral port (see WireServer::port()).
  std::uint16_t port = 0;
  int listen_backlog = 64;
  /// Connections beyond this are accepted, answered with one kOverloaded
  /// ERROR frame (retry later) and closed.
  std::size_t max_connections = 256;
  /// Ceiling on one frame's total size (header + payload + trailer); a
  /// frame declaring more sheds with kFrameTooLarge and the connection is
  /// closed (its stream position is unrecoverable).
  std::size_t max_frame_bytes = wire::kDefaultMaxFrameBytes;
  /// Close connections with no traffic and nothing in flight for this
  /// long. 0 disables the reaper.
  double idle_timeout_ms = 0.0;
  /// Register qosnp_net_* metrics here instead of the service's registry.
  /// Not owned; must outlive the server.
  MetricsRegistry* metrics = nullptr;

  /// Throws std::invalid_argument on an unusable config (zero limits, a
  /// max_frame too small to carry any frame at all).
  static WireServerConfig validated(WireServerConfig config);
};

class WireServer {
 public:
  /// The service must outlive the server and be start()ed by the caller.
  explicit WireServer(NegotiationService& service, WireServerConfig config = {});
  ~WireServer();

  WireServer(const WireServer&) = delete;
  WireServer& operator=(const WireServer&) = delete;

  /// Bind + listen + spawn the event loop. Throws std::runtime_error when
  /// the socket cannot be bound.
  void start();
  /// Close the listener and every connection, join the loop. In-flight
  /// service requests complete against the (closed) completion queue and
  /// are counted as orphaned results.
  void stop();
  bool running() const { return running_.load(std::memory_order_acquire); }

  /// The port actually bound (resolves an ephemeral request after start()).
  std::uint16_t port() const { return port_; }

  const NetMetrics& net() const { return net_; }
  std::size_t connection_count() const;

 private:
  struct Conn {
    int fd = -1;
    std::uint64_t id = 0;
    wire::FrameAssembler assembler;
    std::vector<std::uint8_t> out;   ///< bytes committed but not yet written
    std::size_t out_offset = 0;
    std::size_t inflight = 0;        ///< requests dispatched, response pending
    double last_active_ms = 0.0;
    bool draining = false;           ///< close once `out` flushes
    NetCloseReason drain_reason = NetCloseReason::kProtocolError;
  };

  /// Completion channel between service workers and the event loop. Held by
  /// shared_ptr so a worker callback outliving the server resolves against
  /// a closed (but alive) queue instead of freed memory.
  struct Completions {
    std::mutex mu;
    std::vector<std::pair<std::uint64_t, wire::Bytes>> done;  ///< (conn id, result frame)
    int event_fd = -1;
    bool open = false;
    ~Completions();
  };

  void loop();
  void accept_ready();
  void conn_readable(Conn& conn);
  void conn_writable(Conn& conn);
  void handle_frame(Conn& conn, wire::Frame frame);
  void dispatch_request(Conn& conn, std::uint64_t seq, const wire::Bytes& payload);
  void drain_completions();
  void reap_idle();
  /// Buffer bytes on the connection and try to flush; counts the frame as
  /// transmitted (the conservation laws count commitment, not flush).
  void enqueue(Conn& conn, wire::FrameType type, wire::Bytes frame);
  void flush(Conn& conn);
  void update_epoll(Conn& conn);
  void close_conn(Conn& conn, NetCloseReason reason);
  double now_ms() const { return clock_.elapsed_ms(); }

  NegotiationService* service_;
  WireServerConfig config_;
  NetMetrics net_;
  Stopwatch clock_;
  std::shared_ptr<Completions> completions_;
  std::thread loop_thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
  std::uint16_t port_ = 0;
  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  std::uint64_t next_conn_id_ = 1;
  std::unordered_map<int, std::unique_ptr<Conn>> conns_;          ///< by fd (loop thread only)
  std::unordered_map<std::uint64_t, Conn*> conns_by_id_;          ///< loop thread only
  mutable std::mutex count_mu_;
  std::size_t conn_count_ = 0;  ///< guarded by count_mu_ (read from any thread)
};

}  // namespace qosnp
