#include "netio/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "util/stopwatch.hpp"
#include "util/validate.hpp"

namespace qosnp {

using wire::WireError;
using wire::WireErrorCode;

WireClientConfig WireClientConfig::validated(WireClientConfig config) {
  require_config(config.connect_attempts >= 1, "WireClientConfig",
                 "connect_attempts must be at least 1");
  require_config(config.connect_backoff_ms >= 0.0, "WireClientConfig",
                 "connect_backoff_ms must not be negative");
  require_config(config.deadline_ms >= 0.0, "WireClientConfig",
                 "deadline_ms must not be negative");
  require_config(config.max_frame_bytes >= wire::kHeaderBytes + wire::kTrailerBytes + 2,
                 "WireClientConfig", "max_frame_bytes cannot carry any frame");
  return config;
}

WireClient::WireClient(WireClientConfig config)
    : config_(WireClientConfig::validated(std::move(config))),
      assembler_(config_.max_frame_bytes) {}

WireClient::~WireClient() { close(); }

void WireClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<bool, WireError> WireClient::connect() {
  if (connected()) return true;
  std::string last_error = "unknown";
  for (int attempt = 0; attempt < config_.connect_attempts; ++attempt) {
    if (attempt > 0 && config_.connect_backoff_ms > 0.0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(config_.connect_backoff_ms));
    }
    const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) {
      last_error = std::strerror(errno);
      continue;
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(config_.port);
    if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
      ::close(fd);
      return Err(WireError{WireErrorCode::kIo, "bad host address '" + config_.host + "'"});
    }
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) == 0) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      fd_ = fd;
      assembler_ = wire::FrameAssembler(config_.max_frame_bytes);
      pending_results_.clear();
      pending_errors_.clear();
      pending_pongs_.clear();
      return true;
    }
    last_error = std::strerror(errno);
    ::close(fd);
  }
  return Err(WireError{WireErrorCode::kConnectionClosed,
                       "connect to " + config_.host + ":" + std::to_string(config_.port) +
                           " failed after " + std::to_string(config_.connect_attempts) +
                           " attempts: " + last_error});
}

Result<bool, WireError> WireClient::write_all(const wire::Bytes& bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    const std::string why = std::strerror(errno);
    close();
    return Err(WireError{WireErrorCode::kIo, "send failed: " + why});
  }
  return true;
}

Result<std::uint64_t, WireError> WireClient::send(const NegotiationRequest& request) {
  if (!connected()) {
    auto c = connect();
    if (!c.ok()) return Err(c.error());
  }
  const std::uint64_t seq = next_seq_++;
  auto frame = wire::encode_request_frame(request, seq);
  if (!frame.ok()) return Err(frame.error());
  auto written = write_all(frame.value());
  if (!written.ok()) return Err(written.error());
  return seq;
}

Result<bool, WireError> WireClient::read_until(std::uint64_t seq, double deadline_ms) {
  Stopwatch waited;
  while (true) {
    if (pending_results_.count(seq) || pending_errors_.count(seq) ||
        pending_pongs_.count(seq)) {
      return true;
    }
    if (!connected()) {
      return Err(WireError{WireErrorCode::kConnectionClosed, "connection is closed"});
    }
    int poll_ms = -1;
    if (deadline_ms > 0.0) {
      const double remaining = deadline_ms - waited.elapsed_ms();
      if (remaining <= 0.0) {
        // Typed distinctly from kOverloaded: an expired *caller* deadline
        // must never be treated as a retry-elsewhere signal (the sharded
        // router retries another shard only on overload).
        return Err(WireError{WireErrorCode::kDeadlineExceeded,
                             "no response for seq " + std::to_string(seq) + " within " +
                                 std::to_string(deadline_ms) + "ms"});
      }
      poll_ms = static_cast<int>(remaining) + 1;
    }
    pollfd pfd{fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, poll_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      const std::string why = std::strerror(errno);
      close();
      return Err(WireError{WireErrorCode::kIo, "poll failed: " + why});
    }
    if (ready == 0) continue;  // re-check the deadline at the top

    std::array<std::uint8_t, 64 * 1024> buf;
    const ssize_t n = ::recv(fd_, buf.data(), buf.size(), 0);
    if (n == 0) {
      close();
      return Err(WireError{WireErrorCode::kConnectionClosed, "server closed the connection"});
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      const std::string why = std::strerror(errno);
      close();
      return Err(WireError{WireErrorCode::kIo, "recv failed: " + why});
    }
    assembler_.feed(buf.data(), static_cast<std::size_t>(n));
    while (true) {
      wire::FrameAssembler::Next next = assembler_.next();
      if (next.error) {
        close();
        return Err(*next.error);
      }
      if (!next.frame) break;
      wire::Frame& frame = *next.frame;
      switch (frame.type) {
        case wire::FrameType::kResult: {
          auto result = wire::decode_result_payload(frame.payload);
          if (!result.ok()) {
            close();
            return Err(result.error());
          }
          pending_results_.emplace(frame.seq, std::move(result.value()));
          break;
        }
        case wire::FrameType::kError: {
          auto error = wire::decode_error_payload(frame.payload);
          WireError typed = error.ok() ? error.value() : error.error();
          if (frame.seq == 0) {
            // Connection-scoped refusal (e.g. the overload shed at accept):
            // not tied to any request, the connection is done.
            close();
            return Err(std::move(typed));
          }
          pending_errors_.emplace(frame.seq, std::move(typed));
          break;
        }
        case wire::FrameType::kPong:
          pending_pongs_.insert(frame.seq);
          break;
        case wire::FrameType::kPing:
          // Symmetric liveness: answer a server's ping in place.
          if (auto written = write_all(wire::encode_pong_frame(frame.seq)); !written.ok()) {
            return Err(written.error());
          }
          break;
        case wire::FrameType::kRequest: {
          close();
          return Err(WireError{WireErrorCode::kBadFrameType,
                               "client received a REQUEST frame"});
        }
      }
    }
  }
}

Result<NegotiationResult, WireError> WireClient::await(std::uint64_t seq, double deadline_ms) {
  auto ready = read_until(seq, resolve_deadline(deadline_ms));
  if (!ready.ok()) return Err(ready.error());
  if (auto it = pending_errors_.find(seq); it != pending_errors_.end()) {
    WireError error = std::move(it->second);
    pending_errors_.erase(it);
    return Err(std::move(error));
  }
  auto it = pending_results_.find(seq);
  if (it == pending_results_.end()) {
    return Err(WireError{WireErrorCode::kBadPayload,
                         "seq " + std::to_string(seq) + " resolved without a result"});
  }
  NegotiationResult result = std::move(it->second);
  pending_results_.erase(it);
  return result;
}

Result<NegotiationResult, WireError> WireClient::submit(const NegotiationRequest& request,
                                                        double deadline_ms) {
  auto seq = send(request);
  if (!seq.ok()) return Err(seq.error());
  return await(seq.value(), deadline_ms);
}

Result<double, WireError> WireClient::ping(double deadline_ms) {
  if (!connected()) {
    auto c = connect();
    if (!c.ok()) return Err(c.error());
  }
  const std::uint64_t seq = next_seq_++;
  Stopwatch rtt;
  auto written = write_all(wire::encode_ping_frame(seq));
  if (!written.ok()) return Err(written.error());
  auto ready = read_until(seq, resolve_deadline(deadline_ms));
  if (!ready.ok()) return Err(ready.error());
  pending_pongs_.erase(seq);
  return rtt.elapsed_ms();
}

}  // namespace qosnp
