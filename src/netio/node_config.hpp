// NodeConfig: one validated builder for everything a deployed negotiation
// node is configured with, collapsing the loose-struct sprawl that grew one
// subsystem at a time — ServiceConfig (worker pool), CachePolicy (plan
// cache) and WireServerConfig (TCP front-end). Each setter validates its
// field immediately and throws std::invalid_argument with a per-field
// message ("NodeConfig.workers: must be >= 1"), so a bad value is reported
// at the line that wrote it, not at some later use.
//
// The old structs stay as plain, fully-supported types — NodeConfig's
// finishers produce them, and the subsystems keep consuming them — but new
// code must build them through here: scripts/check_no_deprecated.sh bans
// direct construction of the loose structs in the sharding layer and the
// code that follows it.
//
//   auto node = NodeConfig{}
//                   .workers(8).queue_capacity(256).auto_confirm(false)
//                   .plan_cache_enabled(true).cache_capacity(4096)
//                   .listen_port(0).max_connections(128);
//   NegotiationService service(manager, sessions, node.service());
//   WireServer server(service, node.wire_server());
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "core/plan_cache.hpp"
#include "netio/server.hpp"
#include "service/negotiation_service.hpp"

namespace qosnp {

class NodeConfig {
 public:
  // --- service (worker pool) fields ---------------------------------------
  NodeConfig& workers(std::size_t n);
  NodeConfig& queue_capacity(std::size_t n);
  NodeConfig& deadline_ms(double ms);
  NodeConfig& simulated_rtt_ms(double ms);
  NodeConfig& auto_confirm(bool on);
  NodeConfig& metrics(MetricsRegistry* registry);
  NodeConfig& trace_sink(TraceSink* sink);

  // --- plan cache fields ---------------------------------------------------
  NodeConfig& plan_cache_enabled(bool on);
  NodeConfig& cache_shards(std::size_t n);
  NodeConfig& cache_capacity(std::size_t n);

  // --- wire listener fields ------------------------------------------------
  NodeConfig& bind_address(std::string address);
  NodeConfig& listen_port(std::uint16_t port);
  NodeConfig& listen_backlog(int backlog);
  NodeConfig& max_connections(std::size_t n);
  NodeConfig& max_frame_bytes(std::size_t n);
  NodeConfig& idle_timeout_ms(double ms);

  // --- finishers -----------------------------------------------------------
  /// The worker-pool configuration (revalidated as a whole on the way out).
  ServiceConfig service() const;
  /// The plan-cache policy, independent of whether the cache is enabled.
  CachePolicy cache_policy() const;
  /// A fresh plan cache under cache_policy(), or nullptr when disabled —
  /// exactly what NegotiationConfig::plan_cache takes.
  std::shared_ptr<NegotiationPlanCache> make_plan_cache() const;
  /// The TCP front-end configuration.
  WireServerConfig wire_server() const;

  bool plan_cache_on() const { return cache_enabled_; }

 private:
  ServiceConfig service_;
  CachePolicy cache_;
  bool cache_enabled_ = false;
  WireServerConfig wire_;
};

}  // namespace qosnp
