#include "advance/calendar.hpp"

#include <algorithm>

namespace qosnp {

std::int64_t CapacityCalendar::peak_usage(double start_s, double end_s) const {
  // Usage is piecewise constant and changes only at booking boundaries, so
  // sampling at the window start and every booking start inside the window
  // is exact. O(n^2) in the number of overlapping bookings — calendars hold
  // tens of bookings per resource, so clarity wins over a sweep line.
  std::int64_t peak = 0;
  auto usage_at_instant = [this](double t) {
    std::int64_t sum = 0;
    for (const auto& [_, b] : bookings_) {
      if (b.start_s <= t && t < b.end_s) sum += b.rate_bps;
    }
    return sum;
  };
  peak = usage_at_instant(start_s);
  for (const auto& [_, b] : bookings_) {
    if (b.start_s > start_s && b.start_s < end_s) {
      peak = std::max(peak, usage_at_instant(b.start_s));
    }
  }
  return peak;
}

Result<BookingId> CapacityCalendar::book(std::int64_t rate_bps, double start_s, double end_s) {
  if (rate_bps <= 0) return Err("non-positive rate");
  if (start_s >= end_s) return Err("empty booking window");
  if (!fits(rate_bps, start_s, end_s)) {
    return Err("capacity exceeded in the requested window");
  }
  Booking b;
  b.id = next_id_++;
  b.rate_bps = rate_bps;
  b.start_s = start_s;
  b.end_s = end_s;
  const BookingId id = b.id;
  bookings_[id] = b;
  return id;
}

bool CapacityCalendar::cancel(BookingId id) { return bookings_.erase(id) > 0; }

std::optional<double> CapacityCalendar::earliest_fit(std::int64_t rate_bps, double duration_s,
                                                     double not_before_s,
                                                     double horizon_s) const {
  if (rate_bps <= 0 || duration_s <= 0) return std::nullopt;
  std::vector<double> candidates;
  candidates.push_back(not_before_s);
  for (const auto& [_, b] : bookings_) {
    if (b.end_s > not_before_s) candidates.push_back(b.end_s);
  }
  std::sort(candidates.begin(), candidates.end());
  for (double start : candidates) {
    if (start > horizon_s) break;
    if (fits(rate_bps, start, start + duration_s)) return start;
  }
  return std::nullopt;
}

void CapacityCalendar::trim(double t_s) {
  for (auto it = bookings_.begin(); it != bookings_.end();) {
    if (it->second.end_s <= t_s) {
      it = bookings_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace qosnp
