#include "advance/planner.hpp"

#include <algorithm>
#include <cmath>

#include "util/log.hpp"

namespace qosnp {

FutureReservationPlanner::FutureReservationPlanner(
    const Topology& topology, const std::vector<MediaServerConfig>& servers, Config config)
    : topology_(&topology), config_(config) {
  for (const MediaServerConfig& s : servers) {
    server_calendars_[s.id] = std::make_unique<CapacityCalendar>(s.disk_bandwidth_bps);
    server_nodes_[s.id] = s.node;
  }
  link_calendars_.reserve(topology.link_count());
  for (std::size_t i = 0; i < topology.link_count(); ++i) {
    link_calendars_.push_back(
        std::make_unique<CapacityCalendar>(topology.link(i).capacity_bps));
  }
}

Result<std::vector<FutureReservationPlanner::Resource>> FutureReservationPlanner::resources_for(
    const ClientMachine& client, const SystemOffer& offer) const {
  std::vector<Resource> resources;
  for (const OfferComponent& c : offer.components) {
    auto server_it = server_calendars_.find(c.variant->server);
    if (server_it == server_calendars_.end()) {
      return Err("unknown server '" + c.variant->server + "'");
    }
    const std::int64_t rate = c.requirements.guarantee == GuaranteeClass::kGuaranteed
                                  ? c.requirements.max_bit_rate_bps
                                  : c.requirements.avg_bit_rate_bps;
    resources.push_back({server_it->second.get(), rate});
    auto path = topology_->shortest_path(server_nodes_.at(c.variant->server), client.node);
    if (!path.ok()) return Err(path.error());
    for (std::size_t link : path.value()) {
      resources.push_back({link_calendars_[link].get(), rate});
    }
  }
  return resources;
}

std::optional<double> FutureReservationPlanner::earliest_start(const ClientMachine& client,
                                                               const SystemOffer& offer,
                                                               double not_before_s,
                                                               double horizon_s) const {
  auto resources = resources_for(client, offer);
  if (!resources.ok()) return std::nullopt;
  double duration = 0.0;
  for (const OfferComponent& c : offer.components) {
    duration = std::max(duration, c.requirements.duration_s);
  }
  if (duration <= 0.0) return std::nullopt;

  // Fixpoint search: each resource proposes its earliest feasible start at
  // or after the current candidate; the candidate rises to the latest
  // proposal until every resource agrees (usage only changes at finitely
  // many instants, so this terminates or exceeds the horizon).
  double t = not_before_s;
  for (int round = 0; round < 1'000; ++round) {
    double latest = t;
    bool all_agree = true;
    for (const Resource& r : resources.value()) {
      auto fit = r.calendar->earliest_fit(r.rate_bps, duration, t, horizon_s);
      if (!fit) return std::nullopt;
      if (*fit > latest) {
        latest = *fit;
        all_agree = false;
      }
    }
    if (all_agree) return t;
    t = latest;
    if (t > horizon_s) return std::nullopt;
  }
  return std::nullopt;
}

Result<FuturePlan> FutureReservationPlanner::plan(const ClientMachine& client,
                                                  const OfferList& offers,
                                                  const MMProfile& profile,
                                                  double not_before_s) {
  const double horizon = not_before_s + config_.max_start_delay_s;
  std::string failure = "no offer fits within the booking horizon";

  for (int pass = 0; pass < 2; ++pass) {
    // Within a pass pick the earliest feasible start; classification rank
    // breaks ties (offers are already ordered best-to-worst).
    std::size_t best_index = SIZE_MAX;
    double best_start = horizon + 1.0;
    for (std::size_t i = 0; i < offers.offers.size(); ++i) {
      const SystemOffer& offer = offers.offers[i];
      const bool satisfying = satisfies_user(offer, profile);
      if ((pass == 0) != satisfying) continue;
      auto start = earliest_start(client, offer, not_before_s, horizon);
      if (!start) continue;
      if (*start < best_start) {
        best_start = *start;
        best_index = i;
      }
      if (*start <= not_before_s) break;  // cannot do better within this pass
    }
    if (best_index == SIZE_MAX) continue;

    const SystemOffer& chosen = offers.offers[best_index];
    double duration = 0.0;
    for (const OfferComponent& c : chosen.components) {
      duration = std::max(duration, c.requirements.duration_s);
    }
    auto resources = resources_for(client, chosen);
    if (!resources.ok()) {
      failure = resources.error();
      continue;
    }
    std::vector<std::pair<CapacityCalendar*, BookingId>> bookings;
    bool ok = true;
    for (const Resource& r : resources.value()) {
      auto booked = r.calendar->book(r.rate_bps, best_start, best_start + duration);
      if (!booked.ok()) {
        failure = booked.error();
        ok = false;
        break;
      }
      bookings.push_back({r.calendar, booked.value()});
    }
    if (!ok) {
      for (auto& [calendar, id] : bookings) calendar->cancel(id);
      continue;
    }

    FuturePlan plan;
    plan.id = next_id_++;
    plan.offer_index = best_index;
    plan.start_s = best_start;
    plan.end_s = best_start + duration;
    plan.satisfies_user = satisfies_user(chosen, profile);
    plan.offer = derive_user_offer(chosen);
    plans_[plan.id] = std::move(bookings);
    QOSNP_LOG_INFO("advance", "planned offer ", best_index, " at t=", best_start, "s");
    return plan;
  }
  return Err(failure);
}

bool FutureReservationPlanner::cancel(PlanId id) {
  auto it = plans_.find(id);
  if (it == plans_.end()) return false;
  for (auto& [calendar, booking] : it->second) calendar->cancel(booking);
  plans_.erase(it);
  return true;
}

void FutureReservationPlanner::trim(double now_s) {
  for (auto& [_, calendar] : server_calendars_) calendar->trim(now_s);
  for (auto& calendar : link_calendars_) calendar->trim(now_s);
}

}  // namespace qosnp
