// Future-reservation planner: the negotiation extension of [Haf 96] the
// paper cites ("Quality of Service Negotiation with Future Reservations").
// When the classified offer list cannot be committed *now*, the planner
// books the resources of the best offer at the earliest time they are all
// free, producing the counter-offer "the document can start at T" instead
// of a bare FAILEDTRYLATER.
//
// The planner owns one CapacityCalendar per media server and per network
// link and books every admitted plan into them, so successive plans see
// each other — a self-contained advance-booking world that mirrors the
// immediate-mode admission rules (guaranteed streams book their peak rate,
// best-effort streams their average; every component is booked over the
// whole document playout window).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "advance/calendar.hpp"
#include "client/client_machine.hpp"
#include "core/classify.hpp"
#include "core/offer.hpp"
#include "net/topology.hpp"
#include "server/media_server.hpp"

namespace qosnp {

using PlanId = std::uint64_t;

struct FuturePlan {
  PlanId id = 0;
  std::size_t offer_index = SIZE_MAX;  ///< index into the OfferList it was planned from
  double start_s = 0.0;
  double end_s = 0.0;
  bool satisfies_user = false;  ///< did the planned offer meet QoS + budget?
  UserOffer offer;
};

/// Planner tuning knobs.
struct FuturePlannerConfig {
  /// How far into the future starts may be searched (relative to
  /// `not_before`).
  double max_start_delay_s = 3'600.0;
};

class FutureReservationPlanner {
 public:
  using Config = FuturePlannerConfig;

  FutureReservationPlanner(const Topology& topology,
                           const std::vector<MediaServerConfig>& servers,
                           Config config = Config{});

  /// Find the best (offer, start-time) pair for a classified offer list and
  /// book it: offers are walked Step-5 style (user-satisfying offers first,
  /// then the rest, in classification order); within a pass the offer with
  /// the earliest feasible start wins, classification rank breaking ties.
  /// Fails when nothing fits within the search window.
  Result<FuturePlan> plan(const ClientMachine& client, const OfferList& offers,
                          const MMProfile& profile, double not_before_s);

  /// Release a plan's bookings (user declined the counter-offer, or the
  /// session ended).
  bool cancel(PlanId id);

  /// Drop bookings ending before `now` from every calendar.
  void trim(double now_s);

  /// Earliest feasible common start for one offer (exposed for tests).
  std::optional<double> earliest_start(const ClientMachine& client, const SystemOffer& offer,
                                       double not_before_s, double horizon_s) const;

  std::size_t active_plans() const { return plans_.size(); }

 private:
  struct Resource {
    CapacityCalendar* calendar;
    std::int64_t rate_bps;
  };

  /// The calendars and rates one offer occupies (server + path links per
  /// component); empty on routing/lookup failure.
  Result<std::vector<Resource>> resources_for(const ClientMachine& client,
                                              const SystemOffer& offer) const;

  const Topology* topology_;
  Config config_;
  std::unordered_map<ServerId, std::unique_ptr<CapacityCalendar>> server_calendars_;
  std::unordered_map<ServerId, NodeId> server_nodes_;
  std::vector<std::unique_ptr<CapacityCalendar>> link_calendars_;
  std::unordered_map<PlanId, std::vector<std::pair<CapacityCalendar*, BookingId>>> plans_;
  PlanId next_id_ = 1;
};

}  // namespace qosnp
