// Time-indexed capacity accounting for *future reservations*. The paper's
// negotiation framework includes "QoS Negotiation with Future Reservations"
// [Haf 96]: instead of rejecting a request outright (FAILEDTRYLATER), the
// system can book the resources for a later start time and counter-offer
// "your document can start at T". A CapacityCalendar tracks piecewise-
// constant usage of one resource (a link's bandwidth, a server's disk
// bandwidth) over continuous time.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "util/result.hpp"

namespace qosnp {

using BookingId = std::uint64_t;

struct Booking {
  BookingId id = 0;
  std::int64_t rate_bps = 0;
  double start_s = 0.0;
  double end_s = 0.0;
};

class CapacityCalendar {
 public:
  explicit CapacityCalendar(std::int64_t capacity_bps) : capacity_(capacity_bps) {}

  std::int64_t capacity() const { return capacity_; }
  std::size_t booking_count() const { return bookings_.size(); }

  /// Peak booked rate over [start, end).
  std::int64_t peak_usage(double start_s, double end_s) const;
  /// Booked rate at one instant.
  std::int64_t usage_at(double t_s) const { return peak_usage(t_s, t_s); }

  /// Would `rate` fit throughout [start, end)?
  bool fits(std::int64_t rate_bps, double start_s, double end_s) const {
    return rate_bps > 0 && start_s < end_s &&
           peak_usage(start_s, end_s) + rate_bps <= capacity_;
  }

  /// Reserve `rate` over [start, end).
  Result<BookingId> book(std::int64_t rate_bps, double start_s, double end_s);
  bool cancel(BookingId id);

  /// Earliest start time >= `not_before` at which `rate` fits for
  /// `duration`, searching up to `horizon` (absolute). Candidate start
  /// times are `not_before` and the end of each existing booking — usage
  /// can only drop at those instants.
  std::optional<double> earliest_fit(std::int64_t rate_bps, double duration_s,
                                     double not_before_s, double horizon_s) const;

  /// Drop bookings that ended before `t` (periodic housekeeping).
  void trim(double t_s);

 private:
  std::int64_t capacity_;
  std::map<BookingId, Booking> bookings_;
  BookingId next_id_ = 1;
};

}  // namespace qosnp
