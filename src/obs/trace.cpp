#include "obs/trace.hpp"

#include <cmath>
#include <cstdio>

namespace qosnp {

std::string_view to_string(Stage stage) {
  switch (stage) {
    case Stage::kQueueWait: return "queue-wait";
    case Stage::kPlanCache: return "plan-cache";
    case Stage::kLocalCheck: return "local-check";
    case Stage::kCompatibility: return "compatibility";
    case Stage::kEnumeration: return "enumeration";
    case Stage::kCommitWalk: return "commit-walk";
    case Stage::kCommitAttempt: return "commit-attempt";
    case Stage::kAdmission: return "admission";
    case Stage::kPreemption: return "preemption";
    case Stage::kUpgrade: return "upgrade";
  }
  return "?";
}

std::string_view Span::attr(std::string_view key) const {
  for (const SpanAttr& a : attrs) {
    if (a.key == key) return a.value;
  }
  return {};
}

bool Span::has_attr(std::string_view key) const {
  for (const SpanAttr& a : attrs) {
    if (a.key == key) return true;
  }
  return false;
}

SpanId NegotiationTrace::begin_span(Stage stage, SpanId parent) {
  if (spans_.capacity() == 0) spans_.reserve(8);  // the common full pipeline
  Span span;
  span.stage = stage;
  span.parent = parent;
  span.start_ms = now_ms();
  spans_.push_back(std::move(span));
  return static_cast<SpanId>(spans_.size() - 1);
}

void NegotiationTrace::end_span(SpanId id) {
  if (id >= spans_.size()) return;
  Span& span = spans_[id];
  if (!span.closed()) span.end_ms = now_ms();
}

void NegotiationTrace::annotate(SpanId id, std::string key, std::string value) {
  if (id >= spans_.size()) return;
  spans_[id].attrs.push_back({std::move(key), std::move(value)});
}

namespace {

// snprintf, not ostringstream: numeric annotations sit on the traced hot
// path, and a stream construction per attribute costs more than the whole
// span it decorates.
std::string format_double(double value) {
  char buf[32];
  const int n = std::snprintf(buf, sizeof buf, "%g", value);
  return std::string(buf, n > 0 ? static_cast<std::size_t>(n) : 0);
}

}  // namespace

void NegotiationTrace::annotate(SpanId id, std::string key, double value) {
  annotate(id, std::move(key), format_double(value));
}

void NegotiationTrace::annotate(SpanId id, std::string key, std::uint64_t value) {
  annotate(id, std::move(key), std::to_string(value));
}

std::size_t NegotiationTrace::count(Stage stage) const {
  std::size_t n = 0;
  for (const Span& s : spans_) {
    if (s.stage == stage) ++n;
  }
  return n;
}

const Span* NegotiationTrace::find(Stage stage) const {
  for (const Span& s : spans_) {
    if (s.stage == stage) return &s;
  }
  return nullptr;
}

namespace {

void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_json_number(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  out += format_double(v);
}

}  // namespace

std::string NegotiationTrace::to_json() const {
  std::string out;
  out.reserve(128 + spans_.size() * 96);
  out += "{\"request_id\":" + std::to_string(request_id_);
  out += ",\"verdict\":";
  append_json_string(out, verdict_);
  out += ",\"shed\":";
  append_json_string(out, shed_);
  out += ",\"spans\":[";
  for (std::size_t i = 0; i < spans_.size(); ++i) {
    const Span& s = spans_[i];
    if (i > 0) out += ',';
    out += "{\"stage\":";
    append_json_string(out, to_string(s.stage));
    out += ",\"parent\":";
    out += s.parent == kNoSpan ? "-1" : std::to_string(s.parent);
    out += ",\"start_ms\":";
    append_json_number(out, s.start_ms);
    out += ",\"end_ms\":";
    append_json_number(out, s.end_ms);
    if (!s.attrs.empty()) {
      out += ",\"attrs\":{";
      for (std::size_t a = 0; a < s.attrs.size(); ++a) {
        if (a > 0) out += ',';
        append_json_string(out, s.attrs[a].key);
        out += ':';
        append_json_string(out, s.attrs[a].value);
      }
      out += '}';
    }
    out += '}';
  }
  out += "]}";
  return out;
}

}  // namespace qosnp
