#include "obs/metrics.hpp"

#include <algorithm>
#include <sstream>

namespace qosnp {

namespace {

bool same_labels(const MetricLabels& a, const MetricLabels& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].first != b[i].first || a[i].second != b[i].second) return false;
  }
  return true;
}

/// `name{key="value",...}` — the exposition sample identity.
std::string sample_name(const std::string& name, const MetricLabels& labels) {
  if (labels.empty()) return name;
  std::string out = name + "{";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ',';
    out += labels[i].first;
    out += "=\"";
    for (char c : labels[i].second) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    out += '"';
  }
  out += '}';
  return out;
}

std::string format_value(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

}  // namespace

MetricsRegistry::Metric& MetricsRegistry::find_or_add(Kind kind, const std::string& name,
                                                      MetricLabels labels,
                                                      const std::string& help) {
  std::lock_guard lk(mu_);
  for (const auto& m : metrics_) {
    if (m->kind == kind && m->name == name && same_labels(m->labels, labels)) return *m;
  }
  auto metric = std::make_unique<Metric>();
  metric->kind = kind;
  metric->name = name;
  metric->labels = std::move(labels);
  metric->help = help;
  switch (kind) {
    case Kind::kCounter: metric->counter = std::make_unique<Counter>(); break;
    case Kind::kGauge: metric->gauge = std::make_unique<Gauge>(); break;
    case Kind::kHistogram: metric->histogram = std::make_unique<HistogramMetric>(); break;
  }
  metrics_.push_back(std::move(metric));
  return *metrics_.back();
}

const MetricsRegistry::Metric* MetricsRegistry::find(Kind kind, const std::string& name,
                                                     const MetricLabels& labels) const {
  std::lock_guard lk(mu_);
  for (const auto& m : metrics_) {
    if (m->kind == kind && m->name == name && same_labels(m->labels, labels)) return m.get();
  }
  return nullptr;
}

Counter& MetricsRegistry::counter(const std::string& name, MetricLabels labels,
                                  const std::string& help) {
  return *find_or_add(Kind::kCounter, name, std::move(labels), help).counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name, MetricLabels labels,
                              const std::string& help) {
  return *find_or_add(Kind::kGauge, name, std::move(labels), help).gauge;
}

HistogramMetric& MetricsRegistry::histogram(const std::string& name, MetricLabels labels,
                                            const std::string& help) {
  return *find_or_add(Kind::kHistogram, name, std::move(labels), help).histogram;
}

std::uint64_t MetricsRegistry::counter_value(const std::string& name,
                                             const MetricLabels& labels) const {
  const Metric* m = find(Kind::kCounter, name, labels);
  return m != nullptr ? m->counter->value() : 0;
}

std::int64_t MetricsRegistry::gauge_value(const std::string& name,
                                          const MetricLabels& labels) const {
  const Metric* m = find(Kind::kGauge, name, labels);
  return m != nullptr ? m->gauge->value() : 0;
}

std::string MetricsRegistry::expose() const {
  // Snapshot the metric list under the lock; values are read atomically (or
  // merged per shard) afterwards so exposition never blocks recording long.
  std::vector<const Metric*> snapshot;
  {
    std::lock_guard lk(mu_);
    snapshot.reserve(metrics_.size());
    for (const auto& m : metrics_) snapshot.push_back(m.get());
  }

  std::string out;
  std::string last_family;
  for (const Metric* m : snapshot) {
    if (m->name != last_family) {
      last_family = m->name;
      if (!m->help.empty()) out += "# HELP " + m->name + " " + m->help + "\n";
      switch (m->kind) {
        case Kind::kCounter: out += "# TYPE " + m->name + " counter\n"; break;
        case Kind::kGauge: out += "# TYPE " + m->name + " gauge\n"; break;
        case Kind::kHistogram: out += "# TYPE " + m->name + " summary\n"; break;
      }
    }
    switch (m->kind) {
      case Kind::kCounter:
        out += sample_name(m->name, m->labels) + " " + std::to_string(m->counter->value()) + "\n";
        break;
      case Kind::kGauge:
        out += sample_name(m->name, m->labels) + " " + std::to_string(m->gauge->value()) + "\n";
        break;
      case Kind::kHistogram: {
        const LatencyHistogram h = m->histogram->merged();
        for (const double q : {0.50, 0.95, 0.99}) {
          MetricLabels labels = m->labels;
          labels.emplace_back("quantile", format_value(q));
          out += sample_name(m->name, labels) + " " + format_value(h.quantile_ms(q)) + "\n";
        }
        out += sample_name(m->name + "_sum", m->labels) + " " + format_value(h.sum_ms()) + "\n";
        out += sample_name(m->name + "_count", m->labels) + " " + std::to_string(h.count()) + "\n";
        break;
      }
    }
  }
  return out;
}

}  // namespace qosnp
