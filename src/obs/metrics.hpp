// Lock-cheap metrics registry for the negotiation service. Three metric
// kinds, all safe for concurrent writers:
//
//   Counter         : monotone, sharded across cache-line-padded atomic
//                     cells — each thread sticks to one shard, so the hot
//                     increment is an uncontended relaxed fetch_add.
//   Gauge           : a single atomic value (set/add/sub/update_max).
//   HistogramMetric : sharded LatencyHistogram (obs/histogram.hpp);
//                     record() takes one shard's mutex, snapshots merge.
//
// Handles returned by the registry have stable addresses for the registry's
// lifetime; callers register once (start-up) and keep the pointer — the
// registry mutex guards registration and exposition only, never the
// recording path. expose() renders a Prometheus-style text snapshot.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/histogram.hpp"

namespace qosnp {

/// Label set of one metric sample, e.g. {{"verdict", "SUCCEEDED"}}.
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

class Counter {
 public:
  static constexpr std::size_t kShards = 16;

  void add(std::uint64_t delta = 1) {
    shards_[shard_index()].n.fetch_add(delta, std::memory_order_relaxed);
  }
  void inc() { add(1); }

  std::uint64_t value() const {
    std::uint64_t total = 0;
    for (const Shard& s : shards_) total += s.n.load(std::memory_order_relaxed);
    return total;
  }

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> n{0};
  };

  static std::size_t shard_index() {
    // Each thread claims a shard round-robin on first use; increments from
    // one thread never contend with another's (modulo kShards collisions).
    static std::atomic<std::size_t> next{0};
    thread_local const std::size_t index = next.fetch_add(1, std::memory_order_relaxed) % kShards;
    return index;
  }

  std::array<Shard, kShards> shards_{};
};

class Gauge {
 public:
  void set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d = 1) { value_.fetch_add(d, std::memory_order_relaxed); }
  void sub(std::int64_t d = 1) { value_.fetch_sub(d, std::memory_order_relaxed); }
  /// Raise the gauge to `v` if it is below (high-water marks).
  void update_max(std::int64_t v) {
    std::int64_t cur = value_.load(std::memory_order_relaxed);
    while (v > cur && !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Thread-safe wrapper over LatencyHistogram: writers spread over a few
/// mutex-guarded shards (uncontended in the common case), readers merge.
class HistogramMetric {
 public:
  static constexpr std::size_t kShards = 8;

  void record(double ms) {
    Shard& s = shards_[shard_index()];
    std::lock_guard lk(s.mu);
    s.histogram.record(ms);
  }

  LatencyHistogram merged() const {
    LatencyHistogram out;
    for (const Shard& s : shards_) {
      std::lock_guard lk(s.mu);
      out.merge(s.histogram);
    }
    return out;
  }

 private:
  struct alignas(64) Shard {
    mutable std::mutex mu;
    LatencyHistogram histogram;
  };

  static std::size_t shard_index() {
    static std::atomic<std::size_t> next{0};
    thread_local const std::size_t index = next.fetch_add(1, std::memory_order_relaxed) % kShards;
    return index;
  }

  std::array<Shard, kShards> shards_{};
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Register (or look up) a metric. The same (name, labels) always returns
  /// the same handle; `help` is kept from the first registration.
  Counter& counter(const std::string& name, MetricLabels labels = {}, const std::string& help = "");
  Gauge& gauge(const std::string& name, MetricLabels labels = {}, const std::string& help = "");
  HistogramMetric& histogram(const std::string& name, MetricLabels labels = {},
                             const std::string& help = "");

  /// Current value of a counter/gauge sample; 0 when never registered.
  std::uint64_t counter_value(const std::string& name, const MetricLabels& labels = {}) const;
  std::int64_t gauge_value(const std::string& name, const MetricLabels& labels = {}) const;

  /// Prometheus-style text exposition of every registered metric. Counters
  /// and gauges expose their value; histograms expose _count, _sum and
  /// p50/p95/p99 quantile samples (summary form).
  std::string expose() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };

  struct Metric {
    Kind kind;
    std::string name;
    MetricLabels labels;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<HistogramMetric> histogram;
  };

  Metric& find_or_add(Kind kind, const std::string& name, MetricLabels labels,
                      const std::string& help);
  const Metric* find(Kind kind, const std::string& name, const MetricLabels& labels) const;

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Metric>> metrics_;  ///< registration order
};

}  // namespace qosnp
