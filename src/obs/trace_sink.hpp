// Where finished traces go. The service hands every resolved request's
// trace to one sink; sinks must be thread-safe (workers record
// concurrently). Two implementations:
//
//   RingBufferSink : keeps the last N traces in memory, queryable from
//                    tests, benches and debugging sessions. Bounded by
//                    construction — it can run in production forever.
//   JsonlFileSink  : appends one JSON line per trace to a file, for
//                    offline analysis of a whole run.
#pragma once

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace qosnp {

class TraceSink {
 public:
  virtual ~TraceSink() = default;
  /// Take ownership of one finished trace. Called by service workers after
  /// the response is finalised; must be safe to call concurrently.
  virtual void record(std::shared_ptr<const NegotiationTrace> trace) = 0;
};

/// Last-N ring of traces. record() is a mutex-guarded pointer rotation —
/// cheap enough for the hot path (the trace itself was built lock-free).
class RingBufferSink final : public TraceSink {
 public:
  explicit RingBufferSink(std::size_t capacity);

  void record(std::shared_ptr<const NegotiationTrace> trace) override;

  std::size_t capacity() const { return capacity_; }
  /// Traces currently held (never exceeds capacity()).
  std::size_t size() const;
  /// Traces ever recorded (size() plus evictions).
  std::uint64_t total_recorded() const;

  /// The held traces, oldest first.
  std::vector<std::shared_ptr<const NegotiationTrace>> snapshot() const;
  /// Most recent trace for a request id, or nullptr.
  std::shared_ptr<const NegotiationTrace> find(std::uint64_t request_id) const;

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::vector<std::shared_ptr<const NegotiationTrace>> ring_;
  std::size_t next_ = 0;       ///< slot the next record lands in
  std::uint64_t recorded_ = 0;
};

/// One JSON line per trace, appended to `path`. Failures to open are
/// reported through ok(), not exceptions — tracing must never take the
/// service down.
class JsonlFileSink final : public TraceSink {
 public:
  explicit JsonlFileSink(const std::string& path);

  bool ok() const { return out_.is_open(); }
  std::uint64_t written() const;

  void record(std::shared_ptr<const NegotiationTrace> trace) override;
  void flush();

 private:
  mutable std::mutex mu_;
  std::ofstream out_;
  std::uint64_t written_ = 0;
};

}  // namespace qosnp
