#include "obs/trace_sink.hpp"

#include <algorithm>

namespace qosnp {

RingBufferSink::RingBufferSink(std::size_t capacity) : capacity_(std::max<std::size_t>(1, capacity)) {
  ring_.reserve(capacity_);
}

void RingBufferSink::record(std::shared_ptr<const NegotiationTrace> trace) {
  if (trace == nullptr) return;
  std::lock_guard lk(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(trace));
  } else {
    ring_[next_] = std::move(trace);
  }
  next_ = (next_ + 1) % capacity_;
  ++recorded_;
}

std::size_t RingBufferSink::size() const {
  std::lock_guard lk(mu_);
  return ring_.size();
}

std::uint64_t RingBufferSink::total_recorded() const {
  std::lock_guard lk(mu_);
  return recorded_;
}

std::vector<std::shared_ptr<const NegotiationTrace>> RingBufferSink::snapshot() const {
  std::lock_guard lk(mu_);
  std::vector<std::shared_ptr<const NegotiationTrace>> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;
  } else {
    // The ring is full: next_ is the oldest slot.
    for (std::size_t i = 0; i < ring_.size(); ++i) {
      out.push_back(ring_[(next_ + i) % capacity_]);
    }
  }
  return out;
}

std::shared_ptr<const NegotiationTrace> RingBufferSink::find(std::uint64_t request_id) const {
  std::lock_guard lk(mu_);
  // Newest first: walk backwards from the most recently written slot.
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    const std::size_t slot = (next_ + capacity_ - 1 - i) % capacity_;
    if (slot < ring_.size() && ring_[slot] != nullptr &&
        ring_[slot]->request_id() == request_id) {
      return ring_[slot];
    }
  }
  return nullptr;
}

JsonlFileSink::JsonlFileSink(const std::string& path) : out_(path, std::ios::out | std::ios::trunc) {}

std::uint64_t JsonlFileSink::written() const {
  std::lock_guard lk(mu_);
  return written_;
}

void JsonlFileSink::record(std::shared_ptr<const NegotiationTrace> trace) {
  if (trace == nullptr) return;
  // Serialise outside the lock; only the write itself is exclusive.
  const std::string line = trace->to_json();
  std::lock_guard lk(mu_);
  if (!out_.is_open()) return;
  out_ << line << '\n';
  ++written_;
}

void JsonlFileSink::flush() {
  std::lock_guard lk(mu_);
  if (out_.is_open()) out_.flush();
}

}  // namespace qosnp
