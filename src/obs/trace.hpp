// Per-request negotiation traces: one span per pipeline stage a request
// actually executed, with monotonic timestamps relative to the trace's
// birth. The span taxonomy maps onto the paper's procedure — queue wait
// (service front-end), Step 1 local check, Step 2 compatibility, Steps 3-4
// enumeration/classification, Step 5 commitment walk with one child span
// per offer-level commit attempt (refusal component, attempt count and
// backoff history in the attributes), Step 6 admission.
//
// Tracing is carried through the pipeline by an explicit TraceContext value
// (no thread-locals in the hot path): an inactive context makes every
// operation a no-op, so the untraced path costs two pointer-sized copies
// per call and nothing else. A trace is built by exactly one worker at a
// time and is immutable once handed to a TraceSink, so the trace itself
// needs no locking.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace qosnp {

/// Pipeline stages a span can cover, in pipeline order. kCommitAttempt is
/// the only stage that may appear more than once per trace (one span per
/// offer the Step-5 walk tried).
enum class Stage : std::uint8_t {
  kQueueWait,      ///< service queue: accepted -> worker pickup (or shed)
  kPlanCache,      ///< plan-cache key + lookup (hit=true/false attribute)
  kLocalCheck,     ///< Step 1: static local negotiation
  kCompatibility,  ///< Step 2: static compatibility checking
  kEnumeration,    ///< Steps 3-4: offer-space build + classification
  kCommitWalk,     ///< Step 5: the best-to-worst commitment walk
  kCommitAttempt,  ///< one offer-level commit (child of kCommitWalk)
  kAdmission,      ///< Step 6: session open + confirmation
  kPreemption,     ///< policy: degrading/releasing victims for an admit
  kUpgrade,        ///< policy: promoting a session to a better offer
};

inline constexpr std::size_t kStageCount = 10;

std::string_view to_string(Stage stage);

using SpanId = std::uint32_t;
inline constexpr SpanId kNoSpan = 0xffffffffu;

struct SpanAttr {
  std::string key;
  std::string value;
};

struct Span {
  Stage stage = Stage::kQueueWait;
  SpanId parent = kNoSpan;
  double start_ms = 0.0;
  double end_ms = -1.0;  ///< -1 while the span is open
  std::vector<SpanAttr> attrs;

  bool closed() const { return end_ms >= 0.0; }
  /// First value recorded under `key`, or an empty view.
  std::string_view attr(std::string_view key) const;
  bool has_attr(std::string_view key) const;
};

/// The trace of one negotiation request. Spans are appended in begin order;
/// timestamps come from a steady clock and are relative to construction, so
/// they are monotone within the trace by construction.
class NegotiationTrace {
 public:
  explicit NegotiationTrace(std::uint64_t request_id = 0)
      : request_id_(request_id), birth_(std::chrono::steady_clock::now()) {}

  std::uint64_t request_id() const { return request_id_; }
  void set_request_id(std::uint64_t id) { request_id_ = id; }

  /// Final figures stamped by whoever resolves the request (the service),
  /// so a sink's stored traces are self-describing.
  void set_verdict(std::string verdict) { verdict_ = std::move(verdict); }
  const std::string& verdict() const { return verdict_; }
  void set_shed(std::string shed) { shed_ = std::move(shed); }
  const std::string& shed() const { return shed_; }

  /// Milliseconds since the trace was created (monotonic).
  double now_ms() const {
    return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - birth_)
        .count();
  }

  SpanId begin_span(Stage stage, SpanId parent = kNoSpan);
  void end_span(SpanId id);
  void annotate(SpanId id, std::string key, std::string value);
  void annotate(SpanId id, std::string key, double value);
  void annotate(SpanId id, std::string key, std::uint64_t value);

  const std::vector<Span>& spans() const { return spans_; }
  /// Number of spans of one stage.
  std::size_t count(Stage stage) const;
  /// First span of a stage, or nullptr.
  const Span* find(Stage stage) const;

  /// Single-line JSON rendering (the JSONL file sink writes one per trace).
  std::string to_json() const;

 private:
  std::uint64_t request_id_ = 0;
  std::string verdict_;
  std::string shed_;
  std::chrono::steady_clock::time_point birth_;
  std::vector<Span> spans_;
};

/// The explicit context value threaded through QoSManager, the resource
/// committer, the offer walk and the service workers. Copy it freely; an
/// inactive (default) context turns every span/annotation into a no-op.
class TraceContext {
 public:
  TraceContext() = default;
  explicit TraceContext(NegotiationTrace* trace, SpanId parent = kNoSpan)
      : trace_(trace), parent_(parent) {}

  bool active() const { return trace_ != nullptr; }
  NegotiationTrace* trace() const { return trace_; }
  SpanId parent() const { return parent_; }

  /// Annotate the span this context is parented at (no-op when inactive or
  /// unparented). Lets a callee attach findings — e.g. the committer's
  /// refusal component — to its caller's span without a side channel.
  void annotate(std::string key, std::string value) const {
    if (trace_ != nullptr && parent_ != kNoSpan) trace_->annotate(parent_, std::move(key), std::move(value));
  }
  void annotate(std::string key, double value) const {
    if (trace_ != nullptr && parent_ != kNoSpan) trace_->annotate(parent_, std::move(key), value);
  }
  void annotate(std::string key, std::uint64_t value) const {
    if (trace_ != nullptr && parent_ != kNoSpan) trace_->annotate(parent_, std::move(key), value);
  }

 private:
  NegotiationTrace* trace_ = nullptr;
  SpanId parent_ = kNoSpan;
};

/// RAII span: begins on construction (no-op on an inactive context), ends on
/// destruction or an explicit end(). context() yields the child context for
/// work nested under this span.
class ScopedSpan {
 public:
  ScopedSpan(const TraceContext& ctx, Stage stage) : trace_(ctx.trace()) {
    if (trace_ != nullptr) id_ = trace_->begin_span(stage, ctx.parent());
  }
  ~ScopedSpan() { end(); }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  bool active() const { return trace_ != nullptr; }
  SpanId id() const { return id_; }
  TraceContext context() const { return TraceContext(trace_, id_); }

  void annotate(std::string key, std::string value) {
    if (trace_ != nullptr) trace_->annotate(id_, std::move(key), std::move(value));
  }
  void annotate(std::string key, double value) {
    if (trace_ != nullptr) trace_->annotate(id_, std::move(key), value);
  }
  void annotate(std::string key, std::uint64_t value) {
    if (trace_ != nullptr) trace_->annotate(id_, std::move(key), value);
  }

  void end() {
    if (trace_ != nullptr && !ended_) {
      trace_->end_span(id_);
      ended_ = true;
    }
  }

 private:
  NegotiationTrace* trace_ = nullptr;
  SpanId id_ = kNoSpan;
  bool ended_ = false;
};

}  // namespace qosnp
