// Log-bucketed latency histogram for the service-level percentiles
// (p50/p95/p99 request latency). Single-writer by design: every worker
// records into its own histogram and the service merges them at report
// time, so the hot path needs no synchronisation.
#pragma once

#include <algorithm>
#include <array>
#include <cmath>
#include <cstddef>
#include <cstdint>

namespace qosnp {

class LatencyHistogram {
 public:
  static constexpr std::size_t kBucketsPerDecade = 20;
  static constexpr double kMinMs = 1e-3;  ///< first bucket upper bound: 1 µs
  static constexpr std::size_t kDecades = 9;  ///< covers 1 µs .. 1000 s
  static constexpr std::size_t kBuckets = kBucketsPerDecade * kDecades;

  void record(double ms) {
    ms = std::max(ms, 0.0);
    ++count_;
    sum_ms_ += ms;
    max_ms_ = std::max(max_ms_, ms);
    ++buckets_[bucket_index(ms)];
  }

  void merge(const LatencyHistogram& other) {
    for (std::size_t i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
    count_ += other.count_;
    sum_ms_ += other.sum_ms_;
    max_ms_ = std::max(max_ms_, other.max_ms_);
  }

  std::uint64_t count() const { return count_; }
  double mean_ms() const { return count_ == 0 ? 0.0 : sum_ms_ / static_cast<double>(count_); }
  double max_ms() const { return max_ms_; }
  double sum_ms() const { return sum_ms_; }

  /// Latency at quantile p in [0, 1]: the upper bound of the bucket holding
  /// the p-th sample (conservative — never under-reports), clipped to the
  /// exact observed maximum.
  double quantile_ms(double p) const {
    if (count_ == 0) return 0.0;
    p = std::clamp(p, 0.0, 1.0);
    const auto target =
        std::max<std::uint64_t>(1, static_cast<std::uint64_t>(std::ceil(p * static_cast<double>(count_))));
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
      seen += buckets_[i];
      if (seen >= target) return std::min(bucket_upper_ms(i), max_ms_);
    }
    return max_ms_;
  }

 private:
  static std::size_t bucket_index(double ms) {
    if (ms <= kMinMs) return 0;
    const double pos = std::log10(ms / kMinMs) * static_cast<double>(kBucketsPerDecade);
    const auto i = static_cast<std::size_t>(pos) + 1;  // bucket 0 is (0, kMinMs]
    return std::min(i, kBuckets - 1);
  }

  static double bucket_upper_ms(std::size_t i) {
    return kMinMs * std::pow(10.0, static_cast<double>(i) / static_cast<double>(kBucketsPerDecade));
  }

  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  double sum_ms_ = 0.0;
  double max_ms_ = 0.0;
};

}  // namespace qosnp
