// qosnp_net_* metric bundle: the network front-end's observability surface,
// registered into the same MetricsRegistry the service records into so one
// expose() snapshot covers the whole process (socket ingress included — the
// service's qosnp_queue_wait_ms span starts when the decoded request is
// accepted into the queue, i.e. queue wait now begins at socket ingress).
//
// The counters are chosen to close conservation laws at drain (no open
// connections, no in-flight requests):
//
//   connections_opened                == sum(connections_closed[reason])
//   requests_rx                      == frames_tx[RESULT] + orphaned_results
//   frames_tx[ERROR]                 == decode_errors + shed_overload
//   frames_rx[PING]                  == frames_tx[PONG]
//
// balanced() checks exactly these; tests/netio_test asserts it after every
// loopback scenario, malformed-input runs included. This header depends
// only on obs (frame-type indices mirror wire::FrameType by value).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "obs/metrics.hpp"

namespace qosnp {

/// Why the server closed a connection (label of
/// qosnp_net_connections_closed_total).
enum class NetCloseReason : std::uint8_t {
  kClientClose = 0,    ///< peer shut the socket down
  kIdleTimeout = 1,    ///< no traffic and nothing in flight for too long
  kProtocolError = 2,  ///< framing violated; stream no longer trustworthy
  kOverload = 3,       ///< refused at the max-connection limit
  kServerStop = 4,     ///< server shut down with the connection open
};
inline constexpr std::size_t kNetCloseReasonCount = 5;

inline std::string_view to_string(NetCloseReason reason) {
  switch (reason) {
    case NetCloseReason::kClientClose: return "client-close";
    case NetCloseReason::kIdleTimeout: return "idle-timeout";
    case NetCloseReason::kProtocolError: return "protocol-error";
    case NetCloseReason::kOverload: return "overload";
    case NetCloseReason::kServerStop: return "server-stop";
  }
  return "?";
}

/// Frame-type label values, index-compatible with wire::FrameType.
inline constexpr std::size_t kNetFrameTypeCount = 5;
inline constexpr std::array<std::string_view, kNetFrameTypeCount> kNetFrameTypeNames{
    "request", "result", "error", "ping", "pong"};

struct NetMetrics {
  explicit NetMetrics(MetricsRegistry& registry) {
    connections_opened = &registry.counter("qosnp_net_connections_opened_total", {},
                                           "TCP connections accepted by the wire server");
    for (std::size_t i = 0; i < kNetCloseReasonCount; ++i) {
      connections_closed[i] = &registry.counter(
          "qosnp_net_connections_closed_total",
          {{"reason", std::string(to_string(static_cast<NetCloseReason>(i)))}},
          "Connections closed, by reason");
    }
    for (std::size_t i = 0; i < kNetFrameTypeCount; ++i) {
      frames_rx[i] =
          &registry.counter("qosnp_net_frames_rx_total",
                            {{"type", std::string(kNetFrameTypeNames[i])}},
                            "Well-formed frames received, by type");
      frames_tx[i] =
          &registry.counter("qosnp_net_frames_tx_total",
                            {{"type", std::string(kNetFrameTypeNames[i])}},
                            "Frames committed to send, by type");
    }
    bytes_rx = &registry.counter("qosnp_net_bytes_rx_total", {}, "Bytes read off sockets");
    bytes_tx = &registry.counter("qosnp_net_bytes_tx_total", {}, "Bytes written to sockets");
    decode_errors = &registry.counter(
        "qosnp_net_decode_errors_total", {},
        "Protocol violations on receive (framing, CRC, payload); each answered "
        "with exactly one ERROR frame");
    requests_rx = &registry.counter("qosnp_net_requests_rx_total", {},
                                    "REQUEST frames decoded into a NegotiationRequest");
    orphaned_results = &registry.counter(
        "qosnp_net_orphaned_results_total", {},
        "Results completed after their connection was gone (response dropped)");
    shed_overload = &registry.counter("qosnp_net_shed_total",
                                      {{"reason", "max-connections"}},
                                      "Wire-level sheds, answered FAILEDTRYLATER-style");
    shed_frame_too_large = &registry.counter("qosnp_net_shed_total",
                                             {{"reason", "frame-too-large"}},
                                             "Wire-level sheds, answered FAILEDTRYLATER-style");
    connections_active =
        &registry.gauge("qosnp_net_connections_active", {}, "Connections currently open");
    requests_inflight = &registry.gauge("qosnp_net_requests_inflight", {},
                                        "Decoded requests dispatched but not yet answered");
  }

  Counter* connections_opened;
  std::array<Counter*, kNetCloseReasonCount> connections_closed;
  std::array<Counter*, kNetFrameTypeCount> frames_rx;
  std::array<Counter*, kNetFrameTypeCount> frames_tx;
  Counter* bytes_rx;
  Counter* bytes_tx;
  Counter* decode_errors;
  Counter* requests_rx;
  Counter* orphaned_results;
  Counter* shed_overload;
  Counter* shed_frame_too_large;
  Gauge* connections_active;
  Gauge* requests_inflight;

  std::uint64_t closed_total() const {
    std::uint64_t total = 0;
    for (const Counter* c : connections_closed) total += c->value();
    return total;
  }

  /// The drain-time conservation laws (header comment); exact once the
  /// server is idle (no open connections, no in-flight requests).
  bool balanced() const {
    const std::size_t result = 1, error = 2, ping = 3, pong = 4;
    return connections_active->value() == 0 && requests_inflight->value() == 0 &&
           connections_opened->value() == closed_total() &&
           requests_rx->value() == frames_tx[result]->value() + orphaned_results->value() &&
           frames_tx[error]->value() == decode_errors->value() + shed_overload->value() &&
           frames_rx[ping]->value() == frames_tx[pong]->value();
  }
};

}  // namespace qosnp
