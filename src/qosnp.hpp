// qosnp — umbrella header.
//
// A C++20 reproduction of Hafid, Bochmann & Kerhervé, "A Quality of Service
// Negotiation Procedure for Distributed Multimedia Presentational
// Applications" (HPDC-5, 1996), together with every substrate the procedure
// needs (simulated media file servers, a reservation-capable network,
// client machine models, session management) and the framework extensions
// the paper cites (future reservations, hierarchical multi-domain
// negotiation) plus a block-level delivery validator.
//
// Typical entry points:
//   Catalog               — the multimedia documents and their variants
//   UserProfile           — desired / worst-acceptable QoS, cost, importance
//   QoSManager::negotiate — the five-step negotiation procedure
//   SessionManager        — confirmation (Step 6), playout, adaptation,
//                           renegotiation
//   run_experiment        — the discrete-event evaluation harness
//
// See README.md for a guided tour and DESIGN.md for the paper mapping.
#pragma once

#include "advance/calendar.hpp"      // IWYU pragma: export
#include "advance/planner.hpp"       // IWYU pragma: export
#include "baseline/negotiators.hpp"  // IWYU pragma: export
#include "client/client_machine.hpp" // IWYU pragma: export
#include "core/classify.hpp"         // IWYU pragma: export
#include "core/commit.hpp"           // IWYU pragma: export
#include "core/enumerate.hpp"        // IWYU pragma: export
#include "core/negotiation_client.hpp"  // IWYU pragma: export
#include "core/offer.hpp"            // IWYU pragma: export
#include "core/paper_example.hpp"    // IWYU pragma: export
#include "core/qos_manager.hpp"      // IWYU pragma: export
#include "core/report.hpp"           // IWYU pragma: export
#include "cost/cost_model.hpp"       // IWYU pragma: export
#include "delivery/playout.hpp"      // IWYU pragma: export
#include "delivery/vbr_trace.hpp"    // IWYU pragma: export
#include "document/catalog.hpp"      // IWYU pragma: export
#include "document/corpus.hpp"       // IWYU pragma: export
#include "document/model.hpp"        // IWYU pragma: export
#include "document/serialize.hpp"    // IWYU pragma: export
#include "domain/multi_domain.hpp"   // IWYU pragma: export
#include "fault/fault_injector.hpp"  // IWYU pragma: export
#include "fault/fault_plan.hpp"      // IWYU pragma: export
#include "media/qos.hpp"             // IWYU pragma: export
#include "media/types.hpp"           // IWYU pragma: export
#include "net/topology.hpp"          // IWYU pragma: export
#include "net/transport.hpp"         // IWYU pragma: export
#include "profile/importance.hpp"    // IWYU pragma: export
#include "profile/profile_manager.hpp"  // IWYU pragma: export
#include "profile/profiles.hpp"      // IWYU pragma: export
#include "profile/serialize.hpp"     // IWYU pragma: export
#include "qosmap/mapping.hpp"        // IWYU pragma: export
#include "server/media_server.hpp"   // IWYU pragma: export
#include "session/session.hpp"       // IWYU pragma: export
#include "shard/directory.hpp"       // IWYU pragma: export
#include "sim/experiment.hpp"        // IWYU pragma: export
#include "sim/metrics.hpp"           // IWYU pragma: export
#include "sim/replicate.hpp"         // IWYU pragma: export
#include "util/money.hpp"            // IWYU pragma: export
#include "util/result.hpp"           // IWYU pragma: export
#include "util/rng.hpp"              // IWYU pragma: export
#include "wire/codec.hpp"            // IWYU pragma: export
#include "wire/crc32c.hpp"           // IWYU pragma: export
#include "wire/frame.hpp"            // IWYU pragma: export
