#include "cost/cost_model.hpp"

#include <algorithm>
#include <cmath>

namespace qosnp {

CostTable::CostTable(std::vector<ThroughputClass> classes) : classes_(std::move(classes)) {}

std::size_t CostTable::classify(std::int64_t bps) const {
  for (std::size_t i = 0; i < classes_.size(); ++i) {
    if (bps <= classes_[i].upper_bps) return i;
  }
  return classes_.empty() ? 0 : classes_.size() - 1;
}

Money CostTable::cost_per_second(std::int64_t bps) const {
  if (classes_.empty()) return Money{};
  return classes_[classify(bps)].cost_per_second;
}

std::vector<std::string> CostTable::validate() const {
  std::vector<std::string> problems;
  if (classes_.empty()) {
    problems.push_back("cost table has no throughput classes");
    return problems;
  }
  for (std::size_t i = 1; i < classes_.size(); ++i) {
    if (classes_[i].upper_bps <= classes_[i - 1].upper_bps) {
      problems.push_back("throughput class bounds are not strictly increasing at index " +
                         std::to_string(i));
    }
    if (classes_[i].cost_per_second < classes_[i - 1].cost_per_second) {
      problems.push_back("tariff decreases with throughput at index " + std::to_string(i));
    }
  }
  return problems;
}

CostTable CostTable::standard_network() {
  // Tariffs chosen so that a TV-quality MPEG-1 news video of a few minutes
  // lands in the low single-digit dollars, as in the paper's examples.
  return CostTable{{
      {64'000, Money::micros(500)},           // <= 64 kbit/s   : $0.0005/s
      {256'000, Money::micros(1'500)},        // <= 256 kbit/s  : $0.0015/s
      {1'000'000, Money::micros(4'000)},      // <= 1 Mbit/s    : $0.004/s
      {2'000'000, Money::micros(7'000)},      // <= 2 Mbit/s    : $0.007/s
      {4'000'000, Money::micros(12'000)},     // <= 4 Mbit/s    : $0.012/s
      {10'000'000, Money::micros(25'000)},    // <= 10 Mbit/s   : $0.025/s
      {25'000'000, Money::micros(60'000)},    // <= 25 Mbit/s   : $0.06/s
      {100'000'000, Money::micros(200'000)},  // <= 100 Mbit/s  : $0.2/s
  }};
}

CostTable CostTable::standard_server() {
  // Server access is cheaper than wide-area transport.
  return CostTable{{
      {64'000, Money::micros(200)},
      {256'000, Money::micros(600)},
      {1'000'000, Money::micros(1'500)},
      {2'000'000, Money::micros(3'000)},
      {4'000'000, Money::micros(5'000)},
      {10'000'000, Money::micros(10'000)},
      {25'000'000, Money::micros(25'000)},
      {100'000'000, Money::micros(80'000)},
  }};
}

std::int64_t CostModel::charged_bps(const StreamRequirements& req) {
  return req.avg_bit_rate_bps;
}

Money CostModel::charge(const CostTable& table, const StreamRequirements& req) const {
  const Money per_second = table.cost_per_second(charged_bps(req));
  Money total = per_second.scaled(req.duration_s);
  if (req.guarantee == GuaranteeClass::kBestEffort) {
    total = total.scaled(best_effort_discount_);
  }
  return total;
}

Money CostModel::stream_network_cost(const StreamRequirements& req) const {
  return charge(network_, req);
}

Money CostModel::stream_server_cost(const StreamRequirements& req) const {
  return charge(server_, req);
}

CostBreakdown CostModel::document_cost(Money copyright,
                                       const std::vector<StreamRequirements>& streams) const {
  CostBreakdown breakdown;
  breakdown.copyright = copyright;
  breakdown.total = copyright;
  breakdown.streams.reserve(streams.size());
  for (const StreamRequirements& req : streams) {
    CostBreakdown::PerStream per;
    per.network = stream_network_cost(req);
    per.server = stream_server_cost(req);
    breakdown.total += per.network + per.server;
    breakdown.streams.push_back(per);
  }
  return breakdown;
}

}  // namespace qosnp
