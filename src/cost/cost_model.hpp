// Cost computation (paper Sec. 7). Throughput is bucketed into a finite
// range of *throughput classes*; cost tables give the per-time-unit price of
// each class, one table for the network and one for the server. For a
// monomedia M_i of length D_i whose throughput falls in class C_i:
//   CostNet_i = CostNet_{C_i} x D_i,   CostSer_i = CostSer_{C_i} x D_i
//   CostDoc   = CostCop + sum_i (CostNet_i + CostSer_i)          (1)
// The type of guarantee also enters the price: best-effort streams are
// charged a discounted rate relative to guaranteed ones.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "qosmap/mapping.hpp"
#include "util/money.hpp"

namespace qosnp {

/// One throughput class: all rates up to `upper_bps` (exclusive lower bound
/// is the previous class's upper). `cost_per_second` is the tariff while a
/// stream of this class is active.
struct ThroughputClass {
  std::int64_t upper_bps;
  Money cost_per_second;
};

/// A finite table of throughput classes with monotone tariffs.
class CostTable {
 public:
  CostTable() = default;
  explicit CostTable(std::vector<ThroughputClass> classes);

  /// Index of the class covering `bps` (rates above the last class fall in
  /// the last class — the table must be provisioned to cover the offer
  /// space; see validate()).
  std::size_t classify(std::int64_t bps) const;
  Money cost_per_second(std::int64_t bps) const;
  std::size_t size() const { return classes_.size(); }
  const ThroughputClass& at(std::size_t i) const { return classes_[i]; }

  /// Problems: empty table, non-increasing class bounds, decreasing tariffs.
  std::vector<std::string> validate() const;

  /// Default tariffs used by the prototype benches: eight classes from
  /// 64 kbit/s to 100 Mbit/s.
  static CostTable standard_network();
  static CostTable standard_server();

 private:
  std::vector<ThroughputClass> classes_;
};

/// Cost breakdown for one document delivery.
struct CostBreakdown {
  struct PerStream {
    Money network;
    Money server;
  };
  Money copyright;
  std::vector<PerStream> streams;
  Money total;  ///< CostDoc of formula (1)
};

class CostModel {
 public:
  CostModel() : network_(CostTable::standard_network()), server_(CostTable::standard_server()) {}
  CostModel(CostTable network, CostTable server, double best_effort_discount = 0.5)
      : network_(std::move(network)), server_(std::move(server)),
        best_effort_discount_(best_effort_discount) {}

  const CostTable& network_table() const { return network_; }
  const CostTable& server_table() const { return server_; }
  double best_effort_discount() const { return best_effort_discount_; }

  /// The throughput figure a stream is charged for: the average bit rate
  /// (the paper's "main QoS parameter ... is the throughput"; the service
  /// class enters the price as a tariff factor, not as a different rate).
  static std::int64_t charged_bps(const StreamRequirements& req);

  Money stream_network_cost(const StreamRequirements& req) const;
  Money stream_server_cost(const StreamRequirements& req) const;

  /// Formula (1) over all streams of a document delivery.
  CostBreakdown document_cost(Money copyright,
                              const std::vector<StreamRequirements>& streams) const;

 private:
  Money charge(const CostTable& table, const StreamRequirements& req) const;

  CostTable network_;
  CostTable server_;
  double best_effort_discount_ = 0.5;
};

}  // namespace qosnp
