// Payload codecs of the qosnp wire protocol: the full NegotiationRequest
// surface (client machine, document id, user profile with importance
// factors, session class, cache policy, deadline) and the full
// NegotiationResult surface (verdict, refusal component attribution via the
// problems list, commit stats, chosen user offer, front-end latency fields)
// as fixed-width little-endian fields — see docs/WIRE.md for the normative
// field tables.
//
// Two things never cross the wire by design:
//  - a request's `resolved` document pointer (renegotiation holds an
//    in-process reference; encoding one is a typed kUnencodable error), and
//  - a result's offer list / commitment (they belong to the server-side
//    session; NegotiationService::submit clears them before resolving, so
//    the wire result is exactly the in-process result surface).
//
// Every decoder returns a typed WireError on malformed input (truncated
// field, out-of-range enum, over-long list, trailing bytes) — never UB,
// never a partially-filled value.
#pragma once

#include <cstdint>

#include "core/negotiation_request.hpp"
#include "core/negotiation_result.hpp"
#include "util/result.hpp"
#include "wire/frame.hpp"

namespace qosnp::wire {

// --- payload codecs -------------------------------------------------------

Result<Bytes, WireError> encode_request_payload(const NegotiationRequest& request);
Result<NegotiationRequest, WireError> decode_request_payload(const Bytes& payload);

Bytes encode_result_payload(const NegotiationResult& result);
Result<NegotiationResult, WireError> decode_result_payload(const Bytes& payload);

Bytes encode_error_payload(const WireError& error);
Result<WireError, WireError> decode_error_payload(const Bytes& payload);

// --- whole-frame conveniences ---------------------------------------------

Result<Bytes, WireError> encode_request_frame(const NegotiationRequest& request,
                                              std::uint64_t seq);
Bytes encode_result_frame(const NegotiationResult& result, std::uint64_t seq);
Bytes encode_error_frame(const WireError& error, std::uint64_t seq);
Bytes encode_ping_frame(std::uint64_t seq);
Bytes encode_pong_frame(std::uint64_t seq);

}  // namespace qosnp::wire
