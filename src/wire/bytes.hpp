// Little-endian fixed-width byte (de)serialisation primitives for the wire
// protocol. Every multi-byte integer on the wire is little-endian regardless
// of host order; doubles travel as the IEEE-754 bit pattern of their value
// (byte-exact round trip, no text formatting loss); strings and lists are
// length-prefixed with a u32 count.
//
// ByteReader is failure-latching: the first out-of-bounds or over-long read
// poisons the reader and every later read returns a zero value, so decoders
// can be written straight-line and check ok() once at the end — malformed
// input can never index outside the buffer or allocate unbounded memory
// (list counts are validated against the bytes actually remaining).
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace qosnp::wire {

using Bytes = std::vector<std::uint8_t>;

class ByteWriter {
 public:
  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v) { append_le(v); }
  void u32(std::uint32_t v) { append_le(v); }
  void u64(std::uint64_t v) { append_le(v); }
  void i32(std::int32_t v) { append_le(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { append_le(static_cast<std::uint64_t>(v)); }
  void f64(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    append_le(bits);
  }
  /// u32 byte count followed by the raw bytes.
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    out_.insert(out_.end(), s.begin(), s.end());
  }
  void raw(const std::uint8_t* data, std::size_t n) { out_.insert(out_.end(), data, data + n); }

  const Bytes& bytes() const { return out_; }
  Bytes take() { return std::move(out_); }
  std::size_t size() const { return out_.size(); }

 private:
  template <typename U>
  void append_le(U v) {
    for (std::size_t i = 0; i < sizeof(U); ++i) {
      out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }

  Bytes out_;
};

class ByteReader {
 public:
  ByteReader(const std::uint8_t* data, std::size_t size) : data_(data), size_(size) {}
  explicit ByteReader(const Bytes& bytes) : ByteReader(bytes.data(), bytes.size()) {}

  std::uint8_t u8() { return take_le<std::uint8_t>(); }
  std::uint16_t u16() { return take_le<std::uint16_t>(); }
  std::uint32_t u32() { return take_le<std::uint32_t>(); }
  std::uint64_t u64() { return take_le<std::uint64_t>(); }
  std::int32_t i32() { return static_cast<std::int32_t>(take_le<std::uint32_t>()); }
  std::int64_t i64() { return static_cast<std::int64_t>(take_le<std::uint64_t>()); }
  double f64() {
    const std::uint64_t bits = take_le<std::uint64_t>();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  std::string str() {
    const std::uint32_t n = u32();
    if (failed_ || n > remaining()) {
      fail("string length exceeds payload");
      return {};
    }
    std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return s;
  }
  /// A list count, validated against the bytes remaining: a count claiming
  /// more elements than `min_element_bytes`-sized elements could fit in the
  /// rest of the buffer poisons the reader instead of driving a huge
  /// allocation.
  std::uint32_t count(std::size_t min_element_bytes = 1) {
    const std::uint32_t n = u32();
    if (failed_) return 0;
    if (min_element_bytes == 0) min_element_bytes = 1;
    if (n > remaining() / min_element_bytes) {
      fail("list count exceeds payload");
      return 0;
    }
    return n;
  }

  bool ok() const { return !failed_; }
  const std::string& error() const { return error_; }
  std::size_t remaining() const { return size_ - pos_; }
  /// Flag trailing garbage: a well-formed payload is consumed exactly.
  bool exhausted() const { return !failed_ && pos_ == size_; }
  void fail(const std::string& why) {
    if (!failed_) {
      failed_ = true;
      error_ = why;
    }
  }

 private:
  template <typename U>
  U take_le() {
    if (failed_ || sizeof(U) > remaining()) {
      fail("truncated field");
      return U{};
    }
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < sizeof(U); ++i) {
      v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += sizeof(U);
    return static_cast<U>(v);
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  bool failed_ = false;
  std::string error_;
};

}  // namespace qosnp::wire
