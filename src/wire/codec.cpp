#include "wire/codec.hpp"

#include <array>
#include <utility>

namespace qosnp::wire {
namespace {

// Wire enum ceilings (exclusive). Growing an enum is a protocol version
// bump: a v1 decoder must reject values it cannot represent.
constexpr std::uint8_t kCodingFormatCount = 12;  // kMPEG1 .. kTIFF
constexpr std::uint8_t kColorDepthCount = 4;
constexpr std::uint8_t kAudioQualityCount = 3;
constexpr std::uint8_t kLanguageCount = 4;
constexpr std::uint8_t kCacheUseCount = 3;
constexpr std::uint8_t kStatusCount = 5;
constexpr std::uint8_t kShedReasonCount = 3;

// Presence bitmask over the four media of an MMProfile / UserOffer.
constexpr std::uint8_t kHasVideo = 1 << 0;
constexpr std::uint8_t kHasAudio = 1 << 1;
constexpr std::uint8_t kHasText = 1 << 2;
constexpr std::uint8_t kHasImage = 1 << 3;

template <typename Enum>
bool read_enum(ByteReader& r, Enum& out, std::uint8_t count, const char* field) {
  const std::uint8_t raw = r.u8();
  if (!r.ok()) return false;
  if (raw >= count) {
    r.fail(std::string(field) + " out of range");
    return false;
  }
  out = static_cast<Enum>(raw);
  return true;
}

// --- QoS value types ------------------------------------------------------

void put(ByteWriter& w, const VideoQoS& q) {
  w.u8(static_cast<std::uint8_t>(q.color));
  w.i32(q.frame_rate_fps);
  w.i32(q.resolution);
}
bool get(ByteReader& r, VideoQoS& q) {
  return read_enum(r, q.color, kColorDepthCount, "video color") &&
         ((q.frame_rate_fps = r.i32(), q.resolution = r.i32(), r.ok()));
}

void put(ByteWriter& w, const AudioQoS& q) { w.u8(static_cast<std::uint8_t>(q.quality)); }
bool get(ByteReader& r, AudioQoS& q) {
  return read_enum(r, q.quality, kAudioQualityCount, "audio quality");
}

void put(ByteWriter& w, const TextQoS& q) { w.u8(static_cast<std::uint8_t>(q.language)); }
bool get(ByteReader& r, TextQoS& q) {
  return read_enum(r, q.language, kLanguageCount, "text language");
}

void put(ByteWriter& w, const ImageQoS& q) {
  w.u8(static_cast<std::uint8_t>(q.color));
  w.i32(q.resolution);
}
bool get(ByteReader& r, ImageQoS& q) {
  return read_enum(r, q.color, kColorDepthCount, "image color") &&
         ((q.resolution = r.i32(), r.ok()));
}

// --- importance profile ---------------------------------------------------

template <std::size_t N>
void put(ByteWriter& w, const std::array<double, N>& a) {
  for (double v : a) w.f64(v);
}
template <std::size_t N>
void get(ByteReader& r, std::array<double, N>& a) {
  for (double& v : a) v = r.f64();
}

void put(ByteWriter& w, const PiecewiseLinear& curve) {
  const auto& anchors = curve.anchors();
  w.u32(static_cast<std::uint32_t>(anchors.size()));
  for (const auto& [x, v] : anchors) {
    w.f64(x);
    w.f64(v);
  }
}
bool get(ByteReader& r, PiecewiseLinear& curve) {
  const std::uint32_t n = r.count(16);
  for (std::uint32_t i = 0; i < n && r.ok(); ++i) {
    const double x = r.f64();
    const double v = r.f64();
    if (r.ok()) curve.set_anchor(x, v);
  }
  return r.ok();
}

void put(ByteWriter& w, const ImportanceProfile& imp) {
  put(w, imp.video_color);
  put(w, imp.frame_rate);
  put(w, imp.resolution);
  put(w, imp.audio_quality);
  put(w, imp.language);
  put(w, imp.image_color);
  put(w, imp.image_resolution);
  put(w, imp.media_weight);
  w.f64(imp.cost_per_dollar);
  w.u32(static_cast<std::uint32_t>(imp.preferred_servers.size()));
  for (const std::string& s : imp.preferred_servers) w.str(s);
  w.f64(imp.server_bonus);
}
bool get(ByteReader& r, ImportanceProfile& imp) {
  imp = ImportanceProfile{};  // start from empty curves, not defaults()
  get(r, imp.video_color);
  if (!get(r, imp.frame_rate)) return false;
  if (!get(r, imp.resolution)) return false;
  get(r, imp.audio_quality);
  get(r, imp.language);
  get(r, imp.image_color);
  if (!get(r, imp.image_resolution)) return false;
  get(r, imp.media_weight);
  imp.cost_per_dollar = r.f64();
  const std::uint32_t servers = r.count(4);
  imp.preferred_servers.reserve(servers);
  for (std::uint32_t i = 0; i < servers && r.ok(); ++i) {
    imp.preferred_servers.push_back(r.str());
  }
  imp.server_bonus = r.f64();
  return r.ok();
}

// --- MM profile / user profile --------------------------------------------

void put(ByteWriter& w, const MMProfile& mm) {
  std::uint8_t mask = 0;
  if (mm.video) mask |= kHasVideo;
  if (mm.audio) mask |= kHasAudio;
  if (mm.text) mask |= kHasText;
  if (mm.image) mask |= kHasImage;
  w.u8(mask);
  if (mm.video) {
    put(w, mm.video->desired);
    put(w, mm.video->worst);
  }
  if (mm.audio) {
    put(w, mm.audio->desired);
    put(w, mm.audio->worst);
  }
  if (mm.text) {
    w.u8(static_cast<std::uint8_t>(mm.text->desired));
    w.u32(static_cast<std::uint32_t>(mm.text->acceptable.size()));
    for (Language lang : mm.text->acceptable) w.u8(static_cast<std::uint8_t>(lang));
  }
  if (mm.image) {
    put(w, mm.image->desired);
    put(w, mm.image->worst);
  }
  w.i64(mm.cost.max_cost.as_micros());
  w.f64(mm.time.delivery_time_s);
  w.f64(mm.time.choice_period_s);
}
bool get(ByteReader& r, MMProfile& mm) {
  const std::uint8_t mask = r.u8();
  if (!r.ok()) return false;
  if (mask & ~(kHasVideo | kHasAudio | kHasText | kHasImage)) {
    r.fail("unknown media presence bits");
    return false;
  }
  if (mask & kHasVideo) {
    VideoProfile v;
    if (!get(r, v.desired) || !get(r, v.worst)) return false;
    mm.video = v;
  }
  if (mask & kHasAudio) {
    AudioProfile a;
    if (!get(r, a.desired) || !get(r, a.worst)) return false;
    mm.audio = a;
  }
  if (mask & kHasText) {
    TextProfile t;
    if (!read_enum(r, t.desired, kLanguageCount, "text desired language")) return false;
    const std::uint32_t n = r.count(1);
    t.acceptable.reserve(n);
    for (std::uint32_t i = 0; i < n && r.ok(); ++i) {
      Language lang;
      if (!read_enum(r, lang, kLanguageCount, "acceptable language")) return false;
      t.acceptable.push_back(lang);
    }
    if (!r.ok()) return false;
    mm.text = std::move(t);
  }
  if (mask & kHasImage) {
    ImageProfile im;
    if (!get(r, im.desired) || !get(r, im.worst)) return false;
    mm.image = im;
  }
  mm.cost.max_cost = Money::micros(r.i64());
  mm.time.delivery_time_s = r.f64();
  mm.time.choice_period_s = r.f64();
  return r.ok();
}

void put(ByteWriter& w, const UserProfile& profile) {
  w.str(profile.name);
  put(w, profile.mm);
  put(w, profile.importance);
}
bool get(ByteReader& r, UserProfile& profile) {
  profile.name = r.str();
  return r.ok() && get(r, profile.mm) && get(r, profile.importance);
}

// --- client machine -------------------------------------------------------

void put(ByteWriter& w, const ClientMachine& client) {
  w.str(client.name);
  w.str(client.node);
  w.i32(client.screen.width_px);
  w.i32(client.screen.height_px);
  w.u8(static_cast<std::uint8_t>(client.screen.color));
  w.u32(static_cast<std::uint32_t>(client.decoders.size()));
  for (CodingFormat f : client.decoders) w.u8(static_cast<std::uint8_t>(f));
  w.u8(static_cast<std::uint8_t>(client.max_audio));
  w.u8(client.has_audio_out ? 1 : 0);
}
bool get(ByteReader& r, ClientMachine& client) {
  client.name = r.str();
  client.node = r.str();
  client.screen.width_px = r.i32();
  client.screen.height_px = r.i32();
  if (!read_enum(r, client.screen.color, kColorDepthCount, "screen color")) return false;
  const std::uint32_t decoders = r.count(1);
  client.decoders.clear();
  client.decoders.reserve(decoders);
  for (std::uint32_t i = 0; i < decoders && r.ok(); ++i) {
    CodingFormat f;
    if (!read_enum(r, f, kCodingFormatCount, "decoder format")) return false;
    client.decoders.push_back(f);
  }
  if (!read_enum(r, client.max_audio, kAudioQualityCount, "max audio")) return false;
  const std::uint8_t audio_out = r.u8();
  if (!r.ok()) return false;
  if (audio_out > 1) {
    r.fail("has_audio_out not a boolean");
    return false;
  }
  client.has_audio_out = audio_out == 1;
  return true;
}

}  // namespace

// --- request --------------------------------------------------------------

Result<Bytes, WireError> encode_request_payload(const NegotiationRequest& request) {
  if (request.resolved) {
    return Err(WireError{WireErrorCode::kUnencodable,
                         "a resolved document reference cannot cross the wire; "
                         "send the catalog id instead"});
  }
  ByteWriter w;
  w.u64(request.id);
  w.u8(static_cast<std::uint8_t>(request.session_class));
  w.u8(static_cast<std::uint8_t>(request.cache));
  w.u8(request.accept_degraded ? 1 : 0);
  w.f64(request.deadline_ms);
  w.str(request.document);
  put(w, request.client);
  put(w, request.profile);
  return w.take();
}

Result<NegotiationRequest, WireError> decode_request_payload(const Bytes& payload) {
  ByteReader r(payload);
  NegotiationRequest request;
  request.id = r.u64();
  if (!read_enum(r, request.session_class, static_cast<std::uint8_t>(kSessionClassCount),
                 "session class") ||
      !read_enum(r, request.cache, kCacheUseCount, "cache policy")) {
    return Err(WireError{WireErrorCode::kBadPayload, r.error()});
  }
  const std::uint8_t degraded = r.u8();
  if (r.ok() && degraded > 1) r.fail("accept_degraded not a boolean");
  request.accept_degraded = degraded == 1;
  request.deadline_ms = r.f64();
  request.document = r.str();
  if (!r.ok() || !get(r, request.client) || !get(r, request.profile)) {
    return Err(WireError{WireErrorCode::kBadPayload, r.error()});
  }
  if (!r.exhausted()) {
    return Err(WireError{WireErrorCode::kBadPayload, "trailing bytes after request payload"});
  }
  return request;
}

// --- result ---------------------------------------------------------------

Bytes encode_result_payload(const NegotiationResult& result) {
  ByteWriter w;
  w.u64(result.request_id);
  w.u8(static_cast<std::uint8_t>(result.shed));
  w.u64(result.session_id);
  w.f64(result.queue_ms);
  w.f64(result.total_ms);
  w.i32(result.worker);
  w.u8(static_cast<std::uint8_t>(result.verdict));
  w.u64(result.committed_index == SIZE_MAX ? UINT64_MAX
                                           : static_cast<std::uint64_t>(result.committed_index));
  w.u8(result.user_offer ? 1 : 0);
  if (result.user_offer) {
    const UserOffer& offer = *result.user_offer;
    std::uint8_t mask = 0;
    if (offer.video) mask |= kHasVideo;
    if (offer.audio) mask |= kHasAudio;
    if (offer.text) mask |= kHasText;
    if (offer.image) mask |= kHasImage;
    w.u8(mask);
    if (offer.video) put(w, *offer.video);
    if (offer.audio) put(w, *offer.audio);
    if (offer.text) put(w, *offer.text);
    if (offer.image) put(w, *offer.image);
    w.i64(offer.cost.as_micros());
  }
  w.u32(static_cast<std::uint32_t>(result.problems.size()));
  for (const std::string& p : result.problems) w.str(p);
  w.i32(result.commit_stats.attempts);
  w.i32(result.commit_stats.retries);
  w.i32(result.commit_stats.transient_failures);
  w.i32(result.commit_stats.permanent_failures);
  w.i32(result.commit_stats.released_on_failure);
  w.f64(result.commit_stats.backoff_ms);
  return w.take();
}

Result<NegotiationResult, WireError> decode_result_payload(const Bytes& payload) {
  ByteReader r(payload);
  NegotiationResult result;
  result.request_id = r.u64();
  if (!read_enum(r, result.shed, kShedReasonCount, "shed reason")) {
    return Err(WireError{WireErrorCode::kBadPayload, r.error()});
  }
  result.session_id = r.u64();
  result.queue_ms = r.f64();
  result.total_ms = r.f64();
  result.worker = r.i32();
  if (!read_enum(r, result.verdict, kStatusCount, "verdict")) {
    return Err(WireError{WireErrorCode::kBadPayload, r.error()});
  }
  const std::uint64_t committed = r.u64();
  result.committed_index =
      committed == UINT64_MAX ? SIZE_MAX : static_cast<std::size_t>(committed);
  const std::uint8_t has_offer = r.u8();
  if (r.ok() && has_offer > 1) r.fail("user_offer presence not a boolean");
  if (r.ok() && has_offer == 1) {
    UserOffer offer;
    const std::uint8_t mask = r.u8();
    if (r.ok() && (mask & ~(kHasVideo | kHasAudio | kHasText | kHasImage))) {
      r.fail("unknown user-offer presence bits");
    }
    if (r.ok() && (mask & kHasVideo)) {
      VideoQoS q;
      if (get(r, q)) offer.video = q;
    }
    if (r.ok() && (mask & kHasAudio)) {
      AudioQoS q;
      if (get(r, q)) offer.audio = q;
    }
    if (r.ok() && (mask & kHasText)) {
      TextQoS q;
      if (get(r, q)) offer.text = q;
    }
    if (r.ok() && (mask & kHasImage)) {
      ImageQoS q;
      if (get(r, q)) offer.image = q;
    }
    offer.cost = Money::micros(r.i64());
    if (r.ok()) result.user_offer = std::move(offer);
  }
  const std::uint32_t problems = r.count(4);
  result.problems.reserve(problems);
  for (std::uint32_t i = 0; i < problems && r.ok(); ++i) result.problems.push_back(r.str());
  result.commit_stats.attempts = r.i32();
  result.commit_stats.retries = r.i32();
  result.commit_stats.transient_failures = r.i32();
  result.commit_stats.permanent_failures = r.i32();
  result.commit_stats.released_on_failure = r.i32();
  result.commit_stats.backoff_ms = r.f64();
  if (!r.ok()) return Err(WireError{WireErrorCode::kBadPayload, r.error()});
  if (!r.exhausted()) {
    return Err(WireError{WireErrorCode::kBadPayload, "trailing bytes after result payload"});
  }
  return result;
}

// --- error ----------------------------------------------------------------

Bytes encode_error_payload(const WireError& error) {
  ByteWriter w;
  w.u16(static_cast<std::uint16_t>(error.code));
  w.str(error.detail);
  return w.take();
}

Result<WireError, WireError> decode_error_payload(const Bytes& payload) {
  ByteReader r(payload);
  const std::uint16_t code = r.u16();
  WireError error;
  error.detail = r.str();
  if (!r.ok() || !r.exhausted()) {
    return Err(WireError{WireErrorCode::kBadPayload, "malformed error payload"});
  }
  if (code < static_cast<std::uint16_t>(WireErrorCode::kBadMagic) || code > kMaxWireErrorCode) {
    return Err(WireError{WireErrorCode::kBadPayload,
                         "unknown error code " + std::to_string(code)});
  }
  error.code = static_cast<WireErrorCode>(code);
  return error;
}

// --- frame conveniences ---------------------------------------------------

Result<Bytes, WireError> encode_request_frame(const NegotiationRequest& request,
                                              std::uint64_t seq) {
  auto payload = encode_request_payload(request);
  if (!payload.ok()) return Err(payload.error());
  return encode_frame(FrameType::kRequest, seq, payload.value());
}

Bytes encode_result_frame(const NegotiationResult& result, std::uint64_t seq) {
  return encode_frame(FrameType::kResult, seq, encode_result_payload(result));
}

Bytes encode_error_frame(const WireError& error, std::uint64_t seq) {
  return encode_frame(FrameType::kError, seq, encode_error_payload(error));
}

Bytes encode_ping_frame(std::uint64_t seq) { return encode_frame(FrameType::kPing, seq, {}); }
Bytes encode_pong_frame(std::uint64_t seq) { return encode_frame(FrameType::kPong, seq, {}); }

}  // namespace qosnp::wire
