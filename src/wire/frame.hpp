// The framing layer of the qosnp wire protocol (docs/WIRE.md is the
// normative spec). Every message on a connection is one frame:
//
//   offset  width  field
//   ------  -----  -----------------------------------------------------
//        0      4  magic 0x51504E31 ("1NPQ" on the wire, "QNP1" as text)
//        4      2  protocol version (currently 1)
//        6      1  frame type (REQUEST/RESULT/ERROR/PING/PONG)
//        7      1  flags (reserved, must be 0)
//        8      8  sequence number (echoed by the matching response)
//       16      4  payload length N
//       20      N  payload (see wire/codec.hpp)
//     20+N      4  CRC32C over bytes [0, 20+N)
//
// All integers little-endian. A decoder failure is always a *typed* error
// (WireError) — never undefined behaviour, never partially-applied state.
// FrameAssembler turns an arbitrary byte stream (partial reads, pipelined
// frames, 1-byte-at-a-time writers) back into whole frames incrementally.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "wire/bytes.hpp"

namespace qosnp::wire {

inline constexpr std::uint32_t kMagic = 0x51504E31u;  // "QNP1" big-endian text
inline constexpr std::uint16_t kProtocolVersion = 1;
inline constexpr std::size_t kHeaderBytes = 20;
inline constexpr std::size_t kTrailerBytes = 4;
/// Default ceiling on one frame's total size; both peers may configure
/// their own, and a declared payload past it is shed with kFrameTooLarge.
inline constexpr std::size_t kDefaultMaxFrameBytes = 1 << 20;

enum class FrameType : std::uint8_t {
  kRequest = 0,  ///< payload: NegotiationRequest (client -> server)
  kResult = 1,   ///< payload: NegotiationResult (server -> client)
  kError = 2,    ///< payload: WireError (either direction)
  kPing = 3,     ///< empty payload; the peer answers PONG with the same seq
  kPong = 4,     ///< empty payload
};
inline constexpr std::size_t kFrameTypeCount = 5;

std::string_view to_string(FrameType type);

/// Every way the wire layer can fail, shared by decoders, the server (as
/// the `code` of an ERROR frame) and the client (typed submit errors).
enum class WireErrorCode : std::uint16_t {
  kBadMagic = 1,        ///< stream desynchronised or not speaking qosnp
  kBadVersion = 2,      ///< protocol version not supported by this peer
  kBadFrameType = 3,    ///< unknown or contextually invalid frame type
  kBadFlags = 4,        ///< reserved flag bits set
  kFrameTooLarge = 5,   ///< declared payload exceeds the peer's max frame
  kBadCrc = 6,          ///< trailer checksum mismatch
  kBadPayload = 7,      ///< payload malformed (truncated field, bad enum, trailing bytes)
  kUnencodable = 8,     ///< request cannot be expressed on the wire (encode side)
  kOverloaded = 9,      ///< server shed the connection/request; retry later
  kTimeout = 10,        ///< client-side deadline expired while waiting
  kConnectionClosed = 11,  ///< peer closed (or connection never established)
  kIo = 12,             ///< socket-level failure (errno detail in message)
  kDeadlineExceeded = 13,  ///< caller's own deadline expired; NOT worth
                           ///< retrying elsewhere — the answer may still be
                           ///< coming and retrying would double-spend it
};
inline constexpr std::uint16_t kMaxWireErrorCode = 13;

std::string_view to_string(WireErrorCode code);

/// A typed wire-layer failure. On the wire (ERROR frame payload) it is
/// `u16 code` + length-prefixed detail string; in process it doubles as the
/// error type of every fallible wire/netio operation.
struct WireError {
  WireErrorCode code = WireErrorCode::kIo;
  std::string detail;

  std::string to_text() const;
  /// A server refusal that the paper's vocabulary maps to FAILEDTRYLATER
  /// (transient overload — worth retrying), as opposed to a protocol bug.
  bool try_later() const { return code == WireErrorCode::kOverloaded; }
};

struct Frame {
  FrameType type = FrameType::kRequest;
  std::uint64_t seq = 0;
  Bytes payload;
};

/// Serialise one complete frame (header + payload + CRC32C trailer).
Bytes encode_frame(FrameType type, std::uint64_t seq, const Bytes& payload);

/// Incremental stream-to-frame reassembly. feed() appends raw socket bytes;
/// next() yields complete frames until the buffer runs dry (`needs_more`) or
/// the stream violates the protocol (`error`, with the offending frame's
/// sequence number when the header got far enough to carry one). After an
/// error the assembler is poisoned: the connection's framing is no longer
/// trustworthy and the owner is expected to close it.
class FrameAssembler {
 public:
  explicit FrameAssembler(std::size_t max_frame_bytes = kDefaultMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  void feed(const void* data, std::size_t size);

  struct Next {
    std::optional<Frame> frame;
    std::optional<WireError> error;
    std::uint64_t error_seq = 0;  ///< seq of the frame the error occurred in (0 if unknown)
    bool needs_more() const { return !frame && !error; }
  };
  Next next();

  std::size_t buffered() const { return buffer_.size() - consumed_; }
  bool poisoned() const { return poisoned_; }

 private:
  Next fail(WireErrorCode code, std::string detail, std::uint64_t seq = 0);

  std::size_t max_frame_bytes_;
  Bytes buffer_;
  std::size_t consumed_ = 0;  ///< prefix of buffer_ already handed out
  bool poisoned_ = false;
};

}  // namespace qosnp::wire
