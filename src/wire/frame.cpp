#include "wire/frame.hpp"

#include <cstring>

#include "wire/crc32c.hpp"

namespace qosnp::wire {

std::string_view to_string(FrameType type) {
  switch (type) {
    case FrameType::kRequest: return "REQUEST";
    case FrameType::kResult: return "RESULT";
    case FrameType::kError: return "ERROR";
    case FrameType::kPing: return "PING";
    case FrameType::kPong: return "PONG";
  }
  return "?";
}

std::string_view to_string(WireErrorCode code) {
  switch (code) {
    case WireErrorCode::kBadMagic: return "bad-magic";
    case WireErrorCode::kBadVersion: return "bad-version";
    case WireErrorCode::kBadFrameType: return "bad-frame-type";
    case WireErrorCode::kBadFlags: return "bad-flags";
    case WireErrorCode::kFrameTooLarge: return "frame-too-large";
    case WireErrorCode::kBadCrc: return "bad-crc";
    case WireErrorCode::kBadPayload: return "bad-payload";
    case WireErrorCode::kUnencodable: return "unencodable";
    case WireErrorCode::kOverloaded: return "overloaded";
    case WireErrorCode::kTimeout: return "timeout";
    case WireErrorCode::kConnectionClosed: return "connection-closed";
    case WireErrorCode::kIo: return "io";
    case WireErrorCode::kDeadlineExceeded: return "deadline-exceeded";
  }
  return "?";
}

std::string WireError::to_text() const {
  std::string text(to_string(code));
  if (!detail.empty()) {
    text += ": ";
    text += detail;
  }
  return text;
}

Bytes encode_frame(FrameType type, std::uint64_t seq, const Bytes& payload) {
  ByteWriter w;
  w.u32(kMagic);
  w.u16(kProtocolVersion);
  w.u8(static_cast<std::uint8_t>(type));
  w.u8(0);  // flags
  w.u64(seq);
  w.u32(static_cast<std::uint32_t>(payload.size()));
  w.raw(payload.data(), payload.size());
  const std::uint32_t crc = crc32c(w.bytes().data(), w.size());
  w.u32(crc);
  return w.take();
}

void FrameAssembler::feed(const void* data, std::size_t size) {
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  // Reclaim the consumed prefix before growing: a long-lived connection's
  // buffer stays proportional to its unparsed backlog, not its history.
  if (consumed_ > 0 && (consumed_ == buffer_.size() || consumed_ >= 4096)) {
    buffer_.erase(buffer_.begin(), buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  buffer_.insert(buffer_.end(), bytes, bytes + size);
}

FrameAssembler::Next FrameAssembler::fail(WireErrorCode code, std::string detail,
                                          std::uint64_t seq) {
  poisoned_ = true;
  Next n;
  n.error = WireError{code, std::move(detail)};
  n.error_seq = seq;
  return n;
}

FrameAssembler::Next FrameAssembler::next() {
  if (poisoned_) return fail(WireErrorCode::kBadMagic, "stream already poisoned");
  const std::uint8_t* data = buffer_.data() + consumed_;
  const std::size_t available = buffer_.size() - consumed_;
  if (available < kHeaderBytes) return Next{};

  ByteReader header(data, kHeaderBytes);
  const std::uint32_t magic = header.u32();
  const std::uint16_t version = header.u16();
  const std::uint8_t type = header.u8();
  const std::uint8_t flags = header.u8();
  const std::uint64_t seq = header.u64();
  const std::uint32_t payload_len = header.u32();

  if (magic != kMagic) return fail(WireErrorCode::kBadMagic, "bad magic");
  if (version != kProtocolVersion) {
    return fail(WireErrorCode::kBadVersion,
                "unsupported protocol version " + std::to_string(version), seq);
  }
  if (type >= kFrameTypeCount) {
    return fail(WireErrorCode::kBadFrameType, "unknown frame type " + std::to_string(type), seq);
  }
  if (flags != 0) {
    return fail(WireErrorCode::kBadFlags, "reserved flags set", seq);
  }
  if (kHeaderBytes + payload_len + kTrailerBytes > max_frame_bytes_) {
    return fail(WireErrorCode::kFrameTooLarge,
                "declared payload of " + std::to_string(payload_len) + " bytes exceeds limit",
                seq);
  }
  const std::size_t total = kHeaderBytes + payload_len + kTrailerBytes;
  if (available < total) return Next{};

  const std::uint32_t expected = crc32c(data, kHeaderBytes + payload_len);
  ByteReader trailer(data + kHeaderBytes + payload_len, kTrailerBytes);
  const std::uint32_t actual = trailer.u32();
  if (expected != actual) return fail(WireErrorCode::kBadCrc, "CRC32C mismatch", seq);

  Frame frame;
  frame.type = static_cast<FrameType>(type);
  frame.seq = seq;
  frame.payload.assign(data + kHeaderBytes, data + kHeaderBytes + payload_len);
  consumed_ += total;

  Next n;
  n.frame = std::move(frame);
  return n;
}

}  // namespace qosnp::wire
