// CRC32C (Castagnoli, polynomial 0x1EDC6F41, reflected 0x82F63B78): the
// frame trailer checksum of the wire protocol. Software table
// implementation — the frame sizes involved (tens of bytes to ~1 MiB) make
// a hardware SSE4.2 path a refinement, not a requirement, and the table
// form is portable to every build the tree supports.
#pragma once

#include <cstddef>
#include <cstdint>

namespace qosnp::wire {

/// CRC32C of `size` bytes starting at `data`, seeded with `seed` (pass a
/// previous return value to continue a running checksum over split
/// buffers). The empty-input checksum with the default seed is 0.
std::uint32_t crc32c(const void* data, std::size_t size, std::uint32_t seed = 0);

}  // namespace qosnp::wire
