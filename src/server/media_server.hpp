// Simulated continuous-media file server: the stand-in for the UBC CMFS
// [Neu 96] of the 1996 prototype. The negotiation procedure interacts with
// a media server only through admission control — "asks ... the media file
// servers to reserve resources to support the QoS associated with the
// system offer" (Step 5) — so the simulation models exactly that: a disk
// bandwidth budget, a session-slot budget, per-stream reservations, plus
// failure/degradation injection for the adaptation experiments.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "document/model.hpp"
#include "net/topology.hpp"
#include "qosmap/mapping.hpp"
#include "util/result.hpp"

namespace qosnp {

using StreamId = std::uint64_t;

struct MediaServerConfig {
  ServerId id;
  NodeId node;  ///< where the server attaches to the network topology
  std::int64_t disk_bandwidth_bps = 100'000'000;
  int max_sessions = 64;
  /// Per-class admission headroom: class C only fits while
  /// reserved + rate <= effective_bandwidth * (1 - headroom[C]). The all-zero
  /// default is class-blind (byte-identical to pre-policy admission).
  ClassHeadroom headroom;
};

struct ServerUsage {
  std::int64_t disk_bandwidth_bps = 0;
  std::int64_t effective_bandwidth_bps = 0;
  std::int64_t reserved_bps = 0;
  int sessions = 0;
  int max_sessions = 0;
  bool failed = false;
};

/// The admission surface of one media server — exactly what Step 5
/// (resource commitment) talks to. MediaServer implements it; the
/// fault-injection decorators in src/fault interpose on it without touching
/// the server internals. Refusals are typed: transient (no capacity right
/// now, server momentarily down) vs permanent (malformed request).
class StreamServer {
 public:
  virtual ~StreamServer() = default;
  virtual const ServerId& id() const = 0;
  virtual const NodeId& node() const = 0;
  virtual Result<StreamId, Refusal> admit(const StreamRequirements& req) = 0;
  virtual bool release(StreamId id) = 0;
};

/// Server-lookup surface of the farm: how the resource committer resolves a
/// variant's localisation field into an admission endpoint. Decorators wrap
/// this to inject faults per server.
class ServerProvider {
 public:
  virtual ~ServerProvider() = default;
  /// nullptr when no server with that id exists (a permanent error).
  virtual StreamServer* find_server(const ServerId& id) = 0;
};

class MediaServer final : public StreamServer {
 public:
  explicit MediaServer(MediaServerConfig config);

  MediaServer(const MediaServer&) = delete;
  MediaServer& operator=(const MediaServer&) = delete;

  const ServerId& id() const override { return config_.id; }
  const NodeId& node() const override { return config_.node; }

  /// Admit a stream: reserves peak rate (guaranteed) or average rate
  /// (best-effort) of disk bandwidth plus one session slot.
  Result<StreamId, Refusal> admit(const StreamRequirements& req) override;
  bool release(StreamId id) override;

  ServerUsage usage() const;

  /// Failure injection: a failed server admits nothing; the ids of streams
  /// it was serving are returned so the caller can adapt them.
  std::vector<StreamId> fail();
  void recover();
  bool failed() const;

  /// Degradation injection: fraction of disk bandwidth lost (e.g. a rebuild
  /// or a competing workload); returns streams that no longer fit.
  std::vector<StreamId> degrade(double lost_fraction);
  void restore();

 private:
  std::vector<StreamId> overfull_victims_locked();

  mutable std::mutex mu_;
  MediaServerConfig config_;
  std::int64_t effective_bandwidth_;
  std::int64_t reserved_ = 0;
  bool failed_ = false;
  std::unordered_map<StreamId, std::int64_t> streams_;  // id -> reserved rate
  StreamId next_id_ = 1;
};

/// Registry of all media servers, keyed by ServerId (the variant metadata's
/// localisation field points here).
class ServerFarm final : public ServerProvider {
 public:
  /// Register a server; duplicate ids are rejected.
  bool add(MediaServerConfig config);
  MediaServer* find(const ServerId& id);
  const MediaServer* find(const ServerId& id) const;
  StreamServer* find_server(const ServerId& id) override { return find(id); }
  std::vector<ServerId> list() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<ServerId, std::unique_ptr<MediaServer>> servers_;
};

/// RAII wrapper releasing a server stream unless dismissed.
class ScopedStream {
 public:
  ScopedStream() = default;
  ScopedStream(StreamServer* server, StreamId id) : server_(server), id_(id) {}
  ~ScopedStream() { reset(); }

  ScopedStream(ScopedStream&& other) noexcept { *this = std::move(other); }
  ScopedStream& operator=(ScopedStream&& other) noexcept {
    if (this != &other) {
      reset();
      server_ = other.server_;
      id_ = other.id_;
      other.server_ = nullptr;
      other.id_ = 0;
    }
    return *this;
  }
  ScopedStream(const ScopedStream&) = delete;
  ScopedStream& operator=(const ScopedStream&) = delete;

  StreamId id() const { return id_; }
  StreamServer* server() const { return server_; }
  bool valid() const { return server_ != nullptr; }

  StreamId dismiss() {
    server_ = nullptr;
    return id_;
  }

  void reset() {
    if (server_ != nullptr) server_->release(id_);
    server_ = nullptr;
    id_ = 0;
  }

 private:
  StreamServer* server_ = nullptr;
  StreamId id_ = 0;
};

}  // namespace qosnp
