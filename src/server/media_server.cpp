#include "server/media_server.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <memory>

#include "util/log.hpp"

namespace qosnp {

MediaServer::MediaServer(MediaServerConfig config)
    : config_(std::move(config)), effective_bandwidth_(config_.disk_bandwidth_bps) {
  config_.headroom = ClassHeadroom::validated(config_.headroom);
}

Result<StreamId, Refusal> MediaServer::admit(const StreamRequirements& req) {
  const std::int64_t rate = req.guarantee == GuaranteeClass::kGuaranteed ? req.max_bit_rate_bps
                                                                         : req.avg_bit_rate_bps;
  if (rate <= 0) return permanent_refusal(config_.id, "non-positive bit rate");
  std::lock_guard lk(mu_);
  if (failed_) return transient_refusal(config_.id, "server is down");
  if (static_cast<int>(streams_.size()) >= config_.max_sessions) {
    return transient_refusal(config_.id, "no free session slot");
  }
  // Headroom-differentiated admission: a class with headroom h only sees
  // capacity * (1 - h). The h <= 0 guard keeps the zero-headroom path free
  // of any double round-trip, hence byte-identical to class-blind admission.
  const double h = config_.headroom.for_class(req.session_class);
  const std::int64_t usable =
      h <= 0.0 ? effective_bandwidth_
               : static_cast<std::int64_t>(
                     std::llround(static_cast<double>(effective_bandwidth_) * (1.0 - h)));
  if (reserved_ + rate > usable) {
    return transient_refusal(config_.id, "insufficient disk bandwidth");
  }
  reserved_ += rate;
  const StreamId id = next_id_++;
  streams_[id] = rate;
  QOSNP_LOG_DEBUG("server", config_.id, ": admitted stream ", id, " at ", rate, " bps");
  return id;
}

bool MediaServer::release(StreamId id) {
  std::lock_guard lk(mu_);
  auto it = streams_.find(id);
  if (it == streams_.end()) return false;
  reserved_ -= it->second;
  assert(reserved_ >= 0 && "disk bandwidth ledger went negative");
  streams_.erase(it);
  return true;
}

ServerUsage MediaServer::usage() const {
  std::lock_guard lk(mu_);
  ServerUsage u;
  u.disk_bandwidth_bps = config_.disk_bandwidth_bps;
  u.effective_bandwidth_bps = effective_bandwidth_;
  u.reserved_bps = reserved_;
  u.sessions = static_cast<int>(streams_.size());
  u.max_sessions = config_.max_sessions;
  u.failed = failed_;
  return u;
}

std::vector<StreamId> MediaServer::fail() {
  std::lock_guard lk(mu_);
  failed_ = true;
  std::vector<StreamId> affected;
  affected.reserve(streams_.size());
  for (const auto& [id, _] : streams_) affected.push_back(id);
  std::sort(affected.begin(), affected.end());
  return affected;
}

void MediaServer::recover() {
  std::lock_guard lk(mu_);
  failed_ = false;
}

bool MediaServer::failed() const {
  std::lock_guard lk(mu_);
  return failed_;
}

std::vector<StreamId> MediaServer::overfull_victims_locked() {
  std::vector<std::pair<StreamId, std::int64_t>> by_recency(streams_.begin(), streams_.end());
  std::sort(by_recency.begin(), by_recency.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  std::int64_t excess = reserved_ - effective_bandwidth_;
  std::vector<StreamId> victims;
  for (const auto& [id, rate] : by_recency) {
    if (excess <= 0) break;
    victims.push_back(id);
    excess -= rate;
  }
  return victims;
}

std::vector<StreamId> MediaServer::degrade(double lost_fraction) {
  lost_fraction = std::clamp(lost_fraction, 0.0, 0.999);
  std::lock_guard lk(mu_);
  effective_bandwidth_ = static_cast<std::int64_t>(
      std::llround(static_cast<double>(config_.disk_bandwidth_bps) * (1.0 - lost_fraction)));
  return overfull_victims_locked();
}

void MediaServer::restore() {
  std::lock_guard lk(mu_);
  effective_bandwidth_ = config_.disk_bandwidth_bps;
}

bool ServerFarm::add(MediaServerConfig config) {
  std::lock_guard lk(mu_);
  if (servers_.contains(config.id)) return false;
  ServerId id = config.id;
  servers_[id] = std::make_unique<MediaServer>(std::move(config));
  return true;
}

MediaServer* ServerFarm::find(const ServerId& id) {
  std::lock_guard lk(mu_);
  auto it = servers_.find(id);
  return it == servers_.end() ? nullptr : it->second.get();
}

const MediaServer* ServerFarm::find(const ServerId& id) const {
  std::lock_guard lk(mu_);
  auto it = servers_.find(id);
  return it == servers_.end() ? nullptr : it->second.get();
}

std::vector<ServerId> ServerFarm::list() const {
  std::lock_guard lk(mu_);
  std::vector<ServerId> ids;
  ids.reserve(servers_.size());
  for (const auto& [id, _] : servers_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

}  // namespace qosnp
