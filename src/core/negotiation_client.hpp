// NegotiationClient: the one client-side abstraction over every way a
// NegotiationRequest can reach the negotiation procedure. The four
// implementations cover the whole deployment spectrum behind an identical
// call shape:
//
//   LocalClient    (src/policy/local_client.hpp)   — direct QoSManager call
//                    plus Step-6 session admission, in this thread;
//   ServiceClient  (src/service/service_client.hpp) — through the concurrent
//                    NegotiationService worker pool;
//   RemoteClient   (src/netio/remote_client.hpp)    — across the wire to a
//                    qosnpd server;
//   ShardedClient  (src/shard/sharded_client.hpp)   — consistent-hash routed
//                    into a federation of N service shards.
//
// Same-seed request streams produce byte-identical procedure outcomes
// (tests/result_signature.hpp) through every implementation — the
// differential suites in tests/ hold the implementations to that.
#pragma once

#include <functional>
#include <string>
#include <utility>

#include "core/negotiation_request.hpp"
#include "core/negotiation_result.hpp"

namespace qosnp {

class NegotiationClient {
 public:
  virtual ~NegotiationClient() = default;

  /// Completion callback of submit_async: invoked exactly once with the
  /// response, on whatever thread resolves the request (the caller's own
  /// for synchronous implementations). Must not block.
  using CompletionFn = std::function<void(NegotiationResult)>;

  /// Negotiate one request and block for the result. The result never
  /// carries the offer list or commitment — those belong to the opened
  /// session (result.session_id) or were released before returning.
  virtual NegotiationResult submit(NegotiationRequest request) = 0;

  /// Fire-and-callback form. Synchronous implementations (LocalClient,
  /// RemoteClient) resolve inline on the calling thread; the service-backed
  /// implementations hand the request to their worker pool and return.
  virtual void submit_async(NegotiationRequest request, CompletionFn done) {
    done(submit(std::move(request)));
  }

  /// Snapshot of the client's metrics surface in Prometheus text form
  /// (empty when the implementation keeps none). "Drain" is the caller's
  /// promise: call it with no request in flight for exact counts.
  virtual std::string drain_metrics() const = 0;
};

}  // namespace qosnp
