// The QoS manager (paper Sec. 4): the component implementing QoS
// negotiation and adaptation. negotiate() runs the procedure's steps:
//   1. static local negotiation        -> FAILEDWITHLOCALOFFER
//   2. static compatibility checking   -> FAILEDWITHOUTOFFER
//   3. computation of classification parameters (SNS, OIF)
//   4. classification of system offers (best to worst)
//   5. resource commitment             -> SUCCEEDED / FAILEDWITHOFFER /
//                                         FAILEDTRYLATER
// Step 6 (user confirmation within choicePeriod) and the adaptation
// procedure live in the session module, which consumes the ordered offer
// list this manager produces — the paper keeps all feasible offers around
// precisely so adaptation can fall back to them.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "client/client_machine.hpp"
#include "core/classify.hpp"
#include "core/commit.hpp"
#include "core/enumerate.hpp"
#include "core/negotiation_request.hpp"
#include "core/negotiation_result.hpp"
#include "core/offer.hpp"
#include "core/plan_cache.hpp"
#include "cost/cost_model.hpp"
#include "document/catalog.hpp"
#include "obs/trace.hpp"
#include "profile/profiles.hpp"

namespace qosnp {

struct NegotiationConfig {
  /// Offer-space strategy. The default kBestFirst streams offers lazily in
  /// classification order (Step 5 pulls them one at a time); kEager
  /// materialises and sorts the whole product — kept as the test oracle.
  EnumerationConfig enumeration;
  ClassificationPolicy policy;
  /// Classify offers on the shared thread pool when the list is at least
  /// this large (0 disables parallel classification). Eager strategy only —
  /// the best-first stream classifies incrementally as offers are pulled.
  std::size_t parallel_threshold = 512;
  /// How resource commitment retries transiently-refused offers before the
  /// walk falls through to the next (worse) offer. Default: no retries.
  RetryPolicy retry;
  /// Cross-request plan cache for the Step 1-4 outcome (nullptr = off).
  /// Shareable between managers/services; thread-safe. Requests opt out per
  /// call via NegotiationRequest::cache.
  std::shared_ptr<NegotiationPlanCache> plan_cache;
  /// Pluggable Step-5 committer. When set, commit_first() obtains each
  /// walk's committer here instead of constructing a plain ResourceCommitter
  /// over the manager's farm/transport — the hook the sharded federation
  /// uses to substitute its FederatedCommitter without touching the walk.
  /// Deliberately not part of the plan-cache digest: the factory changes
  /// where reservations land, never the Steps 1-4 outcome.
  using CommitterFactory =
      std::function<std::unique_ptr<ResourceCommitter>(const RetryPolicy&, SessionClass)>;
  CommitterFactory committer_factory;
};

/// Result of walking the ordered offers and committing the first that fits.
struct CommitAttempt {
  std::size_t index = SIZE_MAX;
  Commitment commitment;
  std::vector<std::string> errors;
  CommitStats stats;
  /// Whether any refusal during the walk was transient. Decides the honest
  /// failure status: FAILEDTRYLATER only when trying later could help.
  bool saw_transient = false;

  bool ok() const { return index != SIZE_MAX; }
};

class QoSManager {
 public:
  QoSManager(Catalog& catalog, ServerProvider& farm, TransportProvider& transport,
             CostModel cost_model = {}, NegotiationConfig config = {});

  /// Run the negotiation procedure for one request. request.trace, when
  /// active, records one span per executed stage on its trace; a plan-cache
  /// hit replays the cached Steps 1-4 (kPlanCache span, hit=true) and runs
  /// only the Step-5 commit walk.
  NegotiationResult negotiate(const NegotiationRequest& request);

  /// Step 5 in isolation: walk `offers` best-to-worst, first the offers
  /// satisfying the user requirements, then the rest, skipping indices in
  /// `exclude`; commit the first that the servers and the transport accept.
  /// Also the engine of the adaptation procedure (exclude = offers already
  /// tried or in difficulty). Takes the list by mutable reference because a
  /// lazy list materialises further offers from its stream as the walk
  /// reaches them. `session_class` is stamped onto every reservation the
  /// walk attempts; `end_index` restricts the walk to offers with index
  /// strictly below it (the upgrade scanner passes the session's current
  /// offer so only strictly better entries are tried — and a lazy list never
  /// materialises past the bound).
  CommitAttempt commit_first(const ClientMachine& client, OfferList& offers,
                             const MMProfile& profile,
                             std::span<const std::size_t> exclude = {},
                             TraceContext trace = {},
                             SessionClass session_class = SessionClass::kStandard,
                             std::size_t end_index = SIZE_MAX);

  const CostModel& cost_model() const { return cost_model_; }
  const NegotiationConfig& config() const { return config_; }
  Catalog& catalog() { return *catalog_; }
  /// The configured plan cache, or nullptr when caching is off.
  NegotiationPlanCache* plan_cache() const { return config_.plan_cache.get(); }

 private:
  /// Steps 1-4 for one (client, document, profile): the cacheable part.
  /// Emits the local-check/compatibility/enumeration spans it executes.
  std::shared_ptr<NegotiationPlan> build_plan(const ClientMachine& client,
                                              std::shared_ptr<const MultimediaDocument> document,
                                              const UserProfile& profile, TraceContext trace);
  /// Step 5 (+ verdict) over a built or replayed plan. The single exit path
  /// of every negotiation, so cached and uncached requests produce
  /// byte-identical results. `exclusive` marks a plan owned by this request
  /// alone (freshly built, not stored): its eager offer list is moved out
  /// instead of copied.
  NegotiationResult run_plan(const NegotiationRequest& request, const NegotiationPlan& plan,
                             TraceContext trace, bool exclusive);

  /// The document part of the cache key, memoised per catalog epoch (an
  /// epoch is catalog-wide monotone, so it identifies one immutable entry
  /// content for the catalog's lifetime). Serialising a wide variant ladder
  /// dominates key building; the memo keeps the hit path O(1) in variants.
  std::string document_fp(const Catalog::Entry& entry);

  Catalog* catalog_;
  ServerProvider* farm_;
  TransportProvider* transport_;
  CostModel cost_model_;
  NegotiationConfig config_;
  /// Fingerprint of the manager knobs entering plan_cache_key (computed
  /// once; the config is immutable after construction).
  std::string plan_digest_;
  std::mutex fp_mu_;
  std::unordered_map<std::uint64_t, std::string> fp_memo_;  ///< guarded by fp_mu_
};

/// The "local offer" presented with FAILEDWITHLOCALOFFER: the user's
/// desired values clipped to the client machine capabilities, at no cost
/// (nothing was reserved).
UserOffer local_offer_from(const MMProfile& clipped);

}  // namespace qosnp
