// The QoS manager (paper Sec. 4): the component implementing QoS
// negotiation and adaptation. negotiate() runs the procedure's steps:
//   1. static local negotiation        -> FAILEDWITHLOCALOFFER
//   2. static compatibility checking   -> FAILEDWITHOUTOFFER
//   3. computation of classification parameters (SNS, OIF)
//   4. classification of system offers (best to worst)
//   5. resource commitment             -> SUCCEEDED / FAILEDWITHOFFER /
//                                         FAILEDTRYLATER
// Step 6 (user confirmation within choicePeriod) and the adaptation
// procedure live in the session module, which consumes the ordered offer
// list this manager produces — the paper keeps all feasible offers around
// precisely so adaptation can fall back to them.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "client/client_machine.hpp"
#include "core/classify.hpp"
#include "core/commit.hpp"
#include "core/enumerate.hpp"
#include "core/negotiation_result.hpp"
#include "core/offer.hpp"
#include "cost/cost_model.hpp"
#include "document/catalog.hpp"
#include "obs/trace.hpp"
#include "profile/profiles.hpp"

namespace qosnp {

struct NegotiationConfig {
  /// Offer-space strategy. The default kBestFirst streams offers lazily in
  /// classification order (Step 5 pulls them one at a time); kEager
  /// materialises and sorts the whole product — kept as the test oracle.
  EnumerationConfig enumeration;
  ClassificationPolicy policy;
  /// Classify offers on the shared thread pool when the list is at least
  /// this large (0 disables parallel classification). Eager strategy only —
  /// the best-first stream classifies incrementally as offers are pulled.
  std::size_t parallel_threshold = 512;
  /// How resource commitment retries transiently-refused offers before the
  /// walk falls through to the next (worse) offer. Default: no retries.
  RetryPolicy retry;
};

/// Result of walking the ordered offers and committing the first that fits.
struct CommitAttempt {
  std::size_t index = SIZE_MAX;
  Commitment commitment;
  std::vector<std::string> errors;
  CommitStats stats;
  /// Whether any refusal during the walk was transient. Decides the honest
  /// failure status: FAILEDTRYLATER only when trying later could help.
  bool saw_transient = false;

  bool ok() const { return index != SIZE_MAX; }
};

class QoSManager {
 public:
  QoSManager(Catalog& catalog, ServerProvider& farm, TransportProvider& transport,
             CostModel cost_model = {}, NegotiationConfig config = {});

  /// Run the negotiation procedure for one user request. An active `trace`
  /// context records one span per executed stage (Steps 1-5) on its trace.
  NegotiationResult negotiate(const ClientMachine& client, const DocumentId& document,
                              const UserProfile& profile, TraceContext trace = {});

  /// Steps 1-5 against an already-resolved document. Used by renegotiation
  /// (the session holds the document reference even if the catalog entry
  /// has been replaced meanwhile).
  NegotiationResult negotiate_document(const ClientMachine& client,
                                       std::shared_ptr<const MultimediaDocument> document,
                                       const UserProfile& profile, TraceContext trace = {});

  /// Step 5 in isolation: walk `offers` best-to-worst, first the offers
  /// satisfying the user requirements, then the rest, skipping indices in
  /// `exclude`; commit the first that the servers and the transport accept.
  /// Also the engine of the adaptation procedure (exclude = offers already
  /// tried or in difficulty). Takes the list by mutable reference because a
  /// lazy list materialises further offers from its stream as the walk
  /// reaches them.
  CommitAttempt commit_first(const ClientMachine& client, OfferList& offers,
                             const MMProfile& profile,
                             std::span<const std::size_t> exclude = {},
                             TraceContext trace = {});

  const CostModel& cost_model() const { return cost_model_; }
  const NegotiationConfig& config() const { return config_; }
  Catalog& catalog() { return *catalog_; }

 private:
  Catalog* catalog_;
  ServerProvider* farm_;
  TransportProvider* transport_;
  CostModel cost_model_;
  NegotiationConfig config_;
};

/// The "local offer" presented with FAILEDWITHLOCALOFFER: the user's
/// desired values clipped to the client machine capabilities, at no cost
/// (nothing was reserved).
UserOffer local_offer_from(const MMProfile& clipped);

}  // namespace qosnp
