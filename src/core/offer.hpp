// System offers and user offers (paper Definitions 1 and 2).
//   Definition 1: a system offer is a set of variants (one per monomedia
//   component of the document) plus the cost the user should pay.
//   Definition 2: a user offer is the QoS the system can provide and the
//   cost, expressed in user-perceived terms (an MM profile instance).
// A user offer is derived from a system offer by the mapping functions.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cost/cost_model.hpp"
#include "document/model.hpp"
#include "media/qos.hpp"
#include "qosmap/mapping.hpp"
#include "util/money.hpp"

namespace qosnp {

/// Static negotiation status (paper Sec. 5.2.1): how well an offer's QoS
/// satisfies the user profile. Lower enum value = better grade; the SNS is
/// the *primary* classification key.
enum class Sns : int { kDesirable = 0, kAcceptable = 1, kConstraint = 2 };

std::string_view to_string(Sns sns);

/// The five negotiation statuses of paper Sec. 4.
enum class NegotiationStatus {
  kSucceeded,
  kFailedWithOffer,
  kFailedTryLater,
  kFailedWithoutOffer,
  kFailedWithLocalOffer,
};

std::string_view to_string(NegotiationStatus status);

/// One variant chosen for one monomedia, with its mapped system QoS.
struct OfferComponent {
  const Monomedia* monomedia = nullptr;
  const Variant* variant = nullptr;
  StreamRequirements requirements;
};

/// Definition 1. Classification parameters (sns, oif) are filled by Step 3.
struct SystemOffer {
  std::vector<OfferComponent> components;
  CostBreakdown cost;  ///< total includes the document copyright
  Sns sns = Sns::kConstraint;
  double oif = 0.0;

  Money total_cost() const { return cost.total; }
  std::string describe() const;
};

class OfferStream;

/// The enumerated offer space for one request. Owns the document reference
/// the component pointers index into (the catalog may drop the document
/// while a negotiation over it is in flight).
///
/// With the lazy best-first strategy `offers` is only the consumed prefix
/// (already in final classification order) and `stream` holds the
/// not-yet-materialised tail; fetch_next() pulls one more offer. A list with
/// a live stream should be moved, not copied — copies would share the stream
/// and steal offers from each other.
struct OfferList {
  std::shared_ptr<const MultimediaDocument> document;
  std::vector<SystemOffer> offers;  ///< classified best-to-worst after Step 4
  std::size_t total_combinations = 0;
  bool truncated = false;  ///< the enumeration cap dropped combinations
  /// Lazy tail of the classification order; null for eager lists and once
  /// the stream is drained.
  std::shared_ptr<OfferStream> stream;
  /// The list is ordered SNS-first (the smart procedure's order). Lets the
  /// commitment walk stop fetching at the first CONSTRAINT offer.
  bool sns_ordered = false;

  /// Materialise the next offer from the stream into `offers`. Returns false
  /// when there is no stream or it is exhausted (and drops the drained
  /// stream). Defined in enumerate.cpp.
  bool fetch_next();
  /// Offers reachable through this list: materialised prefix plus the
  /// stream's remaining yield. Equals offers.size() for eager lists.
  std::size_t known_count() const;
};

/// Definition 2.
struct UserOffer {
  std::optional<VideoQoS> video;
  std::optional<AudioQoS> audio;
  std::optional<TextQoS> text;
  std::optional<ImageQoS> image;
  Money cost;

  std::string describe() const;
};

/// Map a system offer into user-perceived terms. With several monomedia of
/// the same kind the weakest chosen quality is reported (the honest figure
/// to show the user).
UserOffer derive_user_offer(const SystemOffer& offer);

}  // namespace qosnp
