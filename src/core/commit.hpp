// Resource commitment (paper Step 5): given a system offer, reserve the
// resources supporting it — a disk-bandwidth stream on the server storing
// each chosen variant plus a network flow from that server to the client —
// atomically: if any reservation is refused, everything already reserved
// for the offer is rolled back (RAII handles unwind automatically).
//
// Servers and the transport refuse for two very different reasons, and the
// committer distinguishes them (Refusal::transient): a *transient* refusal
// (capacity exhausted right now, a momentary outage, an injected fault from
// src/fault) is worth retrying under the RetryPolicy before the commitment
// walk falls through to a worse offer; a *permanent* refusal (unknown
// server, no route) never is. FAILEDTRYLATER is therefore only reported
// when retries were truly exhausted.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "client/client_machine.hpp"
#include "core/offer.hpp"
#include "net/transport.hpp"
#include "obs/trace.hpp"
#include "server/media_server.hpp"
#include "util/result.hpp"
#include "util/rng.hpp"

namespace qosnp {

/// How the committer retries transiently-refused offers. The default is one
/// attempt — exactly the historical first-refusal-moves-on behaviour.
struct RetryPolicy {
  /// Total tries per offer, first one included (1 = no retries).
  int max_attempts = 1;
  /// Deterministic exponential schedule: the k-th retry (k = 0, 1, ...)
  /// backs off base * multiplier^k, capped at max_backoff_ms.
  double base_backoff_ms = 5.0;
  double backoff_multiplier = 2.0;
  double max_backoff_ms = 500.0;
  /// Jitter fraction f: the waited delay is drawn uniformly from
  /// [b_k * (1 - f), b_k * (1 + f)] around the deterministic schedule b_k.
  double jitter = 0.1;
  /// Per-offer commit budget in milliseconds of (virtual) backoff; a retry
  /// whose delay would exceed the budget is not taken. 0 = no deadline.
  double deadline_ms = 0.0;
  /// Seed of the jitter stream; the same seed reproduces the same delays.
  std::uint64_t seed = 0x51ab5eedULL;
  /// Actually sleep the backoff delays. Off by default: the negotiation
  /// procedure and every test account backoff in virtual time, which keeps
  /// seeded runs fast and bit-for-bit reproducible.
  bool sleep = false;

  /// The deterministic (un-jittered) schedule; monotone non-decreasing.
  double backoff_ms(int retry_index) const {
    double b = base_backoff_ms;
    for (int k = 0; k < retry_index && b < max_backoff_ms; ++k) b *= backoff_multiplier;
    return std::clamp(b, 0.0, max_backoff_ms);
  }

  /// The schedule with jitter applied from the given stream.
  double jittered_backoff_ms(int retry_index, Rng& rng) const {
    const double b = backoff_ms(retry_index);
    const double f = std::clamp(jitter, 0.0, 1.0);
    return f == 0.0 ? b : rng.uniform(b * (1.0 - f), b * (1.0 + f));
  }
};

/// Effort counters of the commitment walk, surfaced on Commitment,
/// CommitAttempt and NegotiationResult so tests and sim/metrics can assert
/// retry effectiveness and that failed commits leak nothing.
struct CommitStats {
  int attempts = 0;             ///< offer-level commit tries, first included
  int retries = 0;              ///< tries beyond the first per offer
  int transient_failures = 0;   ///< transient refusals observed
  int permanent_failures = 0;   ///< permanent refusals observed
  int released_on_failure = 0;  ///< reservations rolled back by failed tries
  double backoff_ms = 0.0;      ///< total (virtual) backoff waited

  void merge(const CommitStats& other) {
    attempts += other.attempts;
    retries += other.retries;
    transient_failures += other.transient_failures;
    permanent_failures += other.permanent_failures;
    released_on_failure += other.released_on_failure;
    backoff_ms += other.backoff_ms;
  }
};

/// The reservations backing one committed system offer. Move-only RAII:
/// destroying a Commitment releases every reservation (this is also what
/// implements Step 6's "resources reserved for the system offer are
/// de-allocated" on rejection/timeout).
class Commitment {
 public:
  Commitment() = default;
  Commitment(Commitment&&) = default;
  Commitment& operator=(Commitment&&) = default;

  bool empty() const { return streams_.empty() && flows_.empty(); }
  std::size_t stream_count() const { return streams_.size(); }
  std::size_t flow_count() const { return flows_.size(); }

  /// Flow ids held (the violation signal from the transport names flows).
  std::vector<FlowId> flow_ids() const;
  /// (server, stream) pairs held.
  std::vector<std::pair<const StreamServer*, StreamId>> stream_ids() const;

  /// What committing this offer cost (attempts, retries, backoff).
  const CommitStats& stats() const { return stats_; }

  /// Release everything now.
  void release();

 private:
  friend class ResourceCommitter;
  std::vector<ScopedStream> streams_;
  std::vector<ScopedFlow> flows_;
  CommitStats stats_;
};

class ResourceCommitter {
 public:
  /// `session_class` is stamped onto every StreamRequirements this committer
  /// presents to the servers and the transport, so headroom-differentiated
  /// admission sees who is asking. The default class with zero headroom is
  /// byte-identical to the class-blind behaviour.
  ResourceCommitter(ServerProvider& farm, TransportProvider& transport, RetryPolicy retry = {},
                    SessionClass session_class = SessionClass::kStandard)
      : farm_(&farm), transport_(&transport), retry_(retry), jitter_rng_(retry.seed),
        session_class_(session_class) {}
  virtual ~ResourceCommitter() = default;

  /// Try to reserve all resources of `offer` for delivery to `client`,
  /// retrying transient refusals under the retry policy. The returned
  /// refusal keeps the transient flag of the last failure, so callers know
  /// whether FAILEDTRYLATER (retries exhausted) or a permanent error is the
  /// honest verdict. An active `trace` context gets the attempt count,
  /// backoff history and per-try refusals annotated onto its parent span.
  Result<Commitment, Refusal> commit(const ClientMachine& client, const SystemOffer& offer,
                                     TraceContext trace = {});

  /// Cumulative counters over every commit() this committer ran.
  const CommitStats& stats() const { return stats_; }

 protected:
  /// One reservation walk over the offer's components. The retry loop,
  /// stats accounting and trace annotations all live in commit(); a
  /// subclass overriding this (the sharded FederatedCommitter) changes only
  /// *where* reservations land, never the retry/rollback semantics. An
  /// implementation must count rollbacks into stats.released_on_failure
  /// exactly as the base does.
  virtual Result<Commitment, Refusal> commit_once(const ClientMachine& client,
                                                  const SystemOffer& offer, CommitStats& stats);

  /// Append one (server, stream) / flow reservation to a commitment under
  /// construction — the hooks a subclass uses to keep Commitment's RAII
  /// rollback ordering (flows before streams) identical to the base walk.
  static void attach_stream(Commitment& commitment, StreamServer* server, StreamId id) {
    commitment.streams_.emplace_back(server, id);
  }
  static void attach_flow(Commitment& commitment, TransportProvider* transport, FlowId id) {
    commitment.flows_.emplace_back(transport, id);
  }

  ServerProvider& farm() { return *farm_; }
  TransportProvider& transport() { return *transport_; }
  SessionClass session_class() const { return session_class_; }

 private:
  ServerProvider* farm_;
  TransportProvider* transport_;
  RetryPolicy retry_;
  Rng jitter_rng_;
  SessionClass session_class_ = SessionClass::kStandard;
  CommitStats stats_;
};

}  // namespace qosnp
