// Resource commitment (paper Step 5): given a system offer, reserve the
// resources supporting it — a disk-bandwidth stream on the server storing
// each chosen variant plus a network flow from that server to the client —
// atomically: if any reservation is refused, everything already reserved
// for the offer is rolled back (RAII handles unwind automatically).
#pragma once

#include <string>
#include <vector>

#include "client/client_machine.hpp"
#include "core/offer.hpp"
#include "net/transport.hpp"
#include "server/media_server.hpp"
#include "util/result.hpp"

namespace qosnp {

/// The reservations backing one committed system offer. Move-only RAII:
/// destroying a Commitment releases every reservation (this is also what
/// implements Step 6's "resources reserved for the system offer are
/// de-allocated" on rejection/timeout).
class Commitment {
 public:
  Commitment() = default;
  Commitment(Commitment&&) = default;
  Commitment& operator=(Commitment&&) = default;

  bool empty() const { return streams_.empty() && flows_.empty(); }
  std::size_t stream_count() const { return streams_.size(); }
  std::size_t flow_count() const { return flows_.size(); }

  /// Flow ids held (the violation signal from the transport names flows).
  std::vector<FlowId> flow_ids() const;
  /// (server, stream) pairs held.
  std::vector<std::pair<const MediaServer*, StreamId>> stream_ids() const;

  /// Release everything now.
  void release();

 private:
  friend class ResourceCommitter;
  std::vector<ScopedStream> streams_;
  std::vector<ScopedFlow> flows_;
};

class ResourceCommitter {
 public:
  ResourceCommitter(ServerFarm& farm, TransportProvider& transport)
      : farm_(&farm), transport_(&transport) {}

  /// Try to reserve all resources of `offer` for delivery to `client`.
  Result<Commitment> commit(const ClientMachine& client, const SystemOffer& offer);

 private:
  ServerFarm* farm_;
  TransportProvider* transport_;
};

}  // namespace qosnp
