#include "core/plan_cache.hpp"

#include <bit>
#include <functional>

#include "util/validate.hpp"

namespace qosnp {

namespace {

/// Canonical byte-string builder: numbers fixed-width little-endian, doubles
/// bit-cast, strings length-prefixed — distinct inputs yield distinct bytes
/// by construction (no hashing, no collisions).
class Fingerprint {
 public:
  explicit Fingerprint(std::string& out) : out_(out) {}

  void u8(std::uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void boolean(bool v) { u8(v ? 1 : 0); }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) out_.push_back(static_cast<char>((v >> (i * 8)) & 0xff));
  }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void str(std::string_view s) {
    u64(s.size());
    out_.append(s);
  }
  void money(Money m) { i64(m.as_micros()); }

  void qos(const MonomediaQoS& q) {
    u64(q.index());
    std::visit(
        [this](const auto& v) {
          using T = std::decay_t<decltype(v)>;
          if constexpr (std::is_same_v<T, VideoQoS>) {
            u8(static_cast<std::uint8_t>(v.color));
            i64(v.frame_rate_fps);
            i64(v.resolution);
          } else if constexpr (std::is_same_v<T, AudioQoS>) {
            u8(static_cast<std::uint8_t>(v.quality));
          } else if constexpr (std::is_same_v<T, TextQoS>) {
            u8(static_cast<std::uint8_t>(v.language));
          } else {
            u8(static_cast<std::uint8_t>(v.color));
            i64(v.resolution);
          }
        },
        q);
  }

  void curve(const PiecewiseLinear& pl) {
    u64(pl.anchors().size());
    for (const auto& [x, y] : pl.anchors()) {
      f64(x);
      f64(y);
    }
  }

  void table(const CostTable& t) {
    u64(t.size());
    for (std::size_t i = 0; i < t.size(); ++i) {
      i64(t.at(i).upper_bps);
      money(t.at(i).cost_per_second);
    }
  }

 private:
  std::string& out_;
};

}  // namespace

std::string plan_config_digest(const EnumerationConfig& enumeration,
                               const ClassificationPolicy& policy,
                               std::size_t parallel_threshold, const CostModel& cost_model) {
  std::string out;
  Fingerprint fp(out);
  fp.str("qosnp-plan-cfg-v1");
  fp.u64(enumeration.max_offers);
  fp.boolean(enumeration.prune_dominated);
  fp.u8(static_cast<std::uint8_t>(enumeration.strategy));
  fp.u8(static_cast<std::uint8_t>(policy.sns_rule));
  fp.boolean(policy.oif_only);
  fp.u64(parallel_threshold);
  fp.table(cost_model.network_table());
  fp.table(cost_model.server_table());
  fp.f64(cost_model.best_effort_discount());
  return out;
}

std::string document_fingerprint(const MultimediaDocument& document) {
  std::string out;
  out.reserve(256 * document.monomedia.size());
  Fingerprint fp(out);
  fp.str(document.id);
  fp.money(document.copyright_cost);
  fp.u64(document.monomedia.size());
  for (const Monomedia& m : document.monomedia) {
    fp.str(m.id);
    fp.u8(static_cast<std::uint8_t>(m.kind));
    fp.f64(m.duration_s);
    fp.u64(m.variants.size());
    for (const Variant& v : m.variants) {
      fp.str(v.id);
      fp.u8(static_cast<std::uint8_t>(v.format));
      fp.qos(v.qos);
      fp.i64(v.avg_block_bytes);
      fp.i64(v.max_block_bytes);
      fp.f64(v.blocks_per_second);
      fp.i64(v.file_bytes);
      fp.str(v.server);
    }
  }
  return out;
}

std::string plan_cache_key(const MultimediaDocument& document, const ClientMachine& client,
                           const UserProfile& profile, const std::string& config_digest) {
  return plan_cache_key(document_fingerprint(document), client, profile, config_digest);
}

std::string plan_cache_key(const std::string& document_fp, const ClientMachine& client,
                           const UserProfile& profile, const std::string& config_digest) {
  std::string out;
  out.reserve(512 + document_fp.size());
  Fingerprint fp(out);
  fp.str("qosnp-plan-key-v1");
  fp.str(config_digest);

  // Document: id plus the full variant set — everything Steps 1-4 read.
  // (The epoch check already guarantees an unchanged catalog entry; the
  // content fingerprint keeps keys sound even across distinct catalogs
  // sharing one cache.)
  fp.str(document_fp);

  // Client capabilities (Step 1 local check + Step 2 decoder filter; the
  // name appears in Step-2 error strings, so it is result-relevant too).
  fp.str(client.name);
  fp.str(client.node);
  fp.i64(client.screen.width_px);
  fp.i64(client.screen.height_px);
  fp.u8(static_cast<std::uint8_t>(client.screen.color));
  fp.u64(client.decoders.size());
  for (CodingFormat f : client.decoders) fp.u8(static_cast<std::uint8_t>(f));
  fp.u8(static_cast<std::uint8_t>(client.max_audio));
  fp.boolean(client.has_audio_out);

  // MM profile. The profile *name* is deliberately excluded: no step reads
  // it, so "alice" and "bob" sharing one stored profile share one plan.
  const MMProfile& mm = profile.mm;
  fp.boolean(mm.video.has_value());
  if (mm.video) {
    fp.qos(MonomediaQoS{mm.video->desired});
    fp.qos(MonomediaQoS{mm.video->worst});
  }
  fp.boolean(mm.audio.has_value());
  if (mm.audio) {
    fp.qos(MonomediaQoS{mm.audio->desired});
    fp.qos(MonomediaQoS{mm.audio->worst});
  }
  fp.boolean(mm.text.has_value());
  if (mm.text) {
    fp.u8(static_cast<std::uint8_t>(mm.text->desired));
    fp.u64(mm.text->acceptable.size());
    for (Language l : mm.text->acceptable) fp.u8(static_cast<std::uint8_t>(l));
  }
  fp.boolean(mm.image.has_value());
  if (mm.image) {
    fp.qos(MonomediaQoS{mm.image->desired});
    fp.qos(MonomediaQoS{mm.image->worst});
  }
  fp.money(mm.cost.max_cost);
  fp.f64(mm.time.delivery_time_s);
  fp.f64(mm.time.choice_period_s);

  // Importance profile (all of it — every weight shifts OIF or SNS).
  const ImportanceProfile& imp = profile.importance;
  for (double w : imp.video_color) fp.f64(w);
  fp.curve(imp.frame_rate);
  fp.curve(imp.resolution);
  for (double w : imp.audio_quality) fp.f64(w);
  for (double w : imp.language) fp.f64(w);
  for (double w : imp.image_color) fp.f64(w);
  fp.curve(imp.image_resolution);
  for (double w : imp.media_weight) fp.f64(w);
  fp.f64(imp.cost_per_dollar);
  fp.u64(imp.preferred_servers.size());
  for (const std::string& s : imp.preferred_servers) fp.str(s);
  fp.f64(imp.server_bonus);

  return out;
}

CachePolicy CachePolicy::validated(CachePolicy policy) {
  require_config(policy.shards > 0, "CachePolicy", "shards must be at least 1");
  require_config(policy.capacity > 0, "CachePolicy", "capacity must be at least 1");
  return policy;
}

NegotiationPlanCache::NegotiationPlanCache(CachePolicy policy)
    : policy_(CachePolicy::validated(policy)) {
  per_shard_capacity_ = (policy_.capacity + policy_.shards - 1) / policy_.shards;
  shards_.reserve(policy_.shards);
  for (std::size_t i = 0; i < policy_.shards; ++i) shards_.push_back(std::make_unique<Shard>());
}

NegotiationPlanCache::Shard& NegotiationPlanCache::shard_for(const std::string& key) {
  return *shards_[std::hash<std::string_view>{}(key) % shards_.size()];
}

void NegotiationPlanCache::bump(std::atomic<std::uint64_t>& internal,
                                std::atomic<Counter*>& bound, std::uint64_t delta) {
  internal.fetch_add(delta, std::memory_order_relaxed);
  if (Counter* c = bound.load(std::memory_order_acquire); c != nullptr) c->add(delta);
}

std::shared_ptr<const NegotiationPlan> NegotiationPlanCache::lookup(const std::string& key,
                                                                    std::uint64_t epoch) {
  lookups_.fetch_add(1, std::memory_order_relaxed);
  Shard& shard = shard_for(key);
  std::shared_ptr<const NegotiationPlan> plan;
  bool was_stale = false;
  {
    std::lock_guard lk(shard.mu);
    auto it = shard.index.find(std::string_view(key));
    if (it != shard.index.end()) {
      if (it->second->epoch == epoch) {
        // Refresh recency and answer from cache.
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
        plan = it->second->plan;
      } else {
        // The catalog entry moved since the plan was built: drop it. A
        // stale lookup is also a miss (the caller recomputes), so the
        // conservation law lookups == hits + misses still holds.
        was_stale = true;
        shard.lru.erase(it->second);
        shard.index.erase(it);
      }
    }
  }
  if (plan) {
    bump(hits_, hits_metric_);
  } else {
    if (was_stale) bump(stale_, stale_metric_);
    bump(misses_, misses_metric_);
  }
  return plan;
}

void NegotiationPlanCache::store(const std::string& key,
                                 std::shared_ptr<const NegotiationPlan> plan) {
  if (!plan) return;
  const std::uint64_t epoch = plan->document_epoch;
  Shard& shard = shard_for(key);
  bool evicted = false;
  {
    std::lock_guard lk(shard.mu);
    auto it = shard.index.find(std::string_view(key));
    if (it != shard.index.end()) {
      it->second->epoch = epoch;
      it->second->plan = std::move(plan);
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    } else {
      shard.lru.push_front(Entry{key, epoch, std::move(plan)});
      shard.index.emplace(std::string_view(shard.lru.front().key), shard.lru.begin());
      if (shard.lru.size() > per_shard_capacity_) {
        shard.index.erase(std::string_view(shard.lru.back().key));
        shard.lru.pop_back();
        evicted = true;
      }
    }
  }
  stores_.fetch_add(1, std::memory_order_relaxed);
  if (evicted) bump(evictions_, evictions_metric_);
}

void NegotiationPlanCache::clear() {
  for (auto& shard : shards_) {
    std::lock_guard lk(shard->mu);
    shard->index.clear();
    shard->lru.clear();
  }
}

std::size_t NegotiationPlanCache::size() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard lk(shard->mu);
    total += shard->lru.size();
  }
  return total;
}

PlanCacheStats NegotiationPlanCache::stats() const {
  PlanCacheStats s;
  s.lookups = lookups_.load(std::memory_order_relaxed);
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.stale = stale_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.stores = stores_.load(std::memory_order_relaxed);
  return s;
}

void NegotiationPlanCache::bind_metrics(MetricsRegistry& metrics) {
  std::lock_guard lk(bind_mu_);
  if (bound_registry_ == &metrics) return;
  bound_registry_ = &metrics;
  Counter& hits = metrics.counter("qosnp_plan_cache_hits", {},
                                  "Plan-cache lookups answered from the cache");
  Counter& misses =
      metrics.counter("qosnp_plan_cache_misses", {},
                      "Plan-cache lookups that had to compute a fresh plan (stale included)");
  Counter& evictions = metrics.counter("qosnp_plan_cache_evictions", {},
                                       "Cached plans evicted by LRU capacity pressure");
  Counter& stale = metrics.counter("qosnp_plan_cache_stale", {},
                                   "Cached plans dropped on lookup after a document-epoch bump");
  // Catch up to the current totals, then forward every later increment, so
  // the registry and the internal counters agree from here on.
  hits.add(hits_.load(std::memory_order_relaxed));
  misses.add(misses_.load(std::memory_order_relaxed));
  evictions.add(evictions_.load(std::memory_order_relaxed));
  stale.add(stale_.load(std::memory_order_relaxed));
  hits_metric_.store(&hits, std::memory_order_release);
  misses_metric_.store(&misses, std::memory_order_release);
  evictions_metric_.store(&evictions, std::memory_order_release);
  stale_metric_.store(&stale, std::memory_order_release);
}

}  // namespace qosnp
