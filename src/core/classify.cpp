#include "core/classify.hpp"

#include <algorithm>

namespace qosnp {

namespace {

struct QosSatisfaction {
  bool all_desired = true;
  bool all_worst = true;
};

QosSatisfaction qos_satisfaction(const SystemOffer& offer, const MMProfile& profile) {
  QosSatisfaction s;
  for (const OfferComponent& c : offer.components) {
    std::visit(
        [&](const auto& q) {
          using T = std::decay_t<decltype(q)>;
          if constexpr (std::is_same_v<T, VideoQoS>) {
            if (profile.video) {
              if (!profile.video->satisfied_by(q)) s.all_desired = false;
              if (!profile.video->tolerates(q)) s.all_worst = false;
            }
          } else if constexpr (std::is_same_v<T, AudioQoS>) {
            if (profile.audio) {
              if (!profile.audio->satisfied_by(q)) s.all_desired = false;
              if (!profile.audio->tolerates(q)) s.all_worst = false;
            }
          } else if constexpr (std::is_same_v<T, TextQoS>) {
            if (profile.text) {
              if (!profile.text->satisfied_by(q)) s.all_desired = false;
              if (!profile.text->tolerates(q)) s.all_worst = false;
            }
          } else {
            if (profile.image) {
              if (!profile.image->satisfied_by(q)) s.all_desired = false;
              if (!profile.image->tolerates(q)) s.all_worst = false;
            }
          }
        },
        c.variant->qos);
  }
  return s;
}

}  // namespace

bool qos_matters(const MMProfile& profile, const ImportanceProfile& importance) {
  double total = 0.0;
  if (profile.video) {
    total += importance.qos_importance(MonomediaQoS{profile.video->desired});
  }
  if (profile.audio) {
    total += importance.qos_importance(MonomediaQoS{profile.audio->desired});
  }
  if (profile.text) {
    total += importance.qos_importance(MonomediaQoS{TextQoS{profile.text->desired}});
  }
  if (profile.image) {
    total += importance.qos_importance(MonomediaQoS{profile.image->desired});
  }
  return total > 0.0;
}

Sns compute_sns(const SystemOffer& offer, const MMProfile& profile,
                const ImportanceProfile& importance, ClassificationPolicy policy) {
  const bool cost_within = offer.total_cost() <= profile.cost.max_cost;

  if (policy.sns_rule == ClassificationPolicy::SnsRule::kImportanceWeighted) {
    const bool cost_cares = importance.cost_per_dollar > 0.0;
    if (cost_cares && !qos_matters(profile, importance)) {
      // The user cares only about cost: grade on the cost constraint alone.
      return cost_within ? Sns::kDesirable : Sns::kConstraint;
    }
  }

  const QosSatisfaction s = qos_satisfaction(offer, profile);
  if (!s.all_worst) return Sns::kConstraint;
  if (s.all_desired && cost_within) return Sns::kDesirable;
  return Sns::kAcceptable;
}

double compute_oif(const SystemOffer& offer, const ImportanceProfile& importance) {
  double qos_sum = 0.0;
  for (const OfferComponent& c : offer.components) {
    qos_sum += importance.qos_importance(c.variant->qos);
    if (importance.server_bonus != 0.0 && importance.prefers_server(c.variant->server)) {
      qos_sum += importance.server_bonus;
    }
  }
  return qos_sum - importance.cost_importance(offer.total_cost());
}

bool satisfies_user(const SystemOffer& offer, const MMProfile& profile) {
  const QosSatisfaction s = qos_satisfaction(offer, profile);
  return s.all_worst && offer.total_cost() <= profile.cost.max_cost;
}

void classify_offers(std::vector<SystemOffer>& offers, const MMProfile& profile,
                     const ImportanceProfile& importance, ClassificationPolicy policy,
                     ThreadPool* pool) {
  auto score_one = [&](std::size_t i) {
    offers[i].sns = compute_sns(offers[i], profile, importance, policy);
    offers[i].oif = compute_oif(offers[i], importance);
  };
  if (pool != nullptr) {
    parallel_for(*pool, 0, offers.size(), score_one);
  } else {
    for (std::size_t i = 0; i < offers.size(); ++i) score_one(i);
  }

  auto variant_ids_less = [](const SystemOffer& a, const SystemOffer& b) {
    const std::size_t n = std::min(a.components.size(), b.components.size());
    for (std::size_t i = 0; i < n; ++i) {
      const auto& va = a.components[i].variant->id;
      const auto& vb = b.components[i].variant->id;
      if (va != vb) return va < vb;
    }
    return a.components.size() < b.components.size();
  };
  std::sort(offers.begin(), offers.end(), [&](const SystemOffer& a, const SystemOffer& b) {
    if (!policy.oif_only && a.sns != b.sns) return a.sns < b.sns;
    if (a.oif != b.oif) return a.oif > b.oif;
    if (a.total_cost() != b.total_cost()) return a.total_cost() < b.total_cost();
    return variant_ids_less(a, b);
  });
}

}  // namespace qosnp
