// Human-readable rendering of negotiation results: the text the prototype's
// *information window* (paper Fig. 6 / Sec. 8) displayed — the negotiation
// status, the offered QoS per medium, the cost, and what the user can do
// next. Used by the examples and the CLI profile tool.
#pragma once

#include <string>

#include "core/qos_manager.hpp"

namespace qosnp {

/// Multi-line report of one negotiation outcome.
std::string render_information_window(const NegotiationResult& outcome);

/// One-line summary ("SUCCEEDED: video (color, 25 frames/s, ...) at $4.55").
std::string render_summary(const NegotiationResult& outcome);

/// Explain the classification: the top `max_rows` system offers with their
/// SNS, OIF, cost, whether they satisfy the user requirements, and which
/// one was committed — the "why did I get this offer?" view the paper's
/// automatic classification otherwise hides from the user.
std::string render_classification_table(const NegotiationResult& outcome,
                                        const MMProfile& profile, std::size_t max_rows = 10);

}  // namespace qosnp
