#include "core/offer.hpp"

#include <sstream>

namespace qosnp {

std::string_view to_string(Sns sns) {
  switch (sns) {
    case Sns::kDesirable: return "DESIRABLE";
    case Sns::kAcceptable: return "ACCEPTABLE";
    case Sns::kConstraint: return "CONSTRAINT";
  }
  return "?";
}

std::string_view to_string(NegotiationStatus status) {
  switch (status) {
    case NegotiationStatus::kSucceeded: return "SUCCEEDED";
    case NegotiationStatus::kFailedWithOffer: return "FAILEDWITHOFFER";
    case NegotiationStatus::kFailedTryLater: return "FAILEDTRYLATER";
    case NegotiationStatus::kFailedWithoutOffer: return "FAILEDWITHOUTOFFER";
    case NegotiationStatus::kFailedWithLocalOffer: return "FAILEDWITHLOCALOFFER";
  }
  return "?";
}

std::string SystemOffer::describe() const {
  std::ostringstream os;
  os << "{";
  for (std::size_t i = 0; i < components.size(); ++i) {
    if (i) os << ", ";
    os << components[i].variant->id;
  }
  os << "} " << to_string(sns) << " oif=" << oif << " cost=" << total_cost().to_string();
  return os.str();
}

namespace {

template <typename Q>
void fold_weakest(std::optional<Q>& slot, const Q& q);

template <>
void fold_weakest<VideoQoS>(std::optional<VideoQoS>& slot, const VideoQoS& q) {
  if (!slot) {
    slot = q;
    return;
  }
  slot->color = std::min(slot->color, q.color);
  slot->frame_rate_fps = std::min(slot->frame_rate_fps, q.frame_rate_fps);
  slot->resolution = std::min(slot->resolution, q.resolution);
}

template <>
void fold_weakest<AudioQoS>(std::optional<AudioQoS>& slot, const AudioQoS& q) {
  if (!slot) {
    slot = q;
    return;
  }
  slot->quality = std::min(slot->quality, q.quality);
}

template <>
void fold_weakest<ImageQoS>(std::optional<ImageQoS>& slot, const ImageQoS& q) {
  if (!slot) {
    slot = q;
    return;
  }
  slot->color = std::min(slot->color, q.color);
  slot->resolution = std::min(slot->resolution, q.resolution);
}

}  // namespace

UserOffer derive_user_offer(const SystemOffer& offer) {
  UserOffer user;
  user.cost = offer.total_cost();
  for (const OfferComponent& c : offer.components) {
    std::visit(
        [&user](const auto& q) {
          using T = std::decay_t<decltype(q)>;
          if constexpr (std::is_same_v<T, VideoQoS>) {
            fold_weakest(user.video, q);
          } else if constexpr (std::is_same_v<T, AudioQoS>) {
            fold_weakest(user.audio, q);
          } else if constexpr (std::is_same_v<T, TextQoS>) {
            if (!user.text) user.text = q;
          } else {
            fold_weakest(user.image, q);
          }
        },
        c.variant->qos);
  }
  return user;
}

std::string UserOffer::describe() const {
  std::ostringstream os;
  bool first = true;
  auto sep = [&] {
    if (!first) os << ", ";
    first = false;
  };
  if (video) {
    sep();
    os << "video " << video->to_string();
  }
  if (audio) {
    sep();
    os << "audio " << audio->to_string();
  }
  if (text) {
    sep();
    os << "text " << text->to_string();
  }
  if (image) {
    sep();
    os << "image " << image->to_string();
  }
  sep();
  os << "at " << cost.to_string();
  return os.str();
}

}  // namespace qosnp
