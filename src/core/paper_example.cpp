#include "core/paper_example.hpp"

#include "document/corpus.hpp"

namespace qosnp::paper {

namespace {

/// One-video-monomedia document whose variants carry the example QoS
/// ladder; variant ids are the paper's offer names.
std::shared_ptr<const MultimediaDocument> example_document(
    const std::vector<std::pair<std::string, VideoQoS>>& ladder) {
  auto doc = std::make_shared<MultimediaDocument>();
  doc->id = "news-article";
  doc->title = "A video news article";
  doc->copyright_cost = Money{};
  Monomedia video;
  video.id = "news-article/video";
  video.kind = MediaKind::kVideo;
  video.name = "news video";
  video.duration_s = 180.0;
  for (const auto& [name, qos] : ladder) {
    video.variants.push_back(
        make_video_variant(name, qos, CodingFormat::kMPEG1, video.duration_s, "server-a"));
  }
  doc->monomedia.push_back(std::move(video));
  return doc;
}

/// A single-component system offer with its cost pinned to a dollar figure.
SystemOffer pinned_offer(const std::shared_ptr<const MultimediaDocument>& doc,
                         std::size_t variant_index, Money cost) {
  const Monomedia& video = doc->monomedia.front();
  SystemOffer offer;
  OfferComponent c;
  c.monomedia = &video;
  c.variant = &video.variants[variant_index];
  c.requirements = map_variant(*c.variant, video.duration_s, TimeProfile{});
  offer.components.push_back(c);
  offer.cost.copyright = Money{};
  offer.cost.total = cost;
  return offer;
}

UserProfile video_only_profile(const VideoQoS& desired_and_worst, Money max_cost) {
  UserProfile profile;
  profile.name = "paper-example";
  VideoProfile video;
  video.desired = desired_and_worst;
  video.worst = desired_and_worst;
  profile.mm.video = video;
  profile.mm.cost.max_cost = max_cost;
  profile.importance = importance_setting(1);
  return profile;
}

}  // namespace

ImportanceProfile importance_setting(int which) {
  ImportanceProfile imp;
  // Zero everything; only the factors the example names are set.
  imp.video_color = {0.0, 0.0, 0.0, 0.0};
  imp.audio_quality = {0.0, 0.0, 0.0};
  imp.language = {0.0, 0.0, 0.0, 0.0};
  imp.image_color = {0.0, 0.0, 0.0, 0.0};
  switch (which) {
    case 1:
    case 2:
      // colour 9, grey 6, black&white 2; TV resolution 9; 25fps 9, 15fps 5.
      imp.video_color = {2.0, 6.0, 9.0, 9.0};
      imp.frame_rate = PiecewiseLinear{{15.0, 5.0}, {25.0, 9.0}};
      imp.resolution = PiecewiseLinear{{static_cast<double>(kTvResolution), 9.0}};
      imp.cost_per_dollar = which == 1 ? 4.0 : 0.0;
      break;
    case 3:
      // All QoS importances zero; cost importance 4.
      imp.frame_rate = PiecewiseLinear{{25.0, 0.0}};
      imp.resolution = PiecewiseLinear{{static_cast<double>(kTvResolution), 0.0}};
      imp.cost_per_dollar = 4.0;
      break;
    default:
      break;
  }
  return imp;
}

ClassificationExample classification_example() {
  ClassificationExample ex;
  ex.document = example_document({
      {"offer1", VideoQoS{ColorDepth::kBlackWhite, 25, kTvResolution}},
      {"offer2", VideoQoS{ColorDepth::kColor, 15, kTvResolution}},
      {"offer3", VideoQoS{ColorDepth::kGray, 25, kTvResolution}},
      {"offer4", VideoQoS{ColorDepth::kColor, 25, kTvResolution}},
  });
  ex.offers.document = ex.document;
  ex.offers.total_combinations = 4;
  ex.offers.offers.push_back(pinned_offer(ex.document, 0, Money::cents(250)));
  ex.offers.offers.push_back(pinned_offer(ex.document, 1, Money::dollars(4)));
  ex.offers.offers.push_back(pinned_offer(ex.document, 2, Money::dollars(3)));
  ex.offers.offers.push_back(pinned_offer(ex.document, 3, Money::dollars(5)));
  ex.profile = video_only_profile(VideoQoS{ColorDepth::kColor, 25, kTvResolution},
                                  Money::dollars(4));
  return ex;
}

std::string offer_name(const SystemOffer& offer) {
  return offer.components.empty() ? std::string{} : offer.components.front().variant->id;
}

MotivatingExample motivating_example() {
  MotivatingExample ex;
  ex.document = example_document({
      {"offerA", VideoQoS{ColorDepth::kColor, 15, kTvResolution}},
      {"offerB", VideoQoS{ColorDepth::kGray, 25, kTvResolution}},
      {"offerC", VideoQoS{ColorDepth::kColor, 25, kTvResolution}},
  });
  ex.offers.document = ex.document;
  ex.offers.total_combinations = 3;
  ex.offers.offers.push_back(pinned_offer(ex.document, 0, Money::dollars(5)));
  ex.offers.offers.push_back(pinned_offer(ex.document, 1, Money::dollars(4)));
  ex.offers.offers.push_back(pinned_offer(ex.document, 2, Money::dollars(6)));
  ex.profile = video_only_profile(VideoQoS{ColorDepth::kColor, 25, kTvResolution},
                                  Money::dollars(6));
  return ex;
}

}  // namespace qosnp::paper
