// The single request value type of the negotiation entry points: one
// NegotiationRequest is the one argument of both QoSManager::negotiate and
// NegotiationService::submit, replacing their previously divergent parameter
// lists. It bundles who is asking (client), for what (document reference —
// by catalog id or already resolved), on which terms (user profile, deadline,
// degraded-acceptance), and the cross-cutting concerns (trace context, plan
// cache policy).
#pragma once

#include <cstdint>
#include <memory>
#include <utility>

#include "client/client_machine.hpp"
#include "document/model.hpp"
#include "obs/trace.hpp"
#include "policy/session_class.hpp"
#include "profile/profiles.hpp"

namespace qosnp {

/// Per-request plan-cache policy.
enum class CacheUse : std::uint8_t {
  kDefault,  ///< use the manager's cache when one is configured
  kBypass,   ///< compute fresh, do not read or write the cache
  kRefresh,  ///< compute fresh and overwrite the cached plan
};

struct NegotiationRequest {
  /// Caller-chosen id, stamped on the result and its trace (0 = unassigned;
  /// the service keeps whatever the submitter set).
  std::uint64_t id = 0;

  ClientMachine client;

  /// The requested document, by catalog id. Ignored when `resolved` is set.
  DocumentId document;
  /// An already-resolved document (renegotiation: the session holds the
  /// reference even if the catalog entry was replaced meanwhile). A resolved
  /// request never touches the catalog or the plan cache.
  std::shared_ptr<const MultimediaDocument> resolved;

  UserProfile profile;

  /// Who wins under congestion: the class is stamped on every stream
  /// reservation (headroom-differentiated admission at the farm/transport),
  /// carried onto the opened session, and read by the preemption policy —
  /// a class may only preempt sessions of strictly lower class. The default
  /// keeps every pre-policy call site byte-identical.
  SessionClass session_class = SessionClass::kStandard;

  /// Service-side deadline override in milliseconds (0 = use the service
  /// default). Ignored by direct QoSManager::negotiate calls.
  double deadline_ms = 0.0;

  /// Whether the submitter will keep a session whose committed offer does
  /// not satisfy the requested QoS (FAILEDWITHOFFER). Service-side only.
  bool accept_degraded = true;

  CacheUse cache = CacheUse::kDefault;

  /// Active context records one span per executed stage on its trace. The
  /// service replaces this with its own per-request trace.
  TraceContext trace;
};

/// Convenience builders for the common call shapes.
inline NegotiationRequest make_negotiation_request(ClientMachine client, DocumentId document,
                                                   UserProfile profile, TraceContext trace = {}) {
  NegotiationRequest request;
  request.client = std::move(client);
  request.document = std::move(document);
  request.profile = std::move(profile);
  request.trace = trace;
  return request;
}

inline NegotiationRequest make_negotiation_request(
    ClientMachine client, std::shared_ptr<const MultimediaDocument> resolved, UserProfile profile,
    TraceContext trace = {}) {
  NegotiationRequest request;
  request.client = std::move(client);
  if (resolved) request.document = resolved->id;
  request.resolved = std::move(resolved);
  request.profile = std::move(profile);
  request.trace = trace;
  return request;
}

}  // namespace qosnp
