#include "core/commit.hpp"

#include <chrono>
#include <thread>

#include "util/log.hpp"

namespace qosnp {

std::vector<FlowId> Commitment::flow_ids() const {
  std::vector<FlowId> ids;
  ids.reserve(flows_.size());
  for (const ScopedFlow& f : flows_) ids.push_back(f.id());
  return ids;
}

std::vector<std::pair<const StreamServer*, StreamId>> Commitment::stream_ids() const {
  std::vector<std::pair<const StreamServer*, StreamId>> ids;
  ids.reserve(streams_.size());
  for (const ScopedStream& s : streams_) ids.push_back({s.server(), s.id()});
  return ids;
}

void Commitment::release() {
  // Release flows before streams: tear the network path down before the
  // disk stream feeding it.
  flows_.clear();
  streams_.clear();
}

Result<Commitment, Refusal> ResourceCommitter::commit_once(const ClientMachine& client,
                                                           const SystemOffer& offer,
                                                           CommitStats& stats) {
  Commitment commitment;
  for (const OfferComponent& c : offer.components) {
    StreamServer* server = farm_->find_server(c.variant->server);
    if (server == nullptr) {
      return permanent_refusal(c.variant->server,
                               "variant '" + c.variant->id + "' lives on unknown server");
    }
    // Stamp the owning session's class so headroom-differentiated admission
    // at the server and the transport knows who is asking.
    StreamRequirements requirements = c.requirements;
    requirements.session_class = session_class_;
    auto stream = server->admit(requirements);
    if (!stream.ok()) {
      // RAII: commitment's handles release everything reserved so far.
      stats.released_on_failure +=
          static_cast<int>(commitment.stream_count() + commitment.flow_count());
      return Err(stream.error());
    }
    commitment.streams_.emplace_back(server, stream.value());

    auto flow = transport_->reserve(server->node(), client.node, requirements);
    if (!flow.ok()) {
      stats.released_on_failure +=
          static_cast<int>(commitment.stream_count() + commitment.flow_count());
      return Err(flow.error());
    }
    commitment.flows_.emplace_back(transport_, flow.value());
  }
  return commitment;
}

Result<Commitment, Refusal> ResourceCommitter::commit(const ClientMachine& client,
                                                      const SystemOffer& offer,
                                                      TraceContext trace) {
  CommitStats stats;
  Refusal last;
  const int max_attempts = std::max(1, retry_.max_attempts);
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    ++stats.attempts;
    if (attempt > 0) ++stats.retries;
    auto result = commit_once(client, offer, stats);
    if (result.ok()) {
      Commitment commitment = std::move(result.value());
      commitment.stats_ = stats;
      stats_.merge(stats);
      trace.annotate("result", "committed");
      trace.annotate("attempts", static_cast<std::uint64_t>(stats.attempts));
      trace.annotate("backoff_ms", stats.backoff_ms);
      QOSNP_LOG_DEBUG("commit", "committed offer with ", commitment.stream_count(),
                      " streams / ", commitment.flow_count(), " flows for client ", client.name,
                      " after ", stats.attempts, " attempt(s)");
      return commitment;
    }
    last = result.error();
    trace.annotate("refusal", last.describe() + (last.transient ? " [transient]" : " [permanent]"));
    if (last.transient) {
      ++stats.transient_failures;
    } else {
      ++stats.permanent_failures;
      break;  // retrying an unknown server or missing route cannot help
    }
    if (attempt + 1 >= max_attempts) break;
    // Back off before the next try. Time is accounted virtually (and only
    // slept when the policy asks for real delays) so the per-offer deadline
    // cuts the loop deterministically.
    const double delay = retry_.jittered_backoff_ms(attempt, jitter_rng_);
    if (retry_.deadline_ms > 0.0 && stats.backoff_ms + delay > retry_.deadline_ms) {
      QOSNP_LOG_DEBUG("commit", "retry deadline reached after ", stats.attempts,
                      " attempt(s) for client ", client.name);
      break;
    }
    stats.backoff_ms += delay;
    if (retry_.sleep) {
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(delay));
    }
  }
  stats_.merge(stats);
  // Attribution for the trace: who refused last, and how hard we tried —
  // the figures a FAILEDTRYLATER/FAILEDWITHOFFER post-mortem needs.
  trace.annotate("result", "refused");
  trace.annotate("component", last.component);
  trace.annotate("attempts", static_cast<std::uint64_t>(stats.attempts));
  trace.annotate("backoff_ms", stats.backoff_ms);
  Result<Commitment, Refusal> failed = Err(std::move(last));
  // Callers read the effort off the committer-level stats() accumulator.
  return failed;
}

}  // namespace qosnp
