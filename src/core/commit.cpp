#include "core/commit.hpp"

#include "util/log.hpp"

namespace qosnp {

std::vector<FlowId> Commitment::flow_ids() const {
  std::vector<FlowId> ids;
  ids.reserve(flows_.size());
  for (const ScopedFlow& f : flows_) ids.push_back(f.id());
  return ids;
}

std::vector<std::pair<const MediaServer*, StreamId>> Commitment::stream_ids() const {
  std::vector<std::pair<const MediaServer*, StreamId>> ids;
  ids.reserve(streams_.size());
  for (const ScopedStream& s : streams_) ids.push_back({s.server(), s.id()});
  return ids;
}

void Commitment::release() {
  // Release flows before streams: tear the network path down before the
  // disk stream feeding it.
  flows_.clear();
  streams_.clear();
}

Result<Commitment> ResourceCommitter::commit(const ClientMachine& client,
                                             const SystemOffer& offer) {
  Commitment commitment;
  for (const OfferComponent& c : offer.components) {
    MediaServer* server = farm_->find(c.variant->server);
    if (server == nullptr) {
      return Err("variant '" + c.variant->id + "' lives on unknown server '" +
                 c.variant->server + "'");
    }
    auto stream = server->admit(c.requirements);
    if (!stream.ok()) {
      // RAII: commitment's handles release everything reserved so far.
      return Err(stream.error());
    }
    commitment.streams_.emplace_back(server, stream.value());

    auto flow = transport_->reserve(server->node(), client.node, c.requirements);
    if (!flow.ok()) {
      return Err(flow.error());
    }
    commitment.flows_.emplace_back(transport_, flow.value());
  }
  QOSNP_LOG_DEBUG("commit", "committed offer with ", commitment.stream_count(), " streams / ",
                  commitment.flow_count(), " flows for client ", client.name);
  return commitment;
}

}  // namespace qosnp
