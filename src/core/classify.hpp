// Classification of system offers (paper Sec. 5): Step 3 computes the two
// classification parameters of every feasible offer — the static
// negotiation status (SNS) and the overall importance factor (OIF) — and
// Step 4 sorts the offers best-to-worst with SNS as the primary key and OIF
// as the secondary key.
//
// SNS grading (Sec. 5.2.1, reverse-engineered from the worked example):
//   DESIRABLE  — every requested medium satisfies the *desired* QoS and the
//                cost does not exceed the user's maximum;
//   ACCEPTABLE — every requested medium meets the *worst acceptable* QoS
//                (offer4 of the example costs $5 against a $4 maximum and is
//                still graded ACCEPTABLE: a cost overrun blocks DESIRABLE
//                but not ACCEPTABLE);
//   CONSTRAINT — some medium violates the worst acceptable QoS.
//
// The paper's third importance setting (Sec. 5.2.2 example (3): all QoS
// importances zero, "the cost is the main constraint") orders the
// ACCEPTABLE offer4 *last*, which contradicts a literal SNS-primary sort.
// The orderings of all three settings are reproduced exactly by the
// importance-weighted policy: when the user assigns zero importance to all
// QoS characteristics (and nonzero to cost), the SNS is graded on cost
// alone — a cost overrun then violates the constraint, and QoS shortfalls
// do not. The literal rule remains available as kPlain for ablation (E2
// prints both).
#pragma once

#include <cstddef>
#include <vector>

#include "core/offer.hpp"
#include "profile/profiles.hpp"
#include "util/thread_pool.hpp"

namespace qosnp {

struct ClassificationPolicy {
  enum class SnsRule {
    kPlain,               ///< literal Sec. 5.2.1 grading
    kImportanceWeighted,  ///< default; reproduces all three Sec. 5.2.2 orderings
  };
  SnsRule sns_rule = SnsRule::kImportanceWeighted;

  /// Ablation switch: ignore the SNS and sort purely by OIF.
  bool oif_only = false;
};

/// Does the importance profile assign any weight to QoS characteristics of
/// the media this profile requests? (Drives the importance-weighted rule.)
bool qos_matters(const MMProfile& profile, const ImportanceProfile& importance);

/// Step 3a: static negotiation status of one offer.
Sns compute_sns(const SystemOffer& offer, const MMProfile& profile,
                const ImportanceProfile& importance,
                ClassificationPolicy policy = {});

/// Step 3b: overall importance factor of one offer:
///   OIF = sum of QoS importances of the offer's variants
///         - cost importance of the offer's total cost.
double compute_oif(const SystemOffer& offer, const ImportanceProfile& importance);

/// True when the offer satisfies the user requirements in the Step 5 sense
/// (meets the worst-acceptable QoS of every requested medium and stays
/// within the maximum cost) — commitment of such an offer yields SUCCEEDED,
/// of any other offer FAILEDWITHOFFER.
bool satisfies_user(const SystemOffer& offer, const MMProfile& profile);

/// Steps 3+4: fill sns/oif on every offer and sort best-to-worst
/// (SNS ascending, then OIF descending, then cheaper first, then by variant
/// ids so the order is deterministic). Classification parameters of the
/// offers are computed in parallel on `pool` when the offer list is large.
void classify_offers(std::vector<SystemOffer>& offers, const MMProfile& profile,
                     const ImportanceProfile& importance, ClassificationPolicy policy = {},
                     ThreadPool* pool = nullptr);

}  // namespace qosnp
