// Feasible-offer enumeration (paper Steps 2-3 input): for each monomedia of
// the requested document, keep the variants whose coding format the client
// machine can decode (static compatibility checking); a system offer is one
// variant per monomedia, so the offer space is the cartesian product of the
// per-monomedia feasible sets. The paper notes "many offers may be produced
// for a given request" — the enumerator caps the expansion and reports the
// truncation explicitly (never silently).
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <vector>

#include "client/client_machine.hpp"
#include "core/classify.hpp"
#include "core/offer.hpp"
#include "cost/cost_model.hpp"
#include "document/model.hpp"
#include "profile/profiles.hpp"

namespace qosnp {

enum class EnumerationStrategy {
  /// Materialise the full cartesian product (up to the cap), then classify
  /// and sort. Kept as the differential-test oracle.
  kEager,
  /// Lazy best-first stream: offers are produced one at a time, already
  /// classified, in exactly the order the eager path would sort them into.
  /// Negotiation cost scales with offers *consumed*, not offers *possible*,
  /// and the cap keeps the best offers instead of a mixed-radix prefix.
  kBestFirst,
};

struct EnumerationConfig {
  /// Hard cap on enumerated combinations; the excess is dropped (flagged in
  /// OfferList::truncated). Under kBestFirst the cap bounds how many offers
  /// the stream will ever yield — and since the stream is best-first, the
  /// capped set is the *best* max_offers of the whole product, not the first
  /// max_offers in document order.
  std::size_t max_offers = 20'000;
  /// Drop variants dominated by a same-server sibling (better-or-equal QoS
  /// at lower-or-equal block rates): such variants can never appear in a
  /// better offer, so pruning them shrinks the cartesian product without
  /// changing the negotiation result. Off by default because the unpruned
  /// ladder is what the paper's adaptation procedure falls back onto.
  bool prune_dominated = false;
  EnumerationStrategy strategy = EnumerationStrategy::kBestFirst;
};

/// Per-monomedia feasible variants after Step 2.
struct FeasibleSet {
  std::shared_ptr<const MultimediaDocument> document;
  std::vector<const Monomedia*> monomedia;  ///< only media the profile requests
  std::vector<std::vector<const Variant*>> variants;  ///< parallel to monomedia

  /// Cartesian-product size.
  std::size_t combination_count() const;
};

/// Step 2: filter variants by client decoder compatibility. Monomedia whose
/// kind the profile does not request are skipped entirely (the user did not
/// ask for them). The error carries the first monomedia left with no
/// feasible variant (-> FAILEDWITHOUTOFFER).
Result<FeasibleSet> compatible_variants(std::shared_ptr<const MultimediaDocument> document,
                                        const ClientMachine& client, const MMProfile& profile);

/// True when `a` renders at least `b`'s quality (per-medium `meets`).
/// Cross-media comparisons are false.
bool qos_dominates(const MonomediaQoS& a, const MonomediaQoS& b);

/// Remove same-server dominated variants from every feasible set; returns
/// how many variants were dropped. A variant is dominated when another
/// variant on the same server has dominating QoS and delivery rates (avg,
/// max, file size) at most as large — it could only ever produce offers that
/// are worse in quality and at least as expensive. Variants on other servers
/// are kept regardless (they matter to adaptation and load spreading).
std::size_t prune_dominated_variants(FeasibleSet& feasible);

/// Build the system offers of a feasible set: map every variant to its
/// stream requirements (Sec. 6) and price every combination (Sec. 7).
/// sns/oif are left for classify_offers.
OfferList enumerate_offers(const FeasibleSet& feasible, const MMProfile& profile,
                           const CostModel& cost_model, EnumerationConfig config = {});

/// The immutable Steps 3-4 precomputation behind OfferStream: memoised
/// per-variant SNS/OIF contributions and the pre-sorted per-class variant
/// lists. Building it is the expensive part of starting a stream; walking it
/// is cheap per-request cursor state. The seed depends only on (feasible
/// set, profile, importance, cost model, policy) — never on server or
/// transport state — so one seed can be shared, read-only and thread-safe,
/// by any number of concurrent streams (the cross-request plan cache stores
/// exactly this object). Opaque: defined in enumerate.cpp.
class OfferStreamSeed;

/// Build a shareable stream seed. Every OfferStream spawned from the same
/// seed yields the same offers in the same order (bit-identical).
std::shared_ptr<const OfferStreamSeed> make_offer_stream_seed(FeasibleSet feasible,
                                                              MMProfile profile,
                                                              ImportanceProfile importance,
                                                              CostModel cost_model,
                                                              ClassificationPolicy policy);

/// Cartesian-product size of the seed's feasible sets (saturating, like
/// FeasibleSet::combination_count()).
std::size_t seed_total_combinations(const OfferStreamSeed& seed);

/// Lazy best-first generator over the offer space (Steps 3+4 fused into the
/// enumeration): next() yields system offers with sns/oif already filled, in
/// exactly the classification order of classify_offers — SNS ascending, then
/// OIF descending, then cheaper first, then variant ids.
///
/// How: every per-monomedia feasible set is partitioned by the profile into
/// desired / acceptable-only / violating variants and pre-sorted by the
/// variant's separable OIF contribution (its QoS importance, server bonus,
/// and the cost importance of its own stream charge — all memoised once, so
/// classification work is shared across every offer the variant appears in).
/// Each SNS class is the disjoint union of a few cartesian-product
/// sub-spaces; each sub-space is walked with a heap of frontier states whose
/// keys are the *exact* materialised (oif, cost, ids) of the offer, so
/// emission order is bit-identical to the eager sort. Pulling one offer
/// costs O(n log frontier) instead of O(product).
class OfferStream {
 public:
  OfferStream(FeasibleSet feasible, MMProfile profile, ImportanceProfile importance,
              CostModel cost_model, ClassificationPolicy policy, std::size_t max_offers);
  /// Spawn a fresh cursor over a shared (possibly cached) seed: all the
  /// memoisation is reused, only the frontier heaps are rebuilt.
  OfferStream(std::shared_ptr<const OfferStreamSeed> seed, std::size_t max_offers);
  ~OfferStream();
  OfferStream(const OfferStream&) = delete;
  OfferStream& operator=(const OfferStream&) = delete;

  /// The next-best offer, or nullopt once emit_limit() offers were yielded.
  std::optional<SystemOffer> next();

  /// Cartesian-product size (saturating, like combination_count()).
  std::size_t total_combinations() const;
  /// min(total_combinations, max_offers): how many offers next() will yield.
  std::size_t emit_limit() const;
  std::size_t yielded() const;
  bool exhausted() const;
  /// Frontier states scored so far — the stream's actual work, for tests and
  /// benches to assert laziness (stays near yielded()*n even when the
  /// product is astronomical).
  std::size_t states_generated() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace qosnp
