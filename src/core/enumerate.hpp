// Feasible-offer enumeration (paper Steps 2-3 input): for each monomedia of
// the requested document, keep the variants whose coding format the client
// machine can decode (static compatibility checking); a system offer is one
// variant per monomedia, so the offer space is the cartesian product of the
// per-monomedia feasible sets. The paper notes "many offers may be produced
// for a given request" — the enumerator caps the expansion and reports the
// truncation explicitly (never silently).
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "client/client_machine.hpp"
#include "core/offer.hpp"
#include "cost/cost_model.hpp"
#include "document/model.hpp"
#include "profile/profiles.hpp"

namespace qosnp {

struct EnumerationConfig {
  /// Hard cap on enumerated combinations; the excess is dropped (flagged in
  /// OfferList::truncated).
  std::size_t max_offers = 20'000;
  /// Drop variants dominated by a same-server sibling (better-or-equal QoS
  /// at lower-or-equal block rates): such variants can never appear in a
  /// better offer, so pruning them shrinks the cartesian product without
  /// changing the negotiation result. Off by default because the unpruned
  /// ladder is what the paper's adaptation procedure falls back onto.
  bool prune_dominated = false;
};

/// Per-monomedia feasible variants after Step 2.
struct FeasibleSet {
  std::shared_ptr<const MultimediaDocument> document;
  std::vector<const Monomedia*> monomedia;  ///< only media the profile requests
  std::vector<std::vector<const Variant*>> variants;  ///< parallel to monomedia

  /// Cartesian-product size.
  std::size_t combination_count() const;
};

/// Step 2: filter variants by client decoder compatibility. Monomedia whose
/// kind the profile does not request are skipped entirely (the user did not
/// ask for them). The error carries the first monomedia left with no
/// feasible variant (-> FAILEDWITHOUTOFFER).
Result<FeasibleSet> compatible_variants(std::shared_ptr<const MultimediaDocument> document,
                                        const ClientMachine& client, const MMProfile& profile);

/// True when `a` renders at least `b`'s quality (per-medium `meets`).
/// Cross-media comparisons are false.
bool qos_dominates(const MonomediaQoS& a, const MonomediaQoS& b);

/// Remove same-server dominated variants from every feasible set; returns
/// how many variants were dropped. A variant is dominated when another
/// variant on the same server has dominating QoS and delivery rates (avg,
/// max, file size) at most as large — it could only ever produce offers that
/// are worse in quality and at least as expensive. Variants on other servers
/// are kept regardless (they matter to adaptation and load spreading).
std::size_t prune_dominated_variants(FeasibleSet& feasible);

/// Build the system offers of a feasible set: map every variant to its
/// stream requirements (Sec. 6) and price every combination (Sec. 7).
/// sns/oif are left for classify_offers.
OfferList enumerate_offers(const FeasibleSet& feasible, const MMProfile& profile,
                           const CostModel& cost_model, EnumerationConfig config = {});

}  // namespace qosnp
