#include "core/enumerate.hpp"

#include <algorithm>
#include <cstdint>
#include <utility>

#include "qosmap/mapping.hpp"
#include "util/log.hpp"

namespace qosnp {

std::size_t FeasibleSet::combination_count() const {
  if (variants.empty()) return 0;
  std::size_t count = 1;
  for (const auto& vs : variants) {
    if (vs.empty()) return 0;
    // Saturate rather than overflow for absurdly rich documents.
    if (count > (SIZE_MAX / vs.size())) return SIZE_MAX;
    count *= vs.size();
  }
  return count;
}

Result<FeasibleSet> compatible_variants(std::shared_ptr<const MultimediaDocument> document,
                                        const ClientMachine& client, const MMProfile& profile) {
  if (!document) return Err(std::string("no document"));
  FeasibleSet feasible;
  feasible.document = document;
  for (const Monomedia& m : document->monomedia) {
    if (!profile.wants(m.kind)) continue;
    std::vector<const Variant*> usable;
    for (const Variant& v : m.variants) {
      if (client.can_decode(v.format)) usable.push_back(&v);
    }
    if (usable.empty()) {
      return Err("no variant of monomedia '" + m.id +
                 "' is decodable by client '" + client.name + "'");
    }
    feasible.monomedia.push_back(&m);
    feasible.variants.push_back(std::move(usable));
  }
  if (feasible.monomedia.empty()) {
    return Err("document '" + document->id + "' offers none of the requested media");
  }
  return feasible;
}

bool qos_dominates(const MonomediaQoS& a, const MonomediaQoS& b) {
  if (media_kind_of(a) != media_kind_of(b)) return false;
  return std::visit(
      [&b](const auto& qa) -> bool {
        using T = std::decay_t<decltype(qa)>;
        const T& qb = std::get<T>(b);
        if constexpr (std::is_same_v<T, TextQoS>) {
          return qa.language == qb.language;
        } else {
          return qa.meets(qb);
        }
      },
      a);
}

std::size_t prune_dominated_variants(FeasibleSet& feasible) {
  std::size_t dropped = 0;
  auto rate_at_most = [](const Variant& a, const Variant& b) {
    return static_cast<double>(a.avg_block_bytes) * a.blocks_per_second <=
               static_cast<double>(b.avg_block_bytes) * b.blocks_per_second &&
           static_cast<double>(a.max_block_bytes) * a.blocks_per_second <=
               static_cast<double>(b.max_block_bytes) * b.blocks_per_second &&
           a.file_bytes <= b.file_bytes;
  };
  for (auto& variants : feasible.variants) {
    std::vector<const Variant*> kept;
    kept.reserve(variants.size());
    for (std::size_t i = 0; i < variants.size(); ++i) {
      const Variant* candidate = variants[i];
      bool dominated = false;
      for (std::size_t j = 0; j < variants.size() && !dominated; ++j) {
        if (i == j) continue;
        const Variant* other = variants[j];
        if (other->server != candidate->server) continue;
        if (!qos_dominates(other->qos, candidate->qos)) continue;
        if (!rate_at_most(*other, *candidate)) continue;
        // Fully tied pairs (replica-like on the same server): keep the one
        // with the smaller index to avoid dropping both.
        if (qos_dominates(candidate->qos, other->qos) && rate_at_most(*candidate, *other) &&
            j > i) {
          continue;
        }
        dominated = true;
      }
      if (dominated) {
        ++dropped;
      } else {
        kept.push_back(candidate);
      }
    }
    variants = std::move(kept);
  }
  return dropped;
}

OfferList enumerate_offers(const FeasibleSet& feasible, const MMProfile& profile,
                           const CostModel& cost_model, EnumerationConfig config) {
  OfferList list;
  list.document = feasible.document;
  list.total_combinations = feasible.combination_count();
  if (list.total_combinations == 0) return list;

  const std::size_t n = feasible.monomedia.size();
  const std::size_t emit = std::min(list.total_combinations, config.max_offers);
  list.truncated = emit < list.total_combinations;
  if (list.truncated) {
    QOSNP_LOG_WARN("enumerate", "offer space of ", list.total_combinations,
                   " combinations truncated to ", emit);
  }
  list.offers.reserve(emit);

  // Pre-map every variant's stream requirements once (combinations only
  // re-combine them).
  std::vector<std::vector<StreamRequirements>> mapped(n);
  for (std::size_t i = 0; i < n; ++i) {
    mapped[i].reserve(feasible.variants[i].size());
    for (const Variant* v : feasible.variants[i]) {
      mapped[i].push_back(map_variant(*v, feasible.monomedia[i]->duration_s, profile.time));
    }
  }

  std::vector<std::size_t> index(n, 0);
  std::vector<StreamRequirements> stream_scratch(n);
  for (std::size_t emitted = 0; emitted < emit; ++emitted) {
    SystemOffer offer;
    offer.components.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      OfferComponent c;
      c.monomedia = feasible.monomedia[i];
      c.variant = feasible.variants[i][index[i]];
      c.requirements = mapped[i][index[i]];
      stream_scratch[i] = c.requirements;
      offer.components.push_back(c);
    }
    offer.cost = cost_model.document_cost(feasible.document->copyright_cost, stream_scratch);
    list.offers.push_back(std::move(offer));

    // Mixed-radix increment.
    for (std::size_t i = n; i-- > 0;) {
      if (++index[i] < feasible.variants[i].size()) break;
      index[i] = 0;
    }
  }
  return list;
}

// ---------------------------------------------------------------------------
// Lazy best-first stream.
// ---------------------------------------------------------------------------

/// The shared, immutable Steps 3-4 precomputation behind OfferStream: the
/// per-variant memos (SNS grading, OIF contributions, stream charges) and the
/// pre-sorted per-class index lists. Built once per (feasible set, profile,
/// importance, cost model, policy) tuple and read-only afterwards, so any
/// number of concurrent streams — including ones replayed from the plan
/// cache — can share one seed without synchronisation.
class OfferStreamSeed {
 public:
  /// Everything the stream needs to score or materialise one variant,
  /// computed once per variant so classification work is shared across every
  /// offer the variant appears in.
  struct VariantMemo {
    const Variant* variant = nullptr;
    StreamRequirements requirements;
    Money charge;             ///< network + server charge of this stream alone
    double importance = 0.0;  ///< qos_importance(variant->qos)
    bool add_bonus = false;   ///< preferred-server bonus applies
    bool desired_ok = false;  ///< satisfied_by the desired per-medium QoS
    bool worst_ok = false;    ///< tolerated (meets the worst acceptable QoS)
    double order_weight = 0.0;  ///< separable OIF contribution, for list order
  };

  OfferStreamSeed(FeasibleSet fs, MMProfile prof, ImportanceProfile imp, CostModel cm,
                  ClassificationPolicy pol)
      : feasible(std::move(fs)), profile(std::move(prof)), importance(std::move(imp)),
        cost_model(std::move(cm)), policy(pol) {
    n = feasible.monomedia.size();
    total = feasible.combination_count();
    cost_only = policy.sns_rule == ClassificationPolicy::SnsRule::kImportanceWeighted &&
                importance.cost_per_dollar > 0.0 && !qos_matters(profile, importance);
    build_memo();
  }

  FeasibleSet feasible;
  MMProfile profile;
  ImportanceProfile importance;
  CostModel cost_model;
  ClassificationPolicy policy;

  std::size_t n = 0;
  /// The importance-weighted rule collapsed to cost-only grading (the user
  /// assigns zero importance to all QoS characteristics, nonzero to cost).
  bool cost_only = false;
  std::size_t total = 0;

  std::vector<std::vector<VariantMemo>> memo;  ///< [position][feasible index]

  // Per-position index lists into memo[i], each pre-sorted best-first by the
  // variant's separable OIF contribution. D = desired (and tolerated),
  // A = tolerated but not desired, T = tolerated, F = all feasible,
  // V = violating (not tolerated).
  std::vector<std::vector<std::uint32_t>> desired, accept_only, tolerated, all, violating;

 private:
  void build_memo();
  void grade(const Variant& v, VariantMemo& m) const;
};

std::shared_ptr<const OfferStreamSeed> make_offer_stream_seed(FeasibleSet feasible,
                                                              MMProfile profile,
                                                              ImportanceProfile importance,
                                                              CostModel cost_model,
                                                              ClassificationPolicy policy) {
  return std::make_shared<const OfferStreamSeed>(std::move(feasible), std::move(profile),
                                                 std::move(importance), std::move(cost_model),
                                                 policy);
}

std::size_t seed_total_combinations(const OfferStreamSeed& seed) { return seed.total; }

void OfferStreamSeed::build_memo() {
  memo.resize(n);
  desired.resize(n);
  accept_only.resize(n);
  tolerated.resize(n);
  all.resize(n);
  violating.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto& variants = feasible.variants[i];
    memo[i].reserve(variants.size());
    for (const Variant* v : variants) {
      VariantMemo m;
      m.variant = v;
      m.requirements = map_variant(*v, feasible.monomedia[i]->duration_s, profile.time);
      m.charge = cost_model.stream_network_cost(m.requirements) +
                 cost_model.stream_server_cost(m.requirements);
      m.importance = importance.qos_importance(v->qos);
      m.add_bonus = importance.server_bonus != 0.0 && importance.prefers_server(v->server);
      grade(*v, m);
      m.order_weight = m.importance + (m.add_bonus ? importance.server_bonus : 0.0) -
                       importance.cost_importance(m.charge);
      memo[i].push_back(std::move(m));
    }
    auto better_variant = [this, i](std::uint32_t a, std::uint32_t b) {
      const VariantMemo& ma = memo[i][a];
      const VariantMemo& mb = memo[i][b];
      if (ma.order_weight != mb.order_weight) return ma.order_weight > mb.order_weight;
      if (ma.charge != mb.charge) return ma.charge < mb.charge;
      return ma.variant->id < mb.variant->id;
    };
    for (std::uint32_t j = 0; j < memo[i].size(); ++j) {
      const VariantMemo& m = memo[i][j];
      all[i].push_back(j);
      if (m.worst_ok) {
        tolerated[i].push_back(j);
        if (m.desired_ok) {
          desired[i].push_back(j);
        } else {
          accept_only[i].push_back(j);
        }
      } else {
        violating[i].push_back(j);
      }
    }
    std::sort(desired[i].begin(), desired[i].end(), better_variant);
    std::sort(accept_only[i].begin(), accept_only[i].end(), better_variant);
    std::sort(tolerated[i].begin(), tolerated[i].end(), better_variant);
    std::sort(all[i].begin(), all[i].end(), better_variant);
    std::sort(violating[i].begin(), violating[i].end(), better_variant);
  }
}

/// Same per-medium predicates qos_satisfaction() applies: an absent
/// per-medium profile constrains nothing (counts as satisfied).
void OfferStreamSeed::grade(const Variant& v, VariantMemo& m) const {
  std::visit(
        [&](const auto& q) {
          using T = std::decay_t<decltype(q)>;
          if constexpr (std::is_same_v<T, VideoQoS>) {
            m.desired_ok = !profile.video || profile.video->satisfied_by(q);
            m.worst_ok = !profile.video || profile.video->tolerates(q);
          } else if constexpr (std::is_same_v<T, AudioQoS>) {
            m.desired_ok = !profile.audio || profile.audio->satisfied_by(q);
            m.worst_ok = !profile.audio || profile.audio->tolerates(q);
          } else if constexpr (std::is_same_v<T, TextQoS>) {
            m.desired_ok = !profile.text || profile.text->satisfied_by(q);
            m.worst_ok = !profile.text || profile.text->tolerates(q);
          } else {
            m.desired_ok = !profile.image || profile.image->satisfied_by(q);
            m.worst_ok = !profile.image || profile.image->tolerates(q);
          }
          // A desired-satisfying variant below the worst-acceptable floor
          // (ill-formed profile) grades CONSTRAINT, exactly like compute_sns.
          m.desired_ok = m.desired_ok && m.worst_ok;
        },
        v.qos);
}

struct OfferStream::Impl {
  using VariantMemo = OfferStreamSeed::VariantMemo;

  /// The shared precomputation — read-only here; all mutable state below is
  /// private to this cursor.
  std::shared_ptr<const OfferStreamSeed> seed;

  std::size_t emit_cap = 0;
  std::size_t emitted = 0;
  std::size_t generated = 0;

  /// One frontier state of a product cursor: the per-position ranks into the
  /// cursor's lists plus the offer's *exact* final key, computed with the
  /// same operation sequence as compute_oif / document_cost so it is
  /// bit-identical to what the eager oracle sorts by.
  struct Node {
    std::vector<std::uint32_t> ranks;
    double oif = 0.0;
    Money cost;
  };

  enum class Filter { kNone, kCostWithin, kCostOver };

  /// Best-first walk over the cartesian product of one list per position.
  struct Cursor {
    std::vector<const std::vector<std::uint32_t>*> lists;  ///< per position
    Filter filter = Filter::kNone;
    std::vector<Node> heap;  ///< binary max-heap, best state on top
    std::optional<Node> staged;
    bool seeded = false;
  };

  struct ClassStream {
    Sns sns = Sns::kConstraint;
    bool sns_per_offer = false;  ///< oif_only: compute the SNS at emission
    std::vector<Cursor> cursors;  ///< disjoint sub-spaces of the class
  };

  std::vector<ClassStream> classes;
  std::size_t current_class = 0;

  Impl(std::shared_ptr<const OfferStreamSeed> s, std::size_t max_offers) : seed(std::move(s)) {
    emit_cap = std::min(seed->total, max_offers);
    if (emit_cap < seed->total) {
      QOSNP_LOG_WARN("enumerate", "offer space of ", seed->total, " combinations truncated to ",
                     emit_cap, " (best-first: the cap keeps the best offers)");
    }
    build_classes();
  }

  /// Each SNS class is a disjoint union of product sub-spaces, keyed by the
  /// first position whose variant leaves the class above it:
  ///   DESIRABLE   = D x ... x D, cost within budget
  ///   ACCEPTABLE  = D x ... x D over budget, plus for each position j the
  ///                 sub-space D.. x A_j x T.. (first non-desired at j)
  ///   CONSTRAINT  = for each j, T.. x V_j x F.. (first violation at j)
  /// Under cost-only grading: DESIRABLE = all within budget, CONSTRAINT =
  /// the rest. Under oif_only the SNS is ignored by the order, so a single
  /// full product is walked and the SNS computed per offer.
  void build_classes() {
    const std::size_t n = seed->n;
    if (seed->total == 0) return;
    auto product = [this, n](const std::vector<std::vector<std::uint32_t>>& lists, Filter f) {
      Cursor c;
      c.filter = f;
      c.lists.reserve(n);
      for (std::size_t i = 0; i < n; ++i) c.lists.push_back(&lists[i]);
      return c;
    };
    if (seed->policy.oif_only) {
      ClassStream s;
      s.sns_per_offer = true;
      s.cursors.push_back(product(seed->all, Filter::kNone));
      classes.push_back(std::move(s));
      return;
    }
    if (seed->cost_only) {
      ClassStream d;
      d.sns = Sns::kDesirable;
      d.cursors.push_back(product(seed->all, Filter::kCostWithin));
      classes.push_back(std::move(d));
      ClassStream c;
      c.sns = Sns::kConstraint;
      c.cursors.push_back(product(seed->all, Filter::kCostOver));
      classes.push_back(std::move(c));
      return;
    }
    ClassStream desirable;
    desirable.sns = Sns::kDesirable;
    desirable.cursors.push_back(product(seed->desired, Filter::kCostWithin));
    classes.push_back(std::move(desirable));

    ClassStream acceptable;
    acceptable.sns = Sns::kAcceptable;
    acceptable.cursors.push_back(product(seed->desired, Filter::kCostOver));
    for (std::size_t j = 0; j < n; ++j) {
      Cursor c;
      c.lists.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        c.lists.push_back(i < j ? &seed->desired[i]
                                : i == j ? &seed->accept_only[i] : &seed->tolerated[i]);
      }
      acceptable.cursors.push_back(std::move(c));
    }
    classes.push_back(std::move(acceptable));

    ClassStream constraint;
    constraint.sns = Sns::kConstraint;
    for (std::size_t j = 0; j < n; ++j) {
      Cursor c;
      c.lists.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        c.lists.push_back(i < j ? &seed->tolerated[i]
                                : i == j ? &seed->violating[i] : &seed->all[i]);
      }
      constraint.cursors.push_back(std::move(c));
    }
    classes.push_back(std::move(constraint));
  }

  const VariantMemo& memo_at(const Cursor& c, const Node& node, std::size_t i) const {
    return seed->memo[i][(*c.lists[i])[node.ranks[i]]];
  }

  /// Score a frontier state with the offer's exact final key: the OIF is
  /// accumulated in the same order compute_oif would (component importances
  /// plus bonuses in position order, minus the cost importance of the total)
  /// and the Money total is exact integer arithmetic, so both match the
  /// materialised offer bit for bit.
  Node make_node(const Cursor& c, std::vector<std::uint32_t> ranks) {
    Node node;
    node.ranks = std::move(ranks);
    double qos_sum = 0.0;
    Money cost = seed->feasible.document->copyright_cost;
    for (std::size_t i = 0; i < seed->n; ++i) {
      const VariantMemo& m = seed->memo[i][(*c.lists[i])[node.ranks[i]]];
      qos_sum += m.importance;
      if (m.add_bonus) qos_sum += seed->importance.server_bonus;
      cost += m.charge;
    }
    node.cost = cost;
    node.oif = qos_sum - seed->importance.cost_importance(cost);
    ++generated;
    return node;
  }

  /// The within-class classification order: OIF descending, then cheaper
  /// first, then variant ids — the same comparator classify_offers sorts
  /// with (the SNS key is constant inside a class stream).
  bool node_better(const Cursor& ca, const Node& a, const Cursor& cb, const Node& b) const {
    if (a.oif != b.oif) return a.oif > b.oif;
    if (a.cost != b.cost) return a.cost < b.cost;
    for (std::size_t i = 0; i < seed->n; ++i) {
      const auto& ida = memo_at(ca, a, i).variant->id;
      const auto& idb = memo_at(cb, b, i).variant->id;
      if (ida != idb) return ida < idb;
    }
    return false;
  }

  void heap_push(Cursor& c, Node node) {
    c.heap.push_back(std::move(node));
    std::push_heap(c.heap.begin(), c.heap.end(), [this, &c](const Node& a, const Node& b) {
      return node_better(c, b, c, a);  // max-heap: top is the best state
    });
  }

  Node heap_pop(Cursor& c) {
    std::pop_heap(c.heap.begin(), c.heap.end(), [this, &c](const Node& a, const Node& b) {
      return node_better(c, b, c, a);
    });
    Node node = std::move(c.heap.back());
    c.heap.pop_back();
    return node;
  }

  /// Push the unexplored neighbours of a popped state. Each state has a
  /// unique canonical predecessor (decrement its last nonzero rank), so
  /// incrementing only ranks at or after the last nonzero one generates
  /// every state exactly once — no visited-set needed.
  void expand(Cursor& c, const Node& node) {
    std::size_t tail = 0;
    for (std::size_t i = seed->n; i-- > 0;) {
      if (node.ranks[i] > 0) {
        tail = i;
        break;
      }
    }
    for (std::size_t j = tail; j < seed->n; ++j) {
      if (node.ranks[j] + 1 < c.lists[j]->size()) {
        std::vector<std::uint32_t> next = node.ranks;
        ++next[j];
        heap_push(c, make_node(c, std::move(next)));
      }
    }
  }

  bool passes(const Cursor& c, const Node& node) const {
    switch (c.filter) {
      case Filter::kNone: return true;
      case Filter::kCostWithin: return node.cost <= seed->profile.cost.max_cost;
      case Filter::kCostOver: return node.cost > seed->profile.cost.max_cost;
    }
    return true;
  }

  /// Stage the cursor's next filter-passing state (filtered states still
  /// expand — their successors may pass).
  const Node* peek(Cursor& c) {
    if (!c.seeded) {
      c.seeded = true;
      bool empty = false;
      for (const auto* list : c.lists) empty = empty || list->empty();
      if (!empty) heap_push(c, make_node(c, std::vector<std::uint32_t>(seed->n, 0)));
    }
    while (!c.staged && !c.heap.empty()) {
      Node node = heap_pop(c);
      expand(c, node);
      if (passes(c, node)) c.staged = std::move(node);
    }
    return c.staged ? &*c.staged : nullptr;
  }

  SystemOffer materialise(const Cursor& c, const Node& node, const ClassStream& cls) {
    const std::size_t n = seed->n;
    SystemOffer offer;
    offer.components.reserve(n);
    std::vector<StreamRequirements> streams;
    streams.reserve(n);
    bool all_desired = true;
    bool all_worst = true;
    for (std::size_t i = 0; i < n; ++i) {
      const VariantMemo& m = memo_at(c, node, i);
      OfferComponent component;
      component.monomedia = seed->feasible.monomedia[i];
      component.variant = m.variant;
      component.requirements = m.requirements;
      streams.push_back(component.requirements);
      offer.components.push_back(std::move(component));
      all_desired = all_desired && m.desired_ok;
      all_worst = all_worst && m.worst_ok;
    }
    offer.cost = seed->cost_model.document_cost(seed->feasible.document->copyright_cost, streams);
    offer.oif = node.oif;
    if (cls.sns_per_offer) {
      const bool cost_within = node.cost <= seed->profile.cost.max_cost;
      if (seed->cost_only) {
        offer.sns = cost_within ? Sns::kDesirable : Sns::kConstraint;
      } else if (!all_worst) {
        offer.sns = Sns::kConstraint;
      } else {
        offer.sns = all_desired && cost_within ? Sns::kDesirable : Sns::kAcceptable;
      }
    } else {
      offer.sns = cls.sns;
    }
    return offer;
  }

  std::optional<SystemOffer> next() {
    if (emitted >= emit_cap) return std::nullopt;
    while (current_class < classes.size()) {
      ClassStream& cls = classes[current_class];
      Cursor* best = nullptr;
      const Node* best_node = nullptr;
      for (Cursor& cursor : cls.cursors) {
        const Node* node = peek(cursor);
        if (node == nullptr) continue;
        if (best == nullptr || node_better(cursor, *node, *best, *best_node)) {
          best = &cursor;
          best_node = node;
        }
      }
      if (best == nullptr) {
        ++current_class;
        continue;
      }
      Node node = std::move(*best->staged);
      best->staged.reset();
      SystemOffer offer = materialise(*best, node, cls);
      ++emitted;
      return offer;
    }
    return std::nullopt;
  }
};

OfferStream::OfferStream(FeasibleSet feasible, MMProfile profile, ImportanceProfile importance,
                         CostModel cost_model, ClassificationPolicy policy,
                         std::size_t max_offers)
    : impl_(std::make_unique<Impl>(
          make_offer_stream_seed(std::move(feasible), std::move(profile), std::move(importance),
                                 std::move(cost_model), policy),
          max_offers)) {}

OfferStream::OfferStream(std::shared_ptr<const OfferStreamSeed> seed, std::size_t max_offers)
    : impl_(std::make_unique<Impl>(std::move(seed), max_offers)) {}

OfferStream::~OfferStream() = default;

std::optional<SystemOffer> OfferStream::next() { return impl_->next(); }
std::size_t OfferStream::total_combinations() const { return impl_->seed->total; }
std::size_t OfferStream::emit_limit() const { return impl_->emit_cap; }
std::size_t OfferStream::yielded() const { return impl_->emitted; }
bool OfferStream::exhausted() const { return impl_->emitted >= impl_->emit_cap; }
std::size_t OfferStream::states_generated() const { return impl_->generated; }

bool OfferList::fetch_next() {
  if (!stream) return false;
  std::optional<SystemOffer> offer = stream->next();
  if (!offer) {
    stream.reset();  // drained: free the frontier
    return false;
  }
  offers.push_back(std::move(*offer));
  return true;
}

std::size_t OfferList::known_count() const {
  if (!stream) return offers.size();
  return std::max(offers.size(), stream->emit_limit());
}

}  // namespace qosnp
