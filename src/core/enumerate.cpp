#include "core/enumerate.hpp"

#include <algorithm>

#include "qosmap/mapping.hpp"
#include "util/log.hpp"

namespace qosnp {

std::size_t FeasibleSet::combination_count() const {
  if (variants.empty()) return 0;
  std::size_t count = 1;
  for (const auto& vs : variants) {
    if (vs.empty()) return 0;
    // Saturate rather than overflow for absurdly rich documents.
    if (count > (SIZE_MAX / vs.size())) return SIZE_MAX;
    count *= vs.size();
  }
  return count;
}

Result<FeasibleSet> compatible_variants(std::shared_ptr<const MultimediaDocument> document,
                                        const ClientMachine& client, const MMProfile& profile) {
  if (!document) return Err(std::string("no document"));
  FeasibleSet feasible;
  feasible.document = document;
  for (const Monomedia& m : document->monomedia) {
    if (!profile.wants(m.kind)) continue;
    std::vector<const Variant*> usable;
    for (const Variant& v : m.variants) {
      if (client.can_decode(v.format)) usable.push_back(&v);
    }
    if (usable.empty()) {
      return Err("no variant of monomedia '" + m.id +
                 "' is decodable by client '" + client.name + "'");
    }
    feasible.monomedia.push_back(&m);
    feasible.variants.push_back(std::move(usable));
  }
  if (feasible.monomedia.empty()) {
    return Err("document '" + document->id + "' offers none of the requested media");
  }
  return feasible;
}

bool qos_dominates(const MonomediaQoS& a, const MonomediaQoS& b) {
  if (media_kind_of(a) != media_kind_of(b)) return false;
  return std::visit(
      [&b](const auto& qa) -> bool {
        using T = std::decay_t<decltype(qa)>;
        const T& qb = std::get<T>(b);
        if constexpr (std::is_same_v<T, TextQoS>) {
          return qa.language == qb.language;
        } else {
          return qa.meets(qb);
        }
      },
      a);
}

std::size_t prune_dominated_variants(FeasibleSet& feasible) {
  std::size_t dropped = 0;
  auto rate_at_most = [](const Variant& a, const Variant& b) {
    return static_cast<double>(a.avg_block_bytes) * a.blocks_per_second <=
               static_cast<double>(b.avg_block_bytes) * b.blocks_per_second &&
           static_cast<double>(a.max_block_bytes) * a.blocks_per_second <=
               static_cast<double>(b.max_block_bytes) * b.blocks_per_second &&
           a.file_bytes <= b.file_bytes;
  };
  for (auto& variants : feasible.variants) {
    std::vector<const Variant*> kept;
    kept.reserve(variants.size());
    for (std::size_t i = 0; i < variants.size(); ++i) {
      const Variant* candidate = variants[i];
      bool dominated = false;
      for (std::size_t j = 0; j < variants.size() && !dominated; ++j) {
        if (i == j) continue;
        const Variant* other = variants[j];
        if (other->server != candidate->server) continue;
        if (!qos_dominates(other->qos, candidate->qos)) continue;
        if (!rate_at_most(*other, *candidate)) continue;
        // Fully tied pairs (replica-like on the same server): keep the one
        // with the smaller index to avoid dropping both.
        if (qos_dominates(candidate->qos, other->qos) && rate_at_most(*candidate, *other) &&
            j > i) {
          continue;
        }
        dominated = true;
      }
      if (dominated) {
        ++dropped;
      } else {
        kept.push_back(candidate);
      }
    }
    variants = std::move(kept);
  }
  return dropped;
}

OfferList enumerate_offers(const FeasibleSet& feasible, const MMProfile& profile,
                           const CostModel& cost_model, EnumerationConfig config) {
  OfferList list;
  list.document = feasible.document;
  list.total_combinations = feasible.combination_count();
  if (list.total_combinations == 0) return list;

  const std::size_t n = feasible.monomedia.size();
  const std::size_t emit = std::min(list.total_combinations, config.max_offers);
  list.truncated = emit < list.total_combinations;
  if (list.truncated) {
    QOSNP_LOG_WARN("enumerate", "offer space of ", list.total_combinations,
                   " combinations truncated to ", emit);
  }
  list.offers.reserve(emit);

  // Pre-map every variant's stream requirements once (combinations only
  // re-combine them).
  std::vector<std::vector<StreamRequirements>> mapped(n);
  for (std::size_t i = 0; i < n; ++i) {
    mapped[i].reserve(feasible.variants[i].size());
    for (const Variant* v : feasible.variants[i]) {
      mapped[i].push_back(map_variant(*v, feasible.monomedia[i]->duration_s, profile.time));
    }
  }

  std::vector<std::size_t> index(n, 0);
  std::vector<StreamRequirements> stream_scratch(n);
  for (std::size_t emitted = 0; emitted < emit; ++emitted) {
    SystemOffer offer;
    offer.components.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      OfferComponent c;
      c.monomedia = feasible.monomedia[i];
      c.variant = feasible.variants[i][index[i]];
      c.requirements = mapped[i][index[i]];
      stream_scratch[i] = c.requirements;
      offer.components.push_back(c);
    }
    offer.cost = cost_model.document_cost(feasible.document->copyright_cost, stream_scratch);
    list.offers.push_back(std::move(offer));

    // Mixed-radix increment.
    for (std::size_t i = n; i-- > 0;) {
      if (++index[i] < feasible.variants[i].size()) break;
      index[i] = 0;
    }
  }
  return list;
}

}  // namespace qosnp
