// Cross-request negotiation plan cache. Steps 1-4 of the paper's procedure
// (local check, compatibility filtering, classification-parameter
// computation, offer ordering) depend only on the document, the client
// capabilities and the user profile — never on server or transport state —
// so their outcome can be computed once and replayed for every later request
// with the same (document, client, profile) fingerprint. Step 5 (resource
// commitment) depends on live resources and always runs per request.
//
// A cached NegotiationPlan holds the Step 1-4 outcome: the terminal
// local-check/compatibility verdict when those steps failed, or the
// surviving variant sets plus either the shared OfferStream seed (memoised
// per-variant SNS/OIF contributions and pre-sorted class lists; a replay
// spawns a fresh cursor over it) or the eager classified offer-list
// prototype. Invalidation is epoch-based: the plan remembers the Catalog
// epoch its document was stored at, and a lookup whose current epoch
// differs drops the entry (counted as stale).
//
// The cache is sharded-LRU: keys hash to a shard, each shard is an
// independent mutex + LRU list, so concurrent service workers contend only
// when they hit the same shard. Counters are internal atomics, optionally
// mirrored into a MetricsRegistry (qosnp_plan_cache_{hits,misses,evictions,
// stale}) via bind_metrics().
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "client/client_machine.hpp"
#include "core/classify.hpp"
#include "core/enumerate.hpp"
#include "core/offer.hpp"
#include "cost/cost_model.hpp"
#include "document/model.hpp"
#include "obs/metrics.hpp"
#include "profile/profiles.hpp"

namespace qosnp {

/// Plan-cache sizing. Validated through the same require_config path as
/// ServiceConfig — a zero-shard or zero-capacity cache throws
/// std::invalid_argument at construction instead of dividing by zero at
/// lookup.
struct CachePolicy {
  /// Independent LRU shards (each its own mutex); keys hash to a shard.
  std::size_t shards = 8;
  /// Total cached plans across all shards (each shard holds its share,
  /// rounded up, and evicts least-recently-used beyond it).
  std::size_t capacity = 1024;

  /// Throws std::invalid_argument when unusable (zero shards or capacity).
  static CachePolicy validated(CachePolicy policy);
};

/// Monotone counters of one cache's lifetime. Conservation law:
/// lookups == hits + misses, and every stale drop also counts as a miss
/// (stale <= misses).
struct PlanCacheStats {
  std::uint64_t lookups = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t stale = 0;  ///< dropped on lookup because the epoch moved
  std::uint64_t evictions = 0;
  std::uint64_t stores = 0;
};

/// The cached Step 1-4 outcome for one (document, client, profile,
/// manager-config) fingerprint. Immutable once stored; shared read-only by
/// every replaying request.
struct NegotiationPlan {
  std::shared_ptr<const MultimediaDocument> document;
  /// Catalog epoch the document was stored at when this plan was built; a
  /// differing epoch at lookup time invalidates the plan.
  std::uint64_t document_epoch = 0;

  /// Steps 1-2 failed: verdict/problems/user_offer replay verbatim and the
  /// commit walk never runs.
  bool terminal = false;
  NegotiationStatus verdict = NegotiationStatus::kFailedWithoutOffer;
  std::vector<std::string> problems;
  std::optional<UserOffer> user_offer;

  /// Surviving (post-prune) per-monomedia variant sets of Step 2.
  FeasibleSet feasible;
  /// kBestFirst: the shared stream seed; a replay spawns a fresh cursor.
  std::shared_ptr<const OfferStreamSeed> seed;
  /// kEager: the fully classified offer-list prototype. A cache replay
  /// copies it; an uncached negotiation owns its plan exclusively and moves
  /// it out instead (hence not pointer-to-const).
  std::shared_ptr<OfferList> eager;
};

class NegotiationPlanCache {
 public:
  explicit NegotiationPlanCache(CachePolicy policy = {});

  NegotiationPlanCache(const NegotiationPlanCache&) = delete;
  NegotiationPlanCache& operator=(const NegotiationPlanCache&) = delete;

  /// Look up the plan under `key`, valid for the document epoch `epoch`.
  /// A stored plan whose epoch differs is dropped (counted stale + miss).
  std::shared_ptr<const NegotiationPlan> lookup(const std::string& key, std::uint64_t epoch);

  /// Insert (or replace) the plan under `key`; evicts the shard's
  /// least-recently-used entry beyond its capacity share.
  void store(const std::string& key, std::shared_ptr<const NegotiationPlan> plan);

  /// Drop every cached plan (counters keep their values).
  void clear();

  std::size_t size() const;
  const CachePolicy& policy() const { return policy_; }
  PlanCacheStats stats() const;

  /// Mirror the counters into `metrics` as qosnp_plan_cache_{hits,misses,
  /// evictions,stale}: the current totals are added at bind time and every
  /// later increment is forwarded, so registry and internal counters agree.
  /// Re-binding the same registry is a no-op; binding a new registry moves
  /// the mirror (last bind wins).
  void bind_metrics(MetricsRegistry& metrics);

 private:
  struct Entry {
    std::string key;
    std::uint64_t epoch = 0;
    std::shared_ptr<const NegotiationPlan> plan;
  };
  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> lru;  ///< front = most recently used
    /// Views into the stable Entry::key strings of `lru`.
    std::unordered_map<std::string_view, std::list<Entry>::iterator> index;
  };

  Shard& shard_for(const std::string& key);
  void bump(std::atomic<std::uint64_t>& internal, std::atomic<Counter*>& bound,
            std::uint64_t delta = 1);

  CachePolicy policy_;
  std::size_t per_shard_capacity_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;

  std::atomic<std::uint64_t> lookups_{0}, hits_{0}, misses_{0}, stale_{0}, evictions_{0},
      stores_{0};

  std::mutex bind_mu_;
  MetricsRegistry* bound_registry_ = nullptr;  ///< guarded by bind_mu_
  std::atomic<Counter*> hits_metric_{nullptr};
  std::atomic<Counter*> misses_metric_{nullptr};
  std::atomic<Counter*> evictions_metric_{nullptr};
  std::atomic<Counter*> stale_metric_{nullptr};
};

/// Canonical fingerprint of the manager-side knobs that shape a plan:
/// enumeration config, classification policy, parallel threshold and the
/// cost model (tables + discount). Computed once per QoSManager so a cache
/// shared between differently-configured managers can never alias plans.
std::string plan_config_digest(const EnumerationConfig& enumeration,
                               const ClassificationPolicy& policy,
                               std::size_t parallel_threshold, const CostModel& cost_model);

/// Canonical fingerprint of a document's id and full variant set —
/// everything Steps 1-4 read from it. Depends only on the (immutable)
/// document, so QoSManager memoises it per catalog epoch instead of
/// re-serialising hundreds of variants on every hot-document request.
std::string document_fingerprint(const MultimediaDocument& document);

/// Canonical cache key of one request: the document's id and full variant
/// set, the client's capabilities, the user profile (MM + importance — the
/// profile *name* is deliberately excluded: it does not influence any step)
/// and the manager's config digest. Strings are length-prefixed and numbers
/// fixed-width (doubles bit-cast), so distinct inputs produce distinct keys
/// by construction.
std::string plan_cache_key(const MultimediaDocument& document, const ClientMachine& client,
                           const UserProfile& profile, const std::string& config_digest);
/// Same key, from a precomputed document_fingerprint().
std::string plan_cache_key(const std::string& document_fp, const ClientMachine& client,
                           const UserProfile& profile, const std::string& config_digest);

}  // namespace qosnp
