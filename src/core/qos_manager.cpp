#include "core/qos_manager.hpp"

#include <algorithm>

#include "util/log.hpp"
#include "util/thread_pool.hpp"

namespace qosnp {

QoSManager::QoSManager(Catalog& catalog, ServerProvider& farm, TransportProvider& transport,
                       CostModel cost_model, NegotiationConfig config)
    : catalog_(&catalog), farm_(&farm), transport_(&transport),
      cost_model_(std::move(cost_model)), config_(std::move(config)) {}

UserOffer local_offer_from(const MMProfile& clipped) {
  UserOffer offer;
  if (clipped.video) offer.video = clipped.video->desired;
  if (clipped.audio) offer.audio = clipped.audio->desired;
  if (clipped.text) offer.text = TextQoS{clipped.text->desired};
  if (clipped.image) offer.image = clipped.image->desired;
  offer.cost = Money{};
  return offer;
}

CommitAttempt QoSManager::commit_first(const ClientMachine& client, OfferList& offers,
                                       const MMProfile& profile,
                                       std::span<const std::size_t> exclude,
                                       TraceContext trace) {
  CommitAttempt attempt;
  ScopedSpan walk_span(trace, Stage::kCommitWalk);
  ResourceCommitter committer(*farm_, *transport_, config_.retry);
  auto excluded = [&](std::size_t i) {
    return std::find(exclude.begin(), exclude.end(), i) != exclude.end();
  };
  std::size_t offers_examined = 0;
  // Pass 1: offers satisfying the requested QoS/cost; pass 2: the rest
  // ("If there are not enough resources to support any of the acceptable
  // system offers, the same procedure is applied on the feasible (not
  // acceptable) system offers").
  for (int pass = 0; pass < 2; ++pass) {
    for (std::size_t i = 0;; ++i) {
      // Materialise the next offer from the lazy stream when the walk runs
      // off the end of the consumed prefix.
      if (i >= offers.offers.size() && !offers.fetch_next()) break;
      const SystemOffer& offer = offers.offers[i];
      // A satisfying offer needs the tolerable QoS at acceptable cost, which
      // no CONSTRAINT offer provides; in an SNS-ordered list everything after
      // the first CONSTRAINT is CONSTRAINT too, so the satisfying pass can
      // stop fetching there (the lazy walk's whole point).
      if (pass == 0 && offers.sns_ordered && offer.sns == Sns::kConstraint) break;
      if (excluded(i)) continue;
      const bool satisfying = satisfies_user(offer, profile);
      if ((pass == 0) != satisfying) continue;
      ++offers_examined;
      ScopedSpan try_span(walk_span.context(), Stage::kCommitAttempt);
      try_span.annotate("offer", static_cast<std::uint64_t>(i));
      try_span.annotate("pass", static_cast<std::uint64_t>(pass));
      auto committed = committer.commit(client, offer, try_span.context());
      if (committed.ok()) {
        attempt.index = i;
        attempt.commitment = std::move(committed.value());
        attempt.stats = committer.stats();
        try_span.end();
        walk_span.annotate("offers_examined", static_cast<std::uint64_t>(offers_examined));
        walk_span.annotate("committed_offer", static_cast<std::uint64_t>(i));
        return attempt;
      }
      if (committed.error().transient) attempt.saw_transient = true;
      attempt.errors.push_back("offer " + std::to_string(i) + ": " +
                               committed.error().describe());
    }
  }
  attempt.stats = committer.stats();
  walk_span.annotate("offers_examined", static_cast<std::uint64_t>(offers_examined));
  return attempt;
}

NegotiationResult QoSManager::negotiate(const ClientMachine& client,
                                        const DocumentId& document_id,
                                        const UserProfile& profile, TraceContext trace) {
  auto document = catalog_->find(document_id);
  if (!document) {
    NegotiationResult result;
    // The catalog miss is a Step-2 failure (the document cannot be checked
    // against anything); give the trace its compatibility span so every
    // resolved request still shows where it stopped.
    ScopedSpan span(trace, Stage::kCompatibility);
    span.annotate("error", "document not found");
    result.verdict = NegotiationStatus::kFailedWithoutOffer;
    result.problems.push_back("document '" + document_id + "' not found in the catalog");
    return result;
  }
  return negotiate_document(client, std::move(document), profile, trace);
}

NegotiationResult QoSManager::negotiate_document(
    const ClientMachine& client, std::shared_ptr<const MultimediaDocument> document,
    const UserProfile& profile, TraceContext trace) {
  NegotiationResult result;
  if (!document) {
    ScopedSpan span(trace, Stage::kCompatibility);
    span.annotate("error", "no document");
    result.verdict = NegotiationStatus::kFailedWithoutOffer;
    result.problems.push_back("no document");
    return result;
  }

  // Step 1: static local negotiation.
  {
    ScopedSpan span(trace, Stage::kLocalCheck);
    const LocalCheck local = local_negotiation(client, profile.mm);
    if (!local.ok) {
      span.annotate("ok", "false");
      result.verdict = NegotiationStatus::kFailedWithLocalOffer;
      result.problems = local.problems;
      result.user_offer = local_offer_from(local.local_offer);
      return result;
    }
  }

  // Step 2: static compatibility checking.
  ScopedSpan compat_span(trace, Stage::kCompatibility);
  auto feasible = compatible_variants(document, client, profile.mm);
  if (!feasible.ok()) {
    compat_span.annotate("error", feasible.error());
    result.verdict = NegotiationStatus::kFailedWithoutOffer;
    result.problems.push_back(feasible.error());
    return result;
  }
  compat_span.end();

  // Build the offer space; Steps 3+4: classify.
  ScopedSpan enum_span(trace, Stage::kEnumeration);
  if (config_.enumeration.prune_dominated) {
    const std::size_t dropped = prune_dominated_variants(feasible.value());
    if (dropped > 0) {
      QOSNP_LOG_DEBUG("negotiate", "pruned ", dropped, " dominated variants");
    }
  }
  if (config_.enumeration.strategy == EnumerationStrategy::kBestFirst) {
    // Lazy best-first stream: Steps 3+4 are fused into the enumeration and
    // offers materialise one at a time as Step 5 walks them.
    auto stream = std::make_shared<OfferStream>(std::move(feasible.value()), profile.mm,
                                                profile.importance, cost_model_, config_.policy,
                                                config_.enumeration.max_offers);
    result.offers.document = document;
    result.offers.total_combinations = stream->total_combinations();
    result.offers.truncated = stream->emit_limit() < stream->total_combinations();
    result.offers.stream = std::move(stream);
  } else {
    result.offers =
        enumerate_offers(feasible.value(), profile.mm, cost_model_, config_.enumeration);
  }
  if (result.offers.truncated) {
    result.problems.push_back(
        "offer space truncated to " + std::to_string(result.offers.known_count()) + " of " +
        std::to_string(result.offers.total_combinations) + " combinations");
  }
  if (config_.enumeration.strategy == EnumerationStrategy::kBestFirst) {
    // The stream yields offers already classified in final order.
    result.offers.sns_ordered = !config_.policy.oif_only;
  } else {
    ThreadPool* pool = nullptr;
    if (config_.parallel_threshold > 0 &&
        result.offers.offers.size() >= config_.parallel_threshold) {
      pool = &ThreadPool::shared();
    }
    classify_offers(result.offers.offers, profile.mm, profile.importance, config_.policy, pool);
    result.offers.sns_ordered = !config_.policy.oif_only;
  }
  enum_span.annotate("total_combinations",
                     static_cast<std::uint64_t>(result.offers.total_combinations));
  enum_span.annotate("known_offers", static_cast<std::uint64_t>(result.offers.known_count()));
  enum_span.end();

  // Step 5: resource commitment.
  CommitAttempt attempt = commit_first(client, result.offers, profile.mm, {}, trace);
  result.commit_stats = attempt.stats;
  if (!attempt.ok()) {
    // FAILEDTRYLATER promises that trying later could succeed; keep that
    // promise only when some refusal was transient (capacity, outage).
    // Purely permanent refusals (unknown server, no route) cannot heal.
    result.verdict = attempt.saw_transient ? NegotiationStatus::kFailedTryLater
                                           : NegotiationStatus::kFailedWithoutOffer;
    result.problems.insert(result.problems.end(), attempt.errors.begin(), attempt.errors.end());
    return result;
  }
  result.committed_index = attempt.index;
  result.commitment = std::move(attempt.commitment);
  const SystemOffer& committed = result.offers.offers[attempt.index];
  result.user_offer = derive_user_offer(committed);
  result.verdict = satisfies_user(committed, profile.mm)
                       ? NegotiationStatus::kSucceeded
                       : NegotiationStatus::kFailedWithOffer;
  QOSNP_LOG_INFO("negotiate", "document '", document->id, "' for ", client.name, ": ",
                 to_string(result.verdict), " (offer ", attempt.index, " of ",
                 result.offers.known_count(), ")");
  return result;
}

}  // namespace qosnp
