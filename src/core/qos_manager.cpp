#include "core/qos_manager.hpp"

#include <algorithm>

#include "util/log.hpp"
#include "util/thread_pool.hpp"

namespace qosnp {

QoSManager::QoSManager(Catalog& catalog, ServerProvider& farm, TransportProvider& transport,
                       CostModel cost_model, NegotiationConfig config)
    : catalog_(&catalog), farm_(&farm), transport_(&transport),
      cost_model_(std::move(cost_model)), config_(std::move(config)),
      plan_digest_(plan_config_digest(config_.enumeration, config_.policy,
                                      config_.parallel_threshold, cost_model_)) {}

UserOffer local_offer_from(const MMProfile& clipped) {
  UserOffer offer;
  if (clipped.video) offer.video = clipped.video->desired;
  if (clipped.audio) offer.audio = clipped.audio->desired;
  if (clipped.text) offer.text = TextQoS{clipped.text->desired};
  if (clipped.image) offer.image = clipped.image->desired;
  offer.cost = Money{};
  return offer;
}

CommitAttempt QoSManager::commit_first(const ClientMachine& client, OfferList& offers,
                                       const MMProfile& profile,
                                       std::span<const std::size_t> exclude,
                                       TraceContext trace, SessionClass session_class,
                                       std::size_t end_index) {
  CommitAttempt attempt;
  ScopedSpan walk_span(trace, Stage::kCommitWalk);
  walk_span.annotate("class", std::string(to_string(session_class)));
  std::unique_ptr<ResourceCommitter> owned_committer =
      config_.committer_factory != nullptr
          ? config_.committer_factory(config_.retry, session_class)
          : std::make_unique<ResourceCommitter>(*farm_, *transport_, config_.retry,
                                                session_class);
  ResourceCommitter& committer = *owned_committer;
  auto excluded = [&](std::size_t i) {
    return std::find(exclude.begin(), exclude.end(), i) != exclude.end();
  };
  std::size_t offers_examined = 0;
  // Pass 1: offers satisfying the requested QoS/cost; pass 2: the rest
  // ("If there are not enough resources to support any of the acceptable
  // system offers, the same procedure is applied on the feasible (not
  // acceptable) system offers").
  for (int pass = 0; pass < 2; ++pass) {
    for (std::size_t i = 0;; ++i) {
      // The caller may bound the walk (upgrade scans try only offers
      // strictly better than the session's current one); the bound also
      // stops the lazy stream from materialising past it.
      if (i >= end_index) break;
      // Materialise the next offer from the lazy stream when the walk runs
      // off the end of the consumed prefix.
      if (i >= offers.offers.size() && !offers.fetch_next()) break;
      const SystemOffer& offer = offers.offers[i];
      // A satisfying offer needs the tolerable QoS at acceptable cost, which
      // no CONSTRAINT offer provides; in an SNS-ordered list everything after
      // the first CONSTRAINT is CONSTRAINT too, so the satisfying pass can
      // stop fetching there (the lazy walk's whole point).
      if (pass == 0 && offers.sns_ordered && offer.sns == Sns::kConstraint) break;
      if (excluded(i)) continue;
      const bool satisfying = satisfies_user(offer, profile);
      if ((pass == 0) != satisfying) continue;
      ++offers_examined;
      ScopedSpan try_span(walk_span.context(), Stage::kCommitAttempt);
      try_span.annotate("offer", static_cast<std::uint64_t>(i));
      try_span.annotate("pass", static_cast<std::uint64_t>(pass));
      auto committed = committer.commit(client, offer, try_span.context());
      if (committed.ok()) {
        attempt.index = i;
        attempt.commitment = std::move(committed.value());
        attempt.stats = committer.stats();
        try_span.end();
        walk_span.annotate("offers_examined", static_cast<std::uint64_t>(offers_examined));
        walk_span.annotate("committed_offer", static_cast<std::uint64_t>(i));
        return attempt;
      }
      if (committed.error().transient) attempt.saw_transient = true;
      attempt.errors.push_back("offer " + std::to_string(i) + ": " +
                               committed.error().describe());
    }
  }
  attempt.stats = committer.stats();
  walk_span.annotate("offers_examined", static_cast<std::uint64_t>(offers_examined));
  return attempt;
}

NegotiationResult QoSManager::negotiate(const NegotiationRequest& request) {
  const TraceContext trace = request.trace;

  // Resolved documents (renegotiation) skip the catalog and the plan cache:
  // the session's reference may no longer match any catalog entry, so no
  // epoch can vouch for a cached plan.
  if (request.resolved) {
    auto plan = build_plan(request.client, request.resolved, request.profile, trace);
    return run_plan(request, *plan, trace, /*exclusive=*/true);
  }

  const Catalog::Entry entry = catalog_->find_entry(request.document);
  if (!entry.document) {
    NegotiationResult result;
    // The catalog miss is a Step-2 failure (the document cannot be checked
    // against anything); give the trace its compatibility span so every
    // resolved request still shows where it stopped.
    ScopedSpan span(trace, Stage::kCompatibility);
    span.annotate("error", "document not found");
    result.verdict = NegotiationStatus::kFailedWithoutOffer;
    result.problems.push_back("document '" + request.document + "' not found in the catalog");
    return result;
  }

  NegotiationPlanCache* cache = config_.plan_cache.get();
  if (cache == nullptr || request.cache == CacheUse::kBypass) {
    auto plan = build_plan(request.client, entry.document, request.profile, trace);
    return run_plan(request, *plan, trace, /*exclusive=*/true);
  }

  std::string key;
  std::shared_ptr<const NegotiationPlan> plan;
  {
    ScopedSpan span(trace, Stage::kPlanCache);
    key = plan_cache_key(document_fp(entry), request.client, request.profile, plan_digest_);
    if (request.cache != CacheUse::kRefresh) plan = cache->lookup(key, entry.epoch);
    span.annotate("hit", plan ? "true" : "false");
  }
  if (!plan) {
    auto fresh = build_plan(request.client, entry.document, request.profile, trace);
    fresh->document_epoch = entry.epoch;
    cache->store(key, fresh);
    plan = std::move(fresh);
  }
  return run_plan(request, *plan, trace, /*exclusive=*/false);
}

std::string QoSManager::document_fp(const Catalog::Entry& entry) {
  std::lock_guard lk(fp_mu_);
  auto it = fp_memo_.find(entry.epoch);
  if (it != fp_memo_.end()) return it->second;
  // The memo stays tiny (one live epoch per cached document); a burst of
  // catalog churn is the only way it grows, so just reset it then.
  if (fp_memo_.size() >= 64) fp_memo_.clear();
  return fp_memo_.emplace(entry.epoch, document_fingerprint(*entry.document)).first->second;
}

std::shared_ptr<NegotiationPlan> QoSManager::build_plan(
    const ClientMachine& client, std::shared_ptr<const MultimediaDocument> document,
    const UserProfile& profile, TraceContext trace) {
  auto plan = std::make_shared<NegotiationPlan>();
  plan->document = std::move(document);
  if (!plan->document) {
    ScopedSpan span(trace, Stage::kCompatibility);
    span.annotate("error", "no document");
    plan->terminal = true;
    plan->verdict = NegotiationStatus::kFailedWithoutOffer;
    plan->problems.push_back("no document");
    return plan;
  }

  // Step 1: static local negotiation.
  {
    ScopedSpan span(trace, Stage::kLocalCheck);
    const LocalCheck local = local_negotiation(client, profile.mm);
    if (!local.ok) {
      span.annotate("ok", "false");
      plan->terminal = true;
      plan->verdict = NegotiationStatus::kFailedWithLocalOffer;
      plan->problems = local.problems;
      plan->user_offer = local_offer_from(local.local_offer);
      return plan;
    }
  }

  // Step 2: static compatibility checking.
  ScopedSpan compat_span(trace, Stage::kCompatibility);
  auto feasible = compatible_variants(plan->document, client, profile.mm);
  if (!feasible.ok()) {
    compat_span.annotate("error", feasible.error());
    plan->terminal = true;
    plan->verdict = NegotiationStatus::kFailedWithoutOffer;
    plan->problems.push_back(feasible.error());
    return plan;
  }
  compat_span.end();

  // Steps 3+4: build the offer space and the classification precomputation.
  ScopedSpan enum_span(trace, Stage::kEnumeration);
  if (config_.enumeration.prune_dominated) {
    const std::size_t dropped = prune_dominated_variants(feasible.value());
    if (dropped > 0) {
      QOSNP_LOG_DEBUG("negotiate", "pruned ", dropped, " dominated variants");
    }
  }
  plan->feasible = feasible.value();
  std::size_t total = 0;
  std::size_t known = 0;
  if (config_.enumeration.strategy == EnumerationStrategy::kBestFirst) {
    // Lazy best-first stream: Steps 3+4 are fused into the enumeration and
    // offers materialise one at a time as Step 5 walks them. The seed holds
    // all the memoisation; each request spawns its own cursor over it.
    plan->seed = make_offer_stream_seed(std::move(feasible.value()), profile.mm,
                                        profile.importance, cost_model_, config_.policy);
    total = seed_total_combinations(*plan->seed);
    known = std::min(total, config_.enumeration.max_offers);
  } else {
    OfferList offers =
        enumerate_offers(plan->feasible, profile.mm, cost_model_, config_.enumeration);
    ThreadPool* pool = nullptr;
    if (config_.parallel_threshold > 0 && offers.offers.size() >= config_.parallel_threshold) {
      pool = &ThreadPool::shared();
    }
    classify_offers(offers.offers, profile.mm, profile.importance, config_.policy, pool);
    offers.sns_ordered = !config_.policy.oif_only;
    total = offers.total_combinations;
    known = offers.known_count();
    plan->eager = std::make_shared<OfferList>(std::move(offers));
  }
  enum_span.annotate("total_combinations", static_cast<std::uint64_t>(total));
  enum_span.annotate("known_offers", static_cast<std::uint64_t>(known));
  return plan;
}

NegotiationResult QoSManager::run_plan(const NegotiationRequest& request,
                                       const NegotiationPlan& plan, TraceContext trace,
                                       bool exclusive) {
  NegotiationResult result;
  result.verdict = plan.verdict;
  result.problems = plan.problems;
  result.user_offer = plan.user_offer;
  if (plan.terminal) return result;

  if (plan.seed) {
    auto stream = std::make_shared<OfferStream>(plan.seed, config_.enumeration.max_offers);
    result.offers.document = plan.document;
    result.offers.total_combinations = stream->total_combinations();
    result.offers.truncated = stream->emit_limit() < stream->total_combinations();
    result.offers.stream = std::move(stream);
    // The stream yields offers already classified in final order.
    result.offers.sns_ordered = !config_.policy.oif_only;
  } else if (plan.eager) {
    // shared_ptr does not propagate const to the pointee, so an exclusively
    // owned plan can surrender its list without a per-request copy.
    if (exclusive) {
      result.offers = std::move(*plan.eager);
    } else {
      result.offers = *plan.eager;
    }
  }
  if (result.offers.truncated) {
    result.problems.push_back(
        "offer space truncated to " + std::to_string(result.offers.known_count()) + " of " +
        std::to_string(result.offers.total_combinations) + " combinations");
  }

  // Step 5: resource commitment.
  CommitAttempt attempt = commit_first(request.client, result.offers, request.profile.mm, {},
                                       trace, request.session_class);
  result.commit_stats = attempt.stats;
  if (!attempt.ok()) {
    // FAILEDTRYLATER promises that trying later could succeed; keep that
    // promise only when some refusal was transient (capacity, outage).
    // Purely permanent refusals (unknown server, no route) cannot heal.
    result.verdict = attempt.saw_transient ? NegotiationStatus::kFailedTryLater
                                           : NegotiationStatus::kFailedWithoutOffer;
    result.problems.insert(result.problems.end(), attempt.errors.begin(), attempt.errors.end());
    return result;
  }
  result.committed_index = attempt.index;
  result.commitment = std::move(attempt.commitment);
  const SystemOffer& committed = result.offers.offers[attempt.index];
  result.user_offer = derive_user_offer(committed);
  result.verdict = satisfies_user(committed, request.profile.mm)
                       ? NegotiationStatus::kSucceeded
                       : NegotiationStatus::kFailedWithOffer;
  QOSNP_LOG_INFO("negotiate", "document '", plan.document->id, "' for ", request.client.name,
                 ": ", to_string(result.verdict), " (offer ", attempt.index, " of ",
                 result.offers.known_count(), ")");
  return result;
}

}  // namespace qosnp
