// NegotiationResult: the one public result type of the negotiation
// pipeline. QoSManager::negotiate fills the procedure fields (verdict, user
// offer, offers, commitment, commit stats); the concurrent service layers
// the front-end fields on top (request id, shed reason, session id, queue
// and total latency, worker index, trace handle) and returns the same type
// — callers no longer stitch a manager outcome and a service response
// together. The pre-redesign per-layer result names are gone;
// scripts/check_no_deprecated.sh keeps them from creeping back.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/commit.hpp"
#include "core/offer.hpp"
#include "obs/trace.hpp"

namespace qosnp {

/// Why the service resolved a request without running the procedure.
enum class ShedReason { kNone, kQueueFull, kDeadlineExpired };

inline std::string_view to_string(ShedReason reason) {
  switch (reason) {
    case ShedReason::kNone: return "none";
    case ShedReason::kQueueFull: return "queue-full";
    case ShedReason::kDeadlineExpired: return "deadline-expired";
  }
  return "?";
}

/// Everything one negotiation request produced. The negotiation results of
/// the paper are (status, user offer); the ordered offer list and the
/// commitment are carried along for Step 6 and the adaptation procedure,
/// and the service stamps its front-end fields before resolving the future.
/// Move-only (it owns the commitment).
struct NegotiationResult {
  // --- front-end (stamped by NegotiationService; defaults when the
  // QoSManager is driven directly) -----------------------------------------
  std::uint64_t request_id = 0;
  ShedReason shed = ShedReason::kNone;
  std::uint64_t session_id = 0;  ///< 0 when no session was opened
  double queue_ms = 0.0;         ///< accept -> worker pickup
  double total_ms = 0.0;         ///< accept -> response
  int worker = -1;               ///< -1: resolved at the queue edge (shed)
  /// Per-request trace, when the service ran with a TraceSink configured.
  std::shared_ptr<const NegotiationTrace> trace;

  // --- the procedure's results (paper Steps 1-6) ---------------------------
  NegotiationStatus verdict = NegotiationStatus::kFailedTryLater;
  std::optional<UserOffer> user_offer;
  std::vector<std::string> problems;

  OfferList offers;  ///< classified best-to-worst; kept for adaptation
  std::size_t committed_index = SIZE_MAX;
  Commitment commitment;
  /// Commitment effort over the whole Step-5 walk (all offers tried).
  CommitStats commit_stats;

  bool has_commitment() const { return committed_index != SIZE_MAX; }
};

}  // namespace qosnp
