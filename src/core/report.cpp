#include "core/report.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "core/classify.hpp"

namespace qosnp {

namespace {

const char* next_step(NegotiationStatus status) {
  switch (status) {
    case NegotiationStatus::kSucceeded:
      return "Press OK within the choice period to start the delivery; the reserved\n"
             "resources are released if the period expires.";
    case NegotiationStatus::kFailedWithOffer:
      return "The system cannot meet the requested QoS/cost; the best supportable\n"
             "offer above is reserved. Accept it, reject it, or modify the profile\n"
             "and renegotiate.";
    case NegotiationStatus::kFailedTryLater:
      return "Resource shortage: no feasible configuration can be supported right\n"
             "now. Try again later.";
    case NegotiationStatus::kFailedWithoutOffer:
      return "No variant of the document can be decoded by this client machine;\n"
             "no offer is possible.";
    case NegotiationStatus::kFailedWithLocalOffer:
      return "The client machine cannot render the worst-acceptable QoS. The local\n"
             "offer above shows the best this machine can do; lower the profile's\n"
             "floors and renegotiate.";
  }
  return "";
}

}  // namespace

std::string render_summary(const NegotiationResult& outcome) {
  std::ostringstream os;
  os << to_string(outcome.verdict);
  if (outcome.user_offer) os << ": " << outcome.user_offer->describe();
  return os.str();
}

std::string render_classification_table(const NegotiationResult& outcome,
                                        const MMProfile& profile, std::size_t max_rows) {
  std::ostringstream os;
  const auto& offers = outcome.offers.offers;
  // known_count covers the lazy tail (offers the stream can still yield but
  // that the commitment walk never needed to materialise).
  const std::size_t known = outcome.offers.known_count();
  os << "classified " << known << " system offers";
  if (outcome.offers.truncated) {
    os << " (truncated from " << outcome.offers.total_combinations << ")";
  }
  os << ":\n";
  os << "  rank  sns         oif       cost      satisfies  variants\n";
  const std::size_t rows = std::min(max_rows, offers.size());
  for (std::size_t i = 0; i < rows; ++i) {
    const SystemOffer& offer = offers[i];
    os << (i == outcome.committed_index ? "> " : "  ");
    os << std::left << std::setw(6) << i + 1 << std::setw(12) << to_string(offer.sns)
       << std::setw(10) << std::setprecision(4) << offer.oif << std::setw(10)
       << offer.total_cost().to_string() << std::setw(11)
       << (satisfies_user(offer, profile) ? "yes" : "no");
    for (std::size_t c = 0; c < offer.components.size(); ++c) {
      os << (c ? ", " : "") << offer.components[c].variant->id;
    }
    os << '\n';
  }
  if (rows < known) os << "  ... " << known - rows << " more\n";
  if (outcome.committed_index != SIZE_MAX && outcome.committed_index >= rows) {
    os << "> committed: rank " << outcome.committed_index + 1 << '\n';
  }
  return os.str();
}

std::string render_information_window(const NegotiationResult& outcome) {
  std::ostringstream os;
  os << "+---------------- negotiation result ----------------\n";
  os << "| status: " << to_string(outcome.verdict) << '\n';
  if (outcome.user_offer) {
    const UserOffer& offer = *outcome.user_offer;
    if (offer.video) os << "| video:  " << offer.video->to_string() << '\n';
    if (offer.audio) os << "| audio:  " << offer.audio->to_string() << '\n';
    if (offer.text) os << "| text:   " << offer.text->to_string() << '\n';
    if (offer.image) os << "| image:  " << offer.image->to_string() << '\n';
    os << "| cost:   " << offer.cost.to_string() << '\n';
  }
  if (outcome.has_commitment()) {
    os << "| reserved: offer " << outcome.committed_index + 1 << " of "
       << outcome.offers.known_count() << " classified configurations\n";
  }
  for (const std::string& problem : outcome.problems) {
    os << "| note: " << problem << '\n';
  }
  os << "|\n";
  std::istringstream steps(next_step(outcome.verdict));
  std::string line;
  while (std::getline(steps, line)) os << "| " << line << '\n';
  os << "+-----------------------------------------------------";
  return os.str();
}

}  // namespace qosnp
