// The worked examples of paper Sec. 5, packaged as ready-made fixtures so
// that the unit tests and the E1-E3 benches reproduce the published numbers
// from one definition.
//
// Classification example (Sec. 5.2.1 / 5.2.2): the user requests a news
// article with (colour, TV resolution, 25 frames/s) as desired *and* worst
// acceptable QoS and $4 maximum cost; the QoS manager finds:
//   offer1: (black&white, TV resolution, 25 frames/s) at $2.50
//   offer2: (colour,      TV resolution, 15 frames/s) at $4.00
//   offer3: (grey,        TV resolution, 25 frames/s) at $3.00
//   offer4: (colour,      TV resolution, 25 frames/s) at $5.00
// Expected SNS: offers 1-3 CONSTRAINT, offer4 ACCEPTABLE.
// Expected classifications per importance setting:
//   (1) colour 9 / grey 6 / b&w 2 / TV-res 9 / 25fps 9 / 15fps 5, cost 4:
//       OIF = 10, 7, 12, 7      -> offer4, offer3, offer1, offer2
//   (2) same QoS importances, cost 0:
//       OIF = 20, 23, 24, 27    -> offer4, offer3, offer2, offer1
//   (3) all QoS importances 0, cost 4:
//       OIF = -10, -16, -12, -20 -> offer1, offer3, offer2, offer4
//
// Motivating example (Sec. 5.1): desired=(colour, 25 fps, TV resolution) at
// a $6 maximum; offers (colour,15fps,TV)@$5, (grey,25fps,TV)@$4,
// (colour,25fps,TV)@$6.
#pragma once

#include <memory>

#include "core/offer.hpp"
#include "profile/profiles.hpp"

namespace qosnp::paper {

struct ClassificationExample {
  std::shared_ptr<const MultimediaDocument> document;
  OfferList offers;     ///< offers[0..3] = paper's offer1..offer4 (pre-classification order)
  UserProfile profile;  ///< Sec. 5.2.1 request
};

/// Build the Sec. 5.2.1 fixture. Offer costs are pinned to the paper's
/// dollar figures.
ClassificationExample classification_example();

/// The importance factors of Sec. 5.2.2, settings 1-3.
ImportanceProfile importance_setting(int which);

/// Paper name ("offer1".."offer4") of a system offer of the fixture.
std::string offer_name(const SystemOffer& offer);

struct MotivatingExample {
  std::shared_ptr<const MultimediaDocument> document;
  OfferList offers;  ///< the three offers of Sec. 5.1
  UserProfile profile;
};

/// Build the Sec. 5.1 fixture.
MotivatingExample motivating_example();

}  // namespace qosnp::paper
