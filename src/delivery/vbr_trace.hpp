// VBR block traces: per-variant sequences of block sizes consistent with
// the variant's metadata (avg/max block length). The negotiation works on
// aggregate metadata only (paper Sec. 6), but the *delivery* of continuous
// media is block-by-block — video frames follow an MPEG group-of-pictures
// pattern (large I frames, small P/B frames), audio blocks vary mildly.
// Traces are deterministic for (variant, seed) so experiments replay.
#pragma once

#include <cstdint>
#include <vector>

#include "document/model.hpp"
#include "util/rng.hpp"

namespace qosnp {

/// Sizes (bytes) of the first `blocks` blocks of a variant's stream.
/// Video: a 12-block GOP pattern I BB P BB P BB P BB scaled so that the
/// long-run mean matches avg_block_bytes and the I frames sit at
/// max_block_bytes. Audio/discrete: mild fluctuation around the mean,
/// capped at max_block_bytes.
std::vector<std::int32_t> generate_block_trace(const Variant& variant, std::size_t blocks,
                                               std::uint64_t seed);

/// Empirical mean of a trace (test helper).
double trace_mean(const std::vector<std::int32_t>& trace);
/// Empirical peak of a trace.
std::int32_t trace_peak(const std::vector<std::int32_t>& trace);

}  // namespace qosnp
