#include "delivery/playout.hpp"

#include <algorithm>
#include <cmath>

#include "delivery/vbr_trace.hpp"

namespace qosnp {

PlayoutReport simulate_playout(const Variant& variant, double duration_s,
                               const DeliveryConfig& config) {
  PlayoutReport report;
  if (variant.blocks_per_second <= 0.0 || config.bottleneck_bps <= 0) return report;

  const std::size_t blocks = static_cast<std::size_t>(
      std::llround(duration_s * variant.blocks_per_second));
  if (blocks == 0) return report;
  const auto trace = generate_block_trace(variant, blocks, config.seed);
  const double block_period = 1.0 / variant.blocks_per_second;

  Rng rng(config.seed ^ 0x5bd1e995ULL);

  // Sender: block i finishes transmission when the link has drained all
  // bytes of blocks 0..i at the bottleneck rate (work-conserving shaper,
  // server pushes as fast as the reservation allows).
  // Receiver: consumption deadline of block i is prebuffer + i*period,
  // shifted right by every stall that already happened.
  report.blocks = blocks;
  report.cumulative_stall.reserve(blocks);
  double drain_end = 0.0;  // when the bottleneck finishes block i
  double stall_total = 0.0;
  bool in_stall = false;
  for (std::size_t i = 0; i < blocks; ++i) {
    const double deadline = config.prebuffer_s + static_cast<double>(i) * block_period +
                            stall_total;
    // Finite client buffer: the sender may not push block i before the
    // client is within max_buffer_ahead_s of consuming it.
    drain_end = std::max(drain_end, deadline - config.max_buffer_ahead_s);
    drain_end += static_cast<double>(trace[i]) * 8.0 / static_cast<double>(config.bottleneck_bps);
    double arrival = drain_end + config.base_delay_ms / 1000.0 +
                     rng.uniform(-config.jitter_ms, config.jitter_ms) / 1000.0;
    if (config.loss_rate > 0.0 && rng.chance(config.loss_rate)) {
      // A lost block costs a retransmission round trip plus one block
      // period before the recovered copy lands.
      arrival += 2.0 * config.base_delay_ms / 1000.0 + block_period;
    }
    if (arrival > deadline) {
      const double lateness = arrival - deadline;
      report.late_blocks += 1;
      report.max_lateness_s = std::max(report.max_lateness_s, lateness);
      stall_total += lateness;
      if (!in_stall) {
        report.stalls += 1;
        in_stall = true;
      }
    } else {
      in_stall = false;
    }
    report.cumulative_stall.push_back(stall_total);
  }
  report.total_stall_s = stall_total;
  report.playout_end_s =
      config.prebuffer_s + static_cast<double>(blocks) * block_period + stall_total;
  return report;
}

double max_sync_skew(const PlayoutReport& a, const PlayoutReport& b) {
  if (a.cumulative_stall.empty() || b.cumulative_stall.empty()) return 0.0;
  // Compare cumulative stalls at matching presentation fractions: stream
  // block counts differ (video 25 blocks/s vs audio 50 blocks/s), so index
  // proportionally.
  const std::size_t samples = std::max(a.cumulative_stall.size(), b.cumulative_stall.size());
  double max_skew = 0.0;
  for (std::size_t s = 0; s < samples; ++s) {
    const double frac = static_cast<double>(s) / static_cast<double>(samples);
    const std::size_t ia = std::min(a.cumulative_stall.size() - 1,
                                    static_cast<std::size_t>(frac * a.cumulative_stall.size()));
    const std::size_t ib = std::min(b.cumulative_stall.size() - 1,
                                    static_cast<std::size_t>(frac * b.cumulative_stall.size()));
    max_skew = std::max(max_skew,
                        std::abs(a.cumulative_stall[ia] - b.cumulative_stall[ib]));
  }
  return max_skew;
}

}  // namespace qosnp
