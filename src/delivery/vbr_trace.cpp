#include "delivery/vbr_trace.hpp"

#include <algorithm>
#include <cmath>

namespace qosnp {

namespace {

constexpr std::size_t kGopLength = 12;

std::int32_t clamp_block(double value, std::int64_t max_block) {
  const double clamped = std::clamp(value, 1.0, static_cast<double>(max_block));
  return static_cast<std::int32_t>(std::llround(clamped));
}

}  // namespace

std::vector<std::int32_t> generate_block_trace(const Variant& variant, std::size_t blocks,
                                               std::uint64_t seed) {
  std::vector<std::int32_t> trace;
  trace.reserve(blocks);
  // Mix the variant identity into the seed so replicas differ from their
  // originals only via localisation, not content.
  std::uint64_t mixed = seed;
  for (char c : variant.id) mixed = mixed * 131 + static_cast<unsigned char>(c);
  Rng rng(mixed);

  const double avg = static_cast<double>(variant.avg_block_bytes);
  const double max = static_cast<double>(variant.max_block_bytes);

  if (variant.kind() == MediaKind::kVideo && max > avg) {
    // One I frame at the peak per GOP; the other blocks share the residual
    // budget so the long-run mean stays at avg, with +-15% per-block noise.
    const double residual = std::max(1.0, (avg * kGopLength - max) / (kGopLength - 1));
    for (std::size_t i = 0; i < blocks; ++i) {
      if (i % kGopLength == 0) {
        trace.push_back(clamp_block(max, variant.max_block_bytes));
      } else {
        trace.push_back(
            clamp_block(residual * rng.uniform(0.85, 1.15), variant.max_block_bytes));
      }
    }
  } else {
    // Audio / near-CBR media: mild fluctuation around the mean.
    for (std::size_t i = 0; i < blocks; ++i) {
      trace.push_back(clamp_block(avg * rng.uniform(0.9, 1.1), variant.max_block_bytes));
    }
  }
  return trace;
}

double trace_mean(const std::vector<std::int32_t>& trace) {
  if (trace.empty()) return 0.0;
  double sum = 0.0;
  for (std::int32_t b : trace) sum += b;
  return sum / static_cast<double>(trace.size());
}

std::int32_t trace_peak(const std::vector<std::int32_t>& trace) {
  std::int32_t peak = 0;
  for (std::int32_t b : trace) peak = std::max(peak, b);
  return peak;
}

}  // namespace qosnp
