// Block-level playout simulation: what actually happens to a continuous
// media stream once the negotiation has reserved a rate for it. Blocks
// drain from the server through the reserved bottleneck rate, suffer
// network delay and jitter, land in the client's playout buffer, and are
// consumed one per block period after a prebuffer delay. A block that has
// not arrived by its consumption deadline stalls the playout (rebuffering)
// — the user-visible QoS violation. This closes the loop on the paper's
// Sec. 6 mapping: it shows *why* a guaranteed VBR stream must reserve its
// peak rate (maxBitRate), and what the [Lam 94]-style synchronisation layer
// has to absorb (inter-stream skew).
#pragma once

#include <cstdint>
#include <vector>

#include "document/model.hpp"
#include "util/rng.hpp"

namespace qosnp {

struct DeliveryConfig {
  /// Shaped delivery rate — normally the reserved rate from the mapping
  /// (maxBitRate for guaranteed streams; set to avgBitRate to watch the
  /// under-reservation ablation fail).
  std::int64_t bottleneck_bps = 0;
  double base_delay_ms = 20.0;
  /// Uniform one-way delay jitter amplitude (+-).
  double jitter_ms = 5.0;
  /// Fraction of blocks lost in transit (a lost block is a stall source:
  /// playout waits one block period as if it arrived maximally late).
  double loss_rate = 0.0;
  /// Client prebuffer before playout starts.
  double prebuffer_s = 1.0;
  /// How far (in playout seconds) the sender may run ahead of the client's
  /// consumption — the client buffer is finite, so delivery is paced.
  double max_buffer_ahead_s = 2.0;
  std::uint64_t seed = 1;
};

struct PlayoutReport {
  std::size_t blocks = 0;
  std::size_t late_blocks = 0;  ///< blocks that missed their deadline
  std::size_t stalls = 0;       ///< distinct rebuffering events
  double total_stall_s = 0.0;
  double max_lateness_s = 0.0;  ///< worst deadline miss
  double playout_end_s = 0.0;   ///< nominal end + accumulated stalls

  bool clean() const { return stalls == 0; }
  double stall_fraction(double nominal_duration_s) const {
    return nominal_duration_s <= 0 ? 0.0 : total_stall_s / nominal_duration_s;
  }
  /// The per-block lateness timeline (for inter-stream skew analysis):
  /// cumulative stall time before consuming block i.
  std::vector<double> cumulative_stall;
};

/// Simulate delivering `duration_s` worth of the variant's stream through
/// the configured bottleneck.
PlayoutReport simulate_playout(const Variant& variant, double duration_s,
                               const DeliveryConfig& config);

/// Maximum inter-stream presentation skew (seconds) between two streams
/// played in parallel: the largest difference of their cumulative stalls at
/// any presentation instant. Lip-sync requires this below ~80 ms unless a
/// synchronisation protocol ([Lam 94]) re-aligns the streams.
double max_sync_skew(const PlayoutReport& a, const PlayoutReport& b);

/// The classic lip-sync tolerance.
inline constexpr double kLipSyncSkewS = 0.080;

}  // namespace qosnp
