// Class-differentiated admission policy: the "who wins under congestion"
// layer the 1996 paper leaves open. PolicyEngine wraps QoSManager::negotiate
// with a preemption step — when a higher-class request fails Step 5 with
// FAILEDTRYLATER, the engine may force strictly lower-class playing sessions
// down their own offer list (reusing the adaptation walk) or release them,
// then re-run the negotiation over the freed capacity — and an upgrade
// scanner that, when capacity frees, re-runs a playing session's strictly
// better offers and promotes it.
//
// Policy semantics (the invariants tests/policy_test.cpp asserts):
//   - victims are strictly lower class than the requester, never peers;
//   - a degraded victim's new offer is always a later (worse) entry of its
//     own offer list; a promoted session's new offer is always earlier;
//   - with the policy disabled, negotiate() is a pure pass-through to
//     QoSManager::negotiate — byte-identical results, no session touched.
//
// Victim order is deterministic: lowest class first, then newest session
// first (highest id — the session that arrived last loses first). Upgrade
// order is the opposite: highest class first, then oldest session first.
#pragma once

#include <cstddef>
#include <functional>
#include <mutex>

#include "core/qos_manager.hpp"
#include "obs/metrics.hpp"
#include "policy/session_class.hpp"
#include "session/session.hpp"

namespace qosnp {

struct PreemptionPolicy {
  /// Master switch. Off = negotiate() is a pass-through (byte-identical to
  /// QoSManager::negotiate) and run_upgrades() is a no-op.
  bool enabled = false;
  /// Whether a victim that fits no worse offer may be released (aborted
  /// with kPreemptedAbortReason). Off = make-before-break degrades only;
  /// untouchable victims survive and the requester may stay shed.
  bool allow_release = true;
  /// Most victims degraded/released for one request.
  int max_victims = 8;
  /// Upgrade scanning switch and per-scan attempt bound.
  bool upgrade_enabled = true;
  int max_upgrades_per_scan = 32;

  /// Throws std::invalid_argument on non-positive bounds.
  static PreemptionPolicy validated(PreemptionPolicy p);
};

enum class VictimAction { kDegraded, kReleased };

std::string_view to_string(VictimAction action);

/// One victim the policy acted on, reported to the victim observer. The
/// population simulation uses this to keep its per-class conservation laws
/// exact (a preempted session leaves the system outside the sim's own
/// lifecycle events).
struct VictimEvent {
  SessionId session = 0;
  SessionClass victim_class = SessionClass::kBestEffort;
  SessionClass for_class = SessionClass::kStandard;  ///< the requester's class
  VictimAction action = VictimAction::kDegraded;
  std::size_t old_offer = SIZE_MAX;
  std::size_t new_offer = SIZE_MAX;  ///< degraded only
};

/// One session the upgrade scanner promoted.
struct UpgradeEvent {
  SessionId session = 0;
  SessionClass session_class = SessionClass::kStandard;
  std::size_t old_offer = SIZE_MAX;
  std::size_t new_offer = SIZE_MAX;
};

/// Wraps a (QoSManager, SessionManager) pair with the class policy. Thread
/// safety matches the wrapped components: negotiate()/run_upgrades() may be
/// called concurrently (service workers + scanner thread); observers must
/// not call back into the engine.
class PolicyEngine {
 public:
  PolicyEngine(QoSManager& manager, SessionManager& sessions, PreemptionPolicy policy = {},
               MetricsRegistry* metrics = nullptr);

  /// QoSManager::negotiate plus the preemption step. Always counts the
  /// request on the qosnp_class_* metrics; only a FAILEDTRYLATER verdict
  /// with the policy enabled and a requester above best-effort triggers
  /// preemption (best-effort never preempts anyone).
  NegotiationResult negotiate(const NegotiationRequest& request);

  /// One upgrade scan over the playing sessions; returns how many were
  /// promoted. Call when capacity may have freed (session completed,
  /// congestion cleared, periodic timer).
  std::size_t run_upgrades(TraceContext trace = {});

  void set_victim_observer(std::function<void(const VictimEvent&)> observer);
  void set_upgrade_observer(std::function<void(const UpgradeEvent&)> observer);

  const PreemptionPolicy& policy() const { return policy_; }
  QoSManager& manager() { return *manager_; }
  SessionManager& sessions() { return *sessions_; }

 private:
  /// Deterministic victim order for one requester class: strictly lower
  /// class only, lowest class first, then newest (highest id) first.
  std::vector<PlayingSession> victim_candidates(SessionClass for_class) const;

  void emit_victim(const VictimEvent& event);
  void emit_upgrade(const UpgradeEvent& event);

  QoSManager* manager_;
  SessionManager* sessions_;
  PreemptionPolicy policy_;
  MetricsRegistry* metrics_;

  std::mutex observer_mu_;
  std::function<void(const VictimEvent&)> victim_observer_;    // guarded by observer_mu_
  std::function<void(const UpgradeEvent&)> upgrade_observer_;  // guarded by observer_mu_

  // Per-class counter handles (nullptr when metrics are off), indexed by
  // SessionClass. Registered once at construction; increments are lock-free.
  std::array<Counter*, kSessionClassCount> requests_{};
  std::array<Counter*, kSessionClassCount> admitted_{};
  std::array<Counter*, kSessionClassCount> shed_{};
  std::array<Counter*, kSessionClassCount> preempt_admits_{};
  std::array<Counter*, kSessionClassCount> victims_degraded_{};
  std::array<Counter*, kSessionClassCount> victims_released_{};
  std::array<Counter*, kSessionClassCount> upgrades_{};
};

}  // namespace qosnp
