#include "policy/local_client.hpp"

#include <utility>

#include "core/negotiation_result.hpp"
#include "policy/preemption.hpp"
#include "util/log.hpp"

namespace qosnp {

NegotiationResult LocalClient::submit_at(NegotiationRequest request, double now_s) {
  NegotiationResult result =
      policy_ != nullptr ? policy_->negotiate(request) : manager_->negotiate(request);
  if (observer_) observer_(result);
  metrics_
      .counter("qosnp_client_responses_total",
               {{"verdict", std::string(to_string(result.verdict))}},
               "LocalClient responses, by verdict")
      .inc();
  const bool keep = result.has_commitment() &&
                    (result.verdict == NegotiationStatus::kSucceeded || request.accept_degraded);
  if (keep) {
    auto opened = sessions_->open(request.client, request.profile, std::move(result), now_s,
                                  request.session_class);
    if (opened.ok()) {
      result.session_id = opened.value();
    } else {
      QOSNP_LOG_WARN("client", "session open failed: ", opened.error());
    }
  } else if (result.has_commitment()) {
    // A declined degraded offer: nothing stays reserved for a user who
    // walked away (the same rule the service applies).
    result.commitment.release();
  }
  result.offers = OfferList{};
  result.commitment = Commitment{};
  result.committed_index = SIZE_MAX;
  return result;
}

}  // namespace qosnp
