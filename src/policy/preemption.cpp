#include "policy/preemption.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/log.hpp"

namespace qosnp {

std::string_view to_string(VictimAction action) {
  switch (action) {
    case VictimAction::kDegraded: return "degraded";
    case VictimAction::kReleased: return "released";
  }
  return "?";
}

PreemptionPolicy PreemptionPolicy::validated(PreemptionPolicy p) {
  if (p.max_victims <= 0) {
    throw std::invalid_argument("PreemptionPolicy: max_victims must be positive");
  }
  if (p.max_upgrades_per_scan <= 0) {
    throw std::invalid_argument("PreemptionPolicy: max_upgrades_per_scan must be positive");
  }
  return p;
}

PolicyEngine::PolicyEngine(QoSManager& manager, SessionManager& sessions, PreemptionPolicy policy,
                           MetricsRegistry* metrics)
    : manager_(&manager), sessions_(&sessions), policy_(PreemptionPolicy::validated(policy)),
      metrics_(metrics) {
  if (metrics_ == nullptr) return;
  for (std::size_t i = 0; i < kSessionClassCount; ++i) {
    const MetricLabels by_class = {{"class", std::string(to_string(static_cast<SessionClass>(i)))}};
    requests_[i] = &metrics_->counter("qosnp_class_requests_total", by_class,
                                      "Negotiations entering the policy engine, by class");
    admitted_[i] = &metrics_->counter("qosnp_class_admitted_total", by_class,
                                      "Negotiations leaving with a committed offer, by class");
    shed_[i] = &metrics_->counter("qosnp_class_shed_total", by_class,
                                  "Negotiations leaving without a committed offer, by class");
    preempt_admits_[i] =
        &metrics_->counter("qosnp_class_preempt_admits_total", by_class,
                           "Admissions that succeeded only after preempting victims, by class");
    victims_degraded_[i] =
        &metrics_->counter("qosnp_class_preempt_victims_total",
                           {{"class", std::string(to_string(static_cast<SessionClass>(i)))},
                            {"action", std::string(to_string(VictimAction::kDegraded))}},
                           "Sessions the policy acted on, by victim class and action");
    victims_released_[i] =
        &metrics_->counter("qosnp_class_preempt_victims_total",
                           {{"class", std::string(to_string(static_cast<SessionClass>(i)))},
                            {"action", std::string(to_string(VictimAction::kReleased))}},
                           "Sessions the policy acted on, by victim class and action");
    upgrades_[i] = &metrics_->counter("qosnp_class_upgrades_total", by_class,
                                      "Sessions the upgrade scanner promoted, by class");
  }
}

void PolicyEngine::set_victim_observer(std::function<void(const VictimEvent&)> observer) {
  std::lock_guard lk(observer_mu_);
  victim_observer_ = std::move(observer);
}

void PolicyEngine::set_upgrade_observer(std::function<void(const UpgradeEvent&)> observer) {
  std::lock_guard lk(observer_mu_);
  upgrade_observer_ = std::move(observer);
}

void PolicyEngine::emit_victim(const VictimEvent& event) {
  std::function<void(const VictimEvent&)> observer;
  {
    std::lock_guard lk(observer_mu_);
    observer = victim_observer_;
  }
  if (observer) observer(event);
}

void PolicyEngine::emit_upgrade(const UpgradeEvent& event) {
  std::function<void(const UpgradeEvent&)> observer;
  {
    std::lock_guard lk(observer_mu_);
    observer = upgrade_observer_;
  }
  if (observer) observer(event);
}

std::vector<PlayingSession> PolicyEngine::victim_candidates(SessionClass for_class) const {
  std::vector<PlayingSession> candidates = sessions_->playing_sessions_with_class();
  std::erase_if(candidates, [&](const PlayingSession& p) {
    return session_class_rank(p.session_class) >= session_class_rank(for_class);
  });
  // Lowest class loses first; within a class the newest session (highest
  // id) loses first — the longest-served sessions are disturbed last.
  std::sort(candidates.begin(), candidates.end(),
            [](const PlayingSession& a, const PlayingSession& b) {
              const int ra = session_class_rank(a.session_class);
              const int rb = session_class_rank(b.session_class);
              if (ra != rb) return ra < rb;
              return a.id > b.id;
            });
  return candidates;
}

NegotiationResult PolicyEngine::negotiate(const NegotiationRequest& request) {
  const auto cls = static_cast<std::size_t>(request.session_class);
  if (requests_[cls] != nullptr) requests_[cls]->inc();

  NegotiationResult result = manager_->negotiate(request);

  // Only a capacity failure is worth preempting for; permanent failures
  // (unknown document, incompatible client) cannot heal, and best-effort
  // requests never preempt anyone.
  const bool try_preempt = policy_.enabled &&
                           result.verdict == NegotiationStatus::kFailedTryLater &&
                           session_class_rank(request.session_class) >
                               session_class_rank(SessionClass::kBestEffort);
  if (try_preempt) {
    ScopedSpan span(request.trace, Stage::kPreemption);
    span.annotate("class", std::string(to_string(request.session_class)));
    // The candidate list is gathered once: a make-before-break victim that
    // could not be degraded stays playing but must not be re-picked, or a
    // stubborn victim would pin the loop.
    const std::vector<PlayingSession> candidates = victim_candidates(request.session_class);
    int victims_used = 0;
    for (const PlayingSession& candidate : candidates) {
      if (victims_used >= policy_.max_victims) break;
      if (result.has_commitment()) break;
      PreemptionVictimResult victim =
          sessions_->preempt_degrade(candidate.id, policy_.allow_release, span.context());
      if (!victim.degraded && !victim.released) continue;  // untouched, try the next one
      ++victims_used;
      VictimEvent event;
      event.session = candidate.id;
      event.victim_class = candidate.session_class;
      event.for_class = request.session_class;
      event.action = victim.released ? VictimAction::kReleased : VictimAction::kDegraded;
      event.old_offer = victim.old_offer;
      event.new_offer = victim.new_offer;
      const auto vcls = static_cast<std::size_t>(candidate.session_class);
      if (victim.released) {
        if (victims_released_[vcls] != nullptr) victims_released_[vcls]->inc();
      } else {
        if (victims_degraded_[vcls] != nullptr) victims_degraded_[vcls]->inc();
      }
      emit_victim(event);
      // Something was freed (or at least shrunk): re-run the negotiation
      // over the new capacity. The plan cache keeps Steps 1-4 cheap.
      result = manager_->negotiate(request);
    }
    span.annotate("victims", static_cast<std::uint64_t>(victims_used));
    span.annotate("admitted", result.has_commitment() ? "true" : "false");
    if (result.has_commitment()) {
      if (preempt_admits_[cls] != nullptr) preempt_admits_[cls]->inc();
      QOSNP_LOG_INFO("policy", to_string(request.session_class), " request admitted after ",
                     victims_used, " victim(s)");
    }
  }

  if (result.has_commitment()) {
    if (admitted_[cls] != nullptr) admitted_[cls]->inc();
  } else {
    if (shed_[cls] != nullptr) shed_[cls]->inc();
  }
  return result;
}

std::size_t PolicyEngine::run_upgrades(TraceContext trace) {
  if (!policy_.enabled || !policy_.upgrade_enabled) return 0;
  std::vector<PlayingSession> candidates = sessions_->playing_sessions_with_class();
  std::erase_if(candidates, [](const PlayingSession& p) {
    return p.current_offer == 0 || p.current_offer == SIZE_MAX;  // already at its best offer
  });
  if (candidates.empty()) return 0;
  // Highest class first; within a class the oldest session (lowest id)
  // is promoted first — the mirror image of the victim order.
  std::sort(candidates.begin(), candidates.end(),
            [](const PlayingSession& a, const PlayingSession& b) {
              const int ra = session_class_rank(a.session_class);
              const int rb = session_class_rank(b.session_class);
              if (ra != rb) return ra > rb;
              return a.id < b.id;
            });

  ScopedSpan span(trace, Stage::kUpgrade);
  std::size_t promoted = 0;
  int attempts = 0;
  for (const PlayingSession& candidate : candidates) {
    if (attempts >= policy_.max_upgrades_per_scan) break;
    ++attempts;
    UpgradeResult upgrade = sessions_->try_upgrade(candidate.id, span.context());
    if (!upgrade.upgraded) continue;
    ++promoted;
    UpgradeEvent event;
    event.session = candidate.id;
    event.session_class = candidate.session_class;
    event.old_offer = upgrade.old_offer;
    event.new_offer = upgrade.new_offer;
    const auto vcls = static_cast<std::size_t>(candidate.session_class);
    if (upgrades_[vcls] != nullptr) upgrades_[vcls]->inc();
    emit_upgrade(event);
  }
  span.annotate("attempts", static_cast<std::uint64_t>(attempts));
  span.annotate("promoted", static_cast<std::uint64_t>(promoted));
  return promoted;
}

}  // namespace qosnp
