// LocalClient: the in-process NegotiationClient. One call runs Steps 1-5
// directly (QoSManager::negotiate, or PolicyEngine::negotiate when a
// preemption engine is attached) on the calling thread and then performs
// the same Step-6 admission the concurrent service applies: a kept offer
// (SUCCEEDED, or FAILEDWITHOFFER with accept_degraded) opens a session
// pending confirmation; a declined degraded offer is released on the spot.
// The returned result is stripped of the offer list and commitment — they
// belong to the opened session.
//
// This is the glue that previously lived inside ManagerPopulationBackend;
// the population backend is now a thin adapter over this class, and any
// other caller wanting manager-direct semantics gets the identical
// behaviour here.
#pragma once

#include <functional>
#include <string>

#include "core/negotiation_client.hpp"
#include "core/qos_manager.hpp"
#include "obs/metrics.hpp"
#include "session/session.hpp"

namespace qosnp {

class PolicyEngine;

class LocalClient final : public NegotiationClient {
 public:
  LocalClient(QoSManager& manager, SessionManager& sessions)
      : manager_(&manager), sessions_(&sessions) {}

  /// Route negotiations through a preemption/upgrade engine (which must
  /// wrap the same manager/sessions pair). nullptr restores the direct path.
  void set_policy(PolicyEngine* policy) { policy_ = policy; }
  PolicyEngine* policy() const { return policy_; }

  /// Observe every raw NegotiationResult as produced by the manager, before
  /// admission strips the offers/commitment — the hook the differential
  /// suites use to compare against direct QoSManager::negotiate calls.
  void set_result_observer(std::function<void(const NegotiationResult&)> observer) {
    observer_ = std::move(observer);
  }

  /// Negotiate + admit with an explicit session-clock timestamp (the
  /// population simulator passes its simulation time here).
  NegotiationResult submit_at(NegotiationRequest request, double now_s);

  NegotiationResult submit(NegotiationRequest request) override {
    return submit_at(std::move(request), 0.0);
  }

  std::string drain_metrics() const override { return metrics_.expose(); }

  SessionManager& sessions() { return *sessions_; }

 private:
  QoSManager* manager_;
  SessionManager* sessions_;
  PolicyEngine* policy_ = nullptr;
  std::function<void(const NegotiationResult&)> observer_;
  MetricsRegistry metrics_;
};

}  // namespace qosnp
