// Session classes: the "who wins under congestion" dimension the 1996
// paper leaves open (its Steps 5-6 decide *whether* a session is admitted
// and *how* it degrades, not *whose* request prevails). Following the
// user-class bandwidth-management literature, every negotiation request and
// every session carries one of three classes; under congestion the policy
// layer (src/policy/preemption.hpp) may degrade or preempt strictly
// lower-class sessions to admit a higher-class request, and the farm and
// transport can hold back a configurable capacity headroom from the lower
// classes. This header is intentionally dependency-free (an enum plus a
// headroom config) so the low layers — qosmap stream requirements, media
// servers, transport — can speak classes without linking the policy engine.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

namespace qosnp {

/// Ordered worst-to-best: a request of class C may only preempt sessions of
/// strictly lower class (rank(victim) < rank(requester)), never peers.
enum class SessionClass : std::uint8_t {
  kBestEffort = 0,
  kStandard = 1,
  kPremium = 2,
};

inline constexpr std::size_t kSessionClassCount = 3;

constexpr int session_class_rank(SessionClass c) { return static_cast<int>(c); }

inline std::string_view to_string(SessionClass c) {
  switch (c) {
    case SessionClass::kBestEffort: return "best_effort";
    case SessionClass::kStandard: return "standard";
    case SessionClass::kPremium: return "premium";
  }
  return "?";
}

/// Per-class admission headroom: the fraction of a resource's capacity a
/// class may NOT use, i.e. class C only fits while
/// reserved + rate <= capacity * (1 - fraction[C]). All-zero (the default)
/// is class-blind admission — byte-identical to the pre-policy behaviour.
/// Typical use reserves headroom from kBestEffort (and maybe kStandard) so
/// the last slice of every disk and link is only reachable by premium
/// traffic.
struct ClassHeadroom {
  std::array<double, kSessionClassCount> fraction{};  ///< indexed by SessionClass

  double for_class(SessionClass c) const { return fraction[static_cast<std::size_t>(c)]; }
  bool any() const {
    for (double f : fraction) {
      if (f > 0.0) return true;
    }
    return false;
  }

  /// Throws std::invalid_argument when a fraction is outside [0, 1) or the
  /// headroom is not monotone (a higher class must never see less capacity
  /// than a lower one).
  static ClassHeadroom validated(ClassHeadroom h) {
    for (std::size_t i = 0; i < kSessionClassCount; ++i) {
      if (!(h.fraction[i] >= 0.0 && h.fraction[i] < 1.0)) {
        throw std::invalid_argument("ClassHeadroom: fraction for class '" +
                                    std::string(to_string(static_cast<SessionClass>(i))) +
                                    "' outside [0, 1)");
      }
      if (i > 0 && h.fraction[i] > h.fraction[i - 1]) {
        throw std::invalid_argument(
            "ClassHeadroom: a higher class must not be held back harder than a lower one");
      }
    }
    return h;
  }
};

}  // namespace qosnp
