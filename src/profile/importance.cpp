#include "profile/importance.hpp"

#include <algorithm>

namespace qosnp {

PiecewiseLinear::PiecewiseLinear(std::initializer_list<std::pair<double, double>> anchors) {
  for (const auto& [x, v] : anchors) set_anchor(x, v);
}

void PiecewiseLinear::set_anchor(double x, double value) {
  auto it = std::lower_bound(anchors_.begin(), anchors_.end(), x,
                             [](const auto& a, double key) { return a.first < key; });
  if (it != anchors_.end() && it->first == x) {
    it->second = value;
  } else {
    anchors_.insert(it, {x, value});
  }
}

double PiecewiseLinear::at(double x) const {
  if (anchors_.empty()) return 0.0;
  if (x <= anchors_.front().first) return anchors_.front().second;
  if (x >= anchors_.back().first) return anchors_.back().second;
  auto hi = std::lower_bound(anchors_.begin(), anchors_.end(), x,
                             [](const auto& a, double key) { return a.first < key; });
  if (hi->first == x) return hi->second;
  auto lo = hi - 1;
  const double t = (x - lo->first) / (hi->first - lo->first);
  return lo->second + t * (hi->second - lo->second);
}

double ImportanceProfile::qos_importance(const MonomediaQoS& qos) const {
  return std::visit(
      [this](const auto& q) -> double {
        using T = std::decay_t<decltype(q)>;
        if constexpr (std::is_same_v<T, VideoQoS>) {
          const double sum = video_color[static_cast<std::size_t>(q.color)] +
                             frame_rate.at(q.frame_rate_fps) + resolution.at(q.resolution);
          return sum * media_weight[static_cast<std::size_t>(MediaKind::kVideo)];
        } else if constexpr (std::is_same_v<T, AudioQoS>) {
          const double sum = audio_quality[static_cast<std::size_t>(q.quality)];
          return sum * media_weight[static_cast<std::size_t>(MediaKind::kAudio)];
        } else if constexpr (std::is_same_v<T, TextQoS>) {
          const double sum = language[static_cast<std::size_t>(q.language)];
          return sum * media_weight[static_cast<std::size_t>(MediaKind::kText)];
        } else {
          const double sum = image_color[static_cast<std::size_t>(q.color)] +
                             image_resolution.at(q.resolution);
          return sum * media_weight[static_cast<std::size_t>(MediaKind::kImage)];
        }
      },
      qos);
}

double ImportanceProfile::cost_importance(Money cost) const {
  return cost_per_dollar * cost.as_dollars();
}

bool ImportanceProfile::prefers_server(const std::string& server) const {
  return std::find(preferred_servers.begin(), preferred_servers.end(), server) !=
         preferred_servers.end();
}

ImportanceProfile ImportanceProfile::defaults() {
  ImportanceProfile p;
  p.video_color = {2.0, 6.0, 9.0, 10.0};  // black&white, grey, colour, super-colour
  p.frame_rate = PiecewiseLinear{{kFrozenFrameRate, 1.0}, {kTvFrameRate, 9.0},
                                 {kHdtvFrameRate, 10.0}};
  p.resolution = PiecewiseLinear{{kMinResolution, 1.0}, {kTvResolution, 9.0},
                                 {kHdtvResolution, 10.0}};
  p.audio_quality = {4.0, 7.0, 9.0};  // telephone, radio, CD
  p.language = {5.0, 5.0, 5.0, 5.0};
  p.image_color = p.video_color;
  p.image_resolution = p.resolution;
  p.cost_per_dollar = 4.0;
  return p;
}

}  // namespace qosnp
