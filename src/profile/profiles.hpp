// User profiles (paper Sec. 3, Fig. 2). A user profile consists of a MM
// profile of *desired* values, a MM profile of *worst acceptable* values,
// and the importance profile. Here each per-medium profile carries the
// desired and worst-acceptable values side by side (equivalent structure,
// friendlier to consume), plus the cost profile and time profile.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "media/qos.hpp"
#include "media/types.hpp"
#include "profile/importance.hpp"
#include "util/money.hpp"

namespace qosnp {

struct VideoProfile {
  VideoQoS desired;
  VideoQoS worst;  ///< worst acceptable values

  bool satisfied_by(const VideoQoS& offered) const { return offered.meets(desired); }
  bool tolerates(const VideoQoS& offered) const { return offered.meets(worst); }
  /// Worst must not exceed desired on any characteristic.
  bool well_formed() const { return desired.meets(worst); }
};

struct AudioProfile {
  AudioQoS desired;
  AudioQoS worst;

  bool satisfied_by(const AudioQoS& offered) const { return offered.meets(desired); }
  bool tolerates(const AudioQoS& offered) const { return offered.meets(worst); }
  bool well_formed() const { return desired.meets(worst); }
};

struct TextProfile {
  Language desired = Language::kEnglish;
  /// Languages the user also accepts (the desired one is always accepted).
  std::vector<Language> acceptable;

  bool satisfied_by(const TextQoS& offered) const { return offered.language == desired; }
  bool tolerates(const TextQoS& offered) const;
  bool well_formed() const { return true; }
};

struct ImageProfile {
  ImageQoS desired;
  ImageQoS worst;

  bool satisfied_by(const ImageQoS& offered) const { return offered.meets(desired); }
  bool tolerates(const ImageQoS& offered) const { return offered.meets(worst); }
  bool well_formed() const { return desired.meets(worst); }
};

/// Cost profile: the maximum amount the user is willing to pay to play the
/// requested document with the desired quality (Fig. 2, in $).
struct CostProfile {
  Money max_cost = Money::dollars(10);
};

/// Time profile (Fig. 2, in seconds): the deadline for delivering discrete
/// media (text/images) — this drives their bandwidth requirement — and the
/// confirmation window `choicePeriod` of Step 6.
struct TimeProfile {
  double delivery_time_s = 10.0;
  double choice_period_s = 30.0;
};

/// The per-request MM profile: which media the user wants (absent media are
/// not requested and impose no constraint) plus cost and time profiles.
struct MMProfile {
  std::optional<VideoProfile> video;
  std::optional<AudioProfile> audio;
  std::optional<TextProfile> text;
  std::optional<ImageProfile> image;
  CostProfile cost;
  TimeProfile time;

  bool wants(MediaKind kind) const;
};

/// A named, stored user profile managed by the profile manager.
struct UserProfile {
  std::string name = "default";
  MMProfile mm;
  ImportanceProfile importance = ImportanceProfile::defaults();
};

/// A sensible default profile (the one the QoS GUI preloads).
UserProfile default_user_profile();

/// Named presets of the standard population (paper Sec. 3's spectrum of
/// users): "demanding" wants high quality and pays for it, "typical" is
/// default_user_profile() under its population name, "thrifty" trades
/// quality for cost aggressively. Shared by the experiment profile mix and
/// the population simulation's client classes.
UserProfile demanding_user_profile();
UserProfile typical_user_profile();
UserProfile thrifty_user_profile();

/// Validation problem list for a profile (empty when well-formed).
std::vector<std::string> validate(const UserProfile& profile);

}  // namespace qosnp
