// Text (de)serialisation of user profiles. The 1996 prototype persisted
// profiles behind the Motif GUI; here a line-oriented "key = value" format
// keeps profiles inspectable and editable with any editor, and the CLI
// profile tool (examples/profile_tool) plays the GUI's role on top of it.
#pragma once

#include <string>
#include <vector>

#include "profile/profiles.hpp"
#include "util/result.hpp"

namespace qosnp {

/// Render one profile as text (round-trips through parse_profiles).
std::string to_text(const UserProfile& profile);

/// Parse one or more profiles from text. Each profile starts with a
/// "profile = <name>" line; unknown keys are reported as errors.
Result<std::vector<UserProfile>> parse_profiles(const std::string& text);

}  // namespace qosnp
