// Profile manager (paper Sec. 3/8): the component responsible for user
// profile management. The Motif windows of the prototype are replaced by a
// programmatic API (used by the CLI profile tool) over the same operations:
// select, create, modify ("Save"/"Save as"), delete, set-default, and
// persistence.
#pragma once

#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "profile/profiles.hpp"
#include "util/result.hpp"

namespace qosnp {

class ProfileManager {
 public:
  /// Starts with the built-in default profile loaded.
  ProfileManager();

  /// Create or overwrite ("Save as" / "Save") a named profile. Rejects
  /// profiles that fail validation, returning the problem list joined.
  Result<bool> save(const UserProfile& profile);

  /// Delete a profile; the default profile cannot be deleted.
  bool remove(const std::string& name);

  std::optional<UserProfile> find(const std::string& name) const;
  std::vector<std::string> list() const;

  /// Mark a profile as the session default (preselected in the GUI).
  bool set_default(const std::string& name);
  UserProfile default_profile() const;

  /// Persist all profiles to / load from a text file (serialize.hpp format).
  Result<bool> save_to_file(const std::string& path) const;
  Result<bool> load_from_file(const std::string& path);

 private:
  mutable std::mutex mu_;
  std::map<std::string, UserProfile> profiles_;
  std::string default_name_;
};

}  // namespace qosnp
