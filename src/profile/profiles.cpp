#include "profile/profiles.hpp"

#include <algorithm>

namespace qosnp {

bool TextProfile::tolerates(const TextQoS& offered) const {
  if (offered.language == desired) return true;
  return std::find(acceptable.begin(), acceptable.end(), offered.language) != acceptable.end();
}

bool MMProfile::wants(MediaKind kind) const {
  switch (kind) {
    case MediaKind::kVideo: return video.has_value();
    case MediaKind::kAudio: return audio.has_value();
    case MediaKind::kText: return text.has_value();
    case MediaKind::kImage: return image.has_value();
  }
  return false;
}

UserProfile default_user_profile() {
  UserProfile p;
  p.name = "default";
  VideoProfile video;
  video.desired = VideoQoS{ColorDepth::kColor, kTvFrameRate, kTvResolution};
  video.worst = VideoQoS{ColorDepth::kGray, 10, 320};
  p.mm.video = video;
  AudioProfile audio;
  audio.desired = AudioQoS{AudioQuality::kCD};
  audio.worst = AudioQoS{AudioQuality::kTelephone};
  p.mm.audio = audio;
  TextProfile text;
  text.desired = Language::kEnglish;
  text.acceptable = {Language::kFrench};
  p.mm.text = text;
  ImageProfile image;
  image.desired = ImageQoS{ColorDepth::kColor, kTvResolution};
  image.worst = ImageQoS{ColorDepth::kGray, 320};
  p.mm.image = image;
  p.mm.cost.max_cost = Money::dollars(8);
  p.mm.time = TimeProfile{};
  p.importance = ImportanceProfile::defaults();
  return p;
}

UserProfile demanding_user_profile() {
  UserProfile p = default_user_profile();
  p.name = "demanding";
  p.mm.video->desired = VideoQoS{ColorDepth::kSuperColor, 30, 1280};
  p.mm.video->worst = VideoQoS{ColorDepth::kColor, 25, kTvResolution};
  p.mm.audio->desired = AudioQoS{AudioQuality::kCD};
  p.mm.audio->worst = AudioQoS{AudioQuality::kRadio};
  p.mm.image->desired = ImageQoS{ColorDepth::kSuperColor, 1280};
  p.mm.image->worst = ImageQoS{ColorDepth::kColor, 320};
  p.mm.cost.max_cost = Money::dollars(25);
  p.importance.cost_per_dollar = 1.0;
  return p;
}

UserProfile typical_user_profile() {
  UserProfile p = default_user_profile();
  p.name = "typical";
  return p;
}

UserProfile thrifty_user_profile() {
  UserProfile p = default_user_profile();
  p.name = "thrifty";
  p.mm.video->desired = VideoQoS{ColorDepth::kColor, 15, 320};
  p.mm.video->worst = VideoQoS{ColorDepth::kBlackWhite, 10, 320};
  p.mm.audio->desired = AudioQoS{AudioQuality::kRadio};
  p.mm.audio->worst = AudioQoS{AudioQuality::kTelephone};
  p.mm.image->desired = ImageQoS{ColorDepth::kGray, 320};
  p.mm.image->worst = ImageQoS{ColorDepth::kBlackWhite, 320};
  p.mm.cost.max_cost = Money::dollars(3);
  p.importance.cost_per_dollar = 8.0;
  return p;
}

std::vector<std::string> validate(const UserProfile& profile) {
  std::vector<std::string> problems;
  if (profile.name.empty()) problems.push_back("profile has an empty name");
  if (profile.mm.video && !profile.mm.video->well_formed()) {
    problems.push_back("video profile: worst acceptable exceeds desired");
  }
  if (profile.mm.audio && !profile.mm.audio->well_formed()) {
    problems.push_back("audio profile: worst acceptable exceeds desired");
  }
  if (profile.mm.image && !profile.mm.image->well_formed()) {
    problems.push_back("image profile: worst acceptable exceeds desired");
  }
  if (profile.mm.video) {
    const VideoQoS d = profile.mm.video->desired;
    if (d.frame_rate_fps < kFrozenFrameRate || d.frame_rate_fps > kHdtvFrameRate) {
      problems.push_back("video profile: desired frame rate outside [1, 60] fps");
    }
    if (d.resolution < kMinResolution || d.resolution > kHdtvResolution) {
      problems.push_back("video profile: desired resolution outside [10, 1920] pixels/line");
    }
  }
  if (profile.mm.cost.max_cost.is_negative()) {
    problems.push_back("cost profile: negative maximum cost");
  }
  if (profile.mm.time.delivery_time_s <= 0.0) {
    problems.push_back("time profile: non-positive delivery time");
  }
  if (profile.mm.time.choice_period_s <= 0.0) {
    problems.push_back("time profile: non-positive choice period");
  }
  if (!profile.mm.video && !profile.mm.audio && !profile.mm.text && !profile.mm.image) {
    problems.push_back("profile requests no media at all");
  }
  return problems;
}

}  // namespace qosnp
