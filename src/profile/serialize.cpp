#include "profile/serialize.hpp"

#include <cstdio>
#include <cstdlib>
#include <span>
#include <sstream>

#include "util/strings.hpp"

namespace qosnp {

namespace {

std::string video_qos_text(const VideoQoS& q) {
  std::ostringstream os;
  os << to_string(q.color) << ' ' << q.frame_rate_fps << ' ' << q.resolution;
  return os.str();
}

std::string image_qos_text(const ImageQoS& q) {
  std::ostringstream os;
  os << to_string(q.color) << ' ' << q.resolution;
  return os.str();
}

std::string array_text(std::span<const double> values) {
  std::ostringstream os;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) os << ' ';
    os << format_double(values[i], 3);
  }
  return os.str();
}

std::string curve_text(const PiecewiseLinear& curve, std::span<const double> xs) {
  // Serialise by sampling at the canonical anchor positions: the GUI only
  // exposes those anchors (Fig. 2), so this is lossless for GUI-made curves.
  std::ostringstream os;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (i) os << ' ';
    os << format_double(xs[i], 0) << ':' << format_double(curve.at(xs[i]), 3);
  }
  return os.str();
}

bool parse_video_qos(const std::string& value, VideoQoS& out) {
  const auto parts = split(value, ' ');
  std::vector<std::string> fields;
  for (const auto& p : parts) {
    if (!trim(p).empty()) fields.emplace_back(trim(p));
  }
  if (fields.size() != 3) return false;
  const auto color = parse_color_depth(fields[0]);
  if (!color) return false;
  out.color = *color;
  out.frame_rate_fps = std::atoi(fields[1].c_str());
  out.resolution = std::atoi(fields[2].c_str());
  return out.frame_rate_fps > 0 && out.resolution > 0;
}

bool parse_image_qos(const std::string& value, ImageQoS& out) {
  const auto parts = split(value, ' ');
  std::vector<std::string> fields;
  for (const auto& p : parts) {
    if (!trim(p).empty()) fields.emplace_back(trim(p));
  }
  if (fields.size() != 2) return false;
  const auto color = parse_color_depth(fields[0]);
  if (!color) return false;
  out.color = *color;
  out.resolution = std::atoi(fields[1].c_str());
  return out.resolution > 0;
}

bool parse_doubles(const std::string& value, std::vector<double>& out) {
  out.clear();
  for (const auto& p : split(value, ' ')) {
    const auto f = trim(p);
    if (f.empty()) continue;
    char* end = nullptr;
    const std::string s(f);
    const double v = std::strtod(s.c_str(), &end);
    if (end == s.c_str()) return false;
    out.push_back(v);
  }
  return !out.empty();
}

bool parse_curve(const std::string& value, PiecewiseLinear& out) {
  out = PiecewiseLinear{};
  for (const auto& p : split(value, ' ')) {
    const auto f = trim(p);
    if (f.empty()) continue;
    const auto pos = f.find(':');
    if (pos == std::string_view::npos) return false;
    const std::string xs(f.substr(0, pos));
    const std::string vs(f.substr(pos + 1));
    char* end = nullptr;
    const double x = std::strtod(xs.c_str(), &end);
    if (end == xs.c_str()) return false;
    const double v = std::strtod(vs.c_str(), &end);
    if (end == vs.c_str()) return false;
    out.set_anchor(x, v);
  }
  return !out.empty();
}

}  // namespace

std::string to_text(const UserProfile& p) {
  std::ostringstream os;
  os << "profile = " << p.name << '\n';
  if (p.mm.video) {
    os << "video.desired = " << video_qos_text(p.mm.video->desired) << '\n';
    os << "video.worst = " << video_qos_text(p.mm.video->worst) << '\n';
  }
  if (p.mm.audio) {
    os << "audio.desired = " << to_string(p.mm.audio->desired.quality) << '\n';
    os << "audio.worst = " << to_string(p.mm.audio->worst.quality) << '\n';
  }
  if (p.mm.text) {
    os << "text.desired = " << to_string(p.mm.text->desired) << '\n';
    if (!p.mm.text->acceptable.empty()) {
      os << "text.acceptable =";
      for (Language l : p.mm.text->acceptable) os << ' ' << to_string(l);
      os << '\n';
    }
  }
  if (p.mm.image) {
    os << "image.desired = " << image_qos_text(p.mm.image->desired) << '\n';
    os << "image.worst = " << image_qos_text(p.mm.image->worst) << '\n';
  }
  os << "cost.max = " << p.mm.cost.max_cost.to_string() << '\n';
  os << "time.delivery = " << format_double(p.mm.time.delivery_time_s, 1) << '\n';
  os << "time.choice_period = " << format_double(p.mm.time.choice_period_s, 1) << '\n';

  const ImportanceProfile& imp = p.importance;
  os << "importance.video.color = " << array_text(imp.video_color) << '\n';
  const double rate_anchors[] = {kFrozenFrameRate, kTvFrameRate, kHdtvFrameRate};
  const double res_anchors[] = {kMinResolution, kTvResolution, kHdtvResolution};
  os << "importance.frame_rate = " << curve_text(imp.frame_rate, rate_anchors) << '\n';
  os << "importance.resolution = " << curve_text(imp.resolution, res_anchors) << '\n';
  os << "importance.audio = " << array_text(imp.audio_quality) << '\n';
  os << "importance.language = " << array_text(imp.language) << '\n';
  os << "importance.image.color = " << array_text(imp.image_color) << '\n';
  os << "importance.image.resolution = " << curve_text(imp.image_resolution, res_anchors) << '\n';
  os << "importance.media_weight = " << array_text(imp.media_weight) << '\n';
  os << "importance.cost = " << format_double(imp.cost_per_dollar, 3) << '\n';
  if (!imp.preferred_servers.empty()) {
    os << "importance.preferred_servers =";
    for (const auto& s : imp.preferred_servers) os << ' ' << s;
    os << '\n';
    os << "importance.server_bonus = " << format_double(imp.server_bonus, 3) << '\n';
  }
  return os.str();
}

Result<std::vector<UserProfile>> parse_profiles(const std::string& text) {
  std::vector<UserProfile> profiles;
  UserProfile current;
  bool open = false;

  auto fail = [&](int line_no, const std::string& what) {
    return Err(std::string("line " + std::to_string(line_no) + ": " + what));
  };

  const auto lines = split(text, '\n');
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const int line_no = static_cast<int>(i) + 1;
    const auto line = trim(lines[i]);
    if (line.empty() || line.front() == '#') continue;
    std::string key;
    std::string value;
    if (!parse_key_value(line, key, value)) {
      return fail(line_no, "expected 'key = value'");
    }
    if (key == "profile") {
      if (open) profiles.push_back(std::move(current));
      current = UserProfile{};
      current.name = value;
      // A parsed profile starts with no media; keys below attach them.
      current.mm.video.reset();
      current.mm.audio.reset();
      current.mm.text.reset();
      current.mm.image.reset();
      open = true;
      continue;
    }
    if (!open) return fail(line_no, "key before any 'profile =' line");

    auto& mm = current.mm;
    auto& imp = current.importance;
    std::vector<double> nums;
    if (key == "video.desired" || key == "video.worst") {
      VideoQoS q;
      if (!parse_video_qos(value, q)) return fail(line_no, "bad video QoS '" + value + "'");
      if (!mm.video) mm.video = VideoProfile{};
      (key == "video.desired" ? mm.video->desired : mm.video->worst) = q;
    } else if (key == "audio.desired" || key == "audio.worst") {
      const auto q = parse_audio_quality(value);
      if (!q) return fail(line_no, "bad audio quality '" + value + "'");
      if (!mm.audio) mm.audio = AudioProfile{};
      (key == "audio.desired" ? mm.audio->desired : mm.audio->worst) = AudioQoS{*q};
    } else if (key == "text.desired") {
      const auto l = parse_language(value);
      if (!l) return fail(line_no, "bad language '" + value + "'");
      if (!mm.text) mm.text = TextProfile{};
      mm.text->desired = *l;
    } else if (key == "text.acceptable") {
      if (!mm.text) mm.text = TextProfile{};
      mm.text->acceptable.clear();
      for (const auto& p : split(value, ' ')) {
        const auto f = trim(p);
        if (f.empty()) continue;
        const auto l = parse_language(f);
        if (!l) return fail(line_no, "bad language '" + std::string(f) + "'");
        mm.text->acceptable.push_back(*l);
      }
    } else if (key == "image.desired" || key == "image.worst") {
      ImageQoS q;
      if (!parse_image_qos(value, q)) return fail(line_no, "bad image QoS '" + value + "'");
      if (!mm.image) mm.image = ImageProfile{};
      (key == "image.desired" ? mm.image->desired : mm.image->worst) = q;
    } else if (key == "cost.max") {
      mm.cost.max_cost = Money::parse(value);
    } else if (key == "time.delivery") {
      mm.time.delivery_time_s = std::atof(value.c_str());
    } else if (key == "time.choice_period") {
      mm.time.choice_period_s = std::atof(value.c_str());
    } else if (key == "importance.video.color") {
      if (!parse_doubles(value, nums) || nums.size() != 4) {
        return fail(line_no, "expected 4 colour importances");
      }
      std::copy(nums.begin(), nums.end(), imp.video_color.begin());
    } else if (key == "importance.frame_rate") {
      if (!parse_curve(value, imp.frame_rate)) return fail(line_no, "bad curve");
    } else if (key == "importance.resolution") {
      if (!parse_curve(value, imp.resolution)) return fail(line_no, "bad curve");
    } else if (key == "importance.audio") {
      if (!parse_doubles(value, nums) || nums.size() != 3) {
        return fail(line_no, "expected 3 audio importances");
      }
      std::copy(nums.begin(), nums.end(), imp.audio_quality.begin());
    } else if (key == "importance.language") {
      if (!parse_doubles(value, nums) || nums.size() != 4) {
        return fail(line_no, "expected 4 language importances");
      }
      std::copy(nums.begin(), nums.end(), imp.language.begin());
    } else if (key == "importance.image.color") {
      if (!parse_doubles(value, nums) || nums.size() != 4) {
        return fail(line_no, "expected 4 colour importances");
      }
      std::copy(nums.begin(), nums.end(), imp.image_color.begin());
    } else if (key == "importance.image.resolution") {
      if (!parse_curve(value, imp.image_resolution)) return fail(line_no, "bad curve");
    } else if (key == "importance.media_weight") {
      if (!parse_doubles(value, nums) || nums.size() != 4) {
        return fail(line_no, "expected 4 media weights");
      }
      std::copy(nums.begin(), nums.end(), imp.media_weight.begin());
    } else if (key == "importance.cost") {
      if (!parse_doubles(value, nums) || nums.size() != 1) {
        return fail(line_no, "expected one cost importance");
      }
      imp.cost_per_dollar = nums[0];
    } else if (key == "importance.preferred_servers") {
      imp.preferred_servers.clear();
      for (const auto& s : split(value, ' ')) {
        const auto f = trim(s);
        if (!f.empty()) imp.preferred_servers.emplace_back(f);
      }
    } else if (key == "importance.server_bonus") {
      if (!parse_doubles(value, nums) || nums.size() != 1) {
        return fail(line_no, "expected one server bonus");
      }
      imp.server_bonus = nums[0];
    } else {
      return fail(line_no, "unknown key '" + key + "'");
    }
  }
  if (open) profiles.push_back(std::move(current));
  return profiles;
}

}  // namespace qosnp
