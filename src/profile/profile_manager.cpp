#include "profile/profile_manager.hpp"

#include <fstream>
#include <sstream>

#include "profile/serialize.hpp"

namespace qosnp {

ProfileManager::ProfileManager() {
  UserProfile def = default_user_profile();
  default_name_ = def.name;
  profiles_[def.name] = std::move(def);
}

Result<bool> ProfileManager::save(const UserProfile& profile) {
  const auto problems = validate(profile);
  if (!problems.empty()) {
    std::ostringstream os;
    for (std::size_t i = 0; i < problems.size(); ++i) {
      if (i) os << "; ";
      os << problems[i];
    }
    return Err(os.str());
  }
  std::lock_guard lk(mu_);
  profiles_[profile.name] = profile;
  return true;
}

bool ProfileManager::remove(const std::string& name) {
  std::lock_guard lk(mu_);
  if (name == default_name_) return false;
  return profiles_.erase(name) > 0;
}

std::optional<UserProfile> ProfileManager::find(const std::string& name) const {
  std::lock_guard lk(mu_);
  auto it = profiles_.find(name);
  if (it == profiles_.end()) return std::nullopt;
  return it->second;
}

std::vector<std::string> ProfileManager::list() const {
  std::lock_guard lk(mu_);
  std::vector<std::string> names;
  names.reserve(profiles_.size());
  for (const auto& [name, _] : profiles_) names.push_back(name);
  return names;
}

bool ProfileManager::set_default(const std::string& name) {
  std::lock_guard lk(mu_);
  if (!profiles_.contains(name)) return false;
  default_name_ = name;
  return true;
}

UserProfile ProfileManager::default_profile() const {
  std::lock_guard lk(mu_);
  auto it = profiles_.find(default_name_);
  return it == profiles_.end() ? default_user_profile() : it->second;
}

Result<bool> ProfileManager::save_to_file(const std::string& path) const {
  std::ostringstream os;
  {
    std::lock_guard lk(mu_);
    os << "# qosnp user profiles (default: " << default_name_ << ")\n";
    for (const auto& [_, p] : profiles_) {
      os << '\n' << to_text(p);
    }
  }
  std::ofstream out(path);
  if (!out) return Err("cannot open '" + path + "' for writing");
  out << os.str();
  return true;
}

Result<bool> ProfileManager::load_from_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Err("cannot open '" + path + "' for reading");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  auto parsed = parse_profiles(buffer.str());
  if (!parsed.ok()) return Err(parsed.error());
  std::lock_guard lk(mu_);
  for (UserProfile& p : parsed.value()) {
    profiles_[p.name] = std::move(p);
  }
  return true;
}

}  // namespace qosnp
