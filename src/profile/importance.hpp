// Importance factors (paper Sec. 3 and 5.2.2): user-set weights that express
// the relative importance of QoS characteristics and of cost. For scalar
// characteristics (frame rate, resolution) the user sets importance only at
// anchor values (frozen/TV/HDTV rate; minimal/TV/HDTV resolution) and the
// importance of any other value is linearly interpolated between the
// surrounding anchors. For enumerated characteristics (colour, audio
// quality, language) every ladder value carries an importance. The cost
// importance is the importance of one dollar; an offer's cost importance is
// that factor times the offer's cost.
#pragma once

#include <array>
#include <cstddef>
#include <string>
#include <vector>

#include "media/qos.hpp"
#include "media/types.hpp"
#include "util/money.hpp"

namespace qosnp {

/// Piecewise-linear importance curve over a scalar QoS characteristic.
/// Anchors are kept sorted by x; evaluation clamps outside the anchor span.
class PiecewiseLinear {
 public:
  PiecewiseLinear() = default;
  PiecewiseLinear(std::initializer_list<std::pair<double, double>> anchors);

  /// Insert or overwrite the anchor at x.
  void set_anchor(double x, double value);
  /// Importance at x: exact at anchors, linear in between, clamped outside.
  double at(double x) const;

  std::size_t anchor_count() const { return anchors_.size(); }
  bool empty() const { return anchors_.empty(); }
  /// The sorted (x, importance) anchors; exposed so profile fingerprints
  /// (plan-cache keys) can cover the whole curve.
  const std::vector<std::pair<double, double>>& anchors() const { return anchors_; }

 private:
  std::vector<std::pair<double, double>> anchors_;  // sorted by first
};

/// The importance profile of a user (Fig. 2's importance factors).
struct ImportanceProfile {
  // Video.
  std::array<double, 4> video_color{};  ///< indexed by ColorDepth
  PiecewiseLinear frame_rate;
  PiecewiseLinear resolution;
  // Audio.
  std::array<double, 3> audio_quality{};  ///< indexed by AudioQuality
  // Text.
  std::array<double, 4> language{};  ///< indexed by Language
  // Image.
  std::array<double, 4> image_color{};
  PiecewiseLinear image_resolution;

  /// Per-media multiplier (paper: "the user specifies that the audio is
  /// more important than the video"). Defaults to 1 for every medium.
  std::array<double, 4> media_weight{1.0, 1.0, 1.0, 1.0};  ///< indexed by MediaKind

  /// Importance of one dollar of cost (paper Sec. 5.2.2(b)).
  double cost_per_dollar = 0.0;

  /// Server preference (paper Sec. 8: the profile "may include ... other
  /// information related to document search, e.g. the user prefers certain
  /// servers over others"): each offer component stored on a preferred
  /// server adds `server_bonus` to the offer's overall importance factor.
  std::vector<std::string> preferred_servers;
  double server_bonus = 0.0;

  bool prefers_server(const std::string& server) const;

  /// QoS importance of one monomedia QoS instance: the sum of the
  /// importances of its characteristic values, scaled by the media weight.
  double qos_importance(const MonomediaQoS& qos) const;

  /// Cost importance of an offer: cost_per_dollar x cost-in-dollars.
  double cost_importance(Money cost) const;

  /// Paper defaults ("We associate a default importance value for each QoS
  /// parameter value").
  static ImportanceProfile defaults();
};

}  // namespace qosnp
