#include "net/transport.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/log.hpp"

namespace qosnp {

TransportService::TransportService(Topology topology) : topology_(std::move(topology)) {
  reserved_.assign(topology_.link_count(), 0);
  effective_capacity_.reserve(topology_.link_count());
  for (std::size_t i = 0; i < topology_.link_count(); ++i) {
    effective_capacity_.push_back(topology_.link(i).capacity_bps);
  }
  link_flow_count_.assign(topology_.link_count(), 0);
}

Result<FlowId, Refusal> TransportService::reserve(const NodeId& src, const NodeId& dst,
                                                  const StreamRequirements& req) {
  const std::int64_t rate = req.guarantee == GuaranteeClass::kGuaranteed ? req.max_bit_rate_bps
                                                                         : req.avg_bit_rate_bps;
  if (rate <= 0) return permanent_refusal("transport", "non-positive bit rate");

  // Route with admission-aware retries: when a link on the preferred path
  // lacks capacity, exclude it and re-route — in a multi-path topology the
  // flow takes the standby path instead of being rejected.
  std::lock_guard lk(mu_);
  std::vector<std::size_t> excluded;
  std::string last_error;
  for (int attempt = 0; attempt <= kMaxRouteRetries; ++attempt) {
    auto path = topology_.shortest_path(src, dst, excluded);
    if (!path.ok()) {
      // No route at all is permanent; a route that exists but is full
      // (last_error from a previous attempt) is a transient shortage.
      if (last_error.empty()) return permanent_refusal("transport", path.error());
      return transient_refusal("transport", last_error);
    }
    // Headroom-differentiated admission: a class with headroom h only sees
    // capacity * (1 - h) of each link (h <= 0 keeps the class-blind path
    // free of any floating-point round-trip).
    const double h = headroom_.for_class(req.session_class);
    const std::size_t* bottleneck = nullptr;
    for (const std::size_t& link : path.value()) {
      const std::int64_t usable =
          h <= 0.0 ? effective_capacity_[link]
                   : static_cast<std::int64_t>(std::llround(
                         static_cast<double>(effective_capacity_[link]) * (1.0 - h)));
      if (reserved_[link] + rate > usable) {
        bottleneck = &link;
        break;
      }
    }
    if (bottleneck != nullptr) {
      last_error = "insufficient bandwidth on link " + std::to_string(*bottleneck) + " (" +
                   topology_.link(*bottleneck).a + "<->" + topology_.link(*bottleneck).b + ")";
      excluded.push_back(*bottleneck);
      continue;
    }
    for (std::size_t link : path.value()) {
      reserved_[link] += rate;
      ++link_flow_count_[link];
    }
    FlowInfo info;
    info.id = next_id_++;
    info.src = src;
    info.dst = dst;
    info.path = std::move(path.value());
    info.reserved_bps = rate;
    info.guarantee = req.guarantee;
    const FlowId id = info.id;
    flows_[id] = std::move(info);
    QOSNP_LOG_DEBUG("transport", "reserved flow ", id, " ", src, "->", dst, " at ", rate,
                    " bps over ", flows_[id].path.size(), " links");
    return id;
  }
  return transient_refusal("transport", last_error);
}

bool TransportService::release(FlowId id) {
  std::lock_guard lk(mu_);
  auto it = flows_.find(id);
  if (it == flows_.end()) return false;
  for (std::size_t link : it->second.path) {
    reserved_[link] -= it->second.reserved_bps;
    --link_flow_count_[link];
    // A negative ledger means an admit/release was lost or double-counted;
    // with all updates under mu_ this cannot happen — keep it checked.
    assert(reserved_[link] >= 0 && "link reservation went negative");
  }
  flows_.erase(it);
  return true;
}

std::optional<FlowInfo> TransportService::flow(FlowId id) const {
  std::lock_guard lk(mu_);
  auto it = flows_.find(id);
  if (it == flows_.end()) return std::nullopt;
  return it->second;
}

std::size_t TransportService::active_flows() const {
  std::lock_guard lk(mu_);
  return flows_.size();
}

std::vector<FlowId> TransportService::overfull_victims_locked(std::size_t link_index) {
  // Pick victims newest-first until the link fits again. Victims keep their
  // reservation (the adaptation procedure decides what to do); we only
  // report who is affected by the shortfall.
  std::vector<FlowId> on_link;
  for (const auto& [id, info] : flows_) {
    if (std::find(info.path.begin(), info.path.end(), link_index) != info.path.end()) {
      on_link.push_back(id);
    }
  }
  std::sort(on_link.begin(), on_link.end(), std::greater<>());
  std::int64_t excess = reserved_[link_index] - effective_capacity_[link_index];
  std::vector<FlowId> victims;
  for (FlowId id : on_link) {
    if (excess <= 0) break;
    victims.push_back(id);
    excess -= flows_[id].reserved_bps;
  }
  return victims;
}

std::vector<FlowId> TransportService::degrade_link(std::size_t link_index, double lost_fraction) {
  if (link_index >= topology_.link_count()) return {};
  lost_fraction = std::clamp(lost_fraction, 0.0, 0.999);
  std::lock_guard lk(mu_);
  effective_capacity_[link_index] = static_cast<std::int64_t>(
      std::llround(static_cast<double>(topology_.link(link_index).capacity_bps) *
                   (1.0 - lost_fraction)));
  return overfull_victims_locked(link_index);
}

void TransportService::restore_link(std::size_t link_index) {
  if (link_index >= topology_.link_count()) return;
  std::lock_guard lk(mu_);
  effective_capacity_[link_index] = topology_.link(link_index).capacity_bps;
}

bool TransportService::accounting_consistent() const {
  std::lock_guard lk(mu_);
  std::vector<std::int64_t> reserved(reserved_.size(), 0);
  std::vector<std::size_t> counts(link_flow_count_.size(), 0);
  for (const auto& [id, info] : flows_) {
    for (std::size_t link : info.path) {
      reserved[link] += info.reserved_bps;
      ++counts[link];
    }
  }
  return reserved == reserved_ && counts == link_flow_count_;
}

void TransportService::set_class_headroom(ClassHeadroom headroom) {
  headroom = ClassHeadroom::validated(headroom);
  std::lock_guard lk(mu_);
  headroom_ = headroom;
}

std::int64_t TransportService::total_reserved_bps() const {
  std::lock_guard lk(mu_);
  std::int64_t total = 0;
  for (std::int64_t r : reserved_) total += r;
  return total;
}

LinkUsage TransportService::link_usage(std::size_t link_index) const {
  std::lock_guard lk(mu_);
  LinkUsage usage;
  if (link_index >= topology_.link_count()) return usage;
  usage.capacity_bps = topology_.link(link_index).capacity_bps;
  usage.effective_capacity_bps = effective_capacity_[link_index];
  usage.reserved_bps = reserved_[link_index];
  usage.flow_count = link_flow_count_[link_index];
  return usage;
}

double TransportService::mean_utilization() const {
  std::lock_guard lk(mu_);
  if (reserved_.empty()) return 0.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < reserved_.size(); ++i) {
    sum += static_cast<double>(reserved_[i]) /
           static_cast<double>(topology_.link(i).capacity_bps);
  }
  return sum / static_cast<double>(reserved_.size());
}

}  // namespace qosnp
