#include "net/topology.hpp"

#include <algorithm>
#include <limits>
#include <queue>

namespace qosnp {

bool Topology::add_node(NodeId id, NodeKind kind) {
  if (index_.contains(id)) return false;
  index_[id] = nodes_.size();
  nodes_.push_back(NetNode{std::move(id), kind});
  return true;
}

Result<std::size_t> Topology::add_link(const NodeId& a, const NodeId& b,
                                       std::int64_t capacity_bps, double delay_ms) {
  if (!index_.contains(a)) return Err("unknown node '" + a + "'");
  if (!index_.contains(b)) return Err("unknown node '" + b + "'");
  if (a == b) return Err("self-link on '" + a + "'");
  if (capacity_bps <= 0) return Err("non-positive capacity");
  const std::size_t link_index = links_.size();
  links_.push_back(NetLink{a, b, capacity_bps, delay_ms});
  adjacency_[a].push_back({index_[b], link_index});
  adjacency_[b].push_back({index_[a], link_index});
  return link_index;
}

std::optional<NodeKind> Topology::node_kind(const NodeId& id) const {
  auto it = index_.find(id);
  if (it == index_.end()) return std::nullopt;
  return nodes_[it->second].kind;
}

Result<std::vector<std::size_t>> Topology::shortest_path(
    const NodeId& src, const NodeId& dst, std::span<const std::size_t> excluded_links) const {
  auto si = index_.find(src);
  auto di = index_.find(dst);
  if (si == index_.end()) return Err("unknown node '" + src + "'");
  if (di == index_.end()) return Err("unknown node '" + dst + "'");
  if (si->second == di->second) return std::vector<std::size_t>{};
  auto excluded = [&](std::size_t link) {
    return std::find(excluded_links.begin(), excluded_links.end(), link) !=
           excluded_links.end();
  };

  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(nodes_.size(), kInf);
  std::vector<std::size_t> via_link(nodes_.size(), SIZE_MAX);
  std::vector<std::size_t> prev_node(nodes_.size(), SIZE_MAX);
  using Entry = std::pair<double, std::size_t>;  // (distance, node index)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;

  dist[si->second] = 0.0;
  heap.push({0.0, si->second});
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (d > dist[u]) continue;
    if (u == di->second) break;
    auto adj = adjacency_.find(nodes_[u].id);
    if (adj == adjacency_.end()) continue;
    for (const auto& [v, link_index] : adj->second) {
      if (excluded(link_index)) continue;
      const double nd = d + links_[link_index].delay_ms;
      if (nd < dist[v]) {
        dist[v] = nd;
        via_link[v] = link_index;
        prev_node[v] = u;
        heap.push({nd, v});
      }
    }
  }
  if (dist[di->second] == kInf) {
    return Err("no path from '" + src + "' to '" + dst + "'");
  }
  std::vector<std::size_t> path;
  for (std::size_t at = di->second; at != si->second; at = prev_node[at]) {
    path.push_back(via_link[at]);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

Topology Topology::dumbbell(int clients, int servers, std::int64_t access_bps,
                            std::int64_t backbone_bps) {
  Topology t;
  t.add_node("switch-client", NodeKind::kSwitch);
  t.add_node("switch-server", NodeKind::kSwitch);
  (void)t.add_link("switch-client", "switch-server", backbone_bps, 5.0);
  for (int i = 0; i < clients; ++i) {
    const NodeId id = "client-" + std::to_string(i);
    t.add_node(id, NodeKind::kClient);
    (void)t.add_link(id, "switch-client", access_bps, 1.0);
  }
  for (int i = 0; i < servers; ++i) {
    const NodeId id = "server-node-" + std::to_string(i);
    t.add_node(id, NodeKind::kServer);
    (void)t.add_link(id, "switch-server", access_bps, 1.0);
  }
  return t;
}

Topology Topology::dual_backbone(int clients, int servers, std::int64_t access_bps,
                                 std::int64_t backbone_bps) {
  Topology t = dumbbell(clients, servers, access_bps, backbone_bps);
  // The standby backbone: same capacity, marginally higher delay so the
  // primary is preferred while it has room.
  (void)t.add_link("switch-client", "switch-server", backbone_bps, 6.0);
  return t;
}

}  // namespace qosnp
