// Transport service: the component the QoS manager asks "to reserve
// resources to support the QoS associated with the system offer" (paper
// Step 5). Admission control is per-link bandwidth accounting: a guaranteed
// flow reserves its peak bit rate on every link of its path, a best-effort
// flow its average rate; a reservation is admitted only if every link can
// carry it. Congestion injection shrinks a link's effective capacity and
// surfaces the flows that no longer fit — the QoS-violation signal the
// adaptation procedure reacts to.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "net/topology.hpp"
#include "qosmap/mapping.hpp"
#include "util/result.hpp"

namespace qosnp {

using FlowId = std::uint64_t;

/// Minimal transport surface the resource-commitment step needs: admit a
/// flow with given stream requirements, release it later. Implemented by
/// the single-authority TransportService below, by the multi-domain
/// transport (src/domain) where each domain manages its own segment, and by
/// the fault-injecting decorator (src/fault). Refusals are typed: transient
/// (links full right now) vs permanent (no route between the nodes).
class TransportProvider {
 public:
  virtual ~TransportProvider() = default;
  virtual Result<FlowId, Refusal> reserve(const NodeId& src, const NodeId& dst,
                                          const StreamRequirements& req) = 0;
  virtual bool release(FlowId id) = 0;
};

struct FlowInfo {
  FlowId id = 0;
  NodeId src;
  NodeId dst;
  std::vector<std::size_t> path;  ///< link indices
  std::int64_t reserved_bps = 0;
  GuaranteeClass guarantee = GuaranteeClass::kGuaranteed;
};

struct LinkUsage {
  std::int64_t capacity_bps = 0;
  std::int64_t effective_capacity_bps = 0;  ///< after congestion injection
  std::int64_t reserved_bps = 0;
  std::size_t flow_count = 0;
};

class TransportService final : public TransportProvider {
 public:
  /// How many times reserve() re-routes around a full link before rejecting.
  static constexpr int kMaxRouteRetries = 4;

  explicit TransportService(Topology topology);

  TransportService(const TransportService&) = delete;
  TransportService& operator=(const TransportService&) = delete;

  const Topology& topology() const { return topology_; }

  /// Admit a flow from src to dst with the given requirements. Reserves the
  /// peak rate (guaranteed) or average rate (best-effort) on each path link.
  Result<FlowId, Refusal> reserve(const NodeId& src, const NodeId& dst,
                                  const StreamRequirements& req) override;

  /// Release a flow's reservation. Returns false for unknown flows
  /// (double-release is harmless).
  bool release(FlowId id) override;

  std::optional<FlowInfo> flow(FlowId id) const;
  std::size_t active_flows() const;

  /// Congestion injection: set the fraction [0, 1) of a link's capacity
  /// lost to congestion. Returns flows that no longer fit on that link,
  /// worst-fit-last (most recently admitted victims first) — these are the
  /// QoS-violation notifications delivered to the QoS manager.
  std::vector<FlowId> degrade_link(std::size_t link_index, double lost_fraction);

  /// Clear congestion on a link.
  void restore_link(std::size_t link_index);

  LinkUsage link_usage(std::size_t link_index) const;

  /// Sum of reserved-rate x capacity ratios over links (mean utilisation).
  double mean_utilization() const;

  /// Recompute every link's ledger from the live flow table and compare it
  /// with the incremental accounting reserve()/release() maintain. The
  /// concurrency tests call this after hammering the service from many
  /// workers: any lost or double-counted update shows up as a mismatch.
  bool accounting_consistent() const;

  /// Sum of reserved bandwidth over all links (0 iff nothing is held, the
  /// drain invariant of the service tests).
  std::int64_t total_reserved_bps() const;

  /// Per-class admission headroom on every link: class C only fits while
  /// reserved + rate <= effective_capacity * (1 - headroom[C]). All-zero
  /// (the default) is class-blind admission. Validated on set.
  void set_class_headroom(ClassHeadroom headroom);

 private:
  std::vector<FlowId> overfull_victims_locked(std::size_t link_index);

  mutable std::mutex mu_;
  Topology topology_;
  ClassHeadroom headroom_;                        // guarded by mu_
  std::vector<std::int64_t> reserved_;            // per link
  std::vector<std::int64_t> effective_capacity_;  // per link
  std::vector<std::size_t> link_flow_count_;      // per link
  std::unordered_map<FlowId, FlowInfo> flows_;
  FlowId next_id_ = 1;
};

/// RAII wrapper releasing a flow reservation unless dismissed.
class ScopedFlow {
 public:
  ScopedFlow() = default;
  ScopedFlow(TransportProvider* service, FlowId id) : service_(service), id_(id) {}
  ~ScopedFlow() { reset(); }

  ScopedFlow(ScopedFlow&& other) noexcept { *this = std::move(other); }
  ScopedFlow& operator=(ScopedFlow&& other) noexcept {
    if (this != &other) {
      reset();
      service_ = other.service_;
      id_ = other.id_;
      other.service_ = nullptr;
      other.id_ = 0;
    }
    return *this;
  }
  ScopedFlow(const ScopedFlow&) = delete;
  ScopedFlow& operator=(const ScopedFlow&) = delete;

  FlowId id() const { return id_; }
  bool valid() const { return service_ != nullptr; }

  /// Keep the reservation past this handle's lifetime (commit succeeded).
  FlowId dismiss() {
    service_ = nullptr;
    return id_;
  }

  void reset() {
    if (service_ != nullptr) service_->release(id_);
    service_ = nullptr;
    id_ = 0;
  }

 private:
  TransportProvider* service_ = nullptr;
  FlowId id_ = 0;
};

}  // namespace qosnp
