// Network topology for the simulated transport system: nodes (client
// machines, server machines, switches) connected by capacity-annotated
// links. The 1996 prototype ran over an ATM testbed; the negotiation
// procedure only needs path selection plus per-link bandwidth accounting,
// which this model provides.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/result.hpp"

namespace qosnp {

using NodeId = std::string;

enum class NodeKind { kClient, kServer, kSwitch };

struct NetNode {
  NodeId id;
  NodeKind kind = NodeKind::kSwitch;
};

struct NetLink {
  NodeId a;
  NodeId b;
  std::int64_t capacity_bps = 0;
  double delay_ms = 1.0;
};

class Topology {
 public:
  /// Add a node; duplicate ids are rejected.
  bool add_node(NodeId id, NodeKind kind);
  /// Add a bidirectional link between existing nodes; returns its index.
  Result<std::size_t> add_link(const NodeId& a, const NodeId& b, std::int64_t capacity_bps,
                               double delay_ms = 1.0);

  bool has_node(const NodeId& id) const { return index_.contains(id); }
  std::optional<NodeKind> node_kind(const NodeId& id) const;
  std::size_t node_count() const { return nodes_.size(); }
  std::size_t link_count() const { return links_.size(); }
  const NetLink& link(std::size_t i) const { return links_[i]; }
  const std::vector<NetNode>& nodes() const { return nodes_; }

  /// Minimum-delay path between two nodes as a sequence of link indices,
  /// optionally avoiding `excluded_links` (used by the transport service to
  /// route around full or congested links). Empty result for src == dst;
  /// error when no path exists.
  Result<std::vector<std::size_t>> shortest_path(
      const NodeId& src, const NodeId& dst,
      std::span<const std::size_t> excluded_links = {}) const;

  /// A classic evaluation shape: `clients` client nodes on one switch,
  /// `servers` server nodes on another, joined by a backbone link of
  /// `backbone_bps`. Access links get `access_bps`.
  static Topology dumbbell(int clients, int servers, std::int64_t access_bps,
                           std::int64_t backbone_bps);

  /// Like dumbbell, but with two parallel backbone links (the second
  /// slightly higher delay, so it is the standby path): gives the
  /// adaptation procedure a genuine alternate route.
  static Topology dual_backbone(int clients, int servers, std::int64_t access_bps,
                                std::int64_t backbone_bps);

 private:
  std::vector<NetNode> nodes_;
  std::vector<NetLink> links_;
  std::unordered_map<NodeId, std::size_t> index_;
  std::unordered_map<std::string, std::vector<std::pair<std::size_t, std::size_t>>> adjacency_;
  // adjacency_: node id -> (neighbor node index, link index)
};

}  // namespace qosnp
