// Multimedia document model (paper Fig. 1, OMT): a document is a monomedia
// or a multimedia; a multimedia aggregates monomedia and carries spatial and
// temporal synchronisation attributes. Each monomedia exists in one or more
// physical *variants* which differ in coding format, quality, block lengths
// and localisation (which server stores them) — paper Sec. 2.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "media/qos.hpp"
#include "media/types.hpp"
#include "util/money.hpp"

namespace qosnp {

using DocumentId = std::string;
using MonomediaId = std::string;
using VariantId = std::string;
using ServerId = std::string;

/// A physical representation of a monomedia object. Copies on different
/// servers are distinct variants (paper: "Copies of the same file are
/// considered also as variants").
struct Variant {
  VariantId id;
  CodingFormat format = CodingFormat::kMPEG1;
  MonomediaQoS qos;  ///< quality this variant delivers when played natively

  /// Block lengths as stored in the MM database (paper Sec. 6): a block is
  /// a video frame, an audio sample block, or the whole object for
  /// discrete media.
  std::int64_t avg_block_bytes = 0;
  std::int64_t max_block_bytes = 0;
  /// Blocks delivered per second during playout. Equals the frame rate for
  /// video; the sample-block rate for audio; 0 for discrete media (text and
  /// images are delivered once, paced by the time profile).
  double blocks_per_second = 0.0;

  std::int64_t file_bytes = 0;  ///< total stored size
  ServerId server;              ///< localisation of the file

  MediaKind kind() const { return media_kind_of(qos); }
  std::string describe() const;
};

/// One logical monomedia object of a document together with its variants.
struct Monomedia {
  MonomediaId id;
  MediaKind kind = MediaKind::kVideo;
  std::string name;
  double duration_s = 0.0;  ///< playout duration; 0 for discrete media
  std::vector<Variant> variants;

  const Variant* find_variant(const VariantId& vid) const;
};

/// Temporal synchronisation attribute between two monomedia (Fig. 1
/// "temporal synchronization constraints").
struct TemporalRelation {
  enum class Type { kParallel, kSequential, kOverlap };
  MonomediaId first;
  MonomediaId second;
  Type type = Type::kParallel;
  double offset_s = 0.0;  ///< start offset of `second` relative to `first`
};

/// Spatial layout attribute: where a visual monomedia is rendered
/// (Fig. 1 "spatial synchronization constraints").
struct SpatialRegion {
  MonomediaId monomedia;
  int x = 0;
  int y = 0;
  int width = 0;
  int height = 0;
};

struct SyncSpec {
  std::vector<TemporalRelation> temporal;
  std::vector<SpatialRegion> spatial;
};

/// A multimedia (or monomedia, when it aggregates exactly one object)
/// document, e.g. a news article.
struct MultimediaDocument {
  DocumentId id;
  std::string title;
  Money copyright_cost;  ///< CostCop of the cost formula (Sec. 7)
  std::vector<Monomedia> monomedia;
  SyncSpec sync;

  bool is_multimedia() const { return monomedia.size() > 1; }
  /// Total playout duration: the longest continuous component.
  double duration_s() const;
  const Monomedia* find_monomedia(const MonomediaId& mid) const;
  /// Bounding box of the spatial layout (0x0 when no layout given).
  std::pair<int, int> layout_extent() const;
};

/// Structural validation: every variant's medium matches its monomedia's
/// kind, sync constraints refer to existing monomedia, block lengths are
/// consistent (avg <= max), continuous media have a positive block rate.
/// Returns a human-readable problem list (empty when valid).
std::vector<std::string> validate(const MultimediaDocument& doc);

}  // namespace qosnp
