#include "document/corpus.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <sstream>

namespace qosnp {

namespace {

// Uncompressed bits per pixel at each colour depth.
double bits_per_pixel(ColorDepth color) {
  switch (color) {
    case ColorDepth::kBlackWhite: return 1.0;
    case ColorDepth::kGray: return 8.0;
    case ColorDepth::kColor: return 16.0;
    case ColorDepth::kSuperColor: return 24.0;
  }
  return 16.0;
}

// Average compression ratio of each video coding format (raw/compressed),
// and the peak-to-average burst factor (an I-frame versus the long-run
// average in an MPEG group of pictures; MJPEG is intra-only so nearly flat).
struct VideoCodec {
  double avg_ratio;
  double burst;
};

VideoCodec video_codec(CodingFormat format) {
  switch (format) {
    case CodingFormat::kMPEG1: return {40.0, 3.0};
    case CodingFormat::kMPEG2: return {45.0, 3.0};
    case CodingFormat::kMJPEG: return {15.0, 1.3};
    case CodingFormat::kH261: return {50.0, 2.0};
    default: return {30.0, 2.0};
  }
}

// Audio compression factor relative to PCM.
double audio_ratio(CodingFormat format) {
  switch (format) {
    case CodingFormat::kPCM: return 1.0;
    case CodingFormat::kADPCM: return 2.0;
    case CodingFormat::kMPEGAudio: return 4.0;
    default: return 1.0;
  }
}

// 4:3 picture: lines = 3/4 of the pixels-per-line resolution figure.
double pixels_per_frame(int resolution) {
  return static_cast<double>(resolution) * (static_cast<double>(resolution) * 0.75);
}

constexpr double kAudioBlockSeconds = 0.020;  // 20 ms audio blocks
constexpr double kAudioBlocksPerSecond = 1.0 / kAudioBlockSeconds;

}  // namespace

std::int64_t video_avg_frame_bytes(const VideoQoS& qos, CodingFormat format) {
  const VideoCodec codec = video_codec(format);
  const double raw_bits = pixels_per_frame(qos.resolution) * bits_per_pixel(qos.color);
  const double bytes = raw_bits / 8.0 / codec.avg_ratio;
  return std::max<std::int64_t>(1, static_cast<std::int64_t>(std::llround(bytes)));
}

std::int64_t video_max_frame_bytes(const VideoQoS& qos, CodingFormat format) {
  const VideoCodec codec = video_codec(format);
  return std::max<std::int64_t>(
      video_avg_frame_bytes(qos, format),
      static_cast<std::int64_t>(
          std::llround(static_cast<double>(video_avg_frame_bytes(qos, format)) * codec.burst)));
}

std::int64_t audio_block_bytes(AudioQuality quality, CodingFormat format) {
  const double channels = quality == AudioQuality::kCD ? 2.0 : 1.0;
  const double raw = sample_rate_hz(quality) * bits_per_sample(quality) / 8.0 * channels *
                     kAudioBlockSeconds;
  return std::max<std::int64_t>(1, static_cast<std::int64_t>(std::llround(raw / audio_ratio(format))));
}

Variant make_video_variant(VariantId id, const VideoQoS& qos, CodingFormat format,
                           double duration_s, ServerId server) {
  Variant v;
  v.id = std::move(id);
  v.format = format;
  v.qos = qos;
  v.avg_block_bytes = video_avg_frame_bytes(qos, format);
  v.max_block_bytes = video_max_frame_bytes(qos, format);
  v.blocks_per_second = static_cast<double>(qos.frame_rate_fps);
  v.file_bytes = static_cast<std::int64_t>(
      std::llround(static_cast<double>(v.avg_block_bytes) * v.blocks_per_second * duration_s));
  v.server = std::move(server);
  return v;
}

Variant make_audio_variant(VariantId id, AudioQuality quality, CodingFormat format,
                           double duration_s, ServerId server) {
  Variant v;
  v.id = std::move(id);
  v.format = format;
  v.qos = AudioQoS{quality};
  v.avg_block_bytes = audio_block_bytes(quality, format);
  // VBR audio coders vary mildly around the mean.
  v.max_block_bytes = static_cast<std::int64_t>(
      std::llround(static_cast<double>(v.avg_block_bytes) * 1.2));
  v.blocks_per_second = kAudioBlocksPerSecond;
  v.file_bytes = static_cast<std::int64_t>(
      std::llround(static_cast<double>(v.avg_block_bytes) * v.blocks_per_second * duration_s));
  v.server = std::move(server);
  return v;
}

Variant make_text_variant(VariantId id, Language language, CodingFormat format,
                          std::int64_t bytes, ServerId server) {
  Variant v;
  v.id = std::move(id);
  v.format = format;
  v.qos = TextQoS{language};
  v.avg_block_bytes = bytes;
  v.max_block_bytes = bytes;
  v.blocks_per_second = 0.0;  // discrete: delivered once
  v.file_bytes = bytes;
  v.server = std::move(server);
  return v;
}

Variant make_image_variant(VariantId id, const ImageQoS& qos, CodingFormat format,
                           ServerId server) {
  Variant v;
  v.id = std::move(id);
  v.format = format;
  v.qos = qos;
  const double raw_bits = pixels_per_frame(qos.resolution) * bits_per_pixel(qos.color);
  const double ratio = format == CodingFormat::kJPEG ? 12.0 : (format == CodingFormat::kGIF ? 4.0 : 1.5);
  const std::int64_t bytes =
      std::max<std::int64_t>(1, static_cast<std::int64_t>(std::llround(raw_bits / 8.0 / ratio)));
  v.avg_block_bytes = bytes;
  v.max_block_bytes = bytes;
  v.blocks_per_second = 0.0;
  v.file_bytes = bytes;
  v.server = std::move(server);
  return v;
}

namespace {

ServerId pick_server(const CorpusConfig& config, Rng& rng) {
  if (config.servers.empty()) return "server-a";
  return config.servers[rng.below(config.servers.size())];
}

ServerId other_server(const CorpusConfig& config, const ServerId& not_this, Rng& rng) {
  if (config.servers.size() < 2) return not_this;
  for (int attempt = 0; attempt < 8; ++attempt) {
    ServerId s = pick_server(config, rng);
    if (s != not_this) return s;
  }
  return not_this;
}

// Quality ladders the generator samples from.
constexpr std::array<ColorDepth, 4> kColors = {ColorDepth::kBlackWhite, ColorDepth::kGray,
                                               ColorDepth::kColor, ColorDepth::kSuperColor};
constexpr std::array<int, 4> kFrameRates = {10, 15, 25, 30};
constexpr std::array<int, 3> kResolutions = {320, kTvResolution, 1280};
constexpr std::array<CodingFormat, 3> kVideoFormats = {CodingFormat::kMPEG1, CodingFormat::kMPEG2,
                                                       CodingFormat::kMJPEG};
constexpr std::array<AudioQuality, 3> kAudioQualities = {
    AudioQuality::kTelephone, AudioQuality::kRadio, AudioQuality::kCD};
constexpr std::array<CodingFormat, 3> kAudioFormats = {CodingFormat::kPCM, CodingFormat::kADPCM,
                                                       CodingFormat::kMPEGAudio};

}  // namespace

MultimediaDocument generate_article(const CorpusConfig& config, int index, Rng& rng) {
  MultimediaDocument doc;
  {
    std::ostringstream os;
    os << "article-" << index;
    doc.id = os.str();
  }
  doc.title = "News article #" + std::to_string(index);
  const std::int64_t copy_range =
      config.max_copyright.as_micros() - config.min_copyright.as_micros();
  doc.copyright_cost = Money::micros(config.min_copyright.as_micros() +
                                     (copy_range > 0
                                          ? static_cast<std::int64_t>(
                                                rng.below(static_cast<std::uint64_t>(copy_range)))
                                          : 0));
  const double duration = rng.uniform(config.min_duration_s, config.max_duration_s);

  // Video monomedia: a ladder of distinct (colour, rate, resolution, format)
  // combinations, optionally replicated to a second server.
  Monomedia video;
  video.id = doc.id + "/video";
  video.kind = MediaKind::kVideo;
  video.name = "main video";
  video.duration_s = duration;
  const int nvideo = static_cast<int>(
      rng.between(config.min_video_variants, std::max(config.min_video_variants,
                                                      config.max_video_variants)));
  for (int i = 0; i < nvideo; ++i) {
    VideoQoS qos;
    qos.color = kColors[rng.below(kColors.size())];
    qos.frame_rate_fps = kFrameRates[rng.below(kFrameRates.size())];
    qos.resolution = kResolutions[rng.below(kResolutions.size())];
    const CodingFormat format = kVideoFormats[rng.below(kVideoFormats.size())];
    const ServerId server = pick_server(config, rng);
    video.variants.push_back(make_video_variant(video.id + "/v" + std::to_string(i), qos, format,
                                                duration, server));
    if (rng.chance(config.replication_probability)) {
      video.variants.push_back(make_video_variant(video.id + "/v" + std::to_string(i) + "r", qos,
                                                  format, duration,
                                                  other_server(config, server, rng)));
    }
  }
  doc.monomedia.push_back(std::move(video));

  if (rng.chance(config.audio_probability)) {
    Monomedia audio;
    audio.id = doc.id + "/audio";
    audio.kind = MediaKind::kAudio;
    audio.name = "soundtrack";
    audio.duration_s = duration;
    const int naudio = static_cast<int>(
        rng.between(config.min_audio_variants, std::max(config.min_audio_variants,
                                                        config.max_audio_variants)));
    for (int i = 0; i < naudio; ++i) {
      const AudioQuality q = kAudioQualities[rng.below(kAudioQualities.size())];
      const CodingFormat f = kAudioFormats[rng.below(kAudioFormats.size())];
      audio.variants.push_back(make_audio_variant(audio.id + "/v" + std::to_string(i), q, f,
                                                  duration, pick_server(config, rng)));
    }
    doc.monomedia.push_back(std::move(audio));
    doc.sync.temporal.push_back(TemporalRelation{doc.id + "/video", doc.id + "/audio",
                                                 TemporalRelation::Type::kParallel, 0.0});
  }

  if (rng.chance(config.text_probability)) {
    Monomedia text;
    text.id = doc.id + "/text";
    text.kind = MediaKind::kText;
    text.name = "article text";
    text.duration_s = 0.0;
    const std::int64_t bytes = rng.between(2'000, 20'000);
    text.variants.push_back(make_text_variant(text.id + "/en", Language::kEnglish,
                                              CodingFormat::kPlainText, bytes,
                                              pick_server(config, rng)));
    if (rng.chance(config.second_language_probability)) {
      text.variants.push_back(make_text_variant(text.id + "/fr", Language::kFrench,
                                                CodingFormat::kPlainText, bytes,
                                                pick_server(config, rng)));
    }
    doc.monomedia.push_back(std::move(text));
  }

  if (rng.chance(config.image_probability)) {
    Monomedia image;
    image.id = doc.id + "/image";
    image.kind = MediaKind::kImage;
    image.name = "headline photo";
    image.duration_s = 0.0;
    const std::array<CodingFormat, 2> formats = {CodingFormat::kJPEG, CodingFormat::kGIF};
    const int nimg = static_cast<int>(rng.between(1, 2));
    for (int i = 0; i < nimg; ++i) {
      ImageQoS qos;
      qos.color = kColors[rng.below(kColors.size())];
      qos.resolution = kResolutions[rng.below(kResolutions.size())];
      image.variants.push_back(make_image_variant(image.id + "/v" + std::to_string(i), qos,
                                                  formats[rng.below(formats.size())],
                                                  pick_server(config, rng)));
    }
    doc.monomedia.push_back(std::move(image));
  }

  // Simple spatial layout: video top-left, image to its right, text below.
  int cursor_y = 0;
  for (const Monomedia& m : doc.monomedia) {
    if (m.kind == MediaKind::kVideo) {
      doc.sync.spatial.push_back(SpatialRegion{m.id, 0, 0, kTvResolution, kTvResolution * 3 / 4});
      cursor_y = std::max(cursor_y, kTvResolution * 3 / 4);
    } else if (m.kind == MediaKind::kImage) {
      doc.sync.spatial.push_back(SpatialRegion{m.id, kTvResolution, 0, 320, 240});
      cursor_y = std::max(cursor_y, 240);
    } else if (m.kind == MediaKind::kText) {
      doc.sync.spatial.push_back(SpatialRegion{m.id, 0, cursor_y, kTvResolution + 320, 200});
    }
  }
  return doc;
}

std::vector<MultimediaDocument> generate_corpus(const CorpusConfig& config) {
  Rng rng(config.seed);
  std::vector<MultimediaDocument> docs;
  docs.reserve(static_cast<std::size_t>(config.num_documents));
  for (int i = 0; i < config.num_documents; ++i) {
    docs.push_back(generate_article(config, i, rng));
  }
  return docs;
}

}  // namespace qosnp
