// Synthetic news-on-demand corpus generator: the stand-in for the CITR
// prototype's real article database. Produces multimedia news articles with
// realistic variant ladders (colour / frame-rate / resolution / format /
// replica-server combinations) and block-length metadata consistent with the
// QoS each variant delivers, so the Sec. 6 mapping yields plausible bitrates.
#pragma once

#include <cstdint>
#include <vector>

#include "document/model.hpp"
#include "util/money.hpp"
#include "util/rng.hpp"

namespace qosnp {

struct CorpusConfig {
  int num_documents = 50;

  /// Variant-ladder sizes per monomedia (inclusive ranges).
  int min_video_variants = 2;
  int max_video_variants = 6;
  int min_audio_variants = 1;
  int max_audio_variants = 3;

  /// Probability an article carries each optional monomedia.
  double audio_probability = 0.95;
  double text_probability = 0.9;
  double image_probability = 0.6;
  double second_language_probability = 0.5;

  /// Continuous-media duration range (seconds).
  double min_duration_s = 60.0;
  double max_duration_s = 480.0;

  /// Servers variants can live on; a variant is replicated onto a second
  /// server with `replication_probability` (replicas are distinct variants,
  /// per the paper).
  std::vector<ServerId> servers{"server-a", "server-b"};
  double replication_probability = 0.25;

  Money min_copyright = Money::cents(25);
  Money max_copyright = Money::dollars(2);

  std::uint64_t seed = 42;
};

/// Average stored bytes of one video frame for the given quality and coding
/// format (compression model documented in corpus.cpp).
std::int64_t video_avg_frame_bytes(const VideoQoS& qos, CodingFormat format);
/// Peak (I-frame) bytes of one video frame.
std::int64_t video_max_frame_bytes(const VideoQoS& qos, CodingFormat format);
/// Bytes of one 20 ms audio block for the given quality and format.
std::int64_t audio_block_bytes(AudioQuality quality, CodingFormat format);

/// Build a single video variant with consistent block metadata.
Variant make_video_variant(VariantId id, const VideoQoS& qos, CodingFormat format,
                           double duration_s, ServerId server);
/// Build a single audio variant with consistent block metadata.
Variant make_audio_variant(VariantId id, AudioQuality quality, CodingFormat format,
                           double duration_s, ServerId server);
/// Build a text variant (discrete medium).
Variant make_text_variant(VariantId id, Language language, CodingFormat format,
                          std::int64_t bytes, ServerId server);
/// Build a still-image variant (discrete medium).
Variant make_image_variant(VariantId id, const ImageQoS& qos, CodingFormat format,
                           ServerId server);

/// Generate a full synthetic corpus.
std::vector<MultimediaDocument> generate_corpus(const CorpusConfig& config);

/// Generate a single news article (exposed for tests and examples).
MultimediaDocument generate_article(const CorpusConfig& config, int index, Rng& rng);

}  // namespace qosnp
