#include "document/serialize.hpp"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/strings.hpp"

namespace qosnp {

namespace {

std::string qos_fields(const MonomediaQoS& qos) {
  return std::visit(
      [](const auto& q) -> std::string {
        using T = std::decay_t<decltype(q)>;
        std::ostringstream os;
        if constexpr (std::is_same_v<T, VideoQoS>) {
          os << to_string(q.color) << ' ' << q.frame_rate_fps << ' ' << q.resolution;
        } else if constexpr (std::is_same_v<T, AudioQoS>) {
          os << to_string(q.quality);
        } else if constexpr (std::is_same_v<T, TextQoS>) {
          os << to_string(q.language);
        } else {
          os << to_string(q.color) << ' ' << q.resolution;
        }
        return os.str();
      },
      qos);
}

bool parse_qos_fields(MediaKind kind, const std::string& text, MonomediaQoS& out) {
  std::vector<std::string> fields;
  for (const auto& f : split(text, ' ')) {
    if (!trim(f).empty()) fields.emplace_back(trim(f));
  }
  switch (kind) {
    case MediaKind::kVideo: {
      if (fields.size() != 3) return false;
      const auto color = parse_color_depth(fields[0]);
      if (!color) return false;
      VideoQoS q;
      q.color = *color;
      q.frame_rate_fps = std::atoi(fields[1].c_str());
      q.resolution = std::atoi(fields[2].c_str());
      out = q;
      return q.frame_rate_fps > 0 && q.resolution > 0;
    }
    case MediaKind::kAudio: {
      if (fields.size() != 1) return false;
      const auto quality = parse_audio_quality(fields[0]);
      if (!quality) return false;
      out = AudioQoS{*quality};
      return true;
    }
    case MediaKind::kText: {
      if (fields.size() != 1) return false;
      const auto language = parse_language(fields[0]);
      if (!language) return false;
      out = TextQoS{*language};
      return true;
    }
    case MediaKind::kImage: {
      if (fields.size() != 2) return false;
      const auto color = parse_color_depth(fields[0]);
      if (!color) return false;
      ImageQoS q;
      q.color = *color;
      q.resolution = std::atoi(fields[1].c_str());
      out = q;
      return q.resolution > 0;
    }
  }
  return false;
}

std::vector<std::string> pipe_fields(const std::string& value) {
  std::vector<std::string> out;
  for (const auto& f : split(value, '|')) out.emplace_back(trim(f));
  return out;
}

std::string_view relation_name(TemporalRelation::Type type) {
  switch (type) {
    case TemporalRelation::Type::kParallel: return "parallel";
    case TemporalRelation::Type::kSequential: return "sequential";
    case TemporalRelation::Type::kOverlap: return "overlap";
  }
  return "?";
}

std::optional<TemporalRelation::Type> parse_relation(std::string_view text) {
  if (iequals(text, "parallel")) return TemporalRelation::Type::kParallel;
  if (iequals(text, "sequential")) return TemporalRelation::Type::kSequential;
  if (iequals(text, "overlap")) return TemporalRelation::Type::kOverlap;
  return std::nullopt;
}

}  // namespace

std::string to_text(const MultimediaDocument& doc) {
  std::ostringstream os;
  os << "document = " << doc.id << '\n';
  if (!doc.title.empty()) os << "title = " << doc.title << '\n';
  os << "copyright = " << doc.copyright_cost.to_string() << '\n';
  for (const Monomedia& m : doc.monomedia) {
    os << "monomedia = " << m.id << " | " << to_string(m.kind) << " | " << m.name << " | "
       << format_double(m.duration_s, 3) << '\n';
    for (const Variant& v : m.variants) {
      os << "variant = " << v.id << " | " << to_string(v.format) << " | " << v.server << " | "
         << v.avg_block_bytes << " | " << v.max_block_bytes << " | "
         << format_double(v.blocks_per_second, 3) << " | " << v.file_bytes << " | "
         << qos_fields(v.qos) << '\n';
    }
  }
  for (const TemporalRelation& t : doc.sync.temporal) {
    os << "temporal = " << t.first << " | " << t.second << " | " << relation_name(t.type)
       << " | " << format_double(t.offset_s, 3) << '\n';
  }
  for (const SpatialRegion& r : doc.sync.spatial) {
    os << "spatial = " << r.monomedia << " | " << r.x << ' ' << r.y << ' ' << r.width << ' '
       << r.height << '\n';
  }
  return os.str();
}

Result<std::vector<MultimediaDocument>> parse_documents(const std::string& text) {
  std::vector<MultimediaDocument> documents;
  MultimediaDocument current;
  bool open = false;

  auto fail = [](int line_no, const std::string& what) {
    return Err(std::string("line " + std::to_string(line_no) + ": " + what));
  };

  const auto lines = split(text, '\n');
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const int line_no = static_cast<int>(i) + 1;
    const auto line = trim(lines[i]);
    if (line.empty() || line.front() == '#') continue;
    std::string key;
    std::string value;
    if (!parse_key_value(line, key, value)) return fail(line_no, "expected 'key = value'");

    if (key == "document") {
      if (open) documents.push_back(std::move(current));
      current = MultimediaDocument{};
      current.id = value;
      open = true;
      continue;
    }
    if (!open) return fail(line_no, "key before any 'document =' line");

    if (key == "title") {
      current.title = value;
    } else if (key == "copyright") {
      current.copyright_cost = Money::parse(value);
    } else if (key == "monomedia") {
      const auto fields = pipe_fields(value);
      if (fields.size() != 4) return fail(line_no, "monomedia needs 4 '|' fields");
      const auto kind = parse_media_kind(fields[1]);
      if (!kind) return fail(line_no, "bad media kind '" + fields[1] + "'");
      Monomedia m;
      m.id = fields[0];
      m.kind = *kind;
      m.name = fields[2];
      m.duration_s = std::atof(fields[3].c_str());
      current.monomedia.push_back(std::move(m));
    } else if (key == "variant") {
      if (current.monomedia.empty()) return fail(line_no, "variant before any monomedia");
      const auto fields = pipe_fields(value);
      if (fields.size() != 8) return fail(line_no, "variant needs 8 '|' fields");
      Variant v;
      v.id = fields[0];
      const auto format = parse_coding_format(fields[1]);
      if (!format) return fail(line_no, "bad coding format '" + fields[1] + "'");
      v.format = *format;
      v.server = fields[2];
      v.avg_block_bytes = std::atoll(fields[3].c_str());
      v.max_block_bytes = std::atoll(fields[4].c_str());
      v.blocks_per_second = std::atof(fields[5].c_str());
      v.file_bytes = std::atoll(fields[6].c_str());
      if (!parse_qos_fields(current.monomedia.back().kind, fields[7], v.qos)) {
        return fail(line_no, "bad QoS fields '" + fields[7] + "'");
      }
      current.monomedia.back().variants.push_back(std::move(v));
    } else if (key == "temporal") {
      const auto fields = pipe_fields(value);
      if (fields.size() != 4) return fail(line_no, "temporal needs 4 '|' fields");
      const auto type = parse_relation(fields[2]);
      if (!type) return fail(line_no, "bad temporal relation '" + fields[2] + "'");
      current.sync.temporal.push_back(
          TemporalRelation{fields[0], fields[1], *type, std::atof(fields[3].c_str())});
    } else if (key == "spatial") {
      const auto fields = pipe_fields(value);
      if (fields.size() != 2) return fail(line_no, "spatial needs 2 '|' fields");
      std::vector<std::string> nums;
      for (const auto& n : split(fields[1], ' ')) {
        if (!trim(n).empty()) nums.emplace_back(trim(n));
      }
      if (nums.size() != 4) return fail(line_no, "spatial region needs 'x y w h'");
      current.sync.spatial.push_back(SpatialRegion{fields[0], std::atoi(nums[0].c_str()),
                                                   std::atoi(nums[1].c_str()),
                                                   std::atoi(nums[2].c_str()),
                                                   std::atoi(nums[3].c_str())});
    } else {
      return fail(line_no, "unknown key '" + key + "'");
    }
  }
  if (open) documents.push_back(std::move(current));
  return documents;
}

Result<bool> save_catalog(const Catalog& catalog, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Err("cannot open '" + path + "' for writing");
  out << "# qosnp catalog (" << catalog.size() << " documents)\n";
  for (const DocumentId& id : catalog.list()) {
    auto doc = catalog.find(id);
    if (doc) out << '\n' << to_text(*doc);
  }
  return true;
}

Result<std::size_t> load_catalog(Catalog& catalog, const std::string& path) {
  std::ifstream in(path);
  if (!in) return Err("cannot open '" + path + "' for reading");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  auto parsed = parse_documents(buffer.str());
  if (!parsed.ok()) return Err(parsed.error());
  std::size_t loaded = 0;
  for (MultimediaDocument& doc : parsed.value()) {
    const DocumentId id = doc.id;
    const auto problems = catalog.add(std::move(doc));
    if (!problems.empty()) {
      return Err("document '" + id + "': " + problems.front());
    }
    ++loaded;
  }
  return loaded;
}

}  // namespace qosnp
