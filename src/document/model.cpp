#include "document/model.hpp"

#include <algorithm>
#include <sstream>

namespace qosnp {

std::string Variant::describe() const {
  std::ostringstream os;
  os << id << " [" << qosnp::to_string(format) << "] " << qosnp::to_string(qos) << " @" << server;
  return os.str();
}

const Variant* Monomedia::find_variant(const VariantId& vid) const {
  for (const Variant& v : variants) {
    if (v.id == vid) return &v;
  }
  return nullptr;
}

double MultimediaDocument::duration_s() const {
  double d = 0.0;
  for (const Monomedia& m : monomedia) d = std::max(d, m.duration_s);
  return d;
}

const Monomedia* MultimediaDocument::find_monomedia(const MonomediaId& mid) const {
  for (const Monomedia& m : monomedia) {
    if (m.id == mid) return &m;
  }
  return nullptr;
}

std::pair<int, int> MultimediaDocument::layout_extent() const {
  int w = 0;
  int h = 0;
  for (const SpatialRegion& r : sync.spatial) {
    w = std::max(w, r.x + r.width);
    h = std::max(h, r.y + r.height);
  }
  return {w, h};
}

std::vector<std::string> validate(const MultimediaDocument& doc) {
  std::vector<std::string> problems;
  auto complain = [&](const std::string& what) { problems.push_back(what); };

  if (doc.monomedia.empty()) complain("document '" + doc.id + "' has no monomedia");
  for (const Monomedia& m : doc.monomedia) {
    if (m.variants.empty()) complain("monomedia '" + m.id + "' has no variants");
    const bool continuous = m.kind == MediaKind::kVideo || m.kind == MediaKind::kAudio;
    if (continuous && m.duration_s <= 0.0) {
      complain("continuous monomedia '" + m.id + "' has non-positive duration");
    }
    for (const Variant& v : m.variants) {
      if (v.kind() != m.kind) {
        complain("variant '" + v.id + "' medium does not match monomedia '" + m.id + "'");
      }
      if (media_kind_of(v.format) != m.kind) {
        complain("variant '" + v.id + "' coding format does not match monomedia '" + m.id + "'");
      }
      if (v.avg_block_bytes > v.max_block_bytes) {
        complain("variant '" + v.id + "' avg block length exceeds max block length");
      }
      if (v.avg_block_bytes <= 0) complain("variant '" + v.id + "' has non-positive block length");
      if (continuous && v.blocks_per_second <= 0.0) {
        complain("continuous variant '" + v.id + "' has non-positive block rate");
      }
      if (v.server.empty()) complain("variant '" + v.id + "' has no server localisation");
    }
  }

  auto known = [&](const MonomediaId& mid) { return doc.find_monomedia(mid) != nullptr; };
  for (const TemporalRelation& t : doc.sync.temporal) {
    if (!known(t.first) || !known(t.second)) {
      complain("temporal relation references unknown monomedia ('" + t.first + "', '" + t.second +
               "')");
    }
  }
  for (const SpatialRegion& r : doc.sync.spatial) {
    if (!known(r.monomedia)) {
      complain("spatial region references unknown monomedia '" + r.monomedia + "'");
    }
    if (r.width <= 0 || r.height <= 0) {
      complain("spatial region for '" + r.monomedia + "' has non-positive extent");
    }
  }
  return problems;
}

}  // namespace qosnp
