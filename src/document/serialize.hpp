// Text (de)serialisation of multimedia documents — the exchange format of
// the catalog (the prototype's MM database [Vit 95] exported exactly this
// metadata: monomedia, variants with block lengths and localisation, and
// synchronisation attributes). Line-oriented "key = fields|..." records so
// catalogs can be shipped as plain files and edited by hand.
//
//   document = article-0
//   title = News article #0
//   copyright = $0.75
//   monomedia = article-0/video | video | main video | 240
//   variant = article-0/video/v0 | MPEG-1 | server-a | 15360 | 46080 | 25 | 92160000 | color 25 640
//   temporal = article-0/video | article-0/audio | parallel | 0
//   spatial = article-0/video | 0 0 640 480
#pragma once

#include <string>
#include <vector>

#include "document/catalog.hpp"
#include "document/model.hpp"
#include "util/result.hpp"

namespace qosnp {

/// Render one document (round-trips through parse_documents).
std::string to_text(const MultimediaDocument& document);

/// Parse one or more documents. Each starts with a "document = <id>" line.
Result<std::vector<MultimediaDocument>> parse_documents(const std::string& text);

/// Write every catalog document to a file.
Result<bool> save_catalog(const Catalog& catalog, const std::string& path);

/// Load documents from a file into the catalog (replacing same-id entries).
/// Returns the number of documents loaded; fails on parse or validation
/// errors (nothing is partially loaded on a parse error).
Result<std::size_t> load_catalog(Catalog& catalog, const std::string& path);

}  // namespace qosnp
