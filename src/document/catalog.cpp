#include "document/catalog.hpp"

#include <algorithm>
#include <mutex>
#include <shared_mutex>

namespace qosnp {

std::vector<std::string> Catalog::add(MultimediaDocument doc) {
  std::vector<std::string> problems = validate(doc);
  if (!problems.empty()) return problems;
  auto ptr = std::make_shared<const MultimediaDocument>(std::move(doc));
  const DocumentId id = ptr->id;
  std::unique_lock lk(mu_);
  docs_[id] = Entry{std::move(ptr), ++epoch_};
  return {};
}

bool Catalog::remove(const DocumentId& id) {
  std::unique_lock lk(mu_);
  if (docs_.erase(id) == 0) return false;
  ++epoch_;
  return true;
}

std::shared_ptr<const MultimediaDocument> Catalog::find(const DocumentId& id) const {
  std::shared_lock lk(mu_);
  auto it = docs_.find(id);
  return it == docs_.end() ? nullptr : it->second.document;
}

Catalog::Entry Catalog::find_entry(const DocumentId& id) const {
  std::shared_lock lk(mu_);
  auto it = docs_.find(id);
  return it == docs_.end() ? Entry{} : it->second;
}

std::uint64_t Catalog::epoch() const {
  std::shared_lock lk(mu_);
  return epoch_;
}

std::uint64_t Catalog::epoch_of(const DocumentId& id) const {
  std::shared_lock lk(mu_);
  auto it = docs_.find(id);
  return it == docs_.end() ? 0 : it->second.epoch;
}

std::vector<DocumentId> Catalog::list() const {
  std::shared_lock lk(mu_);
  std::vector<DocumentId> ids;
  ids.reserve(docs_.size());
  for (const auto& [id, _] : docs_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

std::size_t Catalog::size() const {
  std::shared_lock lk(mu_);
  return docs_.size();
}

std::vector<VariantId> Catalog::variants_on_server(const ServerId& server) const {
  std::shared_lock lk(mu_);
  std::vector<VariantId> out;
  for (const auto& [_, entry] : docs_) {
    const auto& doc = entry.document;
    for (const Monomedia& m : doc->monomedia) {
      for (const Variant& v : m.variants) {
        if (v.server == server) out.push_back(v.id);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace qosnp
