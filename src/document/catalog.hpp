// Catalog: the metadata service the 1996 prototype obtained from the
// U. Alberta multimedia DBMS [Vit 95]. The negotiation procedure consults it
// for the variants (and their block lengths / localisation) of every
// monomedia of the requested document. Thread-safe: the simulator negotiates
// many sessions concurrently against one catalog.
#pragma once

#include <memory>
#include <optional>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "document/model.hpp"

namespace qosnp {

class Catalog {
 public:
  Catalog() = default;

  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// Insert (or replace) a document. Returns the validation problem list;
  /// an invalid document is rejected and not stored.
  std::vector<std::string> add(MultimediaDocument doc);

  /// Remove a document; returns false when it was absent.
  bool remove(const DocumentId& id);

  /// Look up a document (nullptr when absent). The returned pointer stays
  /// valid until the document is removed/replaced.
  std::shared_ptr<const MultimediaDocument> find(const DocumentId& id) const;

  std::vector<DocumentId> list() const;
  std::size_t size() const;

  /// All variants of the whole catalog stored on a given server; used by
  /// server provisioning and the failure-injection experiments.
  std::vector<VariantId> variants_on_server(const ServerId& server) const;

 private:
  mutable std::shared_mutex mu_;
  std::unordered_map<DocumentId, std::shared_ptr<const MultimediaDocument>> docs_;
};

}  // namespace qosnp
