// Catalog: the metadata service the 1996 prototype obtained from the
// U. Alberta multimedia DBMS [Vit 95]. The negotiation procedure consults it
// for the variants (and their block lengths / localisation) of every
// monomedia of the requested document. Thread-safe: the simulator negotiates
// many sessions concurrently against one catalog.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "document/model.hpp"

namespace qosnp {

class Catalog {
 public:
  /// A stored document together with the catalog epoch it was stored at.
  /// Epochs are drawn from a catalog-wide monotonically increasing counter
  /// that advances on every successful add/remove, so an unchanged epoch for
  /// a document id implies the *same* stored document object — the
  /// invalidation check the negotiation plan cache relies on. epoch 0 means
  /// "absent" (the counter starts at 1).
  struct Entry {
    std::shared_ptr<const MultimediaDocument> document;
    std::uint64_t epoch = 0;
  };

  Catalog() = default;

  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// Insert (or replace) a document. Returns the validation problem list;
  /// an invalid document is rejected and not stored. A successful insert
  /// bumps the catalog epoch.
  std::vector<std::string> add(MultimediaDocument doc);

  /// Remove a document; returns false when it was absent. A successful
  /// remove bumps the catalog epoch.
  bool remove(const DocumentId& id);

  /// Look up a document (nullptr when absent). The returned pointer stays
  /// valid until the document is removed/replaced.
  std::shared_ptr<const MultimediaDocument> find(const DocumentId& id) const;

  /// Look up a document together with its storage epoch ({nullptr, 0} when
  /// absent) in one lock acquisition.
  Entry find_entry(const DocumentId& id) const;

  /// The catalog-wide epoch counter (0 before the first mutation).
  std::uint64_t epoch() const;
  /// The storage epoch of one document (0 when absent).
  std::uint64_t epoch_of(const DocumentId& id) const;

  std::vector<DocumentId> list() const;
  std::size_t size() const;

  /// All variants of the whole catalog stored on a given server; used by
  /// server provisioning and the failure-injection experiments.
  std::vector<VariantId> variants_on_server(const ServerId& server) const;

 private:
  mutable std::shared_mutex mu_;
  std::unordered_map<DocumentId, Entry> docs_;
  std::uint64_t epoch_ = 0;
};

}  // namespace qosnp
