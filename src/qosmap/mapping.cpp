#include "qosmap/mapping.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace qosnp {

std::string StreamRequirements::describe() const {
  std::ostringstream os;
  os << "max " << max_bit_rate_bps / 1000 << " kbit/s, avg " << avg_bit_rate_bps / 1000
     << " kbit/s, jitter " << jitter_ms << " ms, loss " << loss_rate << ", "
     << to_string(guarantee);
  return os.str();
}

MediumTargets medium_targets(MediaKind kind) {
  switch (kind) {
    case MediaKind::kVideo:
      // Values for video from [Ste 90] as quoted in the paper.
      return {10.0, 0.003, 250.0};
    case MediaKind::kAudio:
      return {5.0, 0.001, 150.0};
    case MediaKind::kText:
      return {0.0, 0.0, 1000.0};
    case MediaKind::kImage:
      return {0.0, 0.0, 1000.0};
  }
  return {0.0, 0.0, 1000.0};
}

StreamRequirements map_variant(const Variant& variant, double duration_s,
                               const TimeProfile& time) {
  StreamRequirements req;
  const MediaKind kind = variant.kind();
  const MediumTargets targets = medium_targets(kind);
  req.jitter_ms = targets.jitter_ms;
  req.loss_rate = targets.loss_rate;
  req.delay_ms = targets.delay_ms;

  const bool continuous = kind == MediaKind::kVideo || kind == MediaKind::kAudio;
  if (continuous) {
    req.max_bit_rate_bps = static_cast<std::int64_t>(
        std::llround(static_cast<double>(variant.max_block_bytes) * 8.0 *
                     variant.blocks_per_second));
    req.avg_bit_rate_bps = static_cast<std::int64_t>(
        std::llround(static_cast<double>(variant.avg_block_bytes) * 8.0 *
                     variant.blocks_per_second));
    req.guarantee = GuaranteeClass::kGuaranteed;
    req.duration_s = duration_s;
  } else {
    // Discrete media: the whole file within the delivery deadline.
    const double deadline = std::max(0.1, time.delivery_time_s);
    const std::int64_t rate = static_cast<std::int64_t>(
        std::llround(static_cast<double>(variant.file_bytes) * 8.0 / deadline));
    req.max_bit_rate_bps = std::max<std::int64_t>(1, rate);
    req.avg_bit_rate_bps = req.max_bit_rate_bps;
    req.guarantee = GuaranteeClass::kBestEffort;
    req.duration_s = deadline;
  }
  return req;
}

}  // namespace qosnp
