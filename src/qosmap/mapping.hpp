// QoS mapping (paper Sec. 6): translate the user-perceived QoS of a chosen
// variant into the system QoS parameters the transport system and media
// servers manage. For continuous media stored as a suite of blocks:
//   maxBitRate = (maximum block length) x (block rate)
//   avgBitRate = (average block length) x (block rate)
// Jitter and loss-rate targets are the per-medium constants of [Ste 90]
// cited by the paper (video: jitter 10 ms, loss rate 0.003). Discrete media
// (text, still images) are delivered once; their bandwidth requirement
// follows from the file size and the time profile's delivery deadline.
#pragma once

#include <cstdint>
#include <string>

#include "document/model.hpp"
#include "media/types.hpp"
#include "policy/session_class.hpp"
#include "profile/profiles.hpp"

namespace qosnp {

/// System-level QoS parameters of one stream (one monomedia variant).
struct StreamRequirements {
  std::int64_t max_bit_rate_bps = 0;
  std::int64_t avg_bit_rate_bps = 0;
  double jitter_ms = 0.0;    ///< tolerable delay jitter
  double loss_rate = 0.0;    ///< tolerable loss fraction
  double delay_ms = 0.0;     ///< end-to-end delay bound
  GuaranteeClass guarantee = GuaranteeClass::kGuaranteed;
  double duration_s = 0.0;   ///< how long the reservation is held
  /// Class of the session the stream belongs to, stamped by the resource
  /// committer at admission time (the variant mapping itself is class-blind).
  /// Servers and transport use it for headroom-differentiated admission.
  SessionClass session_class = SessionClass::kStandard;

  std::string describe() const;
};

/// Per-medium jitter/loss/delay targets ([Ste 90] as cited in Sec. 6).
struct MediumTargets {
  double jitter_ms;
  double loss_rate;
  double delay_ms;
};
MediumTargets medium_targets(MediaKind kind);

/// Map one variant to its stream requirements. `duration_s` is the playout
/// duration of the owning monomedia; `time` supplies the delivery deadline
/// for discrete media. Continuous media get a guaranteed service class;
/// discrete media are best-effort (a late headline photo is tolerable, a
/// stalled video is not).
StreamRequirements map_variant(const Variant& variant, double duration_s,
                               const TimeProfile& time);

}  // namespace qosnp
