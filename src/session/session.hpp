// Session management: Step 6 of the negotiation procedure (user
// confirmation within choicePeriod, resources de-allocated on timeout or
// rejection) and the adaptation procedure of paper Sec. 4 — on a QoS
// violation the QoS manager "considers the ordered set of system offers,
// except the current one (which is in difficulty), and executes Step 5",
// then transitions the playout: stop, note the current position, restart
// from that position on the alternate configuration.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "client/client_machine.hpp"
#include "core/qos_manager.hpp"
#include "profile/profiles.hpp"

namespace qosnp {

using SessionId = std::uint64_t;

enum class SessionState {
  kPendingConfirmation,  ///< resources reserved, awaiting the user (Step 6)
  kPlaying,
  kCompleted,
  kAborted,
};

std::string_view to_string(SessionState state);

/// Abort reason stamped by preempt_degrade when a victim could not be kept
/// on any worse offer; the population simulation keys its "preempted by
/// policy" (vs "adaptation failed") accounting off this exact string.
inline constexpr std::string_view kPreemptedAbortReason = "preempted by policy";

struct SessionStats {
  int transitions = 0;  ///< successful adaptations
  int failed_adaptations = 0;
  int renegotiations = 0;  ///< successful user-driven renegotiations
  int preempt_degrades = 0;    ///< times the policy forced a worse offer
  int upgrades = 0;            ///< times the upgrade scanner promoted this session
  double interrupted_s = 0.0;  ///< total playout interruption
  Money charged;               ///< cost of the currently committed offer
  CommitStats commit;          ///< commitment effort over the session's life
};

/// One delivery session (internal representation; move-only because it owns
/// the commitment).
struct Session {
  SessionId id = 0;
  ClientMachine client;
  UserProfile profile;
  SessionClass session_class = SessionClass::kStandard;
  OfferList offers;  ///< ordered; kept alive for adaptation
  std::size_t current_offer = SIZE_MAX;
  std::vector<std::size_t> tried;  ///< offer indices already used
  Commitment commitment;
  SessionState state = SessionState::kPendingConfirmation;
  double confirm_deadline_s = 0.0;
  double position_s = 0.0;  ///< current playout position
  double duration_s = 0.0;
  SessionStats stats;
  std::string abort_reason;

  const SystemOffer& committed() const { return offers.offers[current_offer]; }
};

/// Copyable snapshot exposed to callers.
struct SessionView {
  SessionId id = 0;
  SessionState state = SessionState::kAborted;
  SessionClass session_class = SessionClass::kStandard;
  std::size_t current_offer = SIZE_MAX;
  std::size_t offer_count = 0;
  double position_s = 0.0;
  double duration_s = 0.0;
  double confirm_deadline_s = 0.0;
  SessionStats stats;
  std::string abort_reason;
  std::optional<UserOffer> user_offer;
};

struct AdaptationPolicy {
  /// Make-before-break: reserve the alternate configuration before
  /// releasing the one in difficulty. The default (off) is the paper's
  /// literal stop-then-restart transition, which also frees the degraded
  /// link's capacity so a leaner variant can fit through it; on = the
  /// seamless variant, which can only adapt around (not through) an
  /// oversubscribed resource.
  bool make_before_break = false;
  /// Exclude every previously-tried offer, not just the current one (the
  /// paper excludes only the current offer).
  bool exclude_all_tried = false;
  /// Fixed transition cost added to the session's interruption time
  /// (stop + reposition + restart, paper's simple transition procedure).
  double transition_latency_s = 0.5;
};

struct AdaptationResult {
  bool adapted = false;
  std::size_t new_offer = SIZE_MAX;
  double interruption_s = 0.0;
  std::vector<std::string> errors;
};

/// Outcome of a user-driven renegotiation of a live session.
struct RenegotiationResult {
  bool switched = false;  ///< the session now plays the new configuration
  NegotiationStatus status = NegotiationStatus::kFailedTryLater;
  std::optional<UserOffer> offer;  ///< the configuration now playing (on success)
  std::vector<std::string> problems;
};

/// What preempt_degrade did to one victim. Exactly one of degraded/released
/// is true on any change; both false means the victim was left untouched
/// (make-before-break found no worse offer that fits alongside).
struct PreemptionVictimResult {
  bool degraded = false;  ///< moved to a strictly worse offer, still playing
  bool released = false;  ///< aborted with kPreemptedAbortReason
  std::size_t old_offer = SIZE_MAX;
  std::size_t new_offer = SIZE_MAX;  ///< degraded only; strictly > old_offer
  std::vector<std::string> errors;
};

/// Outcome of try_upgrade.
struct UpgradeResult {
  bool upgraded = false;
  std::size_t old_offer = SIZE_MAX;
  std::size_t new_offer = SIZE_MAX;  ///< upgraded only; strictly < old_offer
};

/// Snapshot row of playing_sessions_with_class — what the policy engine
/// needs to pick preemption victims and upgrade candidates.
struct PlayingSession {
  SessionId id = 0;
  SessionClass session_class = SessionClass::kStandard;
  std::size_t current_offer = SIZE_MAX;
};

class SessionManager {
 public:
  SessionManager(QoSManager& manager, AdaptationPolicy policy = {})
      : manager_(&manager), policy_(policy) {}

  /// Admit the result of a successful negotiation (SUCCEEDED, or
  /// FAILEDWITHOFFER when the user opts into the degraded offer). Moves the
  /// offers and commitment out of `result` (the scalar fields stay valid).
  /// The session starts pending confirmation with deadline now +
  /// choicePeriod.
  Result<SessionId> open(const ClientMachine& client, const UserProfile& profile,
                         NegotiationResult&& result, double now_s,
                         SessionClass session_class = SessionClass::kStandard);

  /// Step 6: the user accepts the offer. Fails (and releases resources)
  /// when the choice period already expired.
  Result<bool> confirm(SessionId id, double now_s);
  /// Step 6: the user rejects the offer; resources are de-allocated.
  bool reject(SessionId id);

  /// Advance playout position; completes the session at its duration.
  void advance(SessionId id, double dt_s);

  /// The adaptation procedure, triggered by a QoS violation on the
  /// session's current configuration. Aborts the session when no alternate
  /// configuration can be committed.
  AdaptationResult adapt(SessionId id, double now_s);

  /// User-driven renegotiation (paper Sec. 8: "the procedure can be used
  /// for negotiation, renegotiation, and adaptation with almost no
  /// modifications"): re-run the negotiation with a new profile against the
  /// session's document, and — if a configuration is committed —
  /// transition the playout to it from the current position. Uses
  /// make-before-break regardless of the adaptation policy: if nothing can
  /// be committed, the session keeps playing its current configuration.
  RenegotiationResult renegotiate(SessionId id, const UserProfile& new_profile, double now_s);

  /// Normal end / external abort.
  void complete(SessionId id);
  void abort(SessionId id, const std::string& reason);

  std::optional<SessionView> snapshot(SessionId id) const;
  std::size_t active_count() const;
  /// Lifetime accounting: sessions opened / finished (resources released)
  /// since construction. opened_total() == released_total() iff every
  /// session ever opened has reached a terminal state — the conservation law
  /// of the population lifecycle suite.
  std::size_t opened_total() const;
  std::size_t released_total() const;
  /// Drop finished (completed/aborted) sessions from the table, returning
  /// how many were erased; live sessions are untouched and the lifetime
  /// counters keep counting pruned sessions. Population-scale runs call this
  /// periodically so memory tracks the *live* population, not the total one.
  std::size_t prune_finished();
  /// Ids of sessions currently playing (sorted).
  std::vector<SessionId> playing_sessions() const;
  /// Playing sessions with their class and current offer index, sorted by
  /// id — the policy engine's candidate view for preemption and upgrade.
  std::vector<PlayingSession> playing_sessions_with_class() const;

  /// Policy-driven preemption of one playing victim: force it down its own
  /// offer list (Step 5 over the offers strictly worse than — i.e. indexed
  /// after — everything up to its current one). With `allow_release` the
  /// walk is break-before-make (the victim's resources free up first, which
  /// is the whole point of preempting); failure to re-commit aborts the
  /// victim with kPreemptedAbortReason. Without it the walk is
  /// make-before-break: the victim is degraded only when a worse offer fits
  /// *alongside* its current one, and is left untouched otherwise.
  PreemptionVictimResult preempt_degrade(SessionId id, bool allow_release,
                                         TraceContext trace = {});

  /// Policy-driven upgrade of one playing session: re-run Step 5 over the
  /// offers strictly better than its current one, make-before-break. On
  /// success the session plays the better offer; on failure it is untouched.
  UpgradeResult try_upgrade(SessionId id, TraceContext trace = {});

  /// Violation routing: which session holds a given transport flow.
  std::vector<SessionId> sessions_using_flow(FlowId flow) const;
  /// Which playing sessions hold streams on a given (possibly failed) server.
  std::vector<SessionId> sessions_on_server(const ServerId& server) const;

 private:
  void index_commitment_locked(Session& s);
  void unindex_commitment_locked(Session& s);
  void finish_locked(Session& s, SessionState state, const std::string& reason);

  mutable std::mutex mu_;
  QoSManager* manager_;
  AdaptationPolicy policy_;
  std::unordered_map<SessionId, std::unique_ptr<Session>> sessions_;
  std::unordered_map<FlowId, SessionId> flow_index_;
  SessionId next_id_ = 1;
  std::size_t opened_total_ = 0;    ///< guarded by mu_
  std::size_t released_total_ = 0;  ///< guarded by mu_
};

}  // namespace qosnp
