#include "session/session.hpp"

#include <algorithm>

#include "util/log.hpp"

namespace qosnp {

std::string_view to_string(SessionState state) {
  switch (state) {
    case SessionState::kPendingConfirmation: return "pending-confirmation";
    case SessionState::kPlaying: return "playing";
    case SessionState::kCompleted: return "completed";
    case SessionState::kAborted: return "aborted";
  }
  return "?";
}

void SessionManager::index_commitment_locked(Session& s) {
  for (FlowId flow : s.commitment.flow_ids()) flow_index_[flow] = s.id;
}

void SessionManager::unindex_commitment_locked(Session& s) {
  for (FlowId flow : s.commitment.flow_ids()) flow_index_.erase(flow);
}

void SessionManager::finish_locked(Session& s, SessionState state, const std::string& reason) {
  if (s.state == SessionState::kCompleted || s.state == SessionState::kAborted) {
    return;  // already finished and released; a second finish must not re-count
  }
  unindex_commitment_locked(s);
  s.commitment.release();
  s.state = state;
  s.abort_reason = reason;
  released_total_ += 1;
}

Result<SessionId> SessionManager::open(const ClientMachine& client, const UserProfile& profile,
                                       NegotiationResult&& result, double now_s,
                                       SessionClass session_class) {
  if (!result.has_commitment()) {
    return Err(std::string("negotiation result carries no committed offer"));
  }
  std::lock_guard lk(mu_);
  auto session = std::make_unique<Session>();
  session->id = next_id_++;
  session->client = client;
  session->profile = profile;
  session->session_class = session_class;
  session->offers = std::move(result.offers);
  session->current_offer = result.committed_index;
  session->tried.push_back(result.committed_index);
  session->commitment = std::move(result.commitment);
  session->state = SessionState::kPendingConfirmation;
  session->confirm_deadline_s = now_s + profile.mm.time.choice_period_s;
  session->duration_s = session->offers.document ? session->offers.document->duration_s() : 0.0;
  session->stats.charged = session->committed().total_cost();
  session->stats.commit = result.commit_stats;
  index_commitment_locked(*session);
  const SessionId id = session->id;
  sessions_[id] = std::move(session);
  opened_total_ += 1;
  return id;
}

Result<bool> SessionManager::confirm(SessionId id, double now_s) {
  std::lock_guard lk(mu_);
  auto it = sessions_.find(id);
  if (it == sessions_.end()) return Err(std::string("unknown session"));
  Session& s = *it->second;
  if (s.state != SessionState::kPendingConfirmation) {
    return Err("session is " + std::string(to_string(s.state)));
  }
  if (now_s > s.confirm_deadline_s) {
    // choicePeriod expired: the session is simply aborted and a new
    // negotiation is required (paper Sec. 8, information window).
    finish_locked(s, SessionState::kAborted, "choice period expired");
    return Err(std::string("choice period expired; resources de-allocated"));
  }
  s.state = SessionState::kPlaying;
  return true;
}

bool SessionManager::reject(SessionId id) {
  std::lock_guard lk(mu_);
  auto it = sessions_.find(id);
  if (it == sessions_.end()) return false;
  Session& s = *it->second;
  if (s.state != SessionState::kPendingConfirmation) return false;
  finish_locked(s, SessionState::kAborted, "offer rejected by the user");
  return true;
}

void SessionManager::advance(SessionId id, double dt_s) {
  std::lock_guard lk(mu_);
  auto it = sessions_.find(id);
  if (it == sessions_.end()) return;
  Session& s = *it->second;
  if (s.state != SessionState::kPlaying) return;
  s.position_s = std::min(s.duration_s, s.position_s + dt_s);
  if (s.position_s >= s.duration_s) {
    finish_locked(s, SessionState::kCompleted, "");
  }
}

AdaptationResult SessionManager::adapt(SessionId id, double /*now_s*/) {
  AdaptationResult result;
  std::lock_guard lk(mu_);
  auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    result.errors.push_back("unknown session");
    return result;
  }
  Session& s = *it->second;
  if (s.state != SessionState::kPlaying) {
    result.errors.push_back("session is " + std::string(to_string(s.state)));
    return result;
  }

  // The ordered set of system offers, except the one in difficulty (and,
  // under the stricter policy, every offer already tried).
  std::vector<std::size_t> exclude;
  if (policy_.exclude_all_tried) {
    exclude = s.tried;
  } else {
    exclude.push_back(s.current_offer);
  }

  CommitAttempt attempt;
  if (policy_.make_before_break) {
    attempt = manager_->commit_first(s.client, s.offers, s.profile.mm, exclude, {},
                                     s.session_class);
    if (attempt.ok()) {
      unindex_commitment_locked(s);
      s.commitment = std::move(attempt.commitment);  // old reservations release here
    }
  } else {
    // The paper's literal transition: stop (release) first, then re-run
    // Step 5 on the remaining offers.
    unindex_commitment_locked(s);
    s.commitment.release();
    attempt = manager_->commit_first(s.client, s.offers, s.profile.mm, exclude, {},
                                     s.session_class);
    if (attempt.ok()) s.commitment = std::move(attempt.commitment);
  }

  s.stats.commit.merge(attempt.stats);
  if (!attempt.ok()) {
    s.stats.failed_adaptations += 1;
    result.errors = std::move(attempt.errors);
    finish_locked(s, SessionState::kAborted, "no alternate configuration available");
    QOSNP_LOG_INFO("adapt", "session ", id, " aborted: no alternate configuration");
    return result;
  }

  s.current_offer = attempt.index;
  if (std::find(s.tried.begin(), s.tried.end(), attempt.index) == s.tried.end()) {
    s.tried.push_back(attempt.index);
  }
  index_commitment_locked(s);
  s.stats.transitions += 1;
  s.stats.interrupted_s += policy_.transition_latency_s;
  s.stats.charged = s.committed().total_cost();
  result.adapted = true;
  result.new_offer = attempt.index;
  result.interruption_s = policy_.transition_latency_s;
  QOSNP_LOG_INFO("adapt", "session ", id, " transitioned to offer ", attempt.index,
                 " at position ", s.position_s, "s");
  return result;
}

RenegotiationResult SessionManager::renegotiate(SessionId id, const UserProfile& new_profile,
                                                double /*now_s*/) {
  RenegotiationResult result;
  std::lock_guard lk(mu_);
  auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    result.problems.push_back("unknown session");
    return result;
  }
  Session& s = *it->second;
  if (s.state != SessionState::kPlaying && s.state != SessionState::kPendingConfirmation) {
    result.problems.push_back("session is " + std::string(to_string(s.state)));
    return result;
  }

  NegotiationRequest request = make_negotiation_request(s.client, s.offers.document, new_profile);
  request.session_class = s.session_class;
  NegotiationResult renegotiated = manager_->negotiate(request);
  result.status = renegotiated.verdict;
  result.problems = renegotiated.problems;
  s.stats.commit.merge(renegotiated.commit_stats);
  if (!renegotiated.has_commitment()) {
    // Nothing could be committed: the session keeps its current
    // configuration untouched (the old commitment was never released).
    if (renegotiated.user_offer) result.offer = renegotiated.user_offer;
    return result;
  }

  unindex_commitment_locked(s);
  s.offers = std::move(renegotiated.offers);
  s.current_offer = renegotiated.committed_index;
  s.tried.assign(1, renegotiated.committed_index);
  s.commitment = std::move(renegotiated.commitment);  // old reservations release here
  s.profile = new_profile;
  index_commitment_locked(s);
  s.stats.renegotiations += 1;
  s.stats.interrupted_s += policy_.transition_latency_s;
  s.stats.charged = s.committed().total_cost();
  result.switched = true;
  result.offer = derive_user_offer(s.committed());
  QOSNP_LOG_INFO("renegotiate", "session ", id, " switched to ", result.offer->describe());
  return result;
}

void SessionManager::complete(SessionId id) {
  std::lock_guard lk(mu_);
  auto it = sessions_.find(id);
  if (it == sessions_.end()) return;
  finish_locked(*it->second, SessionState::kCompleted, "");
}

void SessionManager::abort(SessionId id, const std::string& reason) {
  std::lock_guard lk(mu_);
  auto it = sessions_.find(id);
  if (it == sessions_.end()) return;
  finish_locked(*it->second, SessionState::kAborted, reason);
}

std::optional<SessionView> SessionManager::snapshot(SessionId id) const {
  std::lock_guard lk(mu_);
  auto it = sessions_.find(id);
  if (it == sessions_.end()) return std::nullopt;
  const Session& s = *it->second;
  SessionView view;
  view.id = s.id;
  view.state = s.state;
  view.session_class = s.session_class;
  view.current_offer = s.current_offer;
  view.offer_count = s.offers.known_count();
  view.position_s = s.position_s;
  view.duration_s = s.duration_s;
  view.confirm_deadline_s = s.confirm_deadline_s;
  view.stats = s.stats;
  view.abort_reason = s.abort_reason;
  if (s.current_offer != SIZE_MAX) {
    view.user_offer = derive_user_offer(s.committed());
  }
  return view;
}

std::size_t SessionManager::active_count() const {
  std::lock_guard lk(mu_);
  std::size_t n = 0;
  for (const auto& [_, s] : sessions_) {
    if (s->state == SessionState::kPlaying || s->state == SessionState::kPendingConfirmation) {
      ++n;
    }
  }
  return n;
}

std::size_t SessionManager::opened_total() const {
  std::lock_guard lk(mu_);
  return opened_total_;
}

std::size_t SessionManager::released_total() const {
  std::lock_guard lk(mu_);
  return released_total_;
}

std::size_t SessionManager::prune_finished() {
  std::lock_guard lk(mu_);
  std::size_t erased = 0;
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    const SessionState state = it->second->state;
    if (state == SessionState::kCompleted || state == SessionState::kAborted) {
      it = sessions_.erase(it);
      ++erased;
    } else {
      ++it;
    }
  }
  return erased;
}

std::vector<SessionId> SessionManager::playing_sessions() const {
  std::lock_guard lk(mu_);
  std::vector<SessionId> out;
  for (const auto& [id, s] : sessions_) {
    if (s->state == SessionState::kPlaying) out.push_back(id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<PlayingSession> SessionManager::playing_sessions_with_class() const {
  std::lock_guard lk(mu_);
  std::vector<PlayingSession> out;
  for (const auto& [id, s] : sessions_) {
    if (s->state != SessionState::kPlaying) continue;
    out.push_back({id, s->session_class, s->current_offer});
  }
  std::sort(out.begin(), out.end(),
            [](const PlayingSession& a, const PlayingSession& b) { return a.id < b.id; });
  return out;
}

PreemptionVictimResult SessionManager::preempt_degrade(SessionId id, bool allow_release,
                                                       TraceContext trace) {
  PreemptionVictimResult result;
  std::lock_guard lk(mu_);
  auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    result.errors.push_back("unknown session");
    return result;
  }
  Session& s = *it->second;
  if (s.state != SessionState::kPlaying) {
    result.errors.push_back("session is " + std::string(to_string(s.state)));
    return result;
  }
  result.old_offer = s.current_offer;

  // Only offers strictly worse than (indexed after) the current one are
  // eligible — the policy invariant "a preempted victim's new offer is
  // always a later entry in its own offer list" is enforced structurally.
  std::vector<std::size_t> exclude(s.current_offer + 1);
  for (std::size_t i = 0; i <= s.current_offer; ++i) exclude[i] = i;

  CommitAttempt attempt;
  if (allow_release) {
    // Break-before-make: freeing the victim's resources first is the whole
    // point (they are what the higher-class request needs).
    unindex_commitment_locked(s);
    s.commitment.release();
    attempt = manager_->commit_first(s.client, s.offers, s.profile.mm, exclude, trace,
                                     s.session_class);
    s.stats.commit.merge(attempt.stats);
    if (!attempt.ok()) {
      result.errors = std::move(attempt.errors);
      finish_locked(s, SessionState::kAborted, std::string(kPreemptedAbortReason));
      result.released = true;
      QOSNP_LOG_INFO("preempt", "session ", id, " released: no worse offer fits");
      return result;
    }
    s.commitment = std::move(attempt.commitment);
  } else {
    // Make-before-break: degrade only when a worse offer fits alongside the
    // current one; otherwise the victim is left untouched.
    attempt = manager_->commit_first(s.client, s.offers, s.profile.mm, exclude, trace,
                                     s.session_class);
    s.stats.commit.merge(attempt.stats);
    if (!attempt.ok()) {
      result.errors = std::move(attempt.errors);
      return result;
    }
    unindex_commitment_locked(s);
    s.commitment = std::move(attempt.commitment);  // old reservations release here
  }

  s.current_offer = attempt.index;
  if (std::find(s.tried.begin(), s.tried.end(), attempt.index) == s.tried.end()) {
    s.tried.push_back(attempt.index);
  }
  index_commitment_locked(s);
  s.stats.preempt_degrades += 1;
  s.stats.interrupted_s += policy_.transition_latency_s;
  s.stats.charged = s.committed().total_cost();
  result.degraded = true;
  result.new_offer = attempt.index;
  QOSNP_LOG_INFO("preempt", "session ", id, " degraded from offer ", result.old_offer, " to ",
                 result.new_offer);
  return result;
}

UpgradeResult SessionManager::try_upgrade(SessionId id, TraceContext trace) {
  UpgradeResult result;
  std::lock_guard lk(mu_);
  auto it = sessions_.find(id);
  if (it == sessions_.end()) return result;
  Session& s = *it->second;
  if (s.state != SessionState::kPlaying) return result;
  result.old_offer = s.current_offer;
  if (s.current_offer == 0 || s.current_offer == SIZE_MAX) return result;  // already at the top

  // Make-before-break over the offers strictly better than the current one
  // (end_index bounds the walk, so a lazy list never materialises past it).
  CommitAttempt attempt = manager_->commit_first(s.client, s.offers, s.profile.mm, {}, trace,
                                                 s.session_class, s.current_offer);
  s.stats.commit.merge(attempt.stats);
  if (!attempt.ok()) return result;

  unindex_commitment_locked(s);
  s.commitment = std::move(attempt.commitment);  // old reservations release here
  s.current_offer = attempt.index;
  if (std::find(s.tried.begin(), s.tried.end(), attempt.index) == s.tried.end()) {
    s.tried.push_back(attempt.index);
  }
  index_commitment_locked(s);
  s.stats.upgrades += 1;
  s.stats.interrupted_s += policy_.transition_latency_s;
  s.stats.charged = s.committed().total_cost();
  result.upgraded = true;
  result.new_offer = attempt.index;
  QOSNP_LOG_INFO("upgrade", "session ", id, " promoted from offer ", result.old_offer, " to ",
                 result.new_offer);
  return result;
}

std::vector<SessionId> SessionManager::sessions_using_flow(FlowId flow) const {
  std::lock_guard lk(mu_);
  auto it = flow_index_.find(flow);
  if (it == flow_index_.end()) return {};
  return {it->second};
}

std::vector<SessionId> SessionManager::sessions_on_server(const ServerId& server) const {
  std::lock_guard lk(mu_);
  std::vector<SessionId> out;
  for (const auto& [id, s] : sessions_) {
    if (s->state != SessionState::kPlaying && s->state != SessionState::kPendingConfirmation) {
      continue;
    }
    if (s->current_offer == SIZE_MAX) continue;
    for (const OfferComponent& c : s->committed().components) {
      if (c.variant->server == server) {
        out.push_back(id);
        break;
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace qosnp
