#include "util/strings.hpp"

#include <gtest/gtest.h>

namespace qosnp {
namespace {

TEST(Split, BasicFields) {
  const auto parts = split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(Split, PreservesEmptyFields) {
  const auto parts = split(",x,", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "");
  EXPECT_EQ(parts[1], "x");
  EXPECT_EQ(parts[2], "");
}

TEST(Split, NoDelimiterYieldsWhole) {
  const auto parts = split("hello", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "hello");
}

TEST(Trim, StripsWhitespace) {
  EXPECT_EQ(trim("  abc \t"), "abc");
  EXPECT_EQ(trim("abc"), "abc");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" a b "), "a b");
}

TEST(IEquals, CaseInsensitive) {
  EXPECT_TRUE(iequals("MPEG", "mpeg"));
  EXPECT_TRUE(iequals("CoLoR", "color"));
  EXPECT_FALSE(iequals("abc", "abd"));
  EXPECT_FALSE(iequals("abc", "ab"));
  EXPECT_TRUE(iequals("", ""));
}

TEST(ParseKeyValue, Basics) {
  std::string key;
  std::string value;
  EXPECT_TRUE(parse_key_value("name = value", key, value));
  EXPECT_EQ(key, "name");
  EXPECT_EQ(value, "value");
  EXPECT_TRUE(parse_key_value("a=b=c", key, value));
  EXPECT_EQ(key, "a");
  EXPECT_EQ(value, "b=c");
}

TEST(ParseKeyValue, Rejections) {
  std::string key;
  std::string value;
  EXPECT_FALSE(parse_key_value("no equals here", key, value));
  EXPECT_FALSE(parse_key_value(" = value without key", key, value));
}

TEST(ParseKeyValue, EmptyValueAllowed) {
  std::string key;
  std::string value;
  EXPECT_TRUE(parse_key_value("key =", key, value));
  EXPECT_EQ(key, "key");
  EXPECT_EQ(value, "");
}

TEST(FormatDouble, FixedDecimals) {
  EXPECT_EQ(format_double(1.5, 2), "1.50");
  EXPECT_EQ(format_double(3.14159, 3), "3.142");
  EXPECT_EQ(format_double(2.0, 0), "2");
}

}  // namespace
}  // namespace qosnp
