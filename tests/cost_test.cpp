#include "cost/cost_model.hpp"

#include <gtest/gtest.h>

#include "document/corpus.hpp"

namespace qosnp {
namespace {

StreamRequirements guaranteed_stream(std::int64_t max_bps, std::int64_t avg_bps,
                                     double duration_s) {
  StreamRequirements req;
  req.max_bit_rate_bps = max_bps;
  req.avg_bit_rate_bps = avg_bps;
  req.guarantee = GuaranteeClass::kGuaranteed;
  req.duration_s = duration_s;
  return req;
}

TEST(CostTable, ClassifyPicksCoveringClass) {
  const CostTable table = CostTable::standard_network();
  EXPECT_EQ(table.classify(1), 0u);
  EXPECT_EQ(table.classify(64'000), 0u);
  EXPECT_EQ(table.classify(64'001), 1u);
  EXPECT_EQ(table.classify(1'000'000), 2u);
  // Above the last bound: falls into the last class.
  EXPECT_EQ(table.classify(999'000'000), table.size() - 1);
}

TEST(CostTable, TariffsAreMonotone) {
  for (const CostTable& table : {CostTable::standard_network(), CostTable::standard_server()}) {
    EXPECT_TRUE(table.validate().empty());
    for (std::size_t i = 1; i < table.size(); ++i) {
      EXPECT_GE(table.at(i).cost_per_second, table.at(i - 1).cost_per_second);
      EXPECT_GT(table.at(i).upper_bps, table.at(i - 1).upper_bps);
    }
  }
}

TEST(CostTable, ValidateCatchesBadTables) {
  EXPECT_FALSE(CostTable{}.validate().empty());
  const CostTable unsorted{{{100, Money::cents(1)}, {50, Money::cents(2)}}};
  EXPECT_FALSE(unsorted.validate().empty());
  const CostTable decreasing{{{100, Money::cents(5)}, {200, Money::cents(1)}}};
  EXPECT_FALSE(decreasing.validate().empty());
}

TEST(CostModel, ChargedRateIsAverageThroughput) {
  StreamRequirements req = guaranteed_stream(2'000'000, 800'000, 60.0);
  EXPECT_EQ(CostModel::charged_bps(req), 800'000);
  req.guarantee = GuaranteeClass::kBestEffort;
  EXPECT_EQ(CostModel::charged_bps(req), 800'000);
}

TEST(CostModel, StreamCostIsTariffTimesDuration) {
  // CostNet_i = CostNet_{C_i} x D_i, with C_i from the average throughput.
  const CostModel model;
  const StreamRequirements req = guaranteed_stream(900'000, 700'000, 100.0);
  const Money per_second = model.network_table().cost_per_second(700'000);
  EXPECT_EQ(model.stream_network_cost(req), per_second.scaled(100.0));
  const Money server_per_second = model.server_table().cost_per_second(700'000);
  EXPECT_EQ(model.stream_server_cost(req), server_per_second.scaled(100.0));
}

TEST(CostModel, BestEffortIsDiscounted) {
  const CostModel model(CostTable::standard_network(), CostTable::standard_server(), 0.5);
  StreamRequirements guaranteed = guaranteed_stream(900'000, 900'000, 100.0);
  StreamRequirements best_effort = guaranteed;
  best_effort.guarantee = GuaranteeClass::kBestEffort;
  EXPECT_EQ(model.stream_network_cost(best_effort).as_micros(),
            model.stream_network_cost(guaranteed).as_micros() / 2);
}

TEST(CostModel, DocumentCostIsFormulaOne) {
  // CostDoc = CostCop + sum_i (CostNet_i + CostSer_i).
  const CostModel model;
  const Money copyright = Money::cents(75);
  const std::vector<StreamRequirements> streams = {
      guaranteed_stream(1'500'000, 1'000'000, 120.0),
      guaranteed_stream(200'000, 150'000, 120.0),
  };
  const CostBreakdown breakdown = model.document_cost(copyright, streams);
  EXPECT_EQ(breakdown.copyright, copyright);
  ASSERT_EQ(breakdown.streams.size(), 2u);
  Money expected = copyright;
  for (std::size_t i = 0; i < streams.size(); ++i) {
    EXPECT_EQ(breakdown.streams[i].network, model.stream_network_cost(streams[i]));
    EXPECT_EQ(breakdown.streams[i].server, model.stream_server_cost(streams[i]));
    expected += breakdown.streams[i].network + breakdown.streams[i].server;
  }
  EXPECT_EQ(breakdown.total, expected);
}

TEST(CostModel, EmptyDocumentCostsOnlyCopyright) {
  const CostModel model;
  const CostBreakdown breakdown = model.document_cost(Money::dollars(1), {});
  EXPECT_EQ(breakdown.total, Money::dollars(1));
  EXPECT_TRUE(breakdown.streams.empty());
}

TEST(CostModel, TypicalNewsVideoLandsInSingleDigitDollars) {
  // A TV-quality MPEG-1 video of 3 minutes should cost a few dollars, as in
  // the paper's running examples ($2.5 - $6).
  const CostModel model;
  Variant v = make_video_variant("v", VideoQoS{ColorDepth::kColor, 25, 640},
                                 CodingFormat::kMPEG1, 180.0, "s");
  const StreamRequirements req = map_variant(v, 180.0, TimeProfile{});
  const CostBreakdown breakdown = model.document_cost(Money::cents(50), {req});
  EXPECT_GT(breakdown.total, Money::cents(50));
  EXPECT_LT(breakdown.total, Money::dollars(10)) << breakdown.total.to_string();
}

TEST(CostModel, HigherThroughputClassCostsMore) {
  const CostModel model;
  const StreamRequirements lo = guaranteed_stream(100'000, 100'000, 60.0);
  const StreamRequirements hi = guaranteed_stream(8'000'000, 8'000'000, 60.0);
  EXPECT_GT(model.stream_network_cost(hi), model.stream_network_cost(lo));
}

TEST(CostModel, CustomTablesAndDiscountAreHonoured) {
  const CostTable net{{{1'000'000, Money::cents(1)}, {10'000'000, Money::cents(2)}}};
  const CostTable srv{{{10'000'000, Money::cents(1)}}};
  const CostModel model(net, srv, /*best_effort_discount=*/0.25);
  StreamRequirements req = guaranteed_stream(4'000'000, 2'000'000, 10.0);
  // Charged on the 2 Mbit/s average -> class 1 of the custom net table.
  EXPECT_EQ(model.stream_network_cost(req), Money::cents(20));
  EXPECT_EQ(model.stream_server_cost(req), Money::cents(10));
  req.guarantee = GuaranteeClass::kBestEffort;
  EXPECT_EQ(model.stream_network_cost(req), Money::cents(5));  // 25% of $0.20
}

// Sweep durations: cost scales linearly with D_i within one class.
class DurationSweep : public ::testing::TestWithParam<int> {};

TEST_P(DurationSweep, CostLinearInDuration) {
  const CostModel model;
  const int seconds = GetParam();
  const StreamRequirements base = guaranteed_stream(900'000, 900'000, 1.0);
  StreamRequirements longer = base;
  longer.duration_s = seconds;
  EXPECT_EQ(model.stream_network_cost(longer).as_micros(),
            model.stream_network_cost(base).as_micros() * seconds);
}

INSTANTIATE_TEST_SUITE_P(Durations, DurationSweep, ::testing::Values(1, 2, 10, 60, 300, 3600));

}  // namespace
}  // namespace qosnp
