// Shared textual image of a NegotiationResult, used by every differential
// suite (plan cache, population) to assert byte-identity of outcomes.
#pragma once

#include <iomanip>
#include <sstream>
#include <string>

#include "core/negotiation_result.hpp"

namespace qosnp::testing {

/// Exhaustive textual image of a NegotiationResult's procedure fields; two
/// results with equal signatures are byte-identical as far as any caller can
/// observe (doubles rendered at full precision).
inline std::string result_signature(const NegotiationResult& r) {
  std::ostringstream os;
  os << std::setprecision(17);
  os << "verdict=" << to_string(r.verdict) << '\n';
  os << "committed=" << r.committed_index << '\n';
  for (const std::string& p : r.problems) os << "problem=" << p << '\n';
  if (r.user_offer) {
    os << "user_offer=" << r.user_offer->describe() << " cost="
       << r.user_offer->cost.as_micros() << '\n';
  }
  os << "total=" << r.offers.total_combinations << " truncated=" << r.offers.truncated
     << " sns_ordered=" << r.offers.sns_ordered << '\n';
  for (const SystemOffer& o : r.offers.offers) {
    os << "offer sns=" << to_string(o.sns) << " oif=" << o.oif
       << " cost=" << o.total_cost().as_micros();
    for (const OfferComponent& c : o.components) os << ' ' << c.variant->id;
    os << '\n';
  }
  os << "attempts=" << r.commit_stats.attempts << " retries=" << r.commit_stats.retries
     << " transient=" << r.commit_stats.transient_failures
     << " released=" << r.commit_stats.released_on_failure << '\n';
  return os.str();
}

}  // namespace qosnp::testing
