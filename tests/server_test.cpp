#include "server/media_server.hpp"

#include <gtest/gtest.h>

namespace qosnp {
namespace {

StreamRequirements stream(std::int64_t bps, GuaranteeClass g = GuaranteeClass::kGuaranteed) {
  StreamRequirements req;
  req.max_bit_rate_bps = bps;
  req.avg_bit_rate_bps = bps / 2 > 0 ? bps / 2 : bps;
  req.guarantee = g;
  req.duration_s = 60.0;
  return req;
}

MediaServerConfig small_server() {
  MediaServerConfig config;
  config.id = "srv";
  config.node = "srv-node";
  config.disk_bandwidth_bps = 10'000'000;
  config.max_sessions = 3;
  return config;
}

TEST(MediaServer, AdmitAndRelease) {
  MediaServer server(small_server());
  auto s = server.admit(stream(4'000'000));
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(server.usage().reserved_bps, 4'000'000);
  EXPECT_EQ(server.usage().sessions, 1);
  EXPECT_TRUE(server.release(s.value()));
  EXPECT_FALSE(server.release(s.value()));
  EXPECT_EQ(server.usage().reserved_bps, 0);
}

TEST(MediaServer, BandwidthAdmissionControl) {
  MediaServer server(small_server());
  ASSERT_TRUE(server.admit(stream(6'000'000)).ok());
  EXPECT_FALSE(server.admit(stream(6'000'000)).ok());
  EXPECT_TRUE(server.admit(stream(4'000'000)).ok());
}

TEST(MediaServer, SessionSlotAdmissionControl) {
  MediaServer server(small_server());
  ASSERT_TRUE(server.admit(stream(1'000)).ok());
  ASSERT_TRUE(server.admit(stream(1'000)).ok());
  ASSERT_TRUE(server.admit(stream(1'000)).ok());
  EXPECT_FALSE(server.admit(stream(1'000)).ok());  // 3 slots
}

TEST(MediaServer, BestEffortReservesAverage) {
  MediaServer server(small_server());
  ASSERT_TRUE(server.admit(stream(8'000'000, GuaranteeClass::kBestEffort)).ok());
  EXPECT_EQ(server.usage().reserved_bps, 4'000'000);
}

TEST(MediaServer, RejectsZeroRate) {
  MediaServer server(small_server());
  EXPECT_FALSE(server.admit(stream(0)).ok());
}

TEST(MediaServer, FailureInjection) {
  MediaServer server(small_server());
  auto s1 = server.admit(stream(1'000'000));
  auto s2 = server.admit(stream(1'000'000));
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  const auto affected = server.fail();
  EXPECT_EQ(affected.size(), 2u);
  EXPECT_TRUE(server.failed());
  EXPECT_FALSE(server.admit(stream(1'000)).ok());
  server.recover();
  EXPECT_FALSE(server.failed());
  EXPECT_TRUE(server.admit(stream(1'000)).ok());
}

TEST(MediaServer, DegradationReportsVictims) {
  MediaServer server(small_server());
  auto s1 = server.admit(stream(4'000'000));
  auto s2 = server.admit(stream(4'000'000));
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  // 8 Mbit/s reserved; halving leaves 5 Mbit/s -> newest stream is a victim.
  const auto victims = server.degrade(0.5);
  ASSERT_EQ(victims.size(), 1u);
  EXPECT_EQ(victims[0], s2.value());
  EXPECT_FALSE(server.admit(stream(2'000'000)).ok());
  server.restore();
  EXPECT_TRUE(server.admit(stream(2'000'000)).ok());
}

TEST(ServerFarm, RegistryBasics) {
  ServerFarm farm;
  EXPECT_TRUE(farm.add(small_server()));
  EXPECT_FALSE(farm.add(small_server()));  // duplicate id
  EXPECT_NE(farm.find("srv"), nullptr);
  EXPECT_EQ(farm.find("ghost"), nullptr);
  ASSERT_EQ(farm.list().size(), 1u);
  EXPECT_EQ(farm.list()[0], "srv");
}

TEST(ScopedStream, ReleasesOnDestruction) {
  MediaServer server(small_server());
  {
    auto s = server.admit(stream(1'000'000));
    ASSERT_TRUE(s.ok());
    ScopedStream scoped(&server, s.value());
    EXPECT_EQ(server.usage().sessions, 1);
  }
  EXPECT_EQ(server.usage().sessions, 0);
}

TEST(ScopedStream, DismissKeepsStream) {
  MediaServer server(small_server());
  {
    auto s = server.admit(stream(1'000'000));
    ASSERT_TRUE(s.ok());
    ScopedStream scoped(&server, s.value());
    scoped.dismiss();
  }
  EXPECT_EQ(server.usage().sessions, 1);
}

TEST(ScopedStream, MoveSemantics) {
  MediaServer server(small_server());
  auto s = server.admit(stream(1'000'000));
  ASSERT_TRUE(s.ok());
  ScopedStream a(&server, s.value());
  ScopedStream b;
  b = std::move(a);
  EXPECT_FALSE(a.valid());
  EXPECT_TRUE(b.valid());
  b.reset();
  EXPECT_EQ(server.usage().sessions, 0);
}

}  // namespace
}  // namespace qosnp
