// Differential property: a simulated user's negotiation outcome is
// byte-identical to calling QoSManager::negotiate directly with the same
// request. Per seed, twin systems are built (same corpus, same hardware);
// the population runs on one, observing the raw result of its first arrival
// (user_rng(seed, 0) makes that user's request reconstructible), and the
// reconstructed request is negotiated directly on the other. 200+ seeded
// corpora, with the plan cache cold, pre-warmed (hit path), and bypassed —
// the cache must be invisible, and the population layer must add nothing to
// the procedure's observable outcome.
#include "sim/population.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/plan_cache.hpp"
#include "document/corpus.hpp"
#include "result_signature.hpp"
#include "test_service.hpp"

namespace qosnp {
namespace {

using testing::ServiceSystem;
using testing::result_signature;

struct TwinSystems {
  ServiceSystem population_sys;
  ServiceSystem direct_sys;
  std::vector<DocumentId> documents;

  TwinSystems(std::uint64_t seed, NegotiationConfig population_negotiation)
      : population_sys(2, 1'000'000'000, 10'000'000'000, 10'000'000'000, 100'000,
                       std::move(population_negotiation)),
        direct_sys(2) {
    CorpusConfig corpus;
    corpus.seed = seed;
    corpus.num_documents = 4;
    corpus.min_duration_s = 30.0;
    corpus.max_duration_s = 120.0;
    for (auto& doc : generate_corpus(corpus)) {
      population_sys.catalog.add(MultimediaDocument{doc});
      direct_sys.catalog.add(std::move(doc));
    }
    documents = population_sys.catalog.list();
  }
};

/// One single-class population over `seed`, capturing the raw result the
/// backend observed for arrival index 0 (before admission strips it).
/// Returns nullopt when the replicate produced no arrivals at all.
std::optional<std::string> observed_first_result(ServiceSystem& sys,
                                                 const std::vector<DocumentId>& documents,
                                                 const ClientClass& cls, std::uint64_t seed,
                                                 CacheUse cache) {
  PopulationConfig config;
  config.classes = {cls};
  config.duration_s = 30.0;  // rate 0.5/s: P(no arrival) = e^-15
  config.seed = seed;
  config.cache = cache;

  ManagerPopulationBackend backend(*sys.manager, *sys.sessions);
  std::optional<std::string> first;
  backend.set_result_observer([&](const NegotiationResult& r) {
    if (!first) first = result_signature(r);
  });
  Population population(config, backend, documents);
  const PopulationMetrics metrics = population.run();
  EXPECT_TRUE(metrics.conserved()) << metrics.signature();
  return first;
}

/// The request the population builds for arrival index 0, reconstructed from
/// the documented draw order of user_rng(seed, 0).
NegotiationRequest reconstruct_first_request(const ClientClass& cls, std::uint64_t seed,
                                             const std::vector<DocumentId>& documents) {
  Rng rng = user_rng(seed, 0);
  const UserDraws draws = draw_user(cls, rng, documents);
  NegotiationRequest request = make_negotiation_request(cls.machine, draws.document, cls.profile);
  request.id = 1;
  request.accept_degraded = draws.accept_degraded;
  return request;
}

ClientClass desktop_class(const std::string& node) {
  std::vector<ClientClass> population = standard_population();
  ClientClass cls = std::move(population[1]);  // standard-desktop
  cls.machine.node = node;
  cls.arrival_rate_per_s = 0.5;
  return cls;
}

TEST(PopulationDifferential, FirstUserMatchesDirectNegotiationAcross200SeededCorpora) {
  std::size_t compared = 0;
  for (std::uint64_t seed = 1; seed <= 70; ++seed) {
    // Variant 1: plan cache configured and cold (kDefault stores the plan).
    NegotiationConfig cached;
    cached.plan_cache = std::make_shared<NegotiationPlanCache>();
    {
      TwinSystems twins(seed, cached);
      const ClientClass cls = desktop_class(twins.population_sys.clients[0].node);
      const NegotiationRequest request =
          reconstruct_first_request(cls, seed, twins.documents);
      const auto observed = observed_first_result(twins.population_sys, twins.documents, cls,
                                                  seed, CacheUse::kDefault);
      if (!observed) continue;
      NegotiationResult direct = twins.direct_sys.manager->negotiate(request);
      EXPECT_EQ(*observed, result_signature(direct)) << "seed " << seed << " (cache cold)";
      direct.commitment.release();
      ++compared;
    }

    // Variant 2: the population's first request hits a pre-warmed cache.
    NegotiationConfig warmed;
    warmed.plan_cache = std::make_shared<NegotiationPlanCache>();
    {
      TwinSystems twins(seed, warmed);
      const ClientClass cls = desktop_class(twins.population_sys.clients[0].node);
      const NegotiationRequest request =
          reconstruct_first_request(cls, seed, twins.documents);
      // Warm the plan cache with the exact request, then release the
      // commitment so the population starts from pristine resources.
      NegotiationResult warm = twins.population_sys.manager->negotiate(request);
      warm.commitment.release();
      EXPECT_EQ(twins.population_sys.manager->plan_cache()->stats().misses, 1u);
      const auto observed = observed_first_result(twins.population_sys, twins.documents, cls,
                                                  seed, CacheUse::kDefault);
      if (!observed) continue;
      EXPECT_GE(twins.population_sys.manager->plan_cache()->stats().hits, 1u);
      NegotiationResult direct = twins.direct_sys.manager->negotiate(request);
      EXPECT_EQ(*observed, result_signature(direct)) << "seed " << seed << " (cache warm)";
      direct.commitment.release();
      ++compared;
    }

    // Variant 3: cache configured but bypassed per request.
    NegotiationConfig bypassed;
    bypassed.plan_cache = std::make_shared<NegotiationPlanCache>();
    {
      TwinSystems twins(seed, bypassed);
      const ClientClass cls = desktop_class(twins.population_sys.clients[0].node);
      const NegotiationRequest request =
          reconstruct_first_request(cls, seed, twins.documents);
      const auto observed = observed_first_result(twins.population_sys, twins.documents, cls,
                                                  seed, CacheUse::kBypass);
      if (!observed) continue;
      NegotiationResult direct = twins.direct_sys.manager->negotiate(request);
      EXPECT_EQ(*observed, result_signature(direct)) << "seed " << seed << " (cache bypassed)";
      direct.commitment.release();
      ++compared;
    }
  }
  // 70 seeds x 3 cache variants, minus the (practically nonexistent)
  // zero-arrival replicates.
  EXPECT_GE(compared, 200u);
}

}  // namespace
}  // namespace qosnp
