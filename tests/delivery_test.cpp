// Block-level delivery: VBR traces, playout buffering, stall behaviour and
// inter-stream skew — the behavioural justification of the Sec. 6 mapping.
#include "delivery/playout.hpp"
#include "delivery/vbr_trace.hpp"

#include <gtest/gtest.h>

#include "document/corpus.hpp"
#include "qosmap/mapping.hpp"

namespace qosnp {
namespace {

Variant tv_video() {
  return make_video_variant("v", VideoQoS{ColorDepth::kColor, 25, 640}, CodingFormat::kMPEG1,
                            120.0, "s");
}

Variant cd_audio() {
  return make_audio_variant("a", AudioQuality::kCD, CodingFormat::kMPEGAudio, 120.0, "s");
}

TEST(VbrTrace, DeterministicPerVariantAndSeed) {
  const Variant v = tv_video();
  const auto a = generate_block_trace(v, 500, 7);
  const auto b = generate_block_trace(v, 500, 7);
  EXPECT_EQ(a, b);
  const auto c = generate_block_trace(v, 500, 8);
  EXPECT_NE(a, c);
}

TEST(VbrTrace, MeanTracksMetadata) {
  const Variant v = tv_video();
  const auto trace = generate_block_trace(v, 6'000, 3);
  EXPECT_NEAR(trace_mean(trace), static_cast<double>(v.avg_block_bytes),
              0.05 * static_cast<double>(v.avg_block_bytes));
}

TEST(VbrTrace, PeakHitsMaxBlock) {
  const Variant v = tv_video();
  const auto trace = generate_block_trace(v, 600, 3);
  EXPECT_EQ(trace_peak(trace), static_cast<std::int32_t>(v.max_block_bytes));
  for (std::int32_t b : trace) {
    EXPECT_GE(b, 1);
    EXPECT_LE(b, v.max_block_bytes);
  }
}

TEST(VbrTrace, GopStructureHasPeriodicIFrames) {
  const Variant v = tv_video();
  const auto trace = generate_block_trace(v, 120, 3);
  for (std::size_t i = 0; i < trace.size(); i += 12) {
    EXPECT_EQ(trace[i], static_cast<std::int32_t>(v.max_block_bytes)) << i;
  }
  // Non-I blocks are strictly smaller (MPEG burst 3x).
  EXPECT_LT(trace[1], trace[0]);
}

TEST(VbrTrace, AudioIsNearConstant) {
  const Variant a = cd_audio();
  const auto trace = generate_block_trace(a, 1'000, 3);
  for (std::int32_t b : trace) {
    EXPECT_GE(b, static_cast<std::int32_t>(0.85 * static_cast<double>(a.avg_block_bytes)));
    EXPECT_LE(b, a.max_block_bytes);
  }
}

DeliveryConfig config_with_rate(std::int64_t bps) {
  DeliveryConfig config;
  config.bottleneck_bps = bps;
  config.base_delay_ms = 20.0;
  config.jitter_ms = 5.0;
  config.prebuffer_s = 1.0;
  config.seed = 11;
  return config;
}

TEST(Playout, PeakRateReservationPlaysCleanly) {
  // The Sec. 6 rule: a guaranteed stream reserves maxBitRate. At that rate
  // the VBR stream never stalls (given a modest prebuffer).
  const Variant v = tv_video();
  const StreamRequirements req = map_variant(v, 120.0, TimeProfile{});
  const PlayoutReport report = simulate_playout(v, 120.0, config_with_rate(req.max_bit_rate_bps));
  EXPECT_GT(report.blocks, 0u);
  EXPECT_TRUE(report.clean()) << report.stalls << " stalls, " << report.total_stall_s << "s";
}

TEST(Playout, AverageRateReservationStalls) {
  // Under-reserving at avgBitRate cannot absorb the I-frame bursts: the
  // stream stalls — the ablation that justifies peak-rate reservation.
  const Variant v = tv_video();
  const StreamRequirements req = map_variant(v, 120.0, TimeProfile{});
  const PlayoutReport report =
      simulate_playout(v, 120.0, config_with_rate(req.avg_bit_rate_bps * 9 / 10));
  EXPECT_GT(report.stalls, 0u);
  EXPECT_GT(report.total_stall_s, 0.0);
}

TEST(Playout, BiggerPrebufferAbsorbsMore) {
  const Variant v = tv_video();
  const StreamRequirements req = map_variant(v, 120.0, TimeProfile{});
  DeliveryConfig tight = config_with_rate(req.avg_bit_rate_bps);
  tight.prebuffer_s = 0.2;
  DeliveryConfig roomy = tight;
  roomy.prebuffer_s = 8.0;
  const double tight_stall = simulate_playout(v, 120.0, tight).total_stall_s;
  const double roomy_stall = simulate_playout(v, 120.0, roomy).total_stall_s;
  EXPECT_LE(roomy_stall, tight_stall);
}

TEST(Playout, LossInducesStallsInLowLatencyMode) {
  // With a low-latency buffer (100 ms ahead, 100 ms prebuffer), a 5% loss
  // rate — far above the 0.003 target — causes visible lateness.
  const Variant v = tv_video();
  const StreamRequirements req = map_variant(v, 120.0, TimeProfile{});
  DeliveryConfig lossy = config_with_rate(req.max_bit_rate_bps);
  lossy.loss_rate = 0.05;
  lossy.prebuffer_s = 0.1;
  lossy.max_buffer_ahead_s = 0.1;
  const PlayoutReport report = simulate_playout(v, 120.0, lossy);
  EXPECT_GT(report.late_blocks, 0u);
}

TEST(Playout, TargetLossRateIsAbsorbedByPrebuffer) {
  // At the [Ste 90] loss target (0.003) and peak-rate reservation, a 1 s
  // prebuffer keeps the playout clean.
  const Variant v = tv_video();
  const StreamRequirements req = map_variant(v, 120.0, TimeProfile{});
  DeliveryConfig config = config_with_rate(req.max_bit_rate_bps);
  config.loss_rate = req.loss_rate;
  const PlayoutReport report = simulate_playout(v, 120.0, config);
  EXPECT_TRUE(report.clean()) << report.total_stall_s;
}

TEST(Playout, ReportTimelineIsMonotone) {
  const Variant v = tv_video();
  const StreamRequirements req = map_variant(v, 60.0, TimeProfile{});
  const PlayoutReport report =
      simulate_playout(v, 60.0, config_with_rate(req.avg_bit_rate_bps));
  ASSERT_EQ(report.cumulative_stall.size(), report.blocks);
  for (std::size_t i = 1; i < report.cumulative_stall.size(); ++i) {
    EXPECT_GE(report.cumulative_stall[i], report.cumulative_stall[i - 1]);
  }
  EXPECT_DOUBLE_EQ(report.cumulative_stall.back(), report.total_stall_s);
}

TEST(Playout, DegenerateInputsYieldEmptyReport) {
  const Variant v = tv_video();
  EXPECT_EQ(simulate_playout(v, 60.0, DeliveryConfig{}).blocks, 0u);  // zero rate
  Variant text = make_text_variant("t", Language::kEnglish, CodingFormat::kPlainText, 1'000, "s");
  EXPECT_EQ(simulate_playout(text, 60.0, config_with_rate(1'000'000)).blocks, 0u);
}

TEST(Sync, ParallelCleanStreamsStayInSync) {
  const Variant v = tv_video();
  const Variant a = cd_audio();
  const StreamRequirements vreq = map_variant(v, 120.0, TimeProfile{});
  const StreamRequirements areq = map_variant(a, 120.0, TimeProfile{});
  const PlayoutReport video = simulate_playout(v, 120.0, config_with_rate(vreq.max_bit_rate_bps));
  const PlayoutReport audio = simulate_playout(a, 120.0, config_with_rate(areq.max_bit_rate_bps));
  EXPECT_LT(max_sync_skew(video, audio), kLipSyncSkewS);
}

TEST(Sync, UnderReservedVideoBreaksLipSync) {
  // Video stalls while audio keeps flowing: skew exceeds the 80 ms lip-sync
  // tolerance — the condition the [Lam 94] synchronisation component (and
  // the adaptation procedure) exists to handle.
  const Variant v = tv_video();
  const Variant a = cd_audio();
  const StreamRequirements vreq = map_variant(v, 120.0, TimeProfile{});
  const StreamRequirements areq = map_variant(a, 120.0, TimeProfile{});
  const PlayoutReport video =
      simulate_playout(v, 120.0, config_with_rate(vreq.avg_bit_rate_bps * 8 / 10));
  const PlayoutReport audio = simulate_playout(a, 120.0, config_with_rate(areq.max_bit_rate_bps));
  EXPECT_GT(max_sync_skew(video, audio), kLipSyncSkewS);
}

}  // namespace
}  // namespace qosnp
