#include "util/money.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace qosnp {
namespace {

using namespace money_literals;

TEST(Money, Constructors) {
  EXPECT_EQ(Money::dollars(3).as_micros(), 3'000'000);
  EXPECT_EQ(Money::cents(250).as_micros(), 2'500'000);
  EXPECT_EQ(Money::micros(42).as_micros(), 42);
  EXPECT_EQ((5_usd).as_micros(), 5'000'000);
  EXPECT_EQ((75_cents).as_micros(), 750'000);
}

TEST(Money, FromDoubleRounds) {
  EXPECT_EQ(Money::from_double(1.25).as_micros(), 1'250'000);
  EXPECT_EQ(Money::from_double(0.0000004).as_micros(), 0);
  EXPECT_EQ(Money::from_double(0.0000006).as_micros(), 1);
  EXPECT_EQ(Money::from_double(-2.5).as_micros(), -2'500'000);
}

TEST(Money, Arithmetic) {
  const Money a = Money::dollars(4);
  const Money b = Money::cents(150);
  EXPECT_EQ((a + b).as_micros(), 5'500'000);
  EXPECT_EQ((a - b).as_micros(), 2'500'000);
  EXPECT_EQ((-b).as_micros(), -1'500'000);
  EXPECT_EQ((a * 3).as_micros(), 12'000'000);
  EXPECT_EQ((3 * a).as_micros(), 12'000'000);
  Money c = a;
  c += b;
  EXPECT_EQ(c.as_micros(), 5'500'000);
  c -= a;
  EXPECT_EQ(c, b);
}

TEST(Money, ScaledRounds) {
  EXPECT_EQ(Money::dollars(10).scaled(0.5).as_micros(), 5'000'000);
  EXPECT_EQ(Money::micros(3).scaled(0.5).as_micros(), 2);  // llround(1.5) == 2
  EXPECT_EQ(Money::dollars(1).scaled(0.0).as_micros(), 0);
}

TEST(Money, Comparisons) {
  EXPECT_LT(Money::dollars(1), Money::dollars(2));
  EXPECT_LE(Money::dollars(2), Money::dollars(2));
  EXPECT_GT(Money::cents(101), Money::dollars(1));
  EXPECT_EQ(Money::cents(100), Money::dollars(1));
  EXPECT_TRUE(Money{}.is_zero());
  EXPECT_TRUE((Money::dollars(-1)).is_negative());
  EXPECT_FALSE(Money::dollars(1).is_negative());
}

TEST(Money, ToStringTwoDecimals) {
  EXPECT_EQ(Money::dollars(6).to_string(), "$6.00");
  EXPECT_EQ(Money::cents(450).to_string(), "$4.50");
  EXPECT_EQ(Money::cents(5).to_string(), "$0.05");
  EXPECT_EQ((-Money::cents(250)).to_string(), "-$2.50");
}

TEST(Money, ToStringSubCent) {
  EXPECT_EQ(Money::micros(1'234'500).to_string(), "$1.2345");
  EXPECT_EQ(Money::micros(500).to_string(), "$0.0005");
}

TEST(Money, StreamOperator) {
  std::ostringstream os;
  os << Money::cents(125);
  EXPECT_EQ(os.str(), "$1.25");
}

TEST(Money, ParseBasics) {
  EXPECT_EQ(Money::parse("12.34"), Money::cents(1234));
  EXPECT_EQ(Money::parse("$12.34"), Money::cents(1234));
  EXPECT_EQ(Money::parse("  $5"), Money::dollars(5));
  EXPECT_EQ(Money::parse("-0.005"), Money::micros(-5'000));
  EXPECT_EQ(Money::parse("+3.5"), Money::cents(350));
}

TEST(Money, ParseMalformedIsZero) {
  EXPECT_TRUE(Money::parse("").is_zero());
  EXPECT_TRUE(Money::parse("abc").is_zero());
  EXPECT_TRUE(Money::parse("$").is_zero());
  EXPECT_TRUE(Money::parse("-").is_zero());
}

TEST(Money, ParseRoundTripsToString) {
  for (const std::int64_t cents : {0LL, 1LL, 99LL, 100LL, 12345LL, 600LL}) {
    const Money m = Money::cents(cents);
    EXPECT_EQ(Money::parse(m.to_string()), m) << m.to_string();
  }
}

TEST(Money, ParseRoundTripsMicroPrecision) {
  for (const std::int64_t micros : {1LL, 123LL, 59'523LL, 1'595'231LL, 999'999LL}) {
    const Money m = Money::micros(micros);
    EXPECT_EQ(Money::parse(m.to_string()), m) << m.to_string();
  }
}

}  // namespace
}  // namespace qosnp
