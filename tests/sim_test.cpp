#include "sim/experiment.hpp"
#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

namespace qosnp {
namespace {

TEST(EventQueue, OrdersByTime) {
  EventQueue queue;
  std::vector<int> order;
  queue.schedule_at(3.0, [&] { order.push_back(3); });
  queue.schedule_at(1.0, [&] { order.push_back(1); });
  queue.schedule_at(2.0, [&] { order.push_back(2); });
  queue.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(queue.now(), 3.0);
}

TEST(EventQueue, EqualTimesFireInScheduleOrder) {
  EventQueue queue;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    queue.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  queue.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, ScheduleInIsRelative) {
  EventQueue queue;
  double fired_at = -1.0;
  queue.schedule_at(10.0, [&] {
    queue.schedule_in(5.0, [&] { fired_at = queue.now(); });
  });
  queue.run_all();
  EXPECT_DOUBLE_EQ(fired_at, 15.0);
}

TEST(EventQueue, PastTimesClampToNow) {
  EventQueue queue;
  double fired_at = -1.0;
  queue.schedule_at(10.0, [&] {
    queue.schedule_at(2.0, [&] { fired_at = queue.now(); });
  });
  queue.run_all();
  EXPECT_DOUBLE_EQ(fired_at, 10.0);
}

TEST(EventQueue, RunUntilStopsAtDeadline) {
  EventQueue queue;
  int fired = 0;
  queue.schedule_at(1.0, [&] { ++fired; });
  queue.schedule_at(5.0, [&] { ++fired; });
  queue.run_until(3.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(queue.now(), 3.0);
  EXPECT_EQ(queue.pending(), 1u);
}

ExperimentConfig small_config() {
  ExperimentConfig config;
  config.corpus.num_documents = 10;
  config.corpus.seed = 3;
  config.num_clients = 4;
  config.arrival_rate_per_s = 0.05;
  config.sim_duration_s = 600.0;
  config.seed = 11;
  return config;
}

TEST(Experiment, RunsAndCountsArrivals) {
  const ExperimentResult result = run_experiment(small_config());
  EXPECT_GT(result.metrics.arrivals, 10u);
  std::size_t total = 0;
  for (std::size_t i = 0; i < result.metrics.by_status.size(); ++i) {
    total += result.metrics.by_status[i];
  }
  EXPECT_EQ(total, result.metrics.arrivals);
  EXPECT_EQ(result.strategy, "smart");
}

TEST(Experiment, DeterministicForSeed) {
  const ExperimentResult a = run_experiment(small_config());
  const ExperimentResult b = run_experiment(small_config());
  EXPECT_EQ(a.metrics.arrivals, b.metrics.arrivals);
  EXPECT_EQ(a.metrics.by_status, b.metrics.by_status);
  EXPECT_EQ(a.metrics.completed, b.metrics.completed);
  EXPECT_EQ(a.metrics.revenue, b.metrics.revenue);
}

TEST(Experiment, CompletionsAndRevenueAccrue) {
  ExperimentConfig config = small_config();
  config.watch_fraction = 1.0;
  const ExperimentResult result = run_experiment(config);
  EXPECT_GT(result.metrics.completed, 0u);
  EXPECT_GT(result.metrics.revenue, Money{});
  EXPECT_GE(result.metrics.confirmed, result.metrics.completed);
}

TEST(Experiment, HighLoadBlocksMore) {
  ExperimentConfig light = small_config();
  light.arrival_rate_per_s = 0.02;
  ExperimentConfig heavy = small_config();
  heavy.arrival_rate_per_s = 1.0;
  heavy.backbone_bps = 40'000'000;
  light.backbone_bps = 40'000'000;
  const double light_blocking = run_experiment(light).metrics.blocking_probability();
  const double heavy_blocking = run_experiment(heavy).metrics.blocking_probability();
  EXPECT_GE(heavy_blocking, light_blocking);
  EXPECT_GT(heavy_blocking, 0.0);
}

TEST(Experiment, CongestionTriggersAdaptations) {
  ExperimentConfig config = small_config();
  config.arrival_rate_per_s = 0.2;
  config.congestion_rate_per_s = 0.05;
  config.congestion_severity = 0.8;
  const ExperimentResult result = run_experiment(config);
  EXPECT_GT(result.metrics.violations, 0u);
  EXPECT_GT(result.metrics.adaptations + result.metrics.failed_adaptations, 0u);
}

TEST(Experiment, AdaptationDisabledAbortsInstead) {
  ExperimentConfig config = small_config();
  config.arrival_rate_per_s = 0.2;
  config.congestion_rate_per_s = 0.05;
  config.congestion_severity = 0.8;
  config.adaptation_enabled = false;
  const ExperimentResult result = run_experiment(config);
  EXPECT_EQ(result.metrics.adaptations, 0u);
  if (result.metrics.violations > 0) {
    EXPECT_GT(result.metrics.aborted, 0u);
  }
}

TEST(Experiment, ServerFailuresAreSurvivable) {
  ExperimentConfig config = small_config();
  config.arrival_rate_per_s = 0.2;
  config.server_failure_rate_per_s = 0.01;
  config.server_repair_s = 60.0;
  const ExperimentResult result = run_experiment(config);
  // The run finishes and still completes sessions.
  EXPECT_GT(result.metrics.completed, 0u);
}

TEST(Experiment, AllStrategiesRun) {
  for (const Strategy s : {Strategy::kSmart, Strategy::kBasic, Strategy::kCostOnly,
                           Strategy::kQoSOnly}) {
    ExperimentConfig config = small_config();
    config.strategy = s;
    const ExperimentResult result = run_experiment(config);
    EXPECT_GT(result.metrics.arrivals, 0u) << to_string(s);
    EXPECT_EQ(result.strategy, to_string(s));
  }
}

TEST(Experiment, SmartServesAtLeastAsManyAsBasic) {
  ExperimentConfig config = small_config();
  config.arrival_rate_per_s = 0.5;
  config.backbone_bps = 60'000'000;
  config.strategy = Strategy::kSmart;
  const double smart_rate = run_experiment(config).metrics.service_rate();
  config.strategy = Strategy::kBasic;
  const double basic_rate = run_experiment(config).metrics.service_rate();
  EXPECT_GE(smart_rate, basic_rate);
}

TEST(Experiment, LimitedClientsProduceLocalAndCompatibilityFailures) {
  ExperimentConfig config = small_config();
  config.limited_client_fraction = 1.0;
  config.profiles = {[] {
    UserProfile p = default_user_profile();
    // Colour floor: a grey-screen limited client fails locally.
    p.mm.video->worst = VideoQoS{ColorDepth::kColor, 10, 320};
    return p;
  }()};
  const ExperimentResult result = run_experiment(config);
  EXPECT_GT(result.metrics.count(NegotiationStatus::kFailedWithLocalOffer), 0u);
}

TEST(Experiment, ChoicePeriodTimeoutsAreCounted) {
  // Users think longer than the choice period allows: sessions abort and
  // their resources return (Step 6 of the paper).
  ExperimentConfig config = small_config();
  UserProfile slowpoke = default_user_profile();
  slowpoke.mm.time.choice_period_s = 1.0;
  config.profiles = {slowpoke};
  config.confirm_delay_s = 5.0;  // beyond the 1 s choice period
  const ExperimentResult result = run_experiment(config);
  EXPECT_GT(result.metrics.confirm_timeouts, 0u);
  EXPECT_EQ(result.metrics.completed, 0u);
}

TEST(Experiment, ConfirmationProbabilityDrivesRejections) {
  ExperimentConfig config = small_config();
  config.confirm_probability = 0.0;
  const ExperimentResult result = run_experiment(config);
  EXPECT_EQ(result.metrics.completed, 0u);
  EXPECT_GT(result.metrics.rejected_by_user, 0u);
}

TEST(Experiment, DualBackboneServesAtLeastAsWell) {
  ExperimentConfig single = small_config();
  single.arrival_rate_per_s = 0.4;
  single.backbone_bps = 40'000'000;
  ExperimentConfig dual = single;
  dual.dual_backbone = true;
  const double single_rate = run_experiment(single).metrics.service_rate();
  const double dual_rate = run_experiment(dual).metrics.service_rate();
  EXPECT_GE(dual_rate, single_rate);
}

TEST(Experiment, PlayoutSamplingReportsCleanStreamsAtReservedRates) {
  ExperimentConfig config = small_config();
  config.sample_playout = true;
  const ExperimentResult result = run_experiment(config);
  EXPECT_GT(result.metrics.playout_sampled_streams, 0u);
  // Peak-rate reservations play cleanly (E13's behavioural result).
  EXPECT_DOUBLE_EQ(result.metrics.playout_stall_rate(), 0.0)
      << result.metrics.playout_stalled_streams << " of "
      << result.metrics.playout_sampled_streams << " streams stalled";
}

TEST(Experiment, RenegotiationEventsFire) {
  ExperimentConfig config = small_config();
  config.arrival_rate_per_s = 0.2;
  config.renegotiation_rate_per_s = 0.1;
  const ExperimentResult result = run_experiment(config);
  EXPECT_GT(result.metrics.renegotiations + result.metrics.failed_renegotiations, 0u);
  // The run still completes sessions despite mid-session profile changes.
  EXPECT_GT(result.metrics.completed, 0u);
}

TEST(Experiment, MetricsSummaryMentionsKeyFigures) {
  const ExperimentResult result = run_experiment(small_config());
  const std::string s = result.metrics.summary();
  EXPECT_NE(s.find("arrivals="), std::string::npos);
  EXPECT_NE(s.find("revenue="), std::string::npos);
}

// Property sweep: accounting identities hold for any seed.
class ExperimentInvariants : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExperimentInvariants, AccountingIdentitiesHold) {
  ExperimentConfig config = small_config();
  config.arrival_rate_per_s = 0.3;
  config.backbone_bps = 50'000'000;
  config.congestion_rate_per_s = 0.02;
  config.congestion_severity = 0.7;
  config.seed = GetParam();
  const SimMetrics m = run_experiment(config).metrics;
  // Every arrival got exactly one status.
  std::size_t total = 0;
  for (const std::size_t count : m.by_status) total += count;
  EXPECT_EQ(total, m.arrivals);
  // Sessions opened = committed outcomes; lifecycle events never exceed them.
  const std::size_t committed = m.count(NegotiationStatus::kSucceeded) +
                                m.count(NegotiationStatus::kFailedWithOffer);
  EXPECT_LE(m.confirmed + m.confirm_timeouts + m.rejected_by_user, committed);
  EXPECT_LE(m.completed, m.confirmed);
  // Rates are probabilities.
  for (const double rate : {m.service_rate(), m.satisfaction(), m.blocking_probability(),
                            m.adaptation_success_rate(), m.mean_utilization()}) {
    EXPECT_GE(rate, 0.0);
    EXPECT_LE(rate, 1.0);
  }
  // Adaptation attempts match recorded violations' handling.
  EXPECT_LE(m.adaptations + m.failed_adaptations, m.violations);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExperimentInvariants,
                         ::testing::Values(1u, 7u, 21u, 99u, 12345u));

TEST(Experiment, StandardProfileMixIsValid) {
  const auto mix = standard_profile_mix();
  ASSERT_EQ(mix.size(), 3u);
  for (const auto& p : mix) {
    EXPECT_TRUE(validate(p).empty()) << p.name;
  }
  EXPECT_LT(mix[2].mm.cost.max_cost, mix[0].mm.cost.max_cost);  // thrifty < demanding
}

}  // namespace
}  // namespace qosnp
