// Concurrency suite for the shard router (run under tsan by the sanitizer
// presets): a 4-shard federation hammered by 8 client threads submitting a
// mix of single-shard and cross-shard documents through the router at once.
// Afterwards every opened session is completed and the global invariants
// must hold exactly: the qosnp_shard_* balance law, zero reservations on
// every shard's farm and transport, and consistent accounting — the
// concurrent cross-shard walks leaked nothing and raced nothing.
#include "shard/sharded_service.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "document/corpus.hpp"
#include "shard/sharded_client.hpp"
#include "test_system.hpp"
#include "util/rng.hpp"

namespace qosnp {
namespace {

using testing::TestSystem;

constexpr int kShards = 4;
constexpr int kThreads = 8;
constexpr int kPerThread = 24;

std::vector<ShardSpec> four_shard_specs(int num_clients) {
  std::vector<ShardSpec> specs(kShards);
  for (int k = 0; k < kShards; ++k) {
    MediaServerConfig server;
    server.id = "shard-server-" + std::to_string(k);
    server.node = "server-node-" + std::to_string(k);
    server.disk_bandwidth_bps = 10'000'000'000;
    server.max_sessions = 100'000;
    specs[static_cast<std::size_t>(k)].servers.push_back(std::move(server));
    // Every shard's topology carries all client nodes and all four server
    // nodes; only its own server node is registered to it.
    specs[static_cast<std::size_t>(k)].topology =
        Topology::dumbbell(num_clients, kShards, 1'000'000'000, 10'000'000'000);
  }
  return specs;
}

/// A document whose video lives on shard `k` and whose audio+text live on
/// shard `(k+1) % kShards` — guaranteed cross-shard on every commit.
MultimediaDocument cross_document(int k) {
  const std::string id = "cross-" + std::to_string(k);
  const ServerId video_server = "shard-server-" + std::to_string(k);
  const ServerId other_server = "shard-server-" + std::to_string((k + 1) % kShards);
  MultimediaDocument doc;
  doc.id = id;
  doc.title = "Cross-shard " + id;
  doc.copyright_cost = Money::cents(10);
  const double duration = 60.0;

  Monomedia video;
  video.id = id + "/video";
  video.kind = MediaKind::kVideo;
  video.duration_s = duration;
  video.variants = {make_video_variant(id + "/video/hi", VideoQoS{ColorDepth::kColor, 25, 640},
                                       CodingFormat::kMPEG1, duration, video_server)};
  doc.monomedia.push_back(std::move(video));

  Monomedia audio;
  audio.id = id + "/audio";
  audio.kind = MediaKind::kAudio;
  audio.duration_s = duration;
  audio.variants = {make_audio_variant(id + "/audio/cd", AudioQuality::kCD, CodingFormat::kPCM,
                                       duration, other_server)};
  doc.monomedia.push_back(std::move(audio));

  Monomedia text;
  text.id = id + "/text";
  text.kind = MediaKind::kText;
  text.variants = {make_text_variant(id + "/text/en", Language::kEnglish,
                                     CodingFormat::kPlainText, 8'000, other_server)};
  doc.monomedia.push_back(std::move(text));
  return doc;
}

TEST(ShardConcurrency, MixedLoadThroughTheRouterDrainsBalanced) {
  ShardedService sharded(four_shard_specs(kThreads));
  // Single-shard documents spread over all four shards' servers...
  CorpusConfig corpus;
  corpus.seed = 23;
  corpus.num_documents = 8;
  corpus.min_duration_s = 30.0;
  corpus.max_duration_s = 90.0;
  corpus.servers.clear();
  for (int k = 0; k < kShards; ++k) corpus.servers.push_back("shard-server-" + std::to_string(k));
  for (auto& doc : generate_corpus(corpus)) {
    ASSERT_TRUE(sharded.add_document(std::move(doc)).empty());
  }
  // ...plus one guaranteed-cross-shard document per shard pair.
  for (int k = 0; k < kShards; ++k) {
    ASSERT_TRUE(sharded.add_document(cross_document(k)).empty());
  }
  const std::vector<DocumentId> docs = [&] {
    std::vector<DocumentId> all;
    for (std::size_t k = 0; k < sharded.shard_count(); ++k) {
      for (const DocumentId& id : sharded.catalog(k).list()) all.push_back(id);
    }
    return all;
  }();
  ASSERT_EQ(docs.size(), 12u);
  sharded.start();

  std::vector<ClientMachine> clients;
  for (int i = 0; i < kThreads; ++i) {
    ClientMachine c;
    c.name = "client-" + std::to_string(i);
    c.node = c.name;
    c.screen = ScreenSpec{1920, 1080, ColorDepth::kSuperColor};
    c.decoders = {CodingFormat::kMPEG1, CodingFormat::kMPEG2,     CodingFormat::kMJPEG,
                  CodingFormat::kPCM,   CodingFormat::kADPCM,     CodingFormat::kMPEGAudio,
                  CodingFormat::kJPEG,  CodingFormat::kPlainText, CodingFormat::kGIF};
    c.max_audio = AudioQuality::kCD;
    clients.push_back(std::move(c));
  }

  std::mutex mu;
  std::vector<SessionId> opened;
  std::atomic<int> succeeded{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ShardedClient client(sharded);
      Rng rng(0xc0ffee + static_cast<std::uint64_t>(t));
      for (int i = 0; i < kPerThread; ++i) {
        NegotiationRequest req;
        req.id = static_cast<std::uint64_t>(t * 1000 + i);
        req.client = clients[static_cast<std::size_t>(t)];
        req.document = docs[rng.below(docs.size())];
        req.profile = TestSystem::tolerant_profile();
        NegotiationResult result = client.submit(req);
        if (result.session_id != 0) {
          ++succeeded;
          std::lock_guard<std::mutex> lock(mu);
          opened.push_back(result.session_id);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_GT(succeeded.load(), 0);
  for (SessionId id : opened) sharded.sessions().complete(id);
  sharded.stop();

  const ShardMetrics& metrics = sharded.shard_metrics();
  EXPECT_EQ(metrics.requests->value(), static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_TRUE(metrics.balanced());
  // Cross-shard documents were in the mix, so the federation actually
  // crossed shard boundaries under concurrency.
  std::uint64_t cross_total = 0;
  for (const Counter* c : metrics.cross_commits) cross_total += c->value();
  EXPECT_GT(cross_total, 0u);
  std::uint64_t forwarded_total = 0;
  for (const Counter* c : metrics.forwarded) forwarded_total += c->value();
  EXPECT_GT(forwarded_total, 0u);
  EXPECT_TRUE(sharded.drained());
}

TEST(ShardConcurrency, ConcurrentCrossShardCompletionsRaceCleanly) {
  // Open and complete cross-shard sessions from many threads at once: the
  // release path (tagged flow ids, per-shard farms) must tolerate the same
  // concurrency as the reserve path.
  ShardedService sharded(four_shard_specs(kThreads));
  for (int k = 0; k < kShards; ++k) {
    ASSERT_TRUE(sharded.add_document(cross_document(k)).empty());
  }
  sharded.start();

  std::vector<ClientMachine> clients;
  for (int i = 0; i < kThreads; ++i) {
    ClientMachine c;
    c.name = "client-" + std::to_string(i);
    c.node = c.name;
    c.screen = ScreenSpec{1920, 1080, ColorDepth::kSuperColor};
    c.decoders = {CodingFormat::kMPEG1, CodingFormat::kPCM, CodingFormat::kPlainText};
    c.max_audio = AudioQuality::kCD;
    clients.push_back(std::move(c));
  }

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ShardedClient client(sharded);
      for (int i = 0; i < 16; ++i) {
        NegotiationRequest req;
        req.id = static_cast<std::uint64_t>(t * 1000 + i);
        req.client = clients[static_cast<std::size_t>(t)];
        req.document = "cross-" + std::to_string((t + i) % kShards);
        req.profile = TestSystem::tolerant_profile();
        NegotiationResult result = client.submit(req);
        if (result.session_id != 0) {
          sharded.sessions().complete(result.session_id);  // complete immediately, racing
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  sharded.stop();
  EXPECT_TRUE(sharded.shard_metrics().balanced());
  EXPECT_TRUE(sharded.drained());
}

}  // namespace
}  // namespace qosnp
