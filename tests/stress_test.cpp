// Randomised stress: drive the full stack (negotiation, confirmation,
// playout, adaptation, renegotiation, congestion, server failure/recovery,
// catalog churn) with random operations and check the global invariants
// after every step:
//   * conservation — on every link and server, 0 <= reserved <= capacity;
//   * no leaks — when every session has finished, nothing stays reserved;
//   * session states only move forward (no resurrection).
#include <gtest/gtest.h>

#include <atomic>
#include <map>

#include "core/report.hpp"
#include "fault/fault_injector.hpp"
#include "session/session.hpp"
#include "sim/experiment.hpp"
#include "test_system.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace qosnp {
namespace {

using testing::TestSystem;

class StressRun {
 public:
  explicit StressRun(std::uint64_t seed)
      : rng_(seed), manager_(sys_.catalog, sys_.farm, *sys_.transport), sessions_(manager_) {
    // Extra documents so negotiations vary.
    CorpusConfig corpus;
    corpus.num_documents = 6;
    corpus.seed = seed;
    corpus.servers = {"server-a", "server-b"};
    for (auto& doc : generate_corpus(corpus)) sys_.catalog.add(std::move(doc));
    doc_ids_ = sys_.catalog.list();
    profiles_ = standard_profile_mix();
  }

  void step() {
    now_ += rng_.uniform(0.1, 5.0);
    switch (rng_.below(9)) {
      case 0:
      case 1: negotiate(); break;
      case 2: confirm_or_reject(); break;
      case 3: advance(); break;
      case 4: adapt(); break;
      case 5: renegotiate(); break;
      case 6: toggle_congestion(); break;
      case 7: toggle_server(); break;
      case 8: finish_one(); break;
    }
    check_invariants();
  }

  void drain() {
    // Finish everything and verify no reservation leaks.
    for (auto& [id, _] : states_) {
      sessions_.abort(id, "drain");
    }
    for (std::size_t i = 0; i < sys_.transport->topology().link_count(); ++i) {
      sys_.transport->restore_link(i);
    }
    EXPECT_EQ(sys_.transport->active_flows(), 0u);
    for (const auto& server : sys_.farm.list()) {
      EXPECT_EQ(sys_.farm.find(server)->usage().reserved_bps, 0) << server;
      EXPECT_EQ(sys_.farm.find(server)->usage().sessions, 0) << server;
    }
  }

 private:
  void negotiate() {
    const DocumentId& doc = doc_ids_[rng_.below(doc_ids_.size())];
    const UserProfile& profile = profiles_[rng_.below(profiles_.size())];
    NegotiationResult outcome = manager_.negotiate(make_negotiation_request(sys_.client, doc, profile));
    // The report renderer must handle every outcome without crashing.
    EXPECT_FALSE(render_information_window(outcome).empty());
    if (outcome.has_commitment()) {
      auto opened = sessions_.open(sys_.client, profile, std::move(outcome), now_);
      ASSERT_TRUE(opened.ok());
      states_[opened.value()] = SessionState::kPendingConfirmation;
    }
  }

  void confirm_or_reject() {
    for (auto& [id, state] : states_) {
      if (state != SessionState::kPendingConfirmation) continue;
      if (rng_.chance(0.8)) {
        auto ok = sessions_.confirm(id, now_);
        state = ok.ok() ? SessionState::kPlaying : SessionState::kAborted;
      } else {
        sessions_.reject(id);
        state = SessionState::kAborted;
      }
      return;
    }
  }

  void advance() {
    for (auto& [id, state] : states_) {
      if (state != SessionState::kPlaying) continue;
      sessions_.advance(id, rng_.uniform(1.0, 60.0));
      auto view = sessions_.snapshot(id);
      if (view && view->state == SessionState::kCompleted) state = SessionState::kCompleted;
      return;
    }
  }

  void adapt() {
    for (auto& [id, state] : states_) {
      if (state != SessionState::kPlaying) continue;
      sessions_.adapt(id, now_);
      sync_state(id, state);
      return;
    }
  }

  void renegotiate() {
    for (auto& [id, state] : states_) {
      if (state != SessionState::kPlaying) continue;
      const UserProfile& profile = profiles_[rng_.below(profiles_.size())];
      sessions_.renegotiate(id, profile, now_);  // either way the session survives
      return;
    }
  }

  void toggle_congestion() {
    const std::size_t link = rng_.below(sys_.transport->topology().link_count());
    if (rng_.chance(0.5)) {
      const auto victims = sys_.transport->degrade_link(link, rng_.uniform(0.3, 0.95));
      for (FlowId flow : victims) {
        for (SessionId id : sessions_.sessions_using_flow(flow)) {
          sessions_.adapt(id, now_);
          auto it = states_.find(id);
          if (it != states_.end()) sync_state(id, it->second);
        }
      }
    } else {
      sys_.transport->restore_link(link);
    }
  }

  void toggle_server() {
    const auto servers = sys_.farm.list();
    MediaServer* server = sys_.farm.find(servers[rng_.below(servers.size())]);
    if (server->failed()) {
      server->recover();
    } else if (rng_.chance(0.3)) {
      const auto affected = sessions_.sessions_on_server(server->id());
      server->fail();
      for (SessionId id : affected) {
        sessions_.adapt(id, now_);
        auto it = states_.find(id);
        if (it != states_.end()) sync_state(id, it->second);
      }
    }
  }

  void finish_one() {
    for (auto& [id, state] : states_) {
      if (state == SessionState::kPlaying) {
        sessions_.complete(id);
        state = SessionState::kCompleted;
        return;
      }
    }
  }

  void sync_state(SessionId id, SessionState& state) {
    auto view = sessions_.snapshot(id);
    if (view) state = view->state;
  }

  void check_invariants() {
    for (std::size_t i = 0; i < sys_.transport->topology().link_count(); ++i) {
      const LinkUsage usage = sys_.transport->link_usage(i);
      EXPECT_GE(usage.reserved_bps, 0) << "link " << i;
      EXPECT_LE(usage.reserved_bps, usage.capacity_bps) << "link " << i;
    }
    for (const auto& id : sys_.farm.list()) {
      const ServerUsage usage = sys_.farm.find(id)->usage();
      EXPECT_GE(usage.reserved_bps, 0) << id;
      EXPECT_LE(usage.reserved_bps, usage.disk_bandwidth_bps) << id;
      EXPECT_GE(usage.sessions, 0) << id;
      EXPECT_LE(usage.sessions, usage.max_sessions) << id;
    }
    // Finished sessions stay finished.
    for (const auto& [id, state] : states_) {
      auto view = sessions_.snapshot(id);
      ASSERT_TRUE(view.has_value());
      if (state == SessionState::kCompleted) {
        EXPECT_EQ(view->state, SessionState::kCompleted);
      }
      if (state == SessionState::kAborted) {
        EXPECT_EQ(view->state, SessionState::kAborted);
      }
    }
  }

  TestSystem sys_;
  Rng rng_;
  QoSManager manager_;
  SessionManager sessions_;
  std::vector<DocumentId> doc_ids_;
  std::vector<UserProfile> profiles_;
  std::map<SessionId, SessionState> states_;
  double now_ = 0.0;
};

class StressSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StressSweep, InvariantsHoldUnderRandomOperations) {
  StressRun run(GetParam());
  for (int i = 0; i < 400; ++i) {
    run.step();
    if (::testing::Test::HasFatalFailure()) return;
  }
  run.drain();
}

INSTANTIATE_TEST_SUITE_P(Seeds, StressSweep, ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u));

TEST(FaultStress, ConcurrentCommitsUnderFaultsNeverLeak) {
  // Hammer a faulty system from the shared thread pool: probabilistic
  // refusals on servers and routes, retrying committers in every worker.
  // Invariants: no crash, nothing over-reserved while running, and once all
  // commitments are dropped nothing stays reserved — on the real components
  // and on the decorators' admitted/released ledgers alike.
  TestSystem sys(/*access_bps=*/20'000'000, /*backbone_bps=*/30'000'000,
                 /*server_bps=*/25'000'000, /*server_sessions=*/8);
  FaultPlan plan;
  plan.seed = 2024;
  plan.server_defaults.transient_failure_p = 0.25;
  plan.server_defaults.flaky_release_p = 0.25;
  plan.transport_defaults.transient_failure_p = 0.15;
  FaultyServerFarm faulty_farm(sys.farm, plan);
  FaultyTransportProvider faulty_transport(*sys.transport, plan);

  const UserProfile profile = TestSystem::tolerant_profile();
  auto doc = sys.catalog.find("article");
  auto feasible = compatible_variants(doc, sys.client, profile.mm);
  ASSERT_TRUE(feasible.ok());
  OfferList list = enumerate_offers(feasible.value(), profile.mm, CostModel{});

  std::atomic<int> successes{0};
  {
    ThreadPool pool(8);
    std::vector<std::future<void>> futures;
    for (int t = 0; t < 64; ++t) {
      futures.push_back(pool.submit([&, t] {
        RetryPolicy retry;
        retry.max_attempts = 3;
        retry.seed = 1000u + static_cast<std::uint64_t>(t);
        ResourceCommitter committer(faulty_farm, faulty_transport, retry);
        auto c = committer.commit(sys.client, list.offers[t % list.offers.size()]);
        if (c.ok()) successes.fetch_add(1);
      }));
    }
    for (auto& f : futures) f.get();
  }
  EXPECT_GT(successes.load(), 0);
  EXPECT_EQ(sys.transport->active_flows(), 0u);
  for (const auto& id : sys.farm.list()) {
    EXPECT_EQ(sys.farm.find(id)->usage().reserved_bps, 0) << id;
    EXPECT_EQ(sys.farm.find(id)->usage().sessions, 0) << id;
  }
  const FaultStats farm_stats = faulty_farm.stats();
  EXPECT_EQ(farm_stats.admitted, farm_stats.released);
  const FaultStats net_stats = faulty_transport.stats();
  EXPECT_EQ(net_stats.admitted, net_stats.released);
}

TEST(FaultStress, SequentialFaultedRunIsSeedStable) {
  // The same plan and the same request order must produce the same outcome
  // pattern and the same decorator ledgers, run twice.
  const UserProfile profile = TestSystem::tolerant_profile();
  auto run = [&] {
    TestSystem sys(/*access_bps=*/20'000'000, /*backbone_bps=*/30'000'000,
                   /*server_bps=*/25'000'000, /*server_sessions=*/8);
    FaultPlan plan;
    plan.seed = 777;
    plan.server_defaults.transient_failure_p = 0.25;
    plan.transport_defaults.transient_failure_p = 0.15;
    FaultyServerFarm faulty_farm(sys.farm, plan);
    FaultyTransportProvider faulty_transport(*sys.transport, plan);
    auto doc = sys.catalog.find("article");
    auto feasible = compatible_variants(doc, sys.client, profile.mm);
    EXPECT_TRUE(feasible.ok());
    OfferList list = enumerate_offers(feasible.value(), profile.mm, CostModel{});
    RetryPolicy retry;
    retry.max_attempts = 3;
    ResourceCommitter committer(faulty_farm, faulty_transport, retry);
    std::vector<bool> pattern;
    for (int t = 0; t < 48; ++t) {
      auto c = committer.commit(sys.client, list.offers[t % list.offers.size()]);
      pattern.push_back(c.ok());  // commitment (if any) releases right away
    }
    const FaultStats farm_stats = faulty_farm.stats();
    EXPECT_EQ(farm_stats.admitted, farm_stats.released);
    return std::tuple{pattern, committer.stats().attempts, committer.stats().retries,
                      committer.stats().transient_failures, farm_stats.injected_refusals,
                      faulty_transport.stats().injected_refusals};
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace qosnp
