// Concurrency tests for TransportService reservation accounting: many
// threads race reserve/release over a shared bottleneck link while a
// sampler asserts the per-link ledgers stay inside [0, capacity]. The
// budget must never go negative (a lost release) and never leak (a lost
// reserve rollback); admission must never oversubscribe a link no matter
// how the threads interleave.
#include "net/transport.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "util/rng.hpp"

namespace qosnp {
namespace {

StreamRequirements guaranteed(std::int64_t bps) {
  StreamRequirements req;
  req.max_bit_rate_bps = bps;
  req.avg_bit_rate_bps = bps;
  req.guarantee = GuaranteeClass::kGuaranteed;
  return req;
}

TEST(TransportRace, TwoThreadReserveReleaseNeverCorruptsBudgets) {
  // Dumbbell with one client and one server: every flow crosses the same
  // backbone link, the worst case for the ledger.
  TransportService transport(Topology::dumbbell(1, 1, 500'000'000, 100'000'000));
  constexpr int kIterations = 2'000;

  std::atomic<bool> stop{false};
  std::atomic<int> reserve_failures{0};
  auto hammer = [&](std::uint64_t seed) {
    Rng rng(seed);
    for (int i = 0; i < kIterations; ++i) {
      auto flow = transport.reserve("client-0", "server-node-0",
                                    guaranteed(rng.between(1'000'000, 20'000'000)));
      if (!flow.ok()) {
        ++reserve_failures;
        continue;
      }
      if (rng.chance(0.5)) std::this_thread::yield();
      EXPECT_TRUE(transport.release(flow.value()));
    }
  };

  std::thread sampler([&] {
    while (!stop.load(std::memory_order_acquire)) {
      for (std::size_t l = 0; l < transport.topology().link_count(); ++l) {
        const LinkUsage u = transport.link_usage(l);
        EXPECT_GE(u.reserved_bps, 0) << "link " << l << " went negative";
        EXPECT_LE(u.reserved_bps, u.capacity_bps) << "link " << l << " oversubscribed";
      }
      std::this_thread::yield();
    }
  });

  std::thread a(hammer, 101), b(hammer, 202);
  a.join();
  b.join();
  stop.store(true, std::memory_order_release);
  sampler.join();

  // Drain invariant: everything reserved was released, the recomputed
  // ledger matches the incremental one, nothing leaked.
  EXPECT_EQ(transport.active_flows(), 0u);
  EXPECT_EQ(transport.total_reserved_bps(), 0);
  EXPECT_TRUE(transport.accounting_consistent());
}

TEST(TransportRace, ContendedAdmissionNeverDoubleCommitsTheLinkBudget) {
  // The backbone fits exactly 4 flows of 10 Mbps; two threads race to admit
  // 50 each and hold them. However the interleaving goes, at most 4 may win.
  constexpr std::int64_t kFlowBps = 10'000'000;
  TransportService transport(Topology::dumbbell(2, 1, 1'000'000'000, 4 * kFlowBps));

  std::vector<FlowId> admitted[2];
  auto grab = [&](int t) {
    const NodeId client = "client-" + std::to_string(t);
    for (int i = 0; i < 50; ++i) {
      auto flow = transport.reserve(client, "server-node-0", guaranteed(kFlowBps));
      if (flow.ok()) admitted[t].push_back(flow.value());
    }
  };
  std::thread a(grab, 0), b(grab, 1);
  a.join();
  b.join();

  EXPECT_EQ(admitted[0].size() + admitted[1].size(), 4u);
  EXPECT_TRUE(transport.accounting_consistent());

  // Release everything from opposite threads (release must be as safe as
  // reserve) and check the budget returns to zero, not below.
  std::thread ra([&] {
    for (FlowId id : admitted[1]) EXPECT_TRUE(transport.release(id));
  });
  std::thread rb([&] {
    for (FlowId id : admitted[0]) EXPECT_TRUE(transport.release(id));
  });
  ra.join();
  rb.join();
  EXPECT_EQ(transport.active_flows(), 0u);
  EXPECT_EQ(transport.total_reserved_bps(), 0);
  EXPECT_TRUE(transport.accounting_consistent());
}

TEST(TransportRace, DoubleReleaseFromRacingThreadsIsCountedOnce) {
  TransportService transport(Topology::dumbbell(1, 1, 100'000'000, 100'000'000));
  for (int round = 0; round < 200; ++round) {
    auto flow = transport.reserve("client-0", "server-node-0", guaranteed(5'000'000));
    ASSERT_TRUE(flow.ok());
    const FlowId id = flow.value();
    std::atomic<int> released{0};
    auto try_release = [&] {
      if (transport.release(id)) released.fetch_add(1);
    };
    std::thread a(try_release), b(try_release);
    a.join();
    b.join();
    // Exactly one of the racing releases may win; a double-subtract would
    // drive the ledger negative (caught by accounting_consistent).
    EXPECT_EQ(released.load(), 1);
  }
  EXPECT_EQ(transport.total_reserved_bps(), 0);
  EXPECT_TRUE(transport.accounting_consistent());
}

}  // namespace
}  // namespace qosnp
