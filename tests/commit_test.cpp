#include "core/commit.hpp"

#include <gtest/gtest.h>

#include "core/classify.hpp"
#include "core/enumerate.hpp"
#include "test_system.hpp"

namespace qosnp {
namespace {

using testing::TestSystem;

OfferList enumerate_for(TestSystem& sys, const UserProfile& profile) {
  auto doc = sys.catalog.find("article");
  auto feasible = compatible_variants(doc, sys.client, profile.mm);
  EXPECT_TRUE(feasible.ok());
  OfferList list = enumerate_offers(feasible.value(), profile.mm, CostModel{});
  classify_offers(list.offers, profile.mm, profile.importance);
  return list;
}

std::int64_t total_server_reserved(TestSystem& sys) {
  std::int64_t total = 0;
  for (const auto& id : sys.farm.list()) total += sys.farm.find(id)->usage().reserved_bps;
  return total;
}

TEST(Commit, ReservesOneStreamAndFlowPerComponent) {
  TestSystem sys;
  const UserProfile profile = TestSystem::tolerant_profile();
  OfferList list = enumerate_for(sys, profile);
  ResourceCommitter committer(sys.farm, *sys.transport);
  auto commitment = committer.commit(sys.client, list.offers[0]);
  ASSERT_TRUE(commitment.ok()) << commitment.error();
  EXPECT_EQ(commitment.value().stream_count(), 3u);
  EXPECT_EQ(commitment.value().flow_count(), 3u);
  EXPECT_EQ(sys.transport->active_flows(), 3u);
  EXPECT_GT(total_server_reserved(sys), 0);
}

TEST(Commit, DestructionReleasesEverything) {
  TestSystem sys;
  const UserProfile profile = TestSystem::tolerant_profile();
  OfferList list = enumerate_for(sys, profile);
  {
    ResourceCommitter committer(sys.farm, *sys.transport);
    auto commitment = committer.commit(sys.client, list.offers[0]);
    ASSERT_TRUE(commitment.ok());
  }
  EXPECT_EQ(sys.transport->active_flows(), 0u);
  EXPECT_EQ(total_server_reserved(sys), 0);
}

TEST(Commit, ExplicitReleaseWorks) {
  TestSystem sys;
  const UserProfile profile = TestSystem::tolerant_profile();
  OfferList list = enumerate_for(sys, profile);
  ResourceCommitter committer(sys.farm, *sys.transport);
  auto commitment = committer.commit(sys.client, list.offers[0]);
  ASSERT_TRUE(commitment.ok());
  commitment.value().release();
  EXPECT_TRUE(commitment.value().empty());
  EXPECT_EQ(sys.transport->active_flows(), 0u);
  EXPECT_EQ(total_server_reserved(sys), 0);
}

TEST(Commit, FailedServerRollsBackAtomically) {
  TestSystem sys;
  const UserProfile profile = TestSystem::tolerant_profile();
  OfferList list = enumerate_for(sys, profile);
  // Find an offer using both servers, then fail one of them: nothing may
  // remain reserved after the failed commit.
  const SystemOffer* mixed = nullptr;
  for (const SystemOffer& o : list.offers) {
    bool a = false;
    bool b = false;
    for (const auto& c : o.components) {
      a |= c.variant->server == "server-a";
      b |= c.variant->server == "server-b";
    }
    if (a && b) {
      mixed = &o;
      break;
    }
  }
  ASSERT_NE(mixed, nullptr);
  sys.farm.find("server-b")->fail();
  ResourceCommitter committer(sys.farm, *sys.transport);
  auto commitment = committer.commit(sys.client, *mixed);
  EXPECT_FALSE(commitment.ok());
  EXPECT_EQ(sys.transport->active_flows(), 0u);
  EXPECT_EQ(total_server_reserved(sys), 0);
}

TEST(Commit, InsufficientNetworkRollsBackServerStreams) {
  TestSystem sys(/*access_bps=*/100'000);  // starved client access link
  const UserProfile profile = TestSystem::tolerant_profile();
  OfferList list = enumerate_for(sys, profile);
  ResourceCommitter committer(sys.farm, *sys.transport);
  auto commitment = committer.commit(sys.client, list.offers[0]);
  EXPECT_FALSE(commitment.ok());
  EXPECT_EQ(total_server_reserved(sys), 0);
  EXPECT_EQ(sys.transport->active_flows(), 0u);
}

TEST(Commit, UnknownServerFailsCleanly) {
  TestSystem sys;
  const UserProfile profile = TestSystem::tolerant_profile();
  OfferList list = enumerate_for(sys, profile);
  // Point a variant at a server that does not exist.
  MultimediaDocument doc = TestSystem::news_article();
  doc.id = "ghost-doc";
  for (auto& m : doc.monomedia) {
    for (auto& v : m.variants) v.server = "server-ghost";
  }
  sys.catalog.add(doc);
  auto ghost = sys.catalog.find("ghost-doc");
  auto feasible = compatible_variants(ghost, sys.client, profile.mm);
  ASSERT_TRUE(feasible.ok());
  OfferList ghost_list = enumerate_offers(feasible.value(), profile.mm, CostModel{});
  ResourceCommitter committer(sys.farm, *sys.transport);
  auto commitment = committer.commit(sys.client, ghost_list.offers[0]);
  ASSERT_FALSE(commitment.ok());
  EXPECT_EQ(commitment.error().component, "server-ghost");
  EXPECT_NE(commitment.error().describe().find("server-ghost"), std::string::npos);
  EXPECT_FALSE(commitment.error().transient);
}

TEST(Commit, CommitmentIdsAreQueryable) {
  TestSystem sys;
  const UserProfile profile = TestSystem::tolerant_profile();
  OfferList list = enumerate_for(sys, profile);
  ResourceCommitter committer(sys.farm, *sys.transport);
  auto commitment = committer.commit(sys.client, list.offers[0]);
  ASSERT_TRUE(commitment.ok());
  EXPECT_EQ(commitment.value().flow_ids().size(), 3u);
  EXPECT_EQ(commitment.value().stream_ids().size(), 3u);
  for (FlowId flow : commitment.value().flow_ids()) {
    EXPECT_TRUE(sys.transport->flow(flow).has_value());
  }
}

TEST(Commit, ConcurrentCommitsNeverOversubscribe) {
  // Hammer a small system from many threads; invariant: reserved <= capacity
  // on every link and server at all times, and all successful commitments
  // release cleanly.
  TestSystem sys(/*access_bps=*/20'000'000, /*backbone_bps=*/30'000'000,
                 /*server_bps=*/25'000'000, /*server_sessions=*/8);
  const UserProfile profile = TestSystem::tolerant_profile();
  OfferList list = enumerate_for(sys, profile);
  std::atomic<int> successes{0};
  {
    ThreadPool pool(8);
    std::vector<std::future<void>> futures;
    for (int t = 0; t < 64; ++t) {
      futures.push_back(pool.submit([&, t] {
        ResourceCommitter committer(sys.farm, *sys.transport);
        auto c = committer.commit(sys.client, list.offers[t % list.offers.size()]);
        if (c.ok()) successes.fetch_add(1);
      }));
    }
    for (auto& f : futures) f.get();
  }
  EXPECT_EQ(sys.transport->active_flows(), 0u);
  EXPECT_EQ(total_server_reserved(sys), 0);
  EXPECT_GT(successes.load(), 0);
}

}  // namespace
}  // namespace qosnp
