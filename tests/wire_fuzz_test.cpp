// Fuzz-style robustness of the frame decoder and payload codecs: 1000+
// seeded corpora — truncated frames, bit flips anywhere in the stream,
// oversized declared lengths, wrong magic/version/flags, corrupted CRC
// trailers, and pure garbage — every one must resolve to a typed WireError
// or a clean needs-more, never a crash, hang, or out-of-range value (the
// asan/ubsan presets run this suite with the checkers live).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "util/rng.hpp"
#include "wire/codec.hpp"
#include "wire/crc32c.hpp"
#include "wire/frame.hpp"

namespace qosnp {
namespace {

using wire::Bytes;
using wire::FrameType;
using wire::WireErrorCode;

constexpr std::size_t kMaxFrameBytes = 64 * 1024;

bool is_typed(WireErrorCode code) {
  const auto v = static_cast<std::uint16_t>(code);
  return v >= 1 && v <= 12;
}

/// A structurally valid frame with a seeded type and payload. REQUEST and
/// RESULT frames carry *structured* payloads so mutations hit the payload
/// decoders too, not just the framing layer.
Bytes seeded_frame(Rng& rng) {
  const auto type = static_cast<FrameType>(rng.below(wire::kFrameTypeCount));
  Bytes payload;
  switch (type) {
    case FrameType::kRequest: {
      NegotiationRequest request;
      request.id = rng.next_u64();
      request.document = "article";
      request.profile = default_user_profile();
      request.session_class = static_cast<SessionClass>(rng.below(3));
      payload = wire::encode_request_payload(request).value();
      break;
    }
    case FrameType::kResult: {
      NegotiationResult result;
      result.request_id = rng.next_u64();
      result.verdict = static_cast<NegotiationStatus>(rng.below(5));
      result.problems.push_back("seeded problem");
      payload = wire::encode_result_payload(result);
      break;
    }
    case FrameType::kError:
      payload = wire::encode_error_payload(
          {static_cast<WireErrorCode>(1 + rng.below(12)), "seeded detail"});
      break;
    case FrameType::kPing:
    case FrameType::kPong:
      break;
  }
  return wire::encode_frame(type, rng.next_u64(), payload);
}

enum class Mutation : int {
  kTruncate = 0,
  kBitFlip,
  kByteSmash,
  kWrongMagic,
  kWrongVersion,
  kWrongFlags,
  kOversizedLength,
  kBadCrc,
  kGarbage,
  kCount,
};

Bytes mutate(Bytes frame, Mutation mutation, Rng& rng) {
  switch (mutation) {
    case Mutation::kTruncate:
      frame.resize(rng.below(frame.size()));
      break;
    case Mutation::kBitFlip: {
      const std::size_t at = rng.below(frame.size());
      frame[at] ^= static_cast<std::uint8_t>(1u << rng.below(8));
      break;
    }
    case Mutation::kByteSmash: {
      const std::size_t at = rng.below(frame.size());
      const std::size_t len = 1 + rng.below(std::min<std::size_t>(frame.size() - at, 16));
      for (std::size_t i = 0; i < len; ++i) {
        frame[at + i] = static_cast<std::uint8_t>(rng.below(256));
      }
      break;
    }
    case Mutation::kWrongMagic: {
      const std::uint32_t bad = static_cast<std::uint32_t>(rng.next_u64()) | 1u;
      std::memcpy(frame.data(), &bad, 4);
      break;
    }
    case Mutation::kWrongVersion: {
      const std::uint16_t bad = static_cast<std::uint16_t>(2 + rng.below(1000));
      std::memcpy(frame.data() + 4, &bad, 2);
      break;
    }
    case Mutation::kWrongFlags:
      frame[7] = static_cast<std::uint8_t>(1 + rng.below(255));
      break;
    case Mutation::kOversizedLength: {
      // Declare far more payload than the ceiling allows.
      const std::uint32_t huge =
          static_cast<std::uint32_t>(kMaxFrameBytes + 1 + rng.below(1u << 24));
      std::memcpy(frame.data() + 16, &huge, 4);
      break;
    }
    case Mutation::kBadCrc:
      frame[frame.size() - 1 - rng.below(4)] ^= 0xFF;
      break;
    case Mutation::kGarbage: {
      frame.assign(1 + rng.below(512), 0);
      for (auto& b : frame) b = static_cast<std::uint8_t>(rng.below(256));
      break;
    }
    case Mutation::kCount:
      break;
  }
  return frame;
}

/// Feed a (possibly corrupt) byte stream through the full decode path the
/// server runs: framing first, then the typed payload decoder of whatever
/// frames survive. Everything observed must be typed.
void pump(const Bytes& stream, std::size_t chunk) {
  wire::FrameAssembler assembler(kMaxFrameBytes);
  std::size_t offset = 0;
  bool dead = false;
  while (offset < stream.size() && !dead) {
    const std::size_t n = std::min(chunk, stream.size() - offset);
    assembler.feed(stream.data() + offset, n);
    offset += n;
    while (true) {
      wire::FrameAssembler::Next next = assembler.next();
      if (next.error) {
        EXPECT_TRUE(is_typed(next.error->code)) << next.error->to_text();
        EXPECT_TRUE(assembler.poisoned());
        dead = true;  // the server closes here
        break;
      }
      if (!next.frame) break;
      switch (next.frame->type) {
        case FrameType::kRequest: {
          auto decoded = wire::decode_request_payload(next.frame->payload);
          if (!decoded.ok()) { EXPECT_TRUE(is_typed(decoded.error().code)); }
          break;
        }
        case FrameType::kResult: {
          auto decoded = wire::decode_result_payload(next.frame->payload);
          if (!decoded.ok()) { EXPECT_TRUE(is_typed(decoded.error().code)); }
          break;
        }
        case FrameType::kError: {
          auto decoded = wire::decode_error_payload(next.frame->payload);
          if (!decoded.ok()) { EXPECT_TRUE(is_typed(decoded.error().code)); }
          break;
        }
        case FrameType::kPing:
        case FrameType::kPong:
          break;
      }
    }
  }
}

TEST(WireFuzz, MutatedFramesAlwaysResolveToTypedOutcomes) {
  std::size_t corpus = 0;
  for (std::uint64_t seed = 0; seed < 140; ++seed) {
    for (int m = 0; m < static_cast<int>(Mutation::kCount); ++m) {
      Rng rng(seed * 1000003ULL + static_cast<std::uint64_t>(m));
      const Bytes mutated = mutate(seeded_frame(rng), static_cast<Mutation>(m), rng);
      pump(mutated, /*chunk=*/1 + rng.below(256));
      ++corpus;
    }
  }
  EXPECT_GE(corpus, 1000u);
}

TEST(WireFuzz, MutatedFrameFollowedByValidFrameNeverConfusesTheStream) {
  // After a framing error the assembler must stay poisoned; after a clean
  // payload-level error the stream continues. Either way the second frame
  // must never decode into garbage.
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    Rng rng(seed + 31337);
    Bytes stream = mutate(seeded_frame(rng),
                          static_cast<Mutation>(rng.below(
                              static_cast<std::uint64_t>(Mutation::kCount))),
                          rng);
    const Bytes good = seeded_frame(rng);
    stream.insert(stream.end(), good.begin(), good.end());
    pump(stream, 1 + rng.below(64));
  }
}

TEST(WireFuzz, PoisonedAssemblerStaysPoisoned) {
  Rng rng(5);
  Bytes bad = seeded_frame(rng);
  bad[0] ^= 0xFF;  // magic
  wire::FrameAssembler assembler(kMaxFrameBytes);
  assembler.feed(bad.data(), bad.size());
  auto first = assembler.next();
  ASSERT_TRUE(first.error.has_value());
  EXPECT_EQ(first.error->code, WireErrorCode::kBadMagic);
  const Bytes good = seeded_frame(rng);
  assembler.feed(good.data(), good.size());
  auto second = assembler.next();
  EXPECT_FALSE(second.frame.has_value());
  ASSERT_TRUE(second.error.has_value());
  EXPECT_TRUE(assembler.poisoned());
}

TEST(WireFuzz, OneByteAtATimeGarbageNeverHangs) {
  Rng rng(17);
  for (int round = 0; round < 50; ++round) {
    Bytes garbage(1 + rng.below(1024), 0);
    for (auto& b : garbage) b = static_cast<std::uint8_t>(rng.below(256));
    pump(garbage, 1);
  }
}

}  // namespace
}  // namespace qosnp
