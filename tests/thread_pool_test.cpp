#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace qosnp {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([&counter] { counter.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, SizeMatchesRequest) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, ZeroMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, FuturePropagatesExceptions) {
  ThreadPool pool(2);
  auto f = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, WaitIdleDrains) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 64; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 64);
}

TEST(ThreadPool, SharedPoolIsSingleton) {
  EXPECT_EQ(&ThreadPool::shared(), &ThreadPool::shared());
}

TEST(ThreadPool, ShutdownWhileBusyDrainsEveryQueuedTask) {
  // Destroying the pool while tasks are still queued must not drop them:
  // workers drain the whole backlog before exiting.
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 200; ++i) {
      pool.submit([&counter] {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
        counter.fetch_add(1);
      });
    }
    // Leave scope immediately: the destructor races the backlog.
  }
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, ExceptionInTaskDoesNotKillWorkers) {
  ThreadPool pool(2);
  std::atomic<int> succeeded{0};
  std::vector<std::future<void>> throwing;
  for (int i = 0; i < 50; ++i) {
    throwing.push_back(pool.submit([] { throw std::runtime_error("boom"); }));
    pool.submit([&succeeded] { succeeded.fetch_add(1); });
  }
  for (auto& f : throwing) EXPECT_THROW(f.get(), std::runtime_error);
  pool.wait_idle();
  EXPECT_EQ(succeeded.load(), 50);
  // Workers survived all 50 throws: new work still runs to completion.
  auto after = pool.submit([&succeeded] { succeeded.fetch_add(1); });
  after.get();
  EXPECT_EQ(succeeded.load(), 51);
}

TEST(ThreadPool, ConcurrentSubmittersUnderContention) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 1'000;
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&] {
      for (int i = 0; i < kPerProducer; ++i) {
        pool.submit([&counter] { counter.fetch_add(1); });
      }
    });
  }
  for (auto& t : producers) t.join();
  pool.wait_idle();
  EXPECT_EQ(counter.load(), kProducers * kPerProducer);
}

TEST(ThreadPool, WaitIdleFromMultipleThreads) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 128; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  std::thread waiter([&pool] { pool.wait_idle(); });
  pool.wait_idle();
  waiter.join();
  EXPECT_EQ(counter.load(), 128);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  const std::size_t n = 10'000;
  std::vector<std::atomic<int>> hits(n);
  parallel_for(pool, 0, n, [&](std::size_t i) { hits[i].fetch_add(1); }, 1);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  int calls = 0;
  parallel_for(pool, 5, 5, [&](std::size_t) { ++calls; });
  parallel_for(pool, 7, 3, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelFor, SmallRangeRunsSerially) {
  ThreadPool pool(4);
  std::vector<std::size_t> order;
  parallel_for(pool, 0, 10, [&](std::size_t i) { order.push_back(i); }, 256);
  ASSERT_EQ(order.size(), 10u);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(ParallelFor, ComputesCorrectSum) {
  ThreadPool pool(8);
  const std::size_t n = 100'000;
  std::vector<std::int64_t> values(n);
  parallel_for(pool, 0, n, [&](std::size_t i) { values[i] = static_cast<std::int64_t>(i); }, 1);
  const auto sum = std::accumulate(values.begin(), values.end(), std::int64_t{0});
  EXPECT_EQ(sum, static_cast<std::int64_t>(n) * (n - 1) / 2);
}

}  // namespace
}  // namespace qosnp
