#include "core/offer.hpp"

#include <gtest/gtest.h>

#include "core/enumerate.hpp"
#include "test_system.hpp"

namespace qosnp {
namespace {

using testing::TestSystem;

TEST(OfferTypes, StatusAndSnsNames) {
  EXPECT_EQ(to_string(Sns::kDesirable), "DESIRABLE");
  EXPECT_EQ(to_string(Sns::kAcceptable), "ACCEPTABLE");
  EXPECT_EQ(to_string(Sns::kConstraint), "CONSTRAINT");
  EXPECT_EQ(to_string(NegotiationStatus::kSucceeded), "SUCCEEDED");
  EXPECT_EQ(to_string(NegotiationStatus::kFailedWithOffer), "FAILEDWITHOFFER");
  EXPECT_EQ(to_string(NegotiationStatus::kFailedTryLater), "FAILEDTRYLATER");
  EXPECT_EQ(to_string(NegotiationStatus::kFailedWithoutOffer), "FAILEDWITHOUTOFFER");
  EXPECT_EQ(to_string(NegotiationStatus::kFailedWithLocalOffer), "FAILEDWITHLOCALOFFER");
}

OfferList offers_for(TestSystem& sys, const UserProfile& profile) {
  auto doc = sys.catalog.find("article");
  auto feasible = compatible_variants(doc, sys.client, profile.mm);
  EXPECT_TRUE(feasible.ok());
  return enumerate_offers(feasible.value(), profile.mm, CostModel{});
}

TEST(OfferTypes, DescribeListsVariantsAndCost) {
  TestSystem sys;
  OfferList list = offers_for(sys, TestSystem::tolerant_profile());
  ASSERT_FALSE(list.offers.empty());
  const std::string s = list.offers[0].describe();
  EXPECT_NE(s.find("article/video"), std::string::npos);
  EXPECT_NE(s.find('$'), std::string::npos);
}

TEST(OfferTypes, DeriveUserOfferFoldsWeakestAcrossSameKind) {
  // Two video components in one offer: the user offer reports the weakest
  // characteristics of the pair (the honest figure).
  TestSystem sys;
  auto doc = sys.catalog.find("article");
  const Monomedia* video = doc->find_monomedia("article/video");
  ASSERT_NE(video, nullptr);
  const Variant* hi = video->find_variant("article/video/hi");
  const Variant* lo = video->find_variant("article/video/lo");
  ASSERT_NE(hi, nullptr);
  ASSERT_NE(lo, nullptr);

  SystemOffer offer;
  for (const Variant* v : {hi, lo}) {
    OfferComponent c;
    c.monomedia = video;
    c.variant = v;
    c.requirements = map_variant(*v, video->duration_s, TimeProfile{});
    offer.components.push_back(c);
  }
  offer.cost.total = Money::dollars(2);
  const UserOffer user = derive_user_offer(offer);
  ASSERT_TRUE(user.video.has_value());
  EXPECT_EQ(user.video->color, ColorDepth::kBlackWhite);  // weakest colour
  EXPECT_EQ(user.video->frame_rate_fps, 10);              // weakest rate
  EXPECT_EQ(user.video->resolution, 320);                 // weakest resolution
}

TEST(OfferTypes, DeriveUserOfferCoversAllMedia) {
  TestSystem sys;
  OfferList list = offers_for(sys, TestSystem::tolerant_profile());
  for (const SystemOffer& offer : list.offers) {
    const UserOffer user = derive_user_offer(offer);
    EXPECT_TRUE(user.video.has_value());
    EXPECT_TRUE(user.audio.has_value());
    EXPECT_TRUE(user.text.has_value());
    EXPECT_FALSE(user.image.has_value());  // the article has no image
    EXPECT_EQ(user.cost, offer.total_cost());
  }
}

TEST(OfferTypes, OfferListKeepsDocumentAlive) {
  TestSystem sys;
  OfferList list = offers_for(sys, TestSystem::tolerant_profile());
  sys.catalog.remove("article");
  // Components still point at valid variants via the shared document.
  ASSERT_FALSE(list.offers.empty());
  EXPECT_FALSE(list.offers[0].components[0].variant->id.empty());
  EXPECT_EQ(list.document->id, "article");
}

}  // namespace
}  // namespace qosnp
