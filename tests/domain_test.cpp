// Multi-domain hierarchical negotiation ([Haf 95b] extension).
#include "domain/multi_domain.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "core/qos_manager.hpp"
#include "test_system.hpp"

namespace qosnp {
namespace {

using testing::TestSystem;

StreamRequirements stream(std::int64_t bps) {
  StreamRequirements req;
  req.max_bit_rate_bps = bps;
  req.avg_bit_rate_bps = bps;
  req.guarantee = GuaranteeClass::kGuaranteed;
  req.duration_s = 60.0;
  return req;
}

CostTable flat_tariff(Money per_second) {
  return CostTable{{{1'000'000'000, per_second}}};
}

/// client-domain -- {cheap-transit | pricey-transit} -- server-domain.
std::unique_ptr<MultiDomainTransport> diamond(MultiDomainTransport::RoutePolicy policy,
                                              std::int64_t cheap_capacity = 20'000'000) {
  std::vector<DomainConfig> domains = {
      {"client-domain", 1'000'000'000, flat_tariff(Money::micros(100)), 1.0},
      {"cheap-transit", cheap_capacity, flat_tariff(Money::micros(500)), 5.0},
      {"pricey-transit", 1'000'000'000, flat_tariff(Money::micros(5'000)), 5.0},
      {"server-domain", 1'000'000'000, flat_tariff(Money::micros(100)), 1.0},
  };
  auto net = std::make_unique<MultiDomainTransport>(std::move(domains), policy);
  EXPECT_TRUE(net->add_peering("client-domain", "cheap-transit").ok());
  EXPECT_TRUE(net->add_peering("client-domain", "pricey-transit").ok());
  EXPECT_TRUE(net->add_peering("cheap-transit", "server-domain").ok());
  EXPECT_TRUE(net->add_peering("pricey-transit", "server-domain").ok());
  EXPECT_TRUE(net->attach("client-0", "client-domain").ok());
  EXPECT_TRUE(net->attach("server-node-0", "server-domain").ok());
  EXPECT_TRUE(net->attach("server-node-1", "server-domain").ok());
  return net;
}

TEST(MultiDomain, ConfigurationValidation) {
  MultiDomainTransport net({{"a", 1'000, flat_tariff(Money::micros(1)), 1.0}});
  EXPECT_FALSE(net.add_peering("a", "ghost").ok());
  EXPECT_FALSE(net.add_peering("a", "a").ok());
  EXPECT_FALSE(net.attach("n", "ghost").ok());
  EXPECT_FALSE(net.reserve("n", "m", stream(100)).ok());  // unattached nodes
}

TEST(MultiDomain, CheapestPolicyPrefersCheapTransit) {
  auto netp = diamond(MultiDomainTransport::RoutePolicy::kCheapest);
  MultiDomainTransport& net = *netp;
  auto flow = net.reserve("client-0", "server-node-0", stream(5'000'000));
  ASSERT_TRUE(flow.ok()) << flow.error();
  const auto route = net.route_of(flow.value());
  ASSERT_EQ(route.size(), 3u);
  EXPECT_EQ(route[1], "cheap-transit");
}

TEST(MultiDomain, OverflowsToPriceyTransitWhenCheapIsFull) {
  auto netp =
      diamond(MultiDomainTransport::RoutePolicy::kCheapest, /*cheap_capacity=*/8'000'000);
  MultiDomainTransport& net = *netp;
  auto f1 = net.reserve("client-0", "server-node-0", stream(5'000'000));
  ASSERT_TRUE(f1.ok());
  EXPECT_EQ(net.route_of(f1.value())[1], "cheap-transit");
  auto f2 = net.reserve("client-0", "server-node-0", stream(5'000'000));
  ASSERT_TRUE(f2.ok());
  EXPECT_EQ(net.route_of(f2.value())[1], "pricey-transit");
  // Releasing the first flow frees the cheap transit again.
  net.release(f1.value());
  auto f3 = net.reserve("client-0", "server-node-0", stream(5'000'000));
  ASSERT_TRUE(f3.ok());
  EXPECT_EQ(net.route_of(f3.value())[1], "cheap-transit");
}

TEST(MultiDomain, QuoteSumsSegmentTariffs) {
  auto netp = diamond(MultiDomainTransport::RoutePolicy::kCheapest);
  MultiDomainTransport& net = *netp;
  auto quote = net.quote_per_second("client-0", "server-node-0", stream(5'000'000));
  ASSERT_TRUE(quote.ok());
  // client (100) + cheap transit (500) + server (100) micro-$/s.
  EXPECT_EQ(quote.value(), Money::micros(700));
}

TEST(MultiDomain, QuoteRisesWhenTrafficShiftsToPriceyRoute) {
  auto netp =
      diamond(MultiDomainTransport::RoutePolicy::kCheapest, /*cheap_capacity=*/8'000'000);
  MultiDomainTransport& net = *netp;
  auto before = net.quote_per_second("client-0", "server-node-0", stream(5'000'000));
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(net.reserve("client-0", "server-node-0", stream(5'000'000)).ok());
  auto after = net.quote_per_second("client-0", "server-node-0", stream(5'000'000));
  ASSERT_TRUE(after.ok());
  EXPECT_GT(after.value(), before.value());
}

TEST(MultiDomain, FewestDomainsPolicyIgnoresTariffs) {
  // Both transits are one domain, so under kFewestDomains either may be
  // picked; make the cheap one *longer* (client->extra->cheap->server) so
  // the policies diverge deterministically.
  std::vector<DomainConfig> domains = {
      {"client-domain", 1'000'000'000, flat_tariff(Money::micros(100)), 1.0},
      {"extra", 1'000'000'000, flat_tariff(Money::micros(50)), 1.0},
      {"cheap-transit", 1'000'000'000, flat_tariff(Money::micros(50)), 5.0},
      {"pricey-transit", 1'000'000'000, flat_tariff(Money::micros(5'000)), 5.0},
      {"server-domain", 1'000'000'000, flat_tariff(Money::micros(100)), 1.0},
  };
  for (const auto policy : {MultiDomainTransport::RoutePolicy::kCheapest,
                            MultiDomainTransport::RoutePolicy::kFewestDomains}) {
    MultiDomainTransport net(domains, policy);
    ASSERT_TRUE(net.add_peering("client-domain", "extra").ok());
    ASSERT_TRUE(net.add_peering("extra", "cheap-transit").ok());
    ASSERT_TRUE(net.add_peering("cheap-transit", "server-domain").ok());
    ASSERT_TRUE(net.add_peering("client-domain", "pricey-transit").ok());
    ASSERT_TRUE(net.add_peering("pricey-transit", "server-domain").ok());
    ASSERT_TRUE(net.attach("client-0", "client-domain").ok());
    ASSERT_TRUE(net.attach("server-node-0", "server-domain").ok());
    auto flow = net.reserve("client-0", "server-node-0", stream(1'000'000));
    ASSERT_TRUE(flow.ok());
    const auto route = net.route_of(flow.value());
    if (policy == MultiDomainTransport::RoutePolicy::kCheapest) {
      EXPECT_EQ(route.size(), 4u);  // the cheap detour
    } else {
      EXPECT_EQ(route.size(), 3u);  // the short pricey route
    }
  }
}

TEST(MultiDomain, ConservationAndRelease) {
  auto netp = diamond(MultiDomainTransport::RoutePolicy::kCheapest);
  MultiDomainTransport& net = *netp;
  auto flow = net.reserve("client-0", "server-node-0", stream(5'000'000));
  ASSERT_TRUE(flow.ok());
  EXPECT_EQ(net.usage("client-domain").reserved_bps, 5'000'000);
  EXPECT_EQ(net.usage("cheap-transit").reserved_bps, 5'000'000);
  EXPECT_EQ(net.usage("pricey-transit").reserved_bps, 0);
  EXPECT_TRUE(net.release(flow.value()));
  EXPECT_FALSE(net.release(flow.value()));
  EXPECT_EQ(net.usage("client-domain").reserved_bps, 0);
  EXPECT_EQ(net.usage("cheap-transit").reserved_bps, 0);
  EXPECT_EQ(net.active_flows(), 0u);
}

TEST(MultiDomain, DegradeDomainReportsVictims) {
  auto netp = diamond(MultiDomainTransport::RoutePolicy::kCheapest);
  MultiDomainTransport& net = *netp;
  auto f1 = net.reserve("client-0", "server-node-0", stream(8'000'000));
  auto f2 = net.reserve("client-0", "server-node-0", stream(8'000'000));
  ASSERT_TRUE(f1.ok());
  ASSERT_TRUE(f2.ok());
  const auto victims = net.degrade_domain("cheap-transit", 0.5);  // 20M -> 10M
  ASSERT_EQ(victims.size(), 1u);
  EXPECT_EQ(victims[0], f2.value());
  net.restore_domain("cheap-transit");
  EXPECT_EQ(net.usage("cheap-transit").effective_capacity_bps, 20'000'000);
}

TEST(MultiDomain, FullNegotiationRunsAcrossDomains) {
  // The whole QoS negotiation procedure on top of the multi-domain
  // transport: same catalog/servers/client as the integration fixture.
  TestSystem sys;  // we only borrow catalog, farm, client
  auto netp = diamond(MultiDomainTransport::RoutePolicy::kCheapest,
                                     /*cheap_capacity=*/200'000'000);
  MultiDomainTransport& net = *netp;
  QoSManager manager(sys.catalog, sys.farm, net);
  NegotiationResult outcome =
      manager.negotiate(make_negotiation_request(sys.client, "article", TestSystem::tolerant_profile()));
  EXPECT_EQ(outcome.verdict, NegotiationStatus::kSucceeded);
  ASSERT_TRUE(outcome.has_commitment());
  EXPECT_GT(net.active_flows(), 0u);
  outcome.commitment.release();
  EXPECT_EQ(net.active_flows(), 0u);
}

}  // namespace
}  // namespace qosnp
