// Reproducibility and conservation of the concurrent service.
//
// Determinism: every request's random draws come from request_rng(seed,
// index), so a single-worker single-client closed loop is a fully
// deterministic function of (seed, trace) — two fresh systems must produce
// the identical outcome mix and shed count.
//
// Conservation (N workers): exact outcomes depend on interleaving, but the
// ledgers may not — while the run is live every server/link reservation must
// stay inside [0, capacity], and at drain admits - releases = live sessions
// and every budget returns to zero.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "service/load_gen.hpp"
#include "test_service.hpp"

namespace qosnp {
namespace {

using testing::ServiceSystem;
using testing::TestSystem;

UserProfile stingy_profile() {
  // Feasible on resources, unacceptable on cost: ends FAILEDWITHOFFER, so
  // the per-request accept_degraded draw decides whether a session opens.
  UserProfile p = TestSystem::tolerant_profile();
  p.name = "stingy";
  p.mm.cost.max_cost = Money::cents(1);
  return p;
}

LoadConfig replay_config(const ServiceSystem& sys) {
  LoadConfig load;
  load.mode = ArrivalMode::kClosed;
  load.concurrency = 1;
  load.requests = 120;
  load.seed = 7;
  load.accept_degraded_p = 0.5;
  load.clients = {sys.clients.front()};
  load.documents = {"article"};
  load.profiles = {TestSystem::tolerant_profile(), stingy_profile()};
  return load;
}

struct ReplayOutcome {
  std::array<std::size_t, 5> by_status{};
  std::size_t shed = 0;
  std::size_t opened = 0;
  std::size_t completed = 0;
};

ReplayOutcome run_replay() {
  ServiceSystem sys(/*num_clients=*/1);
  ServiceConfig config;
  config.workers = 1;
  config.queue_capacity = 8;
  NegotiationService service(*sys.manager, *sys.sessions, config);
  service.start();
  const LoadReport report = run_load(service, replay_config(sys));
  service.stop();
  EXPECT_EQ(report.live_sessions, 0u);
  EXPECT_TRUE(sys.drained());
  ReplayOutcome out;
  out.by_status = report.service.by_status;
  out.shed = report.service.shed_queue_full + report.service.shed_deadline;
  out.opened = report.service.sessions_opened;
  out.completed = report.completed_sessions;
  return out;
}

TEST(ServiceReplay, SameSeedAndTraceGiveIdenticalOutcomeMix) {
  const ReplayOutcome first = run_replay();
  const ReplayOutcome second = run_replay();
  EXPECT_EQ(first.by_status, second.by_status);
  EXPECT_EQ(first.shed, second.shed);
  EXPECT_EQ(first.opened, second.opened);
  EXPECT_EQ(first.completed, second.completed);

  // Sanity: the 50/50 stingy draw actually exercised both verdicts.
  EXPECT_GT(first.by_status[static_cast<std::size_t>(NegotiationStatus::kSucceeded)], 0u);
  EXPECT_GT(first.by_status[static_cast<std::size_t>(NegotiationStatus::kFailedWithOffer)], 0u);
  std::size_t total = 0;
  for (std::size_t n : first.by_status) total += n;
  EXPECT_EQ(total, 120u);
}

TEST(ServiceReplay, DifferentSeedsChangeTheMixButNotTheAccounting) {
  ServiceSystem sys(/*num_clients=*/1);
  ServiceConfig config;
  config.workers = 1;
  NegotiationService service(*sys.manager, *sys.sessions, config);
  service.start();
  LoadConfig load = replay_config(sys);
  load.seed = 999;
  const LoadReport report = run_load(service, load);
  service.stop();
  EXPECT_EQ(report.service.processed + report.service.shed_queue_full, load.requests);
  EXPECT_EQ(report.service.sessions_opened, report.completed_sessions + report.live_sessions);
  EXPECT_TRUE(sys.drained());
}

TEST(ServiceReplay, MultiWorkerRunNeverBreaksConservation) {
  ServiceSystem sys(/*num_clients=*/16);
  ServiceConfig config;
  config.workers = 8;
  config.queue_capacity = 32;
  NegotiationService service(*sys.manager, *sys.sessions, config);
  service.start();

  // Live sampler: while 8 workers commit and the generator completes
  // sessions, every ledger must stay inside [0, capacity].
  std::atomic<bool> stop_sampler{false};
  std::thread sampler([&] {
    while (!stop_sampler.load(std::memory_order_acquire)) {
      for (const ServerId& id : sys.farm.list()) {
        const ServerUsage u = sys.farm.find(id)->usage();
        EXPECT_GE(u.reserved_bps, 0);
        EXPECT_LE(u.reserved_bps, u.effective_bandwidth_bps);
        EXPECT_GE(u.sessions, 0);
        EXPECT_LE(u.sessions, u.max_sessions);
      }
      for (std::size_t l = 0; l < sys.transport->topology().link_count(); ++l) {
        const LinkUsage u = sys.transport->link_usage(l);
        EXPECT_GE(u.reserved_bps, 0);
        EXPECT_LE(u.reserved_bps, u.capacity_bps);
      }
      std::this_thread::yield();
    }
  });

  LoadConfig load;
  load.mode = ArrivalMode::kClosed;
  load.concurrency = 16;
  load.requests = 400;
  load.seed = 42;
  load.hold_ms = 1.0;
  load.accept_degraded_p = 0.5;
  load.clients = sys.clients;
  load.documents = {"article"};
  load.profiles = {TestSystem::tolerant_profile(), stingy_profile()};
  const LoadReport report = run_load(service, load);
  service.stop();
  stop_sampler.store(true, std::memory_order_release);
  sampler.join();

  // Every request resolved exactly once.
  EXPECT_EQ(report.service.submitted, 400u);
  EXPECT_EQ(report.service.processed + report.service.shed_queue_full, 400u);
  // admits - releases = live sessions; the generator completed them all.
  EXPECT_EQ(report.service.sessions_opened, report.completed_sessions + report.live_sessions);
  EXPECT_EQ(report.live_sessions, 0u);
  // Drain: budgets back to zero everywhere, recomputed ledger agrees.
  EXPECT_TRUE(sys.drained());
}

}  // namespace
}  // namespace qosnp
