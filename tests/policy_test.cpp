// Property suite for the class-differentiated admission policy
// (src/policy): 500+ seeded corpora assert the invariants the policy model
// documents —
//   - with the policy disabled, PolicyEngine::negotiate is byte-identical to
//     QoSManager::negotiate (tests/result_signature.hpp), whatever class the
//     request carries;
//   - no same-or-higher-class session is ever preempted for a lower-class
//     request, and best-effort requests never preempt anyone;
//   - a preempted victim's new offer is always a later (worse) entry of its
//     own offer list; a promoted session's new offer is always earlier;
//   - the global per-class conservation laws hold with the policy running
//     inside the population lifecycle.
#include "policy/preemption.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <span>
#include <map>
#include <string>
#include <vector>

#include "document/corpus.hpp"
#include "result_signature.hpp"
#include "session/session.hpp"
#include "sim/population.hpp"
#include "test_service.hpp"

namespace qosnp {
namespace {

using testing::ServiceSystem;
using testing::TestSystem;
using testing::result_signature;

NegotiationRequest class_request(const ClientMachine& client, const DocumentId& document,
                                 SessionClass cls, std::uint64_t id) {
  NegotiationRequest request =
      make_negotiation_request(client, document, TestSystem::tolerant_profile());
  request.id = id;
  request.session_class = cls;
  request.accept_degraded = true;
  return request;
}

constexpr SessionClass kAllClasses[] = {SessionClass::kBestEffort, SessionClass::kStandard,
                                        SessionClass::kPremium};

/// A congested stack: two small servers behind a wide network, so the disk
/// budget is the contended resource. `server_bps` tunes how many article
/// sessions fit before Step 5 starts failing.
ServiceSystem congested_system(std::int64_t server_bps) {
  return ServiceSystem(4, /*access_bps=*/1'000'000'000, /*backbone_bps=*/10'000'000'000,
                       server_bps, /*server_sessions=*/256);
}

/// Admit-and-confirm sessions of alternating classes through `engine` until
/// the stack sheds one (kFailedTryLater); returns the playing session ids.
/// `classes` cycles per admission.
std::vector<SessionId> fill_until_shed(ServiceSystem& sys, PolicyEngine& engine,
                                       std::span<const SessionClass> classes,
                                       std::uint64_t& next_id) {
  std::vector<SessionId> playing;
  for (int i = 0; i < 128; ++i) {
    const SessionClass cls = classes[static_cast<std::size_t>(i) % classes.size()];
    NegotiationRequest request =
        class_request(sys.clients[static_cast<std::size_t>(i) % sys.clients.size()], "article",
                      cls, next_id++);
    NegotiationResult result = engine.negotiate(request);
    if (!result.has_commitment()) return playing;
    auto opened = sys.sessions->open(request.client, request.profile, std::move(result),
                                     /*now_s=*/0.0, cls);
    EXPECT_TRUE(opened.ok()) << opened.error();
    EXPECT_TRUE(sys.sessions->confirm(opened.value(), /*now_s=*/1.0).ok());
    playing.push_back(opened.value());
  }
  ADD_FAILURE() << "fill never saturated the farm (server budget too large?)";
  return playing;
}

void drain_all(ServiceSystem& sys) {
  for (SessionId id : sys.sessions->playing_sessions()) sys.sessions->complete(id);
}

// ---------------------------------------------------------------------------
// Policy-off byte-identity: 100 seeded corpora x 5+ documents x rotating
// session classes = 500+ compared negotiations. Twin systems, as in the
// population differential suite: the engine-side system and the direct-side
// system see identical catalogs and identical pristine resources.
TEST(PolicyOff, ByteIdenticalToDirectNegotiationAcross500SeededCases) {
  std::size_t compared = 0;
  for (std::uint64_t seed = 1; seed <= 100; ++seed) {
    ServiceSystem engine_sys(2);
    ServiceSystem direct_sys(2);
    CorpusConfig corpus;
    corpus.seed = seed;
    corpus.num_documents = 4;
    corpus.min_duration_s = 30.0;
    corpus.max_duration_s = 120.0;
    for (auto& doc : generate_corpus(corpus)) {
      engine_sys.catalog.add(MultimediaDocument{doc});
      direct_sys.catalog.add(std::move(doc));
    }

    PreemptionPolicy disabled;  // defaults: enabled = false
    ASSERT_FALSE(disabled.enabled);
    PolicyEngine engine(*engine_sys.manager, *engine_sys.sessions, disabled);
    engine.set_victim_observer(
        [](const VictimEvent&) { FAIL() << "disabled policy touched a session"; });

    const std::vector<DocumentId> documents = engine_sys.catalog.list();
    std::uint64_t id = 1;
    for (const DocumentId& document : documents) {
      // Rotate the class per case: with the policy off (and the default
      // all-zero headroom) the class field must be observably inert.
      const SessionClass cls = kAllClasses[compared % 3];
      NegotiationResult via_engine =
          engine.negotiate(class_request(engine_sys.clients[0], document, cls, id));
      NegotiationResult direct =
          direct_sys.manager->negotiate(class_request(direct_sys.clients[0], document, cls, id));
      EXPECT_EQ(result_signature(via_engine), result_signature(direct))
          << "seed " << seed << " document " << document;
      via_engine.commitment.release();
      direct.commitment.release();
      ++id;
      ++compared;
    }
    EXPECT_TRUE(engine_sys.drained()) << "seed " << seed;
    EXPECT_TRUE(direct_sys.drained()) << "seed " << seed;
  }
  EXPECT_GE(compared, 500u);
}

// ---------------------------------------------------------------------------
// Preemption invariants over seeded congested farms: victims are strictly
// lower class, degraded victims always land on a later entry of their own
// offer list, released victims carry the policy abort reason, and the
// per-class metrics agree with the observed events.
TEST(Preemption, VictimInvariantsAcrossSeededCongestedFarms) {
  std::size_t total_events = 0;
  std::size_t preempt_admits = 0;
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    ServiceSystem sys = congested_system(20'000'000 + static_cast<std::int64_t>(seed % 5) *
                                                          10'000'000);
    MetricsRegistry metrics;
    PreemptionPolicy policy;
    policy.enabled = true;
    PolicyEngine engine(*sys.manager, *sys.sessions, policy, &metrics);

    // Fill with a seed-dependent mix of best-effort and standard sessions.
    const std::vector<SessionClass> mix =
        seed % 2 == 0
            ? std::vector<SessionClass>{SessionClass::kBestEffort, SessionClass::kStandard}
            : std::vector<SessionClass>{SessionClass::kBestEffort};
    // Observe from the start: the fill's own standard-class admissions may
    // already preempt, and the metrics below count those too.
    std::vector<VictimEvent> events;
    engine.set_victim_observer([&](const VictimEvent& e) { events.push_back(e); });
    std::uint64_t next_id = 1;
    fill_until_shed(sys, engine, mix, next_id);

    // A standard request may only victimise best-effort; a premium request
    // may victimise both lower classes.
    for (const SessionClass requester :
         {SessionClass::kStandard, SessionClass::kPremium}) {
      const std::size_t before = events.size();
      NegotiationResult result =
          engine.negotiate(class_request(sys.clients[0], "article", requester, next_id++));
      for (std::size_t i = before; i < events.size(); ++i) {
        const VictimEvent& e = events[i];
        EXPECT_EQ(e.for_class, requester);
        EXPECT_LT(session_class_rank(e.victim_class), session_class_rank(requester))
            << "seed " << seed << ": victim of class " << to_string(e.victim_class)
            << " preempted for a " << to_string(requester) << " request";
        const auto view = sys.sessions->snapshot(e.session);
        ASSERT_TRUE(view.has_value());
        if (e.action == VictimAction::kDegraded) {
          EXPECT_LT(e.old_offer, e.new_offer)
              << "seed " << seed << ": degraded victim moved to a non-worse offer";
          EXPECT_EQ(view->state, SessionState::kPlaying);
          EXPECT_EQ(view->current_offer, e.new_offer);
          EXPECT_GE(view->stats.preempt_degrades, 1);
        } else {
          EXPECT_EQ(view->state, SessionState::kAborted);
          EXPECT_EQ(view->abort_reason, kPreemptedAbortReason);
        }
      }
      if (result.has_commitment() && events.size() > before) ++preempt_admits;
      result.commitment.release();
    }
    total_events += events.size();

    // The class ordering holds for every event, fill-phase ones included.
    for (const VictimEvent& e : events) {
      EXPECT_LT(session_class_rank(e.victim_class), session_class_rank(e.for_class))
          << "seed " << seed;
    }

    // Metrics agree with the events this engine emitted.
    std::map<std::pair<std::string, std::string>, std::uint64_t> by_class_action;
    for (const VictimEvent& e : events) {
      by_class_action[{std::string(to_string(e.victim_class)),
                       std::string(to_string(e.action))}] += 1;
    }
    for (const SessionClass cls : kAllClasses) {
      for (const VictimAction action : {VictimAction::kDegraded, VictimAction::kReleased}) {
        const MetricLabels labels = {{"class", std::string(to_string(cls))},
                                     {"action", std::string(to_string(action))}};
        const std::pair<std::string, std::string> key = {std::string(to_string(cls)),
                                                         std::string(to_string(action))};
        const std::uint64_t expected = by_class_action[key];
        EXPECT_EQ(metrics.counter("qosnp_class_preempt_victims_total", labels).value(), expected)
            << "seed " << seed;
      }
    }

    engine.set_victim_observer(nullptr);
    drain_all(sys);
    EXPECT_TRUE(sys.drained()) << "seed " << seed;
    EXPECT_EQ(sys.sessions->opened_total(), sys.sessions->released_total()) << "seed " << seed;
  }
  // Congested farms at these budgets must actually exercise the policy.
  EXPECT_GT(total_events, 0u);
  EXPECT_GT(preempt_admits, 0u);
}

TEST(Preemption, BestEffortRequestsNeverPreempt) {
  ServiceSystem sys = congested_system(20'000'000);
  PreemptionPolicy policy;
  policy.enabled = true;
  PolicyEngine engine(*sys.manager, *sys.sessions, policy);
  const std::vector<SessionClass> mix = {SessionClass::kBestEffort};
  std::uint64_t next_id = 1;
  const std::vector<SessionId> playing = fill_until_shed(sys, engine, mix, next_id);

  engine.set_victim_observer(
      [](const VictimEvent&) { FAIL() << "a best-effort request preempted a session"; });
  NegotiationResult result =
      engine.negotiate(class_request(sys.clients[0], "article", SessionClass::kBestEffort,
                                     next_id++));
  EXPECT_FALSE(result.has_commitment());
  EXPECT_EQ(sys.sessions->playing_sessions().size(), playing.size());
  drain_all(sys);
  EXPECT_TRUE(sys.drained());
}

TEST(Preemption, DisabledEngineNeverTouchesSessions) {
  ServiceSystem sys = congested_system(20'000'000);
  PolicyEngine engine(*sys.manager, *sys.sessions);  // policy defaults: disabled
  const std::vector<SessionClass> mix = {SessionClass::kBestEffort};
  std::uint64_t next_id = 1;
  const std::vector<SessionId> playing = fill_until_shed(sys, engine, mix, next_id);

  engine.set_victim_observer(
      [](const VictimEvent&) { FAIL() << "disabled policy preempted a session"; });
  NegotiationResult result = engine.negotiate(
      class_request(sys.clients[0], "article", SessionClass::kPremium, next_id++));
  EXPECT_EQ(result.verdict, NegotiationStatus::kFailedTryLater);
  EXPECT_EQ(engine.run_upgrades(), 0u);
  for (SessionId id : playing) {
    const auto view = sys.sessions->snapshot(id);
    ASSERT_TRUE(view.has_value());
    EXPECT_EQ(view->state, SessionState::kPlaying);
  }
  drain_all(sys);
  EXPECT_TRUE(sys.drained());
}

TEST(Preemption, MakeBeforeBreakLeavesUntouchableVictimsPlaying) {
  // Without allow_release a saturated farm has no room to fit a victim's
  // worse offer *alongside* its current one, so every victim stays playing
  // untouched and no session is ever aborted by the policy.
  ServiceSystem sys = congested_system(20'000'000);
  PreemptionPolicy policy;
  policy.enabled = true;
  policy.allow_release = false;
  PolicyEngine engine(*sys.manager, *sys.sessions, policy);
  const std::vector<SessionClass> mix = {SessionClass::kBestEffort};
  std::uint64_t next_id = 1;
  const std::vector<SessionId> playing = fill_until_shed(sys, engine, mix, next_id);

  std::vector<VictimEvent> events;
  engine.set_victim_observer([&](const VictimEvent& e) { events.push_back(e); });
  NegotiationResult result = engine.negotiate(
      class_request(sys.clients[0], "article", SessionClass::kPremium, next_id++));
  for (const VictimEvent& e : events) {
    EXPECT_EQ(e.action, VictimAction::kDegraded) << "make-before-break released a victim";
  }
  EXPECT_EQ(sys.sessions->playing_sessions().size(), playing.size());
  result.commitment.release();
  drain_all(sys);
  EXPECT_TRUE(sys.drained());
}

// ---------------------------------------------------------------------------
// Upgrades: once capacity frees, the scanner promotes degraded sessions to a
// strictly earlier (better) entry of their own offer list.
TEST(Upgrade, ScannerPromotesToStrictlyBetterOffersWhenCapacityFrees) {
  ServiceSystem sys = congested_system(30'000'000);
  PreemptionPolicy policy;
  policy.enabled = true;
  PolicyEngine engine(*sys.manager, *sys.sessions, policy);
  const std::vector<SessionClass> mix = {SessionClass::kStandard};
  std::uint64_t next_id = 1;
  fill_until_shed(sys, engine, mix, next_id);

  // The late admissions of the fill hold degraded offers (index > 0).
  std::vector<PlayingSession> degraded;
  for (const PlayingSession& p : sys.sessions->playing_sessions_with_class()) {
    if (p.current_offer != 0 && p.current_offer != SIZE_MAX) degraded.push_back(p);
  }
  ASSERT_FALSE(degraded.empty()) << "fill produced no degraded sessions to upgrade";

  // Nothing has freed yet: a scan may promote at most into slack the fill
  // left behind; record state, then free every prime-offer session.
  for (const PlayingSession& p : sys.sessions->playing_sessions_with_class()) {
    if (p.current_offer == 0) sys.sessions->complete(p.id);
  }

  std::vector<UpgradeEvent> events;
  engine.set_upgrade_observer([&](const UpgradeEvent& e) { events.push_back(e); });
  const std::size_t promoted = engine.run_upgrades();
  EXPECT_GT(promoted, 0u) << "freed capacity promoted nothing";
  EXPECT_EQ(promoted, events.size());
  for (const UpgradeEvent& e : events) {
    EXPECT_LT(e.new_offer, e.old_offer) << "an upgrade moved a session to a non-better offer";
    const auto view = sys.sessions->snapshot(e.session);
    ASSERT_TRUE(view.has_value());
    EXPECT_EQ(view->state, SessionState::kPlaying);
    EXPECT_EQ(view->current_offer, e.new_offer);
    EXPECT_GE(view->stats.upgrades, 1);
  }
  drain_all(sys);
  EXPECT_TRUE(sys.drained());
}

// ---------------------------------------------------------------------------
// Headroom-differentiated admission on the farm and transport paths.
TEST(Headroom, ServerAdmissionHoldsBackLowerClasses) {
  MediaServerConfig config;
  config.id = "s";
  config.node = "n";
  config.disk_bandwidth_bps = 100'000'000;
  config.headroom.fraction = {0.5, 0.25, 0.0};  // best_effort, standard, premium
  MediaServer server(config);

  StreamRequirements req;
  req.max_bit_rate_bps = 80'000'000;
  req.avg_bit_rate_bps = 80'000'000;
  req.guarantee = GuaranteeClass::kGuaranteed;

  req.session_class = SessionClass::kBestEffort;  // usable: 50M
  auto refused = server.admit(req);
  ASSERT_FALSE(refused.ok());
  EXPECT_TRUE(refused.error().transient);

  req.session_class = SessionClass::kStandard;  // usable: 75M
  ASSERT_FALSE(server.admit(req).ok());

  req.session_class = SessionClass::kPremium;  // usable: all 100M
  auto admitted = server.admit(req);
  ASSERT_TRUE(admitted.ok());
  EXPECT_TRUE(server.release(admitted.value()));

  req.max_bit_rate_bps = req.avg_bit_rate_bps = 60'000'000;
  req.session_class = SessionClass::kBestEffort;
  EXPECT_FALSE(server.admit(req).ok());
  req.session_class = SessionClass::kStandard;  // 60M fits under 75M
  auto standard_ok = server.admit(req);
  ASSERT_TRUE(standard_ok.ok());
  EXPECT_TRUE(server.release(standard_ok.value()));
}

TEST(Headroom, TransportReservationHoldsBackLowerClasses) {
  TransportService transport(Topology::dumbbell(1, 1, /*access_bps=*/100'000'000,
                                                /*backbone_bps=*/1'000'000'000));
  ClassHeadroom headroom;
  headroom.fraction = {0.5, 0.0, 0.0};
  transport.set_class_headroom(headroom);

  StreamRequirements req;
  req.max_bit_rate_bps = 80'000'000;
  req.avg_bit_rate_bps = 80'000'000;
  req.guarantee = GuaranteeClass::kGuaranteed;

  req.session_class = SessionClass::kBestEffort;  // access usable: 50M
  EXPECT_FALSE(transport.reserve("server-node-0", "client-0", req).ok());

  req.session_class = SessionClass::kPremium;
  auto flow = transport.reserve("server-node-0", "client-0", req);
  ASSERT_TRUE(flow.ok());
  EXPECT_TRUE(transport.release(flow.value()));
  EXPECT_TRUE(transport.accounting_consistent());
  EXPECT_EQ(transport.total_reserved_bps(), 0);
}

TEST(Headroom, InvalidConfigurationsThrow) {
  ClassHeadroom out_of_range;
  out_of_range.fraction = {1.0, 0.0, 0.0};
  EXPECT_THROW(ClassHeadroom::validated(out_of_range), std::invalid_argument);

  ClassHeadroom negative;
  negative.fraction = {-0.1, 0.0, 0.0};
  EXPECT_THROW(ClassHeadroom::validated(negative), std::invalid_argument);

  // Headroom must not *increase* with class rank: a premium request may
  // never see less of the resource than a best-effort one.
  ClassHeadroom inverted;
  inverted.fraction = {0.1, 0.2, 0.0};
  EXPECT_THROW(ClassHeadroom::validated(inverted), std::invalid_argument);

  MediaServerConfig config;
  config.id = "s";
  config.node = "n";
  config.headroom = inverted;
  EXPECT_THROW(MediaServer{config}, std::invalid_argument);

  TransportService transport(Topology::dumbbell(1, 1, 1'000'000, 1'000'000));
  EXPECT_THROW(transport.set_class_headroom(inverted), std::invalid_argument);

  PreemptionPolicy bad;
  bad.max_victims = 0;
  EXPECT_THROW(PreemptionPolicy::validated(bad), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Per-class conservation laws with the policy inside the population
// lifecycle: overloaded mixed-class populations, preemption and upgrade
// scans on, every replicate conserved and fully drained.
TEST(PolicyPopulation, PerClassConservationUnderOverload) {
  ClassCounts combined_best_effort;
  ClassCounts combined_premium;
  std::uint64_t policy_actions = 0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    ServiceSystem sys(3, /*access_bps=*/600'000'000, /*backbone_bps=*/300'000'000,
                      /*server_bps=*/40'000'000, /*server_sessions=*/64);
    PreemptionPolicy policy;
    policy.enabled = true;
    PolicyEngine engine(*sys.manager, *sys.sessions, policy);
    ManagerPopulationBackend backend(*sys.manager, *sys.sessions);
    backend.set_policy(&engine);

    PopulationConfig config;
    config.classes = standard_population();
    for (std::size_t i = 0; i < config.classes.size(); ++i) {
      config.classes[i].machine.node = "client-" + std::to_string(i);
      config.classes[i].arrival_rate_per_s *= 8.0;  // well past sustainable
      config.classes[i].violation_rate_per_s = 0.02;
    }
    config.duration_s = 40.0;
    config.seed = seed;
    config.upgrade_scan_interval_s = 5.0;

    Population population(config, backend, sys.catalog.list());
    const PopulationMetrics metrics = population.run();
    EXPECT_TRUE(metrics.conserved()) << "seed " << seed << '\n' << metrics.signature();
    EXPECT_EQ(sys.sessions->opened_total(), sys.sessions->released_total()) << "seed " << seed;
    EXPECT_TRUE(sys.drained()) << "seed " << seed;

    ASSERT_EQ(metrics.by_class.size(), 3u);
    combined_best_effort.add(metrics.by_class[0]);  // cheap-mobile
    combined_premium.add(metrics.by_class[2]);
    const ClassCounts totals = metrics.totals();
    policy_actions += totals.policy_preempted + totals.policy_degraded + totals.upgrades;
  }
  // The overloaded replicates must actually exercise the policy, and the
  // policy must differentiate: combined premium shed rate strictly below
  // combined best-effort shed rate.
  EXPECT_GT(policy_actions, 0u);
  ASSERT_GT(combined_best_effort.arrivals, 0u);
  ASSERT_GT(combined_premium.arrivals, 0u);
  const double best_effort_shed = static_cast<double>(combined_best_effort.shed) /
                                  static_cast<double>(combined_best_effort.arrivals);
  const double premium_shed = static_cast<double>(combined_premium.shed) /
                              static_cast<double>(combined_premium.arrivals);
  EXPECT_LT(premium_shed, best_effort_shed);
}

}  // namespace
}  // namespace qosnp
