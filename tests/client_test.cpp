#include "client/client_machine.hpp"

#include <gtest/gtest.h>

namespace qosnp {
namespace {

ClientMachine color_client() {
  ClientMachine c;
  c.name = "workstation";
  c.node = "client-0";
  c.screen = ScreenSpec{1280, 1024, ColorDepth::kSuperColor};
  c.decoders = {CodingFormat::kMPEG1, CodingFormat::kMJPEG, CodingFormat::kPCM,
                CodingFormat::kJPEG, CodingFormat::kPlainText};
  c.max_audio = AudioQuality::kCD;
  return c;
}

ClientMachine bw_terminal() {
  ClientMachine c;
  c.name = "terminal";
  c.node = "client-1";
  c.screen = ScreenSpec{640, 480, ColorDepth::kBlackWhite};
  c.decoders = {CodingFormat::kMPEG1, CodingFormat::kPlainText};
  c.max_audio = AudioQuality::kTelephone;
  return c;
}

TEST(ClientMachine, CanDecode) {
  const ClientMachine c = color_client();
  EXPECT_TRUE(c.can_decode(CodingFormat::kMPEG1));
  EXPECT_TRUE(c.can_decode(CodingFormat::kMJPEG));
  EXPECT_FALSE(c.can_decode(CodingFormat::kMPEG2));
}

TEST(ClientMachine, SupportsVideoWithinScreen) {
  const ClientMachine c = color_client();
  EXPECT_TRUE(c.supports(VideoQoS{ColorDepth::kColor, 25, 640}));
  EXPECT_TRUE(c.supports(VideoQoS{ColorDepth::kSuperColor, 60, 1280}));
  EXPECT_FALSE(c.supports(VideoQoS{ColorDepth::kColor, 25, 1920}));  // too wide
}

TEST(ClientMachine, BlackWhiteScreenRejectsColor) {
  // The paper's FAILEDWITHLOCALOFFER example: "the user asks for a color
  // video, while the client machine screen is black&white".
  const ClientMachine c = bw_terminal();
  EXPECT_FALSE(c.supports(VideoQoS{ColorDepth::kColor, 25, 640}));
  EXPECT_TRUE(c.supports(VideoQoS{ColorDepth::kBlackWhite, 25, 640}));
}

TEST(ClientMachine, AudioSupport) {
  const ClientMachine hi = color_client();
  EXPECT_TRUE(hi.supports(AudioQoS{AudioQuality::kCD}));
  const ClientMachine lo = bw_terminal();
  EXPECT_FALSE(lo.supports(AudioQoS{AudioQuality::kCD}));
  EXPECT_TRUE(lo.supports(AudioQoS{AudioQuality::kTelephone}));
  ClientMachine mute = color_client();
  mute.has_audio_out = false;
  EXPECT_FALSE(mute.supports(AudioQoS{AudioQuality::kTelephone}));
}

TEST(ClientMachine, BestQosClipsToHardware) {
  const ClientMachine c = bw_terminal();
  EXPECT_EQ(c.best_video().color, ColorDepth::kBlackWhite);
  EXPECT_EQ(c.best_video().resolution, 640);
  EXPECT_EQ(c.best_audio().quality, AudioQuality::kTelephone);
}

TEST(LocalNegotiation, PassesWhenHardwareSuffices) {
  const ClientMachine c = color_client();
  const MMProfile mm = default_user_profile().mm;
  const LocalCheck check = local_negotiation(c, mm);
  EXPECT_TRUE(check.ok);
  EXPECT_TRUE(check.problems.empty());
}

TEST(LocalNegotiation, FailsWhenWorstExceedsHardware) {
  const ClientMachine c = bw_terminal();
  MMProfile mm = default_user_profile().mm;
  // Worst acceptable = grey video: a black&white screen cannot render it.
  const LocalCheck check = local_negotiation(c, mm);
  EXPECT_FALSE(check.ok);
  EXPECT_FALSE(check.problems.empty());
  // The local offer is clipped to what the terminal can do.
  ASSERT_TRUE(check.local_offer.video.has_value());
  EXPECT_EQ(check.local_offer.video->desired.color, ColorDepth::kBlackWhite);
}

TEST(LocalNegotiation, ClipsDesiredAboveHardwareWithoutFailing) {
  ClientMachine c = color_client();
  c.screen = ScreenSpec{800, 600, ColorDepth::kColor};
  MMProfile mm = default_user_profile().mm;
  mm.video->desired = VideoQoS{ColorDepth::kSuperColor, 60, 1920};  // above hardware
  mm.video->worst = VideoQoS{ColorDepth::kGray, 10, 320};           // within hardware
  const LocalCheck check = local_negotiation(c, mm);
  EXPECT_TRUE(check.ok);
  EXPECT_EQ(check.local_offer.video->desired.color, ColorDepth::kColor);
  EXPECT_EQ(check.local_offer.video->desired.resolution, 800);
}

TEST(LocalNegotiation, ImageAndAudioChecked) {
  const ClientMachine c = bw_terminal();
  MMProfile mm;
  ImageProfile image;
  image.desired = ImageQoS{ColorDepth::kColor, 640};
  image.worst = ImageQoS{ColorDepth::kColor, 320};
  mm.image = image;
  AudioProfile audio;
  audio.desired = AudioQoS{AudioQuality::kCD};
  audio.worst = AudioQoS{AudioQuality::kCD};
  mm.audio = audio;
  const LocalCheck check = local_negotiation(c, mm);
  EXPECT_FALSE(check.ok);
  EXPECT_EQ(check.problems.size(), 2u);  // image colour + audio quality
}

TEST(LocalNegotiation, TextNeedsNoHardware) {
  const ClientMachine c = bw_terminal();
  MMProfile mm;
  mm.text = TextProfile{Language::kFrench, {}};
  const LocalCheck check = local_negotiation(c, mm);
  EXPECT_TRUE(check.ok);
}

}  // namespace
}  // namespace qosnp
