#include "profile/importance.hpp"

#include <gtest/gtest.h>

namespace qosnp {
namespace {

TEST(PiecewiseLinear, ExactAtAnchors) {
  PiecewiseLinear curve{{1, 1.0}, {25, 9.0}, {60, 10.0}};
  EXPECT_DOUBLE_EQ(curve.at(1), 1.0);
  EXPECT_DOUBLE_EQ(curve.at(25), 9.0);
  EXPECT_DOUBLE_EQ(curve.at(60), 10.0);
}

TEST(PiecewiseLinear, LinearBetweenAnchors) {
  PiecewiseLinear curve{{0, 0.0}, {10, 10.0}};
  EXPECT_DOUBLE_EQ(curve.at(5), 5.0);
  EXPECT_DOUBLE_EQ(curve.at(2.5), 2.5);
}

TEST(PiecewiseLinear, PaperInterpolationShape) {
  // "the importance increases (or decreases) linearly from frozen rate to
  // TV rate, and from TV rate to HDTV rate."
  PiecewiseLinear curve{{1, 1.0}, {25, 9.0}, {60, 10.0}};
  const double at13 = curve.at(13);  // midpoint of [1, 25]
  EXPECT_DOUBLE_EQ(at13, 5.0);
  const double at42_5 = curve.at(42.5);  // midpoint of [25, 60]
  EXPECT_DOUBLE_EQ(at42_5, 9.5);
}

TEST(PiecewiseLinear, ClampsOutsideSpan) {
  PiecewiseLinear curve{{10, 2.0}, {20, 4.0}};
  EXPECT_DOUBLE_EQ(curve.at(0), 2.0);
  EXPECT_DOUBLE_EQ(curve.at(100), 4.0);
}

TEST(PiecewiseLinear, SetAnchorOverwrites) {
  PiecewiseLinear curve{{10, 2.0}};
  curve.set_anchor(10, 5.0);
  EXPECT_DOUBLE_EQ(curve.at(10), 5.0);
  EXPECT_EQ(curve.anchor_count(), 1u);
}

TEST(PiecewiseLinear, AnchorsSortRegardlessOfInsertionOrder) {
  PiecewiseLinear curve;
  curve.set_anchor(60, 10.0);
  curve.set_anchor(1, 1.0);
  curve.set_anchor(25, 9.0);
  EXPECT_DOUBLE_EQ(curve.at(13), 5.0);
}

TEST(PiecewiseLinear, EmptyCurveYieldsZero) {
  PiecewiseLinear curve;
  EXPECT_DOUBLE_EQ(curve.at(42), 0.0);
  EXPECT_TRUE(curve.empty());
}

TEST(PiecewiseLinear, ContinuityAtAnchors) {
  PiecewiseLinear curve{{1, 1.0}, {25, 9.0}, {60, 10.0}};
  const double eps = 1e-9;
  EXPECT_NEAR(curve.at(25 - eps), curve.at(25), 1e-6);
  EXPECT_NEAR(curve.at(25 + eps), curve.at(25), 1e-6);
}

// Importance factors of the paper's Sec. 5.2.2 example, setting (1).
ImportanceProfile paper_importance() {
  ImportanceProfile imp;
  imp.video_color = {2.0, 6.0, 9.0, 9.0};  // black&white 2, grey 6, colour 9
  imp.frame_rate = PiecewiseLinear{{15, 5.0}, {25, 9.0}};
  imp.resolution = PiecewiseLinear{{kTvResolution, 9.0}};
  imp.cost_per_dollar = 4.0;
  return imp;
}

TEST(ImportanceProfile, VideoQosImportanceSumsCharacteristics) {
  const ImportanceProfile imp = paper_importance();
  // colour(9) + 25fps(9) + TV-res(9) = 27 — offer4 of the paper.
  EXPECT_DOUBLE_EQ(
      imp.qos_importance(MonomediaQoS{VideoQoS{ColorDepth::kColor, 25, kTvResolution}}), 27.0);
  // black&white(2) + 25fps(9) + TV-res(9) = 20 — offer1.
  EXPECT_DOUBLE_EQ(
      imp.qos_importance(MonomediaQoS{VideoQoS{ColorDepth::kBlackWhite, 25, kTvResolution}}),
      20.0);
}

TEST(ImportanceProfile, CostImportanceIsLinearInCost) {
  const ImportanceProfile imp = paper_importance();
  EXPECT_DOUBLE_EQ(imp.cost_importance(Money::dollars(1)), 4.0);
  EXPECT_DOUBLE_EQ(imp.cost_importance(Money::cents(250)), 10.0);
  EXPECT_DOUBLE_EQ(imp.cost_importance(Money::dollars(5)), 20.0);
  EXPECT_DOUBLE_EQ(imp.cost_importance(Money{}), 0.0);
}

TEST(ImportanceProfile, MediaWeightScalesImportance) {
  ImportanceProfile imp = paper_importance();
  const MonomediaQoS qos{VideoQoS{ColorDepth::kColor, 25, kTvResolution}};
  const double base = imp.qos_importance(qos);
  imp.media_weight[static_cast<std::size_t>(MediaKind::kVideo)] = 2.0;
  EXPECT_DOUBLE_EQ(imp.qos_importance(qos), 2.0 * base);
}

TEST(ImportanceProfile, AudioTextImageImportance) {
  ImportanceProfile imp = ImportanceProfile::defaults();
  EXPECT_DOUBLE_EQ(imp.qos_importance(MonomediaQoS{AudioQoS{AudioQuality::kCD}}), 9.0);
  EXPECT_DOUBLE_EQ(imp.qos_importance(MonomediaQoS{AudioQoS{AudioQuality::kTelephone}}), 4.0);
  EXPECT_DOUBLE_EQ(imp.qos_importance(MonomediaQoS{TextQoS{Language::kFrench}}), 5.0);
  EXPECT_GT(imp.qos_importance(MonomediaQoS{ImageQoS{ColorDepth::kColor, kTvResolution}}), 0.0);
}

TEST(ImportanceProfile, DefaultsPreferBetterQuality) {
  const ImportanceProfile imp = ImportanceProfile::defaults();
  EXPECT_LT(imp.video_color[0], imp.video_color[1]);
  EXPECT_LT(imp.video_color[1], imp.video_color[2]);
  EXPECT_LT(imp.video_color[2], imp.video_color[3]);
  EXPECT_LT(imp.frame_rate.at(kFrozenFrameRate), imp.frame_rate.at(kTvFrameRate));
  EXPECT_LT(imp.frame_rate.at(kTvFrameRate), imp.frame_rate.at(kHdtvFrameRate));
  EXPECT_LT(imp.audio_quality[0], imp.audio_quality[2]);
  EXPECT_GT(imp.cost_per_dollar, 0.0);
}

// Property sweep: interpolation is monotone between increasing anchors.
class InterpolationMonotonicity : public ::testing::TestWithParam<int> {};

TEST_P(InterpolationMonotonicity, FrameRateImportanceNonDecreasing) {
  const ImportanceProfile imp = ImportanceProfile::defaults();
  const int fps = GetParam();
  EXPECT_LE(imp.frame_rate.at(fps), imp.frame_rate.at(fps + 1));
}

INSTANTIATE_TEST_SUITE_P(FrameRates, InterpolationMonotonicity,
                         ::testing::Range(kFrozenFrameRate, kHdtvFrameRate));

}  // namespace
}  // namespace qosnp
