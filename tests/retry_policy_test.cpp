// RetryPolicy unit behaviour: the deterministic backoff schedule, jitter
// bounds, the per-offer deadline, and — most importantly — that the default
// zero-retry configuration reproduces the historical first-refusal-moves-on
// commitment bit for bit.
#include "core/commit.hpp"

#include <gtest/gtest.h>

#include "core/classify.hpp"
#include "core/enumerate.hpp"
#include "fault/fault_injector.hpp"
#include "test_system.hpp"

namespace qosnp {
namespace {

using testing::TestSystem;

OfferList enumerate_for(TestSystem& sys, const UserProfile& profile) {
  auto doc = sys.catalog.find("article");
  auto feasible = compatible_variants(doc, sys.client, profile.mm);
  EXPECT_TRUE(feasible.ok());
  OfferList list = enumerate_offers(feasible.value(), profile.mm, CostModel{});
  classify_offers(list.offers, profile.mm, profile.importance);
  return list;
}

TEST(RetryPolicy, BackoffScheduleIsMonotoneAndCapped) {
  RetryPolicy policy;
  policy.base_backoff_ms = 5.0;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_ms = 200.0;
  double prev = 0.0;
  for (int k = 0; k < 32; ++k) {
    const double b = policy.backoff_ms(k);
    EXPECT_GE(b, prev) << "retry " << k;
    EXPECT_LE(b, policy.max_backoff_ms) << "retry " << k;
    prev = b;
  }
  EXPECT_DOUBLE_EQ(policy.backoff_ms(0), 5.0);
  EXPECT_DOUBLE_EQ(policy.backoff_ms(1), 10.0);
  EXPECT_DOUBLE_EQ(policy.backoff_ms(2), 20.0);
  EXPECT_DOUBLE_EQ(policy.backoff_ms(10), 200.0);  // capped
}

TEST(RetryPolicy, JitterStaysWithinBounds) {
  RetryPolicy policy;
  policy.base_backoff_ms = 8.0;
  policy.backoff_multiplier = 3.0;
  policy.max_backoff_ms = 1'000.0;
  policy.jitter = 0.25;
  Rng rng(42);
  for (int k = 0; k < 8; ++k) {
    const double b = policy.backoff_ms(k);
    for (int draw = 0; draw < 200; ++draw) {
      const double j = policy.jittered_backoff_ms(k, rng);
      EXPECT_GE(j, b * 0.75) << "retry " << k;
      EXPECT_LE(j, b * 1.25) << "retry " << k;
    }
  }
}

TEST(RetryPolicy, ZeroJitterIsExactlyTheSchedule) {
  RetryPolicy policy;
  policy.jitter = 0.0;
  Rng rng(7);
  for (int k = 0; k < 8; ++k) {
    EXPECT_DOUBLE_EQ(policy.jittered_backoff_ms(k, rng), policy.backoff_ms(k));
  }
}

TEST(RetryPolicy, DeadlineCutsTheAttemptLoop) {
  // Every admission is transiently refused, so only the deadline (not the
  // attempt cap) stops the loop: delays 10 + 20 fit the 35 ms budget, the
  // next delay (40) would not.
  TestSystem sys;
  FaultPlan plan;
  plan.server_defaults.transient_failure_p = 1.0;
  FaultyServerFarm faulty(sys.farm, plan);

  RetryPolicy retry;
  retry.max_attempts = 100;
  retry.base_backoff_ms = 10.0;
  retry.backoff_multiplier = 2.0;
  retry.jitter = 0.0;
  retry.deadline_ms = 35.0;

  const UserProfile profile = TestSystem::tolerant_profile();
  OfferList list = enumerate_for(sys, profile);
  ResourceCommitter committer(faulty, *sys.transport, retry);
  auto commitment = committer.commit(sys.client, list.offers[0]);
  ASSERT_FALSE(commitment.ok());
  EXPECT_TRUE(commitment.error().transient);
  EXPECT_EQ(committer.stats().attempts, 3);
  EXPECT_EQ(committer.stats().retries, 2);
  EXPECT_DOUBLE_EQ(committer.stats().backoff_ms, 30.0);
}

TEST(RetryPolicy, ZeroRetryConfigReproducesSingleShotBitForBit) {
  // A max_attempts=1 policy — whatever its backoff parameters — must walk
  // the offers exactly as the historical committer did: same per-offer
  // verdicts, same error messages, same counters, same residual usage.
  const UserProfile profile = TestSystem::tolerant_profile();
  // Starve the system so some offers fail and the walk actually matters.
  TestSystem sys_a(/*access_bps=*/3'000'000, /*backbone_bps=*/3'000'000);
  TestSystem sys_b(/*access_bps=*/3'000'000, /*backbone_bps=*/3'000'000);
  OfferList list_a = enumerate_for(sys_a, profile);
  OfferList list_b = enumerate_for(sys_b, profile);
  ASSERT_EQ(list_a.offers.size(), list_b.offers.size());

  ResourceCommitter plain(sys_a.farm, *sys_a.transport);  // default policy
  RetryPolicy weird;
  weird.max_attempts = 1;  // no retries, whatever else says
  weird.base_backoff_ms = 999.0;
  weird.backoff_multiplier = 17.0;
  weird.jitter = 0.9;
  weird.deadline_ms = 0.001;
  weird.seed = 0xdeadULL;
  ResourceCommitter configured(sys_b.farm, *sys_b.transport, weird);

  for (std::size_t i = 0; i < list_a.offers.size(); ++i) {
    auto a = plain.commit(sys_a.client, list_a.offers[i]);
    auto b = configured.commit(sys_b.client, list_b.offers[i]);
    ASSERT_EQ(a.ok(), b.ok()) << "offer " << i;
    if (a.ok()) {
      EXPECT_EQ(a.value().stream_count(), b.value().stream_count());
      EXPECT_EQ(a.value().flow_count(), b.value().flow_count());
      a.value().release();
      b.value().release();
    } else {
      EXPECT_EQ(a.error().message, b.error().message) << "offer " << i;
      EXPECT_EQ(a.error().transient, b.error().transient) << "offer " << i;
    }
  }
  EXPECT_EQ(plain.stats().attempts, configured.stats().attempts);
  EXPECT_EQ(plain.stats().retries, 0);
  EXPECT_EQ(configured.stats().retries, 0);
  EXPECT_EQ(plain.stats().transient_failures, configured.stats().transient_failures);
  EXPECT_EQ(plain.stats().released_on_failure, configured.stats().released_on_failure);
  EXPECT_DOUBLE_EQ(configured.stats().backoff_ms, 0.0);  // never backed off
  EXPECT_EQ(sys_a.transport->active_flows(), sys_b.transport->active_flows());
}

TEST(RetryPolicy, SuccessOnFirstTryCostsOneAttempt) {
  TestSystem sys;
  const UserProfile profile = TestSystem::tolerant_profile();
  OfferList list = enumerate_for(sys, profile);
  RetryPolicy retry;
  retry.max_attempts = 5;
  ResourceCommitter committer(sys.farm, *sys.transport, retry);
  auto commitment = committer.commit(sys.client, list.offers[0]);
  ASSERT_TRUE(commitment.ok());
  EXPECT_EQ(commitment.value().stats().attempts, 1);
  EXPECT_EQ(commitment.value().stats().retries, 0);
  EXPECT_DOUBLE_EQ(commitment.value().stats().backoff_ms, 0.0);
}

TEST(RetryPolicy, PermanentRefusalNeverRetries) {
  TestSystem sys;
  const UserProfile profile = TestSystem::tolerant_profile();
  MultimediaDocument doc = TestSystem::news_article();
  doc.id = "ghost-doc";
  for (auto& m : doc.monomedia) {
    for (auto& v : m.variants) v.server = "server-ghost";
  }
  sys.catalog.add(doc);
  auto feasible = compatible_variants(sys.catalog.find("ghost-doc"), sys.client, profile.mm);
  ASSERT_TRUE(feasible.ok());
  OfferList list = enumerate_offers(feasible.value(), profile.mm, CostModel{});
  RetryPolicy retry;
  retry.max_attempts = 10;
  ResourceCommitter committer(sys.farm, *sys.transport, retry);
  auto commitment = committer.commit(sys.client, list.offers[0]);
  ASSERT_FALSE(commitment.ok());
  EXPECT_FALSE(commitment.error().transient);
  EXPECT_EQ(committer.stats().attempts, 1);
  EXPECT_EQ(committer.stats().retries, 0);
  EXPECT_EQ(committer.stats().permanent_failures, 1);
}

}  // namespace
}  // namespace qosnp
