#include "net/topology.hpp"
#include "net/transport.hpp"

#include <gtest/gtest.h>

namespace qosnp {
namespace {

StreamRequirements stream(std::int64_t bps, GuaranteeClass g = GuaranteeClass::kGuaranteed) {
  StreamRequirements req;
  req.max_bit_rate_bps = bps;
  req.avg_bit_rate_bps = bps / 2 > 0 ? bps / 2 : bps;
  req.guarantee = g;
  req.duration_s = 60.0;
  return req;
}

Topology line3(std::int64_t cap) {
  Topology t;
  t.add_node("a", NodeKind::kClient);
  t.add_node("b", NodeKind::kSwitch);
  t.add_node("c", NodeKind::kServer);
  (void)t.add_link("a", "b", cap, 1.0);
  (void)t.add_link("b", "c", cap, 1.0);
  return t;
}

TEST(Topology, AddNodeRejectsDuplicates) {
  Topology t;
  EXPECT_TRUE(t.add_node("x", NodeKind::kClient));
  EXPECT_FALSE(t.add_node("x", NodeKind::kServer));
  EXPECT_EQ(t.node_kind("x"), NodeKind::kClient);
  EXPECT_FALSE(t.node_kind("y").has_value());
}

TEST(Topology, AddLinkValidation) {
  Topology t;
  t.add_node("x", NodeKind::kClient);
  t.add_node("y", NodeKind::kServer);
  EXPECT_FALSE(t.add_link("x", "ghost", 1000).ok());
  EXPECT_FALSE(t.add_link("x", "x", 1000).ok());
  EXPECT_FALSE(t.add_link("x", "y", 0).ok());
  EXPECT_TRUE(t.add_link("x", "y", 1000).ok());
  EXPECT_EQ(t.link_count(), 1u);
}

TEST(Topology, ShortestPathFollowsDelay) {
  Topology t;
  for (const char* n : {"s", "m1", "m2", "d"}) t.add_node(n, NodeKind::kSwitch);
  (void)t.add_link("s", "m1", 1000, 1.0);
  (void)t.add_link("m1", "d", 1000, 1.0);   // total 2ms
  (void)t.add_link("s", "m2", 1000, 10.0);
  (void)t.add_link("m2", "d", 1000, 10.0);  // total 20ms
  auto path = t.shortest_path("s", "d");
  ASSERT_TRUE(path.ok());
  ASSERT_EQ(path.value().size(), 2u);
  EXPECT_EQ(t.link(path.value()[0]).b, "m1");
}

TEST(Topology, ShortestPathErrors) {
  Topology t;
  t.add_node("a", NodeKind::kClient);
  t.add_node("b", NodeKind::kServer);
  EXPECT_FALSE(t.shortest_path("a", "ghost").ok());
  EXPECT_FALSE(t.shortest_path("a", "b").ok());  // disconnected
  auto self = t.shortest_path("a", "a");
  ASSERT_TRUE(self.ok());
  EXPECT_TRUE(self.value().empty());
}

TEST(Topology, DumbbellShape) {
  const Topology t = Topology::dumbbell(3, 2, 10'000'000, 100'000'000);
  EXPECT_EQ(t.node_count(), 2u + 3u + 2u);
  EXPECT_EQ(t.link_count(), 1u + 3u + 2u);
  auto path = t.shortest_path("client-0", "server-node-1");
  ASSERT_TRUE(path.ok());
  EXPECT_EQ(path.value().size(), 3u);  // access + backbone + access
}

TEST(Transport, ReserveAndRelease) {
  TransportService transport(line3(10'000'000));
  auto flow = transport.reserve("a", "c", stream(4'000'000));
  ASSERT_TRUE(flow.ok());
  EXPECT_EQ(transport.active_flows(), 1u);
  EXPECT_EQ(transport.link_usage(0).reserved_bps, 4'000'000);
  EXPECT_EQ(transport.link_usage(1).reserved_bps, 4'000'000);
  EXPECT_TRUE(transport.release(flow.value()));
  EXPECT_FALSE(transport.release(flow.value()));  // double release is safe
  EXPECT_EQ(transport.link_usage(0).reserved_bps, 0);
  EXPECT_EQ(transport.active_flows(), 0u);
}

TEST(Transport, AdmissionControlRefusesOverflow) {
  TransportService transport(line3(10'000'000));
  ASSERT_TRUE(transport.reserve("a", "c", stream(6'000'000)).ok());
  EXPECT_FALSE(transport.reserve("a", "c", stream(6'000'000)).ok());
  // But a smaller flow still fits.
  EXPECT_TRUE(transport.reserve("a", "c", stream(4'000'000)).ok());
}

TEST(Transport, BestEffortReservesAverageRate) {
  TransportService transport(line3(10'000'000));
  auto flow = transport.reserve("a", "c", stream(8'000'000, GuaranteeClass::kBestEffort));
  ASSERT_TRUE(flow.ok());
  EXPECT_EQ(transport.link_usage(0).reserved_bps, 4'000'000);  // avg = max/2
}

TEST(Transport, ConservationUnderChurn) {
  TransportService transport(line3(100'000'000));
  std::vector<FlowId> flows;
  for (int i = 0; i < 20; ++i) {
    auto f = transport.reserve("a", "c", stream(1'000'000));
    ASSERT_TRUE(f.ok());
    flows.push_back(f.value());
  }
  EXPECT_EQ(transport.link_usage(0).reserved_bps, 20'000'000);
  for (std::size_t i = 0; i < flows.size(); i += 2) transport.release(flows[i]);
  EXPECT_EQ(transport.link_usage(0).reserved_bps, 10'000'000);
  for (std::size_t i = 1; i < flows.size(); i += 2) transport.release(flows[i]);
  EXPECT_EQ(transport.link_usage(0).reserved_bps, 0);
}

TEST(Transport, RejectsUnroutableAndZeroRate) {
  TransportService transport(line3(1'000'000));
  EXPECT_FALSE(transport.reserve("a", "ghost", stream(1000)).ok());
  EXPECT_FALSE(transport.reserve("a", "c", stream(0)).ok());
}

TEST(Transport, DegradeReportsVictimsNewestFirst) {
  TransportService transport(line3(10'000'000));
  auto f1 = transport.reserve("a", "c", stream(4'000'000));
  auto f2 = transport.reserve("a", "c", stream(4'000'000));
  ASSERT_TRUE(f1.ok());
  ASSERT_TRUE(f2.ok());
  // Halve link 0: 8 Mbit/s reserved vs 5 Mbit/s effective -> one victim
  // (the newest flow) suffices to fit again.
  const auto victims = transport.degrade_link(0, 0.5);
  ASSERT_EQ(victims.size(), 1u);
  EXPECT_EQ(victims[0], f2.value());
  EXPECT_EQ(transport.link_usage(0).effective_capacity_bps, 5'000'000);
}

TEST(Transport, DegradeBlocksNewAdmissions) {
  TransportService transport(line3(10'000'000));
  transport.degrade_link(0, 0.9);
  EXPECT_FALSE(transport.reserve("a", "c", stream(2'000'000)).ok());
  transport.restore_link(0);
  EXPECT_TRUE(transport.reserve("a", "c", stream(2'000'000)).ok());
}

TEST(Transport, MeanUtilization) {
  TransportService transport(line3(10'000'000));
  EXPECT_DOUBLE_EQ(transport.mean_utilization(), 0.0);
  ASSERT_TRUE(transport.reserve("a", "c", stream(5'000'000)).ok());
  EXPECT_NEAR(transport.mean_utilization(), 0.5, 1e-9);
}

TEST(Topology, ShortestPathHonoursExclusions) {
  const Topology t = Topology::dual_backbone(1, 1, 10'000'000, 10'000'000);
  // Links 0 (primary) and the last one (standby) join the two switches.
  auto primary = t.shortest_path("switch-client", "switch-server");
  ASSERT_TRUE(primary.ok());
  ASSERT_EQ(primary.value().size(), 1u);
  const std::size_t primary_link = primary.value()[0];
  const std::size_t excluded[] = {primary_link};
  auto standby = t.shortest_path("switch-client", "switch-server", excluded);
  ASSERT_TRUE(standby.ok());
  ASSERT_EQ(standby.value().size(), 1u);
  EXPECT_NE(standby.value()[0], primary_link);
}

TEST(Topology, ExclusionCanDisconnect) {
  const Topology t = Topology::dumbbell(1, 1, 10'000'000, 10'000'000);
  const std::size_t excluded[] = {0};  // the only backbone
  EXPECT_FALSE(t.shortest_path("client-0", "server-node-0", excluded).ok());
}

TEST(Transport, ReroutesOntoStandbyBackbone) {
  TransportService transport(Topology::dual_backbone(1, 1, 100'000'000, 10'000'000));
  // Two 8 Mbit/s flows: the second cannot share the 10 Mbit/s primary
  // backbone, so it must take the standby one.
  auto f1 = transport.reserve("client-0", "server-node-0", stream(8'000'000));
  auto f2 = transport.reserve("client-0", "server-node-0", stream(8'000'000));
  ASSERT_TRUE(f1.ok());
  ASSERT_TRUE(f2.ok()) << f2.error();
  const auto p1 = transport.flow(f1.value())->path;
  const auto p2 = transport.flow(f2.value())->path;
  // The backbone link differs between the two paths.
  EXPECT_NE(p1, p2);
  // A third same-size flow finds no backbone with room.
  EXPECT_FALSE(transport.reserve("client-0", "server-node-0", stream(8'000'000)).ok());
}

TEST(Transport, ReroutesAroundCongestedLink) {
  TransportService transport(Topology::dual_backbone(1, 1, 100'000'000, 10'000'000));
  auto primary = transport.topology().shortest_path("switch-client", "switch-server");
  ASSERT_TRUE(primary.ok());
  transport.degrade_link(primary.value()[0], 0.95);
  auto f = transport.reserve("client-0", "server-node-0", stream(8'000'000));
  ASSERT_TRUE(f.ok()) << f.error();
}

TEST(Transport, SingleBackboneStillRejectsWhenFull) {
  TransportService transport(line3(10'000'000));
  ASSERT_TRUE(transport.reserve("a", "c", stream(8'000'000)).ok());
  auto second = transport.reserve("a", "c", stream(8'000'000));
  ASSERT_FALSE(second.ok());
  EXPECT_NE(second.error().message.find("insufficient bandwidth"), std::string::npos);
  EXPECT_TRUE(second.error().transient);
}

TEST(ScopedFlow, ReleasesOnDestruction) {
  TransportService transport(line3(10'000'000));
  {
    auto f = transport.reserve("a", "c", stream(4'000'000));
    ASSERT_TRUE(f.ok());
    ScopedFlow scoped(&transport, f.value());
    EXPECT_EQ(transport.active_flows(), 1u);
  }
  EXPECT_EQ(transport.active_flows(), 0u);
}

TEST(ScopedFlow, DismissKeepsReservation) {
  TransportService transport(line3(10'000'000));
  FlowId id = 0;
  {
    auto f = transport.reserve("a", "c", stream(4'000'000));
    ASSERT_TRUE(f.ok());
    ScopedFlow scoped(&transport, f.value());
    id = scoped.dismiss();
  }
  EXPECT_EQ(transport.active_flows(), 1u);
  transport.release(id);
}

TEST(ScopedFlow, MoveTransfersOwnership) {
  TransportService transport(line3(10'000'000));
  auto f = transport.reserve("a", "c", stream(4'000'000));
  ASSERT_TRUE(f.ok());
  ScopedFlow a(&transport, f.value());
  ScopedFlow b(std::move(a));
  EXPECT_FALSE(a.valid());
  EXPECT_TRUE(b.valid());
  b.reset();
  EXPECT_EQ(transport.active_flows(), 0u);
}

}  // namespace
}  // namespace qosnp
