// Concurrency hammering for the observability primitives. These tests are
// labelled `concurrency` so the tsan preset runs them under
// ThreadSanitizer: the interesting assertion is "no data race", the counts
// are just the visible half of it.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "obs/trace_sink.hpp"

namespace qosnp {
namespace {

constexpr int kThreads = 8;
constexpr int kPerThread = 10'000;

TEST(ObsConcurrency, CounterSumsAllThreads) {
  Counter counter;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kPerThread; ++i) counter.inc();
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(ObsConcurrency, GaugeUpdateMaxConverges) {
  Gauge gauge;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&gauge, t] {
      for (int i = 0; i < kPerThread; ++i) gauge.update_max(t * kPerThread + i);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(gauge.value(), (kThreads - 1) * kPerThread + kPerThread - 1);
}

TEST(ObsConcurrency, HistogramRecordsFromAllThreads) {
  HistogramMetric histogram;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram] {
      for (int i = 0; i < kPerThread; ++i) histogram.record(1.0 + (i % 50));
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(histogram.merged().count(), static_cast<std::size_t>(kThreads) * kPerThread);
}

TEST(ObsConcurrency, RegistryRegistrationRaces) {
  // All threads register the same and different samples while a reader
  // keeps exposing; handles must come out identical for identical keys.
  MetricsRegistry registry;
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      (void)registry.expose();
      (void)registry.counter_value("shared");
    }
  });
  std::vector<Counter*> shared_handles(kThreads, nullptr);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, &shared_handles, t] {
      Counter& shared = registry.counter("shared");
      shared_handles[static_cast<std::size_t>(t)] = &shared;
      Counter& mine =
          registry.counter("per-thread", {{"thread", std::to_string(t)}});
      for (int i = 0; i < 1000; ++i) {
        shared.inc();
        mine.inc();
        registry.gauge("depth").update_max(i);
        registry.histogram("lat").record(static_cast<double>(i % 10));
      }
    });
  }
  for (auto& th : threads) th.join();
  stop.store(true, std::memory_order_release);
  reader.join();
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(shared_handles[0], shared_handles[static_cast<std::size_t>(t)]);
  }
  EXPECT_EQ(registry.counter_value("shared"), static_cast<std::uint64_t>(kThreads) * 1000);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(registry.counter_value("per-thread", {{"thread", std::to_string(t)}}), 1000u);
  }
}

TEST(ObsConcurrency, RingSinkRecordAndQueryRace) {
  RingBufferSink ring(32);
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      (void)ring.snapshot();
      (void)ring.find(1);
      (void)ring.size();
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&ring, t] {
      for (int i = 0; i < 2000; ++i) {
        auto trace =
            std::make_shared<NegotiationTrace>(static_cast<std::uint64_t>(t) * 2000 + i);
        trace->end_span(trace->begin_span(Stage::kLocalCheck));
        ring.record(std::move(trace));
      }
    });
  }
  for (auto& th : writers) th.join();
  stop.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(ring.size(), 32u);
  EXPECT_EQ(ring.total_recorded(), static_cast<std::uint64_t>(kThreads) * 2000);
}

}  // namespace
}  // namespace qosnp
