#include "sim/replicate.hpp"

#include <gtest/gtest.h>

namespace qosnp {
namespace {

ExperimentConfig tiny_config() {
  ExperimentConfig config;
  config.corpus.num_documents = 8;
  config.corpus.seed = 3;
  config.num_clients = 4;
  config.arrival_rate_per_s = 0.05;
  config.sim_duration_s = 400.0;
  config.seed = 11;
  return config;
}

TEST(ReplicatedStat, MeanAndStddev) {
  const auto stat = ReplicatedStat::of({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(stat.mean, 2.5);
  EXPECT_NEAR(stat.stddev, 1.2909944, 1e-6);  // sample stddev
  const auto single = ReplicatedStat::of({7.0});
  EXPECT_DOUBLE_EQ(single.mean, 7.0);
  EXPECT_DOUBLE_EQ(single.stddev, 0.0);
  const auto empty = ReplicatedStat::of({});
  EXPECT_DOUBLE_EQ(empty.mean, 0.0);
}

TEST(Replicate, MeanIsAverageOfIndividualRuns) {
  const ExperimentConfig base = tiny_config();
  const ReplicatedResult result = replicate(base, 3);
  EXPECT_EQ(result.replications, 3);
  double sum = 0.0;
  for (int r = 0; r < 3; ++r) {
    ExperimentConfig config = base;
    config.seed = base.seed + static_cast<std::uint64_t>(r);
    sum += run_experiment(config).metrics.service_rate();
  }
  EXPECT_NEAR(result.service_rate.mean, sum / 3.0, 1e-12);
}

TEST(Replicate, DeterministicAcrossCalls) {
  const ReplicatedResult a = replicate(tiny_config(), 3);
  const ReplicatedResult b = replicate(tiny_config(), 3);
  EXPECT_DOUBLE_EQ(a.service_rate.mean, b.service_rate.mean);
  EXPECT_DOUBLE_EQ(a.blocking.stddev, b.blocking.stddev);
  EXPECT_DOUBLE_EQ(a.revenue_dollars.mean, b.revenue_dollars.mean);
}

TEST(Replicate, SeedsActuallyVary) {
  // With more than one seed the runs differ, so a nonzero spread appears in
  // at least one headline metric under a loaded configuration.
  ExperimentConfig config = tiny_config();
  config.arrival_rate_per_s = 0.5;
  config.backbone_bps = 40'000'000;
  const ReplicatedResult result = replicate(config, 4);
  EXPECT_GT(result.service_rate.stddev + result.blocking.stddev +
                result.revenue_dollars.stddev,
            0.0);
}

}  // namespace
}  // namespace qosnp
