// Shared harness for the concurrent-service tests and bench: a farm of two
// media servers behind a dumbbell network with `num_clients` client nodes,
// the news-article document, and the full QoSManager -> SessionManager ->
// NegotiationService stack wired over the *shared* transport and farm.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "service/load_gen.hpp"
#include "service/negotiation_service.hpp"
#include "test_system.hpp"

namespace qosnp::testing {

struct ServiceSystem {
  Catalog catalog;
  std::unique_ptr<TransportService> transport;
  ServerFarm farm;
  std::unique_ptr<QoSManager> manager;
  std::unique_ptr<SessionManager> sessions;
  std::vector<ClientMachine> clients;

  explicit ServiceSystem(int num_clients = 16, std::int64_t access_bps = 1'000'000'000,
                         std::int64_t backbone_bps = 10'000'000'000,
                         std::int64_t server_bps = 10'000'000'000, int server_sessions = 100'000,
                         NegotiationConfig negotiation = {}) {
    transport = std::make_unique<TransportService>(
        Topology::dumbbell(num_clients, 2, access_bps, backbone_bps));
    for (int i = 0; i < 2; ++i) {
      MediaServerConfig config;
      config.id = i == 0 ? "server-a" : "server-b";
      config.node = "server-node-" + std::to_string(i);
      config.disk_bandwidth_bps = server_bps;
      config.max_sessions = server_sessions;
      farm.add(std::move(config));
    }
    catalog.add(TestSystem::news_article());
    manager = std::make_unique<QoSManager>(catalog, farm, *transport, CostModel{},
                                           std::move(negotiation));
    sessions = std::make_unique<SessionManager>(*manager);
    clients.reserve(static_cast<std::size_t>(num_clients));
    for (int i = 0; i < num_clients; ++i) {
      ClientMachine c;
      c.name = "client-" + std::to_string(i);
      c.node = c.name;
      c.screen = ScreenSpec{1920, 1080, ColorDepth::kSuperColor};
      c.decoders = {CodingFormat::kMPEG1,     CodingFormat::kMPEG2,
                    CodingFormat::kMJPEG,     CodingFormat::kPCM,
                    CodingFormat::kADPCM,     CodingFormat::kMPEGAudio,
                    CodingFormat::kPlainText, CodingFormat::kJPEG,
                    CodingFormat::kGIF};
      c.max_audio = AudioQuality::kCD;
      clients.push_back(std::move(c));
    }
  }

  /// Reserved bandwidth summed over the farm (0 iff fully drained).
  std::int64_t farm_reserved_bps() const {
    std::int64_t total = 0;
    for (const ServerId& id : farm.list()) {
      total += farm.find(id)->usage().reserved_bps;
    }
    return total;
  }

  /// Occupied session slots summed over the farm.
  int farm_sessions() const {
    int total = 0;
    for (const ServerId& id : farm.list()) total += farm.find(id)->usage().sessions;
    return total;
  }

  /// The drain invariant of every service test: no live session may remain,
  /// and every reservation on every server and link must be back to zero.
  bool drained() const {
    return sessions->active_count() == 0 && farm_reserved_bps() == 0 && farm_sessions() == 0 &&
           transport->active_flows() == 0 && transport->total_reserved_bps() == 0 &&
           transport->accounting_consistent();
  }
};

}  // namespace qosnp::testing
