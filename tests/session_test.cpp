// Step 6 (confirmation within choicePeriod) and the adaptation procedure.
#include "session/session.hpp"

#include <gtest/gtest.h>

#include "test_system.hpp"

namespace qosnp {
namespace {

using testing::TestSystem;

struct SessionFixture : public ::testing::Test {
  SessionFixture()
      : manager(sys.catalog, sys.farm, *sys.transport),
        sessions(manager) {}

  SessionId negotiate_and_open(double now_s = 0.0,
                               std::optional<UserProfile> profile_in = std::nullopt) {
    UserProfile profile = profile_in.value_or(TestSystem::tolerant_profile());
    NegotiationResult outcome = manager.negotiate(make_negotiation_request(sys.client, "article", profile));
    EXPECT_TRUE(outcome.has_commitment());
    auto opened = sessions.open(sys.client, profile, std::move(outcome), now_s);
    EXPECT_TRUE(opened.ok());
    return opened.value();
  }

  std::int64_t total_reserved() {
    std::int64_t total = 0;
    for (const auto& id : sys.farm.list()) total += sys.farm.find(id)->usage().reserved_bps;
    return total;
  }

  TestSystem sys;
  QoSManager manager;
  SessionManager sessions;
};

TEST_F(SessionFixture, OpenStartsPendingWithDeadline) {
  const SessionId id = negotiate_and_open(10.0);
  auto view = sessions.snapshot(id);
  ASSERT_TRUE(view.has_value());
  EXPECT_EQ(view->state, SessionState::kPendingConfirmation);
  EXPECT_DOUBLE_EQ(view->confirm_deadline_s,
                   10.0 + TestSystem::tolerant_profile().mm.time.choice_period_s);
  EXPECT_GT(view->offer_count, 1u);
  ASSERT_TRUE(view->user_offer.has_value());
}

TEST_F(SessionFixture, ConfirmWithinPeriodStartsPlaying) {
  const SessionId id = negotiate_and_open(0.0);
  auto ok = sessions.confirm(id, 5.0);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(sessions.snapshot(id)->state, SessionState::kPlaying);
}

TEST_F(SessionFixture, ConfirmAfterDeadlineAbortsAndReleases) {
  const SessionId id = negotiate_and_open(0.0);
  EXPECT_GT(total_reserved(), 0);
  auto late = sessions.confirm(id, 1'000.0);  // way past choicePeriod (30s)
  EXPECT_FALSE(late.ok());
  EXPECT_EQ(sessions.snapshot(id)->state, SessionState::kAborted);
  EXPECT_EQ(total_reserved(), 0);
  EXPECT_EQ(sys.transport->active_flows(), 0u);
}

TEST_F(SessionFixture, RejectReleasesResources) {
  const SessionId id = negotiate_and_open();
  EXPECT_TRUE(sessions.reject(id));
  EXPECT_FALSE(sessions.reject(id));  // already finished
  EXPECT_EQ(total_reserved(), 0);
  EXPECT_EQ(sessions.snapshot(id)->state, SessionState::kAborted);
}

TEST_F(SessionFixture, DoubleConfirmFails) {
  const SessionId id = negotiate_and_open();
  ASSERT_TRUE(sessions.confirm(id, 1.0).ok());
  EXPECT_FALSE(sessions.confirm(id, 2.0).ok());
}

TEST_F(SessionFixture, AdvanceCompletesAtDuration) {
  const SessionId id = negotiate_and_open();
  sessions.confirm(id, 1.0);
  sessions.advance(id, 60.0);
  EXPECT_EQ(sessions.snapshot(id)->state, SessionState::kPlaying);
  EXPECT_DOUBLE_EQ(sessions.snapshot(id)->position_s, 60.0);
  sessions.advance(id, 60.0);  // document lasts 120 s
  EXPECT_EQ(sessions.snapshot(id)->state, SessionState::kCompleted);
  EXPECT_EQ(total_reserved(), 0);
}

TEST_F(SessionFixture, AdaptSwitchesToAlternateOffer) {
  const SessionId id = negotiate_and_open();
  sessions.confirm(id, 1.0);
  const std::size_t before = sessions.snapshot(id)->current_offer;
  AdaptationResult result = sessions.adapt(id, 10.0);
  EXPECT_TRUE(result.adapted);
  EXPECT_NE(result.new_offer, before);
  EXPECT_EQ(sessions.snapshot(id)->state, SessionState::kPlaying);
  EXPECT_EQ(sessions.snapshot(id)->stats.transitions, 1);
  EXPECT_GT(sessions.snapshot(id)->stats.interrupted_s, 0.0);
}

TEST_F(SessionFixture, AdaptNeverSelectsTheFailedConfiguration) {
  const SessionId id = negotiate_and_open();
  sessions.confirm(id, 1.0);
  for (int i = 0; i < 5; ++i) {
    const std::size_t current = sessions.snapshot(id)->current_offer;
    AdaptationResult result = sessions.adapt(id, 10.0 + i);
    if (!result.adapted) break;
    EXPECT_NE(result.new_offer, current);
  }
}

TEST_F(SessionFixture, AdaptFailsWhenNoAlternativeFits) {
  const SessionId id = negotiate_and_open();
  sessions.confirm(id, 1.0);
  // Both servers down: no alternate configuration can be committed (the
  // stop-then-restart transition frees the old reservation, but a failed
  // server admits nothing).
  sys.farm.find("server-a")->fail();
  sys.farm.find("server-b")->fail();
  AdaptationResult result = sessions.adapt(id, 10.0);
  EXPECT_FALSE(result.adapted);
  EXPECT_EQ(sessions.snapshot(id)->state, SessionState::kAborted);
  EXPECT_EQ(sessions.snapshot(id)->stats.failed_adaptations, 1);
  // Everything released despite the failure.
  EXPECT_EQ(sys.transport->active_flows(), 0u);
}

TEST_F(SessionFixture, MakeBeforeBreakAdaptationWorks) {
  SessionManager bbm(manager, AdaptationPolicy{.make_before_break = true,
                                               .exclude_all_tried = false,
                                               .transition_latency_s = 1.0});
  UserProfile profile = TestSystem::tolerant_profile();
  NegotiationResult outcome = manager.negotiate(make_negotiation_request(sys.client, "article", profile));
  ASSERT_TRUE(outcome.has_commitment());
  auto opened = bbm.open(sys.client, profile, std::move(outcome), 0.0);
  ASSERT_TRUE(opened.ok());
  bbm.confirm(opened.value(), 1.0);
  AdaptationResult result = bbm.adapt(opened.value(), 5.0);
  EXPECT_TRUE(result.adapted);
  EXPECT_DOUBLE_EQ(result.interruption_s, 1.0);
}

TEST_F(SessionFixture, ExcludeAllTriedPolicyExhaustsLadder) {
  SessionManager strict(manager, AdaptationPolicy{.make_before_break = true,
                                                  .exclude_all_tried = true,
                                                  .transition_latency_s = 0.5});
  UserProfile profile = TestSystem::tolerant_profile();
  NegotiationResult outcome = manager.negotiate(make_negotiation_request(sys.client, "article", profile));
  ASSERT_TRUE(outcome.has_commitment());
  const std::size_t ladder = outcome.offers.known_count();
  auto opened = strict.open(sys.client, profile, std::move(outcome), 0.0);
  ASSERT_TRUE(opened.ok());
  strict.confirm(opened.value(), 1.0);
  // Adapting more times than there are offers must eventually abort.
  std::size_t adapted = 0;
  for (std::size_t i = 0; i < ladder + 2; ++i) {
    if (!strict.adapt(opened.value(), 5.0 + static_cast<double>(i)).adapted) break;
    ++adapted;
  }
  EXPECT_LT(adapted, ladder);
  EXPECT_EQ(strict.snapshot(opened.value())->state, SessionState::kAborted);
}

TEST_F(SessionFixture, FlowIndexRoutesViolations) {
  const SessionId id = negotiate_and_open();
  sessions.confirm(id, 1.0);
  // Degrade the backbone so the committed flows are victims.
  const auto victims = sys.transport->degrade_link(0, 0.999);
  ASSERT_FALSE(victims.empty());
  bool routed = false;
  for (FlowId flow : victims) {
    for (SessionId sid : sessions.sessions_using_flow(flow)) {
      routed = true;
      EXPECT_EQ(sid, id);
    }
  }
  EXPECT_TRUE(routed);
}

TEST_F(SessionFixture, FlowIndexUpdatedAfterAdaptation) {
  const SessionId id = negotiate_and_open();
  sessions.confirm(id, 1.0);
  auto before = sessions.snapshot(id);
  AdaptationResult result = sessions.adapt(id, 5.0);
  ASSERT_TRUE(result.adapted);
  // All currently held flows route back to the session.
  std::size_t routed = 0;
  for (std::size_t link = 0; link < sys.transport->topology().link_count(); ++link) {
    const auto usage = sys.transport->link_usage(link);
    (void)usage;
  }
  // Trigger violations on the new configuration.
  const auto victims = sys.transport->degrade_link(0, 0.999);
  for (FlowId flow : victims) {
    for (SessionId sid : sessions.sessions_using_flow(flow)) {
      EXPECT_EQ(sid, id);
      ++routed;
    }
  }
  EXPECT_GT(routed, 0u);
  (void)before;
}

TEST_F(SessionFixture, SessionsOnServerFindsHolders) {
  const SessionId id = negotiate_and_open();
  sessions.confirm(id, 1.0);
  const auto view = sessions.snapshot(id);
  ASSERT_TRUE(view.has_value());
  // The session uses at least one of the two servers.
  const auto on_a = sessions.sessions_on_server("server-a");
  const auto on_b = sessions.sessions_on_server("server-b");
  EXPECT_TRUE(!on_a.empty() || !on_b.empty());
  EXPECT_TRUE(sessions.sessions_on_server("server-zzz").empty());
}

TEST_F(SessionFixture, AbortReleasesAndRecordsReason) {
  const SessionId id = negotiate_and_open();
  sessions.confirm(id, 1.0);
  sessions.abort(id, "operator shutdown");
  auto view = sessions.snapshot(id);
  EXPECT_EQ(view->state, SessionState::kAborted);
  EXPECT_EQ(view->abort_reason, "operator shutdown");
  EXPECT_EQ(total_reserved(), 0);
}

TEST_F(SessionFixture, RenegotiateUpgradesLiveSession) {
  // Start with the thrifty floor, then renegotiate up to the tolerant
  // profile: the session switches configuration without being torn down.
  UserProfile modest = TestSystem::tolerant_profile();
  modest.mm.video->desired = VideoQoS{ColorDepth::kBlackWhite, 10, 320};
  modest.mm.audio->desired = AudioQoS{AudioQuality::kTelephone};
  const SessionId id = negotiate_and_open(0.0, modest);
  sessions.confirm(id, 1.0);
  sessions.advance(id, 20.0);

  RenegotiationResult result =
      sessions.renegotiate(id, TestSystem::tolerant_profile(), 21.0);
  EXPECT_TRUE(result.switched);
  EXPECT_EQ(result.status, NegotiationStatus::kSucceeded);
  ASSERT_TRUE(result.offer.has_value());
  EXPECT_EQ(result.offer->video->color, ColorDepth::kColor);
  const auto view = sessions.snapshot(id);
  EXPECT_EQ(view->state, SessionState::kPlaying);
  EXPECT_DOUBLE_EQ(view->position_s, 20.0);  // playout position preserved
  EXPECT_EQ(view->stats.renegotiations, 1);
}

TEST_F(SessionFixture, RenegotiateFailureKeepsCurrentConfiguration) {
  const SessionId id = negotiate_and_open();
  sessions.confirm(id, 1.0);
  const auto before = sessions.snapshot(id);
  // A profile no variant can decode into: demand MJPEG-class super quality
  // the servers can't admit (both failed).
  sys.farm.find("server-a")->fail();
  sys.farm.find("server-b")->fail();
  RenegotiationResult result =
      sessions.renegotiate(id, TestSystem::tolerant_profile(), 10.0);
  EXPECT_FALSE(result.switched);
  EXPECT_EQ(result.status, NegotiationStatus::kFailedTryLater);
  const auto after = sessions.snapshot(id);
  EXPECT_EQ(after->state, SessionState::kPlaying);
  EXPECT_EQ(after->current_offer, before->current_offer);
  EXPECT_EQ(after->stats.renegotiations, 0);
  sys.farm.find("server-a")->recover();
  sys.farm.find("server-b")->recover();
}

TEST_F(SessionFixture, RenegotiateRejectedOnFinishedSession) {
  const SessionId id = negotiate_and_open();
  sessions.reject(id);
  RenegotiationResult result =
      sessions.renegotiate(id, TestSystem::tolerant_profile(), 5.0);
  EXPECT_FALSE(result.switched);
  EXPECT_FALSE(result.problems.empty());
}

TEST_F(SessionFixture, RenegotiateThenAdaptUsesNewLadder) {
  const SessionId id = negotiate_and_open();
  sessions.confirm(id, 1.0);
  RenegotiationResult renego =
      sessions.renegotiate(id, TestSystem::tolerant_profile(), 5.0);
  ASSERT_TRUE(renego.switched);
  AdaptationResult adapted = sessions.adapt(id, 10.0);
  EXPECT_TRUE(adapted.adapted);
  EXPECT_EQ(sessions.snapshot(id)->stats.transitions, 1);
  EXPECT_EQ(sessions.snapshot(id)->stats.renegotiations, 1);
}

TEST_F(SessionFixture, OpenWithoutCommitmentFails) {
  NegotiationResult empty;
  auto opened = sessions.open(sys.client, TestSystem::tolerant_profile(), std::move(empty), 0.0);
  EXPECT_FALSE(opened.ok());
}

TEST_F(SessionFixture, ActiveCountTracksLifecycle) {
  EXPECT_EQ(sessions.active_count(), 0u);
  const SessionId id = negotiate_and_open();
  EXPECT_EQ(sessions.active_count(), 1u);
  sessions.confirm(id, 1.0);
  EXPECT_EQ(sessions.active_count(), 1u);
  sessions.advance(id, 1'000.0);
  EXPECT_EQ(sessions.active_count(), 0u);
}

TEST_F(SessionFixture, ChargedCostTracksCommittedOffer) {
  const SessionId id = negotiate_and_open();
  sessions.confirm(id, 1.0);
  const Money before = sessions.snapshot(id)->stats.charged;
  EXPECT_FALSE(before.is_zero());
  AdaptationResult result = sessions.adapt(id, 5.0);
  ASSERT_TRUE(result.adapted);
  // The charge follows the new configuration (it may differ).
  EXPECT_FALSE(sessions.snapshot(id)->stats.charged.is_zero());
}

}  // namespace
}  // namespace qosnp
