// Integration tests of the full negotiation procedure: all five negotiation
// statuses of paper Sec. 4 are reachable, and the procedure picks optimal
// configurations.
#include "core/qos_manager.hpp"

#include <gtest/gtest.h>

#include "test_system.hpp"

namespace qosnp {
namespace {

using testing::TestSystem;

TEST(QoSManager, SucceedsOnSatisfiableRequest) {
  TestSystem sys;
  QoSManager manager(sys.catalog, sys.farm, *sys.transport);
  const UserProfile profile = TestSystem::tolerant_profile();
  NegotiationResult outcome = manager.negotiate(make_negotiation_request(sys.client, "article", profile));
  EXPECT_EQ(outcome.verdict, NegotiationStatus::kSucceeded);
  ASSERT_TRUE(outcome.user_offer.has_value());
  ASSERT_TRUE(outcome.has_commitment());
  // The committed offer satisfies the requested QoS and budget.
  EXPECT_TRUE(satisfies_user(outcome.offers.offers[outcome.committed_index], profile.mm));
  // The user offer reports the desired video quality (the catalog has it).
  EXPECT_EQ(outcome.user_offer->video->color, ColorDepth::kColor);
  EXPECT_EQ(outcome.user_offer->video->frame_rate_fps, 25);
  EXPECT_LE(outcome.user_offer->cost, profile.mm.cost.max_cost);
}

TEST(QoSManager, CommitsTheTopClassifiedOffer) {
  TestSystem sys;
  QoSManager manager(sys.catalog, sys.farm, *sys.transport);
  const UserProfile profile = TestSystem::tolerant_profile();
  NegotiationResult outcome = manager.negotiate(make_negotiation_request(sys.client, "article", profile));
  ASSERT_TRUE(outcome.has_commitment());
  // With ample resources the very first (best) offer must be the one
  // committed.
  EXPECT_EQ(outcome.committed_index, 0u);
  EXPECT_EQ(outcome.offers.offers[0].sns, Sns::kDesirable);
}

TEST(QoSManager, UnknownDocumentFailsWithoutOffer) {
  TestSystem sys;
  QoSManager manager(sys.catalog, sys.farm, *sys.transport);
  NegotiationResult outcome =
      manager.negotiate(make_negotiation_request(sys.client, "no-such-doc", TestSystem::tolerant_profile()));
  EXPECT_EQ(outcome.verdict, NegotiationStatus::kFailedWithoutOffer);
  EXPECT_FALSE(outcome.has_commitment());
}

TEST(QoSManager, LocalFailureReturnsLocalOffer) {
  TestSystem sys;
  QoSManager manager(sys.catalog, sys.farm, *sys.transport);
  ClientMachine bw = sys.client;
  bw.screen = ScreenSpec{640, 480, ColorDepth::kBlackWhite};
  UserProfile profile = TestSystem::tolerant_profile();
  profile.mm.video->worst = VideoQoS{ColorDepth::kColor, 10, 320};  // colour floor
  NegotiationResult outcome = manager.negotiate(make_negotiation_request(bw, "article", profile));
  EXPECT_EQ(outcome.verdict, NegotiationStatus::kFailedWithLocalOffer);
  ASSERT_TRUE(outcome.user_offer.has_value());
  // The local offer is clipped to the black&white screen.
  EXPECT_EQ(outcome.user_offer->video->color, ColorDepth::kBlackWhite);
  EXPECT_FALSE(outcome.has_commitment());
}

TEST(QoSManager, UndecodableDocumentFailsWithoutOffer) {
  TestSystem sys;
  QoSManager manager(sys.catalog, sys.farm, *sys.transport);
  ClientMachine odd = sys.client;
  odd.decoders = {CodingFormat::kH261, CodingFormat::kPCM, CodingFormat::kPlainText};
  NegotiationResult outcome =
      manager.negotiate(make_negotiation_request(odd, "article", TestSystem::tolerant_profile()));
  EXPECT_EQ(outcome.verdict, NegotiationStatus::kFailedWithoutOffer);
  EXPECT_FALSE(outcome.user_offer.has_value());
}

TEST(QoSManager, ResourceShortageFailsTryLater) {
  TestSystem sys(/*access_bps=*/50'000);  // not even the cheapest offer fits
  QoSManager manager(sys.catalog, sys.farm, *sys.transport);
  NegotiationResult outcome =
      manager.negotiate(make_negotiation_request(sys.client, "article", TestSystem::tolerant_profile()));
  EXPECT_EQ(outcome.verdict, NegotiationStatus::kFailedTryLater);
  EXPECT_FALSE(outcome.has_commitment());
  EXPECT_FALSE(outcome.problems.empty());
}

TEST(QoSManager, UnsatisfiableQosYieldsFailedWithOffer) {
  TestSystem sys;
  QoSManager manager(sys.catalog, sys.farm, *sys.transport);
  UserProfile greedy = TestSystem::tolerant_profile();
  // Nothing in the catalog offers HDTV rate; the floor is above every variant.
  greedy.mm.video->desired = VideoQoS{ColorDepth::kSuperColor, 60, 1920};
  greedy.mm.video->worst = VideoQoS{ColorDepth::kSuperColor, 60, 1920};
  NegotiationResult outcome = manager.negotiate(make_negotiation_request(sys.client, "article", greedy));
  EXPECT_EQ(outcome.verdict, NegotiationStatus::kFailedWithOffer);
  ASSERT_TRUE(outcome.user_offer.has_value());
  ASSERT_TRUE(outcome.has_commitment());
  // The best the system can do is offered, even though it violates the floor.
  EXPECT_EQ(outcome.offers.offers[outcome.committed_index].sns, Sns::kConstraint);
}

TEST(QoSManager, TightBudgetPrefersCheaperSatisfyingOffer) {
  TestSystem sys;
  QoSManager manager(sys.catalog, sys.farm, *sys.transport);
  UserProfile profile = TestSystem::tolerant_profile();
  profile.importance.cost_per_dollar = 10.0;  // cost-sensitive user
  NegotiationResult outcome = manager.negotiate(make_negotiation_request(sys.client, "article", profile));
  ASSERT_TRUE(outcome.has_commitment());
  const SystemOffer& committed = outcome.offers.offers[outcome.committed_index];
  // Every satisfying offer with a higher OIF would have been committed
  // instead; verify nothing satisfying is ranked above the committed one.
  for (std::size_t i = 0; i < outcome.committed_index; ++i) {
    EXPECT_FALSE(satisfies_user(outcome.offers.offers[i], profile.mm) &&
                 outcome.offers.offers[i].oif > committed.oif);
  }
}

TEST(QoSManager, ClassificationOrderIsBestToWorst) {
  TestSystem sys;
  QoSManager manager(sys.catalog, sys.farm, *sys.transport);
  NegotiationResult outcome =
      manager.negotiate(make_negotiation_request(sys.client, "article", TestSystem::tolerant_profile()));
  const auto& offers = outcome.offers.offers;
  for (std::size_t i = 1; i < offers.size(); ++i) {
    // SNS non-decreasing; OIF non-increasing within an SNS class.
    EXPECT_LE(offers[i - 1].sns, offers[i].sns);
    if (offers[i - 1].sns == offers[i].sns) {
      EXPECT_GE(offers[i - 1].oif, offers[i].oif);
    }
  }
}

TEST(QoSManager, FallsBackToNextOfferWhenBestIsFull) {
  // Server-a hosts the best variants; saturate it so that negotiation must
  // fall back to server-b configurations.
  TestSystem sys;
  QoSManager manager(sys.catalog, sys.farm, *sys.transport);
  MediaServer* a = sys.farm.find("server-a");
  a->degrade(0.999);  // effectively no disk bandwidth left
  NegotiationResult outcome =
      manager.negotiate(make_negotiation_request(sys.client, "article", TestSystem::tolerant_profile()));
  ASSERT_TRUE(outcome.has_commitment()) << outcome.problems.empty();
  // The continuous (guaranteed) streams no longer fit on server-a; only a
  // tiny best-effort text delivery may still land there.
  for (const auto& c : outcome.offers.offers[outcome.committed_index].components) {
    if (c.requirements.guarantee == GuaranteeClass::kGuaranteed) {
      EXPECT_EQ(c.variant->server, "server-b") << c.variant->id;
    }
  }
}

TEST(QoSManager, CommitFirstHonoursExclusions) {
  TestSystem sys;
  QoSManager manager(sys.catalog, sys.farm, *sys.transport);
  NegotiationResult outcome =
      manager.negotiate(make_negotiation_request(sys.client, "article", TestSystem::tolerant_profile()));
  ASSERT_TRUE(outcome.has_commitment());
  const std::size_t first = outcome.committed_index;
  outcome.commitment.release();
  const std::vector<std::size_t> exclude = {first};
  CommitAttempt attempt = manager.commit_first(sys.client, outcome.offers,
                                               TestSystem::tolerant_profile().mm, exclude);
  ASSERT_TRUE(attempt.ok());
  EXPECT_NE(attempt.index, first);
}

TEST(QoSManager, NegotiationLeavesNoResidueOnFailure) {
  TestSystem sys(/*access_bps=*/50'000);
  QoSManager manager(sys.catalog, sys.farm, *sys.transport);
  manager.negotiate(make_negotiation_request(sys.client, "article", TestSystem::tolerant_profile()));
  EXPECT_EQ(sys.transport->active_flows(), 0u);
  for (const auto& id : sys.farm.list()) {
    EXPECT_EQ(sys.farm.find(id)->usage().reserved_bps, 0);
  }
}

TEST(QoSManager, RepeatedNegotiationsConsumeCapacity) {
  // Each SUCCEEDED negotiation holds resources; eventually requests are
  // refused (FAILEDTRYLATER) or degraded — never wrongly SUCCEEDED.
  TestSystem sys(/*access_bps=*/200'000'000, /*backbone_bps=*/20'000'000,
                 /*server_bps=*/200'000'000);
  QoSManager manager(sys.catalog, sys.farm, *sys.transport);
  const UserProfile profile = TestSystem::tolerant_profile();
  std::vector<NegotiationResult> held;
  int succeeded = 0;
  int degraded_or_refused = 0;
  for (int i = 0; i < 40; ++i) {
    NegotiationResult outcome = manager.negotiate(make_negotiation_request(sys.client, "article", profile));
    if (outcome.verdict == NegotiationStatus::kSucceeded) {
      ++succeeded;
    } else {
      ++degraded_or_refused;
    }
    if (outcome.has_commitment()) held.push_back(std::move(outcome));
  }
  EXPECT_GT(succeeded, 0);
  EXPECT_GT(degraded_or_refused, 0);
  // Backbone is never oversubscribed.
  EXPECT_LE(sys.transport->link_usage(0).reserved_bps, 20'000'000);
}

TEST(QoSManager, TruncationIsReportedAsProblem) {
  TestSystem sys;
  NegotiationConfig config;
  config.enumeration.max_offers = 3;  // the article yields 20 combinations
  QoSManager manager(sys.catalog, sys.farm, *sys.transport, CostModel{}, config);
  NegotiationResult outcome =
      manager.negotiate(make_negotiation_request(sys.client, "article", TestSystem::tolerant_profile()));
  ASSERT_TRUE(outcome.offers.truncated);
  bool mentioned = false;
  for (const auto& p : outcome.problems) {
    mentioned |= p.find("truncated") != std::string::npos;
  }
  EXPECT_TRUE(mentioned);
}

TEST(QoSManager, NegotiateDocumentRejectsNull) {
  TestSystem sys;
  QoSManager manager(sys.catalog, sys.farm, *sys.transport);
  NegotiationResult outcome =
      manager.negotiate(make_negotiation_request(sys.client, std::shared_ptr<const MultimediaDocument>{},
                                                TestSystem::tolerant_profile()));
  EXPECT_EQ(outcome.verdict, NegotiationStatus::kFailedWithoutOffer);
}

TEST(QoSManager, NegotiateDocumentWorksWithoutCatalogEntry) {
  // Renegotiation path: the document may have been dropped from the catalog
  // while a session still holds it.
  TestSystem sys;
  QoSManager manager(sys.catalog, sys.farm, *sys.transport);
  auto doc = sys.catalog.find("article");
  sys.catalog.remove("article");
  NegotiationResult outcome =
      manager.negotiate(make_negotiation_request(sys.client, doc, TestSystem::tolerant_profile()));
  EXPECT_EQ(outcome.verdict, NegotiationStatus::kSucceeded);
}

TEST(QoSManager, ParallelClassificationPathProducesSameOutcome) {
  TestSystem sys;
  NegotiationConfig serial_config;
  serial_config.parallel_threshold = 0;
  NegotiationConfig parallel_config;
  parallel_config.parallel_threshold = 1;
  QoSManager serial(sys.catalog, sys.farm, *sys.transport, CostModel{}, serial_config);
  NegotiationResult a = serial.negotiate(make_negotiation_request(sys.client, "article", TestSystem::tolerant_profile()));
  a.commitment.release();
  QoSManager parallel(sys.catalog, sys.farm, *sys.transport, CostModel{}, parallel_config);
  NegotiationResult b =
      parallel.negotiate(make_negotiation_request(sys.client, "article", TestSystem::tolerant_profile()));
  ASSERT_EQ(a.offers.offers.size(), b.offers.offers.size());
  for (std::size_t i = 0; i < a.offers.offers.size(); ++i) {
    EXPECT_EQ(a.offers.offers[i].components[0].variant->id,
              b.offers.offers[i].components[0].variant->id);
  }
  EXPECT_EQ(a.committed_index, b.committed_index);
}

}  // namespace
}  // namespace qosnp
