#include "baseline/negotiators.hpp"

#include <gtest/gtest.h>

#include "test_system.hpp"

namespace qosnp {
namespace {

using testing::TestSystem;

TEST(Baselines, NamesAreDistinct) {
  TestSystem sys;
  SmartNegotiator smart(sys.catalog, sys.farm, *sys.transport);
  BasicNegotiator basic(sys.catalog, sys.farm, *sys.transport);
  CostOnlyNegotiator cost(sys.catalog, sys.farm, *sys.transport, CostModel{});
  QoSOnlyNegotiator qos(sys.catalog, sys.farm, *sys.transport, CostModel{});
  EXPECT_EQ(smart.name(), "smart");
  EXPECT_EQ(basic.name(), "basic");
  EXPECT_EQ(cost.name(), "cost-only");
  EXPECT_EQ(qos.name(), "qos-only");
}

TEST(BasicNegotiator, CommitsExactlyOneStaticOffer) {
  TestSystem sys;
  BasicNegotiator basic(sys.catalog, sys.farm, *sys.transport);
  NegotiationResult outcome =
      basic.negotiate(make_negotiation_request(sys.client, "article", TestSystem::tolerant_profile()));
  EXPECT_EQ(outcome.verdict, NegotiationStatus::kSucceeded);
  EXPECT_EQ(outcome.offers.offers.size(), 1u);  // no alternatives, no ladder
  EXPECT_EQ(outcome.committed_index, 0u);
}

TEST(BasicNegotiator, RejectsWhenNoVariantSatisfiesDesired) {
  TestSystem sys;
  BasicNegotiator basic(sys.catalog, sys.farm, *sys.transport);
  UserProfile greedy = TestSystem::tolerant_profile();
  greedy.mm.video->desired = VideoQoS{ColorDepth::kSuperColor, 60, 1920};
  NegotiationResult outcome = basic.negotiate(make_negotiation_request(sys.client, "article", greedy));
  // The smart negotiator degrades gracefully here (FAILEDWITHOFFER); the
  // static baseline simply has nothing to offer.
  EXPECT_EQ(outcome.verdict, NegotiationStatus::kFailedWithoutOffer);
}

TEST(BasicNegotiator, FailsTryLaterWithoutFallback) {
  // Saturate the one server hosting the desired-satisfying variant: the
  // static baseline rejects although alternates exist.
  TestSystem sys;
  BasicNegotiator basic(sys.catalog, sys.farm, *sys.transport);
  UserProfile profile = TestSystem::tolerant_profile();
  NegotiationResult probe = basic.negotiate(make_negotiation_request(sys.client, "article", profile));
  ASSERT_TRUE(probe.has_commitment());
  // Find which server the static choice used for video and choke it.
  ServerId used;
  for (const auto& c : probe.offers.offers[0].components) {
    if (c.requirements.guarantee == GuaranteeClass::kGuaranteed) {
      used = c.variant->server;
      break;
    }
  }
  probe.commitment.release();
  sys.farm.find(used)->degrade(0.9999);
  NegotiationResult outcome = basic.negotiate(make_negotiation_request(sys.client, "article", profile));
  EXPECT_EQ(outcome.verdict, NegotiationStatus::kFailedTryLater);
  // The smart procedure serves the same request from the other server.
  SmartNegotiator smart(sys.catalog, sys.farm, *sys.transport);
  NegotiationResult smart_outcome = smart.negotiate(make_negotiation_request(sys.client, "article", profile));
  EXPECT_TRUE(smart_outcome.verdict == NegotiationStatus::kSucceeded ||
              smart_outcome.verdict == NegotiationStatus::kFailedWithOffer);
}

TEST(CostOnlyNegotiator, PicksCheapestCommittableOffer) {
  TestSystem sys;
  CostOnlyNegotiator cost(sys.catalog, sys.farm, *sys.transport, CostModel{});
  NegotiationResult outcome =
      cost.negotiate(make_negotiation_request(sys.client, "article", TestSystem::tolerant_profile()));
  ASSERT_TRUE(outcome.has_commitment());
  EXPECT_EQ(outcome.committed_index, 0u);
  for (std::size_t i = 1; i < outcome.offers.offers.size(); ++i) {
    EXPECT_LE(outcome.offers.offers[i - 1].total_cost(),
              outcome.offers.offers[i].total_cost());
  }
  // The cheapest offer is typically the degraded one: cost-only ignores the
  // user's desired QoS (Sec. 5's argument against it).
  const SystemOffer& committed = outcome.offers.offers[outcome.committed_index];
  EXPECT_NE(committed.sns, Sns::kDesirable);
}

TEST(QoSOnlyNegotiator, PicksRichestOfferIgnoringCost) {
  TestSystem sys;
  QoSOnlyNegotiator qos(sys.catalog, sys.farm, *sys.transport, CostModel{});
  UserProfile profile = TestSystem::tolerant_profile();
  profile.mm.cost.max_cost = Money::cents(1);  // budget the richest offer busts
  NegotiationResult outcome = qos.negotiate(make_negotiation_request(sys.client, "article", profile));
  ASSERT_TRUE(outcome.has_commitment());
  // QoS-only ignores the budget -> the committed offer violates it.
  EXPECT_EQ(outcome.verdict, NegotiationStatus::kFailedWithOffer);
  EXPECT_GT(outcome.offers.offers[outcome.committed_index].total_cost(),
            profile.mm.cost.max_cost);
}

TEST(Baselines, LocalAndCompatibilityChecksStillApply) {
  TestSystem sys;
  ClientMachine bw = sys.client;
  bw.screen = ScreenSpec{640, 480, ColorDepth::kBlackWhite};
  UserProfile profile = TestSystem::tolerant_profile();
  profile.mm.video->worst = VideoQoS{ColorDepth::kColor, 10, 320};
  for (auto* negotiator : std::initializer_list<Negotiator*>{}) {
    (void)negotiator;
  }
  BasicNegotiator basic(sys.catalog, sys.farm, *sys.transport);
  CostOnlyNegotiator cost(sys.catalog, sys.farm, *sys.transport, CostModel{});
  EXPECT_EQ(basic.negotiate(make_negotiation_request(bw, "article", profile)).verdict,
            NegotiationStatus::kFailedWithLocalOffer);
  EXPECT_EQ(cost.negotiate(make_negotiation_request(bw, "article", profile)).verdict,
            NegotiationStatus::kFailedWithLocalOffer);
  EXPECT_EQ(basic.negotiate(make_negotiation_request(sys.client, "ghost", profile)).verdict,
            NegotiationStatus::kFailedWithoutOffer);
  EXPECT_EQ(cost.negotiate(make_negotiation_request(sys.client, "ghost", profile)).verdict,
            NegotiationStatus::kFailedWithoutOffer);
}

TEST(Baselines, SmartServiceRateDominatesBasicUnderLoad) {
  // Sequential arrivals against finite capacity: the smart procedure keeps
  // serving (with degraded offers) after the static baseline starts
  // rejecting — the paper's availability claim in miniature.
  TestSystem smart_sys(/*access_bps=*/200'000'000, /*backbone_bps=*/30'000'000,
                       /*server_bps=*/200'000'000);
  TestSystem basic_sys(/*access_bps=*/200'000'000, /*backbone_bps=*/30'000'000,
                       /*server_bps=*/200'000'000);
  SmartNegotiator smart(smart_sys.catalog, smart_sys.farm, *smart_sys.transport);
  BasicNegotiator basic(basic_sys.catalog, basic_sys.farm, *basic_sys.transport);
  const UserProfile profile = TestSystem::tolerant_profile();

  int smart_served = 0;
  int basic_served = 0;
  std::vector<NegotiationResult> held;
  for (int i = 0; i < 30; ++i) {
    auto a = smart.negotiate(make_negotiation_request(smart_sys.client, "article", profile));
    if (a.has_commitment()) {
      ++smart_served;
      held.push_back(std::move(a));
    }
    auto b = basic.negotiate(make_negotiation_request(basic_sys.client, "article", profile));
    if (b.has_commitment()) {
      ++basic_served;
      held.push_back(std::move(b));
    }
  }
  EXPECT_GT(smart_served, basic_served);
}

}  // namespace
}  // namespace qosnp
