// Shared integration fixture: a small but complete news-on-demand system —
// two media servers, a dumbbell network, one client, and a two-monomedia
// document with a variant ladder spread across the servers.
#pragma once

#include <memory>

#include "core/qos_manager.hpp"
#include "document/catalog.hpp"
#include "document/corpus.hpp"
#include "server/media_server.hpp"

namespace qosnp::testing {

struct TestSystem {
  Catalog catalog;
  std::unique_ptr<TransportService> transport;
  ServerFarm farm;
  ClientMachine client;

  TestSystem(std::int64_t access_bps = 50'000'000, std::int64_t backbone_bps = 200'000'000,
             std::int64_t server_bps = 100'000'000, int server_sessions = 32) {
    transport = std::make_unique<TransportService>(
        Topology::dumbbell(1, 2, access_bps, backbone_bps));
    for (int i = 0; i < 2; ++i) {
      MediaServerConfig config;
      config.id = i == 0 ? "server-a" : "server-b";
      config.node = "server-node-" + std::to_string(i);
      config.disk_bandwidth_bps = server_bps;
      config.max_sessions = server_sessions;
      farm.add(std::move(config));
    }
    client.name = "client-0";
    client.node = "client-0";
    client.screen = ScreenSpec{1920, 1080, ColorDepth::kSuperColor};
    client.decoders = {CodingFormat::kMPEG1,     CodingFormat::kMPEG2,
                       CodingFormat::kMJPEG,     CodingFormat::kPCM,
                       CodingFormat::kADPCM,     CodingFormat::kMPEGAudio,
                       CodingFormat::kPlainText, CodingFormat::kJPEG,
                       CodingFormat::kGIF};
    client.max_audio = AudioQuality::kCD;
    catalog.add(news_article());
  }

  /// "article": video ladder (colour/grey/b&w at various rates) on both
  /// servers + an audio ladder + an english/french text.
  static MultimediaDocument news_article() {
    MultimediaDocument doc;
    doc.id = "article";
    doc.title = "Test news article";
    doc.copyright_cost = Money::cents(50);
    const double duration = 120.0;

    Monomedia video;
    video.id = "article/video";
    video.kind = MediaKind::kVideo;
    video.duration_s = duration;
    video.variants = {
        make_video_variant("article/video/hi", VideoQoS{ColorDepth::kColor, 25, 640},
                           CodingFormat::kMPEG1, duration, "server-a"),
        make_video_variant("article/video/hi-b", VideoQoS{ColorDepth::kColor, 25, 640},
                           CodingFormat::kMPEG1, duration, "server-b"),
        make_video_variant("article/video/mid", VideoQoS{ColorDepth::kGray, 15, 640},
                           CodingFormat::kMPEG1, duration, "server-b"),
        make_video_variant("article/video/lo", VideoQoS{ColorDepth::kBlackWhite, 10, 320},
                           CodingFormat::kMPEG1, duration, "server-a"),
        make_video_variant("article/video/mjpeg", VideoQoS{ColorDepth::kSuperColor, 30, 1280},
                           CodingFormat::kMJPEG, duration, "server-a"),
    };
    doc.monomedia.push_back(std::move(video));

    Monomedia audio;
    audio.id = "article/audio";
    audio.kind = MediaKind::kAudio;
    audio.duration_s = duration;
    audio.variants = {
        make_audio_variant("article/audio/cd", AudioQuality::kCD, CodingFormat::kPCM, duration,
                           "server-a"),
        make_audio_variant("article/audio/tel", AudioQuality::kTelephone,
                           CodingFormat::kADPCM, duration, "server-b"),
    };
    doc.monomedia.push_back(std::move(audio));

    Monomedia text;
    text.id = "article/text";
    text.kind = MediaKind::kText;
    text.variants = {
        make_text_variant("article/text/en", Language::kEnglish, CodingFormat::kPlainText,
                          8'000, "server-a"),
        make_text_variant("article/text/fr", Language::kFrench, CodingFormat::kPlainText,
                          8'000, "server-b"),
    };
    doc.monomedia.push_back(std::move(text));
    return doc;
  }

  /// Profile wanting video+audio+text, tolerant floor, generous budget.
  static UserProfile tolerant_profile() {
    UserProfile p = default_user_profile();
    p.name = "tolerant";
    p.mm.image.reset();
    p.mm.video->desired = VideoQoS{ColorDepth::kColor, 25, 640};
    p.mm.video->worst = VideoQoS{ColorDepth::kBlackWhite, 10, 320};
    p.mm.audio->desired = AudioQoS{AudioQuality::kCD};
    p.mm.audio->worst = AudioQoS{AudioQuality::kTelephone};
    p.mm.text->desired = Language::kEnglish;
    p.mm.text->acceptable = {Language::kFrench};
    p.mm.cost.max_cost = Money::dollars(20);
    return p;
  }
};

}  // namespace qosnp::testing
