// NegotiationService behaviour: concurrent requests through the bounded
// queue and worker pool run the full Step 1-5 pipeline against the shared
// farm/transport, overload is shed with FAILEDTRYLATER (queue full or
// deadline expired), every submitted request gets exactly one response, and
// nothing stays reserved once the opened sessions are completed.
#include "service/negotiation_service.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "test_service.hpp"

namespace qosnp {
namespace {

using testing::ServiceSystem;
using testing::TestSystem;

NegotiationRequest make_request(const ServiceSystem& sys, std::uint64_t id,
                            const UserProfile& profile) {
  NegotiationRequest req;
  req.id = id;
  req.client = sys.clients[id % sys.clients.size()];
  req.document = "article";
  req.profile = profile;
  return req;
}

TEST(NegotiationService, ConcurrentRequestsAllServedOnRichFarm) {
  ServiceSystem sys;
  ServiceConfig config;
  config.workers = 4;
  config.queue_capacity = 128;
  NegotiationService service(*sys.manager, *sys.sessions, config);
  service.start();

  const UserProfile profile = TestSystem::tolerant_profile();
  std::vector<std::future<NegotiationResult>> futures;
  for (std::uint64_t i = 0; i < 64; ++i) {
    futures.push_back(service.submit(make_request(sys, i, profile)));
  }
  std::vector<SessionId> opened;
  for (auto& f : futures) {
    const NegotiationResult resp = f.get();
    EXPECT_EQ(resp.verdict, NegotiationStatus::kSucceeded);
    EXPECT_EQ(resp.shed, ShedReason::kNone);
    ASSERT_NE(resp.session_id, 0u);
    EXPECT_GE(resp.worker, 0);
    EXPECT_LE(resp.queue_ms, resp.total_ms);
    opened.push_back(resp.session_id);
    // Auto-confirmed: the session is playing.
    const auto view = sys.sessions->snapshot(resp.session_id);
    ASSERT_TRUE(view.has_value());
    EXPECT_EQ(view->state, SessionState::kPlaying);
  }
  service.stop();

  const ServiceReport report = service.report();
  EXPECT_EQ(report.submitted, 64u);
  EXPECT_EQ(report.processed, 64u);
  EXPECT_EQ(report.shed_queue_full, 0u);
  EXPECT_EQ(report.sessions_opened, 64u);
  EXPECT_EQ(report.sessions_confirmed, 64u);
  EXPECT_EQ(report.count(NegotiationStatus::kSucceeded), 64u);
  EXPECT_EQ(report.latency.count(), 64u);

  // admits - releases = live sessions, then drain to zero.
  EXPECT_EQ(sys.sessions->active_count(), opened.size());
  for (SessionId id : opened) sys.sessions->complete(id);
  EXPECT_TRUE(sys.drained());
}

TEST(NegotiationService, FullQueueShedsWithFailedTryLater) {
  ServiceSystem sys;
  ServiceConfig config;
  config.workers = 1;
  config.queue_capacity = 2;
  config.simulated_rtt_ms = 5.0;  // keep the single worker busy
  NegotiationService service(*sys.manager, *sys.sessions, config);
  service.start();

  const UserProfile profile = TestSystem::tolerant_profile();
  std::vector<std::future<NegotiationResult>> futures;
  for (std::uint64_t i = 0; i < 32; ++i) {
    futures.push_back(service.submit(make_request(sys, i, profile)));
  }
  std::size_t shed = 0;
  std::size_t served = 0;
  for (auto& f : futures) {
    const NegotiationResult resp = f.get();
    if (resp.shed == ShedReason::kQueueFull) {
      ++shed;
      EXPECT_EQ(resp.verdict, NegotiationStatus::kFailedTryLater);
      EXPECT_EQ(resp.session_id, 0u);
      EXPECT_EQ(resp.worker, -1);
    } else {
      ++served;
      if (resp.session_id != 0) sys.sessions->complete(resp.session_id);
    }
  }
  service.stop();

  // A 32-deep burst against capacity 2 + one busy worker must shed.
  EXPECT_GT(shed, 0u);
  EXPECT_EQ(shed + served, 32u);
  const ServiceReport report = service.report();
  EXPECT_EQ(report.shed_queue_full, shed);
  EXPECT_EQ(report.processed, served);
  EXPECT_LE(report.queue_high_water, config.queue_capacity);
  EXPECT_EQ(report.count(NegotiationStatus::kFailedTryLater), shed);
  EXPECT_TRUE(sys.drained());
}

TEST(NegotiationService, QueueDeadlineShedsAgedRequests) {
  ServiceSystem sys;
  ServiceConfig config;
  config.workers = 1;
  config.queue_capacity = 64;
  config.deadline_ms = 1.0;
  config.simulated_rtt_ms = 10.0;  // each served request stalls the queue past the deadline
  NegotiationService service(*sys.manager, *sys.sessions, config);
  service.start();

  const UserProfile profile = TestSystem::tolerant_profile();
  std::vector<std::future<NegotiationResult>> futures;
  for (std::uint64_t i = 0; i < 8; ++i) {
    futures.push_back(service.submit(make_request(sys, i, profile)));
  }
  std::size_t expired = 0;
  for (auto& f : futures) {
    const NegotiationResult resp = f.get();
    if (resp.shed == ShedReason::kDeadlineExpired) {
      ++expired;
      EXPECT_EQ(resp.verdict, NegotiationStatus::kFailedTryLater);
      EXPECT_EQ(resp.session_id, 0u);
      EXPECT_GT(resp.queue_ms, config.deadline_ms);
    } else if (resp.session_id != 0) {
      sys.sessions->complete(resp.session_id);
    }
  }
  service.stop();
  EXPECT_GT(expired, 0u);
  EXPECT_EQ(service.report().shed_deadline, expired);
  EXPECT_TRUE(sys.drained());
}

TEST(NegotiationService, DeclinedDegradedOfferReleasesItsCommitment) {
  ServiceSystem sys;
  ServiceConfig config;
  config.workers = 2;
  NegotiationService service(*sys.manager, *sys.sessions, config);
  service.start();

  // A one-cent budget makes every offer unacceptable on cost, so the
  // procedure ends FAILEDWITHOFFER with a real commitment behind the offer.
  UserProfile stingy = TestSystem::tolerant_profile();
  stingy.mm.cost.max_cost = Money::cents(1);

  NegotiationRequest declined = make_request(sys, 1, stingy);
  declined.accept_degraded = false;
  const NegotiationResult declined_resp = service.submit(std::move(declined)).get();
  EXPECT_EQ(declined_resp.verdict, NegotiationStatus::kFailedWithOffer);
  EXPECT_EQ(declined_resp.session_id, 0u);
  // Step 6 decline: the worker released the commitment immediately.
  EXPECT_TRUE(sys.drained());

  NegotiationRequest accepted = make_request(sys, 2, stingy);
  accepted.accept_degraded = true;
  const NegotiationResult accepted_resp = service.submit(std::move(accepted)).get();
  EXPECT_EQ(accepted_resp.verdict, NegotiationStatus::kFailedWithOffer);
  ASSERT_NE(accepted_resp.session_id, 0u);
  EXPECT_EQ(sys.sessions->active_count(), 1u);

  service.stop();
  sys.sessions->complete(accepted_resp.session_id);
  EXPECT_TRUE(sys.drained());
}

TEST(NegotiationService, StopDrainsTheBacklogBeforeJoining) {
  ServiceSystem sys;
  ServiceConfig config;
  config.workers = 2;
  config.queue_capacity = 64;
  config.simulated_rtt_ms = 2.0;
  NegotiationService service(*sys.manager, *sys.sessions, config);
  service.start();

  const UserProfile profile = TestSystem::tolerant_profile();
  std::vector<std::future<NegotiationResult>> futures;
  for (std::uint64_t i = 0; i < 24; ++i) {
    futures.push_back(service.submit(make_request(sys, i, profile)));
  }
  service.stop();  // must resolve every accepted request, not abandon it

  std::size_t answered = 0;
  for (auto& f : futures) {
    const NegotiationResult resp = f.get();  // would throw on a broken promise
    ++answered;
    if (resp.session_id != 0) sys.sessions->complete(resp.session_id);
  }
  EXPECT_EQ(answered, 24u);
  EXPECT_TRUE(sys.drained());

  // Submissions after stop() are shed, not lost.
  const NegotiationResult late = service.submit(make_request(sys, 99, profile)).get();
  EXPECT_EQ(late.verdict, NegotiationStatus::kFailedTryLater);
  EXPECT_EQ(late.shed, ShedReason::kQueueFull);
}

TEST(NegotiationService, ReportAccountsForEverySubmission) {
  ServiceSystem sys;
  ServiceConfig config;
  config.workers = 3;
  config.queue_capacity = 4;
  config.simulated_rtt_ms = 1.0;
  NegotiationService service(*sys.manager, *sys.sessions, config);
  service.start();

  const UserProfile profile = TestSystem::tolerant_profile();
  std::vector<std::future<NegotiationResult>> futures;
  for (std::uint64_t i = 0; i < 40; ++i) {
    futures.push_back(service.submit(make_request(sys, i, profile)));
  }
  for (auto& f : futures) {
    const NegotiationResult resp = f.get();
    if (resp.session_id != 0) sys.sessions->complete(resp.session_id);
  }
  service.stop();

  const ServiceReport report = service.report();
  EXPECT_EQ(report.submitted, 40u);
  EXPECT_EQ(report.processed + report.shed_queue_full, 40u);
  std::size_t by_status_total = 0;
  for (std::size_t n : report.by_status) by_status_total += n;
  EXPECT_EQ(by_status_total, 40u);

  const SimMetrics metrics = report.to_sim_metrics();
  EXPECT_EQ(metrics.arrivals, 40u);
  EXPECT_EQ(metrics.service_requests, 40u);
  EXPECT_EQ(metrics.shed_queue_full, report.shed_queue_full);
  EXPECT_LE(metrics.latency_p50_ms, metrics.latency_p95_ms);
  EXPECT_LE(metrics.latency_p95_ms, metrics.latency_p99_ms);
  EXPECT_GE(metrics.shed_rate(), 0.0);
  EXPECT_TRUE(sys.drained());
}

TEST(NegotiationService, SubmitAsyncInvokesCallbackOnceWithTheResult) {
  ServiceSystem sys;
  ServiceConfig config;
  config.workers = 2;
  config.queue_capacity = 64;
  NegotiationService service(*sys.manager, *sys.sessions, config);
  service.start();

  const UserProfile profile = TestSystem::tolerant_profile();
  constexpr std::uint64_t kRequests = 16;
  std::mutex mu;
  std::condition_variable cv;
  std::vector<NegotiationResult> results;
  std::atomic<int> calls{0};
  const std::thread::id submitter = std::this_thread::get_id();
  std::atomic<bool> on_submitter_thread{false};
  for (std::uint64_t i = 0; i < kRequests; ++i) {
    service.submit_async(make_request(sys, i, profile), [&](NegotiationResult result) {
      ++calls;
      if (std::this_thread::get_id() == submitter) on_submitter_thread = true;
      std::lock_guard<std::mutex> lock(mu);
      results.push_back(std::move(result));
      cv.notify_one();
    });
  }
  {
    std::unique_lock<std::mutex> lock(mu);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(30),
                            [&] { return results.size() == kRequests; }));
  }
  service.stop();

  EXPECT_EQ(calls.load(), static_cast<int>(kRequests));
  // Nothing was shed (deep queue), so every callback ran on a worker.
  EXPECT_FALSE(on_submitter_thread.load());
  for (const NegotiationResult& resp : results) {
    EXPECT_EQ(resp.verdict, NegotiationStatus::kSucceeded);
    EXPECT_EQ(resp.shed, ShedReason::kNone);
    EXPECT_GE(resp.worker, 0);
    if (resp.session_id != 0) sys.sessions->complete(resp.session_id);
  }
  EXPECT_TRUE(sys.drained());
}

TEST(NegotiationService, SubmitAsyncShedRunsCallbackOnSubmitterThread) {
  ServiceSystem sys;
  ServiceConfig config;
  config.workers = 1;
  config.queue_capacity = 1;
  config.simulated_rtt_ms = 20.0;  // keep the single worker busy
  NegotiationService service(*sys.manager, *sys.sessions, config);
  service.start();

  const UserProfile profile = TestSystem::tolerant_profile();
  const std::thread::id submitter = std::this_thread::get_id();
  std::mutex mu;
  std::condition_variable cv;
  std::size_t answered = 0;
  std::size_t shed_on_this_thread = 0;
  std::vector<SessionId> opened;
  constexpr std::uint64_t kBurst = 24;
  for (std::uint64_t i = 0; i < kBurst; ++i) {
    service.submit_async(make_request(sys, i, profile), [&](NegotiationResult result) {
      const bool inline_shed = std::this_thread::get_id() == submitter;
      std::lock_guard<std::mutex> lock(mu);
      if (result.shed == ShedReason::kQueueFull) {
        EXPECT_TRUE(inline_shed);  // queue-edge sheds resolve on the submitter
        EXPECT_EQ(result.verdict, NegotiationStatus::kFailedTryLater);
        EXPECT_EQ(result.worker, -1);
        ++shed_on_this_thread;
      } else if (result.session_id != 0) {
        opened.push_back(result.session_id);
      }
      ++answered;
      cv.notify_one();
    });
  }
  {
    std::unique_lock<std::mutex> lock(mu);
    ASSERT_TRUE(
        cv.wait_for(lock, std::chrono::seconds(30), [&] { return answered == kBurst; }));
  }
  service.stop();

  // A 24-deep burst against capacity 1 + one slow worker must shed inline.
  EXPECT_GT(shed_on_this_thread, 0u);
  EXPECT_EQ(service.report().shed_queue_full, shed_on_this_thread);
  for (SessionId id : opened) sys.sessions->complete(id);
  EXPECT_TRUE(sys.drained());
}

}  // namespace
}  // namespace qosnp
