// One NegotiationPlanCache shared by a full worker pool, hammered while the
// catalog churns underneath it. Meant to run under tsan: the interesting
// failures here are shard-lock races and torn LRU state, not wrong verdicts.
// After the storm the cache's conservation law must still hold exactly and
// the service-side metrics mirror must agree with the internal counters.
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "core/plan_cache.hpp"
#include "service/negotiation_service.hpp"
#include "test_service.hpp"

namespace qosnp {
namespace {

using testing::ServiceSystem;
using testing::TestSystem;

TEST(PlanCacheConcurrency, SharedCacheSurvivesWorkerStormWithCatalogChurn) {
  NegotiationConfig negotiation;
  // Few shards + tiny capacity on purpose: maximum contention and constant
  // eviction traffic, so every code path of the shard runs under fire.
  auto cache = std::make_shared<NegotiationPlanCache>(CachePolicy{/*shards=*/2, /*capacity=*/8});
  negotiation.plan_cache = cache;
  ServiceSystem sys(16, 1'000'000'000, 10'000'000'000, 10'000'000'000, 100'000,
                    std::move(negotiation));

  ServiceConfig config;
  config.workers = 8;
  config.queue_capacity = 4096;
  NegotiationService service(*sys.manager, *sys.sessions, config);
  service.start();

  // Churn thread: re-adds the document (epoch bump -> stale drops) while the
  // workers replay plans cached against older epochs.
  std::atomic<bool> churning{true};
  std::thread churn([&] {
    while (churning.load(std::memory_order_relaxed)) {
      sys.catalog.add(TestSystem::news_article());
      std::this_thread::yield();
    }
  });

  const UserProfile profiles[2] = {TestSystem::tolerant_profile(), [] {
                                     UserProfile p = TestSystem::tolerant_profile();
                                     p.mm.audio.reset();
                                     return p;
                                   }()};
  constexpr int kRequests = 600;
  std::vector<std::future<NegotiationResult>> futures;
  futures.reserve(kRequests);
  for (int i = 0; i < kRequests; ++i) {
    NegotiationRequest request = make_negotiation_request(
        sys.clients[static_cast<std::size_t>(i) % sys.clients.size()], "article",
        profiles[i % 2]);
    request.id = static_cast<std::uint64_t>(i) + 1;
    if (i % 17 == 0) request.cache = CacheUse::kRefresh;
    if (i % 23 == 0) request.cache = CacheUse::kBypass;
    futures.push_back(service.submit(std::move(request)));
  }
  std::size_t resolved = 0;
  for (auto& f : futures) {
    NegotiationResult resp = f.get();
    ++resolved;
    if (resp.session_id != 0) sys.sessions->complete(resp.session_id);
  }
  churning.store(false, std::memory_order_relaxed);
  churn.join();
  service.stop();

  EXPECT_EQ(resolved, static_cast<std::size_t>(kRequests));
  EXPECT_TRUE(sys.drained());

  const PlanCacheStats stats = cache->stats();
  EXPECT_EQ(stats.lookups, stats.hits + stats.misses);
  EXPECT_LE(stats.stale, stats.misses);
  EXPECT_GT(stats.lookups, 0u);
  EXPECT_GT(stats.stores, 0u);
  EXPECT_LE(cache->size(), cache->policy().capacity);

  // The service bound the manager's cache into its registry at construction;
  // after the drain both sides must report the same totals.
  EXPECT_EQ(service.metrics().counter_value("qosnp_plan_cache_hits"), stats.hits);
  EXPECT_EQ(service.metrics().counter_value("qosnp_plan_cache_misses"), stats.misses);
  EXPECT_EQ(service.metrics().counter_value("qosnp_plan_cache_stale"), stats.stale);
  EXPECT_EQ(service.metrics().counter_value("qosnp_plan_cache_evictions"), stats.evictions);
}

TEST(PlanCacheConcurrency, TwoServicesShareOneCacheAndOneRegistry) {
  NegotiationConfig negotiation;
  auto cache = std::make_shared<NegotiationPlanCache>();
  negotiation.plan_cache = cache;
  ServiceSystem sys(8, 1'000'000'000, 10'000'000'000, 10'000'000'000, 100'000,
                    std::move(negotiation));

  MetricsRegistry shared_registry;
  ServiceConfig config;
  config.workers = 2;
  config.queue_capacity = 512;
  config.metrics = &shared_registry;
  // Both services bind the same cache into the same external registry; the
  // second bind must be a no-op (no double catch-up of prior counts).
  NegotiationService a(*sys.manager, *sys.sessions, config);
  NegotiationService b(*sys.manager, *sys.sessions, config);
  a.start();
  b.start();

  std::vector<std::future<NegotiationResult>> futures;
  for (int i = 0; i < 120; ++i) {
    NegotiationRequest request = make_negotiation_request(
        sys.clients[static_cast<std::size_t>(i) % sys.clients.size()], "article",
        TestSystem::tolerant_profile());
    request.id = static_cast<std::uint64_t>(i) + 1;
    futures.push_back((i % 2 == 0 ? a : b).submit(std::move(request)));
  }
  for (auto& f : futures) {
    NegotiationResult resp = f.get();
    if (resp.session_id != 0) sys.sessions->complete(resp.session_id);
  }
  a.stop();
  b.stop();
  EXPECT_TRUE(sys.drained());

  const PlanCacheStats stats = cache->stats();
  EXPECT_EQ(stats.lookups, 120u);
  EXPECT_EQ(stats.lookups, stats.hits + stats.misses);
  EXPECT_GT(stats.hits, 0u);
  EXPECT_EQ(shared_registry.counter_value("qosnp_plan_cache_hits"), stats.hits);
  EXPECT_EQ(shared_registry.counter_value("qosnp_plan_cache_misses"), stats.misses);
}

}  // namespace
}  // namespace qosnp
