#include "qosmap/mapping.hpp"

#include <gtest/gtest.h>

#include "document/corpus.hpp"

namespace qosnp {
namespace {

TEST(QosMap, VideoBitRatesFollowPaperFormula) {
  // maxBitRate = (maximum frame length) x (frame rate)
  // avgBitRate = (average frame length) x (frame rate)
  Variant v = make_video_variant("v", VideoQoS{ColorDepth::kColor, 25, 640},
                                 CodingFormat::kMPEG1, 60.0, "s");
  const StreamRequirements req = map_variant(v, 60.0, TimeProfile{});
  EXPECT_EQ(req.max_bit_rate_bps, v.max_block_bytes * 8 * 25);
  EXPECT_EQ(req.avg_bit_rate_bps, v.avg_block_bytes * 8 * 25);
  EXPECT_GE(req.max_bit_rate_bps, req.avg_bit_rate_bps);
}

TEST(QosMap, VideoTargetsMatchSte90Constants) {
  Variant v = make_video_variant("v", VideoQoS{ColorDepth::kColor, 25, 640},
                                 CodingFormat::kMPEG1, 60.0, "s");
  const StreamRequirements req = map_variant(v, 60.0, TimeProfile{});
  EXPECT_DOUBLE_EQ(req.jitter_ms, 10.0);   // [Ste 90] video jitter
  EXPECT_DOUBLE_EQ(req.loss_rate, 0.003);  // [Ste 90] video loss rate
  EXPECT_EQ(req.guarantee, GuaranteeClass::kGuaranteed);
  EXPECT_DOUBLE_EQ(req.duration_s, 60.0);
}

TEST(QosMap, AudioBitRatesFollowPaperFormula) {
  Variant v = make_audio_variant("a", AudioQuality::kCD, CodingFormat::kPCM, 30.0, "s");
  const StreamRequirements req = map_variant(v, 30.0, TimeProfile{});
  EXPECT_EQ(req.avg_bit_rate_bps,
            static_cast<std::int64_t>(v.avg_block_bytes * 8 * v.blocks_per_second));
  // CD PCM stereo: 44100 Hz x 16 bit x 2 ch = ~1.41 Mbit/s.
  EXPECT_NEAR(static_cast<double>(req.avg_bit_rate_bps), 44100.0 * 16 * 2, 44100.0 * 16 * 2 * 0.02);
  EXPECT_EQ(req.guarantee, GuaranteeClass::kGuaranteed);
}

TEST(QosMap, HigherQualityNeedsMoreThroughput) {
  const TimeProfile time;
  Variant lo = make_video_variant("lo", VideoQoS{ColorDepth::kGray, 10, 320},
                                  CodingFormat::kMPEG1, 60.0, "s");
  Variant hi = make_video_variant("hi", VideoQoS{ColorDepth::kSuperColor, 30, 1280},
                                  CodingFormat::kMPEG1, 60.0, "s");
  EXPECT_GT(map_variant(hi, 60.0, time).avg_bit_rate_bps,
            map_variant(lo, 60.0, time).avg_bit_rate_bps);
}

TEST(QosMap, DiscreteMediaPacedByDeliveryDeadline) {
  Variant t = make_text_variant("t", Language::kEnglish, CodingFormat::kPlainText, 10'000, "s");
  TimeProfile time;
  time.delivery_time_s = 10.0;
  const StreamRequirements req = map_variant(t, 0.0, time);
  EXPECT_EQ(req.max_bit_rate_bps, 10'000 * 8 / 10);
  EXPECT_EQ(req.avg_bit_rate_bps, req.max_bit_rate_bps);
  EXPECT_EQ(req.guarantee, GuaranteeClass::kBestEffort);
  EXPECT_DOUBLE_EQ(req.duration_s, 10.0);
}

TEST(QosMap, TighterDeadlineNeedsMoreThroughput) {
  Variant img = make_image_variant("i", ImageQoS{ColorDepth::kColor, 640},
                                   CodingFormat::kJPEG, "s");
  TimeProfile fast;
  fast.delivery_time_s = 2.0;
  TimeProfile slow;
  slow.delivery_time_s = 20.0;
  EXPECT_GT(map_variant(img, 0.0, fast).max_bit_rate_bps,
            map_variant(img, 0.0, slow).max_bit_rate_bps);
}

TEST(QosMap, ZeroDeadlineIsGuarded) {
  Variant t = make_text_variant("t", Language::kEnglish, CodingFormat::kPlainText, 1'000, "s");
  TimeProfile time;
  time.delivery_time_s = 0.0;
  const StreamRequirements req = map_variant(t, 0.0, time);
  EXPECT_GT(req.max_bit_rate_bps, 0);
}

TEST(QosMap, MediumTargetsDistinguishMedia) {
  EXPECT_LT(medium_targets(MediaKind::kAudio).jitter_ms,
            medium_targets(MediaKind::kVideo).jitter_ms);
  EXPECT_LT(medium_targets(MediaKind::kAudio).loss_rate,
            medium_targets(MediaKind::kVideo).loss_rate);
  EXPECT_DOUBLE_EQ(medium_targets(MediaKind::kText).loss_rate, 0.0);
}

TEST(QosMap, DescribeMentionsRates) {
  Variant v = make_video_variant("v", VideoQoS{ColorDepth::kColor, 25, 640},
                                 CodingFormat::kMPEG1, 60.0, "s");
  const std::string s = map_variant(v, 60.0, TimeProfile{}).describe();
  EXPECT_NE(s.find("kbit/s"), std::string::npos);
  EXPECT_NE(s.find("guaranteed"), std::string::npos);
}

// Parameterised sweep: for every frame rate the formula holds exactly.
class FrameRateSweep : public ::testing::TestWithParam<int> {};

TEST_P(FrameRateSweep, MaxBitRateIsMaxFrameTimesRate) {
  const int fps = GetParam();
  Variant v = make_video_variant("v", VideoQoS{ColorDepth::kColor, fps, 640},
                                 CodingFormat::kMPEG2, 60.0, "s");
  const StreamRequirements req = map_variant(v, 60.0, TimeProfile{});
  EXPECT_EQ(req.max_bit_rate_bps, v.max_block_bytes * 8 * fps);
}

INSTANTIATE_TEST_SUITE_P(Rates, FrameRateSweep, ::testing::Values(1, 5, 10, 15, 24, 25, 30, 60));

}  // namespace
}  // namespace qosnp
