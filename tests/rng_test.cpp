#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <array>
#include <vector>

namespace qosnp {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRange) {
  Rng rng(8);
  for (int i = 0; i < 1'000; ++i) {
    const double u = rng.uniform(5.0, 9.0);
    EXPECT_GE(u, 5.0);
    EXPECT_LT(u, 9.0);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng(9);
  double sum = 0.0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BelowStaysBelow) {
  Rng rng(10);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(rng.below(7), 7u);
  }
}

TEST(Rng, BelowCoversAllValues) {
  Rng rng(11);
  std::array<int, 5> seen{};
  for (int i = 0; i < 5'000; ++i) seen[rng.below(5)]++;
  for (int count : seen) EXPECT_GT(count, 700);
}

TEST(Rng, BetweenInclusive) {
  Rng rng(12);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5'000; ++i) {
    const auto v = rng.between(3, 6);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 6);
    saw_lo |= v == 3;
    saw_hi |= v == 6;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(13);
  const double rate = 0.25;
  double sum = 0.0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(rate);
  EXPECT_NEAR(sum / n, 1.0 / rate, 0.1);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(14);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, WeightedPickRespectsWeights) {
  Rng rng(15);
  const std::vector<double> weights = {1.0, 0.0, 3.0};
  std::array<int, 3> seen{};
  for (int i = 0; i < 40'000; ++i) seen[rng.weighted_pick(weights)]++;
  EXPECT_EQ(seen[1], 0);
  EXPECT_NEAR(static_cast<double>(seen[2]) / seen[0], 3.0, 0.3);
}

TEST(Rng, WeightedPickZeroTotalFallsBack) {
  Rng rng(16);
  const std::vector<double> weights = {0.0, 0.0};
  EXPECT_EQ(rng.weighted_pick(weights), 0u);
}

TEST(Rng, ForkIsIndependentButDeterministic) {
  Rng a(99);
  Rng b(99);
  Rng fa = a.fork();
  Rng fb = b.fork();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(fa.next_u64(), fb.next_u64());
  }
}

}  // namespace
}  // namespace qosnp
