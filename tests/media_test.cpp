#include "media/qos.hpp"
#include "media/types.hpp"

#include <gtest/gtest.h>

namespace qosnp {
namespace {

TEST(MediaTypes, KindOfFormat) {
  EXPECT_EQ(media_kind_of(CodingFormat::kMPEG1), MediaKind::kVideo);
  EXPECT_EQ(media_kind_of(CodingFormat::kMJPEG), MediaKind::kVideo);
  EXPECT_EQ(media_kind_of(CodingFormat::kPCM), MediaKind::kAudio);
  EXPECT_EQ(media_kind_of(CodingFormat::kMPEGAudio), MediaKind::kAudio);
  EXPECT_EQ(media_kind_of(CodingFormat::kPlainText), MediaKind::kText);
  EXPECT_EQ(media_kind_of(CodingFormat::kJPEG), MediaKind::kImage);
}

TEST(MediaTypes, ColorLadderIsOrdered) {
  EXPECT_LT(ColorDepth::kBlackWhite, ColorDepth::kGray);
  EXPECT_LT(ColorDepth::kGray, ColorDepth::kColor);
  EXPECT_LT(ColorDepth::kColor, ColorDepth::kSuperColor);
}

TEST(MediaTypes, AudioLadderIsOrdered) {
  EXPECT_LT(AudioQuality::kTelephone, AudioQuality::kRadio);
  EXPECT_LT(AudioQuality::kRadio, AudioQuality::kCD);
}

TEST(MediaTypes, SampleRates) {
  EXPECT_EQ(sample_rate_hz(AudioQuality::kTelephone), 8'000);
  EXPECT_EQ(sample_rate_hz(AudioQuality::kCD), 44'100);
  EXPECT_EQ(bits_per_sample(AudioQuality::kTelephone), 8);
  EXPECT_EQ(bits_per_sample(AudioQuality::kCD), 16);
}

TEST(MediaTypes, EnumRoundTrip) {
  for (const auto kind : {MediaKind::kVideo, MediaKind::kAudio, MediaKind::kText,
                          MediaKind::kImage}) {
    EXPECT_EQ(parse_media_kind(to_string(kind)), kind);
  }
  for (const auto f : {CodingFormat::kMPEG1, CodingFormat::kMJPEG, CodingFormat::kPCM,
                       CodingFormat::kPlainText, CodingFormat::kJPEG}) {
    EXPECT_EQ(parse_coding_format(to_string(f)), f);
  }
  for (const auto c : {ColorDepth::kBlackWhite, ColorDepth::kGray, ColorDepth::kColor,
                       ColorDepth::kSuperColor}) {
    EXPECT_EQ(parse_color_depth(to_string(c)), c);
  }
  for (const auto a : {AudioQuality::kTelephone, AudioQuality::kRadio, AudioQuality::kCD}) {
    EXPECT_EQ(parse_audio_quality(to_string(a)), a);
  }
  for (const auto l : {Language::kEnglish, Language::kFrench, Language::kGerman,
                       Language::kSpanish}) {
    EXPECT_EQ(parse_language(to_string(l)), l);
  }
  for (const auto g : {GuaranteeClass::kBestEffort, GuaranteeClass::kGuaranteed}) {
    EXPECT_EQ(parse_guarantee_class(to_string(g)), g);
  }
}

TEST(MediaTypes, ParseIsCaseInsensitiveWithAliases) {
  EXPECT_EQ(parse_color_depth("GREY"), ColorDepth::kGray);
  EXPECT_EQ(parse_color_depth("gray"), ColorDepth::kGray);
  EXPECT_EQ(parse_color_depth("bw"), ColorDepth::kBlackWhite);
  EXPECT_EQ(parse_audio_quality("cd"), AudioQuality::kCD);
  EXPECT_EQ(parse_guarantee_class("BestEffort"), GuaranteeClass::kBestEffort);
  EXPECT_FALSE(parse_color_depth("chartreuse").has_value());
  EXPECT_FALSE(parse_media_kind("smellovision").has_value());
}

TEST(VideoQoS, MeetsIsComponentWise) {
  const VideoQoS floor{ColorDepth::kGray, 15, 320};
  EXPECT_TRUE((VideoQoS{ColorDepth::kColor, 25, 640}.meets(floor)));
  EXPECT_TRUE((VideoQoS{ColorDepth::kGray, 15, 320}.meets(floor)));
  EXPECT_FALSE((VideoQoS{ColorDepth::kBlackWhite, 25, 640}.meets(floor)));
  EXPECT_FALSE((VideoQoS{ColorDepth::kColor, 10, 640}.meets(floor)));
  EXPECT_FALSE((VideoQoS{ColorDepth::kColor, 25, 160}.meets(floor)));
}

TEST(VideoQoS, ClampedToGuiRanges) {
  const VideoQoS wild{ColorDepth::kColor, 120, 4000};
  const VideoQoS c = wild.clamped();
  EXPECT_EQ(c.frame_rate_fps, kHdtvFrameRate);
  EXPECT_EQ(c.resolution, kHdtvResolution);
  const VideoQoS tiny{ColorDepth::kColor, 0, 1};
  EXPECT_EQ(tiny.clamped().frame_rate_fps, kFrozenFrameRate);
  EXPECT_EQ(tiny.clamped().resolution, kMinResolution);
}

TEST(AudioQoS, Meets) {
  EXPECT_TRUE(AudioQoS{AudioQuality::kCD}.meets(AudioQoS{AudioQuality::kTelephone}));
  EXPECT_FALSE(AudioQoS{AudioQuality::kTelephone}.meets(AudioQoS{AudioQuality::kCD}));
}

TEST(ImageQoS, Meets) {
  const ImageQoS floor{ColorDepth::kGray, 320};
  EXPECT_TRUE((ImageQoS{ColorDepth::kColor, 640}.meets(floor)));
  EXPECT_FALSE((ImageQoS{ColorDepth::kBlackWhite, 640}.meets(floor)));
}

TEST(MonomediaQoS, KindDispatch) {
  EXPECT_EQ(media_kind_of(MonomediaQoS{VideoQoS{}}), MediaKind::kVideo);
  EXPECT_EQ(media_kind_of(MonomediaQoS{AudioQoS{}}), MediaKind::kAudio);
  EXPECT_EQ(media_kind_of(MonomediaQoS{TextQoS{}}), MediaKind::kText);
  EXPECT_EQ(media_kind_of(MonomediaQoS{ImageQoS{}}), MediaKind::kImage);
}

TEST(MonomediaQoS, ToStringMentionsValues) {
  const std::string s = to_string(MonomediaQoS{VideoQoS{ColorDepth::kColor, 25, 640}});
  EXPECT_NE(s.find("color"), std::string::npos);
  EXPECT_NE(s.find("25"), std::string::npos);
  EXPECT_NE(s.find("640"), std::string::npos);
}

}  // namespace
}  // namespace qosnp
