// Population lifecycle conservation suite. Every replicate must satisfy the
// partition laws on every class:
//   arrivals  == admitted + shed + refused + abandoned
//   admitted  == completed + preempt_released
//   violations == adaptations + failed_adaptations
// plus the backend-side law opened_total == released_total (every admitted
// session ends released) and the drained() invariant (no reservation
// outlives its session). Same-seed replicates are byte-identical
// (PopulationMetrics::signature()), pruning is invisible in the outcomes,
// and the service-driven backend (labelled concurrency, so the tsan preset
// covers it) produces the same outcome counts as the direct manager
// backend.
#include "sim/population.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "document/corpus.hpp"
#include "service/service_backend.hpp"
#include "test_service.hpp"

namespace qosnp {
namespace {

using testing::ServiceSystem;

/// System + document list + the standard population attached to its client
/// nodes. Fresh per replicate so seeds fully determine the outcome.
struct PopulationFixture {
  ServiceSystem sys;
  std::vector<DocumentId> documents;
  PopulationConfig config;

  explicit PopulationFixture(std::uint64_t seed, double duration_s = 150.0,
                             NegotiationConfig negotiation = {})
      : sys(3, 1'000'000'000, 10'000'000'000, 10'000'000'000, 100'000, std::move(negotiation)) {
    CorpusConfig corpus;
    corpus.seed = 7;  // fixed: the corpus is part of the system, not the replicate
    corpus.num_documents = 8;
    corpus.min_duration_s = 30.0;
    corpus.max_duration_s = 120.0;
    for (auto& doc : generate_corpus(corpus)) sys.catalog.add(std::move(doc));
    documents = sys.catalog.list();

    config.classes = standard_population();
    for (std::size_t i = 0; i < config.classes.size(); ++i) {
      config.classes[i].machine.node = sys.clients[i].node;
    }
    config.duration_s = duration_s;
    config.seed = seed;
  }
};

TEST(PopulationConservation, EveryReplicateConservesAndDrains) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    PopulationFixture fx(seed);
    ManagerPopulationBackend backend(*fx.sys.manager, *fx.sys.sessions);
    Population population(fx.config, backend, fx.documents);
    const PopulationMetrics metrics = population.run();

    const ClassCounts t = metrics.totals();
    ASSERT_GT(t.arrivals, 0u) << "seed " << seed;
    EXPECT_TRUE(metrics.conserved()) << "seed " << seed << "\n" << metrics.signature();
    EXPECT_EQ(t.arrivals, t.admitted + t.shed + t.refused + t.abandoned) << "seed " << seed;
    EXPECT_EQ(t.admitted, t.completed + t.preempt_released) << "seed " << seed;

    // Every session ever opened (admitted *or* rejected/timed out during
    // Step 6) ended released, and no reservation survived the run.
    EXPECT_EQ(fx.sys.sessions->opened_total(), fx.sys.sessions->released_total())
        << "seed " << seed;
    EXPECT_TRUE(fx.sys.drained()) << "seed " << seed;
  }
}

TEST(PopulationConservation, SameSeedRunsAreByteIdentical) {
  auto run_once = [](std::uint64_t seed) {
    PopulationFixture fx(seed);
    ManagerPopulationBackend backend(*fx.sys.manager, *fx.sys.sessions);
    return Population(fx.config, backend, fx.documents).run().signature();
  };
  for (std::uint64_t seed : {1ULL, 17ULL, 42ULL}) {
    EXPECT_EQ(run_once(seed), run_once(seed)) << "seed " << seed;
  }
  // And different seeds actually explore different behaviour.
  EXPECT_NE(run_once(1), run_once(2));
}

TEST(PopulationConservation, PruningIsInvisibleInTheOutcomes) {
  auto run_with_prune = [](double prune_interval_s) {
    PopulationFixture fx(5);
    fx.config.prune_interval_s = prune_interval_s;
    ManagerPopulationBackend backend(*fx.sys.manager, *fx.sys.sessions);
    Population population(fx.config, backend, fx.documents);
    const PopulationMetrics metrics = population.run();
    // Whatever finished after the last prune tick is all that can remain.
    return std::make_pair(metrics.signature(), fx.sys.sessions->prune_finished());
  };
  const auto [pruned_sig, pruned_rest] = run_with_prune(10.0);
  const auto [unpruned_sig, unpruned_rest] = run_with_prune(0.0);
  EXPECT_EQ(pruned_sig, unpruned_sig);
  // With pruning off, the final sweep erases every finished session of the
  // run; with pruning on, almost all were already gone.
  EXPECT_LT(pruned_rest, unpruned_rest);
  EXPECT_GT(unpruned_rest, 0u);
}

TEST(PopulationConservation, ServiceBackendMatchesManagerBackendOutcomes) {
  const std::uint64_t seed = 11;

  PopulationFixture direct_fx(seed);
  ManagerPopulationBackend direct_backend(*direct_fx.sys.manager, *direct_fx.sys.sessions);
  const PopulationMetrics direct = Population(direct_fx.config, direct_backend,
                                              direct_fx.documents).run();

  PopulationFixture service_fx(seed);
  ServiceConfig service_config;
  service_config.workers = 4;
  service_config.auto_confirm = false;  // Step 6 belongs to the population
  NegotiationService service(*service_fx.sys.manager, *service_fx.sys.sessions, service_config);
  service.start();
  ServicePopulationBackend service_backend(service);
  const PopulationMetrics through_service =
      Population(service_fx.config, service_backend, service_fx.documents).run();
  service.stop();

  EXPECT_TRUE(through_service.conserved()) << through_service.signature();
  EXPECT_EQ(direct.signature(), through_service.signature());
  EXPECT_EQ(service_fx.sys.sessions->opened_total(), service_fx.sys.sessions->released_total());
  EXPECT_TRUE(service_fx.sys.drained());
}

TEST(Population, ServiceBackendRefusesAutoConfirmingService) {
  ServiceSystem sys(1);
  NegotiationService service(*sys.manager, *sys.sessions);  // auto_confirm defaults on
  EXPECT_THROW(ServicePopulationBackend{service}, std::invalid_argument);
}

TEST(Population, ImpatientClassAbandonsInsteadOfAdmitting) {
  PopulationFixture fx(3, 100.0);
  // One class that walks away almost immediately: abandonment at rate 1000/s
  // beats every think time, so no negotiation-successful arrival is admitted.
  fx.config.classes.resize(1);
  fx.config.classes[0].abandon_rate_per_s = 1'000.0;
  ManagerPopulationBackend backend(*fx.sys.manager, *fx.sys.sessions);
  const PopulationMetrics metrics = Population(fx.config, backend, fx.documents).run();

  const ClassCounts t = metrics.totals();
  ASSERT_GT(t.arrivals, 0u);
  EXPECT_GT(t.abandoned, 0u);
  EXPECT_EQ(t.admitted, 0u);
  EXPECT_EQ(t.confirm_timeouts, 0u);  // walked away, never timed out
  EXPECT_TRUE(metrics.conserved()) << metrics.signature();
  EXPECT_TRUE(fx.sys.drained());
}

TEST(Population, SlowThinkersTimeOutOfTheChoicePeriod) {
  PopulationFixture fx(4, 100.0);
  fx.config.classes.resize(1);
  ClientClass& cls = fx.config.classes[0];
  cls.abandon_rate_per_s = 0.0;
  cls.mean_think_s = 10'000.0;  // essentially every think time > choicePeriod
  ManagerPopulationBackend backend(*fx.sys.manager, *fx.sys.sessions);
  const PopulationMetrics metrics = Population(fx.config, backend, fx.documents).run();

  const ClassCounts t = metrics.totals();
  ASSERT_GT(t.arrivals, 0u);
  EXPECT_GT(t.confirm_timeouts, 0u);
  EXPECT_LE(t.confirm_timeouts, t.abandoned);
  EXPECT_TRUE(metrics.conserved()) << metrics.signature();
  EXPECT_EQ(fx.sys.sessions->opened_total(), fx.sys.sessions->released_total());
}

TEST(Population, ViolationsDriveAdaptationAndItsConservation) {
  PopulationFixture fx(6, 150.0);
  for (ClientClass& cls : fx.config.classes) {
    cls.violation_rate_per_s = 0.05;  // a violation roughly every 20 played seconds
  }
  ManagerPopulationBackend backend(*fx.sys.manager, *fx.sys.sessions);
  const PopulationMetrics metrics = Population(fx.config, backend, fx.documents).run();

  const ClassCounts t = metrics.totals();
  ASSERT_GT(t.violations, 0u);
  EXPECT_GT(t.adaptations, 0u);
  EXPECT_EQ(t.violations, t.adaptations + t.failed_adaptations);
  EXPECT_EQ(t.preempt_released, t.failed_adaptations);
  EXPECT_GE(t.interruption_s, 0.5 * static_cast<double>(t.adaptations));  // transition latency
  EXPECT_TRUE(metrics.conserved()) << metrics.signature();
  EXPECT_TRUE(fx.sys.drained());
}

TEST(Population, DiurnalCurveShapesTheArrivalProcess) {
  PopulationFixture fx(9, 400.0);
  fx.config.classes.resize(1);
  ClientClass& cls = fx.config.classes[0];
  cls.arrival_rate_per_s = 2.0;
  cls.diurnal.period_s = 400.0;
  cls.diurnal.amplitude = 1.0;  // rate swings between 0 and 2x
  cls.diurnal.peak_at_s = 200.0;

  std::uint64_t near_peak = 0;
  std::uint64_t near_trough = 0;
  fx.config.arrival_observer = [&](std::size_t, double t_s) {
    // Peak window [150, 250]; trough windows [0, 50] and [350, 400].
    if (t_s >= 150.0 && t_s <= 250.0) near_peak += 1;
    if (t_s <= 50.0 || t_s >= 350.0) near_trough += 1;
  };
  ManagerPopulationBackend backend(*fx.sys.manager, *fx.sys.sessions);
  const PopulationMetrics metrics = Population(fx.config, backend, fx.documents).run();

  ASSERT_GT(metrics.totals().arrivals, 100u);
  EXPECT_GT(near_peak, 4 * std::max<std::uint64_t>(near_trough, 1));
  EXPECT_TRUE(metrics.conserved());
}

TEST(Population, DiurnalFactorIsARaisedCosine) {
  DiurnalCurve curve;
  curve.period_s = 100.0;
  curve.amplitude = 0.5;
  curve.peak_at_s = 25.0;
  EXPECT_NEAR(curve.factor(25.0), 1.5, 1e-12);   // peak
  EXPECT_NEAR(curve.factor(75.0), 0.5, 1e-12);   // trough, half a period later
  EXPECT_NEAR(curve.factor(0.0), 1.0, 1e-12);    // quarter period off the peak
  EXPECT_NEAR(curve.factor(125.0), 1.5, 1e-12);  // periodic
  EXPECT_DOUBLE_EQ(curve.peak_factor(), 1.5);
  EXPECT_DOUBLE_EQ(DiurnalCurve{}.factor(12'345.0), 1.0);  // flat by default
}

TEST(Population, ValidationRejectsNonsenseConfigs) {
  ServiceSystem sys(1);
  ManagerPopulationBackend backend(*sys.manager, *sys.sessions);
  const std::vector<DocumentId> docs = sys.catalog.list();

  auto expect_invalid = [&](auto mutate) {
    PopulationConfig config;
    config.classes = standard_population();
    mutate(config);
    EXPECT_THROW(Population(config, backend, docs), std::invalid_argument);
  };
  expect_invalid([](PopulationConfig& c) { c.classes.clear(); });
  expect_invalid([](PopulationConfig& c) { c.duration_s = 0.0; });
  expect_invalid([](PopulationConfig& c) { c.prune_interval_s = -1.0; });
  expect_invalid([](PopulationConfig& c) { c.classes[0].arrival_rate_per_s = -0.1; });
  expect_invalid([](PopulationConfig& c) { c.classes[0].mean_think_s = 0.0; });
  expect_invalid([](PopulationConfig& c) { c.classes[0].abandon_rate_per_s = -1.0; });
  expect_invalid([](PopulationConfig& c) { c.classes[0].accept_degraded_p = 1.5; });
  expect_invalid([](PopulationConfig& c) { c.classes[0].watch_fraction = 0.0; });
  expect_invalid([](PopulationConfig& c) { c.classes[0].violation_rate_per_s = -1.0; });
  expect_invalid([](PopulationConfig& c) { c.classes[0].diurnal.amplitude = 2.0; });
  expect_invalid([](PopulationConfig& c) { c.classes[0].diurnal.period_s = 0.0; });

  // No documents at all is a construction error too.
  PopulationConfig ok;
  ok.classes = standard_population();
  EXPECT_THROW(Population(ok, backend, {}), std::invalid_argument);
}

}  // namespace
}  // namespace qosnp
