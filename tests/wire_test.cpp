// Wire codec properties. The binary protocol must be a faithful carrier of
// the negotiation surface:
//   - encode -> decode -> re-encode is byte-identical for 500+ seeded
//     requests and results covering the full field surface (optional media,
//     importance curves, arbitrary byte strings, every enum value);
//   - a request that crossed the wire resolves byte-identically (result
//     signature) to its in-process twin through a real NegotiationService;
//   - decoders refuse malformed payloads (truncation, out-of-range enums,
//     trailing bytes) with typed errors, never UB;
//   - framing reassembles from arbitrary chunking and validates CRC32C.
#include "wire/codec.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "result_signature.hpp"
#include "test_service.hpp"
#include "util/rng.hpp"
#include "wire/crc32c.hpp"
#include "wire/frame.hpp"

namespace qosnp {
namespace {

using testing::ServiceSystem;
using testing::TestSystem;
using testing::result_signature;
using wire::Bytes;
using wire::WireError;
using wire::WireErrorCode;

// --- seeded generators over the full field surface ------------------------

std::string random_string(Rng& rng, std::size_t max_len) {
  std::string s;
  const std::size_t len = rng.below(max_len + 1);
  s.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    s.push_back(static_cast<char>(rng.below(256)));  // any byte, '\0' included
  }
  return s;
}

PiecewiseLinear random_curve(Rng& rng) {
  PiecewiseLinear curve;
  const std::uint64_t anchors = rng.below(5);
  for (std::uint64_t i = 0; i < anchors; ++i) {
    curve.set_anchor(rng.uniform(-10.0, 2000.0), rng.uniform(-2.0, 5.0));
  }
  return curve;
}

VideoQoS random_video(Rng& rng) {
  return VideoQoS{static_cast<ColorDepth>(rng.below(4)),
                  static_cast<int>(rng.between(-5, 120)),
                  static_cast<int>(rng.between(-10, 4096))};
}

ImageQoS random_image(Rng& rng) {
  return ImageQoS{static_cast<ColorDepth>(rng.below(4)),
                  static_cast<int>(rng.between(-10, 4096))};
}

ClientMachine random_client(Rng& rng) {
  ClientMachine c;
  c.name = random_string(rng, 24);
  c.node = random_string(rng, 16);
  c.screen = ScreenSpec{static_cast<int>(rng.between(-100, 8192)),
                        static_cast<int>(rng.between(-100, 8192)),
                        static_cast<ColorDepth>(rng.below(4))};
  c.decoders.clear();
  const std::uint64_t decoders = rng.below(12);
  for (std::uint64_t i = 0; i < decoders; ++i) {
    c.decoders.push_back(static_cast<CodingFormat>(rng.below(11)));
  }
  c.max_audio = static_cast<AudioQuality>(rng.below(3));
  c.has_audio_out = rng.chance(0.8);
  return c;
}

UserProfile random_profile(Rng& rng) {
  UserProfile p;
  p.name = random_string(rng, 32);
  if (rng.chance(0.75)) {
    p.mm.video = VideoProfile{random_video(rng), random_video(rng)};
  } else {
    p.mm.video.reset();
  }
  if (rng.chance(0.75)) {
    p.mm.audio = AudioProfile{AudioQoS{static_cast<AudioQuality>(rng.below(3))},
                              AudioQoS{static_cast<AudioQuality>(rng.below(3))}};
  } else {
    p.mm.audio.reset();
  }
  if (rng.chance(0.6)) {
    TextProfile text;
    text.desired = static_cast<Language>(rng.below(4));
    const std::uint64_t acceptable = rng.below(4);
    for (std::uint64_t i = 0; i < acceptable; ++i) {
      text.acceptable.push_back(static_cast<Language>(rng.below(4)));
    }
    p.mm.text = std::move(text);
  } else {
    p.mm.text.reset();
  }
  if (rng.chance(0.5)) {
    p.mm.image = ImageProfile{random_image(rng), random_image(rng)};
  } else {
    p.mm.image.reset();
  }
  p.mm.cost.max_cost = Money::micros(rng.between(-1'000'000, 2'000'000'000));
  p.mm.time.delivery_time_s = rng.uniform(0.0, 600.0);
  p.mm.time.choice_period_s = rng.uniform(0.0, 600.0);

  ImportanceProfile imp;  // start empty: curves with 0..4 anchors
  for (double& v : imp.video_color) v = rng.uniform(-1.0, 3.0);
  imp.frame_rate = random_curve(rng);
  imp.resolution = random_curve(rng);
  for (double& v : imp.audio_quality) v = rng.uniform(-1.0, 3.0);
  for (double& v : imp.language) v = rng.uniform(-1.0, 3.0);
  for (double& v : imp.image_color) v = rng.uniform(-1.0, 3.0);
  imp.image_resolution = random_curve(rng);
  for (double& v : imp.media_weight) v = rng.uniform(0.0, 4.0);
  imp.cost_per_dollar = rng.uniform(-1.0, 2.0);
  const std::uint64_t servers = rng.below(4);
  for (std::uint64_t i = 0; i < servers; ++i) {
    imp.preferred_servers.push_back(random_string(rng, 12));
  }
  imp.server_bonus = rng.uniform(0.0, 2.0);
  p.importance = std::move(imp);
  return p;
}

NegotiationRequest random_request(Rng& rng) {
  NegotiationRequest req;
  req.id = rng.next_u64();
  req.client = random_client(rng);
  req.document = random_string(rng, 40);
  req.profile = random_profile(rng);
  req.session_class = static_cast<SessionClass>(rng.below(3));
  req.deadline_ms = rng.uniform(0.0, 10'000.0);
  req.accept_degraded = rng.chance(0.5);
  req.cache = static_cast<CacheUse>(rng.below(3));
  return req;
}

NegotiationResult random_result(Rng& rng) {
  NegotiationResult r;
  r.request_id = rng.next_u64();
  r.shed = static_cast<ShedReason>(rng.below(3));
  r.session_id = rng.next_u64();
  r.queue_ms = rng.uniform(0.0, 1'000.0);
  r.total_ms = rng.uniform(0.0, 1'000.0);
  r.worker = static_cast<int>(rng.between(-1, 63));
  r.verdict = static_cast<NegotiationStatus>(rng.below(5));
  r.committed_index = rng.chance(0.3) ? SIZE_MAX : static_cast<std::size_t>(rng.below(4096));
  if (rng.chance(0.7)) {
    UserOffer offer;
    if (rng.chance(0.7)) offer.video = random_video(rng);
    if (rng.chance(0.7)) offer.audio = AudioQoS{static_cast<AudioQuality>(rng.below(3))};
    if (rng.chance(0.5)) offer.text = TextQoS{static_cast<Language>(rng.below(4))};
    if (rng.chance(0.5)) offer.image = random_image(rng);
    offer.cost = Money::micros(rng.between(-1'000'000, 2'000'000'000));
    r.user_offer = std::move(offer);
  }
  const std::uint64_t problems = rng.below(5);
  for (std::uint64_t i = 0; i < problems; ++i) {
    r.problems.push_back(random_string(rng, 48));
  }
  r.commit_stats.attempts = static_cast<int>(rng.below(100));
  r.commit_stats.retries = static_cast<int>(rng.below(100));
  r.commit_stats.transient_failures = static_cast<int>(rng.below(100));
  r.commit_stats.permanent_failures = static_cast<int>(rng.below(100));
  r.commit_stats.released_on_failure = static_cast<int>(rng.below(100));
  r.commit_stats.backoff_ms = rng.uniform(0.0, 10'000.0);
  return r;
}

// --- round trips ----------------------------------------------------------

TEST(WireCodec, RequestRoundTripIsByteIdentical) {
  for (std::uint64_t seed = 0; seed < 520; ++seed) {
    Rng rng(seed * 0x9e3779b97f4a7c15ULL + 1);
    const NegotiationRequest request = random_request(rng);
    auto encoded = wire::encode_request_payload(request);
    ASSERT_TRUE(encoded.ok()) << "seed " << seed << ": " << encoded.error().to_text();
    auto decoded = wire::decode_request_payload(encoded.value());
    ASSERT_TRUE(decoded.ok()) << "seed " << seed << ": " << decoded.error().to_text();
    auto re_encoded = wire::encode_request_payload(decoded.value());
    ASSERT_TRUE(re_encoded.ok()) << "seed " << seed;
    EXPECT_EQ(encoded.value(), re_encoded.value()) << "seed " << seed;

    EXPECT_EQ(decoded.value().id, request.id);
    EXPECT_EQ(decoded.value().document, request.document);
    EXPECT_EQ(decoded.value().session_class, request.session_class);
    EXPECT_EQ(decoded.value().cache, request.cache);
    EXPECT_EQ(decoded.value().accept_degraded, request.accept_degraded);
    EXPECT_EQ(decoded.value().client.name, request.client.name);
    EXPECT_EQ(decoded.value().profile.name, request.profile.name);
    EXPECT_EQ(decoded.value().resolved, nullptr);
  }
}

TEST(WireCodec, ResultRoundTripIsByteIdentical) {
  for (std::uint64_t seed = 0; seed < 520; ++seed) {
    Rng rng(seed * 0x9e3779b97f4a7c15ULL + 2);
    const NegotiationResult result = random_result(rng);
    const Bytes encoded = wire::encode_result_payload(result);
    auto decoded = wire::decode_result_payload(encoded);
    ASSERT_TRUE(decoded.ok()) << "seed " << seed << ": " << decoded.error().to_text();
    EXPECT_EQ(encoded, wire::encode_result_payload(decoded.value())) << "seed " << seed;
    // The signature covers the whole procedure surface the wire carries.
    EXPECT_EQ(result_signature(result), result_signature(decoded.value())) << "seed " << seed;
    EXPECT_EQ(decoded.value().committed_index, result.committed_index);
    EXPECT_EQ(decoded.value().worker, result.worker);
  }
}

TEST(WireCodec, ErrorRoundTripCoversEveryCode) {
  for (std::uint16_t code = 1; code <= 12; ++code) {
    WireError error{static_cast<WireErrorCode>(code), "detail for " + std::to_string(code)};
    auto decoded = wire::decode_error_payload(wire::encode_error_payload(error));
    ASSERT_TRUE(decoded.ok()) << "code " << code;
    EXPECT_EQ(decoded.value().code, error.code);
    EXPECT_EQ(decoded.value().detail, error.detail);
  }
}

TEST(WireCodec, FrameSurvivesArbitraryChunking) {
  for (std::uint64_t seed = 0; seed < 64; ++seed) {
    Rng rng(seed + 77);
    Bytes payload;
    const std::uint64_t len = rng.below(2048);
    for (std::uint64_t i = 0; i < len; ++i) {
      payload.push_back(static_cast<std::uint8_t>(rng.below(256)));
    }
    const std::uint64_t frame_seq = rng.next_u64();
    const Bytes encoded = wire::encode_frame(wire::FrameType::kResult, frame_seq, payload);

    wire::FrameAssembler assembler(wire::kDefaultMaxFrameBytes);
    std::size_t offset = 0;
    while (offset < encoded.size()) {
      const std::size_t chunk =
          std::min<std::size_t>(encoded.size() - offset, 1 + rng.below(97));
      assembler.feed(encoded.data() + offset, chunk);
      offset += chunk;
    }
    wire::FrameAssembler::Next next = assembler.next();
    ASSERT_TRUE(next.frame.has_value()) << "seed " << seed;
    EXPECT_EQ(next.frame->type, wire::FrameType::kResult);
    EXPECT_EQ(next.frame->seq, frame_seq);
    EXPECT_EQ(next.frame->payload, payload);
    EXPECT_TRUE(assembler.next().needs_more());
    EXPECT_EQ(assembler.buffered(), 0u);
  }
}

// --- typed refusals -------------------------------------------------------

TEST(WireCodec, ResolvedRequestIsUnencodable) {
  NegotiationRequest request;
  request.client = ClientMachine{};
  request.resolved = std::make_shared<const MultimediaDocument>(TestSystem::news_article());
  auto encoded = wire::encode_request_payload(request);
  ASSERT_FALSE(encoded.ok());
  EXPECT_EQ(encoded.error().code, WireErrorCode::kUnencodable);
}

TEST(WireCodec, TruncatedRequestPayloadIsTypedError) {
  Rng rng(4242);
  const NegotiationRequest request = random_request(rng);
  const Bytes encoded = wire::encode_request_payload(request).value();
  for (std::uint64_t i = 0; i < 200; ++i) {
    const std::size_t cut = rng.below(encoded.size());
    Bytes truncated(encoded.begin(), encoded.begin() + static_cast<std::ptrdiff_t>(cut));
    auto decoded = wire::decode_request_payload(truncated);
    ASSERT_FALSE(decoded.ok()) << "cut at " << cut;
    EXPECT_EQ(decoded.error().code, WireErrorCode::kBadPayload);
  }
}

TEST(WireCodec, TrailingBytesAreRejected) {
  Rng rng(99);
  Bytes encoded = wire::encode_request_payload(random_request(rng)).value();
  encoded.push_back(0);
  auto decoded = wire::decode_request_payload(encoded);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.error().code, WireErrorCode::kBadPayload);

  Bytes result_bytes = wire::encode_result_payload(random_result(rng));
  result_bytes.push_back(0);
  auto result = wire::decode_result_payload(result_bytes);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, WireErrorCode::kBadPayload);
}

TEST(WireCodec, OutOfRangeEnumIsRejected) {
  Rng rng(7);
  Bytes encoded = wire::encode_request_payload(random_request(rng)).value();
  // Request layout opens with id:u64, session_class:u8.
  encoded[8] = 200;
  auto decoded = wire::decode_request_payload(encoded);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.error().code, WireErrorCode::kBadPayload);
}

TEST(WireCrc, MatchesKnownVectors) {
  // RFC 3720 test vector: 32 zero bytes.
  const std::vector<std::uint8_t> zeros(32, 0);
  EXPECT_EQ(wire::crc32c(zeros.data(), zeros.size()), 0x8A9136AAu);
  const std::string check = "123456789";
  EXPECT_EQ(wire::crc32c(check.data(), check.size()), 0xE3069283u);
}

// --- differential: the wire is invisible to the procedure -----------------

/// A service-shaped request: harness client + preset profile with seeded
/// importance/policy variation, against the shared news article (and
/// sometimes a document that does not exist — refusals must carry over the
/// wire identically too).
NegotiationRequest random_service_request(const ServiceSystem& sys, Rng& rng) {
  NegotiationRequest req;
  req.id = rng.next_u64();
  req.client = sys.clients[rng.below(sys.clients.size())];
  req.document = rng.chance(0.9) ? "article" : "no-such-document";
  switch (rng.below(3)) {
    case 0: req.profile = TestSystem::tolerant_profile(); break;
    case 1: req.profile = demanding_user_profile(); break;
    default: req.profile = thrifty_user_profile(); break;
  }
  req.profile.importance.cost_per_dollar = rng.uniform(0.0, 1.0);
  if (rng.chance(0.5)) {
    req.profile.importance.preferred_servers = {rng.chance(0.5) ? "server-a" : "server-b"};
    req.profile.importance.server_bonus = rng.uniform(0.0, 1.0);
  }
  req.session_class = static_cast<SessionClass>(rng.below(3));
  req.accept_degraded = rng.chance(0.8);
  req.cache = static_cast<CacheUse>(rng.below(3));
  return req;
}

TEST(WireDifferential, DecodedRequestsResolveIdenticallyThroughTheService) {
  ServiceSystem direct_sys(8);
  ServiceSystem wire_sys(8);
  ServiceConfig config;
  config.workers = 1;  // sequential: outcomes depend only on the request order
  NegotiationService direct(*direct_sys.manager, *direct_sys.sessions, config);
  NegotiationService wired(*wire_sys.manager, *wire_sys.sessions, config);
  direct.start();
  wired.start();

  Rng rng(2026);
  for (int i = 0; i < 500; ++i) {
    const NegotiationRequest request = random_service_request(direct_sys, rng);

    auto encoded = wire::encode_request_payload(request);
    ASSERT_TRUE(encoded.ok()) << "request " << i;
    auto decoded = wire::decode_request_payload(encoded.value());
    ASSERT_TRUE(decoded.ok()) << "request " << i;

    const NegotiationResult in_process = direct.submit(request).get();
    const NegotiationResult via_wire = wired.submit(std::move(decoded.value())).get();
    EXPECT_EQ(result_signature(in_process), result_signature(via_wire)) << "request " << i;
    EXPECT_EQ(in_process.request_id, via_wire.request_id) << "request " << i;

    if (in_process.session_id != 0) direct_sys.sessions->complete(in_process.session_id);
    if (via_wire.session_id != 0) wire_sys.sessions->complete(via_wire.session_id);
  }
  direct.stop();
  wired.stop();
  EXPECT_TRUE(direct_sys.drained());
  EXPECT_TRUE(wire_sys.drained());
}

}  // namespace
}  // namespace qosnp
