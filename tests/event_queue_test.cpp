// EventQueue edge semantics, pinned down as properties the population
// simulation's reproducibility depends on: equal-time events fire in
// scheduling order (the stable sequence number), schedule_at in the past
// clamps to now(), and the firing order is a pure function of the
// scheduling sequence — identical across 100 seeded shuffles of the
// schedule *values* as long as the calls happen in the same order.
#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "util/rng.hpp"

namespace qosnp {
namespace {

TEST(EventQueue, StartsEmptyAtTimeZero) {
  EventQueue q;
  EXPECT_DOUBLE_EQ(q.now(), 0.0);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.pending(), 0u);
  EXPECT_FALSE(q.step());
}

TEST(EventQueue, EqualTimeEventsFireInSchedulingOrder) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 64; ++i) {
    q.schedule_at(5.0, [&fired, i] { fired.push_back(i); });
  }
  q.run_all();
  ASSERT_EQ(fired.size(), 64u);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(fired[static_cast<std::size_t>(i)], i);
  EXPECT_DOUBLE_EQ(q.now(), 5.0);
}

TEST(EventQueue, ScheduleAtInThePastClampsToNow) {
  EventQueue q;
  double fired_at = -1.0;
  q.schedule_at(10.0, [&] {
    // The clock reads 10; an event "in the past" must fire immediately (at
    // now()), never rewind the clock or land before already-pending events
    // at now().
    q.schedule_at(3.0, [&] { fired_at = q.now(); });
  });
  q.run_all();
  EXPECT_DOUBLE_EQ(fired_at, 10.0);
  EXPECT_DOUBLE_EQ(q.now(), 10.0);
}

TEST(EventQueue, PastEventQueuesBehindEarlierEventsAtTheSameTime) {
  EventQueue q;
  std::vector<std::string> order;
  q.schedule_at(10.0, [&] {
    q.schedule_at(2.0, [&] { order.push_back("clamped"); });  // clamps to 10
    q.schedule_at(10.0, [&] { order.push_back("at-now"); });
  });
  q.run_all();
  // Both land at t=10; the clamped one was scheduled first, so it fires first.
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], "clamped");
  EXPECT_EQ(order[1], "at-now");
}

TEST(EventQueue, NegativeDelayClampsToNow) {
  EventQueue q;
  double fired_at = -1.0;
  q.schedule_at(7.0, [&] {
    q.schedule_in(-100.0, [&] { fired_at = q.now(); });
  });
  q.run_all();
  EXPECT_DOUBLE_EQ(fired_at, 7.0);
}

TEST(EventQueue, RunUntilAdvancesTheClockToTheDeadline) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(1.0, [&] { fired += 1; });
  q.schedule_at(50.0, [&] { fired += 1; });
  q.run_until(10.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(q.now(), 10.0);  // clock reaches the deadline, not the next event
  EXPECT_EQ(q.pending(), 1u);
  q.run_all();
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(q.now(), 50.0);
}

TEST(EventQueue, NestedSchedulingInterleavesByTimeThenSequence) {
  EventQueue q;
  std::vector<std::string> order;
  q.schedule_at(1.0, [&] {
    order.push_back("a");
    q.schedule_at(2.0, [&] { order.push_back("a2"); });
  });
  q.schedule_at(2.0, [&] { order.push_back("b"); });
  q.run_all();
  // "b" (seq 1) was scheduled before "a2" (seq 2): equal times, seq decides.
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], "a");
  EXPECT_EQ(order[1], "b");
  EXPECT_EQ(order[2], "a2");
}

// The reproducibility property the population layer leans on: the firing
// order is a deterministic function of the sequence of schedule calls.
// 100 seeded random schedules, each built twice into independent queues,
// must replay identically — including heavy ties, nested scheduling, and
// past times.
TEST(EventQueueProperty, FiringOrderIsStableAcross100SeededShuffles) {
  for (std::uint64_t seed = 1; seed <= 100; ++seed) {
    auto build_and_run = [seed] {
      Rng rng(seed);
      EventQueue q;
      std::vector<std::pair<double, int>> fired;  // (time, id)
      int next_id = 0;
      // Ties on purpose: times quantised to a handful of distinct values.
      auto random_time = [&rng] { return static_cast<double>(rng.below(8)); };
      std::function<void(int)> body = [&](int id) {
        fired.emplace_back(q.now(), id);
        // Some events schedule follow-ups, possibly "in the past".
        if (rng.chance(0.3)) {
          const double at = q.now() + static_cast<double>(rng.below(4)) - 1.0;
          q.schedule_at(at, [&, child = next_id++] { body(child); });
        }
      };
      const int initial = 20 + static_cast<int>(rng.below(20));
      for (int i = 0; i < initial; ++i) {
        q.schedule_at(random_time(), [&, id = next_id++] { body(id); });
      }
      q.run_all();
      return fired;
    };

    const auto first = build_and_run();
    const auto second = build_and_run();
    ASSERT_EQ(first, second) << "seed " << seed << " replayed differently";

    // And the order respects (time, scheduling sequence): times never go
    // backwards.
    for (std::size_t i = 1; i < first.size(); ++i) {
      ASSERT_LE(first[i - 1].first, first[i].first) << "seed " << seed;
    }
  }
}

}  // namespace
}  // namespace qosnp
