#include "document/serialize.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "document/corpus.hpp"

namespace qosnp {
namespace {

bool qos_equal(const MonomediaQoS& a, const MonomediaQoS& b) { return a == b; }

void expect_documents_equal(const MultimediaDocument& a, const MultimediaDocument& b) {
  EXPECT_EQ(a.id, b.id);
  EXPECT_EQ(a.title, b.title);
  EXPECT_EQ(a.copyright_cost, b.copyright_cost);
  ASSERT_EQ(a.monomedia.size(), b.monomedia.size());
  for (std::size_t m = 0; m < a.monomedia.size(); ++m) {
    const Monomedia& ma = a.monomedia[m];
    const Monomedia& mb = b.monomedia[m];
    EXPECT_EQ(ma.id, mb.id);
    EXPECT_EQ(ma.kind, mb.kind);
    EXPECT_EQ(ma.name, mb.name);
    EXPECT_NEAR(ma.duration_s, mb.duration_s, 1e-3);
    ASSERT_EQ(ma.variants.size(), mb.variants.size());
    for (std::size_t v = 0; v < ma.variants.size(); ++v) {
      const Variant& va = ma.variants[v];
      const Variant& vb = mb.variants[v];
      EXPECT_EQ(va.id, vb.id);
      EXPECT_EQ(va.format, vb.format);
      EXPECT_EQ(va.server, vb.server);
      EXPECT_EQ(va.avg_block_bytes, vb.avg_block_bytes);
      EXPECT_EQ(va.max_block_bytes, vb.max_block_bytes);
      EXPECT_NEAR(va.blocks_per_second, vb.blocks_per_second, 1e-3);
      EXPECT_EQ(va.file_bytes, vb.file_bytes);
      EXPECT_TRUE(qos_equal(va.qos, vb.qos)) << va.id;
    }
  }
  ASSERT_EQ(a.sync.temporal.size(), b.sync.temporal.size());
  for (std::size_t t = 0; t < a.sync.temporal.size(); ++t) {
    EXPECT_EQ(a.sync.temporal[t].first, b.sync.temporal[t].first);
    EXPECT_EQ(a.sync.temporal[t].second, b.sync.temporal[t].second);
    EXPECT_EQ(a.sync.temporal[t].type, b.sync.temporal[t].type);
  }
  ASSERT_EQ(a.sync.spatial.size(), b.sync.spatial.size());
  for (std::size_t s = 0; s < a.sync.spatial.size(); ++s) {
    EXPECT_EQ(a.sync.spatial[s].monomedia, b.sync.spatial[s].monomedia);
    EXPECT_EQ(a.sync.spatial[s].width, b.sync.spatial[s].width);
  }
}

TEST(DocumentSerialize, RoundTripsCorpusDocuments) {
  CorpusConfig config;
  config.num_documents = 8;
  config.seed = 13;
  for (const auto& doc : generate_corpus(config)) {
    auto parsed = parse_documents(to_text(doc));
    ASSERT_TRUE(parsed.ok()) << parsed.error();
    ASSERT_EQ(parsed.value().size(), 1u);
    expect_documents_equal(doc, parsed.value()[0]);
    EXPECT_TRUE(validate(parsed.value()[0]).empty());
  }
}

TEST(DocumentSerialize, ParsesMultipleDocuments) {
  CorpusConfig config;
  config.num_documents = 3;
  std::string text;
  for (const auto& doc : generate_corpus(config)) text += to_text(doc) + "\n";
  auto parsed = parse_documents(text);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().size(), 3u);
}

TEST(DocumentSerialize, ErrorsCarryLineNumbers) {
  auto r1 = parse_documents("title = orphan\n");
  ASSERT_FALSE(r1.ok());
  EXPECT_NE(r1.error().find("line 1"), std::string::npos);

  auto r2 = parse_documents("document = d\nvariant = v | MPEG-1 | s | 1|2|25|100| color 25 640\n");
  ASSERT_FALSE(r2.ok());
  EXPECT_NE(r2.error().find("variant before"), std::string::npos);

  auto r3 = parse_documents(
      "document = d\nmonomedia = m | video | n | 10\nvariant = v | NOPE | s | 1|2|25|100| color 25 640\n");
  ASSERT_FALSE(r3.ok());
  EXPECT_NE(r3.error().find("coding format"), std::string::npos);

  auto r4 = parse_documents("document = d\nmystery = 1\n");
  ASSERT_FALSE(r4.ok());
  EXPECT_NE(r4.error().find("unknown key"), std::string::npos);
}

TEST(DocumentSerialize, QosFieldsValidatedPerMedium) {
  const std::string base = "document = d\nmonomedia = m | audio | n | 10\n";
  auto bad = parse_documents(base + "variant = v | PCM | s | 1 | 2 | 50 | 100 | color 25 640\n");
  EXPECT_FALSE(bad.ok());
  auto good = parse_documents(base + "variant = v | PCM | s | 1 | 2 | 50 | 100 | CD\n");
  ASSERT_TRUE(good.ok()) << good.error();
  EXPECT_EQ(std::get<AudioQoS>(good.value()[0].monomedia[0].variants[0].qos).quality,
            AudioQuality::kCD);
}

TEST(CatalogIo, SaveAndLoadRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "qosnp_catalog_test.txt").string();
  CorpusConfig config;
  config.num_documents = 5;
  config.seed = 99;
  Catalog original;
  for (auto& doc : generate_corpus(config)) original.add(std::move(doc));
  ASSERT_TRUE(save_catalog(original, path).ok());

  Catalog loaded;
  auto count = load_catalog(loaded, path);
  ASSERT_TRUE(count.ok()) << count.error();
  EXPECT_EQ(count.value(), 5u);
  EXPECT_EQ(loaded.list(), original.list());
  for (const auto& id : original.list()) {
    expect_documents_equal(*original.find(id), *loaded.find(id));
  }
  std::remove(path.c_str());
}

TEST(CatalogIo, LoadMissingFileFails) {
  Catalog catalog;
  EXPECT_FALSE(load_catalog(catalog, "/nonexistent/catalog.txt").ok());
}

TEST(CatalogIo, LoadRejectsInvalidDocument) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "qosnp_bad_catalog.txt").string();
  {
    std::ofstream out(path);
    out << "document = broken\n";  // no monomedia -> fails validation
  }
  Catalog catalog;
  auto result = load_catalog(catalog, path);
  EXPECT_FALSE(result.ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace qosnp
