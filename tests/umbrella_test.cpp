// The umbrella header must pull in the whole public API, and a downstream
// user should be able to run the full pipeline with only this include.
#include "qosnp.hpp"

#include <gtest/gtest.h>

namespace qosnp {
namespace {

TEST(Umbrella, EndToEndWithSingleInclude) {
  Catalog catalog;
  CorpusConfig corpus;
  corpus.num_documents = 2;
  for (auto& doc : generate_corpus(corpus)) catalog.add(std::move(doc));

  TransportService transport(Topology::dumbbell(1, 2, 50'000'000, 200'000'000));
  ServerFarm farm;
  farm.add(MediaServerConfig{"server-a", "server-node-0", 100'000'000, 16});
  farm.add(MediaServerConfig{"server-b", "server-node-1", 100'000'000, 16});

  ClientMachine client;
  client.name = "client-0";
  client.node = "client-0";
  client.decoders = {CodingFormat::kMPEG1,     CodingFormat::kMPEG2, CodingFormat::kMJPEG,
                     CodingFormat::kPCM,       CodingFormat::kADPCM, CodingFormat::kMPEGAudio,
                     CodingFormat::kPlainText, CodingFormat::kJPEG,  CodingFormat::kGIF};

  QoSManager manager(catalog, farm, transport);
  SessionManager sessions(manager);
  const UserProfile profile = standard_profile_mix()[1];
  NegotiationResult outcome = manager.negotiate(make_negotiation_request(client, catalog.list().front(), profile));
  ASSERT_TRUE(outcome.has_commitment()) << render_summary(outcome);
  auto id = sessions.open(client, profile, std::move(outcome), 0.0);
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(sessions.confirm(id.value(), 1.0).ok());
  sessions.advance(id.value(), 10'000.0);
  EXPECT_EQ(sessions.snapshot(id.value())->state, SessionState::kCompleted);
}

}  // namespace
}  // namespace qosnp
